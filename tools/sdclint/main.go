// Command sdclint is the repo's determinism linter: a small,
// stdlib-only static checker for the invariants that keep artifact keys
// and campaign results reproducible, which generic linters cannot know
// about. It parses Go source (no type checking, no build) and reports
// findings as `file:line:col: [check] message`, exiting 1 when any are
// found.
//
// Checks:
//
//	map-order     an iteration over a map-typed value feeds a
//	              pipeline.Hasher or seeds an RNG inside the loop body.
//	              Map iteration order is randomized per run, so any key
//	              or seed derived through it breaks the content-keyed
//	              store (DESIGN.md §8). Iterate a sorted copy instead.
//	wallclock-key a function that derives a content key (constructs or
//	              writes a pipeline.Hasher) also reads time.Now or
//	              math/rand: keys must be functions of task content
//	              only, never of when or where they were computed.
//	job-identity  a function on a job-ID or shard-key derivation path
//	              (its name mentions a job key/ID, shard key/seed, or
//	              section seed) reads time.Now or math/rand. Job identity
//	              is what makes fleet-wide dedup and kill-and-resume
//	              sound (DESIGN.md §15): two submissions of the same
//	              campaign must derive the same ID on any machine at any
//	              time, and a resumed shard must re-derive the exact seed
//	              sub-stream it was first planned with. Unlike
//	              wallclock-key this fires even when the function never
//	              touches a pipeline.Hasher — plain arithmetic seed
//	              derivation is just as easy to poison with wall clock.
//	obs-nil-guard an exported pointer-receiver method on one of package
//	              obs's nil-safe types accesses a receiver field without
//	              a receiver nil-check in the body. The obs contract is
//	              that a nil *Obs disables everything (DESIGN.md §10);
//	              an unguarded field access turns "disabled" into a
//	              panic at the first instrumented call site.
//
// Usage: sdclint [dir ...] (default "."). Directories are walked
// recursively; vendor, .git, and testdata subtrees are skipped (a
// testdata root given explicitly is linted, which is how the linter's
// own fixture test and the CI seeded-violation check work). _test.go
// files are skipped: tests may legitimately vary seeds by wall clock.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type finding struct {
	pos   token.Position
	check string
	msg   string
}

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || name == ".git") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdclint: %v\n", err)
			os.Exit(2)
		}
	}

	fset := token.NewFileSet()
	var finds []finding
	for _, path := range files {
		af, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdclint: %v\n", err)
			os.Exit(2)
		}
		finds = append(finds, lintFile(fset, af)...)
	}
	sort.Slice(finds, func(i, j int) bool {
		a, b := finds[i].pos, finds[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range finds {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.check, f.msg)
	}
	if len(finds) > 0 {
		os.Exit(1)
	}
}

// lintFile runs every check over one parsed file.
func lintFile(fset *token.FileSet, af *ast.File) []finding {
	timeName, randName := importNames(af)
	var finds []finding
	for _, decl := range af.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fi := newFuncInfo(af, fd)
		finds = append(finds, checkMapOrder(fset, fi, randName)...)
		finds = append(finds, checkWallclockKey(fset, fi, timeName, randName)...)
		finds = append(finds, checkJobIdentity(fset, fi, timeName, randName)...)
	}
	if af.Name.Name == "obs" {
		finds = append(finds, checkObsNilGuard(fset, af)...)
	}
	return finds
}

// importNames returns the local names of the time and math/rand imports
// ("" when not imported), so aliased imports don't evade the checks.
func importNames(af *ast.File) (timeName, randName string) {
	for _, im := range af.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		name := ""
		if im.Name != nil {
			name = im.Name.Name
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeName = name
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randName = name
		}
	}
	return timeName, randName
}

// funcInfo carries the per-function syntactic facts the checks share:
// which identifiers are map-typed and which hold a *pipeline.Hasher.
type funcInfo struct {
	decl *ast.FuncDecl
	// inPipeline marks files of package pipeline itself, where the
	// Hasher type is referenced without qualification.
	inPipeline bool
	mapIdents  map[string]bool
	hashIdents map[string]bool
}

func newFuncInfo(af *ast.File, fd *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{
		decl:       fd,
		inPipeline: af.Name.Name == "pipeline",
		mapIdents:  map[string]bool{},
		hashIdents: map[string]bool{},
	}
	if fd.Recv != nil {
		fi.collectFields(fd.Recv)
	}
	fi.collectFields(fd.Type.Params)
	// Two passes over the body so `h := mkHasher()`-style chains
	// assigned before the helper returning a hasher ident are still
	// resolved (good enough without dataflow ordering).
	ast.Inspect(fd.Body, fi.collectAssign)
	ast.Inspect(fd.Body, fi.collectAssign)
	return fi
}

func (fi *funcInfo) collectFields(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			if _, ok := f.Type.(*ast.MapType); ok {
				fi.mapIdents[n.Name] = true
			}
			if fi.isHasherType(f.Type) {
				fi.hashIdents[n.Name] = true
			}
		}
	}
}

// isHasherType recognizes the syntactic forms of the hasher type:
// *pipeline.Hasher anywhere, *Hasher (or Hasher receivers) inside
// package pipeline.
func (fi *funcInfo) isHasherType(t ast.Expr) bool {
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch x := t.(type) {
	case *ast.SelectorExpr:
		pkg, ok := x.X.(*ast.Ident)
		return ok && pkg.Name == "pipeline" && x.Sel.Name == "Hasher"
	case *ast.Ident:
		return fi.inPipeline && x.Name == "Hasher"
	}
	return false
}

// collectAssign records map- and hasher-typed local bindings from
// declarations and assignments.
func (fi *funcInfo) collectAssign(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(st.Rhs) && len(st.Rhs) != 1 {
				continue
			}
			rhs := st.Rhs[0]
			if len(st.Rhs) == len(st.Lhs) {
				rhs = st.Rhs[i]
			}
			if isMapValue(rhs) {
				fi.mapIdents[id.Name] = true
			}
			if fi.isHasherValue(rhs) {
				fi.hashIdents[id.Name] = true
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			isMapT := false
			if vs.Type != nil {
				if _, ok := vs.Type.(*ast.MapType); ok {
					isMapT = true
				}
				if fi.isHasherType(vs.Type) {
					for _, n := range vs.Names {
						fi.hashIdents[n.Name] = true
					}
				}
			}
			for i, n := range vs.Names {
				if isMapT || (i < len(vs.Values) && isMapValue(vs.Values[i])) {
					fi.mapIdents[n.Name] = true
				}
				if i < len(vs.Values) && fi.isHasherValue(vs.Values[i]) {
					fi.hashIdents[n.Name] = true
				}
			}
		}
	}
	return true
}

// isMapValue reports whether an expression is syntactically map-typed:
// make(map[...]...) or a map composite literal.
func isMapValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			_, isMap := x.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := x.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// isHasherValue reports whether an expression produces a hasher: a
// NewHasher call or a method-chain call rooted at a known hasher (the
// builder methods all return the receiver).
func (fi *funcInfo) isHasherValue(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok && pkg.Name == "pipeline" && fun.Sel.Name == "NewHasher" {
			return true
		}
		return fi.hasherRoot(fun.X)
	case *ast.Ident:
		return fi.inPipeline && fun.Name == "NewHasher"
	}
	return false
}

// hasherRoot resolves a method-chain receiver (h, h.Str(x),
// h.Str(x).I64(y), ...) to its root identifier and reports whether that
// root is a known hasher.
func (fi *funcInfo) hasherRoot(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return fi.hashIdents[x.Name]
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			e = sel.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkMapOrder flags map-range bodies that write into a hasher or seed
// an RNG: both launder the randomized iteration order into something
// that must be deterministic.
func checkMapOrder(fset *token.FileSet, fi *funcInfo, randName string) []finding {
	var finds []finding
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rs.X.(*ast.Ident)
		if !ok || !fi.mapIdents[id.Name] {
			return true
		}
		// One finding per loop per category: a builder chain like
		// h.Str(k).I64(v) is one bug, not two.
		hashHit, randHit := false, false
		ast.Inspect(rs.Body, func(b ast.Node) bool {
			call, ok := b.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if !hashHit && fi.hasherRoot(sel.X) {
					hashHit = true
					finds = append(finds, finding{
						pos:   fset.Position(call.Pos()),
						check: "map-order",
						msg: fmt.Sprintf("map iteration over %q feeds a pipeline.Hasher; iterate sorted keys so the content key is deterministic",
							id.Name),
					})
					return true
				}
				if pkg, ok := sel.X.(*ast.Ident); ok && !randHit && randName != "" && pkg.Name == randName {
					switch sel.Sel.Name {
					case "Seed", "NewSource", "New":
						randHit = true
						finds = append(finds, finding{
							pos:   fset.Position(call.Pos()),
							check: "map-order",
							msg: fmt.Sprintf("map iteration over %q seeds an RNG; derive seeds from sorted, content-keyed data",
								id.Name),
						})
					}
				}
			}
			return true
		})
		return true
	})
	return finds
}

// checkWallclockKey flags functions that both derive a content key and
// read a nondeterministic source.
func checkWallclockKey(fset *token.FileSet, fi *funcInfo, timeName, randName string) []finding {
	usesHasher := len(fi.hashIdents) > 0
	if !usesHasher {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && fi.isHasherValue(call) {
				usesHasher = true
				return false
			}
			return true
		})
	}
	if !usesHasher {
		return nil
	}
	var finds []finding
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
			finds = append(finds, finding{
				pos:   fset.Position(sel.Pos()),
				check: "wallclock-key",
				msg:   "time.Now in a function that derives a content key; keys must depend on task content only",
			})
		case randName != "" && pkg.Name == randName:
			finds = append(finds, finding{
				pos:   fset.Position(sel.Pos()),
				check: "wallclock-key",
				msg:   "math/rand in a function that derives a content key; keys must depend on task content only",
			})
		}
		return true
	})
	return finds
}

// identityFuncMarkers are the name fragments that put a function on a
// job-identity derivation path. Matching is case-insensitive and
// substring-based so jobKey, JobID, newShardSeed, sectionSeedFor, ...
// are all covered without a type checker.
var identityFuncMarkers = []string{"jobkey", "jobid", "shardkey", "shardseed", "sectionseed"}

// isIdentityFunc reports whether a function name marks it as deriving a
// job ID or shard key/seed.
func isIdentityFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, m := range identityFuncMarkers {
		if strings.Contains(lower, m) {
			return true
		}
	}
	return false
}

// checkJobIdentity flags nondeterministic sources inside job-ID and
// shard-key derivation functions, hasher or not: identity must be a
// pure function of the campaign spec, or dedup and resume both break.
func checkJobIdentity(fset *token.FileSet, fi *funcInfo, timeName, randName string) []finding {
	if !isIdentityFunc(fi.decl.Name.Name) {
		return nil
	}
	var finds []finding
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
			finds = append(finds, finding{
				pos:   fset.Position(sel.Pos()),
				check: "job-identity",
				msg: fmt.Sprintf("time.Now in identity function %s; job IDs and shard keys must derive from the campaign spec only",
					fi.decl.Name.Name),
			})
		case randName != "" && pkg.Name == randName:
			finds = append(finds, finding{
				pos:   fset.Position(sel.Pos()),
				check: "job-identity",
				msg: fmt.Sprintf("math/rand in identity function %s; job IDs and shard keys must derive from the campaign spec only",
					fi.decl.Name.Name),
			})
		}
		return true
	})
	return finds
}

// obsNilSafe lists package obs's receiver types documented as nil-safe
// (a nil *Obs disables the whole layer). Snapshot/value types like
// TraceSnapshot are plain data and exempt.
var obsNilSafe = map[string]bool{
	"Obs": true, "Trace": true, "Span": true, "Registry": true,
	"Counter": true, "Gauge": true, "Histogram": true,
}

// checkObsNilGuard enforces the nil-receiver contract: an exported
// pointer-receiver method on a nil-safe obs type that reads or writes a
// receiver FIELD must contain a receiver nil-comparison. Methods that
// only forward to other methods (e.g. Counter.Inc) are safe without
// one, since a nil receiver is an ordinary argument.
func checkObsNilGuard(fset *token.FileSet, af *ast.File) []finding {
	var finds []finding
	for _, decl := range af.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		recvField := fd.Recv.List[0]
		star, ok := recvField.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		base, ok := star.X.(*ast.Ident)
		if !ok || !obsNilSafe[base.Name] || len(recvField.Names) == 0 {
			continue
		}
		recv := recvField.Names[0].Name
		if recv == "" || recv == "_" {
			continue
		}
		fieldAccess := false
		nilCheck := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op == token.EQL || x.Op == token.NEQ {
					if exprIsIdent(x.X, recv) && exprIsNil(x.Y) ||
						exprIsIdent(x.Y, recv) && exprIsNil(x.X) {
						nilCheck = true
					}
				}
			case *ast.CallExpr:
				// A method call on the receiver is fine; only inspect
				// its arguments for field accesses.
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && exprIsIdent(sel.X, recv) {
					for _, a := range x.Args {
						ast.Inspect(a, func(m ast.Node) bool {
							if s, ok := m.(*ast.SelectorExpr); ok && exprIsIdent(s.X, recv) {
								fieldAccess = true
							}
							return true
						})
					}
					return false
				}
			case *ast.SelectorExpr:
				if exprIsIdent(x.X, recv) {
					fieldAccess = true
				}
			}
			return true
		})
		if fieldAccess && !nilCheck {
			finds = append(finds, finding{
				pos:   fset.Position(fd.Pos()),
				check: "obs-nil-guard",
				msg: fmt.Sprintf("method (*%s).%s accesses receiver fields without a nil check; obs receivers must be nil-safe",
					base.Name, fd.Name.Name),
			})
		}
	}
	return finds
}

func exprIsIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func exprIsNil(e ast.Expr) bool { return exprIsIdent(e, "nil") }
