// Seeded violations for the job-identity check: nondeterminism in
// job-ID and shard-key derivation paths. Like the other fixtures this
// tree is parsed, never compiled.
package fixtures

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/pipeline"
)

// badJobIDFromClock stamps the job ID with admission time — two
// identical submissions get different IDs and dedup never fires. No
// hasher involved, so only job-identity catches it. want: job-identity
// finding.
func badJobIDFromClock(bench string) string {
	return fmt.Sprintf("%s-%d", bench, time.Now().UnixNano())
}

// badShardSeedRand draws the shard sub-stream seed from the global
// RNG: a resumed shard replays a different fault sequence than the one
// it was planned with. want: job-identity finding.
func badShardSeedRand(base int64, shard int) int64 {
	return base + rand.Int63n(int64(shard)+1)
}

// badJobKeyStamped mixes wall clock into a hashed job key. want: one
// job-identity finding AND one wallclock-key finding (the checks
// overlap by design when a hasher is present).
func badJobKeyStamped(bench string, trials int) pipeline.Key {
	h := pipeline.NewHasher("job")
	h.Str(bench).I64(int64(trials)).I64(time.Now().Unix())
	return h.Sum()
}

// goodJobKey derives identity from the campaign spec alone. want: no
// finding.
func goodJobKey(bench string, trials int, seed int64) pipeline.Key {
	h := pipeline.NewHasher("job")
	h.Str(bench).I64(int64(trials)).I64(seed)
	return h.Sum()
}

// goodShardSeed is the deterministic sub-stream split the scheduler
// uses: pure arithmetic over spec-derived inputs. want: no finding.
func goodShardSeed(campaignSeed int64, section string, idx int) int64 {
	var acc int64 = campaignSeed
	for _, c := range section {
		acc = acc*131 + int64(c)
	}
	return acc + int64(idx)
}
