// Seeded violation for the obs-nil-guard check (the file claims
// package obs so the check applies; testdata is never compiled).
package obs

// Obs mirrors the real type's shape for the fixture.
type Obs struct{ n int }

// BadCount reads a receiver field with no nil check. want:
// obs-nil-guard finding.
func (o *Obs) BadCount() int {
	return o.n
}

// GoodCount is the guarded form the linter must accept. want: no
// finding.
func (o *Obs) GoodCount() int {
	if o == nil {
		return 0
	}
	return o.n
}
