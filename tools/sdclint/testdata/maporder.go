// Seeded violations for the map-order and wallclock-key checks. This
// tree is never compiled (testdata is invisible to the go tool); it
// exists so the linter's own test and the CI static-analysis job can
// assert sdclint fails on known-bad code.
package fixtures

import (
	"math/rand"
	"time"

	"repro/internal/pipeline"
)

// badMapKey hashes map entries in iteration order: the classic
// nondeterministic-key bug. want: map-order finding.
func badMapKey(parts map[string]int64) pipeline.Key {
	h := pipeline.NewHasher("bad-map-key")
	for k, v := range parts {
		h.Str(k).I64(v)
	}
	return h.Sum()
}

// badMapSeed seeds an RNG per map entry: trial draws then depend on
// iteration order. want: map-order finding.
func badMapSeed(shards map[int]int64) int64 {
	total := int64(0)
	for id, n := range shards {
		r := rand.New(rand.NewSource(int64(id)))
		total += r.Int63n(n)
	}
	return total
}

// badWallclockKey stamps the key with the build time. want:
// wallclock-key finding (plus the rand read below).
func badWallclockKey(name string) pipeline.Key {
	h := pipeline.NewHasher("bad-wallclock")
	h.Str(name).I64(time.Now().UnixNano())
	h.I64(rand.Int63())
	return h.Sum()
}

// goodSortedKey is the deterministic pattern the linter must accept:
// want: no finding.
func goodSortedKey(parts map[string]int64, keys []string) pipeline.Key {
	h := pipeline.NewHasher("good")
	for _, k := range keys { // caller passes sorted keys
		h.Str(k).I64(parts[k])
	}
	return h.Sum()
}
