package main

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

// lintTestdata lints one fixture file and returns findings per check.
func lintTestdata(t *testing.T, name string) map[string]int {
	t.Helper()
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, filepath.Join("testdata", name), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	byCheck := map[string]int{}
	for _, f := range lintFile(fset, af) {
		byCheck[f.check]++
		t.Logf("%s: [%s] %s", f.pos, f.check, f.msg)
	}
	return byCheck
}

// TestSeededViolations pins the linter to the fixture tree: each
// seeded bug is found, each deliberately-good function is not.
func TestSeededViolations(t *testing.T) {
	got := lintTestdata(t, "maporder.go")
	if got["map-order"] != 2 {
		t.Errorf("map-order findings = %d, want 2 (hasher feed + RNG seed)", got["map-order"])
	}
	// badWallclockKey reads time.Now and rand once each; goodSortedKey
	// must not add more.
	if got["wallclock-key"] != 2 {
		t.Errorf("wallclock-key findings = %d, want 2 (time.Now + rand)", got["wallclock-key"])
	}

	got = lintTestdata(t, "jobident.go")
	if got["job-identity"] != 3 {
		t.Errorf("job-identity findings = %d, want 3 (clocked ID + rand shard seed + stamped key)", got["job-identity"])
	}
	// The stamped hashed key trips wallclock-key too; the two good
	// functions must stay clean.
	if got["wallclock-key"] != 1 {
		t.Errorf("wallclock-key findings = %d, want 1 (stamped key only)", got["wallclock-key"])
	}

	got = lintTestdata(t, "obsbad.go")
	if got["obs-nil-guard"] != 1 {
		t.Errorf("obs-nil-guard findings = %d, want 1 (BadCount only)", got["obs-nil-guard"])
	}
}

// TestRepoRunsClean lints the real source tree: the invariants the
// linter enforces must hold in the repository itself.
func TestRepoRunsClean(t *testing.T) {
	fset := token.NewFileSet()
	var total int
	for _, root := range []string{"../../internal", "../../cmd"} {
		paths, err := filepath.Glob(filepath.Join(root, "*", "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		more, err := filepath.Glob(filepath.Join(root, "*", "*", "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range append(paths, more...) {
			if filepath.Base(filepath.Dir(p)) == "testdata" {
				continue
			}
			af, err := parser.ParseFile(fset, p, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range lintFile(fset, af) {
				t.Errorf("%s: [%s] %s", f.pos, f.check, f.msg)
				total++
			}
		}
	}
	t.Logf("linted repo tree, %d findings", total)
}
