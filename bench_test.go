// Package repro's root benchmark suite regenerates every table and figure
// of the paper under the Quick profile (reduced fault counts; the full
// paper-scale run is `go run ./cmd/experiments -exp all -full`).
//
// One benchmark per artifact:
//
//	Table I   -> BenchmarkTable1BenchmarkInventory
//	Fig. 2    -> BenchmarkFig2BaselineCoverageLoss
//	Table II  -> BenchmarkTable2CoverageLossInputs
//	Fig. 3    -> BenchmarkFig3IncubativeExample
//	Fig. 5    -> BenchmarkFig5WeightedCFG
//	Fig. 6    -> BenchmarkFig6Mitigation
//	Table III -> BenchmarkTable3MinpsidLossInputs
//	Fig. 7    -> BenchmarkFig7SearchEfficiency
//	Fig. 8    -> BenchmarkFig8TimeBreakdown
//	Fig. 9    -> BenchmarkFig9RealWorldInputs (includes Table IV)
//	§VIII-A   -> BenchmarkDiscussionOverheadVariance
//	§VIII-B   -> BenchmarkDiscussionMultithreadFFT
//
// Plus ablation benchmarks for the design choices called out in DESIGN.md
// (knapsack DP vs greedy, GA vs random search) and substrate
// micro-benchmarks (interpreter, FI campaign throughput).
package repro

import (
	"io"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

// benchProfile is the reduced profile used by the root benchmarks: small
// enough that the whole suite completes in minutes, large enough that the
// paper's qualitative shapes are visible.
func benchProfile() harness.Profile {
	p := harness.Quick()
	p.EvalInputs = 5
	p.FaultsPerProgram = 120
	p.FaultsPerInstr = 8
	p.SearchMaxInputs = 3
	p.SearchPatience = 2
	p.PopSize = 4
	p.MaxGenerations = 2
	return p
}

// subset returns a representative benchmark subset: one input-sensitive
// (knn), one insensitive (pathfinder), one float-heavy (fft).
func subset(b *testing.B, names ...string) []*benchprog.Benchmark {
	b.Helper()
	if len(names) == 0 {
		names = []string{"pathfinder", "knn", "fft"}
	}
	var out []*benchprog.Benchmark
	for _, n := range names {
		bm, ok := benchprog.ByName(n)
		if !ok {
			b.Fatalf("missing benchmark %s", n)
		}
		out = append(out, bm)
	}
	return out
}

func BenchmarkTable1BenchmarkInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := harness.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2BaselineCoverageLoss(b *testing.B) {
	bs := subset(b)
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.Fig2(r, bs, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2CoverageLossInputs(b *testing.B) {
	bs := subset(b)
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.Table2(r, bs, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3IncubativeExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.Fig3(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5WeightedCFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := harness.Fig5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Mitigation(b *testing.B) {
	bs := subset(b)
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.Fig6(r, bs, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3MinpsidLossInputs(b *testing.B) {
	bs := subset(b, "knn")
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.Table3(r, bs, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SearchEfficiency(b *testing.B) {
	bs := subset(b, "needle")
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		res, err := harness.Fig7(r, bs, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res) > 0 {
			b.ReportMetric(float64(res[0].GAFound), "ga-incubative")
			b.ReportMetric(float64(res[0].RandomFound), "rnd-incubative")
		}
	}
}

func BenchmarkFig8TimeBreakdown(b *testing.B) {
	bs := subset(b, "pathfinder")
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.Fig8(r, bs, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9RealWorldInputs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		p.EvalInputs = 4
		r := harness.NewRunner(p)
		if _, err := harness.Fig9(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4CaseStudyLossInputs(b *testing.B) {
	// Table IV is derived from the same case-study evaluation as Fig. 9.
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		p.EvalInputs = 4
		r := harness.NewRunner(p)
		res, err := harness.Fig9(r, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var base, minp float64
			for _, cs := range res {
				if cs.Tech == harness.Baseline {
					base += cs.LossPct
				} else {
					minp += cs.LossPct
				}
			}
			n := float64(len(res) / 2)
			b.ReportMetric(base/n, "baseline-loss-pct")
			b.ReportMetric(minp/n, "minpsid-loss-pct")
		}
	}
}

func BenchmarkDiscussionOverheadVariance(b *testing.B) {
	bs := subset(b, "pathfinder", "knn")
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.OverheadVariance(r, bs, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscussionMultithreadFFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchProfile())
		if err := harness.MTFFT(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// measureFor prepares a reference measurement for ablations.
func measureFor(b *testing.B, name string, faultsPerInstr int) (*benchprog.Benchmark, *sid.Measurement) {
	b.Helper()
	bm, _ := benchprog.ByName(name)
	meas, err := sid.Measure(bm.MustModule(), bm.Bind(bm.Reference), sid.Config{
		Exec:           bm.ExecConfig(),
		FaultsPerInstr: faultsPerInstr,
		Seed:           1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bm, meas
}

// BenchmarkAblationKnapsackDP vs Greedy: selection quality/time tradeoff
// (DESIGN.md design choice: exact DP selection by default).
func BenchmarkAblationKnapsackDP(b *testing.B) {
	bm, meas := measureFor(b, "kmeans", 8)
	m := bm.MustModule()
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		sel := sid.Select(m, meas, 0.5, sid.MethodDP)
		cov = sel.ExpectedCoverage
	}
	b.ReportMetric(cov*100, "expected-coverage-%")
}

func BenchmarkAblationKnapsackGreedy(b *testing.B) {
	bm, meas := measureFor(b, "kmeans", 8)
	m := bm.MustModule()
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		sel := sid.Select(m, meas, 0.5, sid.MethodGreedy)
		cov = sel.ExpectedCoverage
	}
	b.ReportMetric(cov*100, "expected-coverage-%")
}

// BenchmarkAblationGASearch vs RandomSearch: incubative yield per budget
// (DESIGN.md design choice: weighted-CFG-guided GA).
func BenchmarkAblationGASearch(b *testing.B) {
	benchAblationSearch(b, false)
}

func BenchmarkAblationRandomSearch(b *testing.B) {
	benchAblationSearch(b, true)
}

func benchAblationSearch(b *testing.B, random bool) {
	bm, meas := measureFor(b, "knn", 8)
	tgt := minpsid.Target{Mod: bm.MustModule(), Spec: bm.Spec, Bind: bm.Bind, Exec: bm.ExecConfig()}
	cfg := minpsid.Config{FaultsPerInstr: 8, MaxInputs: 3, Patience: 2,
		PopSize: 4, MaxGenerations: 2, Seed: 9, UseRandomSearch: random}
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		res := minpsid.Search(tgt, cfg, bm.Reference, meas)
		found = len(res.Incubative)
	}
	b.ReportMetric(float64(found), "incubative")
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkInterpreterThroughput(b *testing.B) {
	bm, _ := benchprog.ByName("needle")
	m := bm.MustModule()
	bind := bm.Bind(bm.Reference)
	r := interp.NewRunner(m, bm.ExecConfig())
	b.ResetTimer()
	var dyn int64
	for i := 0; i < b.N; i++ {
		res := r.Run(bind, nil, nil)
		dyn += res.DynInstrs
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(dyn)/sec/1e6, "Minstr/s")
	}
}

func BenchmarkFaultCampaignThroughput(b *testing.B) {
	bm, _ := benchprog.ByName("pathfinder")
	m := bm.MustModule()
	bind := bm.Bind(bm.Reference)
	golden, err := fault.RunGolden(m, bind, bm.ExecConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := &fault.Campaign{Mod: m, Bind: bind, Cfg: bm.ExecConfig(), Golden: golden}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(200, int64(i))
	}
	b.StopTimer()
	b.ReportMetric(200*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
}

func BenchmarkAblationAnnealSearch(b *testing.B) {
	bm, meas := measureFor(b, "knn", 8)
	tgt := minpsid.Target{Mod: bm.MustModule(), Spec: bm.Spec, Bind: bm.Bind, Exec: bm.ExecConfig()}
	cfg := minpsid.Config{FaultsPerInstr: 8, MaxInputs: 3, Patience: 2,
		PopSize: 4, MaxGenerations: 2, Seed: 9, Strategy: minpsid.StrategyAnneal}
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		res := minpsid.Search(tgt, cfg, bm.Reference, meas)
		found = len(res.Incubative)
	}
	b.ReportMetric(float64(found), "incubative")
}

// BenchmarkAblationFullDuplication measures the Fig. 1(b) upper bound:
// full duplication's coverage and dynamic-instruction overhead, the
// trade-off SID navigates.
func BenchmarkAblationFullDuplication(b *testing.B) {
	bm, _ := benchprog.ByName("pathfinder")
	m := bm.MustModule()
	bind := bm.Bind(bm.Reference)
	b.ResetTimer()
	var cov, overhead float64
	for i := 0; i < b.N; i++ {
		full := sid.FullDuplication(m)
		golden, err := fault.RunGolden(full, bind, bm.ExecConfig())
		if err != nil {
			b.Fatal(err)
		}
		base, err := fault.RunGolden(m, bind, bm.ExecConfig())
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(golden.DynInstrs)/float64(base.DynInstrs) - 1
		c := &fault.Campaign{Mod: full, Bind: bind, Cfg: bm.ExecConfig(), Golden: golden}
		res := c.Run(300, int64(i))
		cov, _ = res.SDCCoverage()
	}
	b.ReportMetric(cov*100, "coverage-%")
	b.ReportMetric(overhead*100, "overhead-%")
}

// BenchmarkAblationHeuristicSelection compares SDCTune-style static
// scoring against FI-measured probabilities: preparation cost vs the
// coverage of the resulting selection (evaluated on the reference input).
func BenchmarkAblationHeuristicSelection(b *testing.B) {
	bm, _ := benchprog.ByName("needle")
	m := bm.MustModule()
	bind := bm.Bind(bm.Reference)
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		meas, err := sid.HeuristicMeasure(m, bind, bm.ExecConfig())
		if err != nil {
			b.Fatal(err)
		}
		sel := sid.Select(m, meas, 0.5, sid.MethodDP)
		prot := sid.Duplicate(m, sel.Chosen)
		res, err := sid.EvaluateCoverage(prot, bind, sid.Config{Exec: bm.ExecConfig()}, 200, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		cov, _ = res.SDCCoverage()
	}
	b.ReportMetric(cov*100, "coverage-%")
}

func BenchmarkAblationFISelection(b *testing.B) {
	bm, _ := benchprog.ByName("needle")
	m := bm.MustModule()
	bind := bm.Bind(bm.Reference)
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		meas, err := sid.Measure(m, bind, sid.Config{Exec: bm.ExecConfig(), FaultsPerInstr: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		sel := sid.Select(m, meas, 0.5, sid.MethodDP)
		prot := sid.Duplicate(m, sel.Chosen)
		res, err := sid.EvaluateCoverage(prot, bind, sid.Config{Exec: bm.ExecConfig()}, 200, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		cov, _ = res.SDCCoverage()
	}
	b.ReportMetric(cov*100, "coverage-%")
}
