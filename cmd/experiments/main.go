// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # quick profile, every experiment
//	experiments -exp fig2,table2 -full   # paper-scale fault counts
//	experiments -exp fig6 -bench kmeans,knn
//
// Experiments: table1, fig2, chart2 (ASCII candlesticks), table2, fig3,
// fig5, fig6, chart6, table3, fig7, fig8, fig9 (includes table4),
// overhead (§VIII-A), mtfft (§VIII-B), matrix (detector × fault-model
// true-coverage matrix; not part of all), static-rank (Spearman rank
// correlation of the static propagation-graph SDC score against FI
// ground truth; not part of all).
//
// -fault-model and -detector swap the injected fault model and the
// detector portfolio for every experiment; the defaults (bitflip, dup)
// reproduce the paper's tables byte-for-byte at a fixed seed.
//
// Tables and figures print to stdout; each experiment additionally writes
// a machine-readable metrics report to <out>/<exp>.json, and task
// artifacts persist under <out>/cache so interrupted or repeated runs
// resume instead of re-injecting faults (-cache=false disables). Cached
// or not, the printed tables are byte-identical for a given seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments, or all")
		full     = flag.Bool("full", false, "paper-scale fault counts (slow)")
		medium   = flag.Bool("medium", false, "intermediate fault counts (~1h single-core)")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all 11)")
		seed     = flag.Int64("seed", 2022, "experiment seed")
		workers  = flag.Int("workers", 0, "FI worker count (0 = GOMAXPROCS)")
		metrics  = flag.Bool("metrics", false, "report per-phase campaign metrics and cache stats")
		engine   = flag.String("engine", "image", "execution engine: image, compiled, legacy, or auto")
		model    = flag.String("fault-model", "", "fault model to inject (bitflip, bitflip2, byteflip, stuckat0, stuckat1, defect; empty = bitflip)")
		detector = flag.String("detector", "", "detector portfolio (dup, inv, cfgsig, comma lists, or all; empty = dup)")
		outDir   = flag.String("out", "results", "directory for per-experiment JSON reports (empty disables)")
		cache    = flag.Bool("cache", true, "persist task artifacts under <out>/cache for resumable reruns")
		incr     = flag.Bool("incremental", false, "key fault-injection artifacts per program section: edits re-run only the sections they touch (defaults off; default runs reproduce the paper byte-for-byte)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event file (Perfetto-loadable) to this path")
		manifest = flag.String("manifest", "", "write a run manifest (span tree + metrics registry) to this path")
	)
	flag.Parse()

	if eng, err := interp.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	} else if eng != interp.EngineAuto {
		interp.DefaultEngine = eng
	}

	profile := "quick"
	if *medium {
		profile = "medium"
	}
	if *full {
		profile = "full"
	}
	o := options{
		exps:        *exp,
		profile:     profile,
		benches:     *benches,
		seed:        *seed,
		workers:     *workers,
		metrics:     *metrics,
		faultModel:  *model,
		detector:    *detector,
		incremental: *incr,
		resultsDir:  *outDir,
		tracePath:   *traceOut,
		manifest:    *manifest,
		out:         os.Stdout,
	}
	if *cache && *outDir != "" {
		o.cacheDir = filepath.Join(*outDir, "cache")
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// options parameterizes one invocation (flag surface minus the engine,
// which is process-global).
type options struct {
	exps       string
	profile    string
	benches    string
	seed       int64
	workers    int
	metrics    bool
	faultModel string // injected fault model; "" = bitflip
	detector   string // detector portfolio; "" = dup
	// incremental keys FI artifacts per program section (sectional
	// campaigns); off by default.
	incremental bool
	resultsDir  string // per-experiment JSON reports; "" disables
	cacheDir    string // on-disk artifact tier; "" disables
	tracePath   string // Chrome trace_event output; "" disables
	manifest    string // run-manifest output; "" disables
	out         io.Writer
}

func run(o options) error {
	p := harness.Quick()
	switch o.profile {
	case "medium":
		p = harness.Medium()
	case "full":
		p = harness.Full()
	}
	p.Seed = o.seed
	p.Workers = o.workers
	p.FaultModel = o.faultModel
	p.Detector = o.detector
	p.Incremental = o.incremental
	r := harness.NewRunner(p)
	if o.cacheDir != "" {
		if err := r.Pipe.EnableDisk(o.cacheDir); err != nil {
			return err
		}
	}
	var ob *obs.Obs
	if o.tracePath != "" || o.manifest != "" {
		ob = obs.New("experiments")
		r.SetObs(ob)
	}

	bs := benchprog.Eleven()
	if o.benches != "" {
		bs = bs[:0]
		for _, name := range strings.Split(o.benches, ",") {
			b, ok := benchprog.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown benchmark %q", name)
			}
			bs = append(bs, b)
		}
	}

	exps := strings.Split(o.exps, ",")
	if o.exps == "all" {
		exps = []string{"table1", "fig2", "chart2", "table2", "fig3", "fig5",
			"fig6", "chart6", "table3", "fig7", "fig8", "fig9", "overhead",
			"overlap", "errorbars", "mtfft"}
	}

	w := o.out
	for _, e := range exps {
		name := strings.TrimSpace(e)
		before := r.Pipe.NumNodes()
		esp := ob.Start("exp:" + name)
		var err error
		switch name {
		case "table1":
			err = harness.Table1(w)
		case "fig2":
			err = harness.Fig2(r, bs, w)
		case "chart2":
			err = harness.CoverageChart(r, bs, false, w)
		case "chart6":
			err = harness.CoverageChart(r, bs, true, w)
		case "table2":
			err = harness.Table2(r, bs, w)
		case "fig3":
			err = harness.Fig3(r, w)
		case "fig5":
			err = harness.Fig5(w)
		case "fig6":
			err = harness.Fig6(r, bs, w)
		case "table3":
			err = harness.Table3(r, bs, w)
		case "fig7":
			_, err = harness.Fig7(r, bs, w)
		case "fig8":
			err = harness.Fig8(r, bs, w)
		case "fig9", "table4":
			_, err = harness.Fig9(r, w)
		case "overhead":
			err = harness.OverheadVariance(r, bs, w)
		case "overlap":
			err = harness.LevelOverlap(r, bs, w)
		case "errorbars":
			err = harness.ErrorBars(r, bs, w)
		case "mtfft":
			err = harness.MTFFT(r, w)
		case "static-rank":
			err = harness.StaticRank(r, bs, w)
		case "matrix":
			// Detector × fault-model matrix on the first selected benchmark
			// (not part of -exp all: it sweeps every registered model).
			err = harness.DetectorMatrix(r, bs[0], w)
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		esp.End()
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		if o.resultsDir != "" {
			if err := writeReport(r, o, name, before); err != nil {
				return err
			}
		}
	}
	if o.metrics {
		if err := pipeline.RenderMetrics(w, r.Metrics, r.Cache, r.Pipe); err != nil {
			return err
		}
	}
	if ob != nil {
		r.Metrics.Publish(ob.Reg)
		if err := ob.WriteOutputs("experiments", o.seed, analysis.Version, o.manifest, o.tracePath); err != nil {
			return err
		}
	}
	return nil
}

// writeReport emits <resultsDir>/<exp>.json: the task nodes this
// experiment touched (everything recorded since fromNode) plus the
// cumulative store, campaign-cache, and per-phase accounting.
func writeReport(r *harness.Runner, o options, exp string, fromNode int) error {
	nodes := r.Pipe.Nodes()
	if fromNode <= len(nodes) {
		nodes = nodes[fromNode:]
	}
	store := r.Pipe.Stats()
	camp := r.Cache.Stats()
	rep := &pipeline.Report{
		Schema:      pipeline.ReportSchema,
		Tool:        "experiments",
		Experiment:  exp,
		Profile:     o.profile,
		Seed:        o.seed,
		Workers:     o.workers,
		FaultModel:  o.faultModel,
		Detector:    o.detector,
		Incremental: o.incremental,
		CacheDir:    r.Pipe.DiskDir(),
		Nodes:       nodes,
		NodeSummary: pipeline.Summarize(nodes),
		Store:       &store,
		Campaigns:   &camp,
		Phases:      r.Metrics.Snapshots(),
	}
	return pipeline.WriteReport(filepath.Join(o.resultsDir, exp+".json"), rep)
}
