// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # quick profile, every experiment
//	experiments -exp fig2,table2 -full   # paper-scale fault counts
//	experiments -exp fig6 -bench kmeans,knn
//
// Experiments: table1, fig2, chart2 (ASCII candlesticks), table2, fig3,
// fig5, fig6, chart6, table3, fig7, fig8, fig9 (includes table4),
// overhead (§VIII-A), mtfft (§VIII-B).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/harness"
	"repro/internal/interp"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments, or all")
		full    = flag.Bool("full", false, "paper-scale fault counts (slow)")
		medium  = flag.Bool("medium", false, "intermediate fault counts (~1h single-core)")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: all 11)")
		seed    = flag.Int64("seed", 2022, "experiment seed")
		workers = flag.Int("workers", 0, "FI worker count (0 = GOMAXPROCS)")
		metrics = flag.Bool("metrics", false, "report per-phase campaign metrics and cache stats")
		engine  = flag.String("engine", "image", "execution engine: image, legacy, or auto")
	)
	flag.Parse()

	if eng, err := interp.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	} else if eng != interp.EngineAuto {
		interp.DefaultEngine = eng
	}

	profile := "quick"
	if *medium {
		profile = "medium"
	}
	if *full {
		profile = "full"
	}
	if err := run(*exp, profile, *benches, *seed, *workers, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(expList, profile, benchList string, seed int64, workers int, metrics bool) error {
	p := harness.Quick()
	switch profile {
	case "medium":
		p = harness.Medium()
	case "full":
		p = harness.Full()
	}
	p.Seed = seed
	p.Workers = workers
	r := harness.NewRunner(p)

	bs := benchprog.Eleven()
	if benchList != "" {
		bs = bs[:0]
		for _, name := range strings.Split(benchList, ",") {
			b, ok := benchprog.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown benchmark %q", name)
			}
			bs = append(bs, b)
		}
	}

	exps := strings.Split(expList, ",")
	if expList == "all" {
		exps = []string{"table1", "fig2", "chart2", "table2", "fig3", "fig5",
			"fig6", "chart6", "table3", "fig7", "fig8", "fig9", "overhead",
			"overlap", "errorbars", "mtfft"}
	}

	w := os.Stdout
	for _, e := range exps {
		var err error
		switch strings.TrimSpace(e) {
		case "table1":
			err = harness.Table1(w)
		case "fig2":
			err = harness.Fig2(r, bs, w)
		case "chart2":
			err = harness.CoverageChart(r, bs, false, w)
		case "chart6":
			err = harness.CoverageChart(r, bs, true, w)
		case "table2":
			err = harness.Table2(r, bs, w)
		case "fig3":
			err = harness.Fig3(r, w)
		case "fig5":
			err = harness.Fig5(w)
		case "fig6":
			err = harness.Fig6(r, bs, w)
		case "table3":
			err = harness.Table3(r, bs, w)
		case "fig7":
			_, err = harness.Fig7(r, bs, w)
		case "fig8":
			err = harness.Fig8(r, bs, w)
		case "fig9", "table4":
			_, err = harness.Fig9(r, w)
		case "overhead":
			err = harness.OverheadVariance(r, bs, w)
		case "overlap":
			err = harness.LevelOverlap(r, bs, w)
		case "errorbars":
			err = harness.ErrorBars(r, bs, w)
		case "mtfft":
			err = harness.MTFFT(r, w)
		default:
			err = fmt.Errorf("unknown experiment %q", e)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if metrics {
		if err := r.Metrics.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w, r.Cache.Stats())
	}
	return nil
}
