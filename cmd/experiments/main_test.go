package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
)

// quickOptions returns a light invocation writing under dir (or nowhere
// when dir is empty).
func quickOptions(exps, benches, dir string) options {
	o := options{
		exps:    exps,
		profile: "quick",
		benches: benches,
		seed:    1,
		out:     new(bytes.Buffer),
	}
	if dir != "" {
		o.resultsDir = dir
		o.cacheDir = filepath.Join(dir, "cache")
	}
	return o
}

func TestRunSelectedExperiments(t *testing.T) {
	// Light experiments only; the heavy ones are covered by the harness
	// tests and the root benchmark suite.
	dir := t.TempDir()
	o := quickOptions("table1,fig5", "", dir)
	o.metrics = true
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"table1.json", "fig5.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing report %s: %v", f, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "cache")); err != nil {
		t.Errorf("missing artifact cache dir: %v", err)
	}
}

// TestRunColdThenWarmIsByteIdentical is the acceptance check for the
// artifact store: a second invocation over the same results directory
// must print byte-identical tables while re-running zero fault-injecting
// task nodes (everything heavy comes back from disk).
func TestRunColdThenWarmIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cold/warm comparison runs real campaigns")
	}
	dir := t.TempDir()

	cold := quickOptions("fig2,table2", "pathfinder", dir)
	if err := run(cold); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	warm := quickOptions("fig2,table2", "pathfinder", dir)
	if err := run(warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}

	coldOut := cold.out.(*bytes.Buffer).Bytes()
	warmOut := warm.out.(*bytes.Buffer).Bytes()
	if !bytes.Equal(coldOut, warmOut) {
		t.Errorf("cold and warm output differ:\n--- cold\n%s\n--- warm\n%s", coldOut, warmOut)
	}

	// The warm run's reports must show no run-sourced fault work.
	for _, f := range []string{"fig2.json", "table2.json"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("read report: %v", err)
		}
		var rep pipeline.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("parse report %s: %v", f, err)
		}
		for _, kind := range []string{"measure", "search", "campaign", "inputs"} {
			if n := rep.NodeSummary[kind][pipeline.SourceRun]; n != 0 {
				t.Errorf("%s: warm run executed %d %s nodes, want 0", f, n, kind)
			}
		}
	}
}

func TestRunWithoutResultsDir(t *testing.T) {
	if err := run(quickOptions("table1", "", "")); err != nil {
		t.Fatalf("run without results dir: %v", err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(quickOptions("figX", "", "")); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(quickOptions("table1", "nope", "")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
