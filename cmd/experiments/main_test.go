package main

import "testing"

func TestRunSelectedExperiments(t *testing.T) {
	// Light experiments only; the heavy ones are covered by the harness
	// tests and the root benchmark suite.
	if err := run("table1,fig5", "quick", "", 1, 0, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run("figX", "quick", "", 1, 0, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("table1", "quick", "nope", 1, 0, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
