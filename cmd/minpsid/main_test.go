package main

import "testing"

func TestRunProtectsBenchmark(t *testing.T) {
	if err := run("pathfinder", "sid", 0.3, true, 1, false, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "sid", 0.3, true, 1, false, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("pathfinder", "bogus", 0.3, true, 1, false, false); err == nil {
		t.Fatal("unknown technique accepted")
	}
}
