package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunProtectsBenchmark(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "minpsid.json")
	if err := run("pathfinder", "sid", 0.3, true, 1, false, true, jsonOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(jsonOut); err != nil {
		t.Errorf("missing JSON report: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "sid", 0.3, true, 1, false, false, ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("pathfinder", "bogus", 0.3, true, 1, false, false, ""); err == nil {
		t.Fatal("unknown technique accepted")
	}
}
