package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestRunProtectsBenchmark(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "minpsid.json")
	if err := run("pathfinder", "sid", 0.3, true, 1, "", "", false, true, jsonOut, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(jsonOut); err != nil {
		t.Errorf("missing JSON report: %v", err)
	}
}

func TestRunWithPortfolio(t *testing.T) {
	if err := run("pathfinder", "sid", 0.3, true, 1, "byteflip", "all", false, false, "", "", ""); err != nil {
		t.Fatalf("run with byteflip/all: %v", err)
	}
}

func TestRunWritesManifestAndTrace(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "manifest.json")
	trace := filepath.Join(dir, "trace.json")
	if err := run("pathfinder", "minpsid", 0.3, true, 1, "", "", false, false, "", trace, manifest); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Tool != "minpsid" || m.Trace == nil {
		t.Errorf("manifest tool=%q trace=%v, want minpsid with trace", m.Tool, m.Trace)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Errorf("missing chrome trace: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "sid", 0.3, true, 1, "", "", false, false, "", "", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("pathfinder", "bogus", 0.3, true, 1, "", "", false, false, "", "", ""); err == nil {
		t.Fatal("unknown technique accepted")
	}
	if err := run("pathfinder", "sid", 0.3, true, 1, "nope", "", false, false, "", "", ""); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if err := run("pathfinder", "sid", 0.3, true, 1, "", "nope", false, false, "", "", ""); err == nil {
		t.Fatal("unknown detector accepted")
	}
}
