package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

func TestRunProtectsBenchmark(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "minpsid.json")
	if err := run("pathfinder", "sid", 0.3, true, 1, "", "", false, true, false, jsonOut, "", "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(jsonOut); err != nil {
		t.Errorf("missing JSON report: %v", err)
	}
}

func TestRunWithPortfolio(t *testing.T) {
	if err := run("pathfinder", "sid", 0.3, true, 1, "byteflip", "all", false, false, false, "", "", "", ""); err != nil {
		t.Fatalf("run with byteflip/all: %v", err)
	}
}

func TestRunWritesManifestAndTrace(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "manifest.json")
	trace := filepath.Join(dir, "trace.json")
	if err := run("pathfinder", "minpsid", 0.3, true, 1, "", "", false, false, false, "", trace, manifest, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Tool != "minpsid" || m.Trace == nil {
		t.Errorf("manifest tool=%q trace=%v, want minpsid with trace", m.Tool, m.Trace)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Errorf("missing chrome trace: %v", err)
	}
}

// TestAnalyzeIncremental drives the -analyze -incremental path: the
// JSON report must carry the per-section table with cache statuses that
// flip from miss to hit once an incremental run populates the store.
func TestAnalyzeIncremental(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")

	report := func(name string) *pipeline.Report {
		t.Helper()
		jsonOut := filepath.Join(dir, name)
		if err := runAnalyze("pathfinder", 1, true, true, "", jsonOut, cacheDir); err != nil {
			t.Fatalf("runAnalyze: %v", err)
		}
		data, err := os.ReadFile(jsonOut)
		if err != nil {
			t.Fatal(err)
		}
		var rep pipeline.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return &rep
	}

	cold := report("cold.json")
	if cold.Sections == nil || len(cold.Sections.Sections) == 0 {
		t.Fatal("JSON report carries no sectional table")
	}
	if cold.Sections.Schema != pipeline.SectionSchema {
		t.Errorf("sectional schema %q, want %q", cold.Sections.Schema, pipeline.SectionSchema)
	}
	for _, s := range cold.Sections.Sections {
		if s.Cached != "miss" {
			t.Errorf("%s: cold cache status %q, want miss", s.Name, s.Cached)
		}
	}

	// Populate the store with a full incremental protection run at the
	// same seed/model, then re-analyze: every section must hit.
	if err := run("pathfinder", "sid", 0.3, true, 1, "", "", false, false, true, "", "", "", cacheDir); err != nil {
		t.Fatalf("incremental run: %v", err)
	}
	warm := report("warm.json")
	for _, s := range warm.Sections.Sections {
		if s.Cached != "hit" {
			t.Errorf("%s: warm cache status %q, want hit", s.Name, s.Cached)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "sid", 0.3, true, 1, "", "", false, false, false, "", "", "", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("pathfinder", "bogus", 0.3, true, 1, "", "", false, false, false, "", "", "", ""); err == nil {
		t.Fatal("unknown technique accepted")
	}
	if err := run("pathfinder", "sid", 0.3, true, 1, "nope", "", false, false, false, "", "", "", ""); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if err := run("pathfinder", "sid", 0.3, true, 1, "", "nope", false, false, false, "", "", "", ""); err == nil {
		t.Fatal("unknown detector accepted")
	}
}
