// Command minpsid protects one of the built-in benchmarks with baseline
// SID or MINPSID at a chosen protection level and reports the selection,
// the expected SDC coverage, the incubative instructions found, and the
// one-time analysis cost.
//
// Usage:
//
//	minpsid -bench kmeans -tech minpsid -level 0.5 [-quick] [-seed 1] [-dump]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/minpsid"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sid"
)

func main() {
	var (
		bench    = flag.String("bench", "kmeans", "benchmark name (see -list)")
		tech     = flag.String("tech", "minpsid", "protection technique: sid or minpsid")
		level    = flag.Float64("level", 0.5, "protection level (fraction of dynamic cycles)")
		quick    = flag.Bool("quick", true, "use reduced fault-injection budgets")
		seed     = flag.Int64("seed", 1, "random seed")
		dump     = flag.Bool("dump", false, "dump the protected IR module")
		model    = flag.String("fault-model", "", "fault model to tune for and inject (bitflip, bitflip2, byteflip, stuckat0, stuckat1, defect; empty = bitflip)")
		detector = flag.String("detector", "", "detector portfolio (dup, inv, cfgsig, comma lists, or all; empty = dup)")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		metrics  = flag.Bool("metrics", false, "report per-phase campaign metrics and cache stats")
		jsonOut  = flag.String("json", "", "write a machine-readable metrics report to this file")
		engine   = flag.String("engine", "image", "execution engine: image, compiled, legacy, or auto")
		analyze  = flag.Bool("analyze", false, "print the static SDC-masking triage report for -bench and exit")
		incr     = flag.Bool("incremental", false, "key fault-injection artifacts per program section (sectional campaigns); defaults off and reproduces the paper byte-for-byte")
		cacheDir = flag.String("cache-dir", "", "persist task artifacts under this directory for resumable (and incremental) reruns")
		traceOut = flag.String("trace", "", "write a Chrome trace_event file (Perfetto-loadable) to this path")
		manifest = flag.String("manifest", "", "write a run manifest (span tree + metrics registry) to this path")
	)
	flag.Parse()

	if eng, err := interp.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "minpsid:", err)
		os.Exit(2)
	} else if eng != interp.EngineAuto {
		interp.DefaultEngine = eng
	}

	if *list {
		for _, n := range core.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}

	if *analyze {
		if err := runAnalyze(*bench, *seed, *quick, *incr, *model, *jsonOut, *cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "minpsid:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*bench, *tech, *level, *quick, *seed, *model, *detector, *dump, *metrics, *incr, *jsonOut, *traceOut, *manifest, *cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "minpsid:", err)
		os.Exit(1)
	}
}

// runAnalyze implements -analyze: the triage of one benchmark module as
// a human-readable table, plus — with -incremental — the per-section
// partition table (shape, provably-masked share, content-hash prefix,
// and per-section artifact cache status when -cache-dir points at a
// store). Optionally both are embedded in the shared JSON report.
func runAnalyze(bench string, seed int64, quick, incremental bool, model, jsonOut, cacheDir string) error {
	prog, err := core.FromBenchmark(bench)
	if err != nil {
		return err
	}
	rep := analysis.TriageFor(prog.Module).Report()
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	var secs *pipeline.SectionalAnalysis
	if incremental {
		var store *pipeline.DiskStore
		if cacheDir != "" {
			if store, err = pipeline.NewDiskStore(cacheDir); err != nil {
				return err
			}
		}
		opts := core.DefaultOptions()
		if quick {
			opts = core.QuickOptions()
		}
		tgt := minpsid.Target{Mod: prog.Module, Spec: prog.Spec, Bind: prog.Bind, Exec: prog.Exec}
		secs, err = pipeline.BuildSectionalAnalysis(tgt, prog.Reference,
			opts.FaultsPerInstr, seed, model, store)
		if err != nil {
			return err
		}
		fmt.Println()
		if err := secs.Render(os.Stdout); err != nil {
			return err
		}
	}
	if jsonOut != "" {
		return pipeline.WriteReport(jsonOut, &pipeline.Report{
			Schema:   pipeline.ReportSchema,
			Tool:     "minpsid",
			Seed:     seed,
			Analysis: rep,
			Sections: secs,
		})
	}
	return nil
}

func run(bench, techName string, level float64, quick bool, seed int64, model, detector string, dump, metrics, incremental bool, jsonOut, traceOut, manifestOut, cacheDir string) error {
	technique, err := core.ParseTechnique(techName)
	if err != nil {
		return err
	}
	prog, err := core.FromBenchmark(bench)
	if err != nil {
		return err
	}

	opts := core.DefaultOptions()
	if quick {
		opts = core.QuickOptions()
	}
	opts.Seed = seed
	opts.FaultModel = model
	opts.Detector = detector
	opts.Incremental = incremental
	if metrics || jsonOut != "" {
		opts.Cache = fault.NewCache(0)
		opts.Metrics = fault.NewMetrics()
	}
	// The protection runs as a task graph; keep the pipeline so the
	// metrics output can report its nodes.
	pipe := pipeline.NewMem(0)
	if cacheDir != "" {
		if err := pipe.EnableDisk(cacheDir); err != nil {
			return err
		}
	}
	opts.Pipe = pipe
	var ob *obs.Obs
	if traceOut != "" || manifestOut != "" {
		ob = obs.New("minpsid")
		opts.Obs = ob
		interp.SetObs(ob.Reg)
		defer interp.SetObs(nil)
		if opts.Metrics == nil {
			opts.Metrics = fault.NewMetrics()
		}
	}

	fmt.Printf("protecting %s with %s at %.0f%% level (faults/instr=%d)\n",
		bench, technique, level*100, opts.FaultsPerInstr)
	if model != "" || detector != "" {
		fmt.Printf("fault model: %s, detector portfolio: %s\n",
			pipeline.NormModel(model), pipeline.NormDetector(detector))
	}

	prot, err := prog.Protect(technique, level, opts)
	if err != nil {
		return err
	}

	fmt.Printf("selected instructions:  %d of %d\n", len(prot.Chosen), prog.Module.NumInstrs())
	if len(prot.Detectors) > 0 {
		byDet := map[string]int{}
		for _, d := range prot.Detectors {
			byDet[d]++
		}
		fmt.Print("detector assignment:    ")
		first := true
		for _, name := range sid.DetectorNames() {
			if byDet[name] == 0 {
				continue
			}
			if !first {
				fmt.Print(", ")
			}
			fmt.Printf("%s %d", name, byDet[name])
			first = false
		}
		fmt.Println()
	}
	fmt.Printf("expected SDC coverage:  %.2f%%\n", prot.ExpectedCoverage*100)
	if technique == core.TechniqueMINPSID {
		fmt.Printf("incubative instructions: %d\n", len(prot.Incubative))
		fmt.Printf("analysis time: ref-FI %.2fs, search engine %.2fs, incubative-FI %.2fs (total %.2fs)\n",
			prot.Timing.RefFI.Seconds(), prot.Timing.SearchEngine.Seconds(),
			prot.Timing.IncubativeFI.Seconds(), prot.Timing.Total().Seconds())
	}
	fmt.Printf("protected module: %d instructions (+%d)\n",
		prot.Module.NumInstrs(), prot.Module.NumInstrs()-prog.Module.NumInstrs())

	// Sanity: the protected binary behaves identically on the reference.
	orig := prog.Run(prog.Reference)
	protRun := core.Program{Name: prog.Name, Module: prot.Module, Spec: prog.Spec,
		Reference: prog.Reference, Bind: prog.Bind, Exec: prog.Exec}
	after := protRun.Run(prog.Reference)
	if len(orig.Output) != len(after.Output) {
		return fmt.Errorf("protected output length differs: %d vs %d", len(orig.Output), len(after.Output))
	}
	for i := range orig.Output {
		if orig.Output[i] != after.Output[i] {
			return fmt.Errorf("protected output differs at %d", i)
		}
	}
	fmt.Printf("verification: protected output matches original (%d words); dyn instrs %d -> %d (+%.1f%%)\n",
		len(orig.Output), orig.DynInstrs, after.DynInstrs,
		100*float64(after.DynInstrs-orig.DynInstrs)/float64(orig.DynInstrs))

	if metrics {
		if err := pipeline.RenderMetrics(os.Stdout, opts.Metrics, opts.Cache, pipe); err != nil {
			return err
		}
	}
	if jsonOut != "" {
		nodes := pipe.Nodes()
		store := pipe.Stats()
		camp := opts.Cache.Stats()
		rep := &pipeline.Report{
			Schema:      pipeline.ReportSchema,
			Tool:        "minpsid",
			Seed:        seed,
			FaultModel:  model,
			Detector:    detector,
			Nodes:       nodes,
			NodeSummary: pipeline.Summarize(nodes),
			Store:       &store,
			Campaigns:   &camp,
			Phases:      opts.Metrics.Snapshots(),
		}
		if err := pipeline.WriteReport(jsonOut, rep); err != nil {
			return err
		}
	}

	if ob != nil {
		opts.Metrics.Publish(ob.Reg)
		if err := ob.WriteOutputs("minpsid", seed, analysis.Version, manifestOut, traceOut); err != nil {
			return err
		}
	}

	if dump {
		fmt.Println(prot.Module.String())
	}
	return nil
}
