// Command sdcfi runs a fault-injection campaign (the LLFI-equivalent
// step) on a built-in benchmark: it injects single-bit flips into random
// dynamic instructions and reports the outcome distribution with 95%
// confidence intervals.
//
// Usage:
//
//	sdcfi -bench fft -n 1000 [-input ref | -input-seed 7] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

func main() {
	var (
		bench     = flag.String("bench", "fft", "benchmark name")
		n         = flag.Int("n", 1000, "number of fault-injection trials")
		input     = flag.String("input", "ref", "input selection: ref or random")
		inputSeed = flag.Int64("input-seed", 7, "seed for -input random")
		seed      = flag.Int64("seed", 1, "fault-site sampling seed")
		metrics   = flag.Bool("metrics", false, "report campaign metrics (outcome histogram, wall/busy time, workers)")
		jsonOut   = flag.String("json", "", "write a machine-readable metrics report to this file")
		engine    = flag.String("engine", "image", "execution engine: image, compiled, legacy, or auto")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event file (Perfetto-loadable) to this path")
		manifest  = flag.String("manifest", "", "write a run manifest (span tree + metrics registry) to this path")
	)
	flag.Parse()

	if err := setEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "sdcfi:", err)
		os.Exit(2)
	}
	if err := run(*bench, *n, *input, *inputSeed, *seed, *metrics, *jsonOut, *traceOut, *manifest); err != nil {
		fmt.Fprintln(os.Stderr, "sdcfi:", err)
		os.Exit(1)
	}
}

// setEngine applies the -engine flag to the process-wide default.
func setEngine(s string) error {
	eng, err := interp.ParseEngine(s)
	if err != nil {
		return err
	}
	if eng != interp.EngineAuto {
		interp.DefaultEngine = eng
	}
	return nil
}

func run(bench string, n int, input string, inputSeed, seed int64, metrics bool, jsonOut, traceOut, manifestOut string) error {
	prog, err := core.FromBenchmark(bench)
	if err != nil {
		return err
	}
	in := prog.Reference
	if input == "random" {
		in = prog.RandomInput(rand.New(rand.NewSource(inputSeed)))
	}
	fmt.Printf("benchmark %s, input: %s\n", bench, prog.Spec.String(in))

	var m *fault.Metrics
	if metrics || jsonOut != "" {
		m = fault.NewMetrics()
	}
	var ob *obs.Obs
	if traceOut != "" || manifestOut != "" {
		ob = obs.New("sdcfi")
		interp.SetObs(ob.Reg)
		defer interp.SetObs(nil)
	}
	csp := ob.Start("campaign:" + bench)
	res, err := prog.InjectionCampaignOpts(in, n, seed, nil, m.Phase("program-fi"), ob.At(csp))
	csp.End()
	if err != nil {
		return err
	}
	fmt.Printf("trials: %d\n", res.Trials)
	if res.Shortfall > 0 {
		fmt.Printf("shortfall: %d of %d requested trials could not be drawn\n", res.Shortfall, res.Requested)
	}
	for _, o := range []fault.Outcome{fault.OutcomeBenign, fault.OutcomeSDC,
		fault.OutcomeCrash, fault.OutcomeHang, fault.OutcomeDetected} {
		k := res.Counts[o]
		lo, hi := stats.WilsonInterval(k, res.Trials)
		fmt.Printf("  %-9s %6d  (%6.2f%%, 95%% CI [%.2f%%, %.2f%%])\n",
			o, k, 100*res.Rate(o), lo*100, hi*100)
	}
	if metrics {
		if err := pipeline.RenderMetrics(os.Stdout, m, nil, nil); err != nil {
			return err
		}
	}
	if jsonOut != "" {
		rep := &pipeline.Report{
			Schema: pipeline.ReportSchema,
			Tool:   "sdcfi",
			Seed:   seed,
			Phases: m.Snapshots(),
		}
		if err := pipeline.WriteReport(jsonOut, rep); err != nil {
			return err
		}
	}
	if ob != nil {
		m.Publish(ob.Reg)
		if err := ob.WriteOutputs("sdcfi", seed, analysis.Version, manifestOut, traceOut); err != nil {
			return err
		}
	}
	return nil
}
