// Command sdcfi runs a fault-injection campaign (the LLFI-equivalent
// step) on a built-in benchmark: it injects faults of a chosen model
// into random dynamic instructions and reports the outcome distribution
// with 95% confidence intervals.
//
// Usage:
//
//	sdcfi -bench fft -n 1000 [-input ref | -input-seed 7] [-seed 1]
//	sdcfi -bench fft -fault-model byteflip                  # swap the model
//	sdcfi -bench fft -level 0.5 -detector inv,dup           # protect, then
//	                                                        # measure true coverage
//
// With -level > 0 the benchmark is first protected with baseline SID at
// that level using the given detector portfolio, and the campaign
// additionally reports the paper-definition SDC coverage of the
// protection under the chosen fault model. The defaults (-fault-model
// bitflip, -detector dup) reproduce the original single-bit/duplication
// pipeline byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/sid"
	"repro/internal/stats"
)

func main() {
	if code, handled := dispatch(os.Args[1:]); handled {
		os.Exit(code)
	}
	var (
		bench     = flag.String("bench", "fft", "benchmark name")
		n         = flag.Int("n", 1000, "number of fault-injection trials")
		input     = flag.String("input", "ref", "input selection: ref or random")
		inputSeed = flag.Int64("input-seed", 7, "seed for -input random")
		seed      = flag.Int64("seed", 1, "fault-site sampling seed")
		model     = flag.String("fault-model", "", "fault model to inject (bitflip, bitflip2, byteflip, stuckat0, stuckat1, defect; empty = bitflip)")
		detector  = flag.String("detector", "", "detector portfolio for -level protection (dup, inv, cfgsig, comma lists, or all; empty = dup)")
		level     = flag.Float64("level", 0, "protect at this level first and report true SDC coverage (0 = campaign only)")
		metrics   = flag.Bool("metrics", false, "report campaign metrics (outcome histogram, wall/busy time, workers)")
		incr      = flag.Bool("incremental", false, "run the campaign sectionally: per-section trial apportionment and RNG sub-streams, with a per-section breakdown")
		jsonOut   = flag.String("json", "", "write a machine-readable metrics report to this file")
		engine    = flag.String("engine", "image", "execution engine: image, compiled, legacy, or auto")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event file (Perfetto-loadable) to this path")
		manifest  = flag.String("manifest", "", "write a run manifest (span tree + metrics registry) to this path")
		resultOut = flag.String("result-out", "", "write the canonical campaign result document to this path (requires -incremental; byte-comparable to a server job result)")
	)
	flag.Parse()

	if err := setEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "sdcfi:", err)
		os.Exit(2)
	}
	o := options{
		bench: *bench, n: *n, input: *input, inputSeed: *inputSeed, seed: *seed,
		model: *model, detector: *detector, level: *level,
		metrics: *metrics, incremental: *incr,
		jsonOut: *jsonOut, traceOut: *traceOut, manifest: *manifest,
		resultOut: *resultOut,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "sdcfi:", err)
		os.Exit(1)
	}
}

// options is the flag surface of one invocation (minus the engine, which
// is process-global).
type options struct {
	bench     string
	n         int
	input     string
	inputSeed int64
	seed      int64
	model     string
	detector  string
	level     float64
	metrics   bool
	// incremental switches the characterization campaign to the
	// sectional planner (per-section sub-streams + composition).
	incremental bool
	jsonOut     string
	traceOut    string
	manifest    string
	// resultOut writes the canonical result document (server.Result)
	// after an incremental campaign — the direct-path half of the CI
	// client/server bit-identity check.
	resultOut string
}

// setEngine applies the -engine flag to the process-wide default.
func setEngine(s string) error {
	eng, err := interp.ParseEngine(s)
	if err != nil {
		return err
	}
	if eng != interp.EngineAuto {
		interp.DefaultEngine = eng
	}
	return nil
}

func run(o options) error {
	prog, err := core.FromBenchmark(o.bench)
	if err != nil {
		return err
	}
	var model fault.Model
	if o.model != "" {
		var ok bool
		if model, ok = fault.ModelByName(o.model); !ok {
			return fmt.Errorf("unknown fault model %q (have %s)",
				o.model, strings.Join(fault.ModelNames(), ", "))
		}
	}
	in := prog.Reference
	if o.input == "random" {
		in = prog.RandomInput(rand.New(rand.NewSource(o.inputSeed)))
	}
	fmt.Printf("benchmark %s, input: %s\n", o.bench, prog.Spec.String(in))
	if o.model != "" {
		fmt.Printf("fault model: %s\n", o.model)
	}

	var m *fault.Metrics
	if o.metrics || o.jsonOut != "" {
		m = fault.NewMetrics()
	}
	var ob *obs.Obs
	if o.traceOut != "" || o.manifest != "" {
		ob = obs.New("sdcfi")
		interp.SetObs(ob.Reg)
		defer interp.SetObs(nil)
	}
	csp := ob.Start("campaign:" + o.bench)
	var res fault.CampaignResult
	var profiles []fault.SectionProfile
	if o.incremental {
		res, profiles, err = prog.InjectionCampaignSectional(in, o.n, o.seed, model, nil, m.Phase("program-fi"), ob.At(csp))
	} else {
		res, err = prog.InjectionCampaignModel(in, o.n, o.seed, model, nil, m.Phase("program-fi"), ob.At(csp))
	}
	csp.End()
	if err != nil {
		return err
	}
	fmt.Printf("trials: %d\n", res.Trials)
	if res.Shortfall > 0 {
		fmt.Printf("shortfall: %d of %d requested trials could not be drawn\n", res.Shortfall, res.Requested)
	}
	for _, oc := range []fault.Outcome{fault.OutcomeBenign, fault.OutcomeSDC,
		fault.OutcomeCrash, fault.OutcomeHang, fault.OutcomeDetected} {
		k := res.Counts[oc]
		lo, hi := stats.WilsonInterval(k, res.Trials)
		fmt.Printf("  %-9s %6d  (%6.2f%%, 95%% CI [%.2f%%, %.2f%%])\n",
			oc, k, 100*res.Rate(oc), lo*100, hi*100)
	}
	if o.resultOut != "" {
		if !o.incremental {
			return fmt.Errorf("-result-out requires -incremental (the server composes campaigns sectionally)")
		}
		doc := server.BuildResult(o.bench, prog.Spec.String(in), o.seed, o.model, res, profiles)
		if err := os.WriteFile(o.resultOut, server.EncodeResult(doc), 0o644); err != nil {
			return err
		}
	}
	if len(profiles) > 0 {
		fmt.Printf("sections: %d with apportioned trials\n", len(profiles))
		for _, pr := range profiles {
			sr := pr.Result()
			fmt.Printf("  %-24s trials %5d  sdc %5d  detected %5d\n",
				pr.Name, sr.Trials, sr.Counts[fault.OutcomeSDC], sr.Counts[fault.OutcomeDetected])
		}
	}
	if o.level > 0 {
		if err := runProtected(prog, in, o); err != nil {
			return err
		}
	}
	if o.metrics {
		if err := pipeline.RenderMetrics(os.Stdout, m, nil, nil); err != nil {
			return err
		}
	}
	if o.jsonOut != "" {
		rep := &pipeline.Report{
			Schema:      pipeline.ReportSchema,
			Tool:        "sdcfi",
			Seed:        o.seed,
			FaultModel:  o.model,
			Detector:    o.detector,
			Incremental: o.incremental,
			Phases:      m.Snapshots(),
		}
		if err := pipeline.WriteReport(o.jsonOut, rep); err != nil {
			return err
		}
	}
	if ob != nil {
		m.Publish(ob.Reg)
		if err := ob.WriteOutputs("sdcfi", o.seed, analysis.Version, o.manifest, o.traceOut); err != nil {
			return err
		}
	}
	return nil
}

// runProtected implements the -level path: protect with baseline SID at
// o.level using the requested detector portfolio, then measure the
// paper-definition true SDC coverage under the same fault model.
func runProtected(prog *core.Program, in inputgen.Input, o options) error {
	opts := core.QuickOptions()
	opts.Seed = o.seed
	opts.FaultModel = o.model
	opts.Detector = o.detector
	prot, err := prog.Protect(core.TechniqueSID, o.level, opts)
	if err != nil {
		return err
	}
	byDet := map[string]int{}
	for i := range prot.Chosen {
		name := "dup"
		if i < len(prot.Detectors) {
			name = prot.Detectors[i]
		}
		byDet[name]++
	}
	fmt.Printf("protection: level %.0f%%, %d sites (", o.level*100, len(prot.Chosen))
	for i, name := range sid.DetectorNames() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %d", name, byDet[name])
	}
	fmt.Printf("), expected coverage %.2f%%\n", prot.ExpectedCoverage*100)
	tc, err := prot.EvaluateTrueCoverage(in, o.n, o.seed)
	if err != nil {
		return err
	}
	if tc.Defined {
		fmt.Printf("true SDC coverage: %.2f%% (%d of %d SDC faults mitigated)\n",
			tc.Coverage*100, tc.Result.Mitigated, tc.Result.SDCFaults)
	} else {
		fmt.Println("true SDC coverage: undefined (no SDC fault observed)")
	}
	return nil
}
