package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestRunCampaign(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "sdcfi.json")
	if err := run("pathfinder", 100, "ref", 7, 1, true, jsonOut, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(jsonOut); err != nil {
		t.Errorf("missing JSON report: %v", err)
	}
	if err := run("fft", 50, "random", 7, 1, false, "", "", ""); err != nil {
		t.Fatalf("run with random input: %v", err)
	}
}

func TestRunWritesManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "manifest.json")
	if err := run("pathfinder", 50, "ref", 7, 1, false, "", "", manifest); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Tool != "sdcfi" {
		t.Errorf("manifest tool = %q, want sdcfi", m.Tool)
	}
	if c, ok := m.Registry.Counters["interp.runs"]; !ok || c == 0 {
		t.Errorf("manifest counter interp.runs = %d (present=%v), want > 0", c, ok)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("nope", 10, "ref", 0, 0, false, "", "", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
