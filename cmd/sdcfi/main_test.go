package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestRunCampaign(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "sdcfi.json")
	o := options{bench: "pathfinder", n: 100, input: "ref", inputSeed: 7, seed: 1,
		metrics: true, jsonOut: jsonOut}
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(jsonOut); err != nil {
		t.Errorf("missing JSON report: %v", err)
	}
	if err := run(options{bench: "fft", n: 50, input: "random", inputSeed: 7, seed: 1}); err != nil {
		t.Fatalf("run with random input: %v", err)
	}
}

func TestRunModelAndProtection(t *testing.T) {
	o := options{bench: "pathfinder", n: 100, input: "ref", inputSeed: 7, seed: 1,
		model: "stuckat1", detector: "inv,dup", level: 0.5}
	if err := run(o); err != nil {
		t.Fatalf("run with stuckat1/inv,dup: %v", err)
	}
	if err := run(options{bench: "fft", n: 10, input: "ref", model: "nope"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if err := run(options{bench: "fft", n: 10, input: "ref", detector: "nope", level: 0.3}); err == nil {
		t.Fatal("unknown detector accepted")
	}
}

func TestRunWritesManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "manifest.json")
	o := options{bench: "pathfinder", n: 50, input: "ref", inputSeed: 7, seed: 1, manifest: manifest}
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Tool != "sdcfi" {
		t.Errorf("manifest tool = %q, want sdcfi", m.Tool)
	}
	if c, ok := m.Registry.Counters["interp.runs"]; !ok || c == 0 {
		t.Errorf("manifest counter interp.runs = %d (present=%v), want > 0", c, ok)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run(options{bench: "nope", n: 10, input: "ref"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
