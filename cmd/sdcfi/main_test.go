package main

import "testing"

func TestRunCampaign(t *testing.T) {
	if err := run("pathfinder", 100, "ref", 7, 1, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("fft", 50, "random", 7, 1, false); err != nil {
		t.Fatalf("run with random input: %v", err)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("nope", 10, "ref", 0, 0, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
