package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunCampaign(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "sdcfi.json")
	if err := run("pathfinder", 100, "ref", 7, 1, true, jsonOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(jsonOut); err != nil {
		t.Errorf("missing JSON report: %v", err)
	}
	if err := run("fft", 50, "random", 7, 1, false, ""); err != nil {
		t.Fatalf("run with random input: %v", err)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("nope", 10, "ref", 0, 0, false, ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
