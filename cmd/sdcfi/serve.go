// Subcommands of sdcfi for the fleet-scale campaign service: "serve"
// runs the HTTP scheduler over an artifact store; "submit", "status",
// "watch", and "cancel" are the matching client verbs. The legacy
// flag-only invocation (no subcommand) is untouched.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
)

// dispatch routes a subcommand invocation; it returns false when args
// do not start with a known subcommand (legacy flag path).
func dispatch(args []string) (code int, handled bool) {
	if len(args) == 0 {
		return 0, false
	}
	switch args[0] {
	case "serve":
		return cmdServe(args[1:]), true
	case "submit":
		return cmdSubmit(args[1:]), true
	case "status":
		return cmdStatus(args[1:]), true
	case "watch":
		return cmdWatch(args[1:]), true
	case "cancel":
		return cmdCancel(args[1:]), true
	}
	return 0, false
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sdcfi:", err)
	return 1
}

func cmdServe(args []string) int {
	fs := flag.NewFlagSet("sdcfi serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:7077", "listen address")
		store        = fs.String("store", "", "artifact store directory (required; jobs resume from it)")
		workers      = fs.Int("workers", 0, "shard workers across all jobs (0 = GOMAXPROCS)")
		maxActive    = fs.Int("max-active", 0, "concurrently running jobs (0 = 2)")
		maxQueue     = fs.Int("max-queue", 0, "admission queue bound (0 = 16)")
		tenantMax    = fs.Int("tenant-max", 0, "per-tenant queued+running bound (0 = max-queue)")
		engine       = fs.String("engine", "image", "execution engine: image, compiled, legacy, or auto")
		preemptAfter = fs.Int("preempt-after", 0, "crash-test hook: park every job after this many committed shards (0 = off)")
	)
	fs.Parse(args)
	if *store == "" {
		return fail(fmt.Errorf("serve: -store is required"))
	}
	if err := setEngine(*engine); err != nil {
		return fail(err)
	}
	srv, err := server.New(server.Options{
		StoreDir:     *store,
		Workers:      *workers,
		MaxActive:    *maxActive,
		MaxQueue:     *maxQueue,
		TenantMax:    *tenantMax,
		PreemptAfter: *preemptAfter,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Printf("sdcfi serve: listening on %s, store %s\n", *addr, *store)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound how long a client may dribble headers or a request body
		// at the multi-tenant service. WriteTimeout stays off: the SSE
		// events endpoint streams for the life of a job.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	if err := hs.ListenAndServe(); err != nil {
		return fail(err)
	}
	return 0
}

func cmdSubmit(args []string) int {
	fs := flag.NewFlagSet("sdcfi submit", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:7077", "server base URL")
		bench     = fs.String("bench", "fft", "benchmark name")
		n         = fs.Int("n", 1000, "number of fault-injection trials")
		input     = fs.String("input", "ref", "input selection: ref or random")
		inputSeed = fs.Int64("input-seed", 7, "seed for -input random")
		seed      = fs.Int64("seed", 1, "fault-site sampling seed")
		model     = fs.String("fault-model", "", "fault model to inject (empty = bitflip)")
		tenant    = fs.String("tenant", "", "tenant for quota accounting")
		wait      = fs.Bool("wait", false, "watch progress until terminal and fetch the result")
		out       = fs.String("out", "", "write the result document to this file (with -wait; default stdout)")
	)
	fs.Parse(args)
	c := server.NewClient(*addr)
	resp, err := c.Submit(server.JobSpec{
		Bench: *bench, Input: *input, InputSeed: *inputSeed,
		Trials: *n, Seed: *seed, Model: *model, Tenant: *tenant,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "job %s %s (deduped=%v)\n", resp.ID, resp.State, resp.Deduped)
	if !*wait {
		fmt.Println(resp.ID)
		return 0
	}
	st, err := c.Watch(resp.ID, os.Stderr)
	if err != nil {
		return fail(err)
	}
	if st.State != server.StateDone {
		return fail(fmt.Errorf("job %s ended %s: %s", resp.ID, st.State, st.Error))
	}
	data, err := c.Result(resp.ID)
	if err != nil {
		return fail(err)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail(err)
	}
	return 0
}

// idFlags parses the shared -addr/-id pair of the status-family verbs.
func idFlags(name string, args []string) (*server.Client, string, int) {
	fs := flag.NewFlagSet("sdcfi "+name, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7077", "server base URL")
	id := fs.String("id", "", "job ID (required)")
	fs.Parse(args)
	if *id == "" {
		return nil, "", fail(fmt.Errorf("%s: -id is required", name))
	}
	return server.NewClient(*addr), *id, -1
}

func cmdStatus(args []string) int {
	c, id, code := idFlags("status", args)
	if code >= 0 {
		return code
	}
	st, err := c.Status(id)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("job %s\n  state  %s\n  bench  %s\n  trials %d\n  seed   %d\n  model  %s\n  shards %d/%d\n",
		st.ID, st.State, st.Bench, st.Trials, st.Seed, st.Model, st.Shards.Done, st.Shards.Total)
	if st.Error != "" {
		fmt.Printf("  error  %s\n", st.Error)
	}
	return 0
}

func cmdWatch(args []string) int {
	c, id, code := idFlags("watch", args)
	if code >= 0 {
		return code
	}
	st, err := c.Watch(id, os.Stdout)
	if err != nil {
		return fail(err)
	}
	if st.State != server.StateDone {
		return 1
	}
	return 0
}

func cmdCancel(args []string) int {
	c, id, code := idFlags("cancel", args)
	if code >= 0 {
		return code
	}
	st, err := c.Cancel(id)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("job %s %s\n", st.ID, st.State)
	return 0
}
