// Command minicc is the MiniC developer tool: it compiles MiniC source to
// the project's IR, optionally optimizes it, and can print, verify, run,
// or trace the result.
//
// Usage:
//
//	minicc -src prog.mc -emit-ir            # compile and dump IR text
//	minicc -src prog.mc -run -args 10,3.5   # compile and execute main(10, 3.5)
//	minicc -src prog.mc -run -trace 50      # trace the first 50 instructions
//	minicc -ir prog.ir -run                 # load IR text instead of MiniC
//
// Scalar arguments are comma separated; values containing '.' or 'e' bind
// as floats, everything else as signed integers. Dynamically sized global
// arrays can be bound with -global name=v1;v2;... (repeatable).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/passes"
)

// globalFlags collects repeated -global bindings.
type globalFlags map[string][]uint64

func (g globalFlags) String() string { return fmt.Sprintf("%d globals", len(g)) }

// Set parses "name=v1;v2;...".
func (g globalFlags) Set(s string) error {
	name, vals, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=v1;v2;..., got %q", s)
	}
	var words []uint64
	if vals != "" {
		for _, tok := range strings.Split(vals, ";") {
			w, err := parseScalar(tok)
			if err != nil {
				return err
			}
			words = append(words, w)
		}
	}
	g[name] = words
	return nil
}

func parseScalar(tok string) (uint64, error) {
	tok = strings.TrimSpace(tok)
	if strings.ContainsAny(tok, ".eE") {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return 0, fmt.Errorf("bad float %q: %v", tok, err)
		}
		return math.Float64bits(f), nil
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad int %q: %v", tok, err)
	}
	return uint64(v), nil
}

func main() {
	globals := globalFlags{}
	var (
		src      = flag.String("src", "", "MiniC source file")
		irFile   = flag.String("ir", "", "IR text file (alternative to -src)")
		emitIR   = flag.String("emit-ir", "", "write IR text to this file ('-' for stdout)")
		optimize = flag.Bool("O", true, "run the standard optimization pipeline")
		runProg  = flag.Bool("run", false, "execute main")
		args     = flag.String("args", "", "comma-separated scalar arguments for main")
		trace    = flag.Int64("trace", 0, "trace the first N executed instructions")
		stats    = flag.Bool("stats", false, "print execution statistics")
	)
	flag.Var(globals, "global", "bind a global array: name=v1;v2;... (repeatable)")
	flag.Parse()

	if err := run(*src, *irFile, *emitIR, *optimize, *runProg, *args, globals, *trace, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
}

func run(src, irFile, emitIR string, optimize, runProg bool, argList string,
	globals map[string][]uint64, trace int64, stats bool) error {

	var mod *ir.Module
	switch {
	case src != "":
		text, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		mod, err = minicc.Compile(src, string(text))
		if err != nil {
			return err
		}
		if optimize {
			if err := passes.Optimize(mod); err != nil {
				return err
			}
		}
	case irFile != "":
		text, err := os.ReadFile(irFile)
		if err != nil {
			return err
		}
		mod, err = ir.ParseModule(string(text))
		if err != nil {
			return err
		}
		if err := ir.Verify(mod); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -src or -ir is required")
	}

	if emitIR != "" {
		if emitIR == "-" {
			fmt.Print(mod.String())
		} else if err := os.WriteFile(emitIR, []byte(mod.String()), 0o644); err != nil {
			return err
		}
	}

	if !runProg {
		if emitIR == "" {
			fmt.Printf("%s: %d functions, %d instructions, %d blocks (verified)\n",
				mod.Name, len(mod.Funcs), mod.NumInstrs(), mod.NumBlocks())
		}
		return nil
	}

	bind := interp.Binding{Globals: globals}
	if argList != "" {
		for _, tok := range strings.Split(argList, ",") {
			w, err := parseScalar(tok)
			if err != nil {
				return err
			}
			bind.Args = append(bind.Args, w)
		}
	}

	entry := mod.Entry()
	if entry < 0 {
		return fmt.Errorf("no main function")
	}
	if want := len(mod.Funcs[entry].Params); len(bind.Args) != want {
		return fmt.Errorf("main takes %d arguments, got %d", want, len(bind.Args))
	}

	r := interp.NewRunner(mod, interp.Config{})
	var res interp.Result
	if trace > 0 {
		res = r.RunTraced(bind, nil, &interp.Tracer{W: os.Stderr, Limit: trace})
	} else {
		res = r.Run(bind, nil, nil)
	}

	if res.Status != interp.StatusOK {
		return fmt.Errorf("execution ended with %s (%s)", res.Status, res.Trap)
	}
	// Print outputs, typed by the emitting instruction where determinable:
	// we print both interpretations when ambiguous; emiti/emitf order is
	// program knowledge, so print raw int and float forms.
	for i, w := range res.Output {
		fmt.Printf("out[%d] = %d (as float: %g)\n", i, int64(w), math.Float64frombits(w))
	}
	if stats {
		fmt.Printf("dynamic instructions: %d, modeled cycles: %d\n", res.DynInstrs, res.Cycles)
	}
	return nil
}
