package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testSrc = `
var data[] int;
func main(n int, scale float) {
	var s float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		s = s + float(data[i % len(data)]) * scale;
	}
	emitf(s);
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileAndRun(t *testing.T) {
	src := writeTemp(t, "prog.mc", testSrc)
	globals := globalFlags{}
	if err := globals.Set("data=1;2;3"); err != nil {
		t.Fatal(err)
	}
	if err := run(src, "", "", true, true, "6,2.0", globals, 0, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestEmitAndReloadIR(t *testing.T) {
	src := writeTemp(t, "prog.mc", `func main(x int) { emiti(x * 3); }`)
	irPath := filepath.Join(t.TempDir(), "prog.ir")
	if err := run(src, "", irPath, true, false, "", nil, 0, false); err != nil {
		t.Fatalf("emit: %v", err)
	}
	if err := run("", irPath, "", false, true, "7", nil, 0, false); err != nil {
		t.Fatalf("reload+run: %v", err)
	}
}

func TestTraceRuns(t *testing.T) {
	src := writeTemp(t, "prog.mc", `func main() { emiti(1 + 2); }`)
	if err := run(src, "", "", true, true, "", nil, 5, false); err != nil {
		t.Fatalf("trace run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", true, false, "", nil, 0, false); err == nil {
		t.Fatal("missing input accepted")
	}
	src := writeTemp(t, "bad.mc", `not minic`)
	if err := run(src, "", "", true, false, "", nil, 0, false); err == nil {
		t.Fatal("bad source accepted")
	}
	good := writeTemp(t, "good.mc", `func main(x int) { emiti(x); }`)
	if err := run(good, "", "", true, true, "", nil, 0, false); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := run(good, "", "", true, true, "1,2", nil, 0, false); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestGlobalFlagParsing(t *testing.T) {
	g := globalFlags{}
	if err := g.Set("xs=1;2.5;3"); err != nil {
		t.Fatal(err)
	}
	if len(g["xs"]) != 3 {
		t.Fatalf("parsed %d words", len(g["xs"]))
	}
	if err := g.Set("noequals"); err == nil {
		t.Fatal("malformed binding accepted")
	}
	if err := g.Set("bad=1;x;3"); err == nil {
		t.Fatal("malformed value accepted")
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
}
