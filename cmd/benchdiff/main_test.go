package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const fixtureOld = `{"name":"BenchmarkRunImage/bubble","iters":100,"ns_per_op":1000}` + "\n"
const fixtureNew = `{"name":"BenchmarkRunImage/bubble","iters":100,"ns_per_op":1200}` + "\n"

func TestExitNonZeroOnSyntheticRegression(t *testing.T) {
	old := write(t, "old.json", fixtureOld)
	new := write(t, "new.json", fixtureNew)
	if code := run([]string{"-threshold", "15%", old, new}); code != 1 {
		t.Fatalf("exit = %d on 20%% regression at 15%% threshold, want 1", code)
	}
}

func TestExitZeroOnIdenticalInputs(t *testing.T) {
	old := write(t, "old.json", fixtureOld)
	new := write(t, "new.json", fixtureOld)
	if code := run([]string{"-threshold", "0", old, new}); code != 0 {
		t.Fatalf("exit = %d on identical inputs, want 0", code)
	}
}

func TestExitZeroWhenWithinThreshold(t *testing.T) {
	old := write(t, "old.json", fixtureOld)
	new := write(t, "new.json", fixtureNew)
	if code := run([]string{"-threshold", "25%", old, new}); code != 0 {
		t.Fatalf("exit = %d on 20%% change at 25%% threshold, want 0", code)
	}
}

func TestAggMinGatesOnBestOfN(t *testing.T) {
	// Noisy -count=3 new side: the worst sample is a 50% regression but
	// the best matches the old minimum, so -agg min passes and the
	// default -agg last (freshest sample, 20% worse) fails.
	old := write(t, "old.json", `{"name":"B","ns_per_op":1000}`+"\n")
	new := write(t, "new.json",
		`{"name":"B","ns_per_op":1500}`+"\n"+
			`{"name":"B","ns_per_op":1000}`+"\n"+
			`{"name":"B","ns_per_op":1200}`+"\n")
	if code := run([]string{"-threshold", "15%", "-agg", "min", old, new}); code != 0 {
		t.Errorf("exit = %d with -agg min and matching minima, want 0", code)
	}
	if code := run([]string{"-threshold", "15%", old, new}); code != 1 {
		t.Errorf("exit = %d with -agg last and regressed last sample, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run([]string{"only-one-arg"}); code != 2 {
		t.Errorf("exit = %d with one positional arg, want 2", code)
	}
	old := write(t, "old.json", fixtureOld)
	if code := run([]string{"-threshold", "nope", old, old}); code != 2 {
		t.Errorf("exit = %d with bad threshold, want 2", code)
	}
	if code := run([]string{"-agg", "median", old, old}); code != 2 {
		t.Errorf("exit = %d with bad -agg, want 2", code)
	}
	if code := run([]string{old, filepath.Join(t.TempDir(), "missing.json")}); code != 2 {
		t.Errorf("exit = %d with missing file, want 2", code)
	}
}

func TestParseThreshold(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"15%", 0.15, false},
		{"15", 0.15, false},
		{"0.15", 0.15, false},
		{"0", 0, false},
		{"1", 1, false}, // bare 1 is a fraction (100%), not 1%
		{"-5", 0, true},
		{"abc", 0, true},
	}
	for _, c := range cases {
		got, err := parseThreshold(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseThreshold(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseThreshold(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// A single bench file mixes metric kinds (interp reports ns_per_instr,
// campaign loops ns_per_op, pipeline stages dur_ns). Gating must compare
// per (name, field) pair and skip fields absent from either side.
func TestMixedMetricManifest(t *testing.T) {
	old := write(t, "old.json",
		`{"name":"BenchmarkRunFault/compiled/hpccg","iters":50,"ns_per_instr":40}`+"\n"+
			`{"name":"BenchmarkCampaign/hpccg","iters":10,"ns_per_op":100000}`+"\n"+
			`{"name":"pipeline/emit","dur_ns":9000}`+"\n")

	// Only the dur_ns row regresses; the other metric kinds improve.
	new := write(t, "new.json",
		`{"name":"BenchmarkRunFault/compiled/hpccg","iters":50,"ns_per_instr":30}`+"\n"+
			`{"name":"BenchmarkCampaign/hpccg","iters":10,"ns_per_op":90000}`+"\n"+
			`{"name":"pipeline/emit","dur_ns":12000}`+"\n")

	if code := run([]string{"-threshold", "10%", old, new}); code != 1 {
		t.Errorf("exit = %d with regressed dur_ns row, want 1", code)
	}
	// Restricting the gated fields must let the dur_ns regression pass.
	if code := run([]string{"-threshold", "10%", "-fields", "ns_per_op,ns_per_instr", old, new}); code != 0 {
		t.Errorf("exit = %d when dur_ns is not gated, want 0", code)
	}
	// Unreadable input stays a usage/IO error even with mixed metrics.
	if code := run([]string{"-threshold", "10%", old, filepath.Join(t.TempDir(), "gone.json")}); code != 2 {
		t.Errorf("exit = %d with missing new file, want 2", code)
	}
}

// -agg min must take the minimum per metric NAME within a bench name, not
// per line: with -count>=2 runs the best ns_per_op and the best
// ns_per_instr can come from different lines of the same benchmark.
func TestAggMinAggregatesPerMetricName(t *testing.T) {
	old := write(t, "old.json",
		`{"name":"BenchmarkRunImage/hpccg","ns_per_op":1000,"ns_per_instr":10}`+"\n")
	// Line 1 holds the best ns_per_op, line 2 the best ns_per_instr; any
	// per-line (or last-line) aggregation sees a 3x regression somewhere.
	new := write(t, "new.json",
		`{"name":"BenchmarkRunImage/hpccg","ns_per_op":1000,"ns_per_instr":30}`+"\n"+
			`{"name":"BenchmarkRunImage/hpccg","ns_per_op":3000,"ns_per_instr":10}`+"\n")
	if code := run([]string{"-threshold", "10%", "-agg", "min", old, new}); code != 0 {
		t.Errorf("exit = %d with per-field minima matching old, want 0", code)
	}
	if code := run([]string{"-threshold", "10%", "-agg", "last", old, new}); code != 1 {
		t.Errorf("exit = %d with -agg last and regressed last line, want 1", code)
	}
}
