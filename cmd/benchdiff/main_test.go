package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const fixtureOld = `{"name":"BenchmarkRunImage/bubble","iters":100,"ns_per_op":1000}` + "\n"
const fixtureNew = `{"name":"BenchmarkRunImage/bubble","iters":100,"ns_per_op":1200}` + "\n"

func TestExitNonZeroOnSyntheticRegression(t *testing.T) {
	old := write(t, "old.json", fixtureOld)
	new := write(t, "new.json", fixtureNew)
	if code := run([]string{"-threshold", "15%", old, new}); code != 1 {
		t.Fatalf("exit = %d on 20%% regression at 15%% threshold, want 1", code)
	}
}

func TestExitZeroOnIdenticalInputs(t *testing.T) {
	old := write(t, "old.json", fixtureOld)
	new := write(t, "new.json", fixtureOld)
	if code := run([]string{"-threshold", "0", old, new}); code != 0 {
		t.Fatalf("exit = %d on identical inputs, want 0", code)
	}
}

func TestExitZeroWhenWithinThreshold(t *testing.T) {
	old := write(t, "old.json", fixtureOld)
	new := write(t, "new.json", fixtureNew)
	if code := run([]string{"-threshold", "25%", old, new}); code != 0 {
		t.Fatalf("exit = %d on 20%% change at 25%% threshold, want 0", code)
	}
}

func TestAggMinGatesOnBestOfN(t *testing.T) {
	// Noisy -count=3 new side: the worst sample is a 50% regression but
	// the best matches the old minimum, so -agg min passes and the
	// default -agg last (freshest sample, 20% worse) fails.
	old := write(t, "old.json", `{"name":"B","ns_per_op":1000}`+"\n")
	new := write(t, "new.json",
		`{"name":"B","ns_per_op":1500}`+"\n"+
			`{"name":"B","ns_per_op":1000}`+"\n"+
			`{"name":"B","ns_per_op":1200}`+"\n")
	if code := run([]string{"-threshold", "15%", "-agg", "min", old, new}); code != 0 {
		t.Errorf("exit = %d with -agg min and matching minima, want 0", code)
	}
	if code := run([]string{"-threshold", "15%", old, new}); code != 1 {
		t.Errorf("exit = %d with -agg last and regressed last sample, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run([]string{"only-one-arg"}); code != 2 {
		t.Errorf("exit = %d with one positional arg, want 2", code)
	}
	old := write(t, "old.json", fixtureOld)
	if code := run([]string{"-threshold", "nope", old, old}); code != 2 {
		t.Errorf("exit = %d with bad threshold, want 2", code)
	}
	if code := run([]string{"-agg", "median", old, old}); code != 2 {
		t.Errorf("exit = %d with bad -agg, want 2", code)
	}
	if code := run([]string{old, filepath.Join(t.TempDir(), "missing.json")}); code != 2 {
		t.Errorf("exit = %d with missing file, want 2", code)
	}
}

func TestParseThreshold(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"15%", 0.15, false},
		{"15", 0.15, false},
		{"0.15", 0.15, false},
		{"0", 0, false},
		{"1", 1, false}, // bare 1 is a fraction (100%), not 1%
		{"-5", 0, true},
		{"abc", 0, true},
	}
	for _, c := range cases {
		got, err := parseThreshold(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseThreshold(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseThreshold(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
