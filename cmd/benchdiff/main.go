// Command benchdiff compares two bench files or run manifests and fails
// on regressions. CI runs it between a PR and its merge-base:
//
//	go run ./cmd/benchdiff -threshold 15% -agg min base/BENCH_interp.json pr/BENCH_interp.json
//
// Exit status: 0 when no gated metric regressed beyond the threshold,
// 1 when at least one did, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs/delta"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	threshold := fs.String("threshold", "10%", "regression threshold: 15%, 15, or 0.15")
	fields := fs.String("fields", "", "comma-separated lower-is-better fields to gate on (default ns_per_op,ns_per_instr,dur_ns)")
	all := fs.Bool("all", false, "print every delta, not only regressions")
	aggName := fs.String("agg", "last", "combine duplicate bench lines per name: last (freshest run wins) or min (best-of-N; use with -count>=3 runs to suppress machine noise)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD NEW\n\nOLD and NEW are JSON-lines bench files (make bench output) or run\nmanifests (-manifest output). Flags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	th, err := parseThreshold(*threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	var agg delta.Agg
	switch *aggName {
	case "last":
		agg = delta.AggLast
	case "min":
		agg = delta.AggMin
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: bad -agg %q (want last or min)\n", *aggName)
		return 2
	}

	oldM, err := delta.Load(fs.Arg(0), agg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	newM, err := delta.Load(fs.Arg(1), agg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	opt := delta.Options{Threshold: th}
	if *fields != "" {
		for _, f := range strings.Split(*fields, ",") {
			if f = strings.TrimSpace(f); f != "" {
				opt.RegressFields = append(opt.RegressFields, f)
			}
		}
	}
	rep := delta.Compare(oldM, newM, opt)
	if err := rep.Render(os.Stdout, *all); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(rep.Regressions()) > 0 {
		return 1
	}
	return 0
}

// parseThreshold accepts "15%", "15" (values > 1 read as percent), or
// "0.15" (fractions pass through).
func parseThreshold(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad threshold %q", s)
	}
	if pct || v > 1 {
		v /= 100
	}
	return v, nil
}
