GO ?= go

.PHONY: all build vet lint test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific determinism lints (tools/sdclint): map iteration feeding
# content keys, wall-clock/rand in key derivation, and the obs
# nil-receiver contract. Stdlib-only; CI runs it in the static-analysis
# job and additionally asserts it FAILS on the seeded fixture tree.
lint: vet
	$(GO) run ./tools/sdclint ./internal ./cmd ./tools

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the fault campaign engine
# (cache single-flight, parallel runSites), the parallel GA fitness
# evaluation, and the campaign service (concurrent submits, single-flight
# dedup, admission control). -short trims the invariance matrix to keep
# this quick.
race:
	$(GO) test -race -short ./internal/fault/... ./internal/minpsid/... ./internal/server/...

check: build vet test race

# Interpreter engine benchmarks. Results are appended as JSON lines to
# BENCH_interp.json (one object per benchmark per run, UTC-timestamped)
# so engine regressions are comparable across commits. The compiled-tier
# subset is additionally appended to BENCH_compiled.json, which CI gates
# separately with cmd/benchdiff so superinstruction regressions can't
# hide inside the full-matrix file.
BENCH_JSON ?= BENCH_interp.json
BENCH_COMPILED_JSON ?= BENCH_compiled.json

# Static-analysis benchmarks: triage cost, masked-site accounting, and
# campaign wall-clock with pruning on/off, appended to BENCH_analysis.json
# in the same JSON-lines shape. Custom ReportMetric columns (masked_frac,
# masked_bits, total_bits, pruned_frac) are captured generically.
BENCH_ANALYSIS_JSON ?= BENCH_analysis.json

# Detector-portfolio benchmarks: campaign ns/trial for every fault model
# × detector cell (BenchmarkDetectorCampaign), appended to
# BENCH_detectors.json so CI can gate per-cell regressions in the flip
# paths and detector lowerings.
BENCH_DETECTORS_JSON ?= BENCH_detectors.json

# Incremental-tier benchmarks: end-to-end sectional measure + campaign
# wall-clock under the three cache regimes (cold store, one-function
# edit on a warm store, fully-warm store), appended to
# BENCH_incremental.json. CI gates these with cmd/benchdiff so a
# sectional key-hygiene regression (edits re-running whole campaigns)
# surfaces as a wall-clock cliff on the edit/warm rows.
BENCH_INCREMENTAL_JSON ?= BENCH_incremental.json

# Analysis-v2 triage benchmarks: campaign ns/trial and pruned-trial
# fraction on full-DMR (duplication-protected) modules with triage on
# and off, appended to BENCH_triage2.json. CI gates the rows with
# cmd/benchdiff: a pruning regression shows up as an ns/trial cliff and
# a pruned_frac collapse on the triage=on rows.
BENCH_TRIAGE2_JSON ?= BENCH_triage2.json

# Campaign-service benchmarks: end-to-end scheduler cost on a cold
# store, the warm dedup path (with its dedup_hit_rate column), the
# inline-campaign baseline, and job-key derivation, appended to
# BENCH_server.json. CI gates these with cmd/benchdiff so scheduler or
# store-path overhead regressions surface before they tax every fleet
# submission.
BENCH_SERVER_JSON ?= BENCH_server.json

# Repetitions per benchmark. CI sets 3 and compares best-of-N
# (benchdiff -agg min) so shared-runner noise doesn't gate single samples.
BENCH_COUNT ?= 1

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) test -bench . -benchtime 200ms -count $(BENCH_COUNT) -run '^$$' ./internal/interp | tee /dev/stderr | \
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v compiled=$(BENCH_COMPILED_JSON) '/^Benchmark/ { \
		rec = sprintf("{\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", ts, $$1, $$2, $$3); \
		if ($$6 == "ns/instr") rec = rec sprintf(",\"ns_per_instr\":%s", $$5); \
		rec = rec "}"; print rec; \
		if ($$1 ~ /\/compiled/) print rec >> compiled }' >> $(BENCH_JSON)
	$(GO) test -bench 'Triage|VerifySSA' -benchtime 100ms -count $(BENCH_COUNT) -run '^$$' \
		./internal/analysis ./internal/fault | tee /dev/stderr | \
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^Benchmark/ { \
		printf "{\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", ts, $$1, $$2, $$3; \
		for (i = 5; i < NF; i += 2) \
			if ($$(i+1) ~ /^[a-z_]+$$/) printf ",\"%s\":%s", $$(i+1), $$i; \
		print "}" }' >> $(BENCH_ANALYSIS_JSON)
	$(GO) test -bench DetectorCampaign -benchtime 50ms -count $(BENCH_COUNT) -run '^$$' \
		./internal/harness | tee /dev/stderr | \
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^Benchmark/ { \
		rec = sprintf("{\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", ts, $$1, $$2, $$3); \
		if ($$6 == "ns/trial") rec = rec sprintf(",\"ns_per_trial\":%s", $$5); \
		rec = rec "}"; print rec }' >> $(BENCH_DETECTORS_JSON)
	$(GO) test -bench Incremental -benchtime 1x -count $(BENCH_COUNT) -run '^$$' \
		./internal/pipeline | tee /dev/stderr | \
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^Benchmark/ { \
		printf "{\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s}\n", ts, $$1, $$2, $$3 }' >> $(BENCH_INCREMENTAL_JSON)
	$(GO) test -bench Triage2 -benchtime 50ms -count $(BENCH_COUNT) -run '^$$' \
		./internal/harness | tee /dev/stderr | \
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^Benchmark/ { \
		rec = sprintf("{\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", ts, $$1, $$2, $$3); \
		if ($$6 == "ns/trial") rec = rec sprintf(",\"ns_per_trial\":%s", $$5); \
		if ($$8 == "pruned_frac") rec = rec sprintf(",\"pruned_frac\":%s", $$7); \
		rec = rec "}"; print rec }' >> $(BENCH_TRIAGE2_JSON)
	$(GO) test -bench 'ServerCampaign|DirectCampaign|JobKey' -benchtime 1x -count $(BENCH_COUNT) -run '^$$' \
		./internal/server | tee /dev/stderr | \
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^Benchmark/ { \
		printf "{\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", ts, $$1, $$2, $$3; \
		for (i = 5; i < NF; i += 2) \
			if ($$(i+1) ~ /^[a-z_]+$$/) printf ",\"%s\":%s", $$(i+1), $$i; \
		print "}" }' >> $(BENCH_SERVER_JSON)
