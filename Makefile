GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the fault campaign engine
# (cache single-flight, parallel runSites) and the parallel GA fitness
# evaluation. -short trims the invariance matrix to keep this quick.
race:
	$(GO) test -race -short ./internal/fault/... ./internal/minpsid/...

check: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
