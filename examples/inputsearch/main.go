// Inputsearch demonstrates the heart of MINPSID on the FFT benchmark: the
// genetic-algorithm search over program inputs, guided by weighted-CFG
// distance, that uncovers incubative instructions — instructions that look
// harmless under the reference input but cause SDCs under other inputs
// (the paper's Fig. 3 scenario).
package main

import (
	"fmt"
	"log"

	"repro/internal/benchprog"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

func main() {
	b, _ := benchprog.ByName("fft")
	tgt := minpsid.Target{
		Mod:  b.MustModule(),
		Spec: b.Spec,
		Bind: b.Bind,
		Exec: b.ExecConfig(),
	}

	// Step 1: per-instruction fault injection on the reference input.
	fmt.Println("measuring per-instruction SDC probabilities on the reference input...")
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(b.Reference), sid.Config{
		Exec: tgt.Exec, FaultsPerInstr: 20, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: GA input search with the Eq.-3 weighted-CFG fitness.
	cfg := minpsid.Config{FaultsPerInstr: 20, MaxInputs: 6, Patience: 2,
		PopSize: 6, MaxGenerations: 4, Seed: 7}
	fmt.Println("searching for inputs that reveal incubative instructions...")
	search := minpsid.Search(tgt, cfg, b.Reference, refMeas)

	for _, tp := range search.Trace {
		fmt.Printf("  input %2d: fitness %8.1f, cumulative incubative %d\n",
			tp.InputIndex, tp.Fitness, tp.Incubative)
	}

	// Step 3: inspect what was found.
	fmt.Printf("\n%d incubative instructions:\n", len(search.Incubative))
	m := tgt.Mod
	for i, id := range search.Incubative {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(search.Incubative)-10)
			break
		}
		fmt.Printf("  [%4d] %-8s ref-benefit %.6f -> max-benefit %.6f\n",
			id, m.Instrs[id].Op, refMeas.Benefit[id], search.MaxBenefit[id])
	}

	// Compare with blind random search on the same budget (Fig. 7).
	cfgRnd := cfg
	cfgRnd.UseRandomSearch = true
	rnd := minpsid.Search(tgt, cfgRnd, b.Reference, refMeas)
	fmt.Printf("\nGA search found %d incubative instructions; random search found %d (same budget)\n",
		len(search.Incubative), len(rnd.Incubative))
}
