// Quickstart: load a built-in benchmark, characterize its raw resilience
// with fault injection, protect it with MINPSID, and measure the coverage
// of the protected binary — the end-to-end workflow in ~50 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fault"
)

func main() {
	prog, err := core.FromBenchmark("pathfinder")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Run the program fault-free on its reference input.
	res := prog.Run(prog.Reference)
	fmt.Printf("golden run: status=%s dyn-instrs=%d output-words=%d\n",
		res.Status, res.DynInstrs, len(res.Output))

	// 2. Characterize raw resilience: 500 random single-bit flips.
	camp, err := prog.InjectionCampaign(prog.Reference, 500, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected: %.1f%% SDC, %.1f%% crash, %.1f%% benign\n",
		100*camp.Rate(fault.OutcomeSDC),
		100*camp.Rate(fault.OutcomeCrash),
		100*camp.Rate(fault.OutcomeBenign))

	// 3. Protect with MINPSID at the 50% level.
	prot, err := prog.Protect(core.TechniqueMINPSID, 0.5, core.QuickOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected: %d instructions selected, %d incubative, expected coverage %.1f%%\n",
		len(prot.Chosen), len(prot.Incubative), 100*prot.ExpectedCoverage)

	// 4. Measure actual coverage on a fresh random input, in the paper's
	// sense: of the faults that corrupt the unprotected program's output,
	// how many does the protection detect?
	in := prog.RandomInput(rand.New(rand.NewSource(42)))
	rep, err := prot.EvaluateTrueCoverage(in, 500, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured coverage on input {%s}: %.1f%% (%d of %d would-be SDCs mitigated)\n",
		prog.Spec.String(in), 100*rep.Coverage,
		rep.Result.Mitigated, rep.Result.SDCFaults)
}
