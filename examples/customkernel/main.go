// Customkernel shows the downstream-adoption path: write your own HPC
// kernel in MiniC, declare its input space, and harden it with MINPSID —
// no built-in benchmark involved. The kernel here is a 1-D Jacobi heat
// stencil, a classic HPC loop nest.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/inputgen"
	"repro/internal/interp"
)

const jacobiSrc = `
var grid[] float;   // n cells, bound from the input
var next[] float;   // scratch buffer

func main(n int, steps int, alpha float) {
	for (var s int = 0; s < steps; s = s + 1) {
		for (var i int = 1; i < n - 1; i = i + 1) {
			next[i] = grid[i] + alpha * (grid[i-1] - 2.0 * grid[i] + grid[i+1]);
		}
		for (var i int = 1; i < n - 1; i = i + 1) {
			grid[i] = next[i];
		}
	}
	var sum float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		sum = sum + grid[i];
	}
	emitf(sum);
	emitf(grid[n / 2]);
}
`

func main() {
	spec := &inputgen.Spec{Params: []inputgen.Param{
		inputgen.IntParam("n", 32, 128),
		inputgen.IntParam("steps", 5, 30),
		inputgen.FloatParam("alpha", 0.05, 0.45),
		inputgen.SeedParam("seed"),
	}}
	bind := func(in inputgen.Input) interp.Binding {
		n, steps, seed := in.I[0], in.I[1], in.I[3]
		rng := rand.New(rand.NewSource(seed))
		grid := make([]uint64, n)
		for i := range grid {
			grid[i] = math.Float64bits(rng.Float64() * 100)
		}
		return interp.Binding{
			Args: []uint64{uint64(n), uint64(steps), math.Float64bits(in.F[2])},
			Globals: map[string][]uint64{
				"grid": grid,
				"next": make([]uint64, n),
			},
		}
	}
	reference := inputgen.Input{I: []int64{64, 10, 0, 12345}, F: []float64{0, 0, 0.25, 0}}

	prog, err := core.CompileMiniC("jacobi1d", jacobiSrc, spec, reference, bind, true)
	if err != nil {
		log.Fatal(err)
	}
	res := prog.Run(reference)
	fmt.Printf("jacobi1d golden run: %s, %d dynamic instructions, checksum %g\n",
		res.Status, res.DynInstrs, math.Float64frombits(res.Output[0]))

	prot, err := prog.Protect(core.TechniqueMINPSID, 0.5, core.QuickOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MINPSID: %d/%d instructions protected, %d incubative, expected coverage %.1f%%\n",
		len(prot.Chosen), prog.Module.NumInstrs(), len(prot.Incubative), 100*prot.ExpectedCoverage)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3; i++ {
		in := prog.RandomInput(rng)
		rep, err := prot.EvaluateCoverage(in, 400, int64(i))
		if err != nil {
			continue
		}
		fmt.Printf("  input {%s}: measured coverage %.1f%%\n", spec.String(in), 100*rep.Coverage)
	}
}
