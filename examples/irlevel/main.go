// Irlevel shows the lowest-level workflow: build a program directly with
// the IR builder (no MiniC), run a fault-injection characterization, and
// protect it with the duplication transform — the path a user would take
// to integrate a different front end.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sid"
)

// buildDotProduct constructs main(n) { emitf(dot(a[0:n], b[0:n])) } over
// two input-bound global arrays.
func buildDotProduct() *ir.Module {
	m := ir.NewModule("dot")
	ga := m.AddGlobal("a", -1, nil)
	gb := m.AddGlobal("b", -1, nil)
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)

	accVar := b.Alloca(ir.ConstI(1))
	iVar := b.Alloca(ir.ConstI(1))
	b.Store(ir.ConstF(0), accVar)
	b.Store(ir.ConstI(0), iVar)

	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(cond)

	b.SetBlock(cond)
	i := b.Load(ir.I64, iVar)
	b.CondBr(b.ICmp(ir.PredLT, i, ir.Reg(0, ir.I64)), body, exit)

	b.SetBlock(body)
	i2 := b.Load(ir.I64, iVar)
	av := b.Load(ir.F64, b.GEP(b.GlobalAddr(ga.Index), i2))
	bv := b.Load(ir.F64, b.GEP(b.GlobalAddr(gb.Index), i2))
	acc := b.Load(ir.F64, accVar)
	b.Store(b.Bin(ir.OpFAdd, acc, b.Bin(ir.OpFMul, av, bv)), accVar)
	b.Store(b.Bin(ir.OpAdd, i2, ir.ConstI(1)), iVar)
	b.Br(cond)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitF, b.Load(ir.F64, accVar))
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	m := buildDotProduct()
	fmt.Print(m.String())

	// Bind a concrete input: two 64-element vectors.
	n := 64
	a := make([]uint64, n)
	bb := make([]uint64, n)
	for i := range a {
		a[i] = floatBits(float64(i) * 0.5)
		bb[i] = floatBits(2.0)
	}
	bind := interp.Binding{
		Args:    []uint64{uint64(n)},
		Globals: map[string][]uint64{"a": a, "b": bb},
	}

	golden, err := fault.RunGolden(m, bind, interp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngolden: dot = %v, %d dynamic instructions\n",
		floatOf(golden.Output[0]), golden.DynInstrs)

	// Characterize, select at the 60% level, protect, re-measure.
	meas, err := sid.Measure(m, bind, sid.Config{FaultsPerInstr: 30, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sel := sid.Select(m, meas, 0.6, sid.MethodDP)
	prot := sid.Duplicate(m, sel.Chosen)
	fmt.Printf("selected %d/%d instructions, expected coverage %.1f%%\n",
		len(sel.Chosen), m.NumInstrs(), 100*sel.ExpectedCoverage)

	res, err := fault.TrueCoverage(m, prot, sid.ProtectedMap(m, sel.Chosen),
		bind, interp.Config{}, 800, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	cov, ok := res.Coverage()
	fmt.Printf("true coverage: %.1f%% (%d of %d would-be SDCs mitigated, defined=%v)\n",
		100*cov, res.Mitigated, res.SDCFaults, ok)
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatOf(w uint64) float64 { return math.Float64frombits(w) }
