// Protectionstudy reproduces the paper's headline comparison on one
// benchmark: protect Kmeans with baseline SID and with MINPSID at three
// protection levels, then measure the SDC coverage of both protected
// binaries across a set of fresh random inputs. Baseline SID's coverage
// collapses on some inputs; MINPSID's lower bound holds up.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/inputgen"
	"repro/internal/stats"
)

func main() {
	prog, err := core.FromBenchmark("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	opts := core.QuickOptions()

	const nInputs = 6
	const faults = 400

	// Draw evaluation inputs once so both techniques face the same set.
	rng := rand.New(rand.NewSource(99))
	inputs := make([]inputgen.Input, nInputs)
	for i := range inputs {
		inputs[i] = prog.RandomInput(rng)
	}

	for _, level := range []float64{0.3, 0.5, 0.7} {
		fmt.Printf("=== protection level %.0f%% ===\n", level*100)
		for _, tech := range []core.Technique{core.TechniqueSID, core.TechniqueMINPSID} {
			prot, err := prog.Protect(tech, level, opts)
			if err != nil {
				log.Fatal(err)
			}
			var covs []float64
			losses := 0
			for i := range inputs {
				rep, err := prot.EvaluateTrueCoverage(inputs[i], faults, int64(i))
				if err != nil {
					continue // inadmissible input; skip as the paper does
				}
				if rep.Defined {
					covs = append(covs, rep.Coverage)
					if rep.Coverage < prot.ExpectedCoverage {
						losses++
					}
				}
			}
			s := stats.Summarize(covs)
			fmt.Printf("  %-8s expected %.1f%%  measured min %.1f%% / median %.1f%% / max %.1f%%  loss-inputs %d/%d\n",
				tech, 100*prot.ExpectedCoverage, 100*s.Min, 100*s.Median, 100*s.Max, losses, len(covs))
		}
	}
}
