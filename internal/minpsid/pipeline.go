package minpsid

import (
	"time"

	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/ir"
	"repro/internal/sid"
)

// Timing records where the one-time MINPSID cost goes (Fig. 8): the
// reference-input per-instruction FI, the input search engine (fitness
// evaluations), and the per-instruction FI on searched inputs.
type Timing struct {
	RefFI        time.Duration // ① per-inst FI + profiling on the reference input
	SearchEngine time.Duration // ③-⑥ GA search incl. fitness golden runs
	IncubativeFI time.Duration // ⑦ per-inst FI on searched inputs
}

// Total returns the summed pipeline time.
func (t Timing) Total() time.Duration { return t.RefFI + t.SearchEngine + t.IncubativeFI }

// Result is the output of the full MINPSID pipeline.
type Result struct {
	Protected *ir.Module    // the protected binary
	Selection sid.Selection // selection on the re-prioritized profile
	RefMeas   *sid.Measurement
	Search    *SearchResult
	Timing    Timing
}

// Reprioritize builds the updated measurement used for instruction
// selection: incubative instructions take their maximum benefit observed
// across all measured inputs (step ⑧ of Fig. 4); everything else keeps the
// reference profile.
func Reprioritize(refMeas *sid.Measurement, search *SearchResult) *sid.Measurement {
	up := *refMeas
	up.Benefit = append([]float64(nil), refMeas.Benefit...)
	for _, id := range search.Incubative {
		if search.MaxBenefit[id] > up.Benefit[id] {
			up.Benefit[id] = search.MaxBenefit[id]
		}
	}
	return &up
}

// Apply runs the end-to-end MINPSID pipeline (Fig. 4): reference
// measurement, incubative-instruction search, re-prioritization, knapsack
// selection at the requested protection level, and duplication transform.
//
// Apply is the direct, single-flow reference implementation. The
// production drivers (core.Protect, the harness) run the same stages as
// content-addressed task nodes on internal/pipeline, which dedups and
// persists them; the pipeline invariance tests pin the two forms
// bit-identical, so Apply doubles as the task graph's oracle.
func Apply(t Target, refInput inputgen.Input, level float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()

	t0 := time.Now()
	pmRef := cfg.Metrics.Phase(fault.PhaseRefFI)
	refMeas, err := sid.Measure(t.Mod, t.Bind(refInput), sid.Config{
		Exec:           t.Exec,
		FaultsPerInstr: cfg.FaultsPerInstr,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		Cache:          cfg.Cache,
		Metrics:        pmRef,
	})
	if err != nil {
		return nil, err
	}
	refFI := time.Since(t0)

	search := Search(t, cfg, refInput, refMeas)

	updated := Reprioritize(refMeas, search)
	sel := sid.Select(t.Mod, updated, level, sid.MethodDP)
	prot := sid.Duplicate(t.Mod, sel.Chosen)

	return &Result{
		Protected: prot,
		Selection: sel,
		RefMeas:   refMeas,
		Search:    search,
		Timing: Timing{
			RefFI:        refFI,
			SearchEngine: search.EngineTime,
			IncubativeFI: search.FITime,
		},
	}, nil
}

// ApplyBaseline runs the existing SID method (reference input only) on the
// same target, for side-by-side comparisons.
func ApplyBaseline(t Target, refInput inputgen.Input, level float64, cfg Config) (*sid.Protect, error) {
	cfg = cfg.withDefaults()
	return sid.Apply(t.Mod, t.Bind(refInput), sid.Config{
		Exec:           t.Exec,
		FaultsPerInstr: cfg.FaultsPerInstr,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		Cache:          cfg.Cache,
		Metrics:        cfg.Metrics.Phase(fault.PhaseRefFI),
	}, level, sid.MethodDP)
}
