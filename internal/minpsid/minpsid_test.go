package minpsid

import (
	"math/rand"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/sid"
)

// quickCfg keeps test-time FI campaigns small but meaningful.
func quickCfg(seed int64) Config {
	return Config{
		FaultsPerInstr: 8,
		MaxInputs:      4,
		Patience:       2,
		PopSize:        4,
		MaxGenerations: 2,
		Seed:           seed,
	}
}

// targetFor adapts a benchmark to a minpsid Target.
func targetFor(t *testing.T, name string) (Target, inputgen.Input) {
	t.Helper()
	b, ok := benchprog.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return Target{
		Mod:  b.MustModule(),
		Spec: b.Spec,
		Bind: b.Bind,
		Exec: b.ExecConfig(),
	}, b.Reference
}

func TestRuleIdentify(t *testing.T) {
	// 10 candidates: ref benefits mostly zero, other input lifts two of
	// them above the escape threshold.
	ref := []float64{0, 0, 0, 0, 0, 0.1, 0.2, 0.3, 0.4, 0.5}
	other := []float64{0.9, 0, 0.8, 0, 0, 0.1, 0.2, 0.3, 0.4, 0.5}
	cands := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := DefaultRule().Identify(ref, other, cands)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Identify = %v, want [0 2]", got)
	}
	// Identity comparison yields nothing.
	if got := DefaultRule().Identify(ref, ref, cands); len(got) != 0 {
		t.Fatalf("self-comparison found incubative instructions: %v", got)
	}
	// Empty candidates.
	if got := DefaultRule().Identify(ref, other, nil); got != nil {
		t.Fatalf("empty candidates returned %v", got)
	}
}

func TestRuleThresholdSemantics(t *testing.T) {
	// An instruction whose ref benefit is above the bottom threshold must
	// never be incubative, no matter the other input.
	ref := make([]float64, 100)
	other := make([]float64, 100)
	cands := make([]int, 100)
	for i := range ref {
		ref[i] = float64(i) // strictly increasing: bottom 1% is value 0 only
		other[i] = float64(i)
		cands[i] = i
	}
	other[0] = 1000 // instr 0: negligible on ref, dominant on the other input
	got := DefaultRule().Identify(ref, other, cands)
	for _, id := range got {
		if ref[id] > 0 {
			t.Fatalf("instr %d with ref benefit %f marked incubative", id, ref[id])
		}
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Identify = %v, want [0]", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %f", q)
	}
	if q := quantile(xs, 1); q != 10 {
		t.Errorf("q1 = %f", q)
	}
	if q := quantile(xs, 0.3); q != 3 { // idx = int(0.3*9) = 2
		t.Errorf("q0.3 = %f", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %f", q)
	}
}

func TestSearchFindsIncubativeInstructions(t *testing.T) {
	tgt, ref := targetFor(t, "knn") // input-sensitive benchmark
	cfg := quickCfg(21)
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(ref), sid.Config{
		Exec: tgt.Exec, FaultsPerInstr: cfg.FaultsPerInstr, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Search(tgt, cfg, ref, refMeas)
	if len(res.Inputs) == 0 {
		t.Fatal("search measured no inputs")
	}
	if len(res.Trace) != len(res.Inputs) {
		t.Fatalf("trace len %d != inputs %d", len(res.Trace), len(res.Inputs))
	}
	// Trace counts are nondecreasing.
	prev := 0
	for _, tp := range res.Trace {
		if tp.Incubative < prev {
			t.Fatalf("incubative count decreased: %v", res.Trace)
		}
		prev = tp.Incubative
	}
	if len(res.Incubative) != prev {
		t.Fatalf("final incubative %d != last trace %d", len(res.Incubative), prev)
	}
	// Max benefits must dominate reference benefits.
	for id, b := range refMeas.Benefit {
		if res.MaxBenefit[id] < b {
			t.Fatalf("max benefit below reference for instr %d", id)
		}
	}
	if res.FitnessEvals == 0 {
		t.Fatal("GA performed no fitness evaluations")
	}
}

func TestSearchDeterminism(t *testing.T) {
	tgt, ref := targetFor(t, "pathfinder")
	cfg := quickCfg(5)
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(ref), sid.Config{
		Exec: tgt.Exec, FaultsPerInstr: cfg.FaultsPerInstr, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := Search(tgt, cfg, ref, refMeas)
	b := Search(tgt, cfg, ref, refMeas)
	if len(a.Incubative) != len(b.Incubative) {
		t.Fatalf("non-deterministic incubative sets: %v vs %v", a.Incubative, b.Incubative)
	}
	for i := range a.Incubative {
		if a.Incubative[i] != b.Incubative[i] {
			t.Fatalf("non-deterministic incubative sets: %v vs %v", a.Incubative, b.Incubative)
		}
	}
	if len(a.Inputs) != len(b.Inputs) {
		t.Fatalf("non-deterministic input counts: %d vs %d", len(a.Inputs), len(b.Inputs))
	}
}

func TestRandomSearchMode(t *testing.T) {
	tgt, ref := targetFor(t, "needle")
	cfg := quickCfg(9)
	cfg.UseRandomSearch = true
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(ref), sid.Config{
		Exec: tgt.Exec, FaultsPerInstr: cfg.FaultsPerInstr, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Search(tgt, cfg, ref, refMeas)
	if len(res.Inputs) == 0 {
		t.Fatal("random search measured no inputs")
	}
	if res.FitnessEvals != 0 {
		t.Fatalf("random search ran %d fitness evals, want 0", res.FitnessEvals)
	}
}

func TestReprioritize(t *testing.T) {
	ref := &sid.Measurement{Benefit: []float64{0.5, 0.0, 0.2, 0.0}}
	search := &SearchResult{
		Incubative: []int{1, 3},
		MaxBenefit: []float64{0.5, 0.9, 0.2, 0.1},
	}
	up := Reprioritize(ref, search)
	want := []float64{0.5, 0.9, 0.2, 0.1}
	for i, w := range want {
		if up.Benefit[i] != w {
			t.Errorf("benefit[%d] = %f, want %f", i, up.Benefit[i], w)
		}
	}
	// Original untouched.
	if ref.Benefit[1] != 0 {
		t.Error("Reprioritize mutated the reference measurement")
	}
}

func TestApplyEndToEnd(t *testing.T) {
	tgt, ref := targetFor(t, "backprop")
	cfg := quickCfg(33)
	res, err := Apply(tgt, ref, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protected == nil || len(res.Selection.Chosen) == 0 {
		t.Fatal("no protection produced")
	}
	// The protected module must still run correctly on the reference and
	// on a fresh random input.
	g, err := fault.RunGolden(res.Protected, tgt.Bind(ref), tgt.Exec)
	if err != nil {
		t.Fatalf("protected golden run: %v", err)
	}
	if len(g.Output) == 0 {
		t.Fatal("protected module emitted nothing")
	}
	if res.Timing.RefFI <= 0 || res.Timing.Total() <= 0 {
		t.Errorf("timing not recorded: %+v", res.Timing)
	}
}

func TestMinpsidCoverageAtLeastBaselineOnSearchedInput(t *testing.T) {
	// On an input-sensitive benchmark, MINPSID's selection should cover
	// at least as well as the baseline when evaluated on inputs other
	// than the reference (the paper's headline claim, Fig. 6). With quick
	// FI budgets we assert a weaker, stable property: MINPSID's chosen
	// set includes protection for incubative instructions that the
	// baseline missed, and its measured coverage on a random input is not
	// drastically below the baseline's.
	tgt, ref := targetFor(t, "knn")
	cfg := quickCfg(55)
	level := 0.5

	mres, err := Apply(tgt, ref, level, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := ApplyBaseline(tgt, ref, level, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(mres.Search.Incubative) > 0 {
		// At least one incubative instruction newly protected by MINPSID.
		newly := 0
		for _, id := range mres.Search.Incubative {
			if mres.Selection.IsChosen(id) && !bres.Selection.IsChosen(id) {
				newly++
			}
		}
		t.Logf("incubative: %d, newly protected by MINPSID: %d", len(mres.Search.Incubative), newly)
	}

	// Evaluate both on one held-out input.
	evalIn := tgt.Spec.Random(randFor(777))
	for tries := 0; tries < 20; tries++ {
		if _, err := fault.RunGolden(tgt.Mod, tgt.Bind(evalIn), tgt.Exec); err == nil {
			break
		}
		evalIn = tgt.Spec.Random(randFor(int64(778 + tries)))
	}
	sidCfg := sid.Config{Exec: tgt.Exec, FaultsPerInstr: cfg.FaultsPerInstr, Seed: 1}
	mCov, err := sid.EvaluateCoverage(mres.Protected, tgt.Bind(evalIn), sidCfg, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	bCov, err := sid.EvaluateCoverage(bres.Module, tgt.Bind(evalIn), sidCfg, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	mc, _ := mCov.SDCCoverage()
	bc, _ := bCov.SDCCoverage()
	t.Logf("coverage on held-out input: minpsid=%.3f baseline=%.3f", mc, bc)
	if mc < bc-0.35 {
		t.Errorf("MINPSID coverage %.3f drastically below baseline %.3f", mc, bc)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FaultsPerInstr != 100 || c.MutationRate != 0.4 || c.CrossoverRate != 0.05 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.Rule != DefaultRule() {
		t.Errorf("default rule wrong: %+v", c.Rule)
	}
}

// randFor returns a seeded rand for test input draws.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAnnealSearchMode(t *testing.T) {
	tgt, ref := targetFor(t, "xsbench")
	cfg := quickCfg(31)
	cfg.Strategy = StrategyAnneal
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(ref), sid.Config{
		Exec: tgt.Exec, FaultsPerInstr: cfg.FaultsPerInstr, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Search(tgt, cfg, ref, refMeas)
	if len(res.Inputs) == 0 {
		t.Fatal("anneal search measured no inputs")
	}
	if res.FitnessEvals == 0 {
		t.Fatal("anneal search ran no fitness evaluations")
	}
	// Determinism.
	res2 := Search(tgt, cfg, ref, refMeas)
	if len(res.Incubative) != len(res2.Incubative) {
		t.Fatalf("anneal search not deterministic: %d vs %d incubative",
			len(res.Incubative), len(res2.Incubative))
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{StrategyGA: "ga", StrategyRandom: "random", StrategyAnneal: "anneal"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("Strategy(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}
