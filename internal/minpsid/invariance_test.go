package minpsid

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/sid"
)

// fingerprint flattens everything observable about a search result into a
// comparable string, so invariance tests can assert bit-identical output.
func fingerprint(r *SearchResult) string {
	s := fmt.Sprintf("incubative=%v evals=%d\n", r.Incubative, r.FitnessEvals)
	for _, tp := range r.Trace {
		s += fmt.Sprintf("trace %d %d %.17g\n", tp.InputIndex, tp.Incubative, tp.Fitness)
	}
	for _, in := range r.Inputs {
		s += "input " + in.Key() + "\n"
	}
	for id, b := range r.MaxBenefit {
		if b != 0 {
			s += fmt.Sprintf("benefit %d %.17g\n", id, b)
		}
	}
	return s
}

// TestSearchWorkerAndCacheInvariance asserts the tentpole determinism
// contract: neither the fitness-evaluation worker count nor golden-run
// memoization may change any selection, trace point, or fitness count.
func TestSearchWorkerAndCacheInvariance(t *testing.T) {
	strategies := []Strategy{StrategyGA, StrategyRandom, StrategyAnneal}
	if testing.Short() {
		strategies = strategies[:1] // GA exercises every batch path
	}
	for _, strategy := range strategies {
		tgt, ref := targetFor(t, "knn")
		base := quickCfg(21)
		base.Strategy = strategy
		base.Workers = 1
		base.NoCache = true
		refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(ref), sid.Config{
			Exec: tgt.Exec, FaultsPerInstr: base.FaultsPerInstr, Seed: base.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint(Search(tgt, base, ref, refMeas))

		variants := []struct {
			name string
			mut  func(*Config)
		}{
			{"workers=8 nocache", func(c *Config) { c.Workers = 8 }},
			{"workers=1 cache", func(c *Config) { c.NoCache = false }},
			{"workers=8 cache", func(c *Config) { c.Workers = 8; c.NoCache = false }},
			{"workers=8 cache metrics", func(c *Config) {
				c.Workers = 8
				c.NoCache = false
				c.Metrics = fault.NewMetrics()
			}},
			{"workers=8 shared cache reused", func(c *Config) {
				c.Workers = 8
				c.NoCache = false
				c.Cache = fault.NewCache(0)
				// Warm the cache with a full prior search: the second run
				// below must still be bit-identical despite near-100% hits.
				cfg := *c
				Search(tgt, cfg, ref, refMeas)
			}},
		}
		for _, v := range variants {
			cfg := base
			v.mut(&cfg)
			got := fingerprint(Search(tgt, cfg, ref, refMeas))
			if got != want {
				t.Errorf("strategy %s, variant %q: search result differs from workers=1/no-cache baseline\nwant:\n%s\ngot:\n%s",
					strategy, v.name, want, got)
			}
		}
	}
}

// TestApplyWorkerAndCacheInvariance runs the full pipeline at both worker
// counts and with/without cache: the final selection and coverage estimate
// must be bit-identical.
func TestApplyWorkerAndCacheInvariance(t *testing.T) {
	tgt, ref := targetFor(t, "pathfinder")
	base := quickCfg(5)
	base.Workers = 1
	base.NoCache = true
	want, err := Apply(tgt, ref, 0.5, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []struct {
		name string
		mut  func(*Config)
	}{
		{"workers=8 nocache", func(c *Config) { c.Workers = 8 }},
		{"workers=8 cache metrics", func(c *Config) {
			c.Workers = 8
			c.NoCache = false
			c.Metrics = fault.NewMetrics()
		}},
	} {
		cfg := base
		v.mut(&cfg)
		got, err := Apply(tgt, ref, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Selection.Chosen) != fmt.Sprint(want.Selection.Chosen) {
			t.Errorf("%s: selection differs: %v vs %v", v.name, got.Selection.Chosen, want.Selection.Chosen)
		}
		if got.Selection.ExpectedCoverage != want.Selection.ExpectedCoverage {
			t.Errorf("%s: expected coverage differs: %v vs %v",
				v.name, got.Selection.ExpectedCoverage, want.Selection.ExpectedCoverage)
		}
		if fingerprint(got.Search) != fingerprint(want.Search) {
			t.Errorf("%s: search result differs", v.name)
		}
	}
}

// TestSearchMetricsAccounting checks that a metrics-enabled search records
// golden runs and FI trials in the expected phases.
func TestSearchMetricsAccounting(t *testing.T) {
	tgt, ref := targetFor(t, "knn")
	cfg := quickCfg(21)
	cfg.Metrics = fault.NewMetrics()
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(ref), sid.Config{
		Exec: tgt.Exec, FaultsPerInstr: cfg.FaultsPerInstr, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Search(tgt, cfg, ref, refMeas)
	eng := cfg.Metrics.Phase(fault.PhaseSearchEngine).Snapshot()
	fi := cfg.Metrics.Phase(fault.PhaseIncubativeFI).Snapshot()
	if eng.GoldenRuns+eng.CacheHits == 0 {
		t.Error("search-engine phase recorded no golden-run activity")
	}
	if int64(res.FitnessEvals) > eng.GoldenRuns+eng.CacheHits {
		t.Errorf("fitness evals %d exceed golden lookups %d",
			res.FitnessEvals, eng.GoldenRuns+eng.CacheHits)
	}
	if len(res.Inputs) > 0 && fi.Trials == 0 {
		t.Error("incubative-fi phase recorded no trials despite measured inputs")
	}
}
