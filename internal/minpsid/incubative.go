// Package minpsid implements MINPSID (Multi-Input-hardened Selective
// Instruction Duplication), the paper's contribution: it identifies
// incubative instructions — instructions whose SID benefit is negligible
// under the reference input but substantial under other inputs — via a
// genetic-algorithm input search guided by weighted-CFG distance (Eq. 3),
// re-prioritizes them with their maximum observed benefit, and re-runs
// knapsack selection to produce a protected binary whose SDC coverage
// holds up across inputs.
package minpsid

import "sort"

// Rule is the incubative-instruction criterion of §IV: an instruction is
// incubative when its benefit falls into the bottom BottomFrac of the
// per-instruction benefits under one input but escapes the bottom
// EscapeFrac under another input.
type Rule struct {
	BottomFrac float64 // paper: 0.01 ("last 1% of the overall results")
	EscapeFrac float64 // paper: 0.30 ("out of the last 30%")
}

// DefaultRule returns the paper's thresholds.
func DefaultRule() Rule { return Rule{BottomFrac: 0.01, EscapeFrac: 0.30} }

// quantile returns the value at fraction f of the sorted sample (nearest-
// rank with linear index truncation). Ties are inclusive on the threshold.
func quantile(sorted []float64, f float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(f * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Identify returns the candidate instruction IDs that are incubative
// between the reference benefits and another input's benefits. Both
// benefit slices are indexed by static instruction ID; candidates lists
// the IDs eligible for protection (duplicable instructions).
func (r Rule) Identify(refBenefit, otherBenefit []float64, candidates []int) []int {
	if len(candidates) == 0 {
		return nil
	}
	refVals := make([]float64, 0, len(candidates))
	otherVals := make([]float64, 0, len(candidates))
	for _, id := range candidates {
		refVals = append(refVals, refBenefit[id])
		otherVals = append(otherVals, otherBenefit[id])
	}
	sort.Float64s(refVals)
	sort.Float64s(otherVals)
	bottomThr := quantile(refVals, r.BottomFrac)
	escapeThr := quantile(otherVals, r.EscapeFrac)

	var out []int
	for _, id := range candidates {
		if refBenefit[id] <= bottomThr && otherBenefit[id] > escapeThr {
			out = append(out, id)
		}
	}
	return out
}
