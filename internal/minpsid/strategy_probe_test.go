package minpsid

import (
	"os"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/sid"
)

// TestStrategyProbe compares search strategies at a fuller budget. It is
// a measurement aid, enabled with MINPSID_PROBE=1.
func TestStrategyProbe(t *testing.T) {
	if os.Getenv("MINPSID_PROBE") == "" {
		t.Skip("set MINPSID_PROBE=1 to run the strategy comparison probe")
	}
	for _, name := range []string{"knn", "fft", "kmeans", "needle", "xsbench"} {
		b, _ := benchprog.ByName(name)
		tgt := Target{Mod: b.MustModule(), Spec: b.Spec, Bind: b.Bind, Exec: b.ExecConfig()}
		meas, err := sid.Measure(tgt.Mod, tgt.Bind(b.Reference), sid.Config{
			Exec: tgt.Exec, FaultsPerInstr: 20, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{StrategyGA, StrategyRandom, StrategyAnneal} {
			total, inputs := 0, 0
			for seed := int64(0); seed < 3; seed++ {
				cfg := Config{FaultsPerInstr: 20, MaxInputs: 10, Patience: 3,
					PopSize: 8, MaxGenerations: 5, Seed: 100 + seed, Strategy: strat}
				res := Search(tgt, cfg, b.Reference, meas)
				total += len(res.Incubative)
				inputs += len(res.Inputs)
			}
			t.Logf("%-10s %-7s incubative(avg/3 seeds)=%.1f inputs=%.1f",
				name, strat, float64(total)/3, float64(inputs)/3)
		}
	}
}
