package minpsid

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sid"
)

// Target bundles everything MINPSID needs to know about a program under
// protection: its module, its input space, and the binder mapping inputs
// to concrete executions.
type Target struct {
	Mod  *ir.Module
	Spec *inputgen.Spec
	Bind func(inputgen.Input) interp.Binding
	Exec interp.Config
}

// Config tunes the MINPSID pipeline.
type Config struct {
	// Rule is the incubative criterion; zero value selects DefaultRule.
	Rule Rule
	// FaultsPerInstr is the per-instruction FI trial count (paper: 100).
	FaultsPerInstr int
	// MaxInputs caps the number of FI-measured searched inputs.
	MaxInputs int
	// Patience stops the search after this many consecutive measured
	// inputs that reveal no new incubative instruction.
	Patience int
	// PopSize is the GA population size.
	PopSize int
	// MaxGenerations caps GA generations per input search.
	MaxGenerations int
	// MutationRate and CrossoverRate follow the paper (0.4 / 0.05).
	MutationRate  float64
	CrossoverRate float64
	// Seed drives all stochastic choices.
	Seed int64
	// Workers bounds FI parallelism (0 = GOMAXPROCS).
	Workers int
	// UseRandomSearch replaces the GA engine with blind random input
	// search (the Fig. 7 baseline). Equivalent to Strategy ==
	// StrategyRandom; kept for convenience.
	UseRandomSearch bool
	// Strategy selects the search engine (default StrategyGA).
	Strategy Strategy
	// Cache memoizes golden runs across fitness evaluations and FI
	// measurements. Left nil, withDefaults installs a fresh bounded cache;
	// set NoCache to run without memoization. Results are bit-identical
	// either way.
	Cache   *fault.Cache
	NoCache bool
	// Metrics, if non-nil, receives per-phase campaign accounting
	// (search-engine and incubative-fi phases).
	Metrics *fault.Metrics
	// Obs, if non-nil, receives a span per accepted input and per GA
	// generation plus search-progress registry counters. Observational
	// like Cache and Metrics: results are bit-identical either way.
	Obs *obs.Obs
}

// Strategy selects the input-search engine.
type Strategy uint8

// Search strategies. StrategyGA is the paper's genetic algorithm;
// StrategyRandom is the blind baseline of Fig. 7; StrategyAnneal is a
// simulated-annealing explorer over the same Eq.-3 fitness, one of the
// "more efficient fuzzing algorithms and heuristics" the paper's future
// work (§X) calls for.
const (
	StrategyGA Strategy = iota
	StrategyRandom
	StrategyAnneal
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyAnneal:
		return "anneal"
	default:
		return "ga"
	}
}

// Canonical returns the config with every search-shaping parameter
// normalized to its default when unset, without installing a cache. Two
// configs with equal Canonical parameter fields run identical searches,
// so content-addressed pipelines key search artifacts on them.
func (c Config) Canonical() Config {
	out := c
	out.Cache = nil
	out.NoCache = false
	out.Metrics = nil
	out.Obs = nil
	out.Workers = 0
	if out.UseRandomSearch {
		out.Strategy = StrategyRandom
		out.UseRandomSearch = false
	}
	if out.Rule == (Rule{}) {
		out.Rule = DefaultRule()
	}
	if out.FaultsPerInstr <= 0 {
		out.FaultsPerInstr = 100
	}
	if out.MaxInputs <= 0 {
		out.MaxInputs = 20
	}
	if out.Patience <= 0 {
		out.Patience = 3
	}
	if out.PopSize <= 0 {
		out.PopSize = 8
	}
	if out.MaxGenerations <= 0 {
		out.MaxGenerations = 6
	}
	if out.MutationRate <= 0 {
		out.MutationRate = 0.4
	}
	if out.CrossoverRate <= 0 {
		out.CrossoverRate = 0.05
	}
	return out
}

func (c Config) withDefaults() Config {
	if c.Rule == (Rule{}) {
		c.Rule = DefaultRule()
	}
	if c.FaultsPerInstr <= 0 {
		c.FaultsPerInstr = 100
	}
	if c.MaxInputs <= 0 {
		c.MaxInputs = 20
	}
	if c.Patience <= 0 {
		c.Patience = 3
	}
	if c.PopSize <= 0 {
		c.PopSize = 8
	}
	if c.MaxGenerations <= 0 {
		c.MaxGenerations = 6
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.4
	}
	if c.CrossoverRate <= 0 {
		c.CrossoverRate = 0.05
	}
	if c.Cache == nil && !c.NoCache {
		c.Cache = fault.NewCache(0)
	}
	return c
}

// workers returns the fitness-evaluation worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TracePoint records the search state after measuring one input (for the
// Fig. 7 efficiency curves).
type TracePoint struct {
	InputIndex int     // 1-based count of FI-measured searched inputs
	Incubative int     // cumulative incubative instructions found
	Fitness    float64 // fitness score of the accepted input
}

// SearchResult is the outcome of the incubative-instruction search.
type SearchResult struct {
	Incubative   []int            // incubative instruction IDs, ascending
	MaxBenefit   []float64        // per-instruction max benefit over all measured inputs
	Trace        []TracePoint     // per measured input
	Inputs       []inputgen.Input // the accepted, FI-measured inputs
	FitnessEvals int              // golden runs spent evaluating GA fitness

	// Wall-clock split of the search (for Fig. 8).
	EngineTime time.Duration // input generation + fitness evaluation
	FITime     time.Duration // per-instruction FI on accepted inputs
}

// engine carries the search state.
type engine struct {
	t    Target
	cfg  Config
	rng  *rand.Rand
	cand []int // candidate instruction IDs (duplicable)

	cache    *fault.Cache
	pmEngine *fault.PhaseMetrics // search-engine phase (fitness golden runs)
	pmFI     *fault.PhaseMetrics // incubative-fi phase (per-instruction FI)
	obs      *obs.Obs            // scoped to the search; nil disables
	span     *obs.Span           // current search-input span (GA generations nest here)

	refMeas *sid.Measurement
	history [][]int64 // indexed CFG lists of all measured inputs (ref first)
	seen    map[string]bool

	incubative map[int]bool
	maxBenefit []float64

	res SearchResult
}

// Search runs the input-search phase of MINPSID (steps 3-7 of Fig. 4)
// given the reference-input measurement.
func Search(t Target, cfg Config, refInput inputgen.Input, refMeas *sid.Measurement) *SearchResult {
	cfg = cfg.withDefaults()
	e := &engine{
		t:          t,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		cache:      cfg.Cache,
		pmEngine:   cfg.Metrics.Phase(fault.PhaseSearchEngine),
		pmFI:       cfg.Metrics.Phase(fault.PhaseIncubativeFI),
		obs:        cfg.Obs,
		refMeas:    refMeas,
		seen:       map[string]bool{refInput.Key(): true},
		incubative: make(map[int]bool),
		maxBenefit: append([]float64(nil), refMeas.Benefit...),
	}
	for _, in := range t.Mod.Instrs {
		if sid.Duplicable(in) {
			e.cand = append(e.cand, in.ID)
		}
	}
	refList := profile.IndexedListOf(refMeas.Golden.Profile)
	e.history = append(e.history, refList)

	noProgress := 0
	for len(e.res.Inputs) < cfg.MaxInputs && noProgress < cfg.Patience {
		e.span = e.obs.Start("search-input")
		t0 := time.Now()
		in, golden, fitness, ok := e.nextInput()
		e.res.EngineTime += time.Since(t0)
		if !ok {
			e.span.End()
			break
		}
		before := len(e.incubative)
		t1 := time.Now()
		e.measureAndAbsorb(in, golden, fitness)
		e.res.FITime += time.Since(t1)
		if len(e.incubative) == before {
			noProgress++
		} else {
			noProgress = 0
		}
		e.span.SetAttrInt("incubative", int64(len(e.incubative)))
		e.span.End()
	}

	e.res.MaxBenefit = e.maxBenefit
	e.res.Incubative = sortedKeys(e.incubative)
	return &e.res
}

// nextInput produces the next input to FI-measure, via the configured
// strategy.
func (e *engine) nextInput() (inputgen.Input, *fault.Golden, float64, bool) {
	strategy := e.cfg.Strategy
	if e.cfg.UseRandomSearch {
		strategy = StrategyRandom
	}
	switch strategy {
	case StrategyRandom:
		return e.nextRandom()
	case StrategyAnneal:
		return e.nextAnneal()
	default:
		return e.nextGA()
	}
}

// candidate is a GA population member.
type gaCandidate struct {
	in      inputgen.Input
	golden  *fault.Golden
	list    []int64
	fitness float64
}

// evaluateOne runs the candidate's golden execution (memoized when the
// engine has a cache) and computes its Eq.-3 fitness. ok is false for
// inadmissible inputs (crash/hang/over-budget). It touches no engine
// state and consumes no RNG, so batches of evaluations can run on any
// number of workers without changing any result.
func (e *engine) evaluateOne(in inputgen.Input) (gaCandidate, bool) {
	if err := e.t.Spec.Validate(in); err != nil {
		return gaCandidate{}, false
	}
	golden, err := e.cache.Golden(e.t.Mod, e.t.Bind(in), e.t.Exec, e.pmEngine)
	if err != nil {
		return gaCandidate{}, false
	}
	list := profile.IndexedListOf(golden.Profile)
	return gaCandidate{
		in:      in,
		golden:  golden,
		list:    list,
		fitness: profile.AvgDistance(list, e.history),
	}, true
}

// evaluate is the sequential entry point (annealing walks, whose next
// proposal depends on the previous verdict, cannot batch).
func (e *engine) evaluate(in inputgen.Input) (gaCandidate, bool) {
	c, ok := e.evaluateOne(in)
	if ok {
		e.res.FitnessEvals++
		e.obs.Counter("minpsid.fitness_evals").Inc()
	}
	return c, ok
}

// evalResult pairs one batch candidate with its admissibility.
type evalResult struct {
	cand gaCandidate
	ok   bool
}

// evaluateBatch evaluates a batch of inputs across the engine's worker
// pool and returns results index-aligned with ins. The engine history is
// read-only during the batch and evaluateOne consumes no RNG, so the
// output is bit-identical for any worker count.
func (e *engine) evaluateBatch(ins []inputgen.Input) []evalResult {
	out := make([]evalResult, len(ins))
	nw := e.cfg.workers()
	if nw > len(ins) {
		nw = len(ins)
	}
	if nw <= 1 {
		for i, in := range ins {
			out[i].cand, out[i].ok = e.evaluateOne(in)
		}
	} else {
		next := make(chan int, len(ins))
		for i := range ins {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i].cand, out[i].ok = e.evaluateOne(ins[i])
				}
			}()
		}
		wg.Wait()
	}
	// Fold accounting in deterministic (input) order.
	for _, r := range out {
		if r.ok {
			e.res.FitnessEvals++
			e.obs.Counter("minpsid.fitness_evals").Inc()
		}
	}
	return out
}

// nextGA runs one GA search for the input with maximal weighted-CFG
// distance from history (§V-B2). Each generation's proposals are drawn
// sequentially from the engine RNG (preserving the exact draw stream of a
// one-at-a-time implementation) and then fitness-evaluated as one
// parallel batch.
func (e *engine) nextGA() (inputgen.Input, *fault.Golden, float64, bool) {
	pop := e.seedPopulation()
	if len(pop) == 0 {
		return inputgen.Input{}, nil, 0, false
	}
	best := bestOf(pop)
	for gen := 0; gen < e.cfg.MaxGenerations; gen++ {
		gsp := e.obs.At(e.span).Start("ga-generation")
		e.obs.Counter("minpsid.generations").Inc()
		var proposals []inputgen.Input
		for _, c := range pop {
			if e.rng.Float64() < e.cfg.MutationRate {
				proposals = append(proposals, e.t.Spec.Mutate(c.in, e.rng))
			}
		}
		if len(pop) >= 2 && e.rng.Float64() < e.cfg.CrossoverRate {
			a := pop[e.rng.Intn(len(pop))]
			b := pop[e.rng.Intn(len(pop))]
			ca, cb := e.t.Spec.Crossover(a.in, b.in, e.rng)
			proposals = append(proposals, ca, cb)
		}
		var offspring []gaCandidate
		for _, r := range e.evaluateBatch(proposals) {
			if r.ok {
				offspring = append(offspring, r.cand)
			}
		}
		pop = selectTop(append(pop, offspring...), e.cfg.PopSize)
		newBest := bestOf(pop)
		gsp.SetAttrInt("proposals", int64(len(proposals)))
		gsp.End()
		if newBest.fitness <= best.fitness {
			break // fitness no longer improves: end this GA search
		}
		best = newBest
	}
	// Prefer the fittest input not yet measured.
	ordered := selectTop(pop, len(pop))
	for _, c := range ordered {
		if !e.seen[c.in.Key()] {
			return c.in, c.golden, c.fitness, true
		}
	}
	return inputgen.Input{}, nil, 0, false
}

// seedPopulation draws random admissible inputs, evaluating each draw
// round as a parallel batch. The RNG consumption and the accepted
// population are identical to a sequential draw-then-evaluate loop.
func (e *engine) seedPopulation() []gaCandidate {
	var pop []gaCandidate
	budget := e.cfg.PopSize * 10
	for tries := 0; len(pop) < e.cfg.PopSize && tries < budget; {
		batch := e.cfg.PopSize - len(pop)
		if batch > budget-tries {
			batch = budget - tries
		}
		ins := make([]inputgen.Input, batch)
		for i := range ins {
			ins[i] = e.t.Spec.Random(e.rng)
		}
		tries += batch
		for _, r := range e.evaluateBatch(ins) {
			if r.ok && len(pop) < e.cfg.PopSize {
				pop = append(pop, r.cand)
			}
		}
	}
	return pop
}

// nextAnneal runs a simulated-annealing walk over the input space: it
// starts from a random admissible input and proposes mutations, accepting
// improvements always and regressions with probability exp(delta/T) under
// a geometric cooling schedule. The proposal budget mirrors the GA's
// (PopSize x MaxGenerations evaluations).
func (e *engine) nextAnneal() (inputgen.Input, *fault.Golden, float64, bool) {
	cur, ok := e.seedOne()
	if !ok {
		return inputgen.Input{}, nil, 0, false
	}
	best := cur
	budget := e.cfg.PopSize * e.cfg.MaxGenerations
	if budget < 4 {
		budget = 4
	}
	// Initial temperature scaled to the starting fitness so acceptance
	// probabilities are meaningful regardless of CFG magnitudes.
	temp := cur.fitness*0.5 + 1
	for i := 0; i < budget; i++ {
		prop, ok := e.evaluate(e.t.Spec.Mutate(cur.in, e.rng))
		if !ok {
			continue
		}
		delta := prop.fitness - cur.fitness
		if delta >= 0 || e.rng.Float64() < annealAccept(delta, temp) {
			cur = prop
		}
		if cur.fitness > best.fitness {
			best = cur
		}
		temp *= 0.85
	}
	if !e.seen[best.in.Key()] {
		return best.in, best.golden, best.fitness, true
	}
	if !e.seen[cur.in.Key()] {
		return cur.in, cur.golden, cur.fitness, true
	}
	return inputgen.Input{}, nil, 0, false
}

func annealAccept(delta, temp float64) float64 {
	if temp <= 0 {
		return 0
	}
	return math.Exp(delta / temp)
}

// seedOne draws one random admissible evaluated input.
func (e *engine) seedOne() (gaCandidate, bool) {
	for tries := 0; tries < 50; tries++ {
		if c, ok := e.evaluate(e.t.Spec.Random(e.rng)); ok {
			return c, true
		}
	}
	return gaCandidate{}, false
}

// nextRandom draws the next unmeasured random admissible input (the
// Fig. 7 baseline searcher: no fitness function, blind search).
func (e *engine) nextRandom() (inputgen.Input, *fault.Golden, float64, bool) {
	for tries := 0; tries < 100; tries++ {
		in := e.t.Spec.Random(e.rng)
		if e.seen[in.Key()] {
			continue
		}
		golden, err := e.cache.Golden(e.t.Mod, e.t.Bind(in), e.t.Exec, e.pmEngine)
		if err != nil {
			continue
		}
		return in, golden, 0, true
	}
	return inputgen.Input{}, nil, 0, false
}

// measureAndAbsorb runs the expensive per-instruction FI on the accepted
// input, updates the incubative set and max benefits, and appends the
// input to the search history.
func (e *engine) measureAndAbsorb(in inputgen.Input, golden *fault.Golden, fitness float64) {
	bind := e.t.Bind(in)
	e.obs.Counter("minpsid.inputs_measured").Inc()
	meas, err := sid.MeasureWithGolden(e.t.Mod, bind, sid.Config{
		Exec:           e.t.Exec,
		FaultsPerInstr: e.cfg.FaultsPerInstr,
		Seed:           e.cfg.Seed + int64(len(e.res.Inputs)) + 1,
		Workers:        e.cfg.Workers,
		Cache:          e.cache,
		Metrics:        e.pmFI,
		Obs:            e.obs.At(e.span),
	}, golden)
	if err != nil {
		return // cannot happen: golden already validated
	}

	for _, id := range e.cfg.Rule.Identify(e.refMeas.Benefit, meas.Benefit, e.cand) {
		e.incubative[id] = true
	}
	for id, b := range meas.Benefit {
		if b > e.maxBenefit[id] {
			e.maxBenefit[id] = b
		}
	}

	e.seen[in.Key()] = true
	e.history = append(e.history, profile.IndexedListOf(golden.Profile))
	e.res.Inputs = append(e.res.Inputs, in)
	e.res.Trace = append(e.res.Trace, TracePoint{
		InputIndex: len(e.res.Inputs),
		Incubative: len(e.incubative),
		Fitness:    fitness,
	})
}

func bestOf(pop []gaCandidate) gaCandidate {
	best := pop[0]
	for _, c := range pop[1:] {
		if c.fitness > best.fitness {
			best = c
		}
	}
	return best
}

// selectTop returns the n fittest candidates (stable, descending fitness).
func selectTop(pop []gaCandidate, n int) []gaCandidate {
	out := append([]gaCandidate(nil), pop...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].fitness > out[j-1].fitness; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
