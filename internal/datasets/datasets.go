// Package datasets provides the real-world-like inputs of the paper's
// case study (§VII). The original study used the top KONECT graph
// collections for BFS and Kaggle clustering datasets for Kmeans; neither
// is reachable offline, so this package synthesizes their defining
// statistical properties instead:
//
//   - KONECT substitute: scale-free social/citation-style graphs built by
//     preferential attachment (Barabási–Albert), whose heavy-tailed degree
//     distributions are exactly what distinguishes real networks from the
//     uniform random graphs of the main evaluation.
//   - Kaggle substitute: clustering datasets drawn as anisotropic Gaussian
//     mixtures with unequal cluster weights and outlier contamination —
//     the features that make real clustering data unlike the benchmark's
//     synthetic generator.
//
// The point of the case study is only that these inputs come from a
// *different distribution* than the generator used during protection; the
// substitution preserves that property.
package datasets

import (
	"fmt"

	"repro/internal/benchprog"
	"repro/internal/interp"
)

// splitmix64, kept separate from benchprog's to avoid coupling dataset
// identity to benchmark internals.
type rng struct{ state uint64 }

func newRng(seed int64) *rng {
	return &rng{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) f64() float64       { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

func (r *rng) norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.f64()
	}
	return s - 6
}

// SocialGraph is one KONECT-style dataset.
type SocialGraph struct {
	Name  string
	Graph benchprog.GraphCSR
	Nodes int64
}

// SocialGraphs synthesizes count scale-free graphs by preferential
// attachment: node v attaches m edges to earlier nodes with probability
// proportional to their current degree, giving the heavy-tailed degree
// distribution of real social and citation networks.
func SocialGraphs(count int, seed int64) []SocialGraph {
	out := make([]SocialGraph, 0, count)
	for i := 0; i < count; i++ {
		r := newRng(seed + int64(i)*7919)
		n := 80 + r.intn(140) // 80..219 nodes
		m := 2 + r.intn(3)    // 2..4 attachments per node
		g := preferentialAttachment(n, m, r)
		out = append(out, SocialGraph{
			Name:  fmt.Sprintf("konect-synth-%02d", i),
			Graph: g,
			Nodes: n,
		})
	}
	return out
}

// preferentialAttachment builds a directed scale-free graph in CSR form.
func preferentialAttachment(n, m int64, r *rng) benchprog.GraphCSR {
	// targets[i] holds repeated node IDs weighted by degree.
	var targets []int64
	adj := make([][]int64, n)
	for v := int64(0); v < n; v++ {
		if v == 0 {
			continue
		}
		k := m
		if v < m {
			k = v
		}
		for e := int64(0); e < k; e++ {
			var t int64
			if len(targets) == 0 {
				t = r.intn(v)
			} else {
				t = targets[r.intn(int64(len(targets)))]
			}
			adj[v] = append(adj[v], t)
			// Both endpoints gain attachment mass.
			targets = append(targets, t, v)
		}
	}
	var g benchprog.GraphCSR
	g.Off = make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		g.Off[v] = int64(len(g.Edges))
		g.Edges = append(g.Edges, adj[v]...)
	}
	g.Off[n] = int64(len(g.Edges))
	return g
}

// DegreeTail returns the fraction of edges owned by the top-decile nodes
// by out+in degree; scale-free graphs concentrate mass there.
func DegreeTail(g benchprog.GraphCSR) float64 {
	n := len(g.Off) - 1
	if n == 0 || len(g.Edges) == 0 {
		return 0
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] += int(g.Off[v+1] - g.Off[v])
	}
	for _, e := range g.Edges {
		deg[e]++
	}
	// Selection of the top decile by simple partial sort.
	top := n / 10
	if top == 0 {
		top = 1
	}
	for i := 0; i < top; i++ {
		maxJ := i
		for j := i + 1; j < n; j++ {
			if deg[j] > deg[maxJ] {
				maxJ = j
			}
		}
		deg[i], deg[maxJ] = deg[maxJ], deg[i]
	}
	var topSum, total int
	for i, d := range deg {
		total += d
		if i < top {
			topSum += d
		}
	}
	return float64(topSum) / float64(total)
}

// ClusterDataset is one Kaggle-style clustering dataset.
type ClusterDataset struct {
	Name     string
	X, Y     []float64
	Clusters int64
}

// ClusterDatasets synthesizes count clustering datasets as anisotropic
// Gaussian mixtures with unequal weights plus uniform outliers.
func ClusterDatasets(count int, seed int64) []ClusterDataset {
	out := make([]ClusterDataset, 0, count)
	for i := 0; i < count; i++ {
		r := newRng(seed + int64(i)*104729)
		k := 2 + r.intn(6)    // 2..7 true clusters
		n := 80 + r.intn(100) // 80..179 points
		xs := make([]float64, 0, n)
		ys := make([]float64, 0, n)

		cx := make([]float64, k)
		cy := make([]float64, k)
		sx := make([]float64, k)
		sy := make([]float64, k)
		w := make([]float64, k)
		var wsum float64
		for j := int64(0); j < k; j++ {
			cx[j] = r.f64() * 100
			cy[j] = r.f64() * 100
			sx[j] = 0.5 + r.f64()*8 // anisotropic spreads
			sy[j] = 0.5 + r.f64()*8
			w[j] = 0.2 + r.f64() // unequal weights
			wsum += w[j]
		}
		for p := int64(0); p < n; p++ {
			if r.f64() < 0.05 { // outlier contamination
				xs = append(xs, r.f64()*120-10)
				ys = append(ys, r.f64()*120-10)
				continue
			}
			u := r.f64() * wsum
			j := int64(0)
			for acc := w[0]; u > acc && j < k-1; {
				j++
				acc += w[j]
			}
			xs = append(xs, cx[j]+r.norm()*sx[j])
			ys = append(ys, cy[j]+r.norm()*sy[j])
		}
		out = append(out, ClusterDataset{
			Name:     fmt.Sprintf("kaggle-synth-%02d", i),
			X:        xs,
			Y:        ys,
			Clusters: k,
		})
	}
	return out
}

// BindBFS converts a social graph into a BFS benchmark binding, starting
// from the highest-degree node (as KONECT BFS demos typically do).
func (g SocialGraph) BindBFS() interp.Binding {
	best, bestDeg := int64(0), int64(-1)
	for v := int64(0); v < g.Nodes; v++ {
		if d := g.Graph.Off[v+1] - g.Graph.Off[v]; d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return benchprog.BindBFS(g.Graph, best)
}

// BindKmeans converts a clustering dataset into a Kmeans binding with
// k = the true cluster count and a fixed iteration budget.
func (d ClusterDataset) BindKmeans(iters int64) interp.Binding {
	k := d.Clusters
	if k > 8 {
		k = 8
	}
	return benchprog.BindKmeans(d.X, d.Y, k, iters)
}
