package datasets

import (
	"testing"

	"repro/internal/benchprog"
	"repro/internal/interp"
)

func TestSocialGraphsAreWellFormed(t *testing.T) {
	graphs := SocialGraphs(10, 42)
	if len(graphs) != 10 {
		t.Fatalf("got %d graphs", len(graphs))
	}
	for _, g := range graphs {
		if int64(len(g.Graph.Off)) != g.Nodes+1 {
			t.Fatalf("%s: offsets length %d, nodes %d", g.Name, len(g.Graph.Off), g.Nodes)
		}
		prev := int64(0)
		for _, o := range g.Graph.Off {
			if o < prev {
				t.Fatalf("%s: offsets not monotone", g.Name)
			}
			prev = o
		}
		for _, e := range g.Graph.Edges {
			if e < 0 || e >= g.Nodes {
				t.Fatalf("%s: edge target %d out of range", g.Name, e)
			}
		}
		if len(g.Graph.Edges) == 0 {
			t.Fatalf("%s: no edges", g.Name)
		}
	}
}

func TestSocialGraphsAreHeavyTailed(t *testing.T) {
	// Scale-free graphs concentrate degree mass: the top decile of nodes
	// should own far more than 10% of the edge endpoints. Uniform random
	// graphs sit near ~17-20%; preferential attachment should exceed 25%.
	graphs := SocialGraphs(10, 7)
	var tails float64
	for _, g := range graphs {
		tails += DegreeTail(g.Graph)
	}
	avg := tails / float64(len(graphs))
	if avg < 0.25 {
		t.Errorf("average top-decile degree share = %.3f, want >= 0.25 (heavy tail)", avg)
	}

	// Compare against the uniform generator used in the main evaluation.
	r := uniformTail(t)
	if avg <= r {
		t.Errorf("preferential attachment tail %.3f not heavier than uniform %.3f", avg, r)
	}
}

func uniformTail(t *testing.T) float64 {
	t.Helper()
	var tails float64
	for i := int64(0); i < 10; i++ {
		g := benchprog.RandomGraphSeeded(150, 3, 1000+i)
		tails += DegreeTail(g)
	}
	return tails / 10
}

func TestSocialGraphsRunThroughBFS(t *testing.T) {
	b, ok := benchprog.ByName("bfs")
	if !ok {
		t.Fatal("bfs benchmark missing")
	}
	m := b.MustModule()
	r := interp.NewRunner(m, b.ExecConfig())
	for _, g := range SocialGraphs(5, 11) {
		res := r.Run(g.BindBFS(), nil, nil)
		if res.Status != interp.StatusOK {
			t.Fatalf("%s: status %v (%s)", g.Name, res.Status, res.Trap)
		}
		visited := int64(res.Output[0])
		if visited < 1 || visited > g.Nodes {
			t.Fatalf("%s: visited %d of %d nodes", g.Name, visited, g.Nodes)
		}
	}
}

func TestClusterDatasetsRunThroughKmeans(t *testing.T) {
	b, ok := benchprog.ByName("kmeans")
	if !ok {
		t.Fatal("kmeans benchmark missing")
	}
	m := b.MustModule()
	r := interp.NewRunner(m, b.ExecConfig())
	for _, d := range ClusterDatasets(5, 3) {
		if len(d.X) != len(d.Y) || len(d.X) == 0 {
			t.Fatalf("%s: bad point arrays", d.Name)
		}
		res := r.Run(d.BindKmeans(5), nil, nil)
		if res.Status != interp.StatusOK {
			t.Fatalf("%s: status %v (%s)", d.Name, res.Status, res.Trap)
		}
	}
}

func TestDatasetsAreDeterministic(t *testing.T) {
	a := SocialGraphs(3, 5)
	b := SocialGraphs(3, 5)
	for i := range a {
		if len(a[i].Graph.Edges) != len(b[i].Graph.Edges) {
			t.Fatal("graph generation not deterministic")
		}
		for j := range a[i].Graph.Edges {
			if a[i].Graph.Edges[j] != b[i].Graph.Edges[j] {
				t.Fatal("graph generation not deterministic")
			}
		}
	}
	c := ClusterDatasets(3, 5)
	d := ClusterDatasets(3, 5)
	for i := range c {
		for j := range c[i].X {
			if c[i].X[j] != d[i].X[j] {
				t.Fatal("cluster generation not deterministic")
			}
		}
	}
	// Different seeds produce different datasets.
	e := SocialGraphs(1, 6)
	if len(a[0].Graph.Edges) == len(e[0].Graph.Edges) {
		same := true
		for j := range e[0].Graph.Edges {
			if a[0].Graph.Edges[j] != e[0].Graph.Edges[j] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}
