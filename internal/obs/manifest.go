package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// ManifestSchema versions the manifest document format.
const ManifestSchema = 1

// Manifest is the machine-readable record of one instrumented run: the
// environment that produced it, the full span tree, and a registry
// snapshot. It is written only when a CLI asks for it (-manifest), and its
// contents are purely observational — a run that writes a manifest prints
// byte-identical experiment output to one that does not.
type Manifest struct {
	Schema     int    `json:"schema"`
	Tool       string `json:"tool"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	// AnalysisVersion pins the static-triage rule revision active during
	// the run (analysis.Version), so manifests are comparable only between
	// runs that pruned identically.
	AnalysisVersion string `json:"analysis_version,omitempty"`

	Trace    *TraceSnapshot   `json:"trace,omitempty"`
	Registry RegistrySnapshot `json:"registry"`
}

// BuildManifest snapshots o into a manifest. Works on a nil o (empty
// trace and registry), so CLIs can build unconditionally.
func (o *Obs) BuildManifest(tool string, seed int64, analysisVersion string) *Manifest {
	m := &Manifest{
		Schema:          ManifestSchema,
		Tool:            tool,
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Seed:            seed,
		AnalysisVersion: analysisVersion,
	}
	if o != nil {
		m.Trace = o.Trace.Snapshot()
		m.Registry = o.Reg.Snapshot()
	}
	return m
}

// WriteManifest writes m as indented JSON to path, creating parent
// directories and writing atomically (temp file + rename).
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// WriteOutputs writes the observability artifacts a CLI's -manifest and
// -trace flags request (empty paths are skipped; both empty is a no-op).
// Safe on a nil o: the manifest then records only the environment.
func (o *Obs) WriteOutputs(tool string, seed int64, analysisVersion, manifestPath, tracePath string) error {
	if manifestPath == "" && tracePath == "" {
		return nil
	}
	m := o.BuildManifest(tool, seed, analysisVersion)
	if manifestPath != "" {
		if err := WriteManifest(manifestPath, m); err != nil {
			return err
		}
	}
	if tracePath != "" {
		return WriteChromeTrace(tracePath, m.Trace)
	}
	return nil
}

// ParseManifest decodes a manifest document, rejecting unknown schemas.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	return &m, nil
}

// chromeEvent is one Chrome trace_event "complete" event. Timestamps and
// durations are microseconds (float), per the trace-event spec.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the span tree as a Chrome trace_event JSON
// document loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Spans are packed onto thread lanes so that every lane's events nest
// properly: a span reuses its parent's lane when the parent is the
// innermost active span there, and otherwise opens the first lane whose
// active spans all enclose it. Concurrent scheduler tasks therefore land
// on separate lanes instead of rendering as corrupt overlaps.
func WriteChromeTrace(path string, ts *TraceSnapshot) error {
	doc := chromeDoc{TraceEvents: chromeEvents(ts), DisplayUnit: "ns"}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// flatSpan pairs a span with its parent index for lane assignment.
type flatSpan struct {
	s      *SpanSnapshot
	parent int // index into the flat list, -1 for roots
}

func chromeEvents(ts *TraceSnapshot) []chromeEvent {
	if ts == nil {
		return []chromeEvent{}
	}
	var flat []flatSpan
	var flatten func(s *SpanSnapshot, parent int)
	flatten = func(s *SpanSnapshot, parent int) {
		idx := len(flat)
		flat = append(flat, flatSpan{s: s, parent: parent})
		for _, c := range s.Children {
			flatten(c, idx)
		}
	}
	for _, s := range ts.Spans {
		flatten(s, -1)
	}

	// Sort by start (stable: children after parents at equal starts
	// because flatten appended them later).
	order := make([]int, len(flat))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := flat[order[j-1]], flat[order[j]]
			if a.s.StartNS <= b.s.StartNS {
				break
			}
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Greedy lane packing with nesting preserved: a lane accepts a span
	// only if its innermost active span encloses it.
	type laneState struct {
		active []int64 // stack of active span end times
	}
	var lanes []laneState
	lane := make([]int, len(flat))
	endOf := func(i int) int64 { return flat[i].s.StartNS + flat[i].s.DurNS }
	fits := func(l *laneState, start, end int64) bool {
		for len(l.active) > 0 && l.active[len(l.active)-1] <= start {
			l.active = l.active[:len(l.active)-1]
		}
		return len(l.active) == 0 || l.active[len(l.active)-1] >= end
	}
	for _, i := range order {
		start, end := flat[i].s.StartNS, endOf(i)
		chosen := -1
		if p := flat[i].parent; p >= 0 && fits(&lanes[lane[p]], start, end) {
			chosen = lane[p]
		} else {
			for li := range lanes {
				if fits(&lanes[li], start, end) {
					chosen = li
					break
				}
			}
		}
		if chosen < 0 {
			lanes = append(lanes, laneState{})
			chosen = len(lanes) - 1
		}
		lanes[chosen].active = append(lanes[chosen].active, end)
		lane[i] = chosen
	}

	events := make([]chromeEvent, 0, len(flat))
	for _, i := range order {
		s := flat[i].s
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  lane[i] + 1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	return events
}

// writeFileAtomic writes data to path via a temp file and rename,
// creating parent directories.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
