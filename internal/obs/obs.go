package obs

// Obs bundles the two halves of the observability layer — a trace and a
// metrics registry — plus an optional current span that scopes child
// spans. A nil *Obs disables everything: Start returns a nil span,
// Counter/Gauge/Histogram return nil handles, and every downstream call
// is a no-op, so instrumented code paths never branch on "enabled".
type Obs struct {
	Trace *Trace
	Reg   *Registry
	cur   *Span
}

// New returns an enabled Obs with a fresh trace and registry.
func New(name string) *Obs {
	return &Obs{Trace: NewTrace(name), Reg: NewRegistry()}
}

// At returns a copy of o whose Start calls open children of sp. A nil o
// stays nil; a nil sp scopes back to trace roots.
func (o *Obs) At(sp *Span) *Obs {
	if o == nil {
		return nil
	}
	c := *o
	c.cur = sp
	return &c
}

// Span returns the current scope span (nil when unscoped or disabled).
func (o *Obs) Span() *Span {
	if o == nil {
		return nil
	}
	return o.cur
}

// Start opens a span under the current scope (or at the trace root when
// unscoped). Nil-safe.
func (o *Obs) Start(name string) *Span {
	if o == nil {
		return nil
	}
	if o.cur != nil {
		return o.cur.Child(name)
	}
	return o.Trace.Start(name)
}

// Counter returns the named registry counter (nil-safe).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Gauge returns the named registry gauge (nil-safe).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name)
}

// Histogram returns the named registry histogram (nil-safe).
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name)
}
