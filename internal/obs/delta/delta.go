// Package delta compares two observability documents — JSON-lines bench
// files (make bench's BENCH_interp.json / BENCH_analysis.json) or obs run
// manifests — and reports per-metric deltas with a configurable
// regression threshold. cmd/benchdiff exposes it; CI runs it on every PR
// against the merge-base so perf regressions fail the build instead of
// landing silently.
package delta

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/obs"
)

// Metrics maps metric name -> field name -> value. A bench line
// {"name":"BenchmarkX","ns_per_op":123,...} becomes
// Metrics["BenchmarkX"]["ns_per_op"] = 123; a manifest flattens its
// registry and span tree into the same shape (see FromManifest).
type Metrics map[string]map[string]float64

// DefaultRegressFields lists the lower-is-better fields checked against
// the threshold: benchmark nanoseconds and span durations. Other numeric
// fields (iters, masked_frac, counters) are reported but never gate.
var DefaultRegressFields = []string{"ns_per_op", "ns_per_instr", "dur_ns"}

// Agg selects how duplicate lines for the same benchmark combine.
type Agg int

const (
	// AggLast keeps the last line per name: bench files are append-only
	// across local runs, so the freshest run wins.
	AggLast Agg = iota
	// AggMin keeps the per-field minimum of the gated (lower-is-better)
	// fields across all lines for a name, and the last value for other
	// fields. CI runs `make bench BENCH_COUNT=3` on a fresh checkout and
	// compares with AggMin so shared-runner noise gates on best-of-N
	// rather than a single noisy sample.
	AggMin
)

// ParseBenchLines reads a JSON-lines bench file; agg decides how
// repeated lines for one benchmark combine (see Agg). Blank lines and
// non-JSON noise lines are skipped; a file with no parsable line is an
// error.
func ParseBenchLines(r io.Reader, agg Agg) (Metrics, error) {
	minField := make(map[string]bool)
	for _, f := range DefaultRegressFields {
		minField[f] = true
	}
	out := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	parsed := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			continue
		}
		name, _ := raw["name"].(string)
		if name == "" {
			continue
		}
		parsed++
		fields := out[name]
		if fields == nil || agg == AggLast {
			fields = make(map[string]float64) // AggLast: later lines replace wholesale
			out[name] = fields
		}
		for k, v := range raw {
			f, ok := v.(float64)
			if !ok {
				continue
			}
			if agg == AggMin && minField[k] {
				if prev, seen := fields[k]; seen && prev <= f {
					continue
				}
			}
			fields[k] = f
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if parsed == 0 {
		return nil, fmt.Errorf("delta: no bench lines found")
	}
	return out, nil
}

// FromManifest flattens a run manifest: registry counters become
// "counter.<name>" {value}, gauges "gauge.<name>" {value}, histograms
// "hist.<name>" {count, sum, mean}, and the span tree aggregates by path
// into "span.<path>" {dur_ns, count} (durations summed over same-path
// spans, e.g. the scheduler's many "measure" task spans).
func FromManifest(m *obs.Manifest) Metrics {
	out := make(Metrics)
	for k, v := range m.Registry.Counters {
		out["counter."+k] = map[string]float64{"value": float64(v)}
	}
	for k, v := range m.Registry.Gauges {
		out["gauge."+k] = map[string]float64{"value": float64(v)}
	}
	for k, h := range m.Registry.Histograms {
		out["hist."+k] = map[string]float64{
			"count": float64(h.Count),
			"sum":   float64(h.Sum),
			"mean":  h.Mean(),
		}
	}
	m.Trace.Walk(func(path string, s *obs.SpanSnapshot) {
		key := "span." + path
		f := out[key]
		if f == nil {
			f = map[string]float64{"dur_ns": 0, "count": 0}
			out[key] = f
		}
		f["dur_ns"] += float64(s.DurNS)
		f["count"]++
	})
	return out
}

// Load reads path and parses it as a manifest (a JSON object with the
// manifest schema) or a JSON-lines bench file (anything else), combining
// duplicate bench lines per agg.
func Load(path string, agg Agg) (Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		m, merr := obs.ParseManifest(trimmed)
		if merr == nil {
			return FromManifest(m), nil
		}
		// A document that claims to be a manifest (a single JSON object
		// carrying schema or tool fields) gets the real diagnostic —
		// e.g. "manifest schema 2, want 1" — instead of falling through
		// to bench-line parsing and the misleading "no bench lines".
		var probe struct {
			Schema int    `json:"schema"`
			Tool   string `json:"tool"`
		}
		if json.Unmarshal(trimmed, &probe) == nil && (probe.Schema != 0 || probe.Tool != "") {
			return nil, fmt.Errorf("%s: %w", path, merr)
		}
	}
	m, err := ParseBenchLines(bytes.NewReader(data), agg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Delta is one (metric, field) comparison.
type Delta struct {
	Name  string  `json:"name"`
	Field string  `json:"field"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	// Pct is the relative change in percent ((new-old)/old * 100);
	// +Inf when old == 0 and new != 0.
	Pct float64 `json:"pct"`
	// Regression marks a gated field that worsened beyond the threshold.
	Regression bool `json:"regression"`
}

// Options shapes a comparison.
type Options struct {
	// Threshold is the relative regression bound (0.15 = 15%). A gated
	// field regresses when old > 0 and new > old*(1+Threshold); a zero
	// old value is reported (Pct +Inf) but never gated.
	Threshold float64
	// RegressFields are the lower-is-better fields to gate on; nil
	// selects DefaultRegressFields.
	RegressFields []string
}

// Compare diffs every (name, field) present in both sides, in sorted
// order. Metrics present on only one side are reported through Missing /
// Added on the Report.
func Compare(old, new Metrics, opt Options) Report {
	gate := make(map[string]bool)
	fields := opt.RegressFields
	if fields == nil {
		fields = DefaultRegressFields
	}
	for _, f := range fields {
		gate[f] = true
	}

	var rep Report
	rep.Threshold = opt.Threshold
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nf, ok := new[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		of := old[name]
		fieldNames := make([]string, 0, len(of))
		for f := range of {
			fieldNames = append(fieldNames, f)
		}
		sort.Strings(fieldNames)
		for _, f := range fieldNames {
			nv, ok := nf[f]
			if !ok {
				continue
			}
			ov := of[f]
			d := Delta{Name: name, Field: f, Old: ov, New: nv}
			switch {
			case ov == nv:
				d.Pct = 0
			case ov == 0:
				d.Pct = math.Inf(1)
			default:
				d.Pct = (nv - ov) / math.Abs(ov) * 100
			}
			// ov == 0 never gates: any nonzero new value would trip the
			// relative bound (Pct is +Inf), and manifests legitimately
			// record 0ns durations for very fast spans. The +Inf delta
			// is still reported for eyes.
			if gate[f] && ov > 0 && nv > ov*(1+opt.Threshold) {
				d.Regression = true
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			rep.Added = append(rep.Added, name)
		}
	}
	sort.Strings(rep.Added)
	return rep
}

// Report is the outcome of one comparison.
type Report struct {
	Threshold float64  `json:"threshold"`
	Deltas    []Delta  `json:"deltas"`
	Missing   []string `json:"missing,omitempty"` // in old only
	Added     []string `json:"added,omitempty"`   // in new only
}

// Regressions returns the deltas that exceeded the threshold.
func (r Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Render prints the report as an aligned table. With all=false only
// regressions (plus the missing/added lists) are printed.
func (r Report) Render(w io.Writer, all bool) error {
	regs := r.Regressions()
	fmt.Fprintf(w, "benchdiff: %d metrics compared, %d regression(s) at threshold %.0f%%\n",
		len(r.Deltas), len(regs), r.Threshold*100)
	rows := regs
	if all {
		rows = r.Deltas
	}
	if len(rows) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Metric\tField\tOld\tNew\tDelta")
		for _, d := range rows {
			mark := ""
			if d.Regression {
				mark = "  << REGRESSION"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.6g\t%.6g\t%+.2f%%%s\n", d.Name, d.Field, d.Old, d.New, d.Pct, mark)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(w, "missing in new: %s\n", strings.Join(r.Missing, ", "))
	}
	if len(r.Added) > 0 {
		fmt.Fprintf(w, "added in new: %s\n", strings.Join(r.Added, ", "))
	}
	return nil
}
