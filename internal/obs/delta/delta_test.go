package delta

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const benchOld = `
{"ts":"2026-08-01T00:00:00Z","name":"BenchmarkRunImage/bubble","iters":100,"ns_per_op":1000,"ns_per_instr":2.5}
{"ts":"2026-08-01T00:00:00Z","name":"BenchmarkRunLegacy/bubble","iters":100,"ns_per_op":2000}
{"ts":"2026-08-01T00:00:00Z","name":"analysis/masked","masked_frac":0.42}
`

// benchNew regresses BenchmarkRunImage/bubble by exactly 20% and
// improves the legacy engine; masked_frac shifts but is not gated.
const benchNew = `
{"ts":"2026-08-02T00:00:00Z","name":"BenchmarkRunImage/bubble","iters":100,"ns_per_op":1200,"ns_per_instr":3.0}
{"ts":"2026-08-02T00:00:00Z","name":"BenchmarkRunLegacy/bubble","iters":100,"ns_per_op":1500}
{"ts":"2026-08-02T00:00:00Z","name":"analysis/masked","masked_frac":0.50}
`

func parse(t *testing.T, s string) Metrics {
	t.Helper()
	m, err := ParseBenchLines(strings.NewReader(s), AggLast)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSyntheticRegressionCaught(t *testing.T) {
	rep := Compare(parse(t, benchOld), parse(t, benchNew), Options{Threshold: 0.15})
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want ns_per_op and ns_per_instr of the image engine", regs)
	}
	for _, d := range regs {
		if d.Name != "BenchmarkRunImage/bubble" {
			t.Errorf("unexpected regression on %s.%s", d.Name, d.Field)
		}
	}
}

func TestRegressionWithinThresholdPasses(t *testing.T) {
	rep := Compare(parse(t, benchOld), parse(t, benchNew), Options{Threshold: 0.25})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("20%% change at 25%% threshold flagged: %+v", regs)
	}
}

func TestIdenticalInputsPass(t *testing.T) {
	rep := Compare(parse(t, benchOld), parse(t, benchOld), Options{Threshold: 0})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical inputs flagged: %+v", regs)
	}
	for _, d := range rep.Deltas {
		if d.Pct != 0 {
			t.Errorf("%s.%s pct = %v, want 0", d.Name, d.Field, d.Pct)
		}
	}
}

func TestUngatedFieldNeverRegresses(t *testing.T) {
	rep := Compare(parse(t, benchOld), parse(t, benchNew), Options{Threshold: 0.01})
	for _, d := range rep.Regressions() {
		if d.Field == "masked_frac" || d.Field == "iters" {
			t.Errorf("ungated field %s flagged as regression", d.Field)
		}
	}
}

func TestLastLineWinsPerName(t *testing.T) {
	two := `{"name":"B","ns_per_op":500}` + "\n" + `{"name":"B","ns_per_op":900}` + "\n"
	m := parse(t, two)
	if got := m["B"]["ns_per_op"]; got != 900 {
		t.Fatalf("ns_per_op = %v, want freshest line (900)", got)
	}
}

func TestAggMinKeepsBestOfN(t *testing.T) {
	// Three -count=3 lines for one benchmark: gated fields take the
	// minimum over all lines, ungated fields (iters) keep the last value.
	three := `{"name":"B","iters":100,"ns_per_op":900,"ns_per_instr":3.0}` + "\n" +
		`{"name":"B","iters":120,"ns_per_op":500,"ns_per_instr":2.0}` + "\n" +
		`{"name":"B","iters":110,"ns_per_op":700,"ns_per_instr":2.5}` + "\n"
	m, err := ParseBenchLines(strings.NewReader(three), AggMin)
	if err != nil {
		t.Fatal(err)
	}
	if got := m["B"]["ns_per_op"]; got != 500 {
		t.Errorf("ns_per_op = %v, want min (500)", got)
	}
	if got := m["B"]["ns_per_instr"]; got != 2.0 {
		t.Errorf("ns_per_instr = %v, want min (2.0)", got)
	}
	if got := m["B"]["iters"]; got != 110 {
		t.Errorf("iters = %v, want last (110)", got)
	}
}

func TestZeroOldValueNeverGates(t *testing.T) {
	// A 0ns span (durations truncate to whole ns) going to any nonzero
	// value is reported (+Inf) but must not trip the gate.
	old := Metrics{"span.fast": {"dur_ns": 0}}
	new := Metrics{"span.fast": {"dur_ns": 1}}
	rep := Compare(old, new, Options{Threshold: 0.15})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("0 -> 1 dur_ns gated: %+v", regs)
	}
	if len(rep.Deltas) != 1 || !math.IsInf(rep.Deltas[0].Pct, 1) {
		t.Fatalf("deltas = %+v, want one +Inf delta", rep.Deltas)
	}
}

func TestMissingAndAdded(t *testing.T) {
	old := Metrics{"A": {"ns_per_op": 1}, "B": {"ns_per_op": 1}}
	new := Metrics{"B": {"ns_per_op": 1}, "C": {"ns_per_op": 1}}
	rep := Compare(old, new, Options{Threshold: 0.1})
	if len(rep.Missing) != 1 || rep.Missing[0] != "A" {
		t.Errorf("Missing = %v, want [A]", rep.Missing)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "C" {
		t.Errorf("Added = %v, want [C]", rep.Added)
	}
}

func TestLoadSurfacesManifestSchemaError(t *testing.T) {
	// A document that claims to be a manifest but has the wrong schema
	// must return the schema diagnostic, not fall through to bench-line
	// parsing and report "no bench lines found".
	p := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(p, []byte(`{"schema": 99, "tool": "experiments"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(p, AggLast)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want manifest schema diagnostic", err)
	}
}

func TestFromManifestFlattens(t *testing.T) {
	o := obs.New("test")
	o.Counter("interp.runs").Add(7)
	o.Gauge("pipeline.workers").Set(4)
	o.Histogram("fault.batch_wall_ns").Observe(100)
	o.Histogram("fault.batch_wall_ns").Observe(300)
	root := o.Start("pipeline")
	root.Child("measure").End()
	root.Child("measure").End()
	root.End()
	m := o.BuildManifest("test", 1, "")

	flat := FromManifest(m)
	if got := flat["counter.interp.runs"]["value"]; got != 7 {
		t.Errorf("counter value = %v, want 7", got)
	}
	if got := flat["gauge.pipeline.workers"]["value"]; got != 4 {
		t.Errorf("gauge value = %v, want 4", got)
	}
	h := flat["hist.fault.batch_wall_ns"]
	if h["count"] != 2 || h["sum"] != 400 || h["mean"] != 200 {
		t.Errorf("hist = %v, want count 2 sum 400 mean 200", h)
	}
	if got := flat["span.pipeline/measure"]["count"]; got != 2 {
		t.Errorf("span.pipeline/measure count = %v, want 2 (same-path spans aggregate)", got)
	}
	if _, ok := flat["span.pipeline"]; !ok {
		t.Error("span.pipeline missing from flattened manifest")
	}
}
