package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	// One observation per interesting value: bucket edges and their
	// neighbors. bits.Len64 semantics: bucket 0 holds v <= 0, bucket i
	// holds 2^(i-1) <= v < 2^i.
	cases := []struct {
		v    int64
		le   int64 // expected bucket upper bound
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{7, 7},
		{8, 15},
		{1 << 20, 1<<21 - 1},
		{1<<21 - 1, 1<<21 - 1},
		{math.MaxInt64, math.MaxInt64},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	var wantSum int64
	for _, c := range cases {
		wantSum += c.v
	}
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	want := map[int64]int64{}
	for _, c := range cases {
		want[c.le]++
	}
	got := map[int64]int64{}
	prev := int64(-1)
	for _, b := range s.Buckets {
		if b.Le <= prev {
			t.Errorf("buckets not ascending: %d after %d", b.Le, prev)
		}
		prev = b.Le
		got[b.Le] = b.N
	}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%d: n = %d, want %d", le, got[le], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d non-empty buckets, want %d (%v vs %v)", len(got), len(want), got, want)
	}
}

func TestBucketUpperEdges(t *testing.T) {
	cases := []struct {
		i    int
		want int64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{62, 1<<62 - 1}, {63, math.MaxInt64}, {64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := BucketUpper(c.i); got != c.want {
			t.Errorf("BucketUpper(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

// TestConcurrentCounters exercises the registry and counter hot path from
// many goroutines; run with -race it proves the atomic paths are clean.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 8
		perG       = 10_000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines re-look the handle up each time
			// (contending on the registry mutex), half cache it (the
			// intended hot path). Both must agree in the end.
			if g%2 == 0 {
				for i := 0; i < perG; i++ {
					reg.Counter("shared").Inc()
				}
			} else {
				c := reg.Counter("shared")
				for i := 0; i < perG; i++ {
					c.Inc()
				}
			}
			reg.Gauge("peak").SetMax(int64(g))
			reg.Histogram("dist").Observe(int64(g * 100))
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("shared = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("peak").Value(); got != goroutines-1 {
		t.Errorf("peak = %d, want %d", got, goroutines-1)
	}
	if got := reg.Histogram("dist").Snapshot().Count; got != goroutines {
		t.Errorf("dist count = %d, want %d", got, goroutines)
	}
}

// TestSpanTreeReconstruction interleaves span creation across goroutines
// and checks that the snapshot reconstructs the intended tree, not the
// wall-clock interleaving.
func TestSpanTreeReconstruction(t *testing.T) {
	o := New("test")
	root := o.Start("pipeline")
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := root.Child("measure")
			task.SetAttrInt("worker", int64(w))
			for i := 0; i < 3; i++ {
				c := task.Child("fi-batch")
				c.SetAttrInt("batch", int64(i))
				c.End()
			}
			task.End()
		}(w)
	}
	wg.Wait()
	root.End()

	ts := o.Trace.Snapshot()
	if len(ts.Spans) != 1 || ts.Spans[0].Name != "pipeline" {
		t.Fatalf("roots = %+v, want single pipeline root", ts.Spans)
	}
	counts := map[string]int{}
	ts.Walk(func(path string, s *SpanSnapshot) {
		counts[path]++
		if s.DurNS < 0 {
			t.Errorf("span %s has negative duration %d", path, s.DurNS)
		}
	})
	if counts["pipeline"] != 1 ||
		counts["pipeline/measure"] != workers ||
		counts["pipeline/measure/fi-batch"] != workers*3 {
		t.Errorf("span paths = %v, want 1 pipeline, %d measure, %d fi-batch",
			counts, workers, workers*3)
	}
}

func TestSnapshotClosesOpenSpans(t *testing.T) {
	tr := NewTrace("t")
	s := tr.Start("open")
	ts := tr.Snapshot()
	if len(ts.Spans) != 1 || ts.Spans[0].DurNS < 0 {
		t.Fatalf("open span snapshot = %+v, want closed-at-snapshot span", ts.Spans)
	}
	s.End()
}

func TestNilReceiversNoOp(t *testing.T) {
	var o *Obs
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x").Observe(1)
	sp := o.Start("x")
	sp.SetAttr("k", "v")
	sp.Child("y").End()
	sp.End()
	o.At(sp).Start("z").End()
	var reg *Registry
	reg.Counter("x").Add(5)
	if got := reg.Counter("x").Value(); got != 0 {
		t.Errorf("nil registry counter = %d, want 0", got)
	}
	if err := o.WriteOutputs("t", 0, "", "", ""); err != nil {
		t.Errorf("nil WriteOutputs: %v", err)
	}
}

func TestManifestRoundtripAndChromeTrace(t *testing.T) {
	o := New("test")
	sp := o.Start("phase")
	o.At(sp).Start("inner").End()
	sp.End()
	o.Counter("runs").Add(3)
	o.Histogram("wall").Observe(100)

	dir := t.TempDir()
	mp := filepath.Join(dir, "sub", "manifest.json")
	cp := filepath.Join(dir, "trace.json")
	if err := o.WriteOutputs("test", 42, "v1", mp, cp); err != nil {
		t.Fatalf("WriteOutputs: %v", err)
	}

	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Tool != "test" || m.Seed != 42 || m.AnalysisVersion != "v1" ||
		m.GoVersion == "" || m.GOMAXPROCS < 1 {
		t.Errorf("manifest env fields wrong: %+v", m)
	}
	if m.Registry.Counters["runs"] != 3 {
		t.Errorf("counter runs = %d, want 3", m.Registry.Counters["runs"])
	}
	found := map[string]bool{}
	m.Trace.Walk(func(path string, _ *SpanSnapshot) { found[path] = true })
	if !found["phase"] || !found["phase/inner"] {
		t.Errorf("trace paths = %v, want phase and phase/inner", found)
	}

	cdata, err := os.ReadFile(cp)
	if err != nil {
		t.Fatalf("read chrome trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(cdata, &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("chrome events = %d, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 {
			t.Errorf("bad event %+v", ev)
		}
	}
}

func TestParseManifestRejectsBadSchema(t *testing.T) {
	if _, err := ParseManifest([]byte(`{"schema": 99}`)); err == nil {
		t.Fatal("schema 99 accepted")
	}
	if _, err := ParseManifest([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestChromeTraceLanesNest checks the lane packer: two concurrent siblings
// must land on different lanes (tids), children on their parent's lane.
func TestChromeTraceLanesNest(t *testing.T) {
	ts := &TraceSnapshot{Name: "t", Spans: []*SpanSnapshot{
		{Name: "a", StartNS: 0, DurNS: 100, Children: []*SpanSnapshot{
			{Name: "a1", StartNS: 10, DurNS: 50},
		}},
		{Name: "b", StartNS: 20, DurNS: 100}, // overlaps a
		{Name: "c", StartNS: 200, DurNS: 10}, // after both; reuses a lane
	}}
	evs := chromeEvents(ts)
	tid := map[string]int{}
	for _, e := range evs {
		tid[e.Name] = e.TID
	}
	if tid["a"] == tid["b"] {
		t.Errorf("overlapping roots share lane %d", tid["a"])
	}
	if tid["a1"] != tid["a"] {
		t.Errorf("child a1 on lane %d, parent a on %d", tid["a1"], tid["a"])
	}
	if tid["c"] != tid["a"] && tid["c"] != tid["b"] {
		t.Errorf("c opened new lane %d instead of reusing", tid["c"])
	}
}
