// Package obs is the unified observability substrate of the repository:
// a lock-cheap metrics registry (counters, gauges, log-scale histograms),
// hierarchical tracing spans, and a run-manifest writer that serializes
// both — plus a Chrome trace_event export loadable in Perfetto.
//
// Everything in this package follows the observational-never-semantic
// contract established for the campaign cache, the task scheduler, and the
// static triage: instrumentation observes the system and can never
// influence a result. Every type is safe for concurrent use and every
// method is a no-op on a nil receiver, so call sites need no enabled
// checks — a disabled run passes nil and pays one predictable branch per
// call, with zero allocation.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric with an atomic hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written-value metric with an atomic hot path.
type Gauge struct {
	v atomic.Int64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the fixed histogram bucket count: bucket i holds
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v <= 0 and
// bucket i >= 1 holds 2^(i-1) <= v < 2^i. The inclusive upper bound of
// bucket i is therefore 2^i - 1. Log-scale buckets cover the full int64
// range (nanoseconds to hours, single trials to billions) with no
// configuration and no allocation.
const NumBuckets = 65

// Histogram accumulates observations into fixed log2-scale buckets.
// Observe is a single atomic add per call; negative observations clamp
// into bucket 0.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (no-op on a nil receiver).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i - 1).
// The last bucket's bound saturates at MaxInt64.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<i - 1
}

// Bucket is one non-empty histogram bucket in a snapshot: N observations
// with value <= Le (and greater than the previous bucket's bound).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a consistent copy of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"` // non-empty buckets, ascending
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram state. Buckets incremented concurrently
// with the snapshot may or may not be included; each bucket value is
// individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpper(i), N: n})
		}
	}
	return s
}

// Registry names and owns metrics. Lookup takes the registry mutex once;
// call sites keep the returned handle and then update it with plain
// atomics, so the hot path never contends on the registry. Keys are
// canonical dotted strings ("interp.dyn_instrs", "fault.phase.ref-fi.trials")
// and are stored verbatim — never hashed or truncated — so two snapshots
// are comparable by key across runs, tools, and commits.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil *Counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use
// (nil-safe).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is a copy of every metric, keyed by canonical name.
// encoding/json serializes maps in sorted key order, so the document is
// deterministic for a given set of values.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. A nil registry snapshots empty.
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			s.Histograms[k] = h.Snapshot()
		}
	}
	return s
}

// CounterNames returns the registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
