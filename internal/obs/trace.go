package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one span attribute. Values are strings; numeric attributes are
// formatted by the setter so the manifest stays schema-stable.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Trace owns a tree of spans describing one run. All spans of a trace
// share the trace mutex: span lifecycles are coarse (tasks, phases,
// generations — not instructions), so one uncontended lock per start/end
// is cheap, and a single lock makes interleaved parent/child mutation
// from many goroutines trivially safe.
type Trace struct {
	mu    sync.Mutex
	name  string
	start time.Time
	roots []*Span
}

// NewTrace starts a trace anchored at the current time.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name returns the trace name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Start opens a root-level span. A nil trace returns a nil span whose
// methods are all no-ops.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Span is one timed region of a trace. Spans nest: Child opens a span
// under this one. A span may be ended exactly once; ending is optional —
// snapshots close still-open spans at snapshot time.
type Span struct {
	t        *Trace
	name     string
	start    time.Time
	end      time.Time // zero until End
	attrs    []Attr
	children []*Span
}

// Child opens a sub-span (nil-safe: a nil span returns a nil child).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, start: time.Now()}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// SetAttr attaches a string attribute (nil-safe).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// SetAttrInt attaches an integer attribute (nil-safe).
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End closes the span at the current time (nil-safe; later Ends of the
// same span keep the first end time).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.t.mu.Unlock()
}

// SpanSnapshot is the serialized form of one span. Times are nanoseconds
// relative to the trace start, so two manifests of the same workload are
// comparable without wall-clock anchoring.
type SpanSnapshot struct {
	Name     string          `json:"name"`
	StartNS  int64           `json:"start_ns"`
	DurNS    int64           `json:"dur_ns"`
	Attrs    []Attr          `json:"attrs,omitempty"`
	Children []*SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is the serialized span tree of one trace.
type TraceSnapshot struct {
	Name  string          `json:"name"`
	Spans []*SpanSnapshot `json:"spans,omitempty"`
}

// Snapshot copies the span tree. Spans still open are reported with a
// duration up to the snapshot time. A nil trace snapshots empty.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return &TraceSnapshot{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &TraceSnapshot{Name: t.name}
	for _, s := range t.roots {
		out.Spans = append(out.Spans, t.snapshotLocked(s, now))
	}
	return out
}

func (t *Trace) snapshotLocked(s *Span, now time.Time) *SpanSnapshot {
	end := s.end
	if end.IsZero() {
		end = now
	}
	out := &SpanSnapshot{
		Name:    s.name,
		StartNS: s.start.Sub(t.start).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, t.snapshotLocked(c, now))
	}
	return out
}

// Progress summarizes the completion state of a family of spans: how
// many spans with a given name prefix exist, and how many have ended.
// It is the unit the campaign server streams over SSE — shard spans
// open when a shard is dispatched and end when its artifact commits, so
// Done/Total is exactly committed/planned shards.
type Progress struct {
	Prefix string `json:"prefix"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
}

// Progress counts this span's descendants (the span itself excluded)
// whose name starts with prefix, splitting them into ended and still
// open. Nil-safe: a nil span reports zero progress.
func (s *Span) Progress(prefix string) Progress {
	p := Progress{Prefix: prefix}
	if s == nil {
		return p
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	var walk func(sp *Span)
	walk = func(sp *Span) {
		for _, c := range sp.children {
			if strings.HasPrefix(c.name, prefix) {
				p.Total++
				if !c.end.IsZero() {
					p.Done++
				}
			}
			walk(c)
		}
	}
	walk(s)
	return p
}

// Walk visits every span of the snapshot tree depth-first, passing the
// slash-joined path of span names ("pipeline/measure").
func (ts *TraceSnapshot) Walk(fn func(path string, s *SpanSnapshot)) {
	if ts == nil {
		return
	}
	var walk func(prefix string, s *SpanSnapshot)
	walk = func(prefix string, s *SpanSnapshot) {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		fn(path, s)
		for _, c := range s.Children {
			walk(path, c)
		}
	}
	for _, s := range ts.Spans {
		walk("", s)
	}
}
