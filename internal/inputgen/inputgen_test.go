package inputgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSpec() *Spec {
	return &Spec{Params: []Param{
		IntParam("n", 10, 100),
		FloatParam("eps", 0.001, 1.0),
		ChoiceParam("mode", 1, 2, 4, 8),
		SeedParam("seed"),
	}}
}

func TestRandomRespectsDomain(t *testing.T) {
	s := testSpec()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		in := s.Random(rng)
		if err := s.Validate(in); err != nil {
			t.Fatalf("random input invalid: %v", err)
		}
	}
}

func TestRandomCoversDomain(t *testing.T) {
	s := testSpec()
	rng := rand.New(rand.NewSource(2))
	seenChoice := map[int64]bool{}
	minN, maxN := int64(1<<62), int64(-1)
	for i := 0; i < 2000; i++ {
		in := s.Random(rng)
		seenChoice[in.I[2]] = true
		if in.I[0] < minN {
			minN = in.I[0]
		}
		if in.I[0] > maxN {
			maxN = in.I[0]
		}
	}
	if len(seenChoice) != 4 {
		t.Errorf("choices seen = %v, want all 4", seenChoice)
	}
	if minN > 15 || maxN < 95 {
		t.Errorf("int range poorly covered: [%d,%d]", minN, maxN)
	}
}

func TestMutatePerturbsOneParam(t *testing.T) {
	s := testSpec()
	rng := rand.New(rand.NewSource(3))
	base := s.Random(rng)
	for i := 0; i < 500; i++ {
		m := s.Mutate(base, rng)
		if err := s.Validate(m); err != nil {
			t.Fatalf("mutated input invalid: %v", err)
		}
		diffs := 0
		for j := range s.Params {
			if m.I[j] != base.I[j] || m.F[j] != base.F[j] {
				diffs++
			}
		}
		if diffs > 1 {
			t.Fatalf("mutation changed %d params, want <= 1", diffs)
		}
	}
}

func TestMutateNumericStaysWithin10Percent(t *testing.T) {
	s := &Spec{Params: []Param{IntParam("n", 0, 1_000_000)}}
	rng := rand.New(rand.NewSource(4))
	base := Input{I: []int64{1000}, F: []float64{0}}
	for i := 0; i < 500; i++ {
		m := s.Mutate(base, rng)
		d := m.I[0] - 1000
		if d < -100 || d > 100 {
			t.Fatalf("int mutation moved by %d, want within ±10%%", d)
		}
	}
	sf := &Spec{Params: []Param{FloatParam("x", 0, 1e9)}}
	basef := Input{I: []int64{0}, F: []float64{500}}
	for i := 0; i < 500; i++ {
		m := sf.Mutate(basef, rng)
		if math.Abs(m.F[0]-500) > 50+1e-9 {
			t.Fatalf("float mutation moved by %g, want within ±10%%", m.F[0]-500)
		}
	}
}

func TestMutateAlwaysMoves(t *testing.T) {
	// Even at value 0 (where ±10% is 0) mutation must not be a no-op for
	// int params: the search would stall otherwise.
	s := &Spec{Params: []Param{IntParam("n", 0, 10)}}
	rng := rand.New(rand.NewSource(5))
	base := Input{I: []int64{0}, F: []float64{0}}
	moved := false
	for i := 0; i < 50; i++ {
		if m := s.Mutate(base, rng); m.I[0] != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("mutation of 0 never moved")
	}
}

func TestCrossoverSwapsOnePosition(t *testing.T) {
	s := testSpec()
	rng := rand.New(rand.NewSource(6))
	a := s.Random(rng)
	b := s.Random(rng)
	ca, cb := s.Crossover(a, b, rng)
	if err := s.Validate(ca); err != nil {
		t.Fatalf("offspring a invalid: %v", err)
	}
	if err := s.Validate(cb); err != nil {
		t.Fatalf("offspring b invalid: %v", err)
	}
	// Exactly the swapped positions differ, and they are complementary.
	diffs := 0
	for j := range s.Params {
		if ca.I[j] != a.I[j] || ca.F[j] != a.F[j] {
			diffs++
			if ca.I[j] != b.I[j] || cb.I[j] != a.I[j] {
				t.Fatalf("position %d not a swap", j)
			}
		}
	}
	if diffs > 1 {
		t.Fatalf("crossover changed %d positions, want <= 1", diffs)
	}
}

func TestKeyAndClone(t *testing.T) {
	s := testSpec()
	rng := rand.New(rand.NewSource(7))
	a := s.Random(rng)
	b := a.Clone()
	if a.Key() != b.Key() {
		t.Fatal("clone has different key")
	}
	b.I[0]++
	if a.Key() == b.Key() {
		t.Fatal("mutated clone has same key")
	}
	if a.I[0] == b.I[0] {
		t.Fatal("clone shares storage")
	}
}

func TestValidateRejects(t *testing.T) {
	s := testSpec()
	good := Input{I: []int64{50, 0, 2, 1}, F: []float64{0, 0.5, 0, 0}}
	if err := s.Validate(good); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	cases := []Input{
		{I: []int64{5, 0, 2, 1}, F: []float64{0, 0.5, 0, 0}},   // n too small
		{I: []int64{50, 0, 3, 1}, F: []float64{0, 0.5, 0, 0}},  // bad choice
		{I: []int64{50, 0, 2, 1}, F: []float64{0, 2.0, 0, 0}},  // eps too big
		{I: []int64{50, 0, 2, -1}, F: []float64{0, 0.5, 0, 0}}, // seed negative
		{I: []int64{50}, F: []float64{0}},                      // arity
	}
	for i, in := range cases {
		if err := s.Validate(in); err == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}

// Property: mutation and crossover always stay inside the domain.
func TestOperatorsClosedOverDomainProperty(t *testing.T) {
	s := testSpec()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := s.Random(rng), s.Random(rng)
		for i := 0; i < 20; i++ {
			a = s.Mutate(a, rng)
			var cb Input
			a, cb = s.Crossover(a, b, rng)
			b = cb
			if s.Validate(a) != nil || s.Validate(b) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
