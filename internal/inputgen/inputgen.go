// Package inputgen models benchmark program inputs as typed parameter
// vectors and implements the paper's input-generation rules: random
// sampling over each parameter's legitimate domain (§III-A2) and the
// genetic-algorithm mutation / crossover operators (§V-B2: numeric
// arguments perturbed within ±10%, non-numeric arguments re-enumerated,
// crossover swapping one argument position between two inputs).
package inputgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Kind discriminates parameter domains.
type Kind uint8

// Parameter kinds. KindInt and KindFloat are numeric (GA mutates them
// within ±10%); KindChoice is non-numeric (GA re-enumerates it); KindSeed
// is an opaque dataset seed (re-enumerated, like the dataset-randomizing
// scripts shipped with the benchmark suites).
const (
	KindInt Kind = iota
	KindFloat
	KindChoice
	KindSeed
)

// Param describes one input parameter and its legitimate domain.
type Param struct {
	Name    string
	Kind    Kind
	Min     int64   // KindInt: inclusive lower bound
	Max     int64   // KindInt: inclusive upper bound
	FMin    float64 // KindFloat bounds
	FMax    float64
	Choices []int64 // KindChoice: the legal values
}

// Spec is an ordered parameter list defining a benchmark's input space.
type Spec struct {
	Params []Param
}

// Input is a concrete parameter assignment, parallel to Spec.Params.
// Integer-like parameters use I; float parameters use F.
type Input struct {
	I []int64
	F []float64
}

// Clone returns an independent copy of in.
func (in Input) Clone() Input {
	return Input{I: append([]int64(nil), in.I...), F: append([]float64(nil), in.F...)}
}

// Key returns a canonical string identity for deduplication.
func (in Input) Key() string {
	var sb strings.Builder
	for _, v := range in.I {
		sb.WriteString(strconv.FormatInt(v, 10))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, v := range in.F {
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		sb.WriteByte(',')
	}
	return sb.String()
}

// String renders the input as name=value pairs for s.
func (s *Spec) String(in Input) string {
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		if p.Kind == KindFloat {
			parts[i] = fmt.Sprintf("%s=%.4g", p.Name, in.F[i])
		} else {
			parts[i] = fmt.Sprintf("%s=%d", p.Name, in.I[i])
		}
	}
	return strings.Join(parts, " ")
}

// Validate checks that in is inside the spec's domain.
func (s *Spec) Validate(in Input) error {
	if len(in.I) != len(s.Params) || len(in.F) != len(s.Params) {
		return fmt.Errorf("inputgen: input arity %d/%d, want %d", len(in.I), len(in.F), len(s.Params))
	}
	for i, p := range s.Params {
		switch p.Kind {
		case KindInt, KindSeed:
			if in.I[i] < p.Min || in.I[i] > p.Max {
				return fmt.Errorf("inputgen: %s=%d outside [%d,%d]", p.Name, in.I[i], p.Min, p.Max)
			}
		case KindFloat:
			if in.F[i] < p.FMin || in.F[i] > p.FMax {
				return fmt.Errorf("inputgen: %s=%g outside [%g,%g]", p.Name, in.F[i], p.FMin, p.FMax)
			}
		case KindChoice:
			ok := false
			for _, c := range p.Choices {
				ok = ok || c == in.I[i]
			}
			if !ok {
				return fmt.Errorf("inputgen: %s=%d not a legal choice", p.Name, in.I[i])
			}
		}
	}
	return nil
}

// Random draws an input uniformly from the spec's domain.
func (s *Spec) Random(rng *rand.Rand) Input {
	in := Input{I: make([]int64, len(s.Params)), F: make([]float64, len(s.Params))}
	for i, p := range s.Params {
		switch p.Kind {
		case KindInt, KindSeed:
			in.I[i] = p.Min + rng.Int63n(p.Max-p.Min+1)
		case KindFloat:
			in.F[i] = p.FMin + rng.Float64()*(p.FMax-p.FMin)
		case KindChoice:
			in.I[i] = p.Choices[rng.Intn(len(p.Choices))]
		}
	}
	return in
}

// Mutate returns a mutated copy of in: one randomly selected parameter is
// perturbed. Numeric parameters move by a random amount within ±10% of
// their current value (clamped to the domain); choice and seed parameters
// are re-enumerated from their domain (§V-B2).
func (s *Spec) Mutate(in Input, rng *rand.Rand) Input {
	out := in.Clone()
	i := rng.Intn(len(s.Params))
	p := s.Params[i]
	switch p.Kind {
	case KindInt:
		delta := int64(float64(out.I[i]) * (rng.Float64()*0.2 - 0.1))
		if delta == 0 {
			if rng.Intn(2) == 0 {
				delta = 1
			} else {
				delta = -1
			}
		}
		out.I[i] = clampI(out.I[i]+delta, p.Min, p.Max)
	case KindFloat:
		delta := out.F[i] * (rng.Float64()*0.2 - 0.1)
		if delta == 0 {
			delta = (p.FMax - p.FMin) * 0.01 * (rng.Float64() - 0.5)
		}
		out.F[i] = clampF(out.F[i]+delta, p.FMin, p.FMax)
	case KindChoice:
		out.I[i] = p.Choices[rng.Intn(len(p.Choices))]
	case KindSeed:
		out.I[i] = p.Min + rng.Int63n(p.Max-p.Min+1)
	}
	return out
}

// Crossover swaps one randomly chosen parameter position between a and b,
// returning two offspring (§V-B2).
func (s *Spec) Crossover(a, b Input, rng *rand.Rand) (Input, Input) {
	ca, cb := a.Clone(), b.Clone()
	i := rng.Intn(len(s.Params))
	ca.I[i], cb.I[i] = cb.I[i], ca.I[i]
	ca.F[i], cb.F[i] = cb.F[i], ca.F[i]
	return ca, cb
}

func clampI(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IntParam builds an integer parameter with an inclusive range.
func IntParam(name string, min, max int64) Param {
	return Param{Name: name, Kind: KindInt, Min: min, Max: max}
}

// FloatParam builds a float parameter with an inclusive range.
func FloatParam(name string, min, max float64) Param {
	return Param{Name: name, Kind: KindFloat, FMin: min, FMax: max}
}

// ChoiceParam builds a non-numeric parameter over an explicit value set.
func ChoiceParam(name string, choices ...int64) Param {
	return Param{Name: name, Kind: KindChoice, Choices: choices}
}

// SeedParam builds a dataset-seed parameter.
func SeedParam(name string) Param {
	return Param{Name: name, Kind: KindSeed, Min: 0, Max: 1 << 30}
}
