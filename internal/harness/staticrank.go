package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/benchprog"
	"repro/internal/sid"
	"repro/internal/stats"
)

// StaticRank reports how well the static propagation-graph score
// (sid.StaticSDCProb) RANKS fault sites against fault-injection ground
// truth: per benchmark, the Spearman rank correlation between the
// static score and the reference measurement's per-instruction SDC
// probability, over the injectable sites the reference input actually
// executed (sites never reached have no ground truth to rank against).
// The sound masking/detection bounds feeding the score are validated
// separately by the differential fact checker; this experiment
// evaluates the heuristic remainder.
func StaticRank(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintln(w, "Static-rank: propagation-graph score vs FI ground truth (Spearman rho)")
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tSites\tRho\tStaticZero\tFIZero")
	var rhos []float64
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		m := b.MustModule()
		static := sid.StaticSDCProb(m)
		var xs, ys []float64
		zeroS, zeroF := 0, 0
		for id, in := range m.Instrs {
			if !in.IsInjectable() || ev.RefMeas.DynFrac[id] <= 0 {
				continue
			}
			xs = append(xs, static[id])
			ys = append(ys, ev.RefMeas.SDCProb[id])
			if static[id] == 0 {
				zeroS++
			}
			if ev.RefMeas.SDCProb[id] == 0 {
				zeroF++
			}
		}
		rho := stats.SpearmanRank(xs, ys)
		if !math.IsNaN(rho) {
			rhos = append(rhos, rho)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%d\t%d\n", b.Name, len(xs), rho, zeroS, zeroF)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "mean rho across %d benchmarks: %.3f\n", len(rhos), stats.Mean(rhos))
	return err
}
