package harness

// Golden-file tests for the text renderers: tables (Fig2/Table2/Table3/
// Fig6) and the ASCII candlestick charts. Synthetic evaluations are
// injected straight into the Runner's memo cache so the renderers run on
// fixed data with no fault injection. Regenerate with:
//
//	go test ./internal/harness -run TestRenderGolden -update

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/minpsid"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// syntheticEval builds a deterministic BenchEval for a fake benchmark.
// Coverage points are spread with simple arithmetic so the candlesticks
// exercise min/IQR/median/expected glyph placement.
func syntheticEval(b *benchprog.Benchmark, base float64) *BenchEval {
	levels := []float64{0.3, 0.5, 0.7}
	ev := &BenchEval{Bench: b, Search: &minpsid.SearchResult{Incubative: []int{2, 5, 7}}}
	for li, l := range levels {
		mk := func(off float64) LevelEval {
			le := LevelEval{Level: l, Expected: base + 0.1*float64(li) + off}
			for i := 0; i < 8; i++ {
				c := le.Expected - 0.15 + 0.04*float64(i) + 0.01*float64(li)
				if c < 0 {
					c = 0
				}
				if c > 1 {
					c = 1
				}
				le.Coverage = append(le.Coverage, c)
				le.Inputs++
				if c < le.Expected-1e-9 {
					le.LossCount++
				}
			}
			return le
		}
		ev.Baseline = append(ev.Baseline, mk(0))
		ev.Minpsid = append(ev.Minpsid, mk(0.05))
	}
	return ev
}

// syntheticRunner returns a Runner whose Evaluate is pre-seeded for two
// fake benchmarks, so every renderer is deterministic and instant.
func syntheticRunner() (*Runner, []*benchprog.Benchmark) {
	r := NewRunner(Quick())
	bs := []*benchprog.Benchmark{
		{Name: "alpha", Suite: "synthetic"},
		{Name: "beta", Suite: "synthetic"},
	}
	r.cache["alpha"] = syntheticEval(bs[0], 0.55)
	r.cache["beta"] = syntheticEval(bs[1], 0.72)
	return r, bs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s does not match golden file (regenerate with -update if intended):\n--- got\n%s\n--- want\n%s",
			name, got, want)
	}
}

func TestRenderGolden(t *testing.T) {
	r, bs := syntheticRunner()
	cases := []struct {
		golden string
		render func(w io.Writer) error
	}{
		{"fig2.golden", func(w io.Writer) error { return Fig2(r, bs, w) }},
		{"table2.golden", func(w io.Writer) error { return Table2(r, bs, w) }},
		{"table3.golden", func(w io.Writer) error { return Table3(r, bs, w) }},
		{"fig6.golden", func(w io.Writer) error { return Fig6(r, bs, w) }},
		{"chart2.golden", func(w io.Writer) error { return CoverageChart(r, bs, false, w) }},
		{"chart6.golden", func(w io.Writer) error { return CoverageChart(r, bs, true, w) }},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			checkGolden(t, tc.golden, buf.Bytes())
		})
	}
}

// TestRenderCandleGlyphs pins the exact candlestick string for a small
// hand-checked distribution.
func TestRenderCandleGlyphs(t *testing.T) {
	le := LevelEval{
		Level:    0.5,
		Expected: 0.9,
		Coverage: []float64{0.2, 0.4, 0.5, 0.6, 0.8},
	}
	got := renderCandle(le)
	// min=0.2 max=0.8 → '-' cells 10..40; P25/P75 bound '='; median '|';
	// expected 'E' at cell 45.
	if got[10] != '-' || got[40] != '-' {
		t.Errorf("min/max whiskers misplaced: %q", got)
	}
	if got[25] != '|' {
		t.Errorf("median glyph misplaced: %q", got)
	}
	if got[45] != 'E' {
		t.Errorf("expected-coverage glyph misplaced: %q", got)
	}
	if got[0] != ' ' || got[candleWidth] != ' ' {
		t.Errorf("axis ends not blank: %q", got)
	}
}
