package harness

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestObsInvariance enforces the observational-never-semantic contract for
// the obs substrate: the rendered figure output is byte-identical with
// tracing enabled and disabled, cold (in-memory store) and warm (shared
// disk store, which also pins the Fig. 8 wall-time columns).
func TestObsInvariance(t *testing.T) {
	benches := benchSubset(t, "pathfinder")

	// Cold, in-memory: Fig2 has no wall-time columns, so two independent
	// runs must agree byte-for-byte.
	var off, on bytes.Buffer
	rOff := NewRunner(tinyProfile())
	if err := Fig2(rOff, benches, &off); err != nil {
		t.Fatal(err)
	}
	rOn := NewRunner(tinyProfile())
	rOn.SetObs(obs.New("test"))
	defer rOn.SetObs(nil) // detach the process-global interp hook
	if err := Fig2(rOn, benches, &on); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Bytes(), on.Bytes()) {
		t.Errorf("Fig2 output differs with obs enabled:\n--- off ---\n%s\n--- on ---\n%s", off.String(), on.String())
	}

	// Warm, shared disk store: Fig8's wall columns come from persisted
	// artifacts, so obs-off and obs-on reruns must also agree.
	dir := t.TempDir()
	var w8off, w8on bytes.Buffer
	r1 := NewRunner(tinyProfile())
	if err := r1.Pipe.EnableDisk(dir); err != nil {
		t.Fatal(err)
	}
	if err := Fig8(r1, benches, &w8off); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(tinyProfile())
	if err := r2.Pipe.EnableDisk(dir); err != nil {
		t.Fatal(err)
	}
	r2.SetObs(obs.New("test"))
	defer r2.SetObs(nil)
	if err := Fig8(r2, benches, &w8on); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w8off.Bytes(), w8on.Bytes()) {
		t.Errorf("Fig8 output differs with obs enabled:\n--- off ---\n%s\n--- on ---\n%s", w8off.String(), w8on.String())
	}

	// The obs-on run must have recorded the full task chain as spans.
	ts := rOn.Obs.Trace.Snapshot()
	found := map[string]bool{}
	ts.Walk(func(path string, _ *obs.SpanSnapshot) { found[path] = true })
	for _, kind := range []string{"compile", "measure", "search", "protect", "campaign", "eval", "inputs"} {
		if !found["pipeline/"+kind] {
			t.Errorf("span tree missing pipeline/%s (have %v)", kind, found)
		}
	}

	// And the interpreter's run accounting must have flowed into the
	// registry while attached.
	snap := rOn.Obs.Reg.Snapshot()
	if snap.Counters["interp.runs"] == 0 {
		t.Error("interp.runs counter not incremented during instrumented run")
	}
	if snap.Counters["interp.dyn_instrs"] == 0 {
		t.Error("interp.dyn_instrs counter not incremented during instrumented run")
	}
}
