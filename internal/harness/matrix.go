package harness

import (
	"fmt"
	"io"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/sid"
)

// MatrixCell is one (fault model, detector) cell of the detector-matrix
// experiment: the portfolio's own coverage estimate and the measured
// paper-definition true coverage on the reference input.
type MatrixCell struct {
	Expected float64 // selection's expected coverage under the model
	Cov      float64 // measured true coverage
	Ok       bool    // coverage defined (an SDC fault was observed)
	Sites    int     // chosen sites
}

// matrixLevel is the protection level the matrix experiment evaluates:
// the middle of the paper's 0.3/0.5/0.7 sweep.
const matrixLevel = 0.5

// DetectorMatrix protects one benchmark at the 50% level under every
// registered fault model × single-detector portfolio and measures true
// coverage on the reference input. Every protection and campaign is a
// pipeline node, so the default (bitflip, dup) cell reuses the exact
// nodes of the paper experiments, and a warm artifact store serves
// repeats. Detectors that apply to no site in a benchmark simply select
// fewer (or zero) sites; the cell still renders.
func DetectorMatrix(r *Runner, b *benchprog.Benchmark, w io.Writer) error {
	models := fault.ModelNames()
	dets := sid.DetectorNames()
	cells := make(map[[2]string]MatrixCell, len(models)*len(dets))
	tgt := target(b)
	for _, mn := range models {
		mt := &pipeline.MeasureTask{Target: tgt, Input: b.Reference,
			FaultsPerInstr: r.P.FaultsPerInstr, Seed: r.P.Seed, Model: mn, Env: r.env()}
		for _, dn := range dets {
			pt := &pipeline.ProtectTask{Target: tgt, Level: matrixLevel, Measure: mt,
				Detector: dn, Model: mn, Env: r.env()}
			v, err := r.Pipe.Run(pt)
			if err != nil {
				return fmt.Errorf("matrix %s/%s protect: %w", mn, dn, err)
			}
			po := v.(*pipeline.ProtectOut)
			cv, err := r.Pipe.Run(&pipeline.CampaignTask{Prot: po, Bind: b.Bind(b.Reference),
				Exec: tgt.Exec, Trials: r.P.FaultsPerProgram, Seed: r.P.Seed, Model: mn, Env: r.env()})
			if err != nil {
				return fmt.Errorf("matrix %s/%s campaign: %w", mn, dn, err)
			}
			co := cv.(*pipeline.CoverageOut)
			cells[[2]string{mn, dn}] = MatrixCell{
				Expected: po.Sel.ExpectedCoverage,
				Cov:      co.Cov,
				Ok:       co.Ok,
				Sites:    len(po.Sel.Chosen),
			}
		}
	}
	return RenderDetectorMatrix(w, r.P.Name, b.Name, models, dets, cells)
}

// RenderDetectorMatrix prints the detector × fault-model matrix: one row
// per model, one column group per detector showing measured true
// coverage, the portfolio's expectation, and the selected site count.
// Split from DetectorMatrix so golden tests can render fixed data.
func RenderDetectorMatrix(w io.Writer, profileName, bench string, models, dets []string, cells map[[2]string]MatrixCell) error {
	fmt.Fprintf(w, "Detector × fault-model true-coverage matrix (%s, level %.0f%%, profile %s)\n",
		bench, matrixLevel*100, profileName)
	tw := newTable(w)
	fmt.Fprint(tw, "Model")
	for _, d := range dets {
		fmt.Fprintf(tw, "\t%s meas\texp\tsites", d)
	}
	fmt.Fprintln(tw)
	for _, m := range models {
		fmt.Fprint(tw, m)
		for _, d := range dets {
			c := cells[[2]string{m, d}]
			meas := "n/a"
			if c.Ok {
				meas = fmt.Sprintf("%.2f%%", c.Cov*100)
			}
			fmt.Fprintf(tw, "\t%s\t%.2f%%\t%d", meas, c.Expected*100, c.Sites)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
