package harness

// BenchmarkTriage2 measures what the analysis-v2 triage buys a campaign
// on duplication-protected modules: ns/trial and the pruned-trial
// fraction with pruning on versus off, per benchmark program. The
// detection proofs (dup-detected) dominate on full-DMR binaries, so
// this is the macro view of the static-triage win; CI appends results
// to BENCH_triage2.json and gates them with cmd/benchdiff, where a
// soundness-preserving but pruning-destroying analysis change shows up
// as a pruned_frac collapse and an ns/trial cliff on the "on" rows.

import (
	"fmt"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/sid"
)

func BenchmarkTriage2(b *testing.B) {
	const trials = 60
	for _, name := range []string{"pathfinder", "kmeans", "fft"} {
		bench, ok := benchprog.ByName(name)
		if !ok {
			b.Fatalf("benchmark %s lookup failed", name)
		}
		prot := sid.FullDuplication(bench.MustModule())
		bind := bench.Bind(bench.Reference)
		cfg := bench.ExecConfig()
		golden, err := fault.RunGolden(prot, bind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, pol := range []struct {
			name   string
			triage fault.TriagePolicy
		}{{"on", fault.TriageAuto}, {"off", fault.TriageOff}} {
			b.Run(fmt.Sprintf("%s/triage=%s", name, pol.name), func(b *testing.B) {
				pm := fault.NewMetrics().Phase("bench")
				c := &fault.Campaign{Mod: prot, Bind: bind, Cfg: cfg,
					Golden: golden, Triage: pol.triage, Workers: 1, Metrics: pm}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Run(trials, int64(i)+1)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*trials), "ns/trial")
				snap := pm.Snapshot()
				b.ReportMetric(float64(snap.Pruned)/float64(int64(b.N)*trials), "pruned_frac")
			})
		}
	}
}
