package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sid"
)

// TestMatrixGolden pins the detector × fault-model table layout on fixed
// synthetic cells (regenerate with -update, like the other renderers).
func TestMatrixGolden(t *testing.T) {
	models := []string{"bitflip", "byteflip"}
	dets := []string{"dup", "inv"}
	cells := map[[2]string]MatrixCell{
		{"bitflip", "dup"}:  {Expected: 0.97, Cov: 0.9312, Ok: true, Sites: 38},
		{"bitflip", "inv"}:  {Expected: 0.41, Cov: 0.3847, Ok: true, Sites: 12},
		{"byteflip", "dup"}: {Expected: 0.95, Cov: 0.9104, Ok: true, Sites: 38},
		{"byteflip", "inv"}: {Expected: 0.38, Sites: 0}, // no SDC observed
	}
	var buf bytes.Buffer
	if err := RenderDetectorMatrix(&buf, "quick", "alpha", models, dets, cells); err != nil {
		t.Fatalf("render: %v", err)
	}
	checkGolden(t, "detmatrix.golden", buf.Bytes())
}

// TestMatrixRuns executes the real matrix experiment on one benchmark at
// a tiny budget: every registered model × detector cell must render, and
// the dup column must select sites under every model.
func TestMatrixRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full model × detector sweep")
	}
	r := NewRunner(tinyProfile())
	b := benchSubset(t, "pathfinder")[0]
	var buf bytes.Buffer
	if err := DetectorMatrix(r, b, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, mn := range fault.ModelNames() {
		if !strings.Contains(out, mn+"\t") && !strings.Contains(out, "\n"+mn) {
			t.Errorf("matrix output missing model row %s:\n%s", mn, out)
		}
	}
	for _, dn := range sid.DetectorNames() {
		if !strings.Contains(out, dn+" meas") {
			t.Errorf("matrix output missing detector column %s:\n%s", dn, out)
		}
	}
}

// TestScenarioInvariance is the default-path guard for the pluggable
// model/detector refactor: running non-default scenarios (the full
// detector × fault-model matrix) on a Runner first must not perturb a
// single byte of the default bitflip+dup figure output afterwards —
// task keys, RNG streams, and selections of the default path may not be
// touched by foreign-model artifacts sharing the store.
func TestScenarioInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the matrix sweep twice-over budget")
	}
	benches := benchSubset(t, "pathfinder")

	var clean bytes.Buffer
	rClean := NewRunner(tinyProfile())
	if err := Fig2(rClean, benches, &clean); err != nil {
		t.Fatal(err)
	}

	var dirty bytes.Buffer
	rDirty := NewRunner(tinyProfile())
	if err := DetectorMatrix(rDirty, benches[0], &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := Fig2(rDirty, benches, &dirty); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean.Bytes(), dirty.Bytes()) {
		t.Errorf("Fig2 output perturbed by a prior matrix sweep:\n--- clean ---\n%s\n--- after matrix ---\n%s",
			clean.String(), dirty.String())
	}
}
