package harness

// Golden test for the static-rank report. The evaluation cache is
// seeded with a synthetic reference measurement over a real benchmark
// module, so the report exercises the real static scorer
// (sid.StaticSDCProb) against fixed ground truth with no fault
// injection. Regenerate with:
//
//	go test ./internal/harness -run TestStaticRankGolden -update

import (
	"bytes"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/sid"
)

func TestStaticRankGolden(t *testing.T) {
	b, ok := benchprog.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder benchmark missing")
	}
	m := b.MustModule()
	n := m.NumInstrs()
	meas := &sid.Measurement{
		DynFrac: make([]float64, n),
		SDCProb: make([]float64, n),
	}
	for id := 0; id < n; id++ {
		if id%5 == 4 {
			continue // leave some sites unexecuted: no ground truth
		}
		meas.DynFrac[id] = 1
		meas.SDCProb[id] = float64((id*37)%101) / 100
	}
	r := NewRunner(Quick())
	r.cache[b.Name] = &BenchEval{Bench: b, RefMeas: meas}

	var buf bytes.Buffer
	if err := StaticRank(r, []*benchprog.Benchmark{b}, &buf); err != nil {
		t.Fatalf("static-rank: %v", err)
	}
	checkGolden(t, "staticrank.golden", buf.Bytes())
}
