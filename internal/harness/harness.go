// Package harness drives the paper's experiments end to end: it protects
// each benchmark with baseline SID and with MINPSID, evaluates the SDC
// coverage of the protected binaries across freshly generated inputs, and
// renders every table and figure of the evaluation (Figs. 2/6/7/8/9,
// Tables I-IV, and the §VIII discussion results) as text.
//
// Experiments run under a Profile: Quick (seconds-to-minutes, reduced
// fault counts, used by tests and `go test -bench`) or Full (paper-scale
// fault counts, used by cmd/experiments -full). All heavy work is
// expressed as pipeline task nodes, so experiments sharing a benchmark
// share its measurement, search, protection, and campaign nodes — within
// one invocation through the in-memory tier, and across invocations when
// the on-disk artifact store is enabled.
package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minpsid"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sid"
)

// Profile sizes an experiment run.
type Profile struct {
	Name             string
	EvalInputs       int       // inputs for coverage evaluation (paper: 50 in §III, 30 in §VI)
	FaultsPerProgram int       // program-level faults per input (paper: 1000)
	FaultsPerInstr   int       // per-instruction FI trials (paper: 100)
	Levels           []float64 // protection levels (paper: 0.3/0.5/0.7)
	SearchMaxInputs  int       // MINPSID search budget
	SearchPatience   int
	PopSize          int
	MaxGenerations   int
	Seed             int64
	Workers          int // 0 = GOMAXPROCS
	// FaultModel names the injected fault model and Detector the
	// detector portfolio; empty values select the paper's bitflip +
	// duplication defaults and reproduce the original figures
	// byte-for-byte.
	FaultModel string
	Detector   string
	// Incremental keys fault-injection artifacts per program section
	// instead of per whole program, so edits re-run only the sections
	// they touch. Off by default: the default path reproduces the paper's
	// figures byte-for-byte.
	Incremental bool
}

// Quick returns the reduced profile used by tests and benchmarks.
func Quick() Profile {
	return Profile{
		Name:             "quick",
		EvalInputs:       8,
		FaultsPerProgram: 150,
		FaultsPerInstr:   10,
		Levels:           []float64{0.3, 0.5, 0.7},
		SearchMaxInputs:  4,
		SearchPatience:   2,
		PopSize:          4,
		MaxGenerations:   2,
		Seed:             2022,
	}
}

// Medium returns an intermediate profile: enough fault statistics that
// coverage estimates carry ~±3% noise instead of Quick's ~±7%, while
// remaining runnable on one machine in about an hour.
func Medium() Profile {
	return Profile{
		Name:             "medium",
		EvalInputs:       10,
		FaultsPerProgram: 400,
		FaultsPerInstr:   20,
		Levels:           []float64{0.3, 0.5, 0.7},
		SearchMaxInputs:  8,
		SearchPatience:   3,
		PopSize:          6,
		MaxGenerations:   4,
		Seed:             2022,
	}
}

// Full returns the paper-scale profile.
func Full() Profile {
	return Profile{
		Name:             "full",
		EvalInputs:       30,
		FaultsPerProgram: 1000,
		FaultsPerInstr:   100,
		Levels:           []float64{0.3, 0.5, 0.7},
		SearchMaxInputs:  20,
		SearchPatience:   3,
		PopSize:          8,
		MaxGenerations:   6,
		Seed:             2022,
	}
}

func (p Profile) searchConfig(seed int64) minpsid.Config {
	return minpsid.Config{
		FaultsPerInstr: p.FaultsPerInstr,
		MaxInputs:      p.SearchMaxInputs,
		Patience:       p.SearchPatience,
		PopSize:        p.PopSize,
		MaxGenerations: p.MaxGenerations,
		Seed:           seed,
		Workers:        p.Workers,
	}
}

// searchConfig builds the search config wired to the runner's shared
// cache and metrics.
func (r *Runner) searchConfig(seed int64) minpsid.Config {
	cfg := r.P.searchConfig(seed)
	cfg.Cache = r.Cache
	cfg.Metrics = r.Metrics
	return cfg
}

// Technique names the two protection schemes under comparison.
type Technique uint8

// The two techniques.
const (
	Baseline Technique = iota // existing SID (reference input only)
	Minpsid                   // MINPSID (input search + re-prioritization)
)

// String returns the technique name.
func (t Technique) String() string {
	if t == Minpsid {
		return "MINPSID"
	}
	return "Baseline-SID"
}

// LevelEval is the measured coverage distribution of one (benchmark,
// technique, level) cell across evaluation inputs.
type LevelEval struct {
	Level     float64
	Expected  float64   // expected coverage reported by the technique
	Coverage  []float64 // measured SDC coverage per evaluation input
	LossCount int       // inputs whose measured coverage < expected
	Inputs    int       // inputs evaluated (coverage defined)
}

// BenchEval collects both techniques' evaluations for one benchmark.
type BenchEval struct {
	Bench    *benchprog.Benchmark
	Baseline []LevelEval
	Minpsid  []LevelEval

	RefMeas *sid.Measurement
	Search  *minpsid.SearchResult

	// Selections per level, on original-module instruction IDs.
	BaseSel map[float64]sid.Selection
	MinpSel map[float64]sid.Selection

	// Protected modules per level (with the original module and the
	// instruction-ID mapping needed for true-coverage replay).
	BaseProt map[float64]protection
	MinpProt map[float64]protection

	EvalInputs []inputgen.Input

	// RefFITime is the wall time of the reference per-instruction FI
	// (component ① of the Fig. 8 breakdown; the search components live in
	// Search.EngineTime / Search.FITime). On a warm artifact store this is
	// the recorded wall time of the original measurement.
	RefFITime time.Duration
}

// Runner executes and caches experiments under one profile. All
// experiments of one Runner share one task pipeline (single-flight dedup
// plus the two-tier artifact store), a golden-run/campaign cache, and a
// per-phase metrics collector; all three are purely observational —
// results are bit-identical with or without them.
type Runner struct {
	P       Profile
	Pipe    *pipeline.Pipeline // task scheduler + artifact store
	Cache   *fault.Cache       // shared golden-run/campaign memoization
	Metrics *fault.Metrics     // per-phase campaign accounting
	Obs     *obs.Obs           // unified tracing/metrics (nil = disabled)
	cache   map[string]*BenchEval
}

// NewRunner returns a Runner for profile p with a memory-only pipeline.
// Call Pipe.EnableDisk to make its artifacts survive the process.
func NewRunner(p Profile) *Runner {
	return &Runner{
		P:       p,
		Pipe:    pipeline.NewMem(p.Workers),
		Cache:   fault.NewCache(0),
		Metrics: fault.NewMetrics(),
		cache:   make(map[string]*BenchEval),
	}
}

// env bundles the runner's observational machinery for task nodes.
func (r *Runner) env() pipeline.Env {
	return pipeline.Env{Cache: r.Cache, Metrics: r.Metrics, Workers: r.P.Workers}
}

// SetObs attaches an observability context to the runner: the pipeline
// opens task spans under it and the interpreter's process-global run
// accounting points at its registry. Passing nil detaches both. Like
// Cache and Metrics this is purely observational — every table, figure,
// and campaign result is byte-identical with obs on or off (enforced by
// TestObsInvariance).
func (r *Runner) SetObs(o *obs.Obs) {
	r.Obs = o
	r.Pipe.SetObs(o)
	if o != nil {
		interp.SetObs(o.Reg)
	} else {
		interp.SetObs(nil)
	}
}

// target adapts a benchmark to the MINPSID target interface.
func target(b *benchprog.Benchmark) minpsid.Target {
	return minpsid.Target{
		Mod:  b.MustModule(),
		Spec: b.Spec,
		Bind: b.Bind,
		Exec: b.ExecConfig(),
	}
}

// evalTask builds the composite evaluation node for one benchmark. Every
// experiment needing this benchmark's evaluation converges on the same
// task key, so the work runs at most once per store state.
func (r *Runner) evalTask(b *benchprog.Benchmark) *pipeline.EvalTask {
	p := r.P
	return &pipeline.EvalTask{
		Target:         target(b),
		Ref:            b.Reference,
		Levels:         p.Levels,
		EvalInputs:     p.EvalInputs,
		Trials:         p.FaultsPerProgram,
		FaultsPerInstr: p.FaultsPerInstr,
		Seed:           p.Seed,
		SearchCfg:      p.searchConfig(p.Seed + 17),
		FaultModel:     p.FaultModel,
		Detector:       p.Detector,
		Incremental:    p.Incremental,
		Env:            r.env(),
	}
}

// Evaluate computes (and caches) the full evaluation of one benchmark:
// protection by both techniques at every level, then coverage measurement
// across evaluation inputs.
func (r *Runner) Evaluate(b *benchprog.Benchmark) (*BenchEval, error) {
	if ev, ok := r.cache[b.Name]; ok {
		return ev, nil
	}
	// Run the compile node explicitly: the eval path binds modules through
	// Target (already compiled), so without this the trace would lack the
	// compile stage of the compile→measure→search→protect→campaign chain.
	if _, err := r.Pipe.Run(&pipeline.CompileTask{Bench: b}); err != nil {
		return nil, fmt.Errorf("harness %s: compile: %w", b.Name, err)
	}
	v, err := r.Pipe.Run(r.evalTask(b))
	if err != nil {
		return nil, fmt.Errorf("harness %s: %w", b.Name, err)
	}
	out := v.(*pipeline.EvalOut)

	ev := &BenchEval{
		Bench:      b,
		RefMeas:    out.Meas.Meas,
		Search:     out.Search,
		BaseSel:    make(map[float64]sid.Selection),
		MinpSel:    make(map[float64]sid.Selection),
		BaseProt:   make(map[float64]protection),
		MinpProt:   make(map[float64]protection),
		EvalInputs: out.Inputs,
		RefFITime:  out.Meas.Wall,
	}
	for _, lo := range out.Levels {
		ev.BaseSel[lo.Level] = lo.Base.Sel
		ev.MinpSel[lo.Level] = lo.Minp.Sel
		ev.BaseProt[lo.Level] = protectionOf(lo.Base.Prot)
		ev.MinpProt[lo.Level] = protectionOf(lo.Minp.Prot)
		ev.Baseline = append(ev.Baseline, LevelEval{
			Level: lo.Level, Expected: lo.Base.Expected,
			Coverage: lo.Base.Coverage, LossCount: lo.Base.LossCount, Inputs: lo.Base.Inputs,
		})
		ev.Minpsid = append(ev.Minpsid, LevelEval{
			Level: lo.Level, Expected: lo.Minp.Expected,
			Coverage: lo.Minp.Coverage, LossCount: lo.Minp.LossCount, Inputs: lo.Minp.Inputs,
		})
	}
	r.cache[b.Name] = ev
	return ev, nil
}

// protection bundles a protected binary with what true-coverage replay
// needs: the original module, the static instruction-ID mapping, and the
// full selection (chosen IDs plus per-site detectors) that
// content-addresses its campaigns.
type protection struct {
	orig *ir.Module
	mod  *ir.Module
	ids  map[int]int
	sel  sid.Selection
}

// protectionOf adapts a pipeline protection output.
func protectionOf(p *pipeline.ProtectOut) protection {
	return protection{orig: p.Orig, mod: p.Mod, ids: p.IDs, sel: p.Sel}
}

// taskOf rebuilds the pipeline form of a protection.
func (pr protection) taskOf() *pipeline.ProtectOut {
	return &pipeline.ProtectOut{Orig: pr.orig, Mod: pr.mod, IDs: pr.ids, Sel: pr.sel}
}

// measureCoverage measures the paper-definition SDC coverage of a
// protected program under one input through a pipeline campaign node:
// faults are sampled on the original program and the SDC-producing ones
// replayed against the protected binary (fault.TrueCoverage). The node is
// keyed on the selection — not the technique — so techniques choosing the
// same instructions share one campaign, and a warm artifact store serves
// it without re-executing. ok is false when the input is inadmissible or
// no SDC fault was observed (coverage undefined).
func (r *Runner) measureCoverage(prot protection, bind interp.Binding, exec interp.Config, seed int64) (float64, bool) {
	v, err := r.Pipe.Run(&pipeline.CampaignTask{
		Prot:   prot.taskOf(),
		Bind:   bind,
		Exec:   exec,
		Trials: r.P.FaultsPerProgram,
		Seed:   seed,
		Model:  r.P.FaultModel,
		Env:    r.env(),
	})
	if err != nil {
		return 0, false
	}
	cov := v.(*pipeline.CoverageOut)
	return cov.Cov, cov.Ok
}

// LossInputPct returns the percentage of evaluation inputs with coverage
// loss for one cell.
func (le LevelEval) LossInputPct() float64 {
	if le.Inputs == 0 {
		return 0
	}
	return 100 * float64(le.LossCount) / float64(le.Inputs)
}

// MinCoverage returns the lowest measured coverage (1 if none measured).
func (le LevelEval) MinCoverage() float64 {
	if len(le.Coverage) == 0 {
		return 1
	}
	min := le.Coverage[0]
	for _, c := range le.Coverage[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// sortedLevels returns the profile's levels in ascending order.
func (p Profile) sortedLevels() []float64 {
	ls := append([]float64(nil), p.Levels...)
	sort.Float64s(ls)
	return ls
}
