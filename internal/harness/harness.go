// Package harness drives the paper's experiments end to end: it protects
// each benchmark with baseline SID and with MINPSID, evaluates the SDC
// coverage of the protected binaries across freshly generated inputs, and
// renders every table and figure of the evaluation (Figs. 2/6/7/8/9,
// Tables I-IV, and the §VIII discussion results) as text.
//
// Experiments run under a Profile: Quick (seconds-to-minutes, reduced
// fault counts, used by tests and `go test -bench`) or Full (paper-scale
// fault counts, used by cmd/experiments -full).
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

// Profile sizes an experiment run.
type Profile struct {
	Name             string
	EvalInputs       int       // inputs for coverage evaluation (paper: 50 in §III, 30 in §VI)
	FaultsPerProgram int       // program-level faults per input (paper: 1000)
	FaultsPerInstr   int       // per-instruction FI trials (paper: 100)
	Levels           []float64 // protection levels (paper: 0.3/0.5/0.7)
	SearchMaxInputs  int       // MINPSID search budget
	SearchPatience   int
	PopSize          int
	MaxGenerations   int
	Seed             int64
	Workers          int // 0 = GOMAXPROCS
}

// Quick returns the reduced profile used by tests and benchmarks.
func Quick() Profile {
	return Profile{
		Name:             "quick",
		EvalInputs:       8,
		FaultsPerProgram: 150,
		FaultsPerInstr:   10,
		Levels:           []float64{0.3, 0.5, 0.7},
		SearchMaxInputs:  4,
		SearchPatience:   2,
		PopSize:          4,
		MaxGenerations:   2,
		Seed:             2022,
	}
}

// Medium returns an intermediate profile: enough fault statistics that
// coverage estimates carry ~±3% noise instead of Quick's ~±7%, while
// remaining runnable on one machine in about an hour.
func Medium() Profile {
	return Profile{
		Name:             "medium",
		EvalInputs:       10,
		FaultsPerProgram: 400,
		FaultsPerInstr:   20,
		Levels:           []float64{0.3, 0.5, 0.7},
		SearchMaxInputs:  8,
		SearchPatience:   3,
		PopSize:          6,
		MaxGenerations:   4,
		Seed:             2022,
	}
}

// Full returns the paper-scale profile.
func Full() Profile {
	return Profile{
		Name:             "full",
		EvalInputs:       30,
		FaultsPerProgram: 1000,
		FaultsPerInstr:   100,
		Levels:           []float64{0.3, 0.5, 0.7},
		SearchMaxInputs:  20,
		SearchPatience:   3,
		PopSize:          8,
		MaxGenerations:   6,
		Seed:             2022,
	}
}

func (p Profile) searchConfig(seed int64) minpsid.Config {
	return minpsid.Config{
		FaultsPerInstr: p.FaultsPerInstr,
		MaxInputs:      p.SearchMaxInputs,
		Patience:       p.SearchPatience,
		PopSize:        p.PopSize,
		MaxGenerations: p.MaxGenerations,
		Seed:           seed,
		Workers:        p.Workers,
	}
}

// searchConfig builds the search config wired to the runner's shared
// cache and metrics.
func (r *Runner) searchConfig(seed int64) minpsid.Config {
	cfg := r.P.searchConfig(seed)
	cfg.Cache = r.Cache
	cfg.Metrics = r.Metrics
	return cfg
}

// Technique names the two protection schemes under comparison.
type Technique uint8

// The two techniques.
const (
	Baseline Technique = iota // existing SID (reference input only)
	Minpsid                   // MINPSID (input search + re-prioritization)
)

// String returns the technique name.
func (t Technique) String() string {
	if t == Minpsid {
		return "MINPSID"
	}
	return "Baseline-SID"
}

// LevelEval is the measured coverage distribution of one (benchmark,
// technique, level) cell across evaluation inputs.
type LevelEval struct {
	Level     float64
	Expected  float64   // expected coverage reported by the technique
	Coverage  []float64 // measured SDC coverage per evaluation input
	LossCount int       // inputs whose measured coverage < expected
	Inputs    int       // inputs evaluated (coverage defined)
}

// BenchEval collects both techniques' evaluations for one benchmark.
type BenchEval struct {
	Bench    *benchprog.Benchmark
	Baseline []LevelEval
	Minpsid  []LevelEval

	RefMeas *sid.Measurement
	Search  *minpsid.SearchResult

	// Selections per level, on original-module instruction IDs.
	BaseSel map[float64]sid.Selection
	MinpSel map[float64]sid.Selection

	// Protected modules per level (with the original module and the
	// instruction-ID mapping needed for true-coverage replay).
	BaseProt map[float64]protection
	MinpProt map[float64]protection

	EvalInputs []inputgen.Input

	// RefFITime is the wall time of the reference per-instruction FI
	// (component ① of the Fig. 8 breakdown; the search components live in
	// Search.EngineTime / Search.FITime).
	RefFITime time.Duration
}

// Runner executes and caches experiments under one profile. All
// experiments of one Runner share a golden-run/campaign cache and a
// per-phase metrics collector; both are purely observational — results
// are bit-identical with or without them.
type Runner struct {
	P       Profile
	Cache   *fault.Cache   // shared golden-run/campaign memoization
	Metrics *fault.Metrics // per-phase campaign accounting
	cache   map[string]*BenchEval
}

// NewRunner returns a Runner for profile p.
func NewRunner(p Profile) *Runner {
	return &Runner{
		P:       p,
		Cache:   fault.NewCache(0),
		Metrics: fault.NewMetrics(),
		cache:   make(map[string]*BenchEval),
	}
}

// target adapts a benchmark to the MINPSID target interface.
func target(b *benchprog.Benchmark) minpsid.Target {
	return minpsid.Target{
		Mod:  b.MustModule(),
		Spec: b.Spec,
		Bind: b.Bind,
		Exec: b.ExecConfig(),
	}
}

// admissibleInputs draws n fresh inputs that run to completion within the
// benchmark's budget (the paper's input filtering, §III-A2). The golden
// runs go through the runner's cache, priming it for the coverage
// evaluation of the same inputs.
func (r *Runner) admissibleInputs(b *benchprog.Benchmark, n int, seed int64) []inputgen.Input {
	rng := rand.New(rand.NewSource(seed))
	m := b.MustModule()
	pm := r.Metrics.Phase(fault.PhaseEvaluation)
	var out []inputgen.Input
	for tries := 0; len(out) < n && tries < n*50; tries++ {
		in := b.Spec.Random(rng)
		if _, err := r.Cache.Golden(m, b.Bind(in), b.ExecConfig(), pm); err != nil {
			continue
		}
		out = append(out, in)
	}
	return out
}

// Evaluate computes (and caches) the full evaluation of one benchmark:
// protection by both techniques at every level, then coverage measurement
// across evaluation inputs.
func (r *Runner) Evaluate(b *benchprog.Benchmark) (*BenchEval, error) {
	if ev, ok := r.cache[b.Name]; ok {
		return ev, nil
	}
	p := r.P
	tgt := target(b)

	// Reference measurement (shared by both techniques).
	t0 := time.Now()
	pmRef := r.Metrics.Phase(fault.PhaseRefFI)
	refMeas, err := sid.Measure(tgt.Mod, tgt.Bind(b.Reference), sid.Config{
		Exec:           tgt.Exec,
		FaultsPerInstr: p.FaultsPerInstr,
		Seed:           p.Seed,
		Workers:        p.Workers,
		Cache:          r.Cache,
		Metrics:        pmRef,
	})
	if err != nil {
		return nil, fmt.Errorf("harness %s: reference measurement: %w", b.Name, err)
	}
	refFITime := time.Since(t0)

	// MINPSID search (once per benchmark; selections per level reuse it).
	search := minpsid.Search(tgt, r.searchConfig(p.Seed+17), b.Reference, refMeas)
	updated := minpsid.Reprioritize(refMeas, search)

	ev := &BenchEval{
		Bench:     b,
		RefMeas:   refMeas,
		Search:    search,
		BaseSel:   make(map[float64]sid.Selection),
		MinpSel:   make(map[float64]sid.Selection),
		BaseProt:  make(map[float64]protection),
		MinpProt:  make(map[float64]protection),
		RefFITime: refFITime,
	}

	ev.EvalInputs = r.admissibleInputs(b, p.EvalInputs, p.Seed+1000)

	for _, level := range p.Levels {
		baseSel := sid.Select(tgt.Mod, refMeas, level, sid.MethodDP)
		minpSel := sid.Select(tgt.Mod, updated, level, sid.MethodDP)
		ev.BaseSel[level] = baseSel
		ev.MinpSel[level] = minpSel

		baseProt := protection{
			orig: tgt.Mod,
			mod:  sid.Duplicate(tgt.Mod, baseSel.Chosen),
			ids:  sid.ProtectedMap(tgt.Mod, baseSel.Chosen),
		}
		// When re-prioritization does not change the selection, the two
		// protected binaries are structurally identical and every coverage
		// measurement is deterministic, so MINPSID can share the baseline's
		// module and measurements bit-for-bit instead of recomputing them.
		minpProt := baseProt
		if !equalIDs(baseSel.Chosen, minpSel.Chosen) {
			minpProt = protection{
				orig: tgt.Mod,
				mod:  sid.Duplicate(tgt.Mod, minpSel.Chosen),
				ids:  sid.ProtectedMap(tgt.Mod, minpSel.Chosen),
			}
		}
		ev.BaseProt[level] = baseProt
		ev.MinpProt[level] = minpProt

		be := LevelEval{Level: level, Expected: baseSel.ExpectedCoverage}
		me := LevelEval{Level: level, Expected: minpSel.ExpectedCoverage}
		for i, in := range ev.EvalInputs {
			seed := p.Seed + int64(i)*31 + int64(level*100)
			bind := b.Bind(in)
			cov, ok := r.measureCoverage(baseProt, bind, tgt.Exec, seed)
			if ok {
				be.Coverage = append(be.Coverage, cov)
				be.Inputs++
				if cov < be.Expected-1e-9 {
					be.LossCount++
				}
			}
			mcov, mok := cov, ok
			if minpProt.mod != baseProt.mod {
				mcov, mok = r.measureCoverage(minpProt, bind, tgt.Exec, seed)
			}
			if mok {
				me.Coverage = append(me.Coverage, mcov)
				me.Inputs++
				if mcov < me.Expected-1e-9 {
					me.LossCount++
				}
			}
		}
		ev.Baseline = append(ev.Baseline, be)
		ev.Minpsid = append(ev.Minpsid, me)
	}

	r.cache[b.Name] = ev
	return ev, nil
}

// protection bundles a protected binary with what true-coverage replay
// needs: the original module and the static instruction-ID mapping.
type protection struct {
	orig *ir.Module
	mod  *ir.Module
	ids  map[int]int
}

// equalIDs reports whether two sorted selection slices are identical.
func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// measureCoverage measures the paper-definition SDC coverage of a
// protected program under one input: faults are sampled on the original
// program and the SDC-producing ones replayed against the protected
// binary (fault.TrueCoverage). The runner's cache memoizes the golden
// runs and the phase-1 unprotected campaign, which both techniques share
// at each (input, seed). ok is false when the input is inadmissible or no
// SDC fault was observed (coverage undefined).
func (r *Runner) measureCoverage(prot protection, bind interp.Binding, exec interp.Config, seed int64) (float64, bool) {
	res, err := fault.TrueCoverageOpts(prot.orig, prot.mod, prot.ids, bind, exec, fault.CoverageOptions{
		Trials:  r.P.FaultsPerProgram,
		Seed:    seed,
		Workers: r.P.Workers,
		Cache:   r.Cache,
		Metrics: r.Metrics.Phase(fault.PhaseEvaluation),
	})
	if err != nil {
		return 0, false
	}
	return res.Coverage()
}

// LossInputPct returns the percentage of evaluation inputs with coverage
// loss for one cell.
func (le LevelEval) LossInputPct() float64 {
	if le.Inputs == 0 {
		return 0
	}
	return 100 * float64(le.LossCount) / float64(le.Inputs)
}

// MinCoverage returns the lowest measured coverage (1 if none measured).
func (le LevelEval) MinCoverage() float64 {
	if len(le.Coverage) == 0 {
		return 1
	}
	min := le.Coverage[0]
	for _, c := range le.Coverage[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// sortedLevels returns the profile's levels in ascending order.
func (p Profile) sortedLevels() []float64 {
	ls := append([]float64(nil), p.Levels...)
	sort.Float64s(ls)
	return ls
}
