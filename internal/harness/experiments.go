package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/benchprog"
	"repro/internal/sid"
	"repro/internal/stats"
)

// newTable returns a tabwriter for aligned text tables.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Table1 prints the benchmark inventory (paper Table I) with static IR
// statistics from this reproduction.
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table I: Benchmarks")
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tSuite\tStatic Instrs\tBlocks\tRef DynInstrs\tDescription")
	for _, b := range benchprog.Eleven() {
		m, err := b.Module()
		if err != nil {
			return err
		}
		g, err := goldenOf(b)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\n",
			b.Name, b.Suite, m.NumInstrs(), m.NumBlocks(), g.DynInstrs, b.Description)
	}
	return tw.Flush()
}

// Fig2 prints the baseline-SID coverage candlesticks across inputs
// (paper Fig. 2): for each benchmark and protection level, the expected
// coverage (red bar) and the measured distribution over inputs.
func Fig2(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintf(w, "Fig. 2: Loss of SDC coverage in existing SID (profile %s, %d inputs, %d faults/input)\n",
		r.P.Name, r.P.EvalInputs, r.P.FaultsPerProgram)
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tLevel\tExpected\tMin\tP25\tMedian\tP75\tMax\tLossInputs%")
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		for _, le := range ev.Baseline {
			s := stats.Summarize(le.Coverage)
			fmt.Fprintf(tw, "%s\t%.0f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.1f%%\n",
				b.Name, le.Level*100, le.Expected*100,
				s.Min*100, s.P25*100, s.Median*100, s.P75*100, s.Max*100,
				le.LossInputPct())
		}
	}
	return tw.Flush()
}

// Table2 prints the percentage of coverage-loss inputs under baseline SID
// (paper Table II).
func Table2(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintln(w, "Table II: Percentage of Random Coverage-loss Inputs (baseline SID)")
	return lossTable(r, benches, w, Baseline)
}

// Table3 prints the percentage of coverage-loss inputs under MINPSID
// (paper Table III).
func Table3(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintln(w, "Table III: Percentage of Inputs with Loss of SDC Coverage (MINPSID)")
	return lossTable(r, benches, w, Minpsid)
}

func lossTable(r *Runner, benches []*benchprog.Benchmark, w io.Writer, tech Technique) error {
	levels := r.P.sortedLevels()
	tw := newTable(w)
	fmt.Fprint(tw, "Benchmark")
	for _, l := range levels {
		fmt.Fprintf(tw, "\t%.0f%% Level", l*100)
	}
	fmt.Fprintln(tw)
	avgs := make([]float64, len(levels))
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		rows := ev.Baseline
		if tech == Minpsid {
			rows = ev.Minpsid
		}
		fmt.Fprint(tw, b.Name)
		for i, le := range rows {
			pct := le.LossInputPct()
			avgs[i] += pct
			fmt.Fprintf(tw, "\t%.2f%%", pct)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "Average")
	for _, a := range avgs {
		fmt.Fprintf(tw, "\t%.2f%%", a/float64(len(benches)))
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// Fig6 prints the side-by-side mitigation comparison (paper Fig. 6):
// coverage distributions of baseline SID and MINPSID per benchmark/level.
func Fig6(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintf(w, "Fig. 6: Mitigation of the loss of SDC coverage by MINPSID vs baseline (profile %s)\n", r.P.Name)
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tLevel\tTechnique\tExpected\tMin\tMedian\tMax\tLossInputs%\tIncubative")
	var mitigated, lossBase, lossMinp float64
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		for i := range ev.Baseline {
			be, me := ev.Baseline[i], ev.Minpsid[i]
			bs := stats.Summarize(be.Coverage)
			ms := stats.Summarize(me.Coverage)
			fmt.Fprintf(tw, "%s\t%.0f%%\t%s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.1f%%\t-\n",
				b.Name, be.Level*100, Baseline, be.Expected*100, bs.Min*100, bs.Median*100, bs.Max*100, be.LossInputPct())
			fmt.Fprintf(tw, "%s\t%.0f%%\t%s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.1f%%\t%d\n",
				b.Name, me.Level*100, Minpsid, me.Expected*100, ms.Min*100, ms.Median*100, ms.Max*100, me.LossInputPct(), len(ev.Search.Incubative))
			// Aggregate mitigation: how much of the baseline's worst-case
			// loss MINPSID recovers.
			lb := be.Expected - bs.Min
			lm := me.Expected - ms.Min
			if lb < 0 {
				lb = 0
			}
			if lm < 0 {
				lm = 0
			}
			lossBase += lb
			lossMinp += lm
		}
	}
	if lossBase > 0 {
		mitigated = 100 * (lossBase - lossMinp) / lossBase
		fmt.Fprintf(tw, "\nAggregate\t\t\t\t\t\t\t\tmitigates %.1f%% of worst-case coverage loss\n", mitigated)
	}
	return tw.Flush()
}

// OverheadVariance prints the §VIII-A analysis: the actual fraction of
// dynamic instructions duplicated when the protected programs run with the
// evaluation inputs, versus the target protection level.
func OverheadVariance(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintln(w, "§VIII-A: Actual duplicated dynamic-instruction fraction across inputs")
	tw := newTable(w)
	fmt.Fprintln(tw, "Level\tTechnique\tTarget\tActual (mean over benchmarks x inputs)\tShortfall")
	levels := r.P.sortedLevels()
	for _, level := range levels {
		for _, tech := range []Technique{Baseline, Minpsid} {
			var fracs []float64
			for _, b := range benches {
				ev, err := r.Evaluate(b)
				if err != nil {
					return err
				}
				sel := ev.BaseSel[level]
				if tech == Minpsid {
					sel = ev.MinpSel[level]
				}
				m := b.MustModule()
				for _, in := range ev.EvalInputs {
					prof, err := profileOf(b, in)
					if err != nil {
						continue
					}
					fracs = append(fracs, sid.DuplicatedDynFraction(m, prof, sel.Chosen))
				}
			}
			actual := stats.Mean(fracs)
			fmt.Fprintf(tw, "%.0f%%\t%s\t%.0f%%\t%.2f%%\t%.2f%%\n",
				level*100, tech, level*100, actual*100, (level-actual)*100)
		}
	}
	return tw.Flush()
}
