package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/benchprog"
)

// tinyProfile keeps harness tests fast.
func tinyProfile() Profile {
	p := Quick()
	p.EvalInputs = 3
	p.FaultsPerProgram = 60
	p.FaultsPerInstr = 5
	p.SearchMaxInputs = 2
	p.SearchPatience = 1
	p.PopSize = 3
	p.MaxGenerations = 1
	return p
}

func benchSubset(t *testing.T, names ...string) []*benchprog.Benchmark {
	t.Helper()
	var out []*benchprog.Benchmark
	for _, n := range names {
		b, ok := benchprog.ByName(n)
		if !ok {
			t.Fatalf("missing benchmark %s", n)
		}
		out = append(out, b)
	}
	return out
}

func TestEvaluateProducesCompleteData(t *testing.T) {
	r := NewRunner(tinyProfile())
	b, _ := benchprog.ByName("knn")
	ev, err := r.Evaluate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Baseline) != 3 || len(ev.Minpsid) != 3 {
		t.Fatalf("level evals: %d baseline, %d minpsid", len(ev.Baseline), len(ev.Minpsid))
	}
	for i, le := range ev.Baseline {
		if le.Expected < 0 || le.Expected > 1 {
			t.Errorf("baseline level %d expected coverage %f", i, le.Expected)
		}
		for _, c := range le.Coverage {
			if c < 0 || c > 1 {
				t.Errorf("coverage %f out of range", c)
			}
		}
		if le.LossCount > le.Inputs {
			t.Errorf("loss count %d > inputs %d", le.LossCount, le.Inputs)
		}
	}
	for _, level := range r.P.Levels {
		if ev.BaseProt[level].mod == nil || ev.MinpProt[level].mod == nil {
			t.Fatalf("missing protected module for level %f", level)
		}
		if ev.BaseProt[level].ids == nil || ev.BaseProt[level].orig == nil {
			t.Fatalf("protection bundle incomplete for level %f", level)
		}
	}
	if len(ev.EvalInputs) == 0 {
		t.Fatal("no evaluation inputs generated")
	}

	// Cached: second call returns the identical object.
	ev2, err := r.Evaluate(b)
	if err != nil {
		t.Fatal(err)
	}
	if ev2 != ev {
		t.Error("Evaluate did not cache")
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pathfinder", "xsbench", "fft", "Mantevo", "CESAR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFig2AndTables(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "pathfinder", "knn")
	var buf bytes.Buffer
	if err := Fig2(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Table2(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Fig6(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Table3(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 2", "Table II", "Fig. 6", "Table III", "MINPSID", "Baseline-SID", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig3AndFig5(t *testing.T) {
	r := NewRunner(tinyProfile())
	var buf bytes.Buffer
	if err := Fig3(r, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "incubative comparisons") {
		t.Errorf("Fig3 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "indexed CFG list: [") {
		t.Errorf("Fig5 output incomplete:\n%s", out)
	}
}

func TestFig7(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "needle")
	var buf bytes.Buffer
	res, err := Fig7(r, benches, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("Fig7 results = %d", len(res))
	}
	if !strings.Contains(buf.String(), "GA") || !strings.Contains(buf.String(), "random") {
		t.Errorf("Fig7 output incomplete:\n%s", buf.String())
	}
}

func TestFig8(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "pathfinder")
	var buf bytes.Buffer
	if err := Fig8(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Per-Inst-FI (Ref)") {
		t.Errorf("Fig8 output incomplete:\n%s", buf.String())
	}
}

func TestFig9CaseStudy(t *testing.T) {
	r := NewRunner(tinyProfile())
	var buf bytes.Buffer
	res, err := Fig9(r, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks x 3 levels x 2 techniques.
	if len(res) != 12 {
		t.Fatalf("case study rows = %d, want 12", len(res))
	}
	for _, cs := range res {
		if cs.Expected < 0 || cs.Expected > 1 {
			t.Errorf("%s expected coverage %f", cs.Bench, cs.Expected)
		}
	}
}

func TestOverheadVariance(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "pathfinder")
	var buf bytes.Buffer
	if err := OverheadVariance(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Shortfall") {
		t.Errorf("overhead output incomplete:\n%s", buf.String())
	}
}

func TestMTFFT(t *testing.T) {
	r := NewRunner(tinyProfile())
	var buf bytes.Buffer
	if err := MTFFT(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Threads", "MINPSID", "Baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("MTFFT output missing %q:\n%s", want, out)
		}
	}
}

func TestProfiles(t *testing.T) {
	q, f := Quick(), Full()
	if q.FaultsPerProgram >= f.FaultsPerProgram {
		t.Error("quick profile not smaller than full")
	}
	if f.FaultsPerProgram != 1000 || f.FaultsPerInstr != 100 {
		t.Errorf("full profile does not match the paper: %+v", f)
	}
	if len(f.Levels) != 3 {
		t.Errorf("full profile levels: %v", f.Levels)
	}
}

func TestCoverageChart(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "pathfinder")
	var buf bytes.Buffer
	if err := CoverageChart(r, benches, true, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pathfinder") {
		t.Fatalf("chart missing benchmark name:\n%s", out)
	}
	if !strings.Contains(out, "E") {
		t.Fatalf("chart missing expected marker:\n%s", out)
	}
	if !strings.Contains(out, "MINPSID") {
		t.Fatalf("chart missing MINPSID rows:\n%s", out)
	}
	// Every candle line is bracketed and fixed-width.
	for _, ln := range strings.Split(out, "\n") {
		if i := strings.Index(ln, "["); i >= 0 {
			j := strings.Index(ln, "]")
			if j-i-1 != candleWidth+1 {
				t.Fatalf("candle width %d, want %d: %q", j-i-1, candleWidth+1, ln)
			}
		}
	}
}

func TestRenderCandleBounds(t *testing.T) {
	le := LevelEval{Level: 0.5, Expected: 1.0, Coverage: []float64{0, 0.5, 1.0}}
	s := renderCandle(le)
	if len(s) != candleWidth+1 {
		t.Fatalf("candle length %d", len(s))
	}
	if s[0] != '-' {
		t.Errorf("min marker missing: %q", s)
	}
	if s[candleWidth] != 'E' {
		t.Errorf("expected marker not at right edge: %q", s)
	}
	// Empty coverage: only the expected marker.
	s = renderCandle(LevelEval{Expected: 0})
	if s[0] != 'E' || strings.ContainsAny(s[1:], "-=|") {
		t.Errorf("empty candle wrong: %q", s)
	}
}

func TestLevelOverlap(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "knn")
	var buf bytes.Buffer
	if err := LevelOverlap(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Persist@NextLevel") {
		t.Fatalf("overlap output incomplete:\n%s", buf.String())
	}
}

func TestErrorBars(t *testing.T) {
	r := NewRunner(tinyProfile())
	benches := benchSubset(t, "pathfinder")
	var buf bytes.Buffer
	if err := ErrorBars(r, benches, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Margin") {
		t.Fatalf("error-bars output incomplete:\n%s", buf.String())
	}
}
