package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/stats"
)

// candleWidth is the character width of the 0-100% coverage axis.
const candleWidth = 50

// renderCandle draws one coverage distribution as an ASCII candlestick on
// a 0..100% axis: '-' spans min..max, '=' spans the interquartile range,
// '|' marks the median, and 'E' the expected coverage (the paper's red
// bar). Collisions favor the most informative glyph.
func renderCandle(le LevelEval) string {
	cells := make([]byte, candleWidth+1)
	for i := range cells {
		cells[i] = ' '
	}
	pos := func(v float64) int {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return int(v * candleWidth)
	}
	s := stats.Summarize(le.Coverage)
	if s.N > 0 {
		for i := pos(s.Min); i <= pos(s.Max); i++ {
			cells[i] = '-'
		}
		for i := pos(s.P25); i <= pos(s.P75); i++ {
			cells[i] = '='
		}
		cells[pos(s.Median)] = '|'
	}
	cells[pos(le.Expected)] = 'E'
	return string(cells)
}

// CoverageChart draws the Fig. 2 / Fig. 6-style candlestick chart for the
// given benchmarks. With both=false only the baseline rows print (Fig. 2);
// with both=true MINPSID rows are interleaved (Fig. 6).
func CoverageChart(r *Runner, benches []*benchprog.Benchmark, both bool, w io.Writer) error {
	fmt.Fprintf(w, "SDC coverage per input, 0%%..100%% ('-' min..max, '=' IQR, '|' median, 'E' expected)\n")
	axis := "0%" + strings.Repeat(" ", candleWidth-7) + "100%"
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s%s\n", padRight(b.Name, 26), axis)
		for i := range ev.Baseline {
			be := ev.Baseline[i]
			label := fmt.Sprintf("  %.0f%% %s", be.Level*100, Baseline)
			fmt.Fprintf(w, "%s[%s]\n", padRight(label, 26), renderCandle(be))
			if both {
				me := ev.Minpsid[i]
				label = fmt.Sprintf("  %.0f%% %s", me.Level*100, Minpsid)
				fmt.Fprintf(w, "%s[%s]\n", padRight(label, 26), renderCandle(me))
			}
		}
	}
	return nil
}

func padRight(s string, n int) string {
	if len(s) >= n {
		return s + " "
	}
	return s + strings.Repeat(" ", n-len(s))
}
