package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/benchprog"
	"repro/internal/datasets"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minpsid"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/sid"
	"repro/internal/stats"
)

// goldenOf runs a benchmark's reference input fault-free with profiling.
func goldenOf(b *benchprog.Benchmark) (*fault.Golden, error) {
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	return fault.RunGolden(m, b.Bind(b.Reference), b.ExecConfig())
}

// profileOf profiles the original module under one input.
func profileOf(b *benchprog.Benchmark, in inputgen.Input) (*interp.Profile, error) {
	m := b.MustModule()
	g, err := fault.RunGolden(m, b.Bind(in), b.ExecConfig())
	if err != nil {
		return nil, err
	}
	return g.Profile, nil
}

// Fig3 reproduces the incubative-instruction case study (paper Fig. 3):
// it searches the FFT benchmark for incubative instructions and reports
// the comparisons among them, showing per-input SDC probabilities that
// are near zero on the reference input but high on a searched input.
func Fig3(r *Runner, w io.Writer) error {
	b, _ := benchprog.ByName("fft")
	ev, err := r.Evaluate(b)
	if err != nil {
		return err
	}
	m := b.MustModule()
	fmt.Fprintln(w, "Fig. 3: Incubative instructions in FFT (ref vs searched-input benefit)")
	tw := newTable(w)
	fmt.Fprintln(tw, "InstrID\tOpcode\tRefBenefit\tMaxBenefit\tRefSDCProb")
	shown := 0
	for _, id := range ev.Search.Incubative {
		in := m.Instrs[id]
		fmt.Fprintf(tw, "%d\t%s\t%.6f\t%.6f\t%.3f\n",
			id, in.Op, ev.RefMeas.Benefit[id], ev.Search.MaxBenefit[id], ev.RefMeas.SDCProb[id])
		shown++
		if shown >= 12 {
			break
		}
	}
	if shown == 0 {
		fmt.Fprintln(tw, "(no incubative instructions found at this profile's search budget)")
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Highlight comparisons specifically, as in the paper's icmp example.
	cmps := 0
	for _, id := range ev.Search.Incubative {
		if op := m.Instrs[id].Op; op == ir.OpICmp || op == ir.OpFCmp {
			cmps++
		}
	}
	fmt.Fprintf(w, "incubative comparisons (icmp/fcmp, as in the paper's example): %d of %d\n",
		cmps, len(ev.Search.Incubative))
	return nil
}

// Fig5 reproduces the weighted-CFG construction example (paper Fig. 5) on
// the Pathfinder benchmark: the static CFG, the edge weights of one
// execution, and the resulting indexed CFG list.
func Fig5(w io.Writer) error {
	b, _ := benchprog.ByName("pathfinder")
	m := b.MustModule()
	g, err := goldenOf(b)
	if err != nil {
		return err
	}
	wcfg := profile.NewWeightedCFG(m, g.Profile)
	list := wcfg.IndexedList()

	fmt.Fprintln(w, "Fig. 5: Weighted CFG construction (Pathfinder, reference input)")
	fmt.Fprintf(w, "static CFG: %d basic blocks across %d functions\n", m.NumBlocks(), len(m.Funcs))

	type edge struct {
		from, to int
		count    int64
	}
	var edges []edge
	for i, c := range wcfg.Edges {
		if c == 0 {
			continue
		}
		from, to := wcfg.Index.Edge(i)
		edges = append(edges, edge{from, to, c})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].count > edges[j].count })
	tw := newTable(w)
	fmt.Fprintln(tw, "Edge (bb->bb)\tExecutions")
	for i, e := range edges {
		if i >= 10 {
			break
		}
		fmt.Fprintf(tw, "bb%d -> bb%d\t%d\n", e.from, e.to, e.count)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprint(w, "indexed CFG list: [")
	for i, c := range list {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w, "]")
	return nil
}

// Fig7Result is the data behind one Fig. 7 curve set. AnnealFound covers
// the simulated-annealing extension (paper §X future work).
type Fig7Result struct {
	Bench       string
	GATrace     []minpsid.TracePoint
	RandomTrace []minpsid.TracePoint
	GAFound     int
	RandomFound int
	AnnealFound int
}

// searchVariant runs the input search with an alternate strategy on the
// same budget and seed as the evaluation's GA search (r.P.Seed+17),
// reusing its reference-measurement node.
func (r *Runner) searchVariant(b *benchprog.Benchmark, s minpsid.Strategy) (*minpsid.SearchResult, error) {
	cfg := r.P.searchConfig(r.P.Seed + 17)
	cfg.Strategy = s
	v, err := r.Pipe.Run(&pipeline.SearchTask{
		Target:  target(b),
		Ref:     b.Reference,
		Cfg:     cfg,
		Measure: r.evalTask(b).Measure(),
		Env:     r.env(),
	})
	if err != nil {
		return nil, err
	}
	return v.(*minpsid.SearchResult), nil
}

// Fig7 reproduces the search-efficiency comparison (paper Fig. 7): the
// number of incubative instructions found per measured input by the GA
// engine versus a blind random searcher, on the same budget.
func Fig7(r *Runner, benches []*benchprog.Benchmark, w io.Writer) ([]Fig7Result, error) {
	fmt.Fprintf(w, "Fig. 7: Incubative instructions found by GA search vs random search (profile %s)\n", r.P.Name)
	var out []Fig7Result
	var gaTotal, rndTotal int
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tSearcher\tInputs\tIncubative found\tNormalized")
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return nil, err
		}
		// Alternate-strategy searches are their own task nodes sharing the
		// evaluation's reference-measurement node.
		rnd, err := r.searchVariant(b, minpsid.StrategyRandom)
		if err != nil {
			return nil, err
		}
		sa, err := r.searchVariant(b, minpsid.StrategyAnneal)
		if err != nil {
			return nil, err
		}

		res := Fig7Result{
			Bench:       b.Name,
			GATrace:     ev.Search.Trace,
			RandomTrace: rnd.Trace,
			GAFound:     len(ev.Search.Incubative),
			RandomFound: len(rnd.Incubative),
			AnnealFound: len(sa.Incubative),
		}
		out = append(out, res)
		gaTotal += res.GAFound
		rndTotal += res.RandomFound
		max := res.GAFound
		if res.RandomFound > max {
			max = res.RandomFound
		}
		if res.AnnealFound > max {
			max = res.AnnealFound
		}
		norm := func(v int) float64 {
			if max == 0 {
				return 0
			}
			return float64(v) / float64(max)
		}
		fmt.Fprintf(tw, "%s\tGA\t%d\t%d\t%.2f\n", b.Name, len(ev.Search.Inputs), res.GAFound, norm(res.GAFound))
		fmt.Fprintf(tw, "%s\trandom\t%d\t%d\t%.2f\n", b.Name, len(rnd.Inputs), res.RandomFound, norm(res.RandomFound))
		fmt.Fprintf(tw, "%s\tanneal\t%d\t%d\t%.2f\n", b.Name, len(sa.Inputs), res.AnnealFound, norm(res.AnnealFound))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	if rndTotal > 0 {
		fmt.Fprintf(w, "GA found %+.1f%% incubative instructions vs random search\n",
			100*(float64(gaTotal)/float64(rndTotal)-1))
	}
	return out, nil
}

// Fig8 reproduces the execution-time breakdown (paper Fig. 8): wall time
// of the per-instruction FI on the reference input, the input search
// engine, and the per-instruction FI for incubative identification.
func Fig8(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintf(w, "Fig. 8: MINPSID execution time breakdown (profile %s)\n", r.P.Name)
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tPer-Inst-FI (Ref)\tSearch Engine\tPer-Inst-FI (Incubative)\tTotal")
	var totRef, totEng, totFI float64
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		ref := ev.RefFITime.Seconds()
		eng := ev.Search.EngineTime.Seconds()
		fi := ev.Search.FITime.Seconds()
		totRef += ref
		totEng += eng
		totFI += fi
		fmt.Fprintf(tw, "%s\t%.2fs\t%.2fs\t%.2fs\t%.2fs\n", b.Name, ref, eng, fi, ref+eng+fi)
	}
	n := float64(len(benches))
	fmt.Fprintf(tw, "Average\t%.2fs\t%.2fs\t%.2fs\t%.2fs\n", totRef/n, totEng/n, totFI/n, (totRef+totEng+totFI)/n)
	return tw.Flush()
}

// CaseStudyEval is the Fig. 9 / Table IV data for one benchmark.
type CaseStudyEval struct {
	Bench    string
	Level    float64
	Tech     Technique
	Expected float64
	Summary  stats.Summary
	LossPct  float64
}

// Fig9 reproduces the real-world-input case study (paper Fig. 9 and
// Table IV): the BFS benchmark evaluated on KONECT-style social graphs
// and Kmeans on Kaggle-style clustering datasets, under both techniques.
func Fig9(r *Runner, w io.Writer) ([]CaseStudyEval, error) {
	fmt.Fprintf(w, "Fig. 9 / Table IV: MINPSID with real-world program inputs (profile %s)\n", r.P.Name)

	nGraphs := r.P.EvalInputs
	graphs := datasets.SocialGraphs(nGraphs, r.P.Seed+5000)
	clusters := datasets.ClusterDatasets(max(nGraphs/3, 4), r.P.Seed+6000)

	var out []CaseStudyEval
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tLevel\tTechnique\tExpected\tMin\tMedian\tMax\tLossInputs%")

	evalCase := func(benchName string, binds []interp.Binding) error {
		b, _ := benchprog.ByName(benchName)
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		for li, level := range r.P.sortedLevels() {
			for _, tech := range []Technique{Baseline, Minpsid} {
				prot := ev.BaseProt[level]
				expected := ev.Baseline[li].Expected
				if tech == Minpsid {
					prot = ev.MinpProt[level]
					expected = ev.Minpsid[li].Expected
				}
				var covs []float64
				loss := 0
				for i, bind := range binds {
					cov, ok := r.measureCoverage(prot, bind, b.ExecConfig(), r.P.Seed+int64(i)*7)
					if !ok {
						continue
					}
					covs = append(covs, cov)
					if cov < expected-1e-9 {
						loss++
					}
				}
				s := stats.Summarize(covs)
				lossPct := 0.0
				if len(covs) > 0 {
					lossPct = 100 * float64(loss) / float64(len(covs))
				}
				out = append(out, CaseStudyEval{
					Bench: benchName, Level: level, Tech: tech,
					Expected: expected, Summary: s, LossPct: lossPct,
				})
				fmt.Fprintf(tw, "%s\t%.0f%%\t%s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.1f%%\n",
					benchName, level*100, tech, expected*100,
					s.Min*100, s.Median*100, s.Max*100, lossPct)
			}
		}
		return nil
	}

	var bfsBinds []interp.Binding
	for _, g := range graphs {
		bfsBinds = append(bfsBinds, g.BindBFS())
	}
	if err := evalCase("bfs", bfsBinds); err != nil {
		return nil, err
	}
	var kmBinds []interp.Binding
	for _, d := range clusters {
		kmBinds = append(kmBinds, d.BindKmeans(5))
	}
	if err := evalCase("kmeans", kmBinds); err != nil {
		return nil, err
	}
	return out, tw.Flush()
}

// MTFFT reproduces the multi-threaded discussion experiment (§VIII-B):
// SDC coverage loss of baseline SID vs MINPSID on the threaded FFT with
// 1, 2, and 4 simulated threads.
func MTFFT(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "§VIII-B: multi-threaded FFT (profile %s)\n", r.P.Name)
	b, _ := benchprog.ByName("fft-mt")
	tgt := target(b)
	level := 0.5

	tw := newTable(w)
	fmt.Fprintln(tw, "Threads\tTechnique\tExpected\tMeanCoverage\tMeanLoss")
	for _, nt := range []int64{1, 2, 4} {
		ref := b.Reference.Clone()
		ref.I[1] = nt

		// Measurement and search are task nodes shared by both techniques
		// (and by warm reruns).
		mt := &pipeline.MeasureTask{Target: tgt, Input: ref,
			FaultsPerInstr: r.P.FaultsPerInstr, Seed: r.P.Seed, Env: r.env()}
		st := &pipeline.SearchTask{Target: tgt, Ref: ref,
			Cfg: r.P.searchConfig(r.P.Seed + int64(nt)), Measure: mt, Env: r.env()}

		for _, tech := range []Technique{Baseline, Minpsid} {
			pt := &pipeline.ProtectTask{Target: tgt, Level: level, Measure: mt, Env: r.env()}
			if tech == Minpsid {
				pt.Search = st
			}
			v, err := r.Pipe.Run(pt)
			if err != nil {
				return err
			}
			po := v.(*pipeline.ProtectOut)
			prot := protectionOf(po)

			// Evaluate with the same thread count but varied signals.
			var covs, losses []float64
			for i := 0; i < max(r.P.EvalInputs/2, 4); i++ {
				in := ref.Clone()
				in.I[2] = int64(10_000 + i*131) // new dataset seed
				cov, ok := r.measureCoverage(prot, b.Bind(in), tgt.Exec, r.P.Seed+int64(i))
				if !ok {
					continue
				}
				covs = append(covs, cov)
				loss := po.Sel.ExpectedCoverage - cov
				if loss < 0 {
					loss = 0
				}
				losses = append(losses, loss)
			}
			fmt.Fprintf(tw, "%d\t%s\t%.2f%%\t%.2f%%\t%.2f%%\n",
				nt, tech, po.Sel.ExpectedCoverage*100,
				stats.Mean(covs)*100, stats.Mean(losses)*100)
		}
	}
	return tw.Flush()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LevelOverlap reproduces the §IV observation: the "target" instructions
// responsible for cross-input SDC coverage loss persist as the protection
// level rises (the paper reports 54.4% of 30%-level targets persisting at
// 50%, and 41.3% from 50% to 70%), disappearing only toward full
// protection. Targets are incubative instructions left unselected at a
// level.
func LevelOverlap(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintln(w, "§IV: persistence of unprotected incubative (target) instructions across levels")
	levels := append(append([]float64(nil), r.P.sortedLevels()...), 0.95)
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tLevel\tTargets\tPersist@NextLevel")
	for _, b := range benches {
		ev, err := r.Evaluate(b)
		if err != nil {
			return err
		}
		tgt := target(b)
		targetsAt := func(level float64) map[int]bool {
			sel := sid.Select(tgt.Mod, ev.RefMeas, level, sid.MethodDP)
			out := map[int]bool{}
			for _, id := range ev.Search.Incubative {
				if !sel.IsChosen(id) {
					out[id] = true
				}
			}
			return out
		}
		prev := map[int]bool{}
		for i, level := range levels {
			cur := targetsAt(level)
			persist := "-"
			if i > 0 && len(prev) > 0 {
				kept := 0
				for id := range prev {
					if cur[id] {
						kept++
					}
				}
				persist = fmt.Sprintf("%.1f%%", 100*float64(kept)/float64(len(prev)))
			}
			if i > 0 {
				fmt.Fprintf(tw, "%s\t%.0f%%->%.0f%%\t%d\t%s\n", b.Name, levels[i-1]*100, level*100, len(cur), persist)
			} else {
				fmt.Fprintf(tw, "%s\t%.0f%%\t%d\t\n", b.Name, level*100, len(cur))
			}
			prev = cur
		}
	}
	return tw.Flush()
}

// ErrorBars reports the 95% confidence half-widths of the per-benchmark
// SDC probability estimates at the paper's campaign size (§III-A3 quotes
// error bars between 0.26% and 3.10% for its FI measurements).
func ErrorBars(r *Runner, benches []*benchprog.Benchmark, w io.Writer) error {
	fmt.Fprintf(w, "§III-A3: 95%% confidence half-widths of SDC-probability estimates (%d faults)\n", r.P.FaultsPerProgram)
	tw := newTable(w)
	fmt.Fprintln(tw, "Benchmark\tSDC rate\tMargin (+/-)")
	var lo, hi float64 = 1, 0
	for _, b := range benches {
		m := b.MustModule()
		bind := b.Bind(b.Reference)
		golden, err := r.Cache.Golden(m, bind, b.ExecConfig(), nil)
		if err != nil {
			return err
		}
		c := &fault.Campaign{Mod: m, Bind: bind, Cfg: b.ExecConfig(), Golden: golden, Workers: r.P.Workers}
		res := c.Run(r.P.FaultsPerProgram, r.P.Seed)
		margin := stats.MarginOfError(res.Counts[fault.OutcomeSDC], res.Trials)
		if margin < lo {
			lo = margin
		}
		if margin > hi {
			hi = margin
		}
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.2f%%\n", b.Name, 100*res.Rate(fault.OutcomeSDC), 100*margin)
	}
	fmt.Fprintf(tw, "Range\t\t%.2f%%..%.2f%%\n", 100*lo, 100*hi)
	return tw.Flush()
}
