package harness

import (
	"fmt"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/sid"
)

// BenchmarkDetectorCampaign measures fault-injection throughput on a
// protected binary for every fault model × detector portfolio cell:
// ns/trial is the per-injection cost of running the campaign against a
// module carrying that detector's checks under that model's effects.
// CI appends the results to BENCH_detectors.json and gates regressions
// with cmd/benchdiff, so a detector lowering or flip-path change that
// slows the campaign engine shows up per cell.
func BenchmarkDetectorCampaign(b *testing.B) {
	bench, ok := benchprog.ByName("pathfinder")
	if !ok {
		b.Fatal("benchmark lookup failed")
	}
	const trials = 40
	r := NewRunner(tinyProfile())
	tgt := target(bench)
	bind := bench.Bind(bench.Reference)
	for _, mn := range fault.ModelNames() {
		model, _ := fault.ModelByName(mn)
		mt := &pipeline.MeasureTask{Target: tgt, Input: bench.Reference,
			FaultsPerInstr: r.P.FaultsPerInstr, Seed: r.P.Seed, Model: mn, Env: r.env()}
		for _, dn := range sid.DetectorNames() {
			b.Run(fmt.Sprintf("model=%s/det=%s", mn, dn), func(b *testing.B) {
				v, err := r.Pipe.Run(&pipeline.ProtectTask{Target: tgt, Level: matrixLevel,
					Measure: mt, Detector: dn, Model: mn, Env: r.env()})
				if err != nil {
					b.Fatal(err)
				}
				po := v.(*pipeline.ProtectOut)
				cfg := tgt.Exec
				g, err := fault.RunGolden(po.Mod, bind, cfg)
				if err != nil {
					b.Fatal(err)
				}
				c := &fault.Campaign{Mod: po.Mod, Bind: bind, Cfg: cfg,
					Golden: g, Model: model, Workers: 1}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Run(trials, int64(i)+1)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*trials), "ns/trial")
			})
		}
	}
}
