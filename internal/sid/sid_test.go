package sid

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/passes"
)

const kernelSrc = `
var data[] int;
func main(n int) {
	var s int = 0;
	var t int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		var v int = data[i % len(data)];
		s = s + v * 3;
		if (v > 4) { t = t + 1; }
	}
	emiti(s);
	emiti(t);
}`

func buildKernel(t testing.TB) (*ir.Module, interp.Binding) {
	t.Helper()
	m, err := minicc.Compile("k.mc", kernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m); err != nil {
		t.Fatal(err)
	}
	bind := interp.Binding{
		Args:    []uint64{40},
		Globals: map[string][]uint64{"data": {3, 8, 1, 6, 2, 9, 4, 5}},
	}
	return m, bind
}

func measureKernel(t testing.TB) (*ir.Module, interp.Binding, *Measurement) {
	t.Helper()
	m, bind := buildKernel(t)
	meas, err := Measure(m, bind, Config{FaultsPerInstr: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m, bind, meas
}

func TestMeasureProfiles(t *testing.T) {
	m, _, meas := measureKernel(t)
	var costSum float64
	for id := 0; id < m.NumInstrs(); id++ {
		costSum += meas.Cost[id]
		if meas.SDCProb[id] < 0 || meas.SDCProb[id] > 1 {
			t.Errorf("instr %d SDC prob %f", id, meas.SDCProb[id])
		}
		wantB := meas.SDCProb[id] * meas.Cost[id]
		if math.Abs(meas.Benefit[id]-wantB) > 1e-12 {
			t.Errorf("instr %d benefit %g != sdc*cost %g", id, meas.Benefit[id], wantB)
		}
	}
	if math.Abs(costSum-1) > 1e-9 {
		t.Errorf("cost sum = %f, want 1", costSum)
	}
}

func TestSelectRespectsBudget(t *testing.T) {
	m, _, meas := measureKernel(t)
	for _, level := range []float64{0.1, 0.3, 0.5, 0.7} {
		for _, method := range []Method{MethodDP, MethodGreedy} {
			sel := Select(m, meas, level, method)
			if sel.CostUsed > level+0.01 {
				t.Errorf("level %.1f method %d: cost used %f exceeds budget", level, method, sel.CostUsed)
			}
			if sel.ExpectedCoverage < 0 || sel.ExpectedCoverage > 1+1e-9 {
				t.Errorf("expected coverage %f out of range", sel.ExpectedCoverage)
			}
			for _, id := range sel.Chosen {
				if !Duplicable(m.Instrs[id]) {
					t.Errorf("selected non-duplicable instr %d (%s)", id, m.Instrs[id].Op)
				}
			}
		}
	}
}

func TestSelectMonotoneInLevel(t *testing.T) {
	m, _, meas := measureKernel(t)
	prev := -1.0
	for _, level := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		sel := Select(m, meas, level, MethodDP)
		if sel.ExpectedCoverage < prev-1e-9 {
			t.Errorf("expected coverage decreased at level %.1f: %f -> %f", level, prev, sel.ExpectedCoverage)
		}
		prev = sel.ExpectedCoverage
	}
}

func TestDPBeatsOrMatchesGreedy(t *testing.T) {
	m, _, meas := measureKernel(t)
	benefitOf := func(sel Selection) float64 {
		var b float64
		for _, id := range sel.Chosen {
			b += meas.Benefit[id]
		}
		return b
	}
	for _, level := range []float64{0.2, 0.4, 0.6} {
		dp := benefitOf(Select(m, meas, level, MethodDP))
		gr := benefitOf(Select(m, meas, level, MethodGreedy))
		if dp+1e-12 < gr {
			t.Errorf("level %.1f: DP benefit %g < greedy %g", level, dp, gr)
		}
	}
}

func TestIsChosen(t *testing.T) {
	sel := Selection{Chosen: []int{2, 5, 9}}
	for _, id := range []int{2, 5, 9} {
		if !sel.IsChosen(id) {
			t.Errorf("IsChosen(%d) = false", id)
		}
	}
	for _, id := range []int{0, 3, 10} {
		if sel.IsChosen(id) {
			t.Errorf("IsChosen(%d) = true", id)
		}
	}
}

func TestDuplicatePreservesSemantics(t *testing.T) {
	m, bind, meas := measureKernel(t)
	sel := Select(m, meas, 0.5, MethodDP)
	if len(sel.Chosen) == 0 {
		t.Fatal("selection is empty")
	}
	prot := Duplicate(m, sel.Chosen)
	if err := ir.Verify(prot); err != nil {
		t.Fatalf("protected module invalid: %v", err)
	}
	if prot.NumInstrs() != m.NumInstrs()+3*len(sel.Chosen) {
		t.Errorf("protected has %d instrs, want %d+3*%d", prot.NumInstrs(), m.NumInstrs(), len(sel.Chosen))
	}

	r1 := interp.NewRunner(m, interp.Config{})
	r2 := interp.NewRunner(prot, interp.Config{})
	a := r1.Run(bind, nil, nil)
	b := r2.Run(bind, nil, nil)
	if b.Status != interp.StatusOK {
		t.Fatalf("protected run: %v (%s)", b.Status, b.Trap)
	}
	if len(a.Output) != len(b.Output) {
		t.Fatalf("output lengths differ: %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("output[%d] differs: %d vs %d", i, a.Output[i], b.Output[i])
		}
	}
	if b.DynInstrs <= a.DynInstrs {
		t.Errorf("protected run not longer: %d vs %d", b.DynInstrs, a.DynInstrs)
	}
}

func TestDuplicateDetectsFaultsAtProtectedInstr(t *testing.T) {
	m, bind, meas := measureKernel(t)
	sel := Select(m, meas, 0.5, MethodDP)
	prot := Duplicate(m, sel.Chosen)
	mapping := ProtectedMap(m, sel.Chosen)

	golden, err := fault.RunGolden(prot, bind, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := interp.NewRunner(prot, interp.Config{MaxDynInstrs: golden.DynInstrs * 20})

	for _, origID := range sel.Chosen {
		newID := mapping[origID]
		in := prot.Instrs[newID]
		if in.Op != m.Instrs[origID].Op {
			t.Fatalf("mapping wrong: instr %d maps to %s, orig is %s", origID, in.Op, m.Instrs[origID].Op)
		}
		count := golden.Profile.InstrCount[newID]
		if count == 0 {
			continue
		}
		// Inject into the first dynamic instance, flipping a high bit so
		// the corruption is unambiguous.
		f := interp.Fault{InstrID: newID, DynIndex: 0, Bit: in.Type.Bits() - 2}
		res := r.Run(bind, &f, nil)
		if res.Status != interp.StatusDetected {
			t.Errorf("fault at protected instr %d (%s) not detected: %v output=%v",
				origID, in.Op, res.Status, res.Output)
		}
	}
}

func TestProtectedMapIdentityWhenNothingChosen(t *testing.T) {
	m, _ := buildKernel(t)
	mapping := ProtectedMap(m, nil)
	for id := 0; id < m.NumInstrs(); id++ {
		if mapping[id] != id {
			t.Fatalf("mapping[%d] = %d with empty selection", id, mapping[id])
		}
	}
}

func TestApplyAndEvaluateCoverage(t *testing.T) {
	m, bind := buildKernel(t)
	cfg := Config{FaultsPerInstr: 25, Seed: 3}

	low, err := Apply(m, bind, cfg, 0.05, MethodDP)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Apply(m, bind, cfg, 0.8, MethodDP)
	if err != nil {
		t.Fatal(err)
	}
	if len(high.Selection.Chosen) <= len(low.Selection.Chosen) {
		t.Errorf("selection sizes: low %d, high %d", len(low.Selection.Chosen), len(high.Selection.Chosen))
	}

	rLow, err := EvaluateCoverage(low.Module, bind, cfg, 600, 9)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := EvaluateCoverage(high.Module, bind, cfg, 600, 9)
	if err != nil {
		t.Fatal(err)
	}
	covLow, _ := rLow.SDCCoverage()
	covHigh, okHigh := rHigh.SDCCoverage()
	if !okHigh {
		t.Fatal("high-protection coverage undefined")
	}
	if covHigh <= covLow {
		t.Errorf("coverage did not increase with protection: %.3f -> %.3f", covLow, covHigh)
	}
	if covHigh < 0.5 {
		t.Errorf("high-protection coverage %.3f unexpectedly low", covHigh)
	}
}

func TestDuplicatedDynFraction(t *testing.T) {
	m, bind := buildKernel(t)
	prof := interp.NewProfile(m)
	r := interp.NewRunner(m, interp.Config{})
	r.Run(bind, nil, prof)

	if got := DuplicatedDynFraction(m, prof, nil); got != 0 {
		t.Errorf("empty selection fraction = %f", got)
	}
	all := m.InjectableIDs(true)
	frac := DuplicatedDynFraction(m, prof, all)
	if frac <= 0 || frac > 1 {
		t.Errorf("full selection fraction = %f", frac)
	}

	// Fraction with a subset must not exceed the full-set fraction.
	half := all[:len(all)/2]
	if h := DuplicatedDynFraction(m, prof, half); h > frac {
		t.Errorf("subset fraction %f > full %f", h, frac)
	}
}

func TestKnapsackDPExactSmall(t *testing.T) {
	// Classic instance: capacity 0.5; DP must pick {b,c} (benefit 0.9)
	// over the greedy trap {a} (density-first picks a=0.6/0.3 then c fits).
	items := []knapItem{
		{id: 0, cost: 0.30, benefit: 0.60},
		{id: 1, cost: 0.25, benefit: 0.45},
		{id: 2, cost: 0.25, benefit: 0.45},
	}
	chosen := knapsackDP(items, 0.5)
	sum := 0.0
	for _, id := range chosen {
		sum += items[id].benefit
	}
	if math.Abs(sum-0.9) > 1e-9 {
		t.Errorf("DP benefit = %f, want 0.9 (chose %v)", sum, chosen)
	}
}

func TestDuplicableExclusions(t *testing.T) {
	m := ir.NewModule("d")
	f := m.AddFunction("main", nil, ir.Void)
	aux := m.AddFunction("aux", nil, ir.I64)
	b := ir.NewBuilder(m, f)
	al := b.Alloca(ir.ConstI(1))
	call := b.Call(aux.Index, ir.I64)
	add := b.Bin(ir.OpAdd, call, ir.ConstI(1))
	sq := b.CallB(ir.BuiltinSqrt, ir.ConstF(4))
	b.Store(add, al)
	b.CallB(ir.BuiltinEmitF, sq)
	b.RetVoid()
	ab := ir.NewBuilder(m, aux)
	ab.Ret(ir.ConstI(5))
	m.Finalize()

	byOp := map[ir.Op]bool{}
	for _, in := range m.Instrs {
		if in.Op == ir.OpCallB && !in.HasResult() {
			continue // void emit builtin; not injectable by construction
		}
		byOp[in.Op] = Duplicable(in)
	}
	if byOp[ir.OpAlloca] {
		t.Error("alloca must not be duplicable")
	}
	if byOp[ir.OpCall] {
		t.Error("call must not be duplicable")
	}
	if !byOp[ir.OpAdd] {
		t.Error("add must be duplicable")
	}
	if !byOp[ir.OpCallB] {
		t.Error("pure builtin must be duplicable")
	}
	if byOp[ir.OpStore] || byOp[ir.OpRet] {
		t.Error("valueless instructions must not be duplicable")
	}
}

func TestFullDuplication(t *testing.T) {
	m, bind := buildKernel(t)
	full := FullDuplication(m)
	if err := ir.Verify(full); err != nil {
		t.Fatalf("full-dup module invalid: %v", err)
	}
	// Semantics preserved.
	a := interp.NewRunner(m, interp.Config{}).Run(bind, nil, nil)
	b := interp.NewRunner(full, interp.Config{}).Run(bind, nil, nil)
	if a.Status != b.Status || len(a.Output) != len(b.Output) {
		t.Fatalf("full duplication changed behavior: %v vs %v", a.Status, b.Status)
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("output[%d] differs", i)
		}
	}
	// Execution roughly doubles or more (dup+cmp+detect per instruction).
	if b.DynInstrs < a.DynInstrs*3/2 {
		t.Errorf("full duplication too cheap: %d -> %d", a.DynInstrs, b.DynInstrs)
	}

	// Coverage should be very high: nearly all SDCs detected.
	cfg := Config{FaultsPerInstr: 10, Seed: 1}
	res, err := EvaluateCoverage(full, bind, cfg, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	cov, ok := res.SDCCoverage()
	if !ok {
		t.Skip("no corruptions observed")
	}
	if cov < 0.9 {
		t.Errorf("full-duplication coverage = %.3f, want >= 0.9", cov)
	}
}

func TestHeuristicSDCProbRanges(t *testing.T) {
	m, _ := buildKernel(t)
	probs := HeuristicSDCProb(m)
	if len(probs) != m.NumInstrs() {
		t.Fatalf("probs len %d != instrs %d", len(probs), m.NumInstrs())
	}
	any := false
	for id, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("instr %d heuristic prob %f", id, p)
		}
		if p > 0 {
			any = true
		}
		if !m.Instrs[id].HasResult() && p != 0 {
			t.Fatalf("valueless instr %d has prob %f", id, p)
		}
	}
	if !any {
		t.Fatal("all heuristic probabilities are zero")
	}
}

func TestHeuristicRanksOutputFlowsHigh(t *testing.T) {
	// A value that flows straight into emiti must outrank one only used
	// as a load address.
	m, err := minicc.Compile("h.mc", `
var data[] int;
func main(x int) {
	var idx int = x % len(data);   // address-only use
	var val int = data[idx] * 3;   // flows into output
	emiti(val);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m); err != nil {
		t.Fatal(err)
	}
	probs := HeuristicSDCProb(m)
	var mulP, remP float64
	for _, in := range m.Instrs {
		switch in.Op {
		case ir.OpMul:
			mulP = probs[in.ID]
		case ir.OpRem:
			remP = probs[in.ID]
		}
	}
	if mulP <= remP {
		t.Fatalf("output-flowing mul (%.3f) not ranked above address-only rem (%.3f)", mulP, remP)
	}
}

func TestHeuristicMeasureSelectsAndProtects(t *testing.T) {
	m, bind := buildKernel(t)
	meas, err := HeuristicMeasure(m, bind, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sel := Select(m, meas, 0.5, MethodDP)
	if len(sel.Chosen) == 0 {
		t.Fatal("heuristic selection empty")
	}
	prot := Duplicate(m, sel.Chosen)
	res, err := EvaluateCoverage(prot, bind, Config{}, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	cov, ok := res.SDCCoverage()
	if !ok {
		t.Skip("no corruptions observed")
	}
	// Heuristic-guided protection must beat no protection decisively.
	if cov < 0.2 {
		t.Errorf("heuristic selection coverage %.3f suspiciously low", cov)
	}
	t.Logf("heuristic-guided coverage at 50%% level: %.3f", cov)
}
