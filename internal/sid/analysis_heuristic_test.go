package sid

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/interp"
	"repro/internal/minicc"
	"repro/internal/passes"
)

func TestAnalysisSDCProbRangesAndDeadValues(t *testing.T) {
	m, _ := buildKernel(t)
	probs := AnalysisSDCProb(m)
	if len(probs) != m.NumInstrs() {
		t.Fatalf("probs len %d != instrs %d", len(probs), m.NumInstrs())
	}
	tri := analysis.TriageFor(m)
	anyPos := false
	for id, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("instr %d analysis prob %f", id, p)
		}
		if p > 0 {
			anyPos = true
		}
		in := m.Instrs[id]
		if !in.IsInjectable() {
			continue
		}
		// A provably dead value must score exactly zero.
		if tri.DemandedBits(id) == 0 && p != 0 {
			t.Fatalf("provably dead instr %d scores %f, want 0", id, p)
		}
	}
	if !anyPos {
		t.Fatal("all analysis-refined probabilities are zero")
	}
}

func TestAnalysisSDCProbZeroesDeadCycle(t *testing.T) {
	// A scalar accumulator that is updated in the loop but never read
	// afterwards: mem2reg turns it into a dead phi cycle that the flow
	// heuristic scores positive (it feeds a store-like flow) but the
	// analysis proves worthless to protect.
	m, err := minicc.Compile("dead.mc", `
func main(n int) {
	var live int = 0;
	var dead int = 7;
	var i int = 0;
	for (i = 0; i < n; i = i + 1) {
		live = live + i;
		dead = dead * 3;
	}
	emiti(live);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.RunPipeline(m, passes.Mem2Reg{}, passes.CSE{}); err != nil {
		t.Fatal(err)
	}
	probs := AnalysisSDCProb(m)
	tri := analysis.TriageFor(m)
	deadSeen := false
	for _, in := range m.Instrs {
		if !in.IsInjectable() {
			continue
		}
		if tri.DemandedBits(in.ID) == 0 {
			deadSeen = true
			if probs[in.ID] != 0 {
				t.Fatalf("dead value [%d] %s scored %f", in.ID, in.Op, probs[in.ID])
			}
		}
	}
	if !deadSeen {
		t.Fatal("expected mem2reg to expose a dead loop-carried cycle")
	}
}

func TestAnalysisMeasureSelectsAndProtects(t *testing.T) {
	m, bind := buildKernel(t)
	meas, err := AnalysisMeasure(m, bind, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sel := Select(m, meas, 0.5, MethodDP)
	if len(sel.Chosen) == 0 {
		t.Fatal("analysis-guided selection empty")
	}
	// Selected instructions are never provably dead: protecting them
	// would be pure overhead with zero coverage gain.
	tri := analysis.TriageFor(m)
	for _, id := range sel.Chosen {
		if m.Instrs[id].IsInjectable() && tri.DemandedBits(id) == 0 {
			t.Fatalf("selection includes provably dead instr %d", id)
		}
	}
}

func TestAnalysisSDCProbOnBenchmark(t *testing.T) {
	var bench *benchprog.Benchmark
	for _, b := range benchprog.All() {
		if b.Name == "kmeans" {
			bench = b
		}
	}
	m := bench.MustModule()
	base := HeuristicSDCProb(m)
	refined := AnalysisSDCProb(m)
	lowered := 0
	for id := range refined {
		// The refinement only damps: masked-bit fraction, liveness
		// breadth, and dominator depth are all <= 1 multipliers.
		if refined[id] > base[id]+1e-9 {
			t.Fatalf("instr %d: refinement raised score %f -> %f", id, base[id], refined[id])
		}
		if base[id] > 0 && refined[id] < base[id]-1e-9 {
			lowered++
		}
	}
	if lowered == 0 {
		t.Fatal("refinement left every kmeans score untouched")
	}
}
