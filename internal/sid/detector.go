package sid

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Detector is one member of the protection portfolio: a code transform
// that guards a selected instruction against result corruption, with a
// per-site cost and a per-model coverage estimate the multi-choice
// knapsack trades off (the DETOx formulation: per site, pick one
// detector or none).
//
// The interface is sealed (lower is unexported): detectors live next to
// the duplication transform because lowering must preserve the module
// invariants Duplicate relies on (leading phi groups, Dup marking,
// Finalize renumbering).
type Detector interface {
	// Name is the registry key and the -detector CLI spelling.
	Name() string
	// Applicable reports whether the detector can protect instruction
	// id. Non-applicable sites contribute no option to the knapsack.
	Applicable(fx *ModuleFacts, id int) bool
	// CostFactor scales the site's Eq.-1 cost into this detector's
	// protection cost, normalized so duplication is exactly 1 (keeping
	// the dup-only portfolio bit-compatible with the 0-1 knapsack).
	CostFactor(fx *ModuleFacts, id int) float64
	// Coverage estimates, in [0,1], the fraction of model-m faults in
	// the site's result this detector catches. Duplication is 1 for
	// every value-local model; weaker detectors consult m's patterns.
	Coverage(fx *ModuleFacts, id int, m fault.Model) float64
	// lower emits the protection code for in (already appended to out)
	// and returns the instructions to append after it. Successor-block
	// insertions go through st.
	lower(st *lowerState, fx *ModuleFacts, f *ir.Function, in *ir.Instr) []*ir.Instr
}

// ---- registry ----

var (
	detectorMu    sync.RWMutex
	detectorByKey = map[string]Detector{}
	detectorOrder []string
)

// RegisterDetector adds d to the registry under d.Name(); duplicate
// names panic (detector names participate in cache keys).
func RegisterDetector(d Detector) {
	detectorMu.Lock()
	defer detectorMu.Unlock()
	name := d.Name()
	if _, dup := detectorByKey[name]; dup {
		panic(fmt.Sprintf("sid: duplicate detector %q", name))
	}
	detectorByKey[name] = d
	detectorOrder = append(detectorOrder, name)
}

// DetectorByName returns the registered detector named name.
func DetectorByName(name string) (Detector, bool) {
	detectorMu.RLock()
	defer detectorMu.RUnlock()
	d, ok := detectorByKey[name]
	return d, ok
}

// Detectors returns every registered detector in registration order.
func Detectors() []Detector {
	detectorMu.RLock()
	defer detectorMu.RUnlock()
	out := make([]Detector, len(detectorOrder))
	for i, n := range detectorOrder {
		out[i] = detectorByKey[n]
	}
	return out
}

// DetectorNames returns every registered detector name in order.
func DetectorNames() []string {
	detectorMu.RLock()
	defer detectorMu.RUnlock()
	return append([]string(nil), detectorOrder...)
}

// DefaultDetector returns the paper's detector: instruction duplication.
func DefaultDetector() Detector { return dupDetector{} }

func init() {
	RegisterDetector(dupDetector{})
	RegisterDetector(invDetector{})
	RegisterDetector(cfgSigDetector{})
}

// ---- module facts ----

// ModuleFacts bundles the per-module static facts detectors consult:
// instruction placement, def-use and SSA status per function, and the
// known-bits lattice per result register. Facts are memoized per
// finalized module snapshot (pointer, version), mirroring TriageFor.
type ModuleFacts struct {
	Mod *ir.Module

	FuncOf  []int // instr ID -> function index
	BlockOf []int // instr ID -> block index within its function
	IndexOf []int // instr ID -> instruction index within its block

	SSA  []bool            // per function: single-assignment register form
	DU   []*analysis.DefUse
	CFGs []*analysis.CFG

	// Zero/One are the known-bits facts of each instruction's result at
	// its definition (zero when the function is not SSA or the
	// instruction has no result). Sound for fault-free execution only.
	Zero, One []uint64
}

type factsKey struct {
	mod     *ir.Module
	version uint64
}

var factsCache sync.Map // factsKey -> *ModuleFacts

// FactsFor returns the memoized facts of m's current finalized snapshot.
func FactsFor(m *ir.Module) *ModuleFacts {
	key := factsKey{mod: m, version: m.Version()}
	if v, ok := factsCache.Load(key); ok {
		return v.(*ModuleFacts)
	}
	fx := buildFacts(m)
	actual, _ := factsCache.LoadOrStore(key, fx)
	return actual.(*ModuleFacts)
}

func buildFacts(m *ir.Module) *ModuleFacts {
	n := m.NumInstrs()
	fx := &ModuleFacts{
		Mod:     m,
		FuncOf:  make([]int, n),
		BlockOf: make([]int, n),
		IndexOf: make([]int, n),
		SSA:     make([]bool, len(m.Funcs)),
		DU:      make([]*analysis.DefUse, len(m.Funcs)),
		CFGs:    make([]*analysis.CFG, len(m.Funcs)),
		Zero:    make([]uint64, n),
		One:     make([]uint64, n),
	}
	for fi, f := range m.Funcs {
		du := analysis.BuildDefUse(f)
		cfg := analysis.BuildCFG(f)
		fx.DU[fi] = du
		fx.CFGs[fi] = cfg
		fx.SSA[fi] = du.SingleAssignment
		var kb *analysis.KnownBits
		if du.SingleAssignment {
			kb = analysis.BuildKnownBits(f, cfg)
		}
		for bi, b := range f.Blocks {
			for ii, in := range b.Instrs {
				fx.FuncOf[in.ID] = fi
				fx.BlockOf[in.ID] = bi
				fx.IndexOf[in.ID] = ii
				if kb != nil && in.HasResult() {
					fx.Zero[in.ID] = kb.Zero[in.Dst]
					fx.One[in.ID] = kb.One[in.Dst]
				}
			}
		}
	}
	return fx
}

// instr returns the instruction with the given ID.
func (fx *ModuleFacts) instr(id int) *ir.Instr { return fx.Mod.Instrs[id] }

// dupInsertedCycles is the per-execution cycle cost duplication inserts
// at a site: the re-executed instruction plus the compare and detect.
func dupInsertedCycles(in *ir.Instr) float64 {
	return float64(in.Op.Cycles() + ir.OpICmp.Cycles() + ir.OpDetect.Cycles())
}

// ---- dup: instruction duplication (paper Fig. 1c) ----

type dupDetector struct{}

func (dupDetector) Name() string { return "dup" }

func (dupDetector) Applicable(fx *ModuleFacts, id int) bool {
	return Duplicable(fx.instr(id))
}

// CostFactor is exactly 1: the dup-only portfolio must reproduce the
// 0-1 knapsack's selections bit-for-bit.
func (dupDetector) CostFactor(fx *ModuleFacts, id int) float64 { return 1 }

// Coverage is 1 for every value-local model: the immediate re-execution
// is fault-free, so any perturbation of the result (XOR or stuck-at,
// any mask) makes the comparison fail.
func (dupDetector) Coverage(fx *ModuleFacts, id int, m fault.Model) float64 {
	if !m.Class().ValueLocal {
		return 0
	}
	return 1
}

func (dupDetector) lower(st *lowerState, fx *ModuleFacts, f *ir.Function, in *ir.Instr) []*ir.Instr {
	// Byte-compatible with Duplicate: same instructions, registers,
	// flags, and comments in the same order.
	dup := in.Clone()
	dup.Dst = f.NumRegs
	f.NumRegs++
	dup.Dup = true
	dup.Comment = "dup"

	cmp := &ir.Instr{
		Op:   ir.OpICmp,
		Pred: ir.PredEQ,
		Type: ir.I1,
		Dst:  f.NumRegs,
		Args: []ir.Operand{
			ir.Reg(in.Dst, in.Type),
			ir.Reg(dup.Dst, in.Type),
		},
		Dup:     true,
		Comment: "dup-check",
	}
	f.NumRegs++

	det := &ir.Instr{
		Op:      ir.OpDetect,
		Type:    ir.Void,
		Dst:     -1,
		Args:    []ir.Operand{ir.Reg(cmp.Dst, ir.I1)},
		Dup:     true,
		Comment: "dup-detect",
	}
	return []*ir.Instr{dup, cmp, det}
}

// ---- inv: known-bits range/invariant check ----

// invDetector checks the statically known bits of a result: bits proven
// always-zero must read zero and bits proven always-one must read one
// (the metamorphic-bounds idea: a cheap invariant the fault-free
// execution always satisfies, violated by corruptions that touch the
// constrained bits). Unlike duplication it does not re-execute the
// instruction, so it is cheap but covers only faults intersecting the
// known mask.
type invDetector struct{}

func (invDetector) Name() string { return "inv" }

// invMasks returns the checkable (zero, one) masks of site id, both
// zero when the invariant check is unavailable there.
func invMasks(fx *ModuleFacts, id int) (zero, one uint64) {
	in := fx.instr(id)
	if !Duplicable(in) || in.Type != ir.I64 || !fx.SSA[fx.FuncOf[id]] {
		return 0, 0
	}
	z, o := fx.Zero[id], fx.One[id]
	if z&o != 0 {
		// Contradictory facts mark unreachable code; nothing to check.
		return 0, 0
	}
	return z, o
}

func (invDetector) Applicable(fx *ModuleFacts, id int) bool {
	z, o := invMasks(fx, id)
	return z|o != 0
}

// CostFactor charges the inserted and/compare/detect triple per
// nonzero half, relative to duplication's inserted cycles at the site.
func (invDetector) CostFactor(fx *ModuleFacts, id int) float64 {
	z, o := invMasks(fx, id)
	halves := 0
	if z != 0 {
		halves++
	}
	if o != 0 {
		halves++
	}
	per := float64(ir.OpAnd.Cycles() + ir.OpICmp.Cycles() + ir.OpDetect.Cycles())
	return float64(halves) * per / dupInsertedCycles(fx.instr(id))
}

// Coverage replays the model's deterministic patterns against the known
// masks: an XOR pattern is caught iff it flips a constrained bit, a
// stuck-at-0 iff it clears a known-one bit, a stuck-at-1 iff it sets a
// known-zero bit.
func (invDetector) Coverage(fx *ModuleFacts, id int, m fault.Model) float64 {
	if !m.Class().ValueLocal {
		return 0
	}
	z, o := invMasks(fx, id)
	if z|o == 0 {
		return 0
	}
	pats := m.Patterns(fx.instr(id).Type.Bits(), 64)
	if len(pats) == 0 {
		return 0
	}
	caught := 0
	for _, p := range pats {
		mask := p.Mask
		if mask == 0 {
			mask = 1 << p.Bit
		}
		var hit bool
		switch p.Op {
		case interp.FaultStuckAt0:
			hit = mask&o != 0
		case interp.FaultStuckAt1:
			hit = mask&z != 0
		default: // XOR flip
			hit = mask&(z|o) != 0
		}
		if hit {
			caught++
		}
	}
	return float64(caught) / float64(len(pats))
}

func (invDetector) lower(st *lowerState, fx *ModuleFacts, f *ir.Function, in *ir.Instr) []*ir.Instr {
	z, o := invMasks(fx, in.ID)
	var out []*ir.Instr
	emit := func(mask, want uint64, tag string) {
		and := &ir.Instr{
			Op:   ir.OpAnd,
			Type: ir.I64,
			Dst:  f.NumRegs,
			Args: []ir.Operand{
				ir.Reg(in.Dst, in.Type),
				ir.ConstI(int64(mask)),
			},
			Dup:     true,
			Comment: "inv-" + tag,
		}
		f.NumRegs++
		cmp := &ir.Instr{
			Op:   ir.OpICmp,
			Pred: ir.PredEQ,
			Type: ir.I1,
			Dst:  f.NumRegs,
			Args: []ir.Operand{
				ir.Reg(and.Dst, ir.I64),
				ir.ConstI(int64(want)),
			},
			Dup:     true,
			Comment: "inv-check",
		}
		f.NumRegs++
		det := &ir.Instr{
			Op:      ir.OpDetect,
			Type:    ir.Void,
			Dst:     -1,
			Args:    []ir.Operand{ir.Reg(cmp.Dst, ir.I1)},
			Dup:     true,
			Comment: "inv-detect",
		}
		out = append(out, and, cmp, det)
	}
	if z != 0 {
		emit(z, 0, "zero")
	}
	if o != 0 {
		emit(o, o, "one")
	}
	return out
}

// ---- cfgsig: control-flow edge-signature check ----

// cfgSigDetector protects a comparison feeding a conditional branch by
// recomputing the condition with mirrored operands (a diverse
// re-evaluation) and asserting, on each outgoing edge, that the edge
// taken matches the recomputed signature — a lightweight CFG
// edge-signature check. A corrupted condition diverts the branch onto
// an edge whose assertion then fails.
type cfgSigDetector struct{}

func (cfgSigDetector) Name() string { return "cfgsig" }

// cfgSigSite resolves the protected pattern at id: a same-block ICmp /
// FCmp whose single use is the block's conditional branch, with two
// distinct successors each reachable only through this block (so edge
// assertions cannot run without the signature being computed).
func cfgSigSite(fx *ModuleFacts, id int) (f *ir.Function, br *ir.Instr, ok bool) {
	in := fx.instr(id)
	if in.Op != ir.OpICmp && in.Op != ir.OpFCmp {
		return nil, nil, false
	}
	if !Duplicable(in) {
		return nil, nil, false
	}
	fi := fx.FuncOf[id]
	if !fx.SSA[fi] {
		return nil, nil, false
	}
	f = fx.Mod.Funcs[fi]
	uses := fx.DU[fi].Uses[in.Dst]
	if len(uses) != 1 {
		return nil, nil, false
	}
	br = uses[0]
	if br.Op != ir.OpCondBr || fx.BlockOf[br.ID] != fx.BlockOf[id] {
		return nil, nil, false
	}
	if len(br.Succs) != 2 || br.Succs[0] == br.Succs[1] {
		return nil, nil, false
	}
	preds := fx.CFGs[fi].Preds
	if len(preds[br.Succs[0]]) != 1 || len(preds[br.Succs[1]]) != 1 {
		return nil, nil, false
	}
	return f, br, true
}

func (cfgSigDetector) Applicable(fx *ModuleFacts, id int) bool {
	_, _, ok := cfgSigSite(fx, id)
	return ok
}

// CostFactor charges the mirrored compare on every execution plus the
// edge assertion (one detect on the true edge, compare+detect on the
// false edge — averaged), relative to duplication's inserted cycles.
func (cfgSigDetector) CostFactor(fx *ModuleFacts, id int) float64 {
	in := fx.instr(id)
	sig := float64(in.Op.Cycles())
	edge := float64(ir.OpDetect.Cycles())*0.5 +
		float64(ir.OpICmp.Cycles()+ir.OpDetect.Cycles())*0.5
	return (sig + edge) / dupInsertedCycles(in)
}

// Coverage is 1 for value-local models: the result is an i1, every
// model's effect narrows onto bit 0, and a flipped condition is caught
// on whichever edge it diverts the branch to (a narrowed no-op
// perturbation leaves the value — and the outcome — unchanged).
func (cfgSigDetector) Coverage(fx *ModuleFacts, id int, m fault.Model) float64 {
	if !m.Class().ValueLocal {
		return 0
	}
	return 1
}

// mirrorPred returns the predicate computing the same relation with
// swapped operands (EQ/NE are symmetric; orderings reverse). This holds
// for IEEE floats too: the predicates are all "ordered" relations that
// are false when an operand is NaN, symmetrically.
func mirrorPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredLT:
		return ir.PredGT
	case ir.PredLE:
		return ir.PredGE
	case ir.PredGT:
		return ir.PredLT
	case ir.PredGE:
		return ir.PredLE
	default: // EQ, NE
		return p
	}
}

func (cfgSigDetector) lower(st *lowerState, fx *ModuleFacts, f *ir.Function, in *ir.Instr) []*ir.Instr {
	_, br, ok := cfgSigSite(fx, in.ID)
	if !ok {
		return nil
	}
	sig := &ir.Instr{
		Op:      in.Op,
		Pred:    mirrorPred(in.Pred),
		Type:    ir.I1,
		Dst:     f.NumRegs,
		Args:    []ir.Operand{in.Args[1], in.Args[0]},
		Dup:     true,
		Comment: "cfgsig",
	}
	f.NumRegs++

	// True edge: the signature must be true; detect halts on false.
	st.atBlockHead(fx.FuncOf[in.ID], br.Succs[0], []*ir.Instr{{
		Op:      ir.OpDetect,
		Type:    ir.Void,
		Dst:     -1,
		Args:    []ir.Operand{ir.Reg(sig.Dst, ir.I1)},
		Dup:     true,
		Comment: "cfgsig-true",
	}})

	// False edge: the signature must be false.
	inv := &ir.Instr{
		Op:   ir.OpICmp,
		Pred: ir.PredEQ,
		Type: ir.I1,
		Dst:  f.NumRegs,
		Args: []ir.Operand{
			ir.Reg(sig.Dst, ir.I1),
			ir.ConstB(false),
		},
		Dup:     true,
		Comment: "cfgsig-neg",
	}
	f.NumRegs++
	st.atBlockHead(fx.FuncOf[in.ID], br.Succs[1], []*ir.Instr{inv, {
		Op:      ir.OpDetect,
		Type:    ir.Void,
		Dst:     -1,
		Args:    []ir.Operand{ir.Reg(inv.Dst, ir.I1)},
		Dup:     true,
		Comment: "cfgsig-false",
	}})
	return []*ir.Instr{sig}
}
