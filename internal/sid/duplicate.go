package sid

import (
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Duplicate returns a protected clone of m in which every selected
// instruction D is followed by a fresh copy D_dup computing the same value
// into a new register, a bitwise comparison of the two results, and a
// detector that halts with a Detected outcome on mismatch (paper Fig. 1c).
//
// Because a transient fault affects a single dynamic instruction, the
// immediate re-execution is fault-free: a fault in either D or D_dup makes
// the comparison fail and is detected before it can propagate past the
// next synchronization point. The inserted instructions are marked Dup so
// analyses can distinguish protection code from program code.
//
// The returned module is finalized; instruction IDs of original
// instructions change (insertions shift the numbering), so callers must
// not mix pre- and post-transform IDs. ProtectedMap reports the mapping.
func Duplicate(m *ir.Module, chosen []int) *ir.Module {
	chosenSet := make(map[int]bool, len(chosen))
	for _, id := range chosen {
		chosenSet[id] = true
	}
	cp := m.Clone() // clone preserves IDs (same instruction order)
	for _, f := range cp.Funcs {
		for _, b := range f.Blocks {
			out := make([]*ir.Instr, 0, len(b.Instrs))
			for _, in := range b.Instrs {
				out = append(out, in)
				if !chosenSet[in.ID] || !Duplicable(in) {
					continue
				}
				dup := in.Clone()
				dup.Dst = f.NumRegs
				f.NumRegs++
				dup.Dup = true
				dup.Comment = "dup"

				cmp := &ir.Instr{
					Op:   ir.OpICmp, // bitwise equality on the raw words
					Pred: ir.PredEQ,
					Type: ir.I1,
					Dst:  f.NumRegs,
					Args: []ir.Operand{
						ir.Reg(in.Dst, in.Type),
						ir.Reg(dup.Dst, in.Type),
					},
					Dup:     true,
					Comment: "dup-check",
				}
				f.NumRegs++

				det := &ir.Instr{
					Op:      ir.OpDetect,
					Type:    ir.Void,
					Dst:     -1,
					Args:    []ir.Operand{ir.Reg(cmp.Dst, ir.I1)},
					Dup:     true,
					Comment: "dup-detect",
				}
				out = append(out, dup, cmp, det)
			}
			b.Instrs = out
		}
	}
	cp.Finalize()
	return cp
}

// ProtectedMap maps each original-module instruction ID to its ID in the
// protected module produced by Duplicate with the same chosen set. The
// transform only inserts instructions, so the mapping is order-preserving.
func ProtectedMap(orig *ir.Module, chosen []int) map[int]int {
	chosenSet := make(map[int]bool, len(chosen))
	for _, id := range chosen {
		chosenSet[id] = true
	}
	mapping := make(map[int]int, orig.NumInstrs())
	newID := 0
	for _, in := range orig.Instrs {
		mapping[in.ID] = newID
		newID++
		if chosenSet[in.ID] && Duplicable(in) {
			newID += 3 // dup, cmp, detect
		}
	}
	return mapping
}

// Protect measures, selects, and transforms in one step: the full baseline
// SID pipeline on a single reference input.
type Protect struct {
	Module    *ir.Module   // protected module
	Selection Selection    // the instruction selection on the original module
	Meas      *Measurement // reference-input measurement
}

// Apply runs baseline SID end to end at the given protection level.
func Apply(m *ir.Module, bind interp.Binding, cfg Config, level float64, method Method) (*Protect, error) {
	meas, err := Measure(m, bind, cfg)
	if err != nil {
		return nil, err
	}
	sel := Select(m, meas, level, method)
	prot := Duplicate(m, sel.Chosen)
	return &Protect{Module: prot, Selection: sel, Meas: meas}, nil
}

// EvaluateCoverage injects n program-level faults into the protected
// module under one input and returns the measured campaign result. The
// golden execution of the protected module is computed internally (its
// output must match the unprotected program's: duplication preserves
// semantics).
func EvaluateCoverage(protected *ir.Module, bind interp.Binding, cfg Config, n int, seed int64) (fault.CampaignResult, error) {
	golden, err := cfg.Cache.Golden(protected, bind, cfg.Exec, cfg.Metrics)
	if err != nil {
		return fault.CampaignResult{}, err
	}
	c := &fault.Campaign{Mod: protected, Bind: bind, Cfg: cfg.Exec, Golden: golden,
		Workers: cfg.Workers, Model: cfg.Model, Metrics: cfg.Metrics}
	return c.Run(n, seed), nil
}

// DuplicatedDynFraction returns the fraction of dynamic instructions of
// one execution that belong to instructions selected for duplication —
// the actual protection level achieved on that input (§VIII-A). prof must
// be a profile of the *original* module under the input, and chosen the
// selection on the original module.
func DuplicatedDynFraction(m *ir.Module, prof *interp.Profile, chosen []int) float64 {
	chosenSet := make(map[int]bool, len(chosen))
	for _, id := range chosen {
		chosenSet[id] = true
	}
	var total, dup int64
	for id, c := range prof.InstrCount {
		total += c
		if chosenSet[id] {
			dup += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dup) / float64(total)
}

// FullDuplication returns a clone of m with every duplicable instruction
// protected — the classic full-DMR scheme of the paper's Fig. 1(b). It is
// the coverage upper bound SID trades against: near-complete detection at
// roughly doubled execution cost.
func FullDuplication(m *ir.Module) *ir.Module {
	var all []int
	for _, in := range m.Instrs {
		if Duplicable(in) {
			all = append(all, in.ID)
		}
	}
	return Duplicate(m, all)
}
