package sid

import (
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
)

// This file implements a static, fault-injection-free estimator of
// per-instruction SDC proneness in the spirit of SDCTune (Lu et al.,
// CASES'14), one of the cheaper alternatives to per-instruction FI that
// the SID literature explores. It scores each value by how strongly it
// flows into observable outputs: values reaching emit calls or stores are
// SDC-prone; values feeding branch conditions mostly cause (detectable)
// path changes; values used as addresses mostly cause crashes, not SDCs.
//
// The estimator exists as an ablation point: selection quality of
// heuristic scores versus measured FI probabilities, at a tiny fraction
// of the analysis cost.

// Flow-sink scores: the SDC propensity contributed by each kind of use.
const (
	sinkEmit    = 1.0  // program output: corrupt value = SDC
	sinkStore   = 0.8  // memory: likely read back into outputs
	sinkRet     = 0.7  // flows to the caller
	sinkCallArg = 0.6  // flows into a callee
	sinkBranch  = 0.25 // wrong-but-legal path: often masked or crash
	sinkAddr    = 0.1  // address corruption: mostly crashes, few SDCs
	flowDamping = 0.9  // attenuation per def-use hop
)

// opMaskFactor approximates the logic-masking probability of each opcode:
// the chance a single-bit flip in the result survives downstream use.
func opMaskFactor(op ir.Op) float64 {
	switch op {
	case ir.OpAnd, ir.OpOr:
		return 0.5 // bit flips frequently masked by the other operand
	case ir.OpICmp, ir.OpFCmp:
		return 0.6 // single-bit result; flips always change the value
	case ir.OpShl, ir.OpShr:
		return 0.7
	case ir.OpDiv, ir.OpRem:
		return 0.8
	case ir.OpLoad, ir.OpPhi, ir.OpSelect:
		return 1.0 // pure value movement: nothing masked
	default:
		return 0.9
	}
}

// HeuristicSDCProb statically scores every instruction of m with an
// estimated SDC probability in [0,1].
func HeuristicSDCProb(m *ir.Module) []float64 {
	score := make([]float64, m.NumInstrs())

	// Per-function fixpoint over the register def-use graph.
	for _, f := range m.Funcs {
		// defOf[r] = instruction defining register r (single-assignment).
		defOf := make([]*ir.Instr, f.NumRegs)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.HasResult() {
					defOf[in.Dst] = in
				}
			}
		}
		regScore := make([]float64, f.NumRegs)

		// bump raises a register's flow score.
		bump := func(o ir.Operand, s float64) bool {
			if o.Kind != ir.OperReg || s <= regScore[o.Reg] {
				return false
			}
			regScore[o.Reg] = s
			return true
		}

		for changed := true; changed; {
			changed = false
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					switch in.Op {
					case ir.OpCallB:
						s := sinkEmit
						if in.BFunc != ir.BuiltinEmitI && in.BFunc != ir.BuiltinEmitF {
							s = sinkCallArg // math builtin: flows onward via result
						}
						for _, a := range in.Args {
							if bump(a, s) {
								changed = true
							}
						}
					case ir.OpStore:
						if bump(in.Args[0], sinkStore) {
							changed = true
						}
						if bump(in.Args[1], sinkAddr) {
							changed = true
						}
					case ir.OpLoad:
						if bump(in.Args[0], sinkAddr) {
							changed = true
						}
					case ir.OpGEP:
						// A GEP result is an address; its inputs inherit
						// the GEP's own flow score (address-ness applies
						// when the result is consumed).
						for _, a := range in.Args {
							if in.HasResult() && bump(a, regScore[in.Dst]*flowDamping) {
								changed = true
							}
						}
					case ir.OpCondBr, ir.OpDetect:
						if bump(in.Args[0], sinkBranch) {
							changed = true
						}
					case ir.OpRet:
						for _, a := range in.Args {
							if bump(a, sinkRet) {
								changed = true
							}
						}
					case ir.OpCall, ir.OpSpawn:
						for _, a := range in.Args {
							if bump(a, sinkCallArg) {
								changed = true
							}
						}
					default:
						// Pure value op: operands inherit the result's
						// score, attenuated.
						if !in.HasResult() {
							continue
						}
						s := regScore[in.Dst] * flowDamping
						for _, a := range in.Args {
							if bump(a, s) {
								changed = true
							}
						}
					}
				}
			}
		}

		for r, in := range defOf {
			if in == nil {
				continue
			}
			p := regScore[r] * opMaskFactor(in.Op)
			if p > 1 {
				p = 1
			}
			score[in.ID] = p
		}
	}
	return score
}

// HeuristicMeasure builds a Measurement whose SDC probabilities come from
// the static estimator instead of fault injection. Only a profiling run
// (for costs) is needed, so preparation is orders of magnitude cheaper.
func HeuristicMeasure(m *ir.Module, bind interp.Binding, exec interp.Config) (*Measurement, error) {
	golden, err := fault.RunGolden(m, bind, exec)
	if err != nil {
		return nil, err
	}
	n := m.NumInstrs()
	meas := &Measurement{
		Cost:    make([]float64, n),
		DynFrac: make([]float64, n),
		SDCProb: HeuristicSDCProb(m),
		Benefit: make([]float64, n),
		Golden:  golden,
	}
	totalCycles := float64(golden.Cycles)
	totalDyn := float64(golden.DynInstrs)
	for id := 0; id < n; id++ {
		meas.Cost[id] = float64(golden.Profile.InstrCycles[id]) / totalCycles
		meas.DynFrac[id] = float64(golden.Profile.InstrCount[id]) / totalDyn
		meas.Benefit[id] = meas.SDCProb[id] * meas.Cost[id]
	}
	return meas, nil
}
