// Package sid implements the baseline selective-instruction-duplication
// technique of the paper (§II-C): per-instruction cost (Eq. 1) and benefit
// (Eq. 2) measurement via profiling and fault injection on a reference
// input, 0-1 knapsack instruction selection under a protection-level
// budget, and the code transformation that duplicates selected
// instructions with a compare-and-detect check.
package sid

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Measurement holds the per-instruction profiles SID selection consumes,
// indexed by static instruction ID.
type Measurement struct {
	Cost    []float64 // Eq. 1: dynamic cycles fraction
	DynFrac []float64 // fraction of dynamic instructions
	SDCProb []float64 // per-instruction FI result
	Benefit []float64 // Eq. 2: SDCProb * Cost
	Stats   []fault.InstrStats
	Golden  *fault.Golden
}

// Config bounds the measurement step.
type Config struct {
	Exec           interp.Config
	FaultsPerInstr int   // per-instruction FI trials (paper: 100)
	Seed           int64 // RNG seed for site sampling
	Workers        int   // 0 = GOMAXPROCS
	// Model selects the fault model the measurement campaign injects;
	// nil means the paper's single-bit flip.
	Model fault.Model
	// Cache, if non-nil, memoizes golden runs across measurements (the
	// result is bit-identical either way); Metrics, if non-nil, receives
	// the campaign accounting for this measurement's phase; Obs, if
	// non-nil, receives the campaign's spans and registry metrics.
	Cache   *fault.Cache
	Metrics *fault.PhaseMetrics
	Obs     *obs.Obs
}

// Measure profiles the module under one input and runs per-instruction
// fault injection, producing the cost/benefit profile of SID preparation
// (steps 1-2 of the paper's Fig. 4).
func Measure(m *ir.Module, bind interp.Binding, cfg Config) (*Measurement, error) {
	golden, err := cfg.Cache.Golden(m, bind, cfg.Exec, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	return MeasureWithGolden(m, bind, cfg, golden)
}

// MeasureWithGolden is Measure for callers that already ran the golden
// execution.
func MeasureWithGolden(m *ir.Module, bind interp.Binding, cfg Config, golden *fault.Golden) (*Measurement, error) {
	if cfg.FaultsPerInstr <= 0 {
		cfg.FaultsPerInstr = 100
	}
	c := &fault.Campaign{Mod: m, Bind: bind, Cfg: cfg.Exec, Golden: golden,
		Workers: cfg.Workers, Model: cfg.Model, Metrics: cfg.Metrics, Obs: cfg.Obs}
	stats := c.PerInstruction(cfg.FaultsPerInstr, cfg.Seed)
	return MeasurementFromStats(m, golden, stats), nil
}

// MeasurementFromStats derives the SID cost/benefit model from an
// already-computed per-instruction stats table (either PerInstruction or
// the composed sectional table — the incremental pipeline assembles
// stats per section and builds the measurement through this one path).
func MeasurementFromStats(m *ir.Module, golden *fault.Golden, stats []fault.InstrStats) *Measurement {
	n := m.NumInstrs()
	meas := &Measurement{
		Cost:    make([]float64, n),
		DynFrac: make([]float64, n),
		SDCProb: make([]float64, n),
		Benefit: make([]float64, n),
		Stats:   stats,
		Golden:  golden,
	}
	totalCycles := float64(golden.Cycles)
	totalDyn := float64(golden.DynInstrs)
	for id := 0; id < n; id++ {
		meas.Cost[id] = float64(golden.Profile.InstrCycles[id]) / totalCycles
		meas.DynFrac[id] = float64(golden.Profile.InstrCount[id]) / totalDyn
		meas.SDCProb[id] = stats[id].SDCProb()
		meas.Benefit[id] = meas.SDCProb[id] * meas.Cost[id]
	}
	return meas
}

// Duplicable reports whether SID may duplicate instruction in: it must
// produce a value, and re-executing it immediately must be side-effect
// free and yield the same result. Calls (side effects in the callee) and
// allocas (a second execution yields a different pointer) are excluded,
// as in LLVM-based SID implementations.
func Duplicable(in *ir.Instr) bool {
	if !in.IsInjectable() || in.Dup {
		return false
	}
	switch in.Op {
	case ir.OpCall, ir.OpAlloca:
		return false
	default:
		// All value-returning builtins are pure math; emit builtins are
		// void and already excluded by IsInjectable.
		return true
	}
}

// Selection is the output of instruction selection.
type Selection struct {
	Chosen []int // selected static instruction IDs, ascending
	// Detectors names the detector assigned to each chosen site
	// (parallel to Chosen). Nil means duplication everywhere — the
	// single-detector Select leaves it nil so legacy selections lower
	// through Duplicate unchanged.
	Detectors        []string
	ExpectedCoverage float64 // aggregated benefit share of the selection
	CostUsed         float64 // total Eq.-1 cost of the selection
	TotalBenefit     float64 // benefit mass over all candidates
}

// IsChosen reports whether id is in the (sorted) selection.
func (s *Selection) IsChosen(id int) bool {
	i := sort.SearchInts(s.Chosen, id)
	return i < len(s.Chosen) && s.Chosen[i] == id
}

// Method selects the knapsack algorithm.
type Method uint8

// Selection methods: MethodDP solves the 0-1 knapsack exactly with
// scaled-integer dynamic programming; MethodGreedy uses benefit/cost
// density order (the classic approximation).
const (
	MethodDP Method = iota
	MethodGreedy
)

// dpScale converts cost fractions into integer knapsack weights.
const dpScale = 10000

// knapItem is one selection candidate.
type knapItem struct {
	id      int
	cost    float64
	benefit float64
}

// Select runs instruction selection: maximize total benefit subject to
// total cost <= level (the protection level, e.g. 0.3/0.5/0.7), over the
// duplicable instructions of m with profiles from meas.
func Select(m *ir.Module, meas *Measurement, level float64, method Method) Selection {
	var items []knapItem
	var totalBenefit float64
	for _, in := range m.Instrs {
		if !Duplicable(in) {
			continue
		}
		b := meas.Benefit[in.ID]
		totalBenefit += b
		if meas.Golden.Profile.InstrCount[in.ID] == 0 {
			continue
		}
		items = append(items, knapItem{id: in.ID, cost: meas.Cost[in.ID], benefit: b})
	}

	var chosen []int
	if method == MethodGreedy {
		chosen = knapsackGreedy(items, level)
	} else {
		chosen = knapsackDP(items, level)
	}

	sort.Ints(chosen)
	sel := Selection{Chosen: chosen, TotalBenefit: totalBenefit}
	for _, id := range chosen {
		sel.CostUsed += meas.Cost[id]
		if totalBenefit > 0 {
			sel.ExpectedCoverage += meas.Benefit[id] / totalBenefit
		}
	}
	if totalBenefit == 0 {
		// No SDC-prone candidate was observed at all: the protection's
		// expected coverage is (vacuously) complete.
		sel.ExpectedCoverage = 1
	}
	// Guard against floating-point drift in the benefit-share summation.
	if sel.ExpectedCoverage > 1 {
		sel.ExpectedCoverage = 1
	}
	return sel
}

// knapsackGreedy picks items in benefit/cost density order while they fit.
func knapsackGreedy(items []knapItem, capacity float64) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := density(items[order[a]].benefit, items[order[a]].cost)
		db := density(items[order[b]].benefit, items[order[b]].cost)
		if da != db {
			return da > db
		}
		return items[order[a]].id < items[order[b]].id
	})
	var chosen []int
	budget := capacity
	for _, i := range order {
		it := items[i]
		if it.benefit <= 0 {
			continue
		}
		if it.cost <= budget {
			budget -= it.cost
			chosen = append(chosen, it.id)
		}
	}
	return chosen
}

// knapsackDP solves the 0-1 knapsack exactly on dpScale-quantized costs.
func knapsackDP(items []knapItem, capacity float64) []int {
	cap := int(capacity * dpScale)
	if cap < 0 {
		cap = 0
	}
	n := len(items)
	w := make([]int, n)
	for i, it := range items {
		w[i] = int(it.cost*dpScale + 0.5)
	}
	val := make([][]float64, n+1)
	for i := range val {
		val[i] = make([]float64, cap+1)
	}
	for i := 1; i <= n; i++ {
		wi, bi := w[i-1], items[i-1].benefit
		prev, cur := val[i-1], val[i]
		for c := 0; c <= cap; c++ {
			cur[c] = prev[c]
			if bi > 0 && wi <= c {
				if v := prev[c-wi] + bi; v > cur[c] {
					cur[c] = v
				}
			}
		}
	}
	var chosen []int
	c := cap
	for i := n; i >= 1; i-- {
		if val[i][c] != val[i-1][c] {
			chosen = append(chosen, items[i-1].id)
			c -= w[i-1]
		}
	}
	return chosen
}

func density(benefit, cost float64) float64 {
	if cost <= 0 {
		if benefit > 0 {
			return 1e18
		}
		return 0
	}
	return benefit / cost
}
