package sid

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/ir"
)

// ParsePortfolio resolves a comma-separated detector list ("dup,inv",
// "all" for every registered detector, "" for the default dup-only
// portfolio) into detectors.
func ParsePortfolio(spec string) ([]Detector, error) {
	switch spec {
	case "":
		return []Detector{DefaultDetector()}, nil
	case "all":
		return Detectors(), nil
	}
	var out []Detector
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		d, ok := DetectorByName(name)
		if !ok {
			return nil, fmt.Errorf("sid: unknown detector %q (have %s)",
				name, strings.Join(DetectorNames(), ", "))
		}
		out = append(out, d)
	}
	return out, nil
}

// mckOption is one detector choice for a site in the multi-choice
// knapsack.
type mckOption struct {
	port    int // index into the portfolio (tie-break order)
	name    string
	cost    float64
	benefit float64
}

// mckItem is one site with its applicable detector options.
type mckItem struct {
	id   int
	opts []mckOption
}

// SelectPortfolio generalizes Select to a detector portfolio under a
// fault model: per site, pick at most one applicable detector (the
// DETOx multi-choice knapsack), maximizing summed benefit — each
// option's benefit is the site's Eq.-2 benefit scaled by the detector's
// model coverage, its cost the Eq.-1 cost scaled by the detector's cost
// factor — subject to total cost <= level.
//
// With a portfolio of exactly {dup} and the default model this
// reproduces Select bit-for-bit: duplication's cost factor and coverage
// are both 1, so every option equals the 0-1 knapsack item, and both
// the greedy order and the DP recurrence degenerate to the
// single-detector forms.
func SelectPortfolio(m *ir.Module, meas *Measurement, level float64, method Method,
	portfolio []Detector, model fault.Model) Selection {

	if len(portfolio) == 0 {
		portfolio = []Detector{DefaultDetector()}
	}
	if model == nil {
		model = fault.DefaultModel()
	}
	fx := FactsFor(m)

	var items []mckItem
	var totalBenefit float64
	for _, in := range m.Instrs {
		if !Duplicable(in) {
			continue
		}
		totalBenefit += meas.Benefit[in.ID]
		if meas.Golden.Profile.InstrCount[in.ID] == 0 {
			continue
		}
		it := mckItem{id: in.ID}
		for pi, d := range portfolio {
			if !d.Applicable(fx, in.ID) {
				continue
			}
			it.opts = append(it.opts, mckOption{
				port:    pi,
				name:    d.Name(),
				cost:    meas.Cost[in.ID] * d.CostFactor(fx, in.ID),
				benefit: meas.Benefit[in.ID] * d.Coverage(fx, in.ID, model),
			})
		}
		if len(it.opts) > 0 {
			items = append(items, it)
		}
	}

	var picks []mckPick
	if method == MethodGreedy {
		picks = mckGreedy(items, level)
	} else {
		picks = mckDP(items, level)
	}
	sort.Slice(picks, func(a, b int) bool { return picks[a].id < picks[b].id })

	sel := Selection{TotalBenefit: totalBenefit}
	for _, p := range picks {
		sel.Chosen = append(sel.Chosen, p.id)
		sel.Detectors = append(sel.Detectors, p.opt.name)
		sel.CostUsed += p.opt.cost
		if totalBenefit > 0 {
			sel.ExpectedCoverage += p.opt.benefit / totalBenefit
		}
	}
	if totalBenefit == 0 {
		sel.ExpectedCoverage = 1
	}
	if sel.ExpectedCoverage > 1 {
		sel.ExpectedCoverage = 1
	}
	return sel
}

// mckPick is one (site, detector option) assignment.
type mckPick struct {
	id  int
	opt mckOption
}

// mckGreedy flattens every (site, option) pair into density order and
// takes the densest fitting option per unassigned site — the
// multi-choice extension of knapsackGreedy, identical to it when every
// site has exactly one option.
func mckGreedy(items []mckItem, capacity float64) []mckPick {
	type flat struct {
		item int
		opt  mckOption
	}
	var all []flat
	for i, it := range items {
		for _, o := range it.opts {
			all = append(all, flat{item: i, opt: o})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		da := density(all[a].opt.benefit, all[a].opt.cost)
		db := density(all[b].opt.benefit, all[b].opt.cost)
		if da != db {
			return da > db
		}
		if items[all[a].item].id != items[all[b].item].id {
			return items[all[a].item].id < items[all[b].item].id
		}
		return all[a].opt.port < all[b].opt.port
	})
	assigned := make(map[int]bool, len(items))
	var picks []mckPick
	budget := capacity
	for _, f := range all {
		if f.opt.benefit <= 0 || assigned[f.item] {
			continue
		}
		if f.opt.cost <= budget {
			budget -= f.opt.cost
			assigned[f.item] = true
			picks = append(picks, mckPick{id: items[f.item].id, opt: f.opt})
		}
	}
	return picks
}

// mckDP solves the multi-choice knapsack exactly on dpScale-quantized
// costs: per site, the recurrence considers skipping the site or taking
// each option, and the traceback re-derives the first option (in
// portfolio order) that explains the optimum — so with one option per
// site it reproduces knapsackDP's selections exactly.
func mckDP(items []mckItem, capacity float64) []mckPick {
	cap := int(capacity * dpScale)
	if cap < 0 {
		cap = 0
	}
	n := len(items)
	w := make([][]int, n)
	for i, it := range items {
		w[i] = make([]int, len(it.opts))
		for j, o := range it.opts {
			w[i][j] = int(o.cost*dpScale + 0.5)
		}
	}
	val := make([][]float64, n+1)
	for i := range val {
		val[i] = make([]float64, cap+1)
	}
	for i := 1; i <= n; i++ {
		prev, cur := val[i-1], val[i]
		for c := 0; c <= cap; c++ {
			cur[c] = prev[c]
			for j, o := range items[i-1].opts {
				if o.benefit > 0 && w[i-1][j] <= c {
					if v := prev[c-w[i-1][j]] + o.benefit; v > cur[c] {
						cur[c] = v
					}
				}
			}
		}
	}
	var picks []mckPick
	c := cap
	for i := n; i >= 1; i-- {
		if val[i][c] == val[i-1][c] {
			continue
		}
		for j, o := range items[i-1].opts {
			if o.benefit > 0 && w[i-1][j] <= c &&
				val[i-1][c-w[i-1][j]]+o.benefit == val[i][c] {
				picks = append(picks, mckPick{id: items[i-1].id, opt: o})
				c -= w[i-1][j]
				break
			}
		}
	}
	return picks
}

// lowerState carries cross-block insertions during LowerSelection:
// detectors that assert on control-flow edges append code at successor
// block heads, applied after the main walk so in-block indices stay
// stable.
type lowerState struct {
	heads map[[2]int][]*ir.Instr // (func, block) -> instrs for the head
}

// atBlockHead schedules instrs for insertion at the head of block bi of
// function fi, after the leading phi group.
func (st *lowerState) atBlockHead(fi, bi int, instrs []*ir.Instr) {
	if st.heads == nil {
		st.heads = make(map[[2]int][]*ir.Instr)
	}
	key := [2]int{fi, bi}
	st.heads[key] = append(st.heads[key], instrs...)
}

// LowerSelection applies a heterogeneous selection to m: every chosen
// site is protected with its assigned detector (sel.Detectors parallel
// to sel.Chosen; a nil Detectors slice means duplication everywhere,
// which reproduces Duplicate byte-for-byte). The returned module is
// finalized; use InstrMap for the ID translation.
func LowerSelection(m *ir.Module, sel Selection) *ir.Module {
	detOf := make(map[int]Detector, len(sel.Chosen))
	for i, id := range sel.Chosen {
		d := DefaultDetector()
		if i < len(sel.Detectors) && sel.Detectors[i] != "" {
			dd, ok := DetectorByName(sel.Detectors[i])
			if !ok {
				panic(fmt.Sprintf("sid: selection names unknown detector %q", sel.Detectors[i]))
			}
			d = dd
		}
		detOf[id] = d
	}
	fx := FactsFor(m)
	cp := m.Clone() // clone preserves IDs (same instruction order)
	st := &lowerState{}
	for _, f := range cp.Funcs {
		for _, b := range f.Blocks {
			out := make([]*ir.Instr, 0, len(b.Instrs))
			for _, in := range b.Instrs {
				out = append(out, in)
				d, ok := detOf[in.ID]
				if !ok || !d.Applicable(fx, in.ID) {
					continue
				}
				out = append(out, d.lower(st, fx, f, in)...)
			}
			b.Instrs = out
		}
	}
	// Apply edge-assertion insertions after the leading phi group of
	// each target block (phis must stay leading for the interpreter's
	// parallel phi-group execution).
	for key, instrs := range st.heads {
		b := cp.Funcs[key[0]].Blocks[key[1]]
		phis := 0
		for phis < len(b.Instrs) && b.Instrs[phis].Op == ir.OpPhi {
			phis++
		}
		rest := append([]*ir.Instr(nil), b.Instrs[phis:]...)
		b.Instrs = append(append(b.Instrs[:phis:phis], instrs...), rest...)
	}
	cp.Finalize()
	return cp
}

// InstrMap maps each original-module instruction ID to its ID in a
// protected module produced by LowerSelection (or Duplicate) on the
// same original: protection only inserts Dup-marked instructions, so
// pairing the i-th non-Dup instruction of prot with the i-th
// instruction of orig recovers the translation.
func InstrMap(orig, prot *ir.Module) map[int]int {
	mapping := make(map[int]int, orig.NumInstrs())
	i := 0
	for _, in := range prot.Instrs {
		if in.Dup {
			continue
		}
		mapping[orig.Instrs[i].ID] = in.ID
		i++
	}
	return mapping
}
