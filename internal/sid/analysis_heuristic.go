package sid

import (
	"math/bits"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
)

// AnalysisSDCProb refines the flow-sink heuristic with facts from the
// dataflow analysis framework:
//
//   - provably dead values (zero demanded bits) score exactly 0 — no
//     flip in them can ever become an SDC, so protecting them is waste;
//   - partially masked values are damped by their demanded-bit
//     fraction, the probability a uniformly random single-bit flip
//     lands in a bit that can propagate at all;
//   - values live across more of the function (liveness breadth) are
//     nudged up: a long-lived value has more downstream consumers;
//   - values defined deeper in the dominator tree are nudged down:
//     conditionally executed code contributes fewer dynamic instances
//     and its corruption is more often path-masked.
//
// The shaping factors are heuristic; the zero-score rule alone is
// backed by the triage soundness argument (DESIGN.md §9).
func AnalysisSDCProb(m *ir.Module) []float64 {
	score := HeuristicSDCProb(m)
	tri := analysis.TriageFor(m)

	for _, f := range m.Funcs {
		cfg := analysis.BuildCFG(f)
		dom := analysis.BuildDom(cfg)
		live := analysis.BuildLiveness(cfg)
		depth := domDepths(dom)
		maxDepth := 0
		for _, d := range depth {
			if d > maxDepth {
				maxDepth = d
			}
		}

		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() || score[in.ID] == 0 {
					continue
				}
				width := in.Type.Bits()
				dem := bits.OnesCount64(tri.DemandedBits(in.ID))
				if dem == 0 {
					score[in.ID] = 0
					continue
				}
				s := score[in.ID] * float64(dem) / float64(width)

				liveBlocks := 0
				for bi := range f.Blocks {
					if live.LiveAt(in.Dst, bi) {
						liveBlocks++
					}
				}
				breadth := float64(liveBlocks) / float64(len(f.Blocks))
				s *= 0.75 + 0.25*breadth

				if maxDepth > 0 {
					s *= 1 - 0.3*float64(depth[b.Index])/float64(maxDepth)
				}
				if s > 1 {
					s = 1
				}
				score[in.ID] = s
			}
		}
	}
	return score
}

// domDepths returns each block's depth in the dominator tree (entry 0,
// unreachable blocks 0).
func domDepths(dom *analysis.DomTree) []int {
	depth := make([]int, len(dom.Idom))
	// Idom indices always precede their children in RPO; walking blocks
	// in RPO order guarantees parents are finalized first.
	for _, b := range dom.CFG.RPO {
		if p := dom.Idom[b]; p >= 0 && p != b {
			depth[b] = depth[p] + 1
		}
	}
	return depth
}

// AnalysisMeasure is HeuristicMeasure with the propagation-graph
// scores (StaticSDCProb): still a single fault-free profiling run, no
// fault injection.
func AnalysisMeasure(m *ir.Module, bind interp.Binding, exec interp.Config) (*Measurement, error) {
	golden, err := fault.RunGolden(m, bind, exec)
	if err != nil {
		return nil, err
	}
	n := m.NumInstrs()
	meas := &Measurement{
		Cost:    make([]float64, n),
		DynFrac: make([]float64, n),
		SDCProb: StaticSDCProb(m),
		Benefit: make([]float64, n),
		Golden:  golden,
	}
	totalCycles := float64(golden.Cycles)
	totalDyn := float64(golden.DynInstrs)
	for id := 0; id < n; id++ {
		meas.Cost[id] = float64(golden.Profile.InstrCycles[id]) / totalCycles
		meas.DynFrac[id] = float64(golden.Profile.InstrCount[id]) / totalDyn
		meas.Benefit[id] = meas.SDCProb[id] * meas.Cost[id]
	}
	return meas, nil
}
