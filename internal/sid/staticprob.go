package sid

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// StaticSDCProb scores every instruction of m with the static
// error-propagation graph (analysis v2): per site, the propagation
// score combines the sound masking/detection bounds (demanded bits,
// value-range absorption, provable detection) with a def-use walk to
// the site's observable sinks. It supersedes the hand-shaped
// AnalysisSDCProb heuristic as the selection-time SDC estimate; the
// static-rank experiment (cmd/experiments -exp static-rank) measures
// how well it ranks sites against fault-injection ground truth.
//
// Modules the analysis framework cannot certify (non-SSA register
// reuse) fall back to AnalysisSDCProb, whose shaping needs no SSA
// facts.
func StaticSDCProb(m *ir.Module) []float64 {
	fa := analysis.FactsFor(m)
	if fa == nil || fa.Prop == nil {
		return AnalysisSDCProb(m)
	}
	out := make([]float64, m.NumInstrs())
	for id := range out {
		s := fa.Prop.Score[id]
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		out[id] = s
	}
	return out
}
