package sid

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/passes"
)

// detKernelSrc extends the measurement kernel with masked/shifted
// values (known-bits facts for the inv detector) while keeping a loop
// comparison the cfgsig detector can protect.
const detKernelSrc = `
var data[] int;
func main(n int) {
	var s int = 0;
	var t int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		var v int = data[i % len(data)];
		var w int = (v & 63) << 2;
		s = s + w + v * 3;
		if (v > 4) { t = t + 1; }
	}
	emiti(s);
	emiti(t);
}`

func measureDetKernel(t testing.TB) (*ir.Module, interp.Binding, *Measurement) {
	t.Helper()
	m, err := minicc.Compile("dk.mc", detKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m); err != nil {
		t.Fatal(err)
	}
	bind := interp.Binding{
		Args:    []uint64{40},
		Globals: map[string][]uint64{"data": {3, 8, 1, 6, 2, 9, 4, 5}},
	}
	meas, err := Measure(m, bind, Config{FaultsPerInstr: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m, bind, meas
}

// The dup-only portfolio must reproduce the 0-1 knapsack exactly: same
// chosen sites, same coverage and cost accounting, for both methods.
func TestPortfolioDupEquivalence(t *testing.T) {
	m, _, meas := measureDetKernel(t)
	for _, method := range []Method{MethodDP, MethodGreedy} {
		for _, level := range []float64{0, 0.1, 0.3, 0.5, 0.7, 1} {
			old := Select(m, meas, level, method)
			nu := SelectPortfolio(m, meas, level, method,
				[]Detector{DefaultDetector()}, fault.DefaultModel())
			if len(old.Chosen) != len(nu.Chosen) {
				t.Fatalf("method %d level %.1f: chosen %d vs %d",
					method, level, len(old.Chosen), len(nu.Chosen))
			}
			for i := range old.Chosen {
				if old.Chosen[i] != nu.Chosen[i] {
					t.Fatalf("method %d level %.1f: chosen[%d] = %d vs %d",
						method, level, i, old.Chosen[i], nu.Chosen[i])
				}
				if nu.Detectors[i] != "dup" {
					t.Fatalf("detector[%d] = %q", i, nu.Detectors[i])
				}
			}
			if old.ExpectedCoverage != nu.ExpectedCoverage {
				t.Fatalf("coverage %v vs %v", old.ExpectedCoverage, nu.ExpectedCoverage)
			}
			if old.CostUsed != nu.CostUsed {
				t.Fatalf("cost %v vs %v", old.CostUsed, nu.CostUsed)
			}
			if old.TotalBenefit != nu.TotalBenefit {
				t.Fatalf("benefit mass %v vs %v", old.TotalBenefit, nu.TotalBenefit)
			}
		}
	}
}

// An all-dup LowerSelection must produce the identical module to the
// legacy Duplicate transform, and InstrMap the identical translation to
// ProtectedMap.
func TestLowerSelectionDupByteIdentical(t *testing.T) {
	m, _, meas := measureDetKernel(t)
	sel := Select(m, meas, 0.5, MethodDP)
	legacy := Duplicate(m, sel.Chosen)
	lowered := LowerSelection(m, sel)
	if legacy.String() != lowered.String() {
		t.Fatalf("LowerSelection(all-dup) differs from Duplicate:\n--- Duplicate\n%s\n--- LowerSelection\n%s",
			legacy.String(), lowered.String())
	}
	want := ProtectedMap(m, sel.Chosen)
	got := InstrMap(m, lowered)
	if len(want) != len(got) {
		t.Fatalf("map sizes %d vs %d", len(want), len(got))
	}
	for id, nw := range want {
		if got[id] != nw {
			t.Fatalf("map[%d] = %d, want %d", id, got[id], nw)
		}
	}
}

// Every registered detector must lower to a verifying module that
// behaves identically to the original on fault-free runs.
func TestDetectorLoweringPreservesSemantics(t *testing.T) {
	m, bind, meas := measureDetKernel(t)
	fx := FactsFor(m)
	golden := meas.Golden
	for _, d := range Detectors() {
		var chosen []int
		var names []string
		for _, in := range m.Instrs {
			if Duplicable(in) && d.Applicable(fx, in.ID) {
				chosen = append(chosen, in.ID)
				names = append(names, d.Name())
			}
		}
		if len(chosen) == 0 {
			t.Fatalf("detector %s: no applicable site in kernel", d.Name())
		}
		prot := LowerSelection(m, Selection{Chosen: chosen, Detectors: names})
		if err := ir.Verify(prot); err != nil {
			t.Fatalf("detector %s: lowered module invalid: %v", d.Name(), err)
		}
		res := interp.NewRunner(prot, interp.Config{}).Run(bind, nil, nil)
		if res.Status != interp.StatusOK {
			t.Fatalf("detector %s: fault-free run ended %s (%s)", d.Name(), res.Status, res.Trap)
		}
		if len(res.Output) != len(golden.Output) {
			t.Fatalf("detector %s: output length %d vs %d", d.Name(), len(res.Output), len(golden.Output))
		}
		for i := range res.Output {
			if res.Output[i] != golden.Output[i] {
				t.Fatalf("detector %s: output[%d] = %d, want %d",
					d.Name(), i, res.Output[i], golden.Output[i])
			}
		}
	}
}

// Cost factors must keep duplication the normalization point and the
// coverage estimates must stay within [0,1] for every model.
func TestDetectorCostCoverageBounds(t *testing.T) {
	m, _, _ := measureDetKernel(t)
	fx := FactsFor(m)
	for _, d := range Detectors() {
		for _, in := range m.Instrs {
			if !Duplicable(in) || !d.Applicable(fx, in.ID) {
				continue
			}
			if cf := d.CostFactor(fx, in.ID); cf <= 0 {
				t.Fatalf("%s cost factor %v at %d", d.Name(), cf, in.ID)
			}
			for _, mod := range fault.Models() {
				cov := d.Coverage(fx, in.ID, mod)
				if cov < 0 || cov > 1 {
					t.Fatalf("%s coverage %v under %s at %d", d.Name(), cov, mod.Name(), in.ID)
				}
			}
			if d.Name() == "dup" {
				if cf := d.CostFactor(fx, in.ID); cf != 1 {
					t.Fatalf("dup cost factor %v", cf)
				}
				if cov := d.Coverage(fx, in.ID, fault.DefaultModel()); cov != 1 {
					t.Fatalf("dup coverage %v", cov)
				}
			}
		}
	}
}

// A lowered detector must actually detect: inject a fault directly into
// a protected site's result and require a Detected (or at least
// not-SDC) outcome for the patterns the detector claims to cover.
func TestDetectorCatchesClaimedPatterns(t *testing.T) {
	m, bind, meas := measureDetKernel(t)
	fx := FactsFor(m)
	for _, d := range Detectors() {
		var chosen []int
		var names []string
		for _, in := range m.Instrs {
			if Duplicable(in) && d.Applicable(fx, in.ID) &&
				meas.Golden.Profile.InstrCount[in.ID] > 0 {
				chosen = append(chosen, in.ID)
				names = append(names, d.Name())
			}
		}
		if len(chosen) == 0 {
			t.Fatalf("detector %s: no executed applicable site", d.Name())
		}
		prot := LowerSelection(m, Selection{Chosen: chosen, Detectors: names})
		idMap := InstrMap(m, prot)
		goldenP, err := fault.RunGolden(prot, bind, interp.Config{})
		if err != nil {
			t.Fatalf("detector %s: protected golden: %v", d.Name(), err)
		}
		camp := &fault.Campaign{Mod: prot, Bind: bind, Cfg: interp.Config{},
			Golden: goldenP, Triage: fault.TriageOff}
		for _, mod := range fault.Models() {
			checked := 0
			for _, id := range chosen {
				width := m.Instrs[id].Type.Bits()
				cov := d.Coverage(fx, id, mod)
				if cov < 1 {
					// Partial coverage: pattern-level misses are
					// legitimate; the full-coverage contract below is
					// the strong check.
					continue
				}
				for _, p := range mod.Patterns(width, 8) {
					site := interp.Fault{InstrID: idMap[id], DynIndex: 0,
						Bit: p.Bit, Mask: p.Mask, Op: p.Op}
					out := camp.RunSites([]interp.Fault{site})
					if out[0] == fault.OutcomeSDC {
						t.Fatalf("detector %s claims full %s coverage at site %d but pattern mask=%#x op=%v caused an SDC",
							d.Name(), mod.Name(), id, p.Mask, p.Op)
					}
					checked++
				}
			}
			if d.Name() == "dup" && checked == 0 {
				t.Fatalf("dup: no full-coverage pattern checked under %s", mod.Name())
			}
		}
	}
}
