package sid

// Differential enforcement of the analysis-v2 triage proof classes on
// duplication-protected modules, across every benchmark and fault model.
// Three properties, matching the soundness contract in DESIGN.md §14:
//
//  1. every site triage newly prunes — ProvablyDetected (dup-detected)
//     or ProvablyMasked via the v2 proofs (range-masked,
//     store-shadowed) — is re-injected for real under the legacy
//     engine and must produce exactly the predicted outcome;
//  2. on full-DMR modules the v2 proof classes prune trials the PR-4
//     baseline (dead-value / masked-bits / dead-store only) had to
//     execute, on a majority of benchmarks, with the per-proof-class
//     accounting surfaced in PhaseMetrics;
//  3. triage never changes results: pruning campaigns return
//     bit-identical CampaignResults to unpruned ones at the same seed
//     for every execution engine and every fault model.
//
// These tests live in package sid (not fault) because building the
// protected modules needs FullDuplication and fault already sits below
// sid in the import graph.

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/interp"
)

// isNewMaskedProof reports whether a masking proof is one of the
// analysis-v2 classes absent from the PR-4 triage.
func isNewMaskedProof(p analysis.Proof) bool {
	return p == analysis.ProofRangeMasked || p == analysis.ProofStoreShadowed
}

// TestDetectProofDifferential re-injects, per benchmark and per fault
// model, the sites the v2 triage prunes without execution and checks
// the real (legacy-engine, TriageOff) outcome equals the prediction:
// OutcomeDetected for dup-detected sites, OutcomeBenign for
// range-masked and store-shadowed sites.
func TestDetectProofDifferential(t *testing.T) {
	maxPerKind := 12
	if testing.Short() {
		maxPerKind = 4
	}
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prot := FullDuplication(b.MustModule())
			bind := b.Bind(b.Reference)
			cfg := b.ExecConfig()
			cfg.Engine = interp.EngineLegacy
			golden, err := fault.RunGolden(prot, bind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tri := analysis.TriageFor(prot)
			camp := &fault.Campaign{Mod: prot, Bind: bind, Cfg: cfg,
				Golden: golden, Triage: fault.TriageOff}

			for _, mn := range fault.ModelNames() {
				model, _ := fault.ModelByName(mn)
				cl := model.Class()
				rng := rand.New(rand.NewSource(7))
				var detect, masked []interp.Fault
				for _, in := range prot.Instrs {
					if !in.IsInjectable() || golden.Profile.InstrCount[in.ID] == 0 {
						continue
					}
					for _, e := range model.Patterns(in.Type.Bits(), 3) {
						v, pf := tri.ClassifyFor(cl, in.ID, e.Bit, e.Mask)
						site := interp.Fault{
							InstrID:  in.ID,
							DynIndex: rng.Int63n(golden.Profile.InstrCount[in.ID]),
							Bit:      e.Bit, Mask: e.Mask, Op: e.Op,
						}
						switch {
						case v == analysis.VerdictProvablyDetected:
							detect = append(detect, site)
						case v == analysis.VerdictProvablyMasked && isNewMaskedProof(pf):
							masked = append(masked, site)
						}
					}
				}
				sample := func(sites []interp.Fault) []interp.Fault {
					if len(sites) > maxPerKind {
						rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
						sites = sites[:maxPerKind]
					}
					return sites
				}
				detect, masked = sample(detect), sample(masked)
				if cl.AlwaysFlips && len(detect) == 0 {
					t.Errorf("%s: no ProvablyDetected site on a full-DMR module", mn)
				}
				for i, o := range camp.RunSites(detect) {
					if o != fault.OutcomeDetected {
						s := detect[i]
						t.Errorf("UNSOUND dup-detect under %s: [%d] %s bit %d mask %#x dyn %d -> %s",
							mn, s.InstrID, prot.Instrs[s.InstrID].Op, s.Bit, s.Mask, s.DynIndex, o)
					}
				}
				for i, o := range camp.RunSites(masked) {
					if o != fault.OutcomeBenign {
						s := masked[i]
						t.Errorf("UNSOUND v2 mask under %s: [%d] %s bit %d mask %#x dyn %d -> %s",
							mn, s.InstrID, prot.Instrs[s.InstrID].Op, s.Bit, s.Mask, s.DynIndex, o)
					}
				}
			}
		})
	}
}

// TestTriagePrunesNewProofClassesAcrossBenchmarks runs a pruning
// campaign on every benchmark's full-DMR module and requires the v2
// proof classes to account for pruned trials on a majority of the
// suite — the sites a PR-4 triage (whole-value and known-bits proofs
// only) had to execute. The per-class counts come from the campaign's
// own PhaseMetrics, so the accounting path is exercised end to end.
func TestTriagePrunesNewProofClassesAcrossBenchmarks(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 40
	}
	benches := benchprog.All()
	newClassBenches := 0
	for _, b := range benches {
		prot := FullDuplication(b.MustModule())
		bind := b.Bind(b.Reference)
		cfg := b.ExecConfig()
		golden, err := fault.RunGolden(prot, bind, cfg)
		if err != nil {
			t.Fatalf("%s: golden: %v", b.Name, err)
		}
		pm := fault.NewMetrics().Phase(b.Name)
		camp := &fault.Campaign{Mod: prot, Bind: bind, Cfg: cfg,
			Golden: golden, Triage: fault.TriageAuto, Metrics: pm}
		camp.Run(trials, 42)
		snap := pm.Snapshot()
		var fromNew int64
		for proof, n := range snap.PrunedByProof {
			switch proof {
			case analysis.ProofDupDetected.String(),
				analysis.ProofRangeMasked.String(),
				analysis.ProofStoreShadowed.String():
				fromNew += n
			}
		}
		if fromNew > 0 {
			newClassBenches++
		}
		t.Logf("%s: pruned %d/%d trials, %d via v2 proofs (%v)",
			b.Name, snap.Pruned, trials, fromNew, snap.PrunedByProof)
	}
	if want := (len(benches) + 1) / 2; newClassBenches < want {
		t.Errorf("v2 proof classes pruned trials on %d of %d benchmarks, want >= %d",
			newClassBenches, len(benches), want)
	}
}

// TestProtectedTriageEquivalenceEnginesModels pins result purity on a
// protected module: for every execution engine and every fault model, a
// TriageAuto campaign returns a CampaignResult bit-identical to the
// TriageOff campaign at the same seed. Detection pruning makes this the
// sharpest version of the equivalence — a dup-detected site counted
// without execution must match what the detector would really report.
func TestProtectedTriageEquivalenceEnginesModels(t *testing.T) {
	var bench *benchprog.Benchmark
	for _, b := range benchprog.All() {
		if b.Name == "pathfinder" {
			bench = b
		}
	}
	prot := FullDuplication(bench.MustModule())
	bind := bench.Bind(bench.Reference)
	engines := map[string]interp.Engine{
		"image":    interp.EngineImage,
		"legacy":   interp.EngineLegacy,
		"compiled": interp.EngineCompiled,
	}
	trials := 60
	if testing.Short() {
		trials = 20
	}
	for en, eng := range engines {
		cfg := bench.ExecConfig()
		cfg.Engine = eng
		golden, err := fault.RunGolden(prot, bind, cfg)
		if err != nil {
			t.Fatalf("%s: golden: %v", en, err)
		}
		for _, mn := range fault.ModelNames() {
			model, _ := fault.ModelByName(mn)
			t.Run(en+"/"+mn, func(t *testing.T) {
				on := &fault.Campaign{Mod: prot, Bind: bind, Cfg: cfg,
					Golden: golden, Model: model, Triage: fault.TriageAuto}
				off := &fault.Campaign{Mod: prot, Bind: bind, Cfg: cfg,
					Golden: golden, Model: model, Triage: fault.TriageOff}
				if ron, roff := on.Run(trials, 42), off.Run(trials, 42); ron != roff {
					t.Fatalf("triage changed the %s/%s campaign result:\n  on:  %+v\n  off: %+v",
						en, mn, ron, roff)
				}
			})
		}
	}
}
