package benchprog

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
)

// runRef runs a benchmark on its reference input.
func runRef(t *testing.T, b *Benchmark) interp.Result {
	t.Helper()
	m, err := b.Module()
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	r := interp.NewRunner(m, b.ExecConfig())
	return r.Run(b.Bind(b.Reference), nil, nil)
}

func TestAllBenchmarksCompileAndRunOnReference(t *testing.T) {
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			res := runRef(t, b)
			if res.Status != interp.StatusOK {
				t.Fatalf("status = %v (trap %q)", res.Status, res.Trap)
			}
			if len(res.Output) == 0 {
				t.Fatal("no output emitted")
			}
			if res.DynInstrs > b.MaxGoldenInstrs {
				t.Fatalf("reference run used %d instrs, budget %d", res.DynInstrs, b.MaxGoldenInstrs)
			}
			if res.DynInstrs < 2000 {
				t.Fatalf("reference run too small to be interesting: %d instrs", res.DynInstrs)
			}
			t.Logf("%s: %d instrs, %d cycles, %d outputs", b.Name, res.DynInstrs, res.Cycles, len(res.Output))
		})
	}
}

func TestElevenMatchesPaperTable(t *testing.T) {
	names := map[string]string{
		"pathfinder": "Rodinia", "knn": "Rodinia", "bfs": "Rodinia",
		"backprop": "Rodinia", "needle": "Rodinia", "kmeans": "Rodinia",
		"lu": "Rodinia", "particlefilter": "Rodinia",
		"hpccg": "Mantevo", "xsbench": "CESAR", "fft": "SPLASH-2",
	}
	eleven := Eleven()
	if len(eleven) != 11 {
		t.Fatalf("Eleven() returned %d benchmarks", len(eleven))
	}
	for _, b := range eleven {
		suite, ok := names[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if b.Suite != suite {
			t.Errorf("%s suite = %q, want %q", b.Name, b.Suite, suite)
		}
	}
	if _, ok := ByName("fft-mt"); !ok {
		t.Error("fft-mt missing from registry")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent benchmark")
	}
}

func TestRandomInputsAreAdmissible(t *testing.T) {
	// Paper §III-A2: generated inputs must not error out and must stay
	// within the dynamic-instruction budget. Validate a sample per
	// benchmark.
	rng := rand.New(rand.NewSource(99))
	for _, b := range Eleven() {
		t.Run(b.Name, func(t *testing.T) {
			m := b.MustModule()
			r := interp.NewRunner(m, b.ExecConfig())
			bad := 0
			for i := 0; i < 8; i++ {
				in := b.Spec.Random(rng)
				if err := b.Spec.Validate(in); err != nil {
					t.Fatalf("generated invalid input: %v", err)
				}
				res := r.Run(b.Bind(in), nil, nil)
				if res.Status != interp.StatusOK {
					bad++
					t.Logf("input %s -> %v (%s)", b.Spec.String(in), res.Status, res.Trap)
				}
			}
			if bad > 0 {
				t.Fatalf("%d/8 random inputs failed (inputs must be admissible by construction)", bad)
			}
		})
	}
}

func TestDifferentInputsChangeExecution(t *testing.T) {
	// The premise of the paper: execution behavior (paths, outputs) is
	// input dependent. Check that two different inputs give different
	// dynamic profiles for every benchmark.
	rng := rand.New(rand.NewSource(7))
	for _, b := range Eleven() {
		t.Run(b.Name, func(t *testing.T) {
			m := b.MustModule()
			r := interp.NewRunner(m, b.ExecConfig())
			a := r.Run(b.Bind(b.Reference), nil, nil)
			in2 := b.Spec.Random(rng)
			c := r.Run(b.Bind(in2), nil, nil)
			if a.DynInstrs == c.DynInstrs && outputEqual(a.Output, c.Output) {
				t.Errorf("reference and random input produced identical executions (input %s)", b.Spec.String(in2))
			}
		})
	}
}

func outputEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBindIsDeterministic(t *testing.T) {
	for _, b := range All() {
		b1 := b.Bind(b.Reference)
		b2 := b.Bind(b.Reference)
		if len(b1.Args) != len(b2.Args) {
			t.Fatalf("%s: arg count differs", b.Name)
		}
		for i := range b1.Args {
			if b1.Args[i] != b2.Args[i] {
				t.Fatalf("%s: arg %d differs across binds", b.Name, i)
			}
		}
		for name, g1 := range b1.Globals {
			g2 := b2.Globals[name]
			if !outputEqual(g1, g2) {
				t.Fatalf("%s: global %s differs across binds", b.Name, name)
			}
		}
	}
}

func TestFFTCorrectness(t *testing.T) {
	// FFT of a constant signal concentrates all energy in bin 0:
	// re[0] = n*c, all other bins ~0.
	b, _ := ByName("fft")
	m := b.MustModule()
	n := int64(64) // m = 6
	re := make([]float64, n)
	for i := range re {
		re[i] = 1.0
	}
	bind := interp.Binding{
		Args: []uint64{6},
		Globals: map[string][]uint64{
			"re": floats(re), "im": zeros(n),
		},
	}
	r := interp.NewRunner(m, b.ExecConfig())
	res := r.Run(bind, nil, nil)
	if res.Status != interp.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	// Output: sum(re), sum(im), re[1], im[n/2].
	sr := math.Float64frombits(res.Output[0])
	re1 := math.Float64frombits(res.Output[2])
	if math.Abs(sr-float64(n)) > 1e-6 {
		t.Errorf("sum(re) = %g, want %g", sr, float64(n))
	}
	if math.Abs(re1) > 1e-6 {
		t.Errorf("re[1] = %g, want 0", re1)
	}
}

func TestFFTMTMatchesSingleThread(t *testing.T) {
	st, _ := ByName("fft")
	mt, _ := ByName("fft-mt")
	mST := st.MustModule()
	mMT := mt.MustModule()

	for _, nt := range []int64{1, 2, 4} {
		inST := st.Reference.Clone()
		inST.I[0], inST.I[1] = 6, 4242
		reST := interp.NewRunner(mST, st.ExecConfig()).Run(st.Bind(inST), nil, nil)

		inMT := mt.Reference.Clone()
		inMT.I[0], inMT.I[1], inMT.I[2] = 6, nt, 4242
		reMT := interp.NewRunner(mMT, mt.ExecConfig()).Run(mt.Bind(inMT), nil, nil)

		if reMT.Status != interp.StatusOK {
			t.Fatalf("nt=%d: status %v (%s)", nt, reMT.Status, reMT.Trap)
		}
		// First two outputs (sum re, sum im) must agree bit-exactly: the
		// threads partition the butterflies deterministically.
		for i := 0; i < 2; i++ {
			if reST.Output[i] != reMT.Output[i] {
				t.Errorf("nt=%d output[%d]: %x vs %x", nt, i,
					reST.Output[i], reMT.Output[i])
			}
		}
	}
}

func TestLUComputesCorrectDeterminant(t *testing.T) {
	// 2x2 known case via direct binding: [[3,1],[1,2]] -> det 5.
	b, _ := ByName("lu")
	m := b.MustModule()
	bind := interp.Binding{
		Args:    []uint64{2},
		Globals: map[string][]uint64{"a": floats([]float64{3, 1, 1, 2})},
	}
	r := interp.NewRunner(m, b.ExecConfig())
	res := r.Run(bind, nil, nil)
	det := math.Float64frombits(res.Output[0])
	if math.Abs(det-5) > 1e-9 {
		t.Fatalf("det = %g, want 5", det)
	}
}

func TestBFSVisitsReachableNodes(t *testing.T) {
	// A 4-node path graph 0->1->2->3: all visited, dist sum = 0+1+2+3.
	b, _ := ByName("bfs")
	m := b.MustModule()
	g := GraphCSR{Off: []int64{0, 1, 2, 3, 3}, Edges: []int64{1, 2, 3}}
	r := interp.NewRunner(m, b.ExecConfig())
	res := r.Run(BindBFS(g, 0), nil, nil)
	if res.Status != interp.StatusOK {
		t.Fatalf("status %v (%s)", res.Status, res.Trap)
	}
	if int64(res.Output[0]) != 4 || int64(res.Output[1]) != 6 {
		t.Fatalf("bfs output = %v, want [4 6]", res.Output)
	}
}

func TestPathfinderMinimumPath(t *testing.T) {
	// 2x3 grid where column 1 is cheap: min path = 1+1 = 2.
	b, _ := ByName("pathfinder")
	m := b.MustModule()
	bind := interp.Binding{
		Args:    []uint64{2, 3},
		Globals: map[string][]uint64{"wall": ints([]int64{9, 1, 9, 9, 1, 9})},
	}
	r := interp.NewRunner(m, b.ExecConfig())
	res := r.Run(bind, nil, nil)
	if int64(res.Output[0]) != 2 {
		t.Fatalf("min path = %d, want 2", int64(res.Output[0]))
	}
}

func TestGoldenRunsProduceProfiles(t *testing.T) {
	for _, b := range Eleven() {
		m := b.MustModule()
		g, err := fault.RunGolden(m, b.Bind(b.Reference), b.ExecConfig())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		ids := m.InjectableIDs(true)
		executed := 0
		for _, id := range ids {
			if g.Profile.InstrCount[id] > 0 {
				executed++
			}
		}
		if executed < 20 {
			t.Errorf("%s: only %d injectable instructions executed", b.Name, executed)
		}
	}
}

func TestRngHelpers(t *testing.T) {
	r := newRng(1)
	for i := 0; i < 1000; i++ {
		if f := r.f64(); f < 0 || f >= 1 {
			t.Fatalf("f64 out of range: %f", f)
		}
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	// norm should be roughly centered.
	var sum float64
	for i := 0; i < 10000; i++ {
		sum += r.norm()
	}
	if math.Abs(sum/10000) > 0.1 {
		t.Errorf("norm mean = %f, want ~0", sum/10000)
	}
	// Different seeds diverge.
	a, b := newRng(1), newRng(2)
	if a.next() == b.next() {
		t.Error("different seeds produced identical first draw")
	}
}

func TestBenchmarkModulesRoundTripThroughIRText(t *testing.T) {
	// print -> parse -> verify -> identical text and identical execution,
	// for every benchmark module (post-optimization, phi-bearing IR).
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			m := b.MustModule()
			text := m.String()
			parsed, err := ir.ParseModule(text)
			if err != nil {
				t.Fatalf("ParseModule: %v", err)
			}
			if err := ir.Verify(parsed); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if got := parsed.String(); got != text {
				t.Fatal("round trip changed module text")
			}
			bind := b.Bind(b.Reference)
			a := interp.NewRunner(m, b.ExecConfig()).Run(bind, nil, nil)
			c := interp.NewRunner(parsed, b.ExecConfig()).Run(bind, nil, nil)
			if a.Status != c.Status || a.DynInstrs != c.DynInstrs || !outputEqual(a.Output, c.Output) {
				t.Fatalf("parsed module executes differently: %v/%d vs %v/%d",
					a.Status, a.DynInstrs, c.Status, c.DynInstrs)
			}
		})
	}
}

func TestFaultOutcomeDistributionsAreSane(t *testing.T) {
	// For every benchmark, a small FI campaign on the reference input must
	// produce a sane outcome mix: trials conserved, a nonzero manifestation
	// rate (not everything benign), no detections (unprotected code), and
	// SDC rates within the broad band IR-level studies report.
	for _, b := range Eleven() {
		t.Run(b.Name, func(t *testing.T) {
			m := b.MustModule()
			bind := b.Bind(b.Reference)
			g, err := fault.RunGolden(m, bind, b.ExecConfig())
			if err != nil {
				t.Fatal(err)
			}
			c := &fault.Campaign{Mod: m, Bind: bind, Cfg: b.ExecConfig(), Golden: g}
			res := c.Run(250, 7)
			if res.Trials != 250 {
				t.Fatalf("trials = %d", res.Trials)
			}
			var total int64
			for _, n := range res.Counts {
				total += n
			}
			if total != res.Trials {
				t.Fatalf("outcome counts %v do not sum to trials", res.Counts)
			}
			if res.Counts[fault.OutcomeDetected] != 0 {
				t.Error("detected outcomes on unprotected program")
			}
			sdc := res.Rate(fault.OutcomeSDC)
			if sdc < 0.02 || sdc > 0.90 {
				t.Errorf("SDC rate %.3f outside the plausible band", sdc)
			}
			if res.Rate(fault.OutcomeBenign) == 0 {
				t.Error("no benign outcomes at all")
			}
			t.Logf("%s: sdc=%.2f crash=%.2f hang=%.2f benign=%.2f",
				b.Name, sdc, res.Rate(fault.OutcomeCrash),
				res.Rate(fault.OutcomeHang), res.Rate(fault.OutcomeBenign))
		})
	}
}
