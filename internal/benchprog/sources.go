package benchprog

// MiniC sources for the 11 benchmarks of the paper (Table I), re-implemented
// at reduced problem sizes. Each preserves the original kernel's algorithm
// and control structure; array data and scratch buffers are bound from the
// input generator at run time.

// srcPathfinder: Rodinia Pathfinder — dynamic programming over a grid,
// keeping a rolling pair of row-cost buffers.
const srcPathfinder = `
var wall[] int;     // rows*cols grid weights
var rsrc[64] int;   // previous row costs (cols <= 48)
var rdst[64] int;   // current row costs

func imin2(a int, b int) int {
	if (a < b) { return a; }
	return b;
}

func main(rows int, cols int) {
	for (var j int = 0; j < cols; j = j + 1) {
		rdst[j] = wall[j];
	}
	for (var i int = 1; i < rows; i = i + 1) {
		for (var j int = 0; j < cols; j = j + 1) {
			rsrc[j] = rdst[j];
		}
		for (var j int = 0; j < cols; j = j + 1) {
			var best int = rsrc[j];
			if (j > 0) { best = imin2(best, rsrc[j - 1]); }
			if (j < cols - 1) { best = imin2(best, rsrc[j + 1]); }
			rdst[j] = wall[i * cols + j] + best;
		}
	}
	var mn int = rdst[0];
	var sum int = 0;
	for (var j int = 0; j < cols; j = j + 1) {
		sum = sum + rdst[j];
		mn = imin2(mn, rdst[j]);
	}
	emiti(mn);
	emiti(sum);
}
`

// srcKNN: Rodinia kNN — Euclidean distances to a query point, then k
// rounds of minimum selection.
const srcKNN = `
var px[] float;       // point x coordinates
var py[] float;       // point y coordinates
var dist[256] float;  // computed distances (n <= 256)
var used[256] int;    // selection marks

func main(n int, k int, qx float, qy float) {
	for (var i int = 0; i < n; i = i + 1) {
		var dx float = px[i] - qx;
		var dy float = py[i] - qy;
		dist[i] = sqrt(dx * dx + dy * dy);
		used[i] = 0;
	}
	var acc float = 0.0;
	var idxsum int = 0;
	for (var j int = 0; j < k; j = j + 1) {
		var best int = 0;
		var bestd float = 1.0e300;
		for (var i int = 0; i < n; i = i + 1) {
			if (used[i] == 0 && dist[i] < bestd) {
				bestd = dist[i];
				best = i;
			}
		}
		used[best] = 1;
		acc = acc + bestd;
		idxsum = idxsum + best;
	}
	emitf(acc);
	emiti(idxsum);
}
`

// srcBFS: Rodinia BFS — frontier-queue breadth-first search over a CSR
// graph.
const srcBFS = `
var off[] int;    // CSR row offsets, length n+1
var edges[] int;  // CSR adjacency
var dst[] int;    // distance per node (scratch, length n)
var queue[] int;  // worklist (scratch, length n)

func main(n int, src int) {
	for (var i int = 0; i < n; i = i + 1) {
		dst[i] = 0 - 1;
	}
	dst[src] = 0;
	queue[0] = src;
	var head int = 0;
	var tail int = 1;
	while (head < tail) {
		var u int = queue[head];
		head = head + 1;
		for (var e int = off[u]; e < off[u + 1]; e = e + 1) {
			var v int = edges[e];
			if (dst[v] < 0) {
				dst[v] = dst[u] + 1;
				queue[tail] = v;
				tail = tail + 1;
			}
		}
	}
	var visited int = 0;
	var sum int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		if (dst[i] >= 0) {
			visited = visited + 1;
			sum = sum + dst[i];
		}
	}
	emiti(visited);
	emiti(sum);
}
`

// srcBackprop: Rodinia Backprop — one forward and one backward pass of a
// single-hidden-layer network on one sample.
const srcBackprop = `
var input[] float;    // ni activations
var w1[] float;       // ni*nh input->hidden weights
var w2[] float;       // nh hidden->output weights
var hidden[64] float; // hidden activations (nh <= 64)

func sigmoid(x float) float {
	return 1.0 / (1.0 + exp(0.0 - x));
}

func main(ni int, nh int, target float, eta float) {
	for (var j int = 0; j < nh; j = j + 1) {
		var s float = 0.0;
		for (var i int = 0; i < ni; i = i + 1) {
			s = s + input[i] * w1[i * nh + j];
		}
		hidden[j] = sigmoid(s);
	}
	var out float = 0.0;
	for (var j int = 0; j < nh; j = j + 1) {
		out = out + hidden[j] * w2[j];
	}
	out = sigmoid(out);

	var delta float = (target - out) * out * (1.0 - out);
	for (var j int = 0; j < nh; j = j + 1) {
		var dh float = delta * w2[j] * hidden[j] * (1.0 - hidden[j]);
		w2[j] = w2[j] + eta * delta * hidden[j];
		for (var i int = 0; i < ni; i = i + 1) {
			w1[i * nh + j] = w1[i * nh + j] + eta * dh * input[i];
		}
	}
	var c1 float = 0.0;
	for (var i int = 0; i < ni * nh; i = i + 1) { c1 = c1 + w1[i]; }
	var c2 float = 0.0;
	for (var j int = 0; j < nh; j = j + 1) { c2 = c2 + w2[j]; }
	emitf(out);
	emitf(c1);
	emitf(c2);
}
`

// srcNeedle: Rodinia Needleman-Wunsch — global sequence alignment by
// dynamic programming with a gap penalty.
const srcNeedle = `
var seq1[] int;  // n symbols in [0,4)
var seq2[] int;  // n symbols in [0,4)
var mat[] int;   // (n+1)*(n+1) score matrix (scratch)

func imax2(a int, b int) int {
	if (a > b) { return a; }
	return b;
}

func main(n int, penalty int) {
	var w int = n + 1;
	for (var i int = 0; i <= n; i = i + 1) {
		mat[i] = 0 - i * penalty;
		mat[i * w] = 0 - i * penalty;
	}
	for (var i int = 1; i <= n; i = i + 1) {
		for (var j int = 1; j <= n; j = j + 1) {
			var sc int = 0 - 1;
			if (seq1[i - 1] == seq2[j - 1]) { sc = 2; }
			var diag int = mat[(i - 1) * w + j - 1] + sc;
			var up int = mat[(i - 1) * w + j] - penalty;
			var left int = mat[i * w + j - 1] - penalty;
			mat[i * w + j] = imax2(diag, imax2(up, left));
		}
	}
	emiti(mat[n * w + n]);
	var sum int = 0;
	for (var j int = 0; j <= n; j = j + 1) {
		sum = sum + mat[n * w + j];
	}
	emiti(sum);
}
`

// srcKmeans: Rodinia Kmeans — Lloyd's algorithm on 2-D points.
const srcKmeans = `
var fx[] float;      // point x coordinates
var fy[] float;      // point y coordinates
var assign[] int;    // cluster assignment per point (scratch)
var cx[16] float;    // centroid x (k <= 16)
var cy[16] float;
var sx[16] float;    // per-iteration accumulators
var sy[16] float;
var cnt[16] int;

func main(n int, k int, iters int) {
	for (var j int = 0; j < k; j = j + 1) {
		cx[j] = fx[j];
		cy[j] = fy[j];
	}
	for (var it int = 0; it < iters; it = it + 1) {
		for (var j int = 0; j < k; j = j + 1) {
			sx[j] = 0.0;
			sy[j] = 0.0;
			cnt[j] = 0;
		}
		for (var i int = 0; i < n; i = i + 1) {
			var best int = 0;
			var bd float = 1.0e300;
			for (var j int = 0; j < k; j = j + 1) {
				var dx float = fx[i] - cx[j];
				var dy float = fy[i] - cy[j];
				var d float = dx * dx + dy * dy;
				if (d < bd) {
					bd = d;
					best = j;
				}
			}
			assign[i] = best;
			sx[best] = sx[best] + fx[i];
			sy[best] = sy[best] + fy[i];
			cnt[best] = cnt[best] + 1;
		}
		for (var j int = 0; j < k; j = j + 1) {
			if (cnt[j] > 0) {
				cx[j] = sx[j] / float(cnt[j]);
				cy[j] = sy[j] / float(cnt[j]);
			}
		}
	}
	var asum int = 0;
	for (var i int = 0; i < n; i = i + 1) { asum = asum + assign[i]; }
	var csum float = 0.0;
	for (var j int = 0; j < k; j = j + 1) { csum = csum + cx[j] + cy[j]; }
	emiti(asum);
	emitf(csum);
}
`

// srcLU: Rodinia LUD — in-place LU decomposition without pivoting on a
// diagonally dominant matrix.
const srcLU = `
var a[] float;  // n*n matrix, row major

func main(n int) {
	for (var k int = 0; k < n; k = k + 1) {
		for (var i int = k + 1; i < n; i = i + 1) {
			a[i * n + k] = a[i * n + k] / a[k * n + k];
			for (var j int = k + 1; j < n; j = j + 1) {
				a[i * n + j] = a[i * n + j] - a[i * n + k] * a[k * n + j];
			}
		}
	}
	var det float = 1.0;
	for (var k int = 0; k < n; k = k + 1) {
		det = det * a[k * n + k];
	}
	var sum float = 0.0;
	for (var i int = 0; i < n * n; i = i + 1) {
		sum = sum + a[i];
	}
	emitf(det);
	emitf(sum);
}
`

// srcParticlefilter: Rodinia Particlefilter — 1-D Bayesian tracking with
// Gaussian likelihood weights and systematic resampling.
const srcParticlefilter = `
var noise[] float;  // t*n process noise
var meas[] float;   // t measurements
var xs[] float;     // n particle states (scratch)
var ws[] float;     // n weights (scratch)
var xs2[] float;    // n resampling buffer (scratch)

func main(n int, t int, x0 float) {
	for (var i int = 0; i < n; i = i + 1) {
		xs[i] = x0;
	}
	for (var f int = 0; f < t; f = f + 1) {
		for (var i int = 0; i < n; i = i + 1) {
			xs[i] = xs[i] + 1.0 + noise[f * n + i];
		}
		var wsum float = 0.0;
		for (var i int = 0; i < n; i = i + 1) {
			var d float = xs[i] - meas[f];
			ws[i] = exp(0.0 - d * d / 2.0) + 1.0e-12;
			wsum = wsum + ws[i];
		}
		var est float = 0.0;
		for (var i int = 0; i < n; i = i + 1) {
			ws[i] = ws[i] / wsum;
			est = est + xs[i] * ws[i];
		}
		emitf(est);
		// Systematic resampling.
		var c float = ws[0];
		var idx int = 0;
		for (var j int = 0; j < n; j = j + 1) {
			var u float = (float(j) + 0.5) / float(n);
			while (c < u && idx < n - 1) {
				idx = idx + 1;
				c = c + ws[idx];
			}
			xs2[j] = xs[idx];
		}
		for (var i int = 0; i < n; i = i + 1) {
			xs[i] = xs2[i];
		}
	}
}
`

// srcHPCCG: Mantevo HPCCG — conjugate gradient on an implicit 27/7-point
// 3-D chimney-domain stencil (7-point variant).
const srcHPCCG = `
var b[] float;   // rhs, length nx*ny*nz
var x[] float;   // solution (scratch)
var r[] float;   // residual (scratch)
var p[] float;   // search direction (scratch)
var ap[] float;  // A*p (scratch)

func spmv(nx int, ny int, nz int) {
	for (var k int = 0; k < nz; k = k + 1) {
		for (var j int = 0; j < ny; j = j + 1) {
			for (var i int = 0; i < nx; i = i + 1) {
				var id int = (k * ny + j) * nx + i;
				var s float = 7.0 * p[id];
				if (i > 0) { s = s - p[id - 1]; }
				if (i < nx - 1) { s = s - p[id + 1]; }
				if (j > 0) { s = s - p[id - nx]; }
				if (j < ny - 1) { s = s - p[id + nx]; }
				if (k > 0) { s = s - p[id - nx * ny]; }
				if (k < nz - 1) { s = s - p[id + nx * ny]; }
				ap[id] = s;
			}
		}
	}
}

func main(nx int, ny int, nz int, maxiter int) {
	var n int = nx * ny * nz;
	var rtr float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		x[i] = 0.0;
		r[i] = b[i];
		p[i] = b[i];
		rtr = rtr + r[i] * r[i];
	}
	for (var it int = 0; it < maxiter; it = it + 1) {
		spmv(nx, ny, nz);
		var pap float = 0.0;
		for (var i int = 0; i < n; i = i + 1) {
			pap = pap + p[i] * ap[i];
		}
		var alpha float = rtr / pap;
		var rtr2 float = 0.0;
		for (var i int = 0; i < n; i = i + 1) {
			x[i] = x[i] + alpha * p[i];
			r[i] = r[i] - alpha * ap[i];
			rtr2 = rtr2 + r[i] * r[i];
		}
		var beta float = rtr2 / rtr;
		rtr = rtr2;
		for (var i int = 0; i < n; i = i + 1) {
			p[i] = r[i] + beta * p[i];
		}
		if (rtr < 1.0e-12) { break; }
	}
	var xsum float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		xsum = xsum + x[i];
	}
	emitf(rtr);
	emitf(xsum);
}
`

// srcXsbench: CESAR XSBench — macroscopic cross-section lookups: binary
// search over a unionized energy grid plus linear interpolation per
// nuclide.
const srcXsbench = `
var egrid[] float;   // gp sorted energies in [0,1]
var xsdata[] float;  // nuc*gp cross sections
var lookups[] float; // L lookup energies in [0,1)

func main(L int, nuc int, gp int) {
	var acc float = 0.0;
	for (var l int = 0; l < L; l = l + 1) {
		var e float = lookups[l];
		var lo int = 0;
		var hi int = gp - 1;
		while (hi - lo > 1) {
			var mid int = (lo + hi) / 2;
			if (egrid[mid] > e) {
				hi = mid;
			} else {
				lo = mid;
			}
		}
		var f float = (e - egrid[lo]) / (egrid[hi] - egrid[lo]);
		for (var m int = 0; m < nuc; m = m + 1) {
			var v float = xsdata[m * gp + lo] * (1.0 - f) + xsdata[m * gp + hi] * f;
			acc = acc + v;
		}
	}
	emitf(acc);
}
`

// srcFFT: SPLASH-2 FFT — iterative radix-2 decimation-in-time transform
// with bit-reversal permutation.
const srcFFT = `
var re[] float;  // real parts, length 1<<m
var im[] float;  // imaginary parts

func main(m int) {
	var n int = 1 << m;
	// Bit-reversal permutation.
	var j int = 0;
	for (var i int = 0; i < n - 1; i = i + 1) {
		if (i < j) {
			var tr float = re[i]; re[i] = re[j]; re[j] = tr;
			var ti float = im[i]; im[i] = im[j]; im[j] = ti;
		}
		var k int = n >> 1;
		while (k <= j && k > 0) {
			j = j - k;
			k = k >> 1;
		}
		j = j + k;
	}
	// Butterfly stages.
	var le int = 1;
	for (var s int = 0; s < m; s = s + 1) {
		var le2 int = le * 2;
		var ang float = (0.0 - 3.14159265358979323846) / float(le);
		for (var g int = 0; g < le; g = g + 1) {
			var wr float = cos(ang * float(g));
			var wi float = sin(ang * float(g));
			for (var p int = g; p < n; p = p + le2) {
				var q int = p + le;
				var tr float = wr * re[q] - wi * im[q];
				var ti float = wr * im[q] + wi * re[q];
				re[q] = re[p] - tr;
				im[q] = im[p] - ti;
				re[p] = re[p] + tr;
				im[p] = im[p] + ti;
			}
		}
		le = le2;
	}
	var sr float = 0.0;
	var si float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		sr = sr + re[i];
		si = si + im[i];
	}
	emitf(sr);
	emitf(si);
	emitf(re[1]);
	emitf(im[n / 2]);
}
`

// srcFFTMT: multi-threaded FFT (paper §VIII-B) — the same butterfly
// kernel with the twiddle groups of each stage split across simulated
// threads, synchronized per stage.
const srcFFTMT = `
var re[] float;
var im[] float;

// stage runs the butterflies of twiddle groups g = tid, tid+nt, ... for
// the stage with half-size le on an n-point transform.
func stage(tid int, nt int, le int, n int) {
	var le2 int = le * 2;
	var ang float = (0.0 - 3.14159265358979323846) / float(le);
	for (var g int = tid; g < le; g = g + nt) {
		var wr float = cos(ang * float(g));
		var wi float = sin(ang * float(g));
		for (var p int = g; p < n; p = p + le2) {
			var q int = p + le;
			var tr float = wr * re[q] - wi * im[q];
			var ti float = wr * im[q] + wi * re[q];
			re[q] = re[p] - tr;
			im[q] = im[p] - ti;
			re[p] = re[p] + tr;
			im[p] = im[p] + ti;
		}
	}
}

func main(m int, nt int) {
	var n int = 1 << m;
	var j int = 0;
	for (var i int = 0; i < n - 1; i = i + 1) {
		if (i < j) {
			var tr float = re[i]; re[i] = re[j]; re[j] = tr;
			var ti float = im[i]; im[i] = im[j]; im[j] = ti;
		}
		var k int = n >> 1;
		while (k <= j && k > 0) {
			j = j - k;
			k = k >> 1;
		}
		j = j + k;
	}
	var le int = 1;
	for (var s int = 0; s < m; s = s + 1) {
		for (var t int = 0; t < nt; t = t + 1) {
			spawn stage(t, nt, le, n);
		}
		sync;
		le = le * 2;
	}
	var sr float = 0.0;
	var si float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		sr = sr + re[i];
		si = si + im[i];
	}
	emitf(sr);
	emitf(si);
}
`
