// Package benchprog provides the 11 HPC benchmarks of the paper (Table I)
// re-implemented in MiniC at laptop-scale problem sizes, together with
// their input spaces (inputgen specs), reference inputs, and the binders
// that turn an abstract input vector into concrete program arguments and
// array data.
//
// Dataset-like inputs (grids, graphs, matrices, point sets) are derived
// from a seed parameter by deterministic generators, mirroring the
// dataset-randomizing scripts shipped with the original suites (§III-A2).
package benchprog

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/passes"
)

// Benchmark is one program under study.
type Benchmark struct {
	Name        string
	Suite       string
	Description string
	Source      string         // MiniC source
	Spec        *inputgen.Spec // input parameter space
	Reference   inputgen.Input // the suite's reference input
	Bind        func(in inputgen.Input) interp.Binding
	// MaxGoldenInstrs is the dynamic-instruction budget an input must stay
	// under to be admissible (the paper's 40-billion cap, scaled down).
	MaxGoldenInstrs int64

	once sync.Once
	mod  *ir.Module
	err  error
}

// Module returns the compiled, optimized IR module (cached).
func (b *Benchmark) Module() (*ir.Module, error) {
	b.once.Do(func() {
		m, err := minicc.Compile(b.Name+".mc", b.Source)
		if err != nil {
			b.err = fmt.Errorf("benchprog %s: %w", b.Name, err)
			return
		}
		if err := passes.Optimize(m); err != nil {
			b.err = fmt.Errorf("benchprog %s: %w", b.Name, err)
			return
		}
		b.mod = m
	})
	return b.mod, b.err
}

// MustModule is Module for known-good embedded benchmarks.
func (b *Benchmark) MustModule() *ir.Module {
	m, err := b.Module()
	if err != nil {
		panic(err)
	}
	return m
}

// ExecConfig returns the interpreter bounds for golden runs of this
// benchmark.
func (b *Benchmark) ExecConfig() interp.Config {
	return interp.Config{MaxDynInstrs: b.MaxGoldenInstrs}
}

// rng is a splitmix64 generator: deterministic dataset derivation from an
// input's seed parameter.
type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*2685821657736338717 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform float in [0,1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform integer in [0,n).
func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// norm returns an approximately standard-normal variate (Irwin-Hall sum
// of 12 uniforms), deterministic and branch-free.
func (r *rng) norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.f64()
	}
	return s - 6
}

// floats converts a float slice to raw output/global words.
func floats(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = math.Float64bits(x)
	}
	return out
}

// ints converts an int slice to raw words.
func ints(xs []int64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func zeros(n int64) []uint64 { return make([]uint64, n) }

// fbits packs a float argument.
func fbits(x float64) uint64 { return math.Float64bits(x) }

// All returns the benchmark registry: the paper's 11 programs (Table I)
// plus the multi-threaded FFT used in §VIII-B.
func All() []*Benchmark { return registry }

// Eleven returns only the 11 single-threaded benchmarks of Table I.
func Eleven() []*Benchmark { return registry[:11] }

// ByName resolves a benchmark by name.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

var registry = []*Benchmark{
	pathfinderBench(),
	knnBench(),
	bfsBench(),
	backpropBench(),
	needleBench(),
	kmeansBench(),
	luBench(),
	particlefilterBench(),
	hpccgBench(),
	xsbenchBench(),
	fftBench(),
	fftMTBench(),
}

func pathfinderBench() *Benchmark {
	return &Benchmark{
		Name:        "pathfinder",
		Suite:       "Rodinia",
		Description: "Use dynamic programming to find a path in grid",
		Source:      srcPathfinder,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("rows", 8, 32),
			inputgen.IntParam("cols", 16, 48),
			inputgen.IntParam("maxw", 5, 20),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{16, 32, 10, 12345}, F: make([]float64, 4)},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			rows, cols, maxw, seed := in.I[0], in.I[1], in.I[2], in.I[3]
			r := newRng(seed)
			wall := make([]int64, rows*cols)
			for i := range wall {
				wall[i] = 1 + r.intn(maxw)
			}
			return interp.Binding{
				Args:    []uint64{uint64(rows), uint64(cols)},
				Globals: map[string][]uint64{"wall": ints(wall)},
			}
		},
	}
}

func knnBench() *Benchmark {
	return &Benchmark{
		Name:        "knn",
		Suite:       "Rodinia",
		Description: "Find the k-nearest neighbours from an unstructured data set",
		Source:      srcKNN,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("n", 64, 256),
			inputgen.IntParam("k", 1, 16),
			inputgen.FloatParam("qx", -100, 100),
			inputgen.FloatParam("qy", -100, 100),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{128, 8, 0, 0, 12345}, F: []float64{0, 0, 10, -20, 0}},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			n, k, seed := in.I[0], in.I[1], in.I[4]
			qx, qy := in.F[2], in.F[3]
			r := newRng(seed)
			px := make([]float64, n)
			py := make([]float64, n)
			for i := range px {
				px[i] = r.f64()*200 - 100
				py[i] = r.f64()*200 - 100
			}
			return interp.Binding{
				Args:    []uint64{uint64(n), uint64(k), fbits(qx), fbits(qy)},
				Globals: map[string][]uint64{"px": floats(px), "py": floats(py)},
			}
		},
	}
}

// GraphCSR is a directed graph in compressed-sparse-row form; exported so
// the real-world case study (datasets package) can bind external graphs
// into the BFS benchmark.
type GraphCSR struct {
	Off   []int64 // length n+1
	Edges []int64
}

// BindBFS builds a BFS binding from an explicit graph and source node.
func BindBFS(g GraphCSR, src int64) interp.Binding {
	n := int64(len(g.Off) - 1)
	return interp.Binding{
		Args: []uint64{uint64(n), uint64(src)},
		Globals: map[string][]uint64{
			"off":   ints(g.Off),
			"edges": ints(g.Edges),
			"dst":   zeros(n),
			"queue": zeros(n),
		},
	}
}

// RandomGraphSeeded derives a uniform random directed graph from a seed
// (the generator used by the bfs benchmark's binder), for callers outside
// this package.
func RandomGraphSeeded(n, deg, seed int64) GraphCSR {
	return RandomGraph(n, deg, newRng(seed))
}

// RandomGraph derives a random directed graph: each node gets deg edges to
// uniform random targets.
func RandomGraph(n, deg int64, r *rng) GraphCSR {
	off := make([]int64, n+1)
	edges := make([]int64, 0, n*deg)
	for u := int64(0); u < n; u++ {
		off[u] = int64(len(edges))
		for d := int64(0); d < deg; d++ {
			edges = append(edges, r.intn(n))
		}
	}
	off[n] = int64(len(edges))
	return GraphCSR{Off: off, Edges: edges}
}

func bfsBench() *Benchmark {
	return &Benchmark{
		Name:        "bfs",
		Suite:       "Rodinia",
		Description: "Breadth-first search all connected components in a graph",
		Source:      srcBFS,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("n", 64, 256),
			inputgen.IntParam("deg", 2, 8),
			inputgen.IntParam("srcpct", 0, 99),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{128, 4, 0, 12345}, F: make([]float64, 4)},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			n, deg, srcpct, seed := in.I[0], in.I[1], in.I[2], in.I[3]
			g := RandomGraph(n, deg, newRng(seed))
			return BindBFS(g, n*srcpct/100)
		},
	}
}

func backpropBench() *Benchmark {
	return &Benchmark{
		Name:        "backprop",
		Suite:       "Rodinia",
		Description: "Trains the weights of connected nodes on a layered neural network",
		Source:      srcBackprop,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("ni", 8, 24),
			inputgen.IntParam("nh", 4, 16),
			inputgen.FloatParam("target", 0, 1),
			inputgen.FloatParam("eta", 0.05, 0.5),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{16, 8, 0, 0, 12345}, F: []float64{0, 0, 0.8, 0.3, 0}},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			ni, nh, seed := in.I[0], in.I[1], in.I[4]
			target, eta := in.F[2], in.F[3]
			r := newRng(seed)
			input := make([]float64, ni)
			for i := range input {
				input[i] = r.f64()
			}
			w1 := make([]float64, ni*nh)
			for i := range w1 {
				w1[i] = r.f64()*2 - 1
			}
			w2 := make([]float64, nh)
			for i := range w2 {
				w2[i] = r.f64()*2 - 1
			}
			return interp.Binding{
				Args: []uint64{uint64(ni), uint64(nh), fbits(target), fbits(eta)},
				Globals: map[string][]uint64{
					"input": floats(input), "w1": floats(w1), "w2": floats(w2),
				},
			}
		},
	}
}

func needleBench() *Benchmark {
	return &Benchmark{
		Name:        "needle",
		Suite:       "Rodinia",
		Description: "A nonlinear global optimization method for DNA sequence alignments",
		Source:      srcNeedle,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("n", 16, 48),
			inputgen.IntParam("penalty", 1, 10),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{32, 4, 12345}, F: make([]float64, 3)},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			n, penalty, seed := in.I[0], in.I[1], in.I[2]
			r := newRng(seed)
			seq1 := make([]int64, n)
			seq2 := make([]int64, n)
			for i := range seq1 {
				seq1[i] = r.intn(4)
				seq2[i] = r.intn(4)
			}
			return interp.Binding{
				Args: []uint64{uint64(n), uint64(penalty)},
				Globals: map[string][]uint64{
					"seq1": ints(seq1), "seq2": ints(seq2),
					"mat": zeros((n + 1) * (n + 1)),
				},
			}
		},
	}
}

// ClusterPoints derives a Gaussian-mixture point set: k centers in
// [0,100]^2 with per-cluster spread. Exported for the case-study datasets.
func ClusterPoints(n, k int64, spread float64, r *rng) (xs, ys []float64) {
	cx := make([]float64, k)
	cy := make([]float64, k)
	for j := range cx {
		cx[j] = r.f64() * 100
		cy[j] = r.f64() * 100
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := int64(0); i < n; i++ {
		j := r.intn(k)
		xs[i] = cx[j] + r.norm()*spread
		ys[i] = cy[j] + r.norm()*spread
	}
	return xs, ys
}

// BindKmeans builds a Kmeans binding from explicit points.
func BindKmeans(xs, ys []float64, k, iters int64) interp.Binding {
	n := int64(len(xs))
	return interp.Binding{
		Args: []uint64{uint64(n), uint64(k), uint64(iters)},
		Globals: map[string][]uint64{
			"fx": floats(xs), "fy": floats(ys), "assign": zeros(n),
		},
	}
}

func kmeansBench() *Benchmark {
	return &Benchmark{
		Name:        "kmeans",
		Suite:       "Rodinia",
		Description: "A clustering algorithm used extensively in data-mining",
		Source:      srcKmeans,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("n", 64, 192),
			inputgen.IntParam("k", 2, 8),
			inputgen.IntParam("iters", 3, 8),
			inputgen.FloatParam("spread", 1, 20),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{96, 4, 5, 0, 12345}, F: []float64{0, 0, 0, 6, 0}},
		MaxGoldenInstrs: 3_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			n, k, iters, seed := in.I[0], in.I[1], in.I[2], in.I[4]
			xs, ys := ClusterPoints(n, k, in.F[3], newRng(seed))
			return BindKmeans(xs, ys, k, iters)
		},
	}
}

func luBench() *Benchmark {
	return &Benchmark{
		Name:        "lu",
		Suite:       "Rodinia",
		Description: "An algorithm calculating the solutions of a set of linear equations",
		Source:      srcLU,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("n", 8, 20),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{12, 12345}, F: make([]float64, 2)},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			n, seed := in.I[0], in.I[1]
			r := newRng(seed)
			a := make([]float64, n*n)
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					a[i*n+j] = r.f64()
					if i == j {
						a[i*n+j] += float64(n) // diagonal dominance
					}
				}
			}
			return interp.Binding{
				Args:    []uint64{uint64(n)},
				Globals: map[string][]uint64{"a": floats(a)},
			}
		},
	}
}

func particlefilterBench() *Benchmark {
	return &Benchmark{
		Name:        "particlefilter",
		Suite:       "Rodinia",
		Description: "Statistical estimator of a target location given noisy measurements",
		Source:      srcParticlefilter,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("n", 32, 128),
			inputgen.IntParam("t", 4, 10),
			inputgen.FloatParam("x0", -10, 10),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{64, 6, 0, 12345}, F: []float64{0, 0, 2, 0}},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			n, tFrames, seed := in.I[0], in.I[1], in.I[3]
			x0 := in.F[2]
			r := newRng(seed)
			noise := make([]float64, tFrames*n)
			for i := range noise {
				noise[i] = r.norm() * 0.2
			}
			meas := make([]float64, tFrames)
			truth := x0
			for f := range meas {
				truth += 1.0 + r.norm()*0.1
				meas[f] = truth + r.norm()*0.3
			}
			return interp.Binding{
				Args: []uint64{uint64(n), uint64(tFrames), fbits(x0)},
				Globals: map[string][]uint64{
					"noise": floats(noise), "meas": floats(meas),
					"xs": zeros(n), "ws": zeros(n), "xs2": zeros(n),
				},
			}
		},
	}
}

func hpccgBench() *Benchmark {
	return &Benchmark{
		Name:        "hpccg",
		Suite:       "Mantevo",
		Description: "A simple conjugate gradient benchmark on a 3D chimney domain",
		Source:      srcHPCCG,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("nx", 3, 6),
			inputgen.IntParam("ny", 3, 6),
			inputgen.IntParam("nz", 3, 6),
			inputgen.IntParam("maxiter", 4, 12),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{4, 4, 4, 8, 12345}, F: make([]float64, 5)},
		MaxGoldenInstrs: 3_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			nx, ny, nz, maxiter, seed := in.I[0], in.I[1], in.I[2], in.I[3], in.I[4]
			n := nx * ny * nz
			r := newRng(seed)
			b := make([]float64, n)
			for i := range b {
				b[i] = r.f64()
			}
			return interp.Binding{
				Args: []uint64{uint64(nx), uint64(ny), uint64(nz), uint64(maxiter)},
				Globals: map[string][]uint64{
					"b": floats(b), "x": zeros(n), "r": zeros(n),
					"p": zeros(n), "ap": zeros(n),
				},
			}
		},
	}
}

func xsbenchBench() *Benchmark {
	return &Benchmark{
		Name:        "xsbench",
		Suite:       "CESAR",
		Description: "Key computational kernel of the Monte Carlo neutronics application",
		Source:      srcXsbench,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.IntParam("lookups", 100, 400),
			inputgen.IntParam("nuclides", 8, 24),
			inputgen.IntParam("gridpoints", 32, 128),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{200, 12, 64, 12345}, F: make([]float64, 4)},
		MaxGoldenInstrs: 3_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			lookups, nuc, gp, seed := in.I[0], in.I[1], in.I[2], in.I[3]
			r := newRng(seed)
			egrid := make([]float64, gp)
			for i := range egrid {
				egrid[i] = r.f64()
			}
			sort.Float64s(egrid)
			egrid[0] = 0
			egrid[gp-1] = 1
			xsdata := make([]float64, nuc*gp)
			for i := range xsdata {
				xsdata[i] = r.f64() * 10
			}
			le := make([]float64, lookups)
			for i := range le {
				le[i] = r.f64() * 0.999
			}
			return interp.Binding{
				Args: []uint64{uint64(lookups), uint64(nuc), uint64(gp)},
				Globals: map[string][]uint64{
					"egrid": floats(egrid), "xsdata": floats(xsdata),
					"lookups": floats(le),
				},
			}
		},
	}
}

// fftArrays derives the FFT input signal.
func fftArrays(m, seed int64) (re, im []float64) {
	n := int64(1) << uint(m)
	r := newRng(seed)
	re = make([]float64, n)
	im = make([]float64, n)
	for i := range re {
		re[i] = r.f64()*2 - 1
		im[i] = r.f64()*2 - 1
	}
	return re, im
}

func fftBench() *Benchmark {
	return &Benchmark{
		Name:        "fft",
		Suite:       "SPLASH-2",
		Description: "1D fast Fourier transform using the radix-2 method",
		Source:      srcFFT,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.ChoiceParam("m", 5, 6, 7, 8),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{6, 12345}, F: make([]float64, 2)},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			m, seed := in.I[0], in.I[1]
			re, im := fftArrays(m, seed)
			return interp.Binding{
				Args:    []uint64{uint64(m)},
				Globals: map[string][]uint64{"re": floats(re), "im": floats(im)},
			}
		},
	}
}

func fftMTBench() *Benchmark {
	return &Benchmark{
		Name:        "fft-mt",
		Suite:       "SPLASH-2",
		Description: "Multi-threaded radix-2 FFT (paper §VIII-B)",
		Source:      srcFFTMT,
		Spec: &inputgen.Spec{Params: []inputgen.Param{
			inputgen.ChoiceParam("m", 5, 6, 7),
			inputgen.ChoiceParam("threads", 1, 2, 4),
			inputgen.SeedParam("seed"),
		}},
		Reference:       inputgen.Input{I: []int64{6, 2, 12345}, F: make([]float64, 3)},
		MaxGoldenInstrs: 2_000_000,
		Bind: func(in inputgen.Input) interp.Binding {
			m, nt, seed := in.I[0], in.I[1], in.I[2]
			re, im := fftArrays(m, seed)
			return interp.Binding{
				Args:    []uint64{uint64(m), uint64(nt)},
				Globals: map[string][]uint64{"re": floats(re), "im": floats(im)},
			}
		},
	}
}
