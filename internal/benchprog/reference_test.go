package benchprog

import (
	"math"
	"sort"
	"testing"

	"repro/internal/interp"
)

// These tests validate each MiniC kernel against an independent Go
// reference implementation on the benchmark's reference input: the
// compiled program must compute the same result the textbook algorithm
// computes. This pins down the benchmark implementations themselves, not
// just their plumbing.

// bindArrays regenerates the exact arrays a benchmark binder derives,
// by reading them back out of the binding.
func f64sOf(bind interp.Binding, name string) []float64 {
	raw := bind.Globals[name]
	out := make([]float64, len(raw))
	for i, w := range raw {
		out[i] = math.Float64frombits(w)
	}
	return out
}

func i64sOf(bind interp.Binding, name string) []int64 {
	raw := bind.Globals[name]
	out := make([]int64, len(raw))
	for i, w := range raw {
		out[i] = int64(w)
	}
	return out
}

func runBench(t *testing.T, b *Benchmark, bind interp.Binding) interp.Result {
	t.Helper()
	r := interp.NewRunner(b.MustModule(), b.ExecConfig())
	res := r.Run(bind, nil, nil)
	if res.Status != interp.StatusOK {
		t.Fatalf("status %v (%s)", res.Status, res.Trap)
	}
	return res
}

func TestPathfinderAgainstReference(t *testing.T) {
	b, _ := ByName("pathfinder")
	bind := b.Bind(b.Reference)
	rows, cols := int64(bind.Args[0]), int64(bind.Args[1])
	wall := i64sOf(bind, "wall")

	dst := append([]int64(nil), wall[:cols]...)
	src := make([]int64, cols)
	for i := int64(1); i < rows; i++ {
		copy(src, dst)
		for j := int64(0); j < cols; j++ {
			best := src[j]
			if j > 0 && src[j-1] < best {
				best = src[j-1]
			}
			if j < cols-1 && src[j+1] < best {
				best = src[j+1]
			}
			dst[j] = wall[i*cols+j] + best
		}
	}
	mn, sum := dst[0], int64(0)
	for _, v := range dst {
		sum += v
		if v < mn {
			mn = v
		}
	}

	res := runBench(t, b, bind)
	if int64(res.Output[0]) != mn || int64(res.Output[1]) != sum {
		t.Fatalf("pathfinder: got (%d,%d), reference (%d,%d)",
			int64(res.Output[0]), int64(res.Output[1]), mn, sum)
	}
}

func TestKNNAgainstReference(t *testing.T) {
	b, _ := ByName("knn")
	bind := b.Bind(b.Reference)
	n, k := int64(bind.Args[0]), int64(bind.Args[1])
	qx := math.Float64frombits(bind.Args[2])
	qy := math.Float64frombits(bind.Args[3])
	px, py := f64sOf(bind, "px"), f64sOf(bind, "py")

	type pd struct {
		d   float64
		idx int
	}
	ds := make([]pd, n)
	for i := int64(0); i < n; i++ {
		dx, dy := px[i]-qx, py[i]-qy
		ds[i] = pd{math.Sqrt(dx*dx + dy*dy), int(i)}
	}
	sort.SliceStable(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	var acc float64
	var idxsum int64
	for j := int64(0); j < k; j++ {
		acc += ds[j].d
		idxsum += int64(ds[j].idx)
	}

	res := runBench(t, b, bind)
	got := math.Float64frombits(res.Output[0])
	if math.Abs(got-acc) > 1e-9 {
		t.Fatalf("knn distance sum: got %g, reference %g", got, acc)
	}
	if int64(res.Output[1]) != idxsum {
		t.Fatalf("knn index sum: got %d, reference %d", int64(res.Output[1]), idxsum)
	}
}

func TestBFSAgainstReference(t *testing.T) {
	b, _ := ByName("bfs")
	bind := b.Bind(b.Reference)
	n, src := int64(bind.Args[0]), int64(bind.Args[1])
	off, edges := i64sOf(bind, "off"), i64sOf(bind, "edges")

	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int64{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := off[u]; e < off[u+1]; e++ {
			if v := edges[e]; dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	var visited, sum int64
	for _, d := range dist {
		if d >= 0 {
			visited++
			sum += d
		}
	}

	res := runBench(t, b, bind)
	if int64(res.Output[0]) != visited || int64(res.Output[1]) != sum {
		t.Fatalf("bfs: got (%d,%d), reference (%d,%d)",
			int64(res.Output[0]), int64(res.Output[1]), visited, sum)
	}
}

func TestNeedleAgainstReference(t *testing.T) {
	b, _ := ByName("needle")
	bind := b.Bind(b.Reference)
	n, penalty := int64(bind.Args[0]), int64(bind.Args[1])
	seq1, seq2 := i64sOf(bind, "seq1"), i64sOf(bind, "seq2")

	w := n + 1
	mat := make([]int64, w*w)
	for i := int64(0); i <= n; i++ {
		mat[i] = -i * penalty
		mat[i*w] = -i * penalty
	}
	max2 := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			sc := int64(-1)
			if seq1[i-1] == seq2[j-1] {
				sc = 2
			}
			mat[i*w+j] = max2(mat[(i-1)*w+j-1]+sc,
				max2(mat[(i-1)*w+j]-penalty, mat[i*w+j-1]-penalty))
		}
	}
	var lastRow int64
	for j := int64(0); j <= n; j++ {
		lastRow += mat[n*w+j]
	}

	res := runBench(t, b, bind)
	if int64(res.Output[0]) != mat[n*w+n] || int64(res.Output[1]) != lastRow {
		t.Fatalf("needle: got (%d,%d), reference (%d,%d)",
			int64(res.Output[0]), int64(res.Output[1]), mat[n*w+n], lastRow)
	}
}

func TestKmeansAgainstReference(t *testing.T) {
	b, _ := ByName("kmeans")
	bind := b.Bind(b.Reference)
	n, k, iters := int64(bind.Args[0]), int64(bind.Args[1]), int64(bind.Args[2])
	fx, fy := f64sOf(bind, "fx"), f64sOf(bind, "fy")

	cx := append([]float64(nil), fx[:k]...)
	cy := append([]float64(nil), fy[:k]...)
	assign := make([]int64, n)
	for it := int64(0); it < iters; it++ {
		sx := make([]float64, k)
		sy := make([]float64, k)
		cnt := make([]int64, k)
		for i := int64(0); i < n; i++ {
			best, bd := int64(0), math.MaxFloat64
			for j := int64(0); j < k; j++ {
				dx, dy := fx[i]-cx[j], fy[i]-cy[j]
				if d := dx*dx + dy*dy; d < bd {
					bd, best = d, j
				}
			}
			assign[i] = best
			sx[best] += fx[i]
			sy[best] += fy[i]
			cnt[best]++
		}
		for j := int64(0); j < k; j++ {
			if cnt[j] > 0 {
				cx[j] = sx[j] / float64(cnt[j])
				cy[j] = sy[j] / float64(cnt[j])
			}
		}
	}
	var asum int64
	for _, a := range assign {
		asum += a
	}
	var csum float64
	for j := int64(0); j < k; j++ {
		csum += cx[j] + cy[j]
	}

	res := runBench(t, b, bind)
	if int64(res.Output[0]) != asum {
		t.Fatalf("kmeans assignment sum: got %d, reference %d", int64(res.Output[0]), asum)
	}
	if got := math.Float64frombits(res.Output[1]); math.Abs(got-csum) > 1e-9 {
		t.Fatalf("kmeans centroid sum: got %g, reference %g", got, csum)
	}
}

func TestLUAgainstReference(t *testing.T) {
	b, _ := ByName("lu")
	bind := b.Bind(b.Reference)
	n := int64(bind.Args[0])
	a := f64sOf(bind, "a")
	orig := append([]float64(nil), a...)

	for k := int64(0); k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
	}
	det := 1.0
	for k := int64(0); k < n; k++ {
		det *= a[k*n+k]
	}

	res := runBench(t, b, bind)
	if got := math.Float64frombits(res.Output[0]); math.Abs(got-det) > math.Abs(det)*1e-12 {
		t.Fatalf("lu det: got %g, reference %g", got, det)
	}

	// Reconstruction check: L*U must reproduce the original matrix.
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			var lu float64
			for kk := int64(0); kk <= i && kk <= j; kk++ {
				l := a[i*n+kk]
				if kk == i {
					l = 1
				}
				if kk > i {
					l = 0
				}
				lu += l * a[kk*n+j]
			}
			if math.Abs(lu-orig[i*n+j]) > 1e-8 {
				t.Fatalf("L*U[%d,%d] = %g, want %g", i, j, lu, orig[i*n+j])
			}
		}
	}
}

func TestHPCCGConverges(t *testing.T) {
	b, _ := ByName("hpccg")
	bind := b.Bind(b.Reference)
	res := runBench(t, b, bind)
	// Output: final residual, x checksum. CG on an SPD stencil matrix must
	// shrink the residual dramatically versus ||b||^2.
	rtr := math.Float64frombits(res.Output[0])
	bb := f64sOf(bind, "b")
	var b2 float64
	for _, v := range bb {
		b2 += v * v
	}
	if rtr >= b2*1e-3 {
		t.Fatalf("hpccg residual %g did not converge (||b||^2 = %g)", rtr, b2)
	}
}

func TestXsbenchAgainstReference(t *testing.T) {
	b, _ := ByName("xsbench")
	bind := b.Bind(b.Reference)
	lookups, nuc, gp := int64(bind.Args[0]), int64(bind.Args[1]), int64(bind.Args[2])
	egrid := f64sOf(bind, "egrid")
	xsdata := f64sOf(bind, "xsdata")
	le := f64sOf(bind, "lookups")

	var acc float64
	for l := int64(0); l < lookups; l++ {
		e := le[l]
		lo, hi := int64(0), gp-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if egrid[mid] > e {
				hi = mid
			} else {
				lo = mid
			}
		}
		f := (e - egrid[lo]) / (egrid[hi] - egrid[lo])
		for m := int64(0); m < nuc; m++ {
			acc += xsdata[m*gp+lo]*(1-f) + xsdata[m*gp+hi]*f
		}
	}

	res := runBench(t, b, bind)
	if got := math.Float64frombits(res.Output[0]); math.Abs(got-acc) > math.Abs(acc)*1e-12 {
		t.Fatalf("xsbench: got %g, reference %g", got, acc)
	}
}

func TestFFTAgainstReferenceDFT(t *testing.T) {
	b, _ := ByName("fft")
	bind := b.Bind(b.Reference)
	m := int64(bind.Args[0])
	n := int64(1) << uint(m)
	re := f64sOf(bind, "re")
	im := f64sOf(bind, "im")

	// Direct O(n^2) DFT as the independent reference.
	dftRe := make([]float64, n)
	dftIm := make([]float64, n)
	for k := int64(0); k < n; k++ {
		for t := int64(0); t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			dftRe[k] += re[t]*c - im[t]*s
			dftIm[k] += re[t]*s + im[t]*c
		}
	}
	var sumRe, sumIm float64
	for k := int64(0); k < n; k++ {
		sumRe += dftRe[k]
		sumIm += dftIm[k]
	}

	res := runBench(t, b, bind)
	gotRe := math.Float64frombits(res.Output[0])
	gotIm := math.Float64frombits(res.Output[1])
	if math.Abs(gotRe-sumRe) > 1e-6 || math.Abs(gotIm-sumIm) > 1e-6 {
		t.Fatalf("fft sums: got (%g,%g), DFT reference (%g,%g)", gotRe, gotIm, sumRe, sumIm)
	}
	// Check one specific bin too.
	gotRe1 := math.Float64frombits(res.Output[2])
	if math.Abs(gotRe1-dftRe[1]) > 1e-6 {
		t.Fatalf("fft re[1]: got %g, DFT %g", gotRe1, dftRe[1])
	}
}

func TestParticlefilterTracksTruth(t *testing.T) {
	b, _ := ByName("particlefilter")
	bind := b.Bind(b.Reference)
	res := runBench(t, b, bind)
	// The filter's per-frame estimates must track the measurements (which
	// are near the true trajectory): last estimate within a few units of
	// the last measurement.
	meas := f64sOf(bind, "meas")
	last := math.Float64frombits(res.Output[len(res.Output)-1])
	want := meas[len(meas)-1]
	if math.Abs(last-want) > 3.0 {
		t.Fatalf("particlefilter estimate %g far from measurement %g", last, want)
	}
}

func TestBackpropLearns(t *testing.T) {
	b, _ := ByName("backprop")
	in := b.Reference
	bind := b.Bind(in)
	res := runBench(t, b, bind)
	out := math.Float64frombits(res.Output[0])
	if out <= 0 || out >= 1 {
		t.Fatalf("sigmoid output %g outside (0,1)", out)
	}

	// One gradient step with target 0.8 must move the (recomputed) output
	// toward the target: re-run with the updated weights approximated by
	// running twice and comparing |target - out|. Since the program runs a
	// single step, check instead that weight checksums changed (learning
	// happened).
	c1 := math.Float64frombits(res.Output[1])
	var w1sum float64
	for _, v := range f64sOf(bind, "w1") {
		w1sum += v
	}
	if math.Abs(c1-w1sum) < 1e-12 {
		t.Fatal("backprop did not update w1")
	}
}
