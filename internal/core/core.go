// Package core is the high-level API of the MINPSID reproduction: it ties
// the MiniC compiler, the IR interpreter, the fault injector, baseline
// selective instruction duplication, and the MINPSID input-search pipeline
// into a small set of types a downstream user can drive directly.
//
// Typical use:
//
//	prog, _ := core.FromBenchmark("kmeans")
//	prot, _ := prog.Protect(core.TechniqueMINPSID, 0.5, core.QuickOptions())
//	cov, _ := prot.EvaluateCoverage(prog.RandomInput(rng), 1000, 1)
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/minpsid"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/pipeline"
	"repro/internal/sid"
)

// Technique selects the protection scheme.
type Technique uint8

// The available protection techniques.
const (
	TechniqueSID     Technique = iota // baseline: reference input only
	TechniqueMINPSID                  // input-search hardened
)

// String returns the technique name.
func (t Technique) String() string {
	if t == TechniqueMINPSID {
		return "minpsid"
	}
	return "sid"
}

// ParseTechnique resolves a technique by name ("sid" or "minpsid").
func ParseTechnique(s string) (Technique, error) {
	switch s {
	case "sid", "baseline":
		return TechniqueSID, nil
	case "minpsid":
		return TechniqueMINPSID, nil
	default:
		return 0, fmt.Errorf("core: unknown technique %q (want sid or minpsid)", s)
	}
}

// Program is a compiled program together with its input space.
type Program struct {
	Name      string
	Module    *ir.Module
	Spec      *inputgen.Spec
	Reference inputgen.Input
	Bind      func(inputgen.Input) interp.Binding
	Exec      interp.Config
}

// FromBenchmark loads one of the built-in paper benchmarks.
func FromBenchmark(name string) (*Program, error) {
	b, ok := benchprog.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	m, err := b.Module()
	if err != nil {
		return nil, err
	}
	return &Program{
		Name:      b.Name,
		Module:    m,
		Spec:      b.Spec,
		Reference: b.Reference,
		Bind:      b.Bind,
		Exec:      b.ExecConfig(),
	}, nil
}

// BenchmarkNames lists the built-in benchmarks.
func BenchmarkNames() []string {
	var names []string
	for _, b := range benchprog.All() {
		names = append(names, b.Name)
	}
	return names
}

// CompileMiniC builds a Program from MiniC source. The caller supplies the
// input space, the reference input used for protection, and the binder;
// optimize selects whether the standard pass pipeline runs.
func CompileMiniC(name, src string, spec *inputgen.Spec, reference inputgen.Input, bind func(inputgen.Input) interp.Binding, optimize bool) (*Program, error) {
	m, err := minicc.Compile(name, src)
	if err != nil {
		return nil, err
	}
	if optimize {
		if err := passes.Optimize(m); err != nil {
			return nil, err
		}
	}
	if err := spec.Validate(reference); err != nil {
		return nil, fmt.Errorf("core: reference input: %w", err)
	}
	return &Program{
		Name:      name,
		Module:    m,
		Spec:      spec,
		Reference: reference,
		Bind:      bind,
		Exec:      interp.Config{},
	}, nil
}

// RandomInput draws a random input from the program's input space.
func (p *Program) RandomInput(rng *rand.Rand) inputgen.Input {
	return p.Spec.Random(rng)
}

// Run executes the program fault-free on one input.
func (p *Program) Run(in inputgen.Input) interp.Result {
	r := interp.NewRunner(p.Module, p.Exec)
	return r.Run(p.Bind(in), nil, nil)
}

// Options tunes protection.
type Options struct {
	// FaultsPerInstr is the per-instruction FI budget (paper: 100).
	FaultsPerInstr int
	// Search configures the MINPSID input search (ignored for SID).
	SearchMaxInputs int
	SearchPatience  int
	PopSize         int
	MaxGenerations  int
	// SearchStrategy selects the MINPSID input-search engine (GA by
	// default; random and simulated-annealing variants are available).
	SearchStrategy minpsid.Strategy
	// FaultModel names the injected fault model and Detector the
	// detector portfolio ("dup,inv,cfgsig" or "all"); empty values mean
	// the paper's bitflip + duplication defaults, which reproduce the
	// original pipeline byte-for-byte.
	FaultModel string
	Detector   string
	// Incremental switches the reference measurement to the sectional
	// (per-section) artifact path: a later edit to the program re-runs
	// only the sections it touched. Off by default; the default path
	// reproduces the paper byte-for-byte.
	Incremental bool
	// Seed drives all stochastic steps; Workers bounds FI parallelism.
	Seed    int64
	Workers int
	// Cache, if non-nil, memoizes golden runs and campaigns across the
	// protection pipeline; Metrics, if non-nil, collects per-phase campaign
	// accounting. Both are observational: results are bit-identical with or
	// without them.
	Cache   *fault.Cache
	Metrics *fault.Metrics
	// Pipe, if non-nil, supplies the task scheduler and artifact store the
	// protection graph runs on, sharing measurement/search/protection nodes
	// with other work on the same pipeline (and across processes when its
	// disk tier is enabled). Nil runs on a private in-memory pipeline.
	Pipe *pipeline.Pipeline
	// Obs, if non-nil, attaches unified tracing/metrics to the pipeline
	// (and through it the campaign engine). Observational like Cache and
	// Metrics.
	Obs *obs.Obs
}

// DefaultOptions returns paper-scale settings.
func DefaultOptions() Options {
	return Options{FaultsPerInstr: 100, SearchMaxInputs: 20, SearchPatience: 3, PopSize: 8, MaxGenerations: 6, Seed: 1}
}

// QuickOptions returns reduced settings for interactive experimentation.
func QuickOptions() Options {
	return Options{FaultsPerInstr: 15, SearchMaxInputs: 5, SearchPatience: 2, PopSize: 5, MaxGenerations: 3, Seed: 1}
}

func (o Options) searchConfig() minpsid.Config {
	return minpsid.Config{
		FaultsPerInstr: o.FaultsPerInstr,
		MaxInputs:      o.SearchMaxInputs,
		Patience:       o.SearchPatience,
		PopSize:        o.PopSize,
		MaxGenerations: o.MaxGenerations,
		Strategy:       o.SearchStrategy,
		Seed:           o.Seed,
		Workers:        o.Workers,
		Cache:          o.Cache,
		Metrics:        o.Metrics,
	}
}

// Protection is a protected program.
type Protection struct {
	Program   *Program
	Technique Technique
	Level     float64
	Module    *ir.Module // the protected binary
	// Chosen lists the selected instruction IDs (original module numbering).
	Chosen []int
	// Detectors names the detector protecting each chosen site (parallel
	// to Chosen); nil means duplication everywhere.
	Detectors []string
	// FaultModel is the fault model the protection was tuned for and the
	// model its evaluations inject ("" = single-bit flip).
	FaultModel string
	// ExpectedCoverage is the technique's own coverage estimate.
	ExpectedCoverage float64
	// Incubative lists incubative instruction IDs (MINPSID only).
	Incubative []int
	// Timing is the one-time analysis cost breakdown (MINPSID only).
	Timing minpsid.Timing
}

// Protect applies the chosen technique at the given protection level.
// The protection runs as a task graph — reference measurement, optional
// input search, selection + duplication — so equal work is deduplicated
// against anything else scheduled on Options.Pipe. The graph is
// value-equivalent to minpsid.Apply / sid.Apply on the same settings.
func (p *Program) Protect(tech Technique, level float64, opts Options) (*Protection, error) {
	tgt := minpsid.Target{Mod: p.Module, Spec: p.Spec, Bind: p.Bind, Exec: p.Exec}
	env := pipeline.Env{Cache: opts.Cache, Metrics: opts.Metrics, Workers: opts.Workers}
	pipe := opts.Pipe
	if pipe == nil {
		pipe = pipeline.NewMem(opts.Workers)
	}
	if opts.Obs != nil {
		pipe.SetObs(opts.Obs)
	}

	mt := &pipeline.MeasureTask{Target: tgt, Input: p.Reference,
		FaultsPerInstr: opts.FaultsPerInstr, Seed: opts.Seed, Model: opts.FaultModel,
		Incremental: opts.Incremental, Env: env}
	pt := &pipeline.ProtectTask{Target: tgt, Level: level, Measure: mt,
		Detector: opts.Detector, Model: opts.FaultModel, Env: env}
	prot := &Protection{Program: p, Technique: tech, Level: level, FaultModel: opts.FaultModel}

	switch tech {
	case TechniqueMINPSID:
		st := &pipeline.SearchTask{Target: tgt, Ref: p.Reference,
			Cfg: opts.searchConfig(), Measure: mt, Env: env}
		pt.Search = st
		outs, err := pipe.RunAll(mt, st, pt)
		if err != nil {
			return nil, err
		}
		mo, sr, po := outs[0].(*pipeline.MeasureOut), outs[1].(*minpsid.SearchResult), outs[2].(*pipeline.ProtectOut)
		prot.Module = po.Mod
		prot.Chosen = po.Sel.Chosen
		prot.Detectors = po.Sel.Detectors
		prot.ExpectedCoverage = po.Sel.ExpectedCoverage
		prot.Incubative = sr.Incubative
		prot.Timing = minpsid.Timing{
			RefFI:        mo.Wall,
			SearchEngine: sr.EngineTime,
			IncubativeFI: sr.FITime,
		}
		return prot, nil
	default:
		outs, err := pipe.RunAll(mt, pt)
		if err != nil {
			return nil, err
		}
		po := outs[1].(*pipeline.ProtectOut)
		prot.Module = po.Mod
		prot.Chosen = po.Sel.Chosen
		prot.Detectors = po.Sel.Detectors
		prot.ExpectedCoverage = po.Sel.ExpectedCoverage
		return prot, nil
	}
}

// model resolves the protection's fault model; nil selects the
// campaign engine's default (single-bit flip).
func (pr *Protection) model() fault.Model {
	if pr.FaultModel == "" {
		return nil
	}
	m, _ := fault.ModelByName(pr.FaultModel)
	return m
}

// CoverageReport is one coverage evaluation of a protected program.
type CoverageReport struct {
	Coverage float64 // detected / (detected + SDC); 1 if no corruptions occurred
	Defined  bool    // false when no SDC-or-detected outcome was observed
	Result   fault.CampaignResult
}

// EvaluateCoverage injects n random faults into the protected program
// running with the given input and reports the measured SDC coverage.
func (pr *Protection) EvaluateCoverage(in inputgen.Input, n int, seed int64) (CoverageReport, error) {
	bind := pr.Program.Bind(in)
	golden, err := fault.RunGolden(pr.Module, bind, pr.Program.Exec)
	if err != nil {
		return CoverageReport{}, fmt.Errorf("core: input inadmissible: %w", err)
	}
	c := &fault.Campaign{Mod: pr.Module, Bind: bind, Cfg: pr.Program.Exec, Golden: golden,
		Model: pr.model()}
	res := c.Run(n, seed)
	cov, ok := res.SDCCoverage()
	if !ok {
		cov = 1
	}
	return CoverageReport{Coverage: cov, Defined: ok, Result: res}, nil
}

// InjectionCampaign runs a program-level FI campaign on the *unprotected*
// program under one input: the raw resilience characterization step.
func (p *Program) InjectionCampaign(in inputgen.Input, n int, seed int64) (fault.CampaignResult, error) {
	return p.InjectionCampaignOpts(in, n, seed, nil, nil, nil)
}

// InjectionCampaignOpts is InjectionCampaign with optional golden-run
// memoization, campaign metrics, and unified observability.
func (p *Program) InjectionCampaignOpts(in inputgen.Input, n int, seed int64, cache *fault.Cache, pm *fault.PhaseMetrics, o *obs.Obs) (fault.CampaignResult, error) {
	return p.InjectionCampaignModel(in, n, seed, nil, cache, pm, o)
}

// InjectionCampaignModel is InjectionCampaignOpts under an explicit
// fault model (nil = the paper's single-bit flip).
func (p *Program) InjectionCampaignModel(in inputgen.Input, n int, seed int64, model fault.Model, cache *fault.Cache, pm *fault.PhaseMetrics, o *obs.Obs) (fault.CampaignResult, error) {
	bind := p.Bind(in)
	golden, err := cache.Golden(p.Module, bind, p.Exec, pm)
	if err != nil {
		return fault.CampaignResult{}, err
	}
	c := &fault.Campaign{Mod: p.Module, Bind: bind, Cfg: p.Exec, Golden: golden,
		Model: model, Metrics: pm, Obs: o}
	return c.Run(n, seed), nil
}

// InjectionCampaignSectional runs the characterization campaign through
// the sectional planner: trials are apportioned over the module's
// sections by injectable dynamic weight and drawn from per-section
// deterministic RNG sub-streams, then composed into one CampaignResult.
// The per-section profiles are returned alongside for reporting. The
// composed result is the same shape as InjectionCampaign's; only the
// sampling stream structure differs.
func (p *Program) InjectionCampaignSectional(in inputgen.Input, n int, seed int64, model fault.Model, cache *fault.Cache, pm *fault.PhaseMetrics, o *obs.Obs) (fault.CampaignResult, []fault.SectionProfile, error) {
	bind := p.Bind(in)
	golden, err := cache.Golden(p.Module, bind, p.Exec, pm)
	if err != nil {
		return fault.CampaignResult{}, nil, err
	}
	c := &fault.Campaign{Mod: p.Module, Bind: bind, Cfg: p.Exec, Golden: golden,
		Model: model, Metrics: pm, Obs: o}
	res, profiles := c.RunSectional(n, seed)
	return res, profiles, nil
}

// TrueCoverageReport is the paper-definition coverage measurement.
type TrueCoverageReport struct {
	Coverage float64 // mitigated / would-be-SDC faults
	Defined  bool    // false when no SDC fault was observed
	Result   fault.TrueCoverageResult
}

// EvaluateTrueCoverage measures SDC coverage in the paper's sense: n
// faults are sampled on the unprotected program, and the SDC-producing
// ones are replayed against the protected binary; coverage is the
// fraction detected. This is the metric behind Figs. 2/6/9. (The simpler
// EvaluateCoverage reports the protected program's own detected/(detected
// + SDC) ratio, which also counts detections of faults that would have
// been masked.)
func (pr *Protection) EvaluateTrueCoverage(in inputgen.Input, n int, seed int64) (TrueCoverageReport, error) {
	// Heterogeneous lowerings insert different instruction counts per
	// site, so the ID translation must come from the module pairing; the
	// dup-only closed form is kept for the default path.
	var idMap map[int]int
	if len(pr.Detectors) > 0 {
		idMap = sid.InstrMap(pr.Program.Module, pr.Module)
	} else {
		idMap = sid.ProtectedMap(pr.Program.Module, pr.Chosen)
	}
	res, err := fault.TrueCoverageOpts(pr.Program.Module, pr.Module, idMap,
		pr.Program.Bind(in), pr.Program.Exec, fault.CoverageOptions{
			Trials: n, Seed: seed, Model: pr.model()})
	if err != nil {
		return TrueCoverageReport{}, err
	}
	cov, ok := res.Coverage()
	if !ok {
		cov = 1
	}
	return TrueCoverageReport{Coverage: cov, Defined: ok, Result: res}, nil
}
