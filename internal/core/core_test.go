package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

func TestFromBenchmark(t *testing.T) {
	p, err := FromBenchmark("pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(p.Reference)
	if res.Status != interp.StatusOK {
		t.Fatalf("reference run: %v", res.Status)
	}
	if _, err := FromBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(BenchmarkNames()) != 12 {
		t.Fatalf("BenchmarkNames = %v", BenchmarkNames())
	}
}

func TestParseTechnique(t *testing.T) {
	for s, want := range map[string]Technique{"sid": TechniqueSID, "baseline": TechniqueSID, "minpsid": TechniqueMINPSID} {
		got, err := ParseTechnique(s)
		if err != nil || got != want {
			t.Errorf("ParseTechnique(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseTechnique("other"); err == nil {
		t.Error("bad technique accepted")
	}
	if TechniqueSID.String() != "sid" || TechniqueMINPSID.String() != "minpsid" {
		t.Error("technique names wrong")
	}
}

func TestProtectAndEvaluateBothTechniques(t *testing.T) {
	p, err := FromBenchmark("backprop")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.FaultsPerInstr = 8
	opts.SearchMaxInputs = 2
	rng := rand.New(rand.NewSource(3))
	in := p.RandomInput(rng)

	for _, tech := range []Technique{TechniqueSID, TechniqueMINPSID} {
		prot, err := p.Protect(tech, 0.5, opts)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if prot.ExpectedCoverage < 0 || prot.ExpectedCoverage > 1 {
			t.Errorf("%v expected coverage %f", tech, prot.ExpectedCoverage)
		}
		if len(prot.Chosen) == 0 {
			t.Errorf("%v chose nothing", tech)
		}
		rep, err := prot.EvaluateCoverage(in, 200, 7)
		if err != nil {
			t.Fatalf("%v evaluate: %v", tech, err)
		}
		if rep.Coverage < 0 || rep.Coverage > 1 {
			t.Errorf("%v coverage %f", tech, rep.Coverage)
		}
		if tech == TechniqueMINPSID && prot.Timing.Total() <= 0 {
			t.Error("minpsid timing missing")
		}
	}
}

func TestCompileMiniC(t *testing.T) {
	src := `
func main(n int) {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) { s = s + i * i; }
	emiti(s);
}`
	spec := &inputgen.Spec{Params: []inputgen.Param{inputgen.IntParam("n", 10, 100)}}
	bind := func(in inputgen.Input) interp.Binding {
		return interp.Binding{Args: []uint64{uint64(in.I[0])}}
	}
	ref := inputgen.Input{I: []int64{50}, F: make([]float64, 1)}
	p, err := CompileMiniC("squares", src, spec, ref, bind, true)
	if err != nil {
		t.Fatal(err)
	}
	in := inputgen.Input{I: []int64{10}, F: make([]float64, 1)}
	res := p.Run(in)
	if res.Status != interp.StatusOK || int64(res.Output[0]) != 285 {
		t.Fatalf("run: %v %v", res.Status, res.Output)
	}

	camp, err := p.InjectionCampaign(in, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Trials != 100 {
		t.Fatalf("campaign trials = %d", camp.Trials)
	}

	if _, err := CompileMiniC("bad", "not minic", spec, ref, bind, false); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestEvaluateCoverageRejectsInadmissibleInput(t *testing.T) {
	src := `func main(n int) { emiti(100 / n); }`
	spec := &inputgen.Spec{Params: []inputgen.Param{inputgen.IntParam("n", 0, 10)}}
	bind := func(in inputgen.Input) interp.Binding {
		return interp.Binding{Args: []uint64{uint64(in.I[0])}}
	}
	ref := inputgen.Input{I: []int64{5}, F: make([]float64, 1)}
	p, err := CompileMiniC("div", src, spec, ref, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := p.Protect(TechniqueSID, 0.5, Options{FaultsPerInstr: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := inputgen.Input{I: []int64{0}, F: make([]float64, 1)}
	if _, err := prot.EvaluateCoverage(bad, 10, 1); err == nil {
		t.Fatal("crashing input accepted for evaluation")
	}
}

func TestEvaluateTrueCoverage(t *testing.T) {
	p, err := FromBenchmark("knn")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.FaultsPerInstr = 6
	opts.SearchMaxInputs = 2
	prot, err := p.Protect(TechniqueSID, 0.6, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prot.EvaluateTrueCoverage(p.Reference, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage < 0 || rep.Coverage > 1 {
		t.Fatalf("true coverage %f out of range", rep.Coverage)
	}
	if rep.Defined && rep.Result.SDCFaults == 0 {
		t.Fatal("defined coverage with zero SDC faults")
	}
	t.Logf("true coverage on reference at 60%% level: %.3f (%d/%d SDC faults mitigated)",
		rep.Coverage, rep.Result.Mitigated, rep.Result.SDCFaults)
}

// TestProtectMatchesDirectApply pins the task-graph form of Protect to
// the direct pipeline implementations: same selection, same expected
// coverage, same protected module, for both techniques.
func TestProtectMatchesDirectApply(t *testing.T) {
	p, err := FromBenchmark("pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.FaultsPerInstr = 6
	opts.SearchMaxInputs = 2
	opts.PopSize = 3
	opts.MaxGenerations = 1
	tgt := minpsid.Target{Mod: p.Module, Spec: p.Spec, Bind: p.Bind, Exec: p.Exec}

	sidProt, err := p.Protect(TechniqueSID, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	sidDirect, err := sid.Apply(p.Module, p.Bind(p.Reference), sid.Config{
		Exec: p.Exec, FaultsPerInstr: opts.FaultsPerInstr, Seed: opts.Seed,
	}, 0.5, sid.MethodDP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sidProt.Chosen, sidDirect.Selection.Chosen) {
		t.Errorf("SID chosen: graph %v, direct %v", sidProt.Chosen, sidDirect.Selection.Chosen)
	}
	if sidProt.ExpectedCoverage != sidDirect.Selection.ExpectedCoverage {
		t.Errorf("SID expected coverage: graph %v, direct %v",
			sidProt.ExpectedCoverage, sidDirect.Selection.ExpectedCoverage)
	}
	if sidProt.Module.String() != sidDirect.Module.String() {
		t.Error("SID protected modules differ")
	}

	minpProt, err := p.Protect(TechniqueMINPSID, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	minpDirect, err := minpsid.Apply(tgt, p.Reference, 0.5, opts.searchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(minpProt.Chosen, minpDirect.Selection.Chosen) {
		t.Errorf("MINPSID chosen: graph %v, direct %v", minpProt.Chosen, minpDirect.Selection.Chosen)
	}
	if !reflect.DeepEqual(minpProt.Incubative, minpDirect.Search.Incubative) {
		t.Errorf("MINPSID incubative: graph %v, direct %v", minpProt.Incubative, minpDirect.Search.Incubative)
	}
	if minpProt.ExpectedCoverage != minpDirect.Selection.ExpectedCoverage {
		t.Errorf("MINPSID expected coverage: graph %v, direct %v",
			minpProt.ExpectedCoverage, minpDirect.Selection.ExpectedCoverage)
	}
	if minpProt.Module.String() != minpDirect.Protected.String() {
		t.Error("MINPSID protected modules differ")
	}
}
