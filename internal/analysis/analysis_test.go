package analysis

import (
	"math/bits"
	"strings"
	"testing"

	"repro/internal/ir"
)

// diamond builds: entry -> (then|else) -> merge, with a phi in merge
// feeding emiti. Returns the module.
//
//	entry: c = icmp lt p0, 10; condbr c, then, else
//	then:  a = add p0, 1; br merge
//	else:  b = mul p0, 2; br merge
//	merge: x = phi [a then] [b else]; emiti x; ret
func diamond(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("diamond")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)

	then := b.NewBlock("then")
	els := b.NewBlock("else")
	merge := b.NewBlock("merge")

	c := b.ICmp(ir.PredLT, p0, ir.ConstI(10))
	b.CondBr(c, then, els)

	b.SetBlock(then)
	a := b.Bin(ir.OpAdd, p0, ir.ConstI(1))
	b.Br(merge)

	b.SetBlock(els)
	v := b.Bin(ir.OpMul, p0, ir.ConstI(2))
	b.Br(merge)

	b.SetBlock(merge)
	x := b.Phi(ir.I64, []ir.Operand{a, v}, []*ir.Block{then, els})
	b.CallB(ir.BuiltinEmitI, x)
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCFGDiamond(t *testing.T) {
	m := diamond(t)
	c := BuildCFG(m.Funcs[0])
	if got := len(c.RPO); got != 4 {
		t.Fatalf("RPO covers %d blocks, want 4", got)
	}
	if c.RPO[0] != 0 {
		t.Fatalf("RPO starts at bb%d, want entry", c.RPO[0])
	}
	// Successors: entry -> {then, else}; then/else -> {merge}.
	if len(c.Succs[0]) != 2 || len(c.Preds[3]) != 2 {
		t.Fatalf("diamond edges wrong: succs(entry)=%v preds(merge)=%v", c.Succs[0], c.Preds[3])
	}
	for b := 0; b < 4; b++ {
		if !c.Reachable(b) {
			t.Errorf("bb%d unreachable", b)
		}
	}
}

func TestDomDiamond(t *testing.T) {
	m := diamond(t)
	d := BuildDom(BuildCFG(m.Funcs[0]))
	// Entry dominates everything; then/else dominate only themselves;
	// merge's idom is entry.
	if d.Idom[3] != 0 {
		t.Fatalf("idom(merge) = bb%d, want entry", d.Idom[3])
	}
	if !d.Dominates(0, 3) || !d.Dominates(0, 1) || !d.Dominates(0, 0) {
		t.Fatal("entry must dominate all blocks")
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Fatal("branch arms must not dominate the merge")
	}
	if d.StrictlyDominates(0, 0) {
		t.Fatal("strict dominance is irreflexive")
	}
	// Dominance frontier of each arm is the merge.
	for _, arm := range []int{1, 2} {
		if len(d.Frontier[arm]) != 1 || d.Frontier[arm][0] != 3 {
			t.Fatalf("frontier(bb%d) = %v, want [3]", arm, d.Frontier[arm])
		}
	}
}

func TestDomUnreachableBlock(t *testing.T) {
	m := ir.NewModule("unreach")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	exit := b.NewBlock("exit")
	dead := b.NewBlock("dead")
	b.Br(exit)
	b.SetBlock(dead)
	b.Br(exit)
	b.SetBlock(exit)
	b.RetVoid()
	m.Finalize()

	c := BuildCFG(f)
	if c.Reachable(2) {
		t.Fatal("dead block reported reachable")
	}
	d := BuildDom(c)
	if d.Idom[2] != -1 {
		t.Fatalf("idom(dead) = %d, want -1", d.Idom[2])
	}
	if d.Dominates(2, 1) || d.Dominates(0, 2) {
		t.Fatal("dominance must not involve unreachable blocks")
	}
}

func TestLivenessAcrossBlocks(t *testing.T) {
	m := diamond(t)
	f := m.Funcs[0]
	l := BuildLiveness(BuildCFG(f))

	// p0 (register 0) is used in then and else: live into both arms.
	if !l.LiveAt(0, 1) || !l.LiveAt(0, 2) {
		t.Fatal("parameter must be live into both branch arms")
	}
	// The phi result is defined in merge: not live into merge.
	var phiDst int
	for _, in := range f.Blocks[3].Instrs {
		if in.Op == ir.OpPhi {
			phiDst = in.Dst
		}
	}
	if l.LiveAt(phiDst, 3) {
		t.Fatal("phi result must not be live into its defining block")
	}
	// Phi arguments are live OUT of their incoming predecessors.
	var aReg int
	for _, in := range f.Blocks[1].Instrs {
		if in.Op == ir.OpAdd {
			aReg = in.Dst
		}
	}
	if !l.LiveOut[1].Has(aReg) {
		t.Fatal("phi argument must be live out of its incoming block")
	}
	if l.LiveOut[2].Has(aReg) {
		t.Fatal("phi argument must not leak into the other incoming block")
	}
}

func TestDefUse(t *testing.T) {
	m := diamond(t)
	f := m.Funcs[0]
	du := BuildDefUse(f)
	if !du.SingleAssignment {
		t.Fatal("builder output must be single-assignment")
	}
	if !du.IsParam(0) || du.IsParam(1) {
		t.Fatal("IsParam misclassifies")
	}
	var add *ir.Instr
	for _, in := range f.Blocks[1].Instrs {
		if in.Op == ir.OpAdd {
			add = in
		}
	}
	if du.Def[add.Dst] != add {
		t.Fatal("Def does not map the add's register to the add")
	}
	if len(du.Uses[add.Dst]) != 1 || du.Uses[add.Dst][0].Op != ir.OpPhi {
		t.Fatalf("add result should have exactly the phi as use, got %v", du.Uses[add.Dst])
	}
}

func TestKnownBitsConstantMask(t *testing.T) {
	// x = p0 & 0xF0: bits outside 0xF0 are known zero.
	m := ir.NewModule("kb")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	x := b.Bin(ir.OpAnd, ir.Reg(0, ir.I64), ir.ConstI(0xF0))
	y := b.Bin(ir.OpOr, x, ir.ConstI(0x7))
	b.CallB(ir.BuiltinEmitI, y)
	b.RetVoid()
	m.Finalize()

	kb := BuildKnownBits(f, BuildCFG(f))
	if kb.Zero[x.Reg]&^0xF0 != ^uint64(0xF0) {
		t.Fatalf("and-mask known zeros wrong: %#x", kb.Zero[x.Reg])
	}
	if kb.One[y.Reg]&0x7 != 0x7 {
		t.Fatalf("or-mask known ones wrong: %#x", kb.One[y.Reg])
	}
}

func TestDemandConstAndMasksHighBits(t *testing.T) {
	// v = add p0, p0; w = v & 0xFF; emiti w. Only the low byte of v is
	// demanded; bits 8..63 are provably masked.
	m := ir.NewModule("mask")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	v := b.Bin(ir.OpAdd, ir.Reg(0, ir.I64), ir.Reg(0, ir.I64))
	w := b.Bin(ir.OpAnd, v, ir.ConstI(0xFF))
	b.CallB(ir.BuiltinEmitI, w)
	b.RetVoid()
	m.Finalize()

	tri := NewTriage(m)
	var vIn *ir.Instr
	for _, in := range m.Instrs {
		if in.Op == ir.OpAdd {
			vIn = in
		}
	}
	if got := tri.DemandedBits(vIn.ID); got != 0xFF {
		t.Fatalf("demand(add) = %#x, want 0xFF", got)
	}
	verdict, proof := tri.Site(vIn.ID, 40)
	if verdict != VerdictProvablyMasked || proof != ProofMaskedBits {
		t.Fatalf("high bit of masked add: verdict %v proof %v", verdict, proof)
	}
	if v, _ := tri.Site(vIn.ID, 3); v != VerdictUnknown {
		t.Fatal("low bit of masked add must stay unknown")
	}
	_ = v
	_ = w
}

func TestDemandDeadPhiCycle(t *testing.T) {
	// A loop-carried phi cycle (p -> q -> p) never observed: classic DCE
	// cannot remove it (each member has a use), but no bit is demanded.
	m := ir.NewModule("deadphi")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	entry := b.Block()
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)

	b.SetBlock(body)
	// Filled after the phis exist.

	b.SetBlock(head)
	i := b.Phi(ir.I64, []ir.Operand{ir.ConstI(0), ir.Operand{}}, []*ir.Block{entry, body})
	p := b.Phi(ir.I64, []ir.Operand{ir.ConstI(7), ir.Operand{}}, []*ir.Block{entry, body})
	c := b.ICmp(ir.PredLT, i, ir.ConstI(4))
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	i2 := b.Bin(ir.OpAdd, i, ir.ConstI(1))
	q := b.Bin(ir.OpMul, p, ir.ConstI(3))
	b.Br(head)

	// Patch the loop-carried phi inputs.
	var phis []*ir.Instr
	for _, in := range head.Instrs {
		if in.Op == ir.OpPhi {
			phis = append(phis, in)
		}
	}
	phis[0].Args[1] = i2
	phis[1].Args[1] = q

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, i)
	b.RetVoid()
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if err := VerifySSA(m); err != nil {
		t.Fatal(err)
	}

	tri := NewTriage(m)
	// The dead cycle: phi p and mul q are fully masked dead values.
	pID, qID := phis[1].ID, -1
	for _, in := range m.Instrs {
		if in.Op == ir.OpMul {
			qID = in.ID
		}
	}
	for _, id := range []int{pID, qID} {
		if v, proof := tri.Site(id, 0); v != VerdictProvablyMasked || proof != ProofDeadValue {
			t.Fatalf("dead cycle member %d: verdict %v proof %v", id, v, proof)
		}
	}
	// The live counter i is demanded (it controls the loop and is emitted).
	if tri.DemandedBits(phis[0].ID) == 0 {
		t.Fatal("live loop counter must be demanded")
	}
}

func TestDemandTrapSensitivity(t *testing.T) {
	// r = div p0, p1 with the quotient unused: both operands must stay
	// fully demanded (flips can introduce or remove a divide trap).
	m := ir.NewModule("trap")
	f := m.AddFunction("main", []ir.Type{ir.I64, ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	b.Bin(ir.OpDiv, ir.Reg(0, ir.I64), ir.Reg(1, ir.I64))
	b.CallB(ir.BuiltinEmitI, ir.ConstI(1))
	b.RetVoid()
	m.Finalize()

	d := BuildDemand(m, nil)
	if d.Regs[0][0] != ^uint64(0) || d.Regs[0][1] != ^uint64(0) {
		t.Fatalf("div operands demand = %#x, %#x; want full", d.Regs[0][0], d.Regs[0][1])
	}
	// The unused quotient itself is a dead value.
	tri := NewTriage(m)
	var div *ir.Instr
	for _, in := range m.Instrs {
		if in.Op == ir.OpDiv {
			div = in
		}
	}
	if v, proof := tri.Site(div.ID, 13); v != VerdictProvablyMasked || proof != ProofDeadValue {
		t.Fatalf("unused quotient: verdict %v proof %v", v, proof)
	}
	_ = f
}

func TestDeadStoreDetection(t *testing.T) {
	// An alloca that is stored to but never loaded: the store is dead and
	// the stored value provably masked with the dead-store tag.
	m := ir.NewModule("ds")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	slot := b.Alloca(ir.ConstI(1))
	v := b.Bin(ir.OpAdd, ir.Reg(0, ir.I64), ir.ConstI(5))
	b.Store(v, slot)
	b.CallB(ir.BuiltinEmitI, ir.ConstI(0))
	b.RetVoid()
	m.Finalize()

	ds := BuildDeadStores(m)
	var store, add *ir.Instr
	for _, in := range m.Instrs {
		switch in.Op {
		case ir.OpStore:
			store = in
		case ir.OpAdd:
			add = in
		}
	}
	if !ds.Dead[store.ID] {
		t.Fatal("store to never-loaded alloca must be dead")
	}
	tri := NewTriage(m)
	if v, proof := tri.Site(add.ID, 0); v != VerdictProvablyMasked || proof != ProofDeadStore {
		t.Fatalf("value feeding dead store: verdict %v proof %v", v, proof)
	}
	_ = f
}

func TestDeadStoreEscapeBlocksProof(t *testing.T) {
	// Same shape, but the slot address is passed to a callee: no longer
	// provably dead.
	m := ir.NewModule("esc")
	sink := m.AddFunction("sink", []ir.Type{ir.Ptr}, ir.Void)
	{
		sb := ir.NewBuilder(m, sink)
		sb.RetVoid()
	}
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	slot := b.Alloca(ir.ConstI(1))
	v := b.Bin(ir.OpAdd, ir.Reg(0, ir.I64), ir.ConstI(5))
	b.Store(v, slot)
	b.Call(0, ir.Void, slot)
	b.CallB(ir.BuiltinEmitI, ir.ConstI(0))
	b.RetVoid()
	m.Finalize()

	ds := BuildDeadStores(m)
	for _, in := range m.Instrs {
		if in.Op == ir.OpStore && ds.Dead[in.ID] {
			t.Fatal("store to escaping alloca must not be dead")
		}
	}
	_ = v
}

func TestFabsSignBitMasked(t *testing.T) {
	// y = fabs(x); emitf y: x's sign bit is provably masked.
	m := ir.NewModule("fabs")
	f := m.AddFunction("main", []ir.Type{ir.F64}, ir.Void)
	b := ir.NewBuilder(m, f)
	x := b.Bin(ir.OpFAdd, ir.Reg(0, ir.F64), ir.ConstF(1.5))
	y := b.CallB(ir.BuiltinFabs, x)
	b.CallB(ir.BuiltinEmitF, y)
	b.RetVoid()
	m.Finalize()

	tri := NewTriage(m)
	var fadd *ir.Instr
	for _, in := range m.Instrs {
		if in.Op == ir.OpFAdd {
			fadd = in
		}
	}
	if v, proof := tri.Site(fadd.ID, 63); v != VerdictProvablyMasked || proof != ProofMaskedBits {
		t.Fatalf("sign bit under fabs: verdict %v proof %v", v, proof)
	}
	if v, _ := tri.Site(fadd.ID, 62); v != VerdictUnknown {
		t.Fatal("exponent bits must stay unknown")
	}
	_ = f
}

func TestTriageMaskedMatchesInjectorNarrowing(t *testing.T) {
	m := diamond(t)
	tri := NewTriage(m)
	var cmp *ir.Instr
	for _, in := range m.Instrs {
		if in.Op == ir.OpICmp {
			cmp = in
		}
	}
	// The comparison feeds a branch: bit 0 demanded, never masked. The
	// injector reduces bit 40 to 40 % 1 == 0 for an i1 value.
	if tri.Masked(cmp.ID, 40, 0) {
		t.Fatal("i1 bit reduction must map high bits onto the demanded bit")
	}
	// A multi-bit mask on an i1 narrows to &1 like the interpreter: 0xFFFE
	// narrows to zero (no bit flips at all), which is trivially benign.
	if !tri.Masked(cmp.ID, 0, 0xFFFE) {
		t.Fatal("mask narrowing to zero flips nothing and must be provably benign")
	}
	// Mask 1 actually flips the demanded branch bit: not provable.
	if tri.Masked(cmp.ID, 0, 1) {
		t.Fatal("flipping the branch condition bit must stay unknown")
	}
}

func TestTriageConsistency(t *testing.T) {
	m := diamond(t)
	tri := NewTriage(m)
	for _, in := range m.Instrs {
		if !in.IsInjectable() {
			continue
		}
		w := widthMask(in.Type)
		d, mk := tri.DemandedBits(in.ID), tri.MaskedBits(in.ID)
		if d&mk != 0 || d|mk != w {
			t.Fatalf("[%d] %s: demand %#x and masked %#x must partition width %#x", in.ID, in.Op, d, mk, w)
		}
	}
}

func TestTriageForMemoizes(t *testing.T) {
	m := diamond(t)
	if TriageFor(m) != TriageFor(m) {
		t.Fatal("TriageFor must memoize per module snapshot")
	}
}

func TestVerifySSACatchesUseBeforeDef(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	r := b.NewReg()
	// Use register r before anything defines it.
	b.CallB(ir.BuiltinEmitI, ir.Reg(r, ir.I64))
	b.RetVoid()
	m.Finalize()

	err := VerifySSA(m)
	if err == nil || !strings.Contains(err.Error(), "undefined register") {
		t.Fatalf("VerifySSA = %v, want undefined-register error", err)
	}
	// And through the ir hook.
	if err := ir.VerifyStrict(m); err == nil {
		t.Fatal("VerifyStrict must reject via the registered checker")
	}
}

func TestVerifySSACatchesNonDominatingDef(t *testing.T) {
	// Define a value only in one branch arm, use it in the merge without
	// a phi: the definition does not dominate the use.
	m := ir.NewModule("nodom")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	merge := b.NewBlock("merge")
	c := b.ICmp(ir.PredLT, p0, ir.ConstI(3))
	b.CondBr(c, then, els)
	b.SetBlock(then)
	a := b.Bin(ir.OpAdd, p0, ir.ConstI(1))
	b.Br(merge)
	b.SetBlock(els)
	b.Br(merge)
	b.SetBlock(merge)
	b.CallB(ir.BuiltinEmitI, a) // invalid: a defined only in `then`
	b.RetVoid()
	m.Finalize()

	err := VerifySSA(m)
	if err == nil || !strings.Contains(err.Error(), "not dominated") {
		t.Fatalf("VerifySSA = %v, want dominance violation", err)
	}
}

func TestUpToAndWidthMask(t *testing.T) {
	cases := map[uint64]uint64{
		0:         0,
		1:         1,
		0x80:      0xFF,
		1 << 63:   ^uint64(0),
		0xF0:      0xFF,
		0x1000001: 0x1FFFFFF,
	}
	for in, want := range cases {
		if got := upTo(in); got != want {
			t.Errorf("upTo(%#x) = %#x, want %#x", in, got, want)
		}
	}
	if widthMask(ir.I1) != 1 || widthMask(ir.Void) != 0 || widthMask(ir.I64) != ^uint64(0) {
		t.Fatal("widthMask wrong")
	}
	if bits.OnesCount64(widthMask(ir.F64)) != 64 {
		t.Fatal("f64 width must be 64 bits")
	}
}

func TestBitSet(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(129)
	if !s.Has(0) || !s.Has(129) || s.Has(64) {
		t.Fatal("BitSet set/has wrong")
	}
	o := NewBitSet(130)
	o.Set(64)
	if !s.UnionWith(o) || !s.Has(64) {
		t.Fatal("UnionWith must add and report change")
	}
	if s.UnionWith(o) {
		t.Fatal("UnionWith must report no change on the second merge")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	s.Clear(64)
	if s.Has(64) {
		t.Fatal("Clear failed")
	}
}
