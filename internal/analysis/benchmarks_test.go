package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/ir"
	"repro/internal/passes"
)

// checkFacts asserts the structural invariants of a triage: demand and
// masked bits partition the type width, branch/detect conditions are
// demanded in the tested bit, and verdicts agree with the masks.
func checkFacts(t *testing.T, m *ir.Module, tri *analysis.Triage) {
	t.Helper()
	for _, in := range m.Instrs {
		if !in.IsInjectable() {
			continue
		}
		w := analysis.WidthMask(in.Type)
		d, mk := tri.DemandedBits(in.ID), tri.MaskedBits(in.ID)
		if d&mk != 0 || d|mk != w {
			t.Fatalf("[%d] %s: demand %#x / masked %#x must partition %#x", in.ID, in.Op, d, mk, w)
		}
		for b := uint(0); b < uint(in.Type.Bits()); b++ {
			v, proof := tri.Site(in.ID, b)
			if masked := mk&(1<<b) != 0; masked != (v == analysis.VerdictProvablyMasked) {
				t.Fatalf("[%d] bit %d: verdict %v disagrees with mask %#x", in.ID, b, v, mk)
			} else if masked && proof == analysis.ProofNone {
				t.Fatalf("[%d] bit %d: masked site lacks a proof tag", in.ID, b)
			}
		}
	}
	// Every branch/detect condition must be demanded in bit 0 — rule 2 of
	// the soundness argument (control sensitivity).
	d := analysis.BuildDemand(m, analysis.BuildDeadStores(m))
	for fi, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCondBr && in.Op != ir.OpDetect {
					continue
				}
				if a := in.Args[0]; a.Kind == ir.OperReg && d.Regs[fi][a.Reg]&1 == 0 {
					t.Fatalf("func %s [%d] %s: condition register %%r%d lacks bit-0 demand", f.Name, in.ID, in.Op, a.Reg)
				}
			}
		}
	}
}

// TestAnalysisOnBenchmarks validates the whole analysis chain on every
// built-in benchmark module: strict SSA holds, and the triage facts are
// internally consistent.
func TestAnalysisOnBenchmarks(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m, err := b.Module()
			if err != nil {
				t.Fatal(err)
			}
			if err := ir.VerifyStrict(m); err != nil {
				t.Fatalf("strict verify: %v", err)
			}
			checkFacts(t, m, analysis.TriageFor(m))
		})
	}
}

// TestAnalysisOnTransformedBenchmarks re-validates the analysis after
// the optimization pipeline (mem2reg + CSE + DCE) rewrites each
// benchmark: the facts must hold on transformed modules too, since the
// campaign engine may run either form.
func TestAnalysisOnTransformedBenchmarks(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			orig, err := b.Module()
			if err != nil {
				t.Fatal(err)
			}
			m := orig.Clone()
			if err := passes.RunPipeline(m, passes.Mem2Reg{}, passes.CSE{}, passes.DCE{}); err != nil {
				t.Fatal(err)
			}
			if err := ir.VerifyStrict(m); err != nil {
				t.Fatalf("strict verify after passes: %v", err)
			}
			tri := analysis.NewTriage(m)
			checkFacts(t, m, tri)

			// mem2reg promotes scalars into SSA registers, which is what
			// exposes dead loop-carried cycles; the transformed module
			// must never mask FEWER sites in total than zero (sanity) and
			// the report arithmetic must be consistent.
			rep := tri.Report()
			sumBits, sumMasked := 0, 0
			for _, fr := range rep.Funcs {
				sumBits += fr.TotalBits
				sumMasked += fr.MaskedBits
			}
			if sumBits != rep.TotalBits || sumMasked != rep.MaskedBits {
				t.Fatal("report totals disagree with per-function sums")
			}
			if rep.TotalBits > 0 && (rep.MaskedSiteFrac < 0 || rep.MaskedSiteFrac > 1) {
				t.Fatalf("masked fraction %f out of range", rep.MaskedSiteFrac)
			}
		})
	}
}
