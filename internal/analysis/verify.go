package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// VerifySSA checks strict SSA-dominance well-formedness of a finalized
// module using the dominator tree: every register is assigned by at
// most one instruction, every use of a register is dominated by its
// definition (phi uses by the terminator of the matching incoming
// block), and no instruction in reachable code reads a register that is
// neither a parameter nor defined anywhere.
//
// It is registered as ir.VerifyStrict's dominance checker, so callers
// that link this package get the strict mode through the ir API.
func VerifySSA(m *ir.Module) error {
	for fi, f := range m.Funcs {
		if err := verifyFuncSSA(m, fi, f); err != nil {
			return err
		}
	}
	return nil
}

func init() { ir.RegisterStrictSSA(VerifySSA) }

func verifyFuncSSA(m *ir.Module, fi int, f *ir.Function) error {
	du := BuildDefUse(f)
	if !du.SingleAssignment {
		// Locate one offending pair for the message.
		seen := make(map[int]*ir.Instr)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() {
					continue
				}
				if first, ok := seen[in.Dst]; ok {
					return fmt.Errorf("func %s: register %%r%d assigned by [%d] %s and [%d] %s",
						f.Name, in.Dst, first.ID, first.Op, in.ID, in.Op)
				}
				seen[in.Dst] = in
			}
		}
	}
	cfg := BuildCFG(f)
	dom := BuildDom(cfg)

	// defAt[r] = (block, position) of r's definition.
	type defPos struct{ block, pos int }
	defs := make(map[int]defPos)
	for bi, b := range f.Blocks {
		for pi, in := range b.Instrs {
			if in.HasResult() {
				defs[in.Dst] = defPos{bi, pi}
			}
		}
	}

	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			continue // dominance is undefined off the entry's region
		}
		for pi, in := range b.Instrs {
			for ai, a := range in.Args {
				if a.Kind != ir.OperReg {
					continue
				}
				if du.IsParam(a.Reg) {
					continue
				}
				dp, ok := defs[a.Reg]
				if !ok {
					return fmt.Errorf("func %s bb%d pos %d [%d] %s: use of undefined register %%r%d",
						f.Name, bi, pi, in.ID, in.Op, a.Reg)
				}
				if in.Op == ir.OpPhi {
					// The use happens on the edge from the incoming
					// block: the def must dominate that block's exit.
					pred := in.Succs[ai]
					if !cfg.Reachable(pred) {
						continue
					}
					if !dom.Dominates(dp.block, pred) {
						return fmt.Errorf("func %s bb%d pos %d [%d] phi: incoming %%r%d from bb%d not dominated by its definition in bb%d",
							f.Name, bi, pi, in.ID, a.Reg, pred, dp.block)
					}
					continue
				}
				if dp.block == bi {
					if dp.pos >= pi {
						return fmt.Errorf("func %s bb%d pos %d [%d] %s: use of %%r%d before its definition at pos %d",
							f.Name, bi, pi, in.ID, in.Op, a.Reg, dp.pos)
					}
					continue
				}
				if !dom.StrictlyDominates(dp.block, bi) {
					return fmt.Errorf("func %s bb%d pos %d [%d] %s: use of %%r%d not dominated by its definition in bb%d",
						f.Name, bi, pi, in.ID, in.Op, a.Reg, dp.block)
				}
			}
		}
	}
	return nil
}
