package analysis

// Unit tests for the analysis v2 layer: value ranges (widening, branch
// refinement), memory SSA (shadowed stores), the flip-image algebra
// behind range-masking proofs, detection proofs, and the triage v3
// verdicts they feed. The differential fact checker in replay_test.go
// covers the same analyses against concrete benchmark executions.

import (
	"math"
	"testing"

	"repro/internal/ir"
)

// rangeKernel builds:
//
//	entry: x = and p0, 63; c = icmp lt x, 10; condbr c, then, else
//	then:  a = add x, 1; br merge
//	else:  z = sub x, 10; br merge
//	merge: r = phi [a, then] [z, else]; emiti r; ret
func rangeKernel(t *testing.T) (*ir.Module, map[string]ir.Operand) {
	t.Helper()
	m := ir.NewModule("ranges")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)

	then := b.NewBlock("then")
	els := b.NewBlock("else")
	merge := b.NewBlock("merge")

	x := b.Bin(ir.OpAnd, p0, ir.ConstI(63))
	c := b.ICmp(ir.PredLT, x, ir.ConstI(10))
	b.CondBr(c, then, els)

	b.SetBlock(then)
	a := b.Bin(ir.OpAdd, x, ir.ConstI(1))
	b.Br(merge)

	b.SetBlock(els)
	z := b.Bin(ir.OpSub, x, ir.ConstI(10))
	b.Br(merge)

	b.SetBlock(merge)
	r := b.Phi(ir.I64, []ir.Operand{a, z}, []*ir.Block{then, els})
	b.CallB(ir.BuiltinEmitI, r)
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, map[string]ir.Operand{"x": x, "a": a, "z": z, "r": r}
}

func TestValueRangesBranchRefinement(t *testing.T) {
	m, regs := rangeKernel(t)
	f := m.Funcs[0]
	vr := BuildRanges(f, BuildCFG(f), BuildDefUse(f))

	want := map[string]Interval{
		"x": {0, 63},
		// then-edge refines x to [0, 9]; else-edge to [10, 63].
		"a": {1, 10},
		"z": {0, 53},
		"r": {0, 53},
	}
	for name, iv := range want {
		if got := vr.At(regs[name].Reg); got != iv {
			t.Errorf("%s interval = [%d, %d], want [%d, %d]", name, got.Lo, got.Hi, iv.Lo, iv.Hi)
		}
	}
}

func TestValueRangesLoopWidening(t *testing.T) {
	// i counts 0..99: widening must not lose the refined bound from the
	// exit test (header->body edge refines i < 100).
	m := ir.NewModule("loop")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)

	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)

	b.SetBlock(header)
	// Incoming operand for the backedge is patched after building body.
	i := b.Phi(ir.I64, []ir.Operand{ir.ConstI(0), ir.ConstI(0)}, []*ir.Block{f.Blocks[0], body})
	c := b.ICmp(ir.PredLT, i, ir.ConstI(100))
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	next := b.Bin(ir.OpAdd, i, ir.ConstI(1))
	b.Br(header)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, i)
	b.RetVoid()

	// Patch the backedge phi input to the increment.
	phi := f.Blocks[header.Index].Instrs[0]
	phi.Args[1] = next

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	vr := BuildRanges(f, BuildCFG(f), BuildDefUse(f))
	if got := vr.At(i.Reg); got != (Interval{0, 100}) {
		t.Errorf("phi interval = [%d, %d], want [0, 100]", got.Lo, got.Hi)
	}
	if got := vr.At(next.Reg); got != (Interval{1, 100}) {
		t.Errorf("increment interval = [%d, %d], want [1, 100]", got.Lo, got.Hi)
	}
}

func TestValueRangesUnboundedLoopWidens(t *testing.T) {
	// Same loop shape but bounded by an unknown parameter: the phi must
	// widen and TERMINATE. The converged interval is full — the exit
	// test compares two registers, which edge refinement deliberately
	// does not handle, so nothing bounds the counter and the widened
	// add overflows. Under wrapping semantics overflow-to-full is the
	// only sound answer (saturating Hi at MaxInt64 would exclude the
	// wrapped negative values a real overflow produces).
	m := ir.NewModule("loop2")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	n := ir.Reg(0, ir.I64)

	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)

	b.SetBlock(header)
	i := b.Phi(ir.I64, []ir.Operand{ir.ConstI(0), ir.ConstI(0)}, []*ir.Block{f.Blocks[0], body})
	c := b.ICmp(ir.PredLT, i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	next := b.Bin(ir.OpAdd, i, ir.ConstI(1))
	b.Br(header)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, i)
	b.RetVoid()

	phi := f.Blocks[header.Index].Instrs[0]
	phi.Args[1] = next

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	vr := BuildRanges(f, BuildCFG(f), BuildDefUse(f))
	got := vr.At(i.Reg)
	if !got.Full() {
		t.Errorf("unbounded phi interval = [%d, %d], want full", got.Lo, got.Hi)
	}
	if !got.Contains(0) || !got.Contains(math.MaxInt64) {
		t.Errorf("unbounded phi interval [%d, %d] drops reachable values", got.Lo, got.Hi)
	}
}

func TestFlipImageCoversAllFlips(t *testing.T) {
	// flipImage(r, bit) must contain x ^ (1<<bit) for every x in r.
	cases := []Interval{
		{0, 0}, {0, 7}, {5, 11}, {-3, 4}, {8, 15}, {100, 163},
		{-64, -33}, {math.MaxInt64 - 5, math.MaxInt64},
	}
	for _, r := range cases {
		for bit := uint(0); bit < 64; bit++ {
			img := flipImage(r, bit)
			for x := r.Lo; ; x++ {
				y := int64(uint64(x) ^ (1 << bit))
				if !img.Contains(y) {
					t.Fatalf("flipImage([%d,%d], %d) = [%d,%d] misses %d^bit = %d",
						r.Lo, r.Hi, bit, img.Lo, img.Hi, x, y)
				}
				if x == r.Hi {
					break
				}
			}
		}
	}
}

// shadowKernel: v = add p0, 1 is stored then immediately overwritten
// before any load; the store is shadowed and v provably masked.
func shadowKernel(t *testing.T) (*ir.Module, int) {
	t.Helper()
	m := ir.NewModule("shadow")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)

	slot := b.Alloca(ir.ConstI(1))
	v := b.Bin(ir.OpAdd, p0, ir.ConstI(1))
	b.Store(v, slot)
	b.Store(ir.ConstI(2), slot)
	x := b.Load(ir.I64, slot)
	b.CallB(ir.BuiltinEmitI, x)
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// v's instruction ID: the add is the second instruction.
	return m, f.Blocks[0].Instrs[1].ID
}

func TestMemSSAShadowedStore(t *testing.T) {
	m, vID := shadowKernel(t)
	fa := FactsFor(m)
	if len(fa.Mem.Shadowed) != 1 {
		t.Fatalf("shadowed stores = %v, want exactly one", fa.Mem.Shadowed)
	}
	tri := TriageFor(m)
	if got := tri.DemandedBits(vID); got != 0 {
		t.Fatalf("shadow-stored value demands %#x bits, want 0", got)
	}
	verdict, proof := tri.Site(vID, 3)
	if verdict != VerdictProvablyMasked || proof != ProofStoreShadowed {
		t.Fatalf("verdict = %v/%v, want masked/store-shadowed", verdict, proof)
	}
	// The proof is value-local only: it must hold for stuck-at models too.
	if !tri.MaskedFor(FaultClass{ValueLocal: true}, vID, 3, 0) {
		t.Error("store-shadowed proof rejected for a value-local class")
	}
	if tri.MaskedFor(FaultClass{}, vID, 3, 0) {
		t.Error("store-shadowed proof accepted for a non-value-local class")
	}
}

func TestMemSSAInterveningLoadBlocksShadowing(t *testing.T) {
	m := ir.NewModule("noshadow")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)

	slot := b.Alloca(ir.ConstI(1))
	b.Store(p0, slot)
	x := b.Load(ir.I64, slot) // reads the first store: not shadowed
	b.Store(ir.ConstI(2), slot)
	b.CallB(ir.BuiltinEmitI, x)
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	fa := FactsFor(m)
	if len(fa.Mem.Shadowed) != 0 {
		t.Fatalf("shadowed stores = %v, want none (intervening load)", fa.Mem.Shadowed)
	}
}

// rangeMaskKernel: x = and p0, 7 (range [0,7]) feeds only icmp lt x, 16,
// which no single-bit flip of x's low demanded bits can change.
func rangeMaskKernel(t *testing.T) (*ir.Module, int) {
	t.Helper()
	m := ir.NewModule("rangemask")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)

	x := b.Bin(ir.OpAnd, p0, ir.ConstI(7))
	c := b.ICmp(ir.PredLT, x, ir.ConstI(16))
	b.CallB(ir.BuiltinEmitI, c)
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, f.Blocks[0].Instrs[0].ID
}

func TestRangeMaskedAbsorbedCompare(t *testing.T) {
	m, xID := rangeMaskKernel(t)
	tri := TriageFor(m)
	// Bits 0..2 are demanded (the And keeps them) yet provably absorbed:
	// any flip keeps x in [0, 15], so the compare result is invariant.
	dem := tri.DemandedBits(xID)
	if dem&7 != 7 {
		t.Fatalf("demanded bits %#x, want low three demanded", dem)
	}
	rm := tri.RangeMaskedBits(xID)
	if rm&7 != 7 {
		t.Fatalf("range-masked bits %#x, want low three absorbed", rm)
	}
	verdict, proof := tri.Site(xID, 1)
	if verdict != VerdictProvablyMasked || proof != ProofRangeMasked {
		t.Fatalf("bit 1 verdict = %v/%v, want masked/range-masked", verdict, proof)
	}
	// Range proofs reason about single-bit images only: a class without
	// BitsBounded (whole-value corruption) must not use them.
	if tri.MaskedFor(FaultClass{ValueLocal: true}, xID, 1, 0) {
		t.Error("range proof accepted for a non-bits-bounded class")
	}
	// Two perturbed bits exceed what the per-bit argument covers.
	if tri.MaskedFor(DefaultFaultClass, xID, 0, 0b11) {
		t.Error("range proof accepted for a two-bit mask")
	}
}

// detectKernel duplicates v by hand: v and its clone feed an icmp eq
// followed immediately by detect, the pattern sid.Duplicate emits.
func detectKernel(t *testing.T) (*ir.Module, int) {
	t.Helper()
	m := ir.NewModule("detect")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	p0 := ir.Reg(0, ir.I64)

	v := b.Bin(ir.OpAdd, p0, ir.ConstI(3))
	dup := b.Bin(ir.OpAdd, p0, ir.ConstI(3))
	c := b.ICmp(ir.PredEQ, v, dup)
	b.Detect(c)
	b.CallB(ir.BuiltinEmitI, v)
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, f.Blocks[0].Instrs[0].ID
}

func TestProvablyDetectedRequiresAlwaysFlips(t *testing.T) {
	m, vID := detectKernel(t)
	tri := TriageFor(m)

	verdict, proof := tri.ClassifyFor(DefaultFaultClass, vID, 5, 0)
	if verdict != VerdictProvablyDetected || proof != ProofDupDetected {
		t.Fatalf("xor-class verdict = %v/%v, want detected/dup-detected", verdict, proof)
	}
	// A stuck-at fault may be the identity perturbation: the detector
	// stays quiet on it, so the proof must not fire.
	stuck := FaultClass{ValueLocal: true, BitsBounded: true}
	verdict, _ = tri.ClassifyFor(stuck, vID, 5, 0)
	if verdict == VerdictProvablyDetected {
		t.Fatal("detection proof accepted for a class that may not flip")
	}
	// Multi-bit XOR masks still provably differ from the golden value.
	verdict, _ = tri.ClassifyFor(DefaultFaultClass, vID, 0, 0b101000)
	if verdict != VerdictProvablyDetected {
		t.Fatalf("multi-bit xor verdict = %v, want detected", verdict)
	}
}

func TestFactsSingleBuildPerSnapshot(t *testing.T) {
	m, _ := rangeKernel(t)
	before := factsBuilds.Load()
	tri := TriageFor(m)
	_ = tri.Report()
	_ = FactsFor(m)
	_ = TriageFor(m).Report()
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.HasResult() {
					tri.Site(in.ID, 0)
				}
			}
		}
	}
	if got := factsBuilds.Load() - before; got != 1 {
		t.Fatalf("facts built %d times for one module snapshot, want 1", got)
	}
	// A new Finalize generation re-analyzes exactly once.
	m.Finalize()
	_ = TriageFor(m)
	_ = FactsFor(m)
	if got := factsBuilds.Load() - before; got != 2 {
		t.Fatalf("facts built %d times across two snapshots, want 2", got)
	}
}
