package analysis

import (
	"sync"

	"repro/internal/ir"
)

// Version identifies the triage rule set. It participates in pipeline
// cache keys so persisted campaign artifacts invalidate whenever the
// analysis changes; bump it with any rule change that can alter a
// classification.
const Version = "sdc-triage/v2"

// FaultClass abstracts the properties of a fault model that triage
// soundness depends on, without this package importing the injector.
// A proof is consulted only for classes it is valid for.
type FaultClass struct {
	// ValueLocal: the fault perturbs only the result value of a single
	// dynamic instruction (any combination of bits, by XOR or stuck-at).
	// All register-level models are value-local; a model corrupting
	// memory or control state directly would not be.
	ValueLocal bool
	// BitsBounded: the set of bits the fault can touch is fully
	// described by the injector's (bit, mask) site description, so
	// bit-granular proofs (ProofMaskedBits) may be applied. Models that
	// re-perturb or spread beyond the declared mask must leave this
	// false, restricting triage to whole-value proofs.
	BitsBounded bool
}

// DefaultFaultClass describes the paper's single-bit-flip model (and
// every register-value model currently registered by the injector).
var DefaultFaultClass = FaultClass{ValueLocal: true, BitsBounded: true}

// Proof tags the reason a site is provably masked. Tags are
// machine-checkable: each names the fact that justifies the verdict,
// and the differential soundness test re-validates them by injection.
type Proof uint8

const (
	// ProofNone marks an unknown (not provably masked) site.
	ProofNone Proof = iota
	// ProofDeadValue: no bit of the result can reach program output,
	// control flow, or a trap condition (demanded mask is zero). The
	// dominant instance is dead loop-carried phi cycles that classic
	// DCE cannot remove because every member has a use.
	ProofDeadValue
	// ProofMaskedBits: a proper subset of result bits is demanded; the
	// masked bits are absorbed by constant masks, shifts, truncating
	// consumers, or the interpreter's shift-amount masking.
	ProofMaskedBits
	// ProofDeadStore: the value is demanded only by stores into memory
	// objects that are never read, flagged dead by the memory pass.
	ProofDeadStore
)

// ValidFor reports whether a verdict carrying proof p is sound under
// fault class cl. Whole-value proofs (DeadValue, DeadStore) hold for
// any value-local model: no matter how the bits are perturbed, the
// result never reaches output, control flow, or a trap. Bit-granular
// proofs (MaskedBits) additionally require the model's touched bits to
// be bounded by the declared site mask.
func (p Proof) ValidFor(cl FaultClass) bool {
	if !cl.ValueLocal {
		return false
	}
	switch p {
	case ProofDeadValue, ProofDeadStore:
		return true
	case ProofMaskedBits:
		return cl.BitsBounded
	default:
		return false
	}
}

// String returns the tag name used in reports.
func (p Proof) String() string {
	switch p {
	case ProofDeadValue:
		return "dead-value"
	case ProofMaskedBits:
		return "masked-bits"
	case ProofDeadStore:
		return "dead-store"
	default:
		return "none"
	}
}

// Verdict classifies one fault site.
type Verdict uint8

const (
	// VerdictUnknown: the analysis cannot prove the site benign; the
	// campaign must execute it.
	VerdictUnknown Verdict = iota
	// VerdictProvablyMasked: flipping this site can never change the
	// program's outcome; the campaign may count it benign unrun.
	VerdictProvablyMasked
)

// Triage is the per-module fault-site classification. All methods are
// safe for concurrent use after construction (the struct is immutable).
type Triage struct {
	mod *ir.Module

	// demand[id] is the demanded-bit mask of instruction id's result
	// (within its type width); masked[id] the complementary provably
	// masked bits. proof[id] tags why masked[id] is nonzero.
	demand []uint64
	masked []uint64
	proof  []Proof

	// sound is false when the module is not in single-assignment form;
	// every site is then VerdictUnknown.
	sound bool
}

// NewTriage analyzes m and classifies every injection site. Modules not
// in single-assignment register form yield an inert triage that masks
// nothing.
func NewTriage(m *ir.Module) *Triage {
	t := &Triage{
		mod:    m,
		demand: make([]uint64, m.NumInstrs()),
		masked: make([]uint64, m.NumInstrs()),
		proof:  make([]Proof, m.NumInstrs()),
		sound:  true,
	}
	for _, f := range m.Funcs {
		if !BuildDefUse(f).SingleAssignment {
			t.sound = false
		}
	}
	if !t.sound {
		for id := range t.demand {
			t.demand[id] = fullDemand
		}
		return t
	}

	ds := BuildDeadStores(m)
	dem := BuildDemand(m, ds)
	for fi, f := range m.Funcs {
		du := BuildDefUse(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() {
					t.demand[in.ID] = fullDemand
					continue
				}
				width := widthMask(in.Type)
				d := dem.Regs[fi][in.Dst] & width
				t.demand[in.ID] = d
				t.masked[in.ID] = width &^ d
				switch {
				case t.masked[in.ID] == 0:
					t.proof[in.ID] = ProofNone
				case d == 0 && feedsDeadStore(du, in, ds):
					t.proof[in.ID] = ProofDeadStore
				case d == 0:
					t.proof[in.ID] = ProofDeadValue
				default:
					t.proof[in.ID] = ProofMaskedBits
				}
			}
		}
	}
	return t
}

// feedsDeadStore reports whether some use of in's result is a store the
// memory pass proved dead (used to attribute the proof tag).
func feedsDeadStore(du *DefUse, in *ir.Instr, ds *DeadStores) bool {
	for _, u := range du.Uses[in.Dst] {
		if u.Op == ir.OpStore && ds.Dead[u.ID] {
			return true
		}
	}
	return false
}

// DemandedBits returns the demanded-bit mask of instruction id's result.
func (t *Triage) DemandedBits(id int) uint64 { return t.demand[id] }

// MaskedBits returns the provably masked bits of instruction id's
// result (zero for unknown or non-injectable sites).
func (t *Triage) MaskedBits(id int) uint64 { return t.masked[id] }

// Site classifies the single-bit fault site (id, bit). bit follows the
// injector's convention and is reduced modulo the value width.
func (t *Triage) Site(id int, bit uint) (Verdict, Proof) {
	in := t.mod.Instrs[id]
	if !in.IsInjectable() {
		return VerdictUnknown, ProofNone
	}
	b := bit % in.Type.Bits()
	if t.masked[id]&(1<<b) != 0 {
		return VerdictProvablyMasked, t.proof[id]
	}
	return VerdictUnknown, ProofNone
}

// Masked reports whether the fault described by (bit, mask) — the
// injector's single-bit Bit or, when mask is nonzero, a multi-bit XOR
// mask — is provably benign at instruction id. The mask is narrowed
// exactly as the interpreter narrows it before flipping. Masked assumes
// the default (single-bit-flip) fault class; campaigns running other
// models use MaskedFor.
func (t *Triage) Masked(id int, bit uint, mask uint64) bool {
	return t.MaskedFor(DefaultFaultClass, id, bit, mask)
}

// MaskedFor is Masked under an explicit fault class: the verdict is
// reported only when the proof backing it is valid for cl. Stuck-at
// models narrow to their declared mask exactly like XOR models, so the
// same subset check applies; classes without bounded bits fall back to
// whole-value proofs only (demanded mask zero).
func (t *Triage) MaskedFor(cl FaultClass, id int, bit uint, mask uint64) bool {
	if !t.sound || !cl.ValueLocal {
		return false
	}
	in := t.mod.Instrs[id]
	if !in.IsInjectable() {
		return false
	}
	if !cl.BitsBounded {
		// The site description cannot be trusted bit-by-bit; only a
		// whole-value proof (every perturbation of a dead value is
		// benign) may prune, and only when valid for cl.
		return t.demand[id] == 0 && t.proof[id].ValidFor(cl)
	}
	if mask != 0 {
		if in.Type == ir.I1 {
			mask &= 1
		}
		if mask == 0 {
			// Narrowing zeroed the mask: the injector perturbs nothing
			// (XOR and stuck-at alike), trivially benign for any model.
			return true
		}
		return t.proof[id].ValidFor(cl) && mask&^t.masked[id] == 0
	}
	b := bit % in.Type.Bits()
	return t.proof[id].ValidFor(cl) && t.masked[id]&(1<<b) != 0
}

// triageKey identifies one immutable module snapshot, mirroring the
// (pointer, version) identity the interpreter's image cache uses.
type triageKey struct {
	mod     *ir.Module
	version uint64
}

var triageCache sync.Map // triageKey -> *Triage

// TriageFor returns the memoized triage of m's current finalized
// snapshot, computing it on first use. Modules are analyzed at most
// once per Finalize generation.
func TriageFor(m *ir.Module) *Triage {
	key := triageKey{mod: m, version: m.Version()}
	if v, ok := triageCache.Load(key); ok {
		return v.(*Triage)
	}
	t := NewTriage(m)
	actual, _ := triageCache.LoadOrStore(key, t)
	return actual.(*Triage)
}
