package analysis

import (
	"sync"

	"repro/internal/ir"
)

// Version identifies the triage rule set. It participates in pipeline
// cache keys so persisted campaign artifacts invalidate whenever the
// analysis changes; bump it with any rule change that can alter a
// classification.
const Version = "sdc-triage/v1"

// Proof tags the reason a site is provably masked. Tags are
// machine-checkable: each names the fact that justifies the verdict,
// and the differential soundness test re-validates them by injection.
type Proof uint8

const (
	// ProofNone marks an unknown (not provably masked) site.
	ProofNone Proof = iota
	// ProofDeadValue: no bit of the result can reach program output,
	// control flow, or a trap condition (demanded mask is zero). The
	// dominant instance is dead loop-carried phi cycles that classic
	// DCE cannot remove because every member has a use.
	ProofDeadValue
	// ProofMaskedBits: a proper subset of result bits is demanded; the
	// masked bits are absorbed by constant masks, shifts, truncating
	// consumers, or the interpreter's shift-amount masking.
	ProofMaskedBits
	// ProofDeadStore: the value is demanded only by stores into memory
	// objects that are never read, flagged dead by the memory pass.
	ProofDeadStore
)

// String returns the tag name used in reports.
func (p Proof) String() string {
	switch p {
	case ProofDeadValue:
		return "dead-value"
	case ProofMaskedBits:
		return "masked-bits"
	case ProofDeadStore:
		return "dead-store"
	default:
		return "none"
	}
}

// Verdict classifies one fault site.
type Verdict uint8

const (
	// VerdictUnknown: the analysis cannot prove the site benign; the
	// campaign must execute it.
	VerdictUnknown Verdict = iota
	// VerdictProvablyMasked: flipping this site can never change the
	// program's outcome; the campaign may count it benign unrun.
	VerdictProvablyMasked
)

// Triage is the per-module fault-site classification. All methods are
// safe for concurrent use after construction (the struct is immutable).
type Triage struct {
	mod *ir.Module

	// demand[id] is the demanded-bit mask of instruction id's result
	// (within its type width); masked[id] the complementary provably
	// masked bits. proof[id] tags why masked[id] is nonzero.
	demand []uint64
	masked []uint64
	proof  []Proof

	// sound is false when the module is not in single-assignment form;
	// every site is then VerdictUnknown.
	sound bool
}

// NewTriage analyzes m and classifies every injection site. Modules not
// in single-assignment register form yield an inert triage that masks
// nothing.
func NewTriage(m *ir.Module) *Triage {
	t := &Triage{
		mod:    m,
		demand: make([]uint64, m.NumInstrs()),
		masked: make([]uint64, m.NumInstrs()),
		proof:  make([]Proof, m.NumInstrs()),
		sound:  true,
	}
	for _, f := range m.Funcs {
		if !BuildDefUse(f).SingleAssignment {
			t.sound = false
		}
	}
	if !t.sound {
		for id := range t.demand {
			t.demand[id] = fullDemand
		}
		return t
	}

	ds := BuildDeadStores(m)
	dem := BuildDemand(m, ds)
	for fi, f := range m.Funcs {
		du := BuildDefUse(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() {
					t.demand[in.ID] = fullDemand
					continue
				}
				width := widthMask(in.Type)
				d := dem.Regs[fi][in.Dst] & width
				t.demand[in.ID] = d
				t.masked[in.ID] = width &^ d
				switch {
				case t.masked[in.ID] == 0:
					t.proof[in.ID] = ProofNone
				case d == 0 && feedsDeadStore(du, in, ds):
					t.proof[in.ID] = ProofDeadStore
				case d == 0:
					t.proof[in.ID] = ProofDeadValue
				default:
					t.proof[in.ID] = ProofMaskedBits
				}
			}
		}
	}
	return t
}

// feedsDeadStore reports whether some use of in's result is a store the
// memory pass proved dead (used to attribute the proof tag).
func feedsDeadStore(du *DefUse, in *ir.Instr, ds *DeadStores) bool {
	for _, u := range du.Uses[in.Dst] {
		if u.Op == ir.OpStore && ds.Dead[u.ID] {
			return true
		}
	}
	return false
}

// DemandedBits returns the demanded-bit mask of instruction id's result.
func (t *Triage) DemandedBits(id int) uint64 { return t.demand[id] }

// MaskedBits returns the provably masked bits of instruction id's
// result (zero for unknown or non-injectable sites).
func (t *Triage) MaskedBits(id int) uint64 { return t.masked[id] }

// Site classifies the single-bit fault site (id, bit). bit follows the
// injector's convention and is reduced modulo the value width.
func (t *Triage) Site(id int, bit uint) (Verdict, Proof) {
	in := t.mod.Instrs[id]
	if !in.IsInjectable() {
		return VerdictUnknown, ProofNone
	}
	b := bit % in.Type.Bits()
	if t.masked[id]&(1<<b) != 0 {
		return VerdictProvablyMasked, t.proof[id]
	}
	return VerdictUnknown, ProofNone
}

// Masked reports whether the fault described by (bit, mask) — the
// injector's single-bit Bit or, when mask is nonzero, a multi-bit XOR
// mask — is provably benign at instruction id. The mask is narrowed
// exactly as the interpreter narrows it before flipping.
func (t *Triage) Masked(id int, bit uint, mask uint64) bool {
	if !t.sound {
		return false
	}
	in := t.mod.Instrs[id]
	if !in.IsInjectable() {
		return false
	}
	if mask != 0 {
		if in.Type == ir.I1 {
			mask &= 1
		}
		return mask&^t.masked[id] == 0
	}
	b := bit % in.Type.Bits()
	return t.masked[id]&(1<<b) != 0
}

// triageKey identifies one immutable module snapshot, mirroring the
// (pointer, version) identity the interpreter's image cache uses.
type triageKey struct {
	mod     *ir.Module
	version uint64
}

var triageCache sync.Map // triageKey -> *Triage

// TriageFor returns the memoized triage of m's current finalized
// snapshot, computing it on first use. Modules are analyzed at most
// once per Finalize generation.
func TriageFor(m *ir.Module) *Triage {
	key := triageKey{mod: m, version: m.Version()}
	if v, ok := triageCache.Load(key); ok {
		return v.(*Triage)
	}
	t := NewTriage(m)
	actual, _ := triageCache.LoadOrStore(key, t)
	return actual.(*Triage)
}
