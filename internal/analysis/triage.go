package analysis

import (
	"sync"

	"repro/internal/ir"
)

// Version identifies the triage rule set. It participates in pipeline
// cache keys so persisted campaign artifacts invalidate whenever the
// analysis changes; bump it with any rule change that can alter a
// classification.
const Version = "sdc-triage/v3"

// FaultClass abstracts the properties of a fault model that triage
// soundness depends on, without this package importing the injector.
// A proof is consulted only for classes it is valid for.
type FaultClass struct {
	// ValueLocal: the fault perturbs only the result value of a single
	// dynamic instruction (any combination of bits, by XOR or stuck-at).
	// All register-level models are value-local; a model corrupting
	// memory or control state directly would not be.
	ValueLocal bool
	// BitsBounded: the set of bits the fault can touch is fully
	// described by the injector's (bit, mask) site description, so
	// bit-granular proofs (ProofMaskedBits) may be applied. Models that
	// re-perturb or spread beyond the declared mask must leave this
	// false, restricting triage to whole-value proofs.
	BitsBounded bool
	// AlwaysFlips: every effect the model injects CHANGES the target
	// value (an XOR with a nonzero narrowed mask). Detection proofs
	// (ProofDupDetected) require it: a stuck-at perturbation may leave
	// the value unchanged, making "guaranteed detected" unsound —
	// the unchanged execution is benign, not detected.
	AlwaysFlips bool
}

// DefaultFaultClass describes the paper's single-bit-flip model (and
// every XOR-mask model currently registered by the injector).
var DefaultFaultClass = FaultClass{ValueLocal: true, BitsBounded: true, AlwaysFlips: true}

// Proof tags the fact backing a verdict. Tags are machine-checkable:
// each names the analysis fact that justifies the classification, and
// the differential soundness tests re-validate them by injection.
type Proof uint8

const (
	// ProofNone marks an unknown site (or a trivially-benign one whose
	// narrowed effect mask is empty).
	ProofNone Proof = iota
	// ProofDeadValue: no bit of the result can reach program output,
	// control flow, or a trap condition (demanded mask is zero). The
	// dominant instance is dead loop-carried phi cycles that classic
	// DCE cannot remove because every member has a use.
	ProofDeadValue
	// ProofMaskedBits: a proper subset of result bits is demanded; the
	// masked bits are absorbed by constant masks, shifts, truncating
	// consumers, or the interpreter's shift-amount masking.
	ProofMaskedBits
	// ProofDeadStore: the value is demanded only by stores into memory
	// objects that are never read, flagged dead by the memory pass.
	ProofDeadStore
	// ProofStoreShadowed: the value is demanded only by stores that are
	// provably overwritten before any load can observe them (memory-SSA
	// same-block store chains over non-escaping allocas).
	ProofStoreShadowed
	// ProofRangeMasked: the flipped bit is demanded, but every
	// demanding use is a comparison or division against a constant
	// whose result the value-range analysis proves invariant under the
	// flip. Valid only for effects perturbing exactly one bit.
	ProofRangeMasked
	// ProofDupDetected: every value-changing perturbation trips an
	// armed detector before any other observable (the duplication
	// check's eq+detect pair, or an immediately-following detect). The
	// site is counted Detected without execution. Valid only for
	// always-flipping (XOR) fault classes.
	ProofDupDetected
)

// ValidFor reports whether a verdict carrying proof p is sound under
// fault class cl. Whole-value proofs (DeadValue, DeadStore,
// StoreShadowed) hold for any value-local model: no matter how the
// bits are perturbed, the result never reaches output, control flow,
// or a trap. Bit-granular proofs (MaskedBits, RangeMasked)
// additionally require the model's touched bits to be bounded by the
// declared site mask; detection proofs require every effect to change
// the value.
func (p Proof) ValidFor(cl FaultClass) bool {
	if !cl.ValueLocal {
		return false
	}
	switch p {
	case ProofDeadValue, ProofDeadStore, ProofStoreShadowed:
		return true
	case ProofMaskedBits, ProofRangeMasked:
		return cl.BitsBounded
	case ProofDupDetected:
		return cl.AlwaysFlips
	default:
		return false
	}
}

// String returns the tag name used in reports and metrics.
func (p Proof) String() string {
	switch p {
	case ProofDeadValue:
		return "dead-value"
	case ProofMaskedBits:
		return "masked-bits"
	case ProofDeadStore:
		return "dead-store"
	case ProofStoreShadowed:
		return "store-shadowed"
	case ProofRangeMasked:
		return "range-masked"
	case ProofDupDetected:
		return "dup-detected"
	default:
		return "none"
	}
}

// Verdict classifies one fault site.
type Verdict uint8

const (
	// VerdictUnknown: the analysis cannot prove the site's outcome; the
	// campaign must execute it.
	VerdictUnknown Verdict = iota
	// VerdictProvablyMasked: the fault can never change the program's
	// outcome; the campaign may count it benign unrun.
	VerdictProvablyMasked
	// VerdictProvablyDetected: the fault always trips an armed detector
	// before any other observable; the campaign may count it detected
	// unrun.
	VerdictProvablyDetected
)

// Triage is the per-module fault-site classification. All methods are
// safe for concurrent use after construction (the struct is immutable).
type Triage struct {
	mod   *ir.Module
	facts *Facts

	// demand[id] is the demanded-bit mask of instruction id's result
	// (within its type width); masked[id] the complementary provably
	// masked bits; rangeMasked[id] the demanded bits additionally
	// absorbed under single-bit flips. proof[id] tags why masked[id]
	// is nonzero.
	demand      []uint64
	masked      []uint64
	rangeMasked []uint64
	proof       []Proof

	// detectAll/detectNext are the detection facts (detectproof.go).
	detectAll  []bool
	detectNext []bool

	// sound is false when the module is not in single-assignment form;
	// every site is then VerdictUnknown.
	sound bool
}

// NewTriage analyzes m and classifies every injection site. Modules
// not in single-assignment register form yield an inert triage that
// proves nothing. All underlying analyses come from the memoized
// FactsFor bundle, so repeated triage queries (and the -analyze
// report) never rebuild CFGs or dominators.
func NewTriage(m *ir.Module) *Triage {
	fa := FactsFor(m)
	t := &Triage{
		mod:    m,
		facts:  fa,
		demand: make([]uint64, m.NumInstrs()),
		masked: make([]uint64, m.NumInstrs()),
		proof:  make([]Proof, m.NumInstrs()),
		sound:  fa.SingleAssignment,
	}
	if !t.sound {
		for id := range t.demand {
			t.demand[id] = fullDemand
		}
		return t
	}
	t.rangeMasked = fa.RangeMasked
	t.detectAll = fa.Detect.all
	t.detectNext = fa.Detect.next

	for fi, f := range m.Funcs {
		du := fa.DefUses[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() {
					t.demand[in.ID] = fullDemand
					continue
				}
				width := widthMask(in.Type)
				d := fa.Dem.Regs[fi][in.Dst] & width
				t.demand[in.ID] = d
				t.masked[in.ID] = width &^ d
				switch {
				case t.masked[in.ID] == 0:
					t.proof[in.ID] = ProofNone
				case d == 0 && feedsStore(du, in, fa.DS.Dead):
					t.proof[in.ID] = ProofDeadStore
				case d == 0 && feedsStore(du, in, fa.DS.Shadowed):
					t.proof[in.ID] = ProofStoreShadowed
				case d == 0:
					t.proof[in.ID] = ProofDeadValue
				default:
					t.proof[in.ID] = ProofMaskedBits
				}
			}
		}
	}
	return t
}

// feedsStore reports whether some use of in's result is a store in the
// flagged set (used to attribute the proof tag).
func feedsStore(du *DefUse, in *ir.Instr, flagged map[int]bool) bool {
	for _, u := range du.Uses[in.Dst] {
		if u.Op == ir.OpStore && flagged[u.ID] {
			return true
		}
	}
	return false
}

// Facts returns the underlying memoized analysis bundle.
func (t *Triage) Facts() *Facts { return t.facts }

// DemandedBits returns the demanded-bit mask of instruction id's result.
func (t *Triage) DemandedBits(id int) uint64 { return t.demand[id] }

// MaskedBits returns the provably masked bits of instruction id's
// result (zero for unknown or non-injectable sites). Range-absorbed
// bits are not included — they are masked only for single-bit effects;
// see RangeMaskedBits.
func (t *Triage) MaskedBits(id int) uint64 { return t.masked[id] }

// RangeMaskedBits returns the demanded bits of instruction id's result
// that are additionally absorbed under single-bit flips (zero when the
// module is not SSA).
func (t *Triage) RangeMaskedBits(id int) uint64 {
	if t.rangeMasked == nil {
		return 0
	}
	return t.rangeMasked[id]
}

// Site classifies the single-bit fault site (id, bit) under the
// default (single-bit-flip) fault class. bit follows the injector's
// convention and is reduced modulo the value width.
func (t *Triage) Site(id int, bit uint) (Verdict, Proof) {
	return t.ClassifyFor(DefaultFaultClass, id, bit, 0)
}

// Masked reports whether the fault described by (bit, mask) — the
// injector's single-bit Bit or, when mask is nonzero, a multi-bit XOR
// mask — is provably benign at instruction id. Masked assumes the
// default (single-bit-flip) fault class; campaigns running other
// models use MaskedFor or ClassifyFor.
func (t *Triage) Masked(id int, bit uint, mask uint64) bool {
	return t.MaskedFor(DefaultFaultClass, id, bit, mask)
}

// MaskedFor is Masked under an explicit fault class: true only when
// the verdict is VerdictProvablyMasked with a proof valid for cl.
func (t *Triage) MaskedFor(cl FaultClass, id int, bit uint, mask uint64) bool {
	v, _ := t.ClassifyFor(cl, id, bit, mask)
	return v == VerdictProvablyMasked
}

// ClassifyFor classifies the fault site (id, bit/mask) under fault
// class cl, returning the verdict and the proof backing it. The mask
// is narrowed exactly as the interpreter narrows it before applying
// the effect (I1 results keep only bit 0). Stuck-at models narrow to
// their declared mask exactly like XOR models, so the same subset
// check applies; classes without bounded bits fall back to whole-value
// proofs only.
func (t *Triage) ClassifyFor(cl FaultClass, id int, bit uint, mask uint64) (Verdict, Proof) {
	if !t.sound || !cl.ValueLocal {
		return VerdictUnknown, ProofNone
	}
	in := t.mod.Instrs[id]
	if !in.IsInjectable() {
		return VerdictUnknown, ProofNone
	}
	if !cl.BitsBounded {
		// The site description cannot be trusted bit-by-bit; only a
		// whole-value proof (every perturbation of a dead value is
		// benign) may prune, and only when valid for cl.
		if t.demand[id] == 0 && t.proof[id].ValidFor(cl) {
			return VerdictProvablyMasked, t.proof[id]
		}
		if cl.AlwaysFlips && t.detectAll[id] {
			return VerdictProvablyDetected, ProofDupDetected
		}
		return VerdictUnknown, ProofNone
	}
	var hit uint64
	single := true
	if mask != 0 {
		if in.Type == ir.I1 {
			mask &= 1
		}
		if mask == 0 {
			// Narrowing zeroed the mask: the injector perturbs nothing
			// (XOR and stuck-at alike), trivially benign for any model.
			return VerdictProvablyMasked, ProofNone
		}
		hit = mask
		single = mask&(mask-1) == 0
	} else {
		hit = 1 << (bit % in.Type.Bits())
	}
	eff := t.masked[id]
	if single {
		eff |= t.rangeMasked[id]
	}
	if hit&^eff == 0 {
		// Every hit bit is provably masked. Attribute the proof: if any
		// hit bit needs the range fact, the verdict rests on it (and on
		// the demand proof for the remaining bits, when any).
		if rangeBits := hit & t.rangeMasked[id] &^ t.masked[id]; rangeBits != 0 {
			demandOK := hit&t.masked[id] == 0 || t.proof[id].ValidFor(cl)
			if ProofRangeMasked.ValidFor(cl) && demandOK {
				return VerdictProvablyMasked, ProofRangeMasked
			}
		} else if t.proof[id].ValidFor(cl) {
			return VerdictProvablyMasked, t.proof[id]
		}
	}
	if cl.AlwaysFlips {
		if t.detectAll[id] {
			return VerdictProvablyDetected, ProofDupDetected
		}
		if t.detectNext[id] && hit&1 != 0 && hit&^widthMask(in.Type) == 0 {
			return VerdictProvablyDetected, ProofDupDetected
		}
	}
	return VerdictUnknown, ProofNone
}

var triageCache sync.Map // factsKey -> *Triage

// TriageFor returns the memoized triage of m's current finalized
// snapshot, computing it on first use. Modules are analyzed at most
// once per Finalize generation (the Facts bundle underneath is
// memoized the same way).
func TriageFor(m *ir.Module) *Triage {
	key := factsKey{mod: m, version: m.Version()}
	if v, ok := triageCache.Load(key); ok {
		return v.(*Triage)
	}
	t := NewTriage(m)
	actual, _ := triageCache.LoadOrStore(key, t)
	return actual.(*Triage)
}
