package analysis

import (
	"math"
	"math/bits"

	"repro/internal/ir"
)

// This file derives the RangeMasked facts: result bits whose
// single-bit corruption is provably absorbed by every demanding use,
// because each such use is a comparison or division against a CONSTANT
// whose outcome the value-range analysis proves invariant under the
// flip. This recovers sites the demanded-bits analysis alone cannot
// prune — a bit can be demanded (it influences the comparison input)
// yet still provably masked (the comparison's RESULT never changes).
//
// Soundness within the demand framework (DESIGN.md §9 rule 3): the
// only register fact consulted is the interval of the INJECTED
// register itself, which describes its fault-free value — and the
// injection model perturbs the result after it is computed, so the
// golden value always lies in the interval. Every use combines that
// interval only with the use's own constant operand; no fact about any
// other register is consulted, so reconvergent corruption cannot
// invalidate the proof. The absorption condition is checked for the
// golden value x AND the flipped value x^(1<<b) over the whole
// interval: both give the same use result, so the execution after the
// use is bit-identical to golden at every dynamic instance.
//
// The proof is per single bit and does not compose across bits (two
// absorbed flips can straddle a comparison threshold), so triage
// applies it only to effects with exactly one perturbed bit — which
// includes single-bit stuck-at effects, whose perturbed value is
// either x (trivially benign) or x^(1<<b) (covered).

// rangeEnumLimit bounds the exhaustive-check fallback: intervals with
// at most this many values are checked value by value, which catches
// absorptions the interval closed form cannot see.
const rangeEnumLimit = 4096

// buildRangeMask computes, per instruction ID, the mask of demanded
// result bits whose single-bit flip every demanding use provably
// absorbs.
func buildRangeMask(m *ir.Module, dus []*DefUse, ranges []*ValueRanges, dem *Demand, ds *DeadStores) []uint64 {
	out := make([]uint64, m.NumInstrs())
	for fi, f := range m.Funcs {
		du, vr := dus[fi], ranges[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() || in.Type != ir.I64 {
					continue
				}
				cand := dem.Regs[fi][in.Dst] & widthMask(in.Type)
				if cand == 0 {
					continue // wholly undemanded: already ProofDeadValue
				}
				r := vr.At(in.Dst)
				absorbed := cand
				for _, u := range du.Uses[in.Dst] {
					um := dem.UseDemand(fi, u, in.Dst, ds)
					pending := absorbed & um
					for pending != 0 {
						bit := uint(bits.TrailingZeros64(pending))
						pending &^= 1 << bit
						if !useAbsorbs(u, in.Dst, bit, r) {
							absorbed &^= 1 << bit
						}
					}
					if absorbed == 0 {
						break
					}
				}
				out[in.ID] = absorbed
			}
		}
	}
	return out
}

// useAbsorbs reports whether use u produces the same result for x and
// x^(1<<bit), for every x in r, where register v may appear in u.
func useAbsorbs(u *ir.Instr, v int, bit uint, r Interval) bool {
	if r.Empty() {
		return true // unreachable definition: no dynamic instance exists
	}
	switch u.Op {
	case ir.OpICmp:
		a0, a1 := u.Args[0], u.Args[1]
		a0v := a0.Kind == ir.OperReg && a0.Reg == v
		a1v := a1.Kind == ir.OperReg && a1.Reg == v
		if a0v && a1v {
			// icmp v, v: reflexive — both sides corrupt identically, the
			// result is the same constant either way.
			return true
		}
		var c int64
		pr := u.Pred
		switch {
		case a0v && a1.Kind == ir.OperConst:
			c = a1.Imm
		case a1v && a0.Kind == ir.OperConst:
			c = a0.Imm
			pr = swapPred(pr)
		default:
			return false
		}
		return icmpInvariant(pr, r, c, bit)
	case ir.OpDiv, ir.OpRem:
		// Only the dividend position is absorbable; a corrupt divisor
		// is trap-sensitive (and fully demanded) anyway.
		if !(u.Args[0].Kind == ir.OperReg && u.Args[0].Reg == v) {
			return false
		}
		rhs := u.Args[1]
		if rhs.Kind != ir.OperConst || rhs.Imm == 0 || rhs.Imm == -1 {
			return false
		}
		n, ok := r.Size()
		if !ok || n > rangeEnumLimit {
			return false
		}
		for x := r.Lo; ; x++ {
			y := x ^ (1 << bit)
			if u.Op == ir.OpDiv {
				if x/rhs.Imm != y/rhs.Imm {
					return false
				}
			} else if x%rhs.Imm != y%rhs.Imm {
				return false
			}
			if x == r.Hi {
				break
			}
		}
		return true
	default:
		return false
	}
}

// icmpInvariant reports whether `x <pred> c` has the same truth value
// for x and x^(1<<bit) across all x in r: first by the interval closed
// form (the predicate is constant over both r and its flip image),
// then by exhaustive check for small intervals.
func icmpInvariant(pred ir.Pred, r Interval, c int64, bit uint) bool {
	if v1 := cmpAlways(pred, r, c); v1 >= 0 {
		f := flipImage(r, bit)
		if v2 := cmpAlways(pred, f, c); v2 == v1 {
			return true
		}
	}
	n, ok := r.Size()
	if !ok || n > rangeEnumLimit {
		return false
	}
	for x := r.Lo; ; x++ {
		if evalPred(pred, x, c) != evalPred(pred, x^(1<<bit), c) {
			return false
		}
		if x == r.Hi {
			break
		}
	}
	return true
}

// cmpAlways evaluates `x <pred> c` over the interval: 1 when true for
// every x, 0 when false for every x, -1 when mixed or empty.
func cmpAlways(pred ir.Pred, r Interval, c int64) int {
	if r.Empty() {
		return -1
	}
	b2i := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	switch pred {
	case ir.PredEQ:
		if r.Lo == c && r.Hi == c {
			return 1
		}
		if c < r.Lo || c > r.Hi {
			return 0
		}
	case ir.PredNE:
		if r.Lo == c && r.Hi == c {
			return 0
		}
		if c < r.Lo || c > r.Hi {
			return 1
		}
	case ir.PredLT:
		if r.Hi < c || r.Lo >= c {
			return b2i(r.Hi < c)
		}
	case ir.PredLE:
		if r.Hi <= c || r.Lo > c {
			return b2i(r.Hi <= c)
		}
	case ir.PredGT:
		if r.Lo > c || r.Hi <= c {
			return b2i(r.Lo > c)
		}
	case ir.PredGE:
		if r.Lo >= c || r.Hi < c {
			return b2i(r.Lo >= c)
		}
	}
	return -1
}

// evalPred evaluates one signed comparison.
func evalPred(pred ir.Pred, x, c int64) bool {
	switch pred {
	case ir.PredEQ:
		return x == c
	case ir.PredNE:
		return x != c
	case ir.PredLT:
		return x < c
	case ir.PredLE:
		return x <= c
	case ir.PredGT:
		return x > c
	default:
		return x >= c
	}
}

// flipImage returns an interval containing {x ^ (1<<bit) : x in r}.
// When every x in r lies in the same 2^(bit+1)-aligned block with the
// same value of the flipped bit, the image is the exact translate;
// otherwise a conservative widening by 2^bit each way (the flip moves
// a value by exactly ±2^bit).
func flipImage(r Interval, bit uint) Interval {
	if r.Empty() {
		return r
	}
	if bit == 63 {
		switch {
		case r.Lo >= 0: // x ^ 2^63 = x + MinInt64 for x >= 0
			return Interval{r.Lo + math.MinInt64, r.Hi + math.MinInt64}
		case r.Hi < 0: // x ^ 2^63 = x - MinInt64 for x < 0
			return Interval{r.Lo - math.MinInt64, r.Hi - math.MinInt64}
		default:
			return fullIvl
		}
	}
	step := int64(1) << bit
	if r.Lo>>(bit+1) == r.Hi>>(bit+1) && (r.Lo>>bit)&1 == (r.Hi>>bit)&1 {
		if (r.Lo>>bit)&1 == 0 {
			return Interval{r.Lo + step, r.Hi + step}
		}
		return Interval{r.Lo - step, r.Hi - step}
	}
	lo, ok1 := subOv(r.Lo, step)
	hi, ok2 := addOv(r.Hi, step)
	if !ok1 || !ok2 {
		return fullIvl
	}
	return Interval{lo, hi}
}
