package analysis

import (
	"math/bits"

	"repro/internal/ir"
)

// This file implements the backward demanded-bits analysis the triage is
// built on. For every register it computes a 64-bit mask of bits that
// can influence the program's observable outcome: its output words, its
// termination status (traps, detection, hang), and its control flow. A
// bit OUTSIDE the mask is provably masked — flipping it in the
// register's value leaves the execution otherwise bit-identical.
//
// Soundness rests on three rules (DESIGN.md §9 gives the full argument):
//
//  1. Trap sensitivity: operands that can influence a trap condition
//     (div/rem operands, ftoi inputs, alloca sizes, load/store
//     addresses) are fully demanded regardless of whether the result is
//     used, so a masked flip can never introduce a crash.
//  2. Control sensitivity: branch and detect conditions are demanded in
//     the bit the interpreter tests, so a masked flip can never change
//     the executed path (and therefore cannot change timing, phi
//     selection, thread scheduling, or the hang budget).
//  3. Per-use transfers may consult only constants, never facts derived
//     from other registers: a register fact may be invalidated by the
//     injection itself when the corrupted value reconverges, while a
//     constant operand masks corrupt inputs unconditionally.
//
// The analysis is a least fixpoint from zero demand: interprocedural
// summaries (parameter demand, aggregated return demand) only grow, so
// the result over-approximates every call context.

const fullDemand = ^uint64(0)

// widthMask bounds demand to the representable bits of a type.
func widthMask(t ir.Type) uint64 {
	switch t {
	case ir.Void:
		return 0
	case ir.I1:
		return 1
	default:
		return fullDemand
	}
}

// upTo returns a mask covering bit 0 through the highest set bit of m:
// the demand of an operand whose corruption can only ripple upward
// (addition carries, multiplication partial products).
func upTo(m uint64) uint64 {
	if m == 0 {
		return 0
	}
	h := 63 - bits.LeadingZeros64(m)
	if h == 63 {
		return fullDemand
	}
	return 1<<(uint(h)+1) - 1
}

// Demand holds the module's demanded-bits solution.
type Demand struct {
	Mod *ir.Module

	// Regs[f][r] is the demanded-bit mask of register r in function f.
	Regs [][]uint64

	// Param[f][i] is the demand summary of function f's i-th parameter;
	// Ret[f] aggregates the demand of f's return value over all call
	// sites.
	Param [][]uint64
	Ret   []uint64
}

// BuildDemand solves the interprocedural demanded-bits fixpoint. ds may
// be nil (all stores treated as live).
func BuildDemand(m *ir.Module, ds *DeadStores) *Demand {
	d := &Demand{
		Mod:   m,
		Regs:  make([][]uint64, len(m.Funcs)),
		Param: make([][]uint64, len(m.Funcs)),
		Ret:   make([]uint64, len(m.Funcs)),
	}
	for fi, f := range m.Funcs {
		d.Regs[fi] = make([]uint64, f.NumRegs)
		d.Param[fi] = make([]uint64, len(f.Params))
	}
	for changed := true; changed; {
		changed = false
		for fi := range m.Funcs {
			if d.analyzeFunc(fi, ds) {
				changed = true
			}
		}
	}
	return d
}

// analyzeFunc recomputes one function's register demand to a local
// fixpoint under the current interprocedural summaries, updates the
// function's parameter summary, and reports whether anything grew (its
// registers, its parameter summary, or a callee's return demand).
func (d *Demand) analyzeFunc(fi int, ds *DeadStores) bool {
	f := d.Mod.Funcs[fi]
	dem := d.Regs[fi]
	anyChange := false

	var dirty bool
	bump := func(o ir.Operand, mask uint64) {
		if o.Kind != ir.OperReg {
			return
		}
		mask &= widthMask(o.Type)
		if dem[o.Reg]|mask != dem[o.Reg] {
			dem[o.Reg] |= mask
			dirty = true
		}
	}

	for {
		dirty = false
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				d.transfer(in, dem, bump, &dirty, ds)
			}
		}
		if !dirty {
			break
		}
		anyChange = true
	}

	// Fold register demand of parameter registers into the summary.
	for i := range d.Param[fi] {
		if d.Param[fi][i] != dem[i] {
			d.Param[fi][i] = dem[i]
			anyChange = true
		}
	}
	return anyChange
}

// transfer propagates demand backward through one instruction, setting
// *dirty on any growth (register demand or callee return summary).
func (d *Demand) transfer(in *ir.Instr, dem []uint64, bump func(ir.Operand, uint64), dirty *bool, ds *DeadStores) {
	var resDem uint64
	if in.HasResult() {
		resDem = dem[in.Dst] & widthMask(in.Type)
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		u := upTo(resDem)
		bump(in.Args[0], u)
		bump(in.Args[1], u)

	case ir.OpMul:
		u := upTo(resDem)
		for i := range in.Args {
			other := in.Args[1-i]
			if other.Kind == ir.OperConst {
				if other.Imm == 0 {
					continue // result is constant 0: operand irrelevant
				}
				tz := bits.TrailingZeros64(uint64(other.Imm))
				bump(in.Args[i], u>>uint(tz))
			} else {
				bump(in.Args[i], u)
			}
		}

	case ir.OpDiv, ir.OpRem:
		rhs := in.Args[1]
		// A constant divisor outside {0,-1} can never trap; any other
		// divisor makes both operands trap-sensitive (divide-by-zero,
		// MinInt64/-1 overflow), so they are fully demanded even when
		// the quotient itself is dead.
		safe := rhs.Kind == ir.OperConst && rhs.Imm != 0 && rhs.Imm != -1
		if safe {
			if resDem != 0 {
				bump(in.Args[0], fullDemand)
			}
		} else {
			bump(in.Args[0], fullDemand)
			bump(rhs, fullDemand)
		}

	case ir.OpAnd:
		for i := range in.Args {
			other := in.Args[1-i]
			if other.Kind == ir.OperConst {
				bump(in.Args[i], resDem&uint64(other.Imm))
			} else {
				bump(in.Args[i], resDem)
			}
		}
	case ir.OpOr:
		for i := range in.Args {
			other := in.Args[1-i]
			if other.Kind == ir.OperConst {
				bump(in.Args[i], resDem&^uint64(other.Imm))
			} else {
				bump(in.Args[i], resDem)
			}
		}
	case ir.OpXor:
		bump(in.Args[0], resDem)
		bump(in.Args[1], resDem)

	case ir.OpShl:
		amt := in.Args[1]
		if amt.Kind == ir.OperConst {
			bump(in.Args[0], resDem>>(uint64(amt.Imm)&63))
		} else if resDem != 0 {
			bump(in.Args[0], fullDemand)
			bump(amt, 63) // the interpreter masks shift amounts & 63
		}
	case ir.OpShr:
		amt := in.Args[1]
		if amt.Kind == ir.OperConst {
			c := uint(uint64(amt.Imm) & 63)
			u := resDem << c
			if c > 0 && resDem>>(64-c) != 0 {
				u |= 1 << 63 // high result bits replicate the sign bit
			}
			bump(in.Args[0], u)
		} else if resDem != 0 {
			bump(in.Args[0], fullDemand)
			bump(amt, 63)
		}

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		// IEEE arithmetic in the interpreter never traps; demand exists
		// only when the result does.
		if resDem != 0 {
			bump(in.Args[0], fullDemand)
			bump(in.Args[1], fullDemand)
		}

	case ir.OpICmp, ir.OpFCmp:
		if resDem != 0 {
			bump(in.Args[0], fullDemand)
			bump(in.Args[1], fullDemand)
		}

	case ir.OpIToF:
		if resDem != 0 {
			bump(in.Args[0], fullDemand)
		}
	case ir.OpFToI:
		bump(in.Args[0], fullDemand) // traps on NaN / out of range

	case ir.OpAlloca:
		// Traps on negative/oversized counts and shifts the stack
		// pointer of every later allocation.
		bump(in.Args[0], fullDemand)
	case ir.OpLoad:
		bump(in.Args[0], fullDemand) // out-of-bounds trap
	case ir.OpStore:
		if ds == nil || !ds.DeadAt(in.ID) {
			bump(in.Args[0], fullDemand)
		}
		bump(in.Args[1], fullDemand) // out-of-bounds trap

	case ir.OpGEP:
		u := upTo(resDem)
		bump(in.Args[0], u)
		bump(in.Args[1], u)

	case ir.OpBr, ir.OpJoin:
		// no value operands
	case ir.OpCondBr, ir.OpDetect:
		bump(in.Args[0], 1) // the interpreter tests value & 1

	case ir.OpRet:
		for _, a := range in.Args {
			bump(a, d.retDemand(in))
		}

	case ir.OpPhi, ir.OpSelect:
		if in.Op == ir.OpSelect {
			if resDem != 0 {
				bump(in.Args[0], 1)
			}
			bump(in.Args[1], resDem)
			bump(in.Args[2], resDem)
		} else {
			for _, a := range in.Args {
				bump(a, resDem)
			}
		}

	case ir.OpCall, ir.OpSpawn:
		params := d.Param[in.Callee]
		for i, a := range in.Args {
			bump(a, params[i])
		}
		if in.Op == ir.OpCall && d.Ret[in.Callee]|resDem != d.Ret[in.Callee] {
			d.Ret[in.Callee] |= resDem
			*dirty = true
		}

	case ir.OpCallB:
		switch in.BFunc {
		case ir.BuiltinEmitI, ir.BuiltinEmitF:
			bump(in.Args[0], fullDemand) // program output
		case ir.BuiltinFabs:
			// math.Abs clears bit 63 unconditionally (even for NaN
			// payloads), so the operand's sign bit is provably masked.
			bump(in.Args[0], resDem&^(1<<63))
		default:
			// Math builtins never trap; args matter iff the result does.
			if resDem != 0 {
				for _, a := range in.Args {
					bump(a, fullDemand)
				}
			}
		}

	case ir.OpGlobalAddr, ir.OpArrayLen:
		// no value operands
	}
}

// UseDemand returns the demand mask one use instruction u (in function
// fi) imposes on register reg, by re-running the per-instruction
// transfer with a recording sink. At the fixpoint the transfer is
// side-effect free (every |= is a no-op), so this is a pure query; it
// lets consumers (rangemask.go) attribute the total demand of a
// register to individual uses without duplicating the transfer rules.
func (d *Demand) UseDemand(fi int, u *ir.Instr, reg int, ds *DeadStores) uint64 {
	var acc uint64
	record := func(o ir.Operand, mask uint64) {
		if o.Kind == ir.OperReg && o.Reg == reg {
			acc |= mask & widthMask(o.Type)
		}
	}
	var dirty bool
	d.transfer(u, d.Regs[fi], record, &dirty, ds)
	return acc
}

// retDemand returns the demand flowing into a return statement of the
// instruction's enclosing function.
func (d *Demand) retDemand(in *ir.Instr) uint64 {
	loc := d.Mod.Loc(in.ID)
	return d.Ret[loc.Func]
}
