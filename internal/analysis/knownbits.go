package analysis

import (
	"math"
	"math/bits"

	"repro/internal/ir"
)

// kbFact is the known-bits lattice element for one register: bit i of
// Zero means "bit i is provably 0", bit i of One "provably 1". Both set
// (contradiction) encodes the optimistic top element of unreached code.
type kbFact struct{ Zero, One uint64 }

var kbUnknown = kbFact{}
var kbTop = kbFact{Zero: ^uint64(0), One: ^uint64(0)}

func kbConst(v uint64) kbFact { return kbFact{Zero: ^v, One: v} }

func (a kbFact) meet(b kbFact) kbFact {
	return kbFact{Zero: a.Zero & b.Zero, One: a.One & b.One}
}

// known reports whether every bit of the value is determined.
func (a kbFact) known() bool { return a.Zero|a.One == ^uint64(0) }

// value returns the concrete value when known() (Zero/One disjoint).
func (a kbFact) value() uint64 { return a.One }

// kbState is the per-block engine state: one fact per register.
type kbState []kbFact

// kbProblem instantiates the forward engine as constant/bit-masking
// propagation through and/or/xor/shifts/mul/add/icmp/select/phi.
type kbProblem struct{ f *ir.Function }

func (p kbProblem) Entry() kbState {
	s := make(kbState, p.f.NumRegs)
	return s // parameters and undefined registers: unknown
}

func (p kbProblem) Top() kbState {
	s := make(kbState, p.f.NumRegs)
	for i := range s {
		s[i] = kbTop
	}
	return s
}

func (p kbProblem) Meet(dst, src kbState) kbState {
	for i := range dst {
		dst[i] = dst[i].meet(src[i])
	}
	return dst
}

func (p kbProblem) Equal(a, b kbState) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p kbProblem) Clone(s kbState) kbState { return append(kbState(nil), s...) }

func (p kbProblem) Transfer(b *ir.Block, in kbState) kbState {
	for _, instr := range b.Instrs {
		if instr.HasResult() {
			in[instr.Dst] = kbTransfer(instr, in)
		}
	}
	return in
}

// kbOperand returns the fact of one operand under state s.
func kbOperand(o ir.Operand, s kbState) kbFact {
	switch o.Kind {
	case ir.OperConst:
		return kbConst(uint64(o.Imm))
	case ir.OperConstF:
		return kbConst(math.Float64bits(o.FImm))
	case ir.OperReg:
		return s[o.Reg]
	default:
		return kbUnknown
	}
}

// kbTransfer computes the known bits of one instruction's result.
func kbTransfer(in *ir.Instr, s kbState) kbFact {
	bin := func() (kbFact, kbFact) {
		return kbOperand(in.Args[0], s), kbOperand(in.Args[1], s)
	}
	var r kbFact
	switch in.Op {
	case ir.OpAnd:
		a, b := bin()
		r = kbFact{Zero: a.Zero | b.Zero, One: a.One & b.One}
	case ir.OpOr:
		a, b := bin()
		r = kbFact{Zero: a.Zero & b.Zero, One: a.One | b.One}
	case ir.OpXor:
		a, b := bin()
		r = kbFact{
			Zero: (a.Zero & b.Zero) | (a.One & b.One),
			One:  (a.Zero & b.One) | (a.One & b.Zero),
		}
	case ir.OpShl:
		a, b := bin()
		if b.known() {
			c := b.value() & 63
			r = kbFact{Zero: a.Zero<<c | (1<<c - 1), One: a.One << c}
		}
	case ir.OpShr: // arithmetic: high bits fill with the sign bit
		a, b := bin()
		if b.known() {
			c := b.value() & 63
			r = kbFact{Zero: a.Zero >> c, One: a.One >> c}
			if c > 0 {
				high := ^uint64(0) << (64 - c)
				switch {
				case a.Zero&(1<<63) != 0:
					r.Zero |= high
				case a.One&(1<<63) != 0:
					r.One |= high
				}
			}
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul:
		a, b := bin()
		if a.known() && b.known() {
			x, y := int64(a.value()), int64(b.value())
			switch in.Op {
			case ir.OpAdd:
				r = kbConst(uint64(x + y))
			case ir.OpSub:
				r = kbConst(uint64(x - y))
			default:
				r = kbConst(uint64(x * y))
			}
		} else if in.Op == ir.OpMul {
			// Trailing known-zero runs multiply: tz(a*b) >= tz(a)+tz(b).
			tz := kbTrailingZeros(a) + kbTrailingZeros(b)
			if tz > 64 {
				tz = 64
			}
			r = kbFact{Zero: lowMask(tz)}
		} else {
			// Sum/difference of values with a shared fully-known low
			// prefix: carries cannot enter from below it, so the low
			// bits are exact.
			kl := sharedKnownPrefix(a, b)
			if kl > 0 {
				var v uint64
				if in.Op == ir.OpAdd {
					v = a.value() + b.value()
				} else {
					v = a.value() - b.value()
				}
				m := lowMask(kl)
				r = kbFact{Zero: ^v & m, One: v & m}
			}
		}
	case ir.OpICmp, ir.OpFCmp:
		r = kbFact{Zero: ^uint64(1)} // boolWord result: bits 1..63 are 0
	case ir.OpSelect:
		r = kbOperand(in.Args[1], s).meet(kbOperand(in.Args[2], s))
	case ir.OpPhi:
		r = kbTop
		for _, a := range in.Args {
			r = r.meet(kbOperand(a, s))
		}
	default:
		// Loads, calls, float arithmetic, conversions, address ops:
		// nothing is structurally known about the result.
		r = kbUnknown
	}
	if in.Type == ir.I1 {
		r.Zero |= ^uint64(1)
		r.One &= 1
	}
	return r
}

// kbTrailingZeros returns the number of provably-zero low bits.
func kbTrailingZeros(a kbFact) int {
	return bits.TrailingZeros64(^a.Zero)
}

// sharedKnownPrefix returns the length of the low-bit run fully known in
// both operands.
func sharedKnownPrefix(a, b kbFact) int {
	ka := a.Zero | a.One
	kb := b.Zero | b.One
	return bits.TrailingZeros64(^(ka & kb))
}

// lowMask returns a mask of the n lowest bits (n in 0..64).
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// KnownBits holds, per register, the bits provably zero or one at the
// register's definition, assuming a fault-free execution. These facts
// are for heuristics, reporting, and tests; the demanded-bits triage
// deliberately does not consume them (see DESIGN.md §9: facts inherited
// through registers do not survive an injection at an upstream site).
type KnownBits struct {
	F         *ir.Function
	Zero, One []uint64
}

// BuildKnownBits runs the known-bits propagation over f.
func BuildKnownBits(f *ir.Function, c *CFG) *KnownBits {
	prob := kbProblem{f: f}
	ins, _ := Forward[kbState](c, prob)
	kb := &KnownBits{F: f, Zero: make([]uint64, f.NumRegs), One: make([]uint64, f.NumRegs)}
	// Replay each reachable block from its in-state, recording the fact
	// of every defined register.
	for _, bi := range c.RPO {
		s := prob.Clone(ins[bi])
		for _, in := range f.Blocks[bi].Instrs {
			if in.HasResult() {
				fact := kbTransfer(in, s)
				s[in.Dst] = fact
				kb.Zero[in.Dst] = fact.Zero
				kb.One[in.Dst] = fact.One
			}
		}
	}
	return kb
}
