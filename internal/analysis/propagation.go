package analysis

import (
	"math/bits"

	"repro/internal/ir"
)

// This file builds the static error-propagation graph: a per-site
// combination of the demanded-bits, value-range, known-bits, detection,
// and dominance facts into
//
//   - MaskedFrac: a SOUND lower bound on the fraction of single-bit
//     faults at the site that are masked (provably-masked bits over
//     width, including the range-absorbed bits);
//   - DetectedFrac: a sound lower bound on the fraction guaranteed to
//     be caught by an armed detector (1 for detectAll sites, 1/width
//     for detectNext, else 0);
//   - Score: a heuristic SDC likelihood for the remaining vulnerable
//     bits, computed by walking the def-use graph from the site to its
//     observable sinks with per-hop damping. Unlike the bounds, Score
//     carries no soundness claim — it exists to RANK sites, and is
//     validated against campaign ground truth by the static-rank
//     experiment (cmd/experiments -exp static-rank).
//
// The sink weights encode how each observable typically converts a
// corrupt value: program output is an SDC by definition (weight 1);
// live stores usually resurface (0.8); control-flow and trap-sensitive
// positions mostly crash, hang, or mask rather than silently corrupt
// (low weights). Each register hop multiplies by propDamping — deep
// chains give arithmetic masking more chances to absorb the error, the
// same intuition the paper's incubative-site search exploits.

const (
	propDamping = 0.93
	// Sink weights: the probability a corrupt value reaching this sink
	// class becomes a silent corruption.
	propWeightEmit    = 1.0
	propWeightStore   = 0.8
	propWeightRet     = 0.9
	propWeightCall    = 0.6
	propWeightControl = 0.25
	propWeightTrap    = 0.1
	// Dominator-depth damping: sites deep in the dominator tree sit
	// under more control dependences, which historically mask more.
	propDepthDamping = 0.3
)

// Propagation is the propagation-graph solution, indexed by
// instruction ID. Non-injectable sites hold zeros.
type Propagation struct {
	Mod          *ir.Module
	MaskedFrac   []float64
	DetectedFrac []float64
	Score        []float64
}

// buildPropagation combines the fact bundle into per-site bounds and
// scores. All inputs are per the module in fa.
func buildPropagation(fa *Facts) *Propagation {
	m := fa.Mod
	p := &Propagation{
		Mod:          m,
		MaskedFrac:   make([]float64, m.NumInstrs()),
		DetectedFrac: make([]float64, m.NumInstrs()),
		Score:        make([]float64, m.NumInstrs()),
	}
	for fi, f := range m.Funcs {
		du := fa.DefUses[fi]
		depths := propDomDepths(fa.Doms[fi])
		maxDepth := 1
		for _, d := range depths {
			if d > maxDepth {
				maxDepth = d
			}
		}
		// weights memoizes the sink weight per register; propStateBusy
		// marks in-progress registers so phi cycles terminate.
		weights := make([]float64, f.NumRegs)
		state := make([]uint8, f.NumRegs)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() {
					continue
				}
				width := int(in.Type.Bits())
				masked := bits.OnesCount64(fa.masked(in.ID) | fa.RangeMasked[in.ID])
				p.MaskedFrac[in.ID] = float64(masked) / float64(width)
				switch {
				case fa.Detect.all[in.ID]:
					p.DetectedFrac[in.ID] = 1
				case fa.Detect.next[in.ID]:
					p.DetectedFrac[in.ID] = 1 / float64(width)
				}
				vuln := 1 - p.MaskedFrac[in.ID] - p.DetectedFrac[in.ID]
				if vuln <= 0 {
					continue
				}
				depth := 1 - propDepthDamping*float64(depths[b.Index])/float64(maxDepth)
				p.Score[in.ID] = vuln * propSinkWeight(fa, fi, du, in.Dst, weights, state) * depth
			}
		}
	}
	return p
}

// masked returns the demand-complement mask of instruction id within
// its width (helper over the facts bundle).
func (fa *Facts) masked(id int) uint64 {
	in := fa.Mod.Instrs[id]
	if !in.IsInjectable() {
		return 0
	}
	loc := fa.Mod.Loc(id)
	return widthMask(in.Type) &^ fa.Dem.Regs[loc.Func][in.Dst]
}

const (
	propStateFresh uint8 = iota
	propStateBusy
	propStateDone
)

// propSinkWeight returns the memoized sink weight of register r: the
// maximum over all uses of the per-use conversion weight, with
// register hops damped. Cycles (loop-carried phis) contribute nothing
// on the back edge; their forward uses still count.
func propSinkWeight(fa *Facts, fi int, du *DefUse, r int, weights []float64, state []uint8) float64 {
	switch state[r] {
	case propStateDone:
		return weights[r]
	case propStateBusy:
		return 0
	}
	state[r] = propStateBusy
	var w float64
	for _, u := range du.Uses[r] {
		uw := propUseWeight(fa, fi, du, u, r, weights, state)
		if uw > w {
			w = uw
		}
	}
	weights[r] = w
	state[r] = propStateDone
	return w
}

// propUseWeight scores one use of register r.
func propUseWeight(fa *Facts, fi int, du *DefUse, u *ir.Instr, r int, weights []float64, state []uint8) float64 {
	hop := func() float64 {
		if !u.HasResult() {
			return 0
		}
		return propDamping * propSinkWeight(fa, fi, du, u.Dst, weights, state)
	}
	switch u.Op {
	case ir.OpCallB:
		if u.BFunc == ir.BuiltinEmitI || u.BFunc == ir.BuiltinEmitF {
			return propWeightEmit
		}
		return hop()
	case ir.OpStore:
		if readsOnly(u.Args[1], r) && !readsOnly(u.Args[0], r) {
			return propWeightTrap // address position: OOB trap dominates
		}
		if fa.DS.DeadAt(u.ID) {
			return 0
		}
		return propWeightStore
	case ir.OpRet:
		return propWeightRet
	case ir.OpCall, ir.OpSpawn:
		return propWeightCall
	case ir.OpCondBr, ir.OpDetect:
		return propWeightControl
	case ir.OpDiv, ir.OpRem:
		if readsOnly(u.Args[1], r) {
			rhs := u.Args[1]
			if rhs.Kind != ir.OperConst || rhs.Imm == 0 || rhs.Imm == -1 {
				return propWeightTrap
			}
		}
		return hop()
	case ir.OpLoad, ir.OpAlloca, ir.OpFToI:
		return propWeightTrap // trap-sensitive positions
	case ir.OpICmp, ir.OpFCmp:
		// A comparison collapses 64 bits to one: strong masking, and
		// its result usually feeds control.
		if !u.HasResult() {
			return 0
		}
		return 0.5 * propDamping * propSinkWeight(fa, fi, du, u.Dst, weights, state)
	default:
		return hop()
	}
}

// propDomDepths returns each block's depth in the dominator tree.
func propDomDepths(dom *DomTree) []int {
	depths := make([]int, len(dom.CFG.F.Blocks))
	var walk func(b, d int)
	walk = func(b, d int) {
		depths[b] = d
		for _, c := range dom.Children[b] {
			walk(c, d+1)
		}
	}
	walk(0, 0)
	return depths
}
