package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/ir"
)

// TestBoundariesAllBenchmarks builds boundary summaries for every
// registered benchmark and checks the structural composition proof
// obligations plus memoization and hash determinism.
func TestBoundariesAllBenchmarks(t *testing.T) {
	for _, bm := range benchprog.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			m := bm.MustModule()
			b := analysis.BuildBoundaries(m)
			if got := analysis.BuildBoundaries(m); got != b {
				t.Fatal("boundaries not memoized per (module, version)")
			}
			if len(b.Secs) != len(b.Set.Sections) {
				t.Fatalf("summaries (%d) misaligned with partition (%d)",
					len(b.Secs), len(b.Set.Sections))
			}
			if err := b.CheckComposition(); err != nil {
				t.Fatalf("composition obligations violated: %v", err)
			}
			for si := range b.Secs {
				if b.HashOf(si) != b.HashOf(si) {
					t.Fatalf("section %s: HashOf not deterministic", b.Secs[si].Name)
				}
			}
			// Every function-entry section must list the entry block.
			for fi := range m.Funcs {
				secs := b.Set.FuncSections(fi)
				found := false
				for _, si := range secs {
					for _, e := range b.Secs[si].Entries {
						if e.Block == 0 {
							found = true
						}
					}
				}
				if !found {
					t.Fatalf("func %s: no section exposes the entry block", m.Funcs[fi].Name)
				}
			}
		})
	}
}

// TestBoundaryHashBuildStable rebuilds the same benchmark from source
// twice and requires identical per-section boundary hashes: the summary
// must be a pure function of program content.
func TestBoundaryHashBuildStable(t *testing.T) {
	bm, ok := benchprog.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder benchmark missing")
	}
	m1, m2 := bm.MustModule(), bm.MustModule()
	b1, b2 := analysis.BuildBoundaries(m1), analysis.BuildBoundaries(m2)
	if len(b1.Secs) != len(b2.Secs) {
		t.Fatalf("partitions differ: %d vs %d sections", len(b1.Secs), len(b2.Secs))
	}
	for si := range b1.Secs {
		if b1.Secs[si].Name != b2.Secs[si].Name {
			t.Fatalf("section %d named %s vs %s", si, b1.Secs[si].Name, b2.Secs[si].Name)
		}
		if b1.HashOf(si) != b2.HashOf(si) {
			t.Fatalf("section %s: boundary hash unstable across builds", b1.Secs[si].Name)
		}
	}
}

// TestBoundaryHashSeesCalleeInterface: a caller section's boundary hash
// must change when a callee's interface facts (return demand) change,
// even though the caller's own text is untouched — that is the seam
// through which sectional reuse would otherwise be unsound.
func TestBoundaryHashSeesCalleeInterface(t *testing.T) {
	build := func(mask int64) *ir.Module {
		m := ir.NewModule("calleetest")
		callee := m.AddFunction("callee", []ir.Type{ir.I64}, ir.I64)
		cb := ir.NewBuilder(m, callee)
		v := cb.Bin(ir.OpAnd, ir.Reg(0, ir.I64), ir.ConstI(mask))
		cb.Ret(v)

		mf := m.AddFunction("main", []ir.Type{}, ir.I64)
		b := ir.NewBuilder(m, mf)
		r := b.Call(0, ir.I64, ir.ConstI(41))
		r = b.Bin(ir.OpAdd, r, ir.ConstI(1))
		b.CallB(ir.BuiltinEmitI, r) // program output: seeds full demand
		b.Ret(r)
		m.Finalize()
		if err := ir.Verify(m); err != nil {
			t.Fatalf("module does not verify: %v", err)
		}
		return m
	}
	wide, narrow := build(-1), build(0xff)
	bw, bn := analysis.BuildBoundaries(wide), analysis.BuildBoundaries(narrow)
	var wm, nm [32]byte
	for si := range bw.Secs {
		if bw.Secs[si].Name == "main" {
			wm = bw.HashOf(si)
		}
	}
	for si := range bn.Secs {
		if bn.Secs[si].Name == "main" {
			nm = bn.HashOf(si)
		}
	}
	if wm == nm {
		t.Fatal("caller boundary hash ignored a callee interface change")
	}
}
