package analysis

import "repro/internal/ir"

// ForwardProblem describes a forward dataflow problem over one
// function's CFG for the generic worklist engine. S is the per-block
// state (the fact holding at a block boundary).
type ForwardProblem[S any] interface {
	// Entry returns the fact holding at the entry block's start.
	Entry() S
	// Top returns the optimistic initial fact for unvisited block inputs;
	// Meet moves facts strictly down the lattice from it.
	Top() S
	// Meet combines a predecessor's out-fact into a block's in-fact,
	// returning the (possibly reused) combined state.
	Meet(dst, src S) S
	// Transfer applies block b to in and returns the out-fact. It must
	// not retain or mutate in.
	Transfer(b *ir.Block, in S) S
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b S) bool
	// Clone returns an independent copy of a fact.
	Clone(s S) S
}

// EdgeRefiner is an optional extension of ForwardProblem: a problem
// implementing it has each predecessor's out-fact refined per CFG edge
// before the meet. This is how branch-condition refinement enters the
// engine — on the edge pred→succ the refiner may sharpen the fact with
// whatever the terminator's condition implies for that edge (e.g. the
// true edge of `icmp slt x, 10` bounds x above). RefineEdge receives a
// clone it may mutate and return.
type EdgeRefiner[S any] interface {
	RefineEdge(pred, succ int, out S) S
}

// Forward solves p over c with a worklist seeded in reverse postorder
// and returns the in- and out-facts per block (indexed by block number;
// unreachable blocks keep Top).
func Forward[S any](c *CFG, p ForwardProblem[S]) (in, out []S) {
	n := len(c.F.Blocks)
	in = make([]S, n)
	out = make([]S, n)
	for b := 0; b < n; b++ {
		in[b] = p.Top()
		out[b] = p.Top()
	}

	inWork := make([]bool, n)
	work := make([]int, 0, n)
	push := func(b int) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	// Seed in RPO so the first sweep visits defs before most uses.
	for _, b := range c.RPO {
		push(b)
	}
	refiner, _ := any(p).(EdgeRefiner[S])
	for len(work) > 0 {
		// Pop from the front to keep near-RPO processing order.
		b := work[0]
		work = work[1:]
		inWork[b] = false

		var cur S
		if b == 0 {
			cur = p.Entry()
		} else {
			cur = p.Top()
			for _, pr := range c.Preds[b] {
				if !c.Reachable(pr) {
					continue
				}
				po := out[pr]
				if refiner != nil {
					po = refiner.RefineEdge(pr, b, p.Clone(po))
				}
				cur = p.Meet(cur, po)
			}
		}
		in[b] = cur
		next := p.Transfer(c.F.Blocks[b], p.Clone(cur))
		if !p.Equal(next, out[b]) {
			out[b] = next
			for _, s := range c.Succs[b] {
				push(s)
			}
		}
	}
	return in, out
}
