package analysis

import "repro/internal/ir"

// ConstFacts is the register-to-constant view of the known-bits lattice
// that the interpreter's compiled tier consumes to specialize loop bodies:
// every entry maps a register with exactly one static definition to the
// value that definition provably computes on every fault-free execution.
//
// The single-static-definition restriction exists because BuildKnownBits
// records one fact per register (the last reachable definition's), so a
// multiply-defined register's fact does not describe all of its writers.
// The fault-free qualifier matters to consumers: a flip upstream of the
// definition can change the computed value, so specialized code built from
// these facts must never run with a fault armed (see DESIGN.md §9 and the
// compiled tier's dual code streams).
type ConstFacts struct {
	F *ir.Function
	// Known maps a register number to its proven constant value.
	Known map[int]uint64
}

// BuildConstFacts runs known-bits propagation over f and extracts the
// fully-determined single-definition registers.
func BuildConstFacts(f *ir.Function, c *CFG) *ConstFacts {
	kb := BuildKnownBits(f, c)
	defs := make([]int8, f.NumRegs)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() && defs[in.Dst] < 2 {
				defs[in.Dst]++
			}
		}
	}
	cf := &ConstFacts{F: f, Known: make(map[int]uint64)}
	for reg := 0; reg < f.NumRegs; reg++ {
		if defs[reg] != 1 {
			continue
		}
		z, o := kb.Zero[reg], kb.One[reg]
		// A contradictory fact (some bit both zero and one) is the lattice
		// top: the definition was never reached by the propagation, so no
		// runtime value is attached to it.
		if z&o != 0 || z|o != ^uint64(0) {
			continue
		}
		cf.Known[reg] = o
	}
	return cf
}
