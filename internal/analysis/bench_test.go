package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
)

// BenchmarkTriage measures the cost of the full analysis chain (dead
// stores + interprocedural demanded bits + classification) per benchmark
// module, and reports the masked-site accounting as benchmark metrics so
// `make bench` lands them in BENCH_analysis.json.
func BenchmarkTriage(b *testing.B) {
	for _, bench := range benchprog.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			m, err := bench.Module()
			if err != nil {
				b.Fatal(err)
			}
			var tri *analysis.Triage
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tri = analysis.NewTriage(m)
			}
			b.StopTimer()
			rep := tri.Report()
			b.ReportMetric(rep.MaskedSiteFrac, "masked_frac")
			b.ReportMetric(float64(rep.MaskedBits), "masked_bits")
			b.ReportMetric(float64(rep.TotalBits), "total_bits")
		})
	}
}

// BenchmarkVerifySSA measures the strict SSA checker on every benchmark
// module (it runs inside test suites and CI, so its cost matters).
func BenchmarkVerifySSA(b *testing.B) {
	for _, bench := range benchprog.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			m, err := bench.Module()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := analysis.VerifySSA(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
