package analysis

import "repro/internal/ir"

// Liveness holds per-block backward register liveness for one function.
// Phi nodes follow SSA convention: a phi's arguments are uses on the
// incoming edges (live out of the matching predecessor, not live into
// the phi's block), and its destination is defined at the block head.
type Liveness struct {
	CFG *CFG

	// LiveIn[b] / LiveOut[b] are the registers live at block b's entry
	// and exit.
	LiveIn, LiveOut []BitSet
}

// BuildLiveness computes backward liveness over c with a worklist
// seeded in postorder.
func BuildLiveness(c *CFG) *Liveness {
	f := c.F
	n := len(f.Blocks)
	l := &Liveness{CFG: c, LiveIn: make([]BitSet, n), LiveOut: make([]BitSet, n)}

	// Per-block upward-exposed uses and defs. Phi args are excluded from
	// use (edge uses); phi dsts count as defs.
	use := make([]BitSet, n)
	def := make([]BitSet, n)
	// phiUse[p] accumulates, for predecessor block p, the registers its
	// outgoing edges feed into successor phis.
	phiUse := make([]BitSet, n)
	for b := range f.Blocks {
		use[b] = NewBitSet(f.NumRegs)
		def[b] = NewBitSet(f.NumRegs)
		phiUse[b] = NewBitSet(f.NumRegs)
		l.LiveIn[b] = NewBitSet(f.NumRegs)
		l.LiveOut[b] = NewBitSet(f.NumRegs)
	}
	for bi, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for i, a := range in.Args {
					if a.Kind == ir.OperReg {
						phiUse[in.Succs[i]].Set(a.Reg)
					}
				}
			} else {
				for _, a := range in.Args {
					if a.Kind == ir.OperReg && !def[bi].Has(a.Reg) {
						use[bi].Set(a.Reg)
					}
				}
			}
			if in.HasResult() {
				def[bi].Set(in.Dst)
			}
		}
	}

	// Backward fixpoint: iterate in postorder (reverse RPO) until stable.
	for changed := true; changed; {
		changed = false
		for i := len(c.RPO) - 1; i >= 0; i-- {
			b := c.RPO[i]
			out := l.LiveOut[b]
			for _, s := range c.Succs[b] {
				if out.UnionWith(l.LiveIn[s]) {
					changed = true
				}
			}
			if out.UnionWith(phiUse[b]) {
				changed = true
			}
			// in = use ∪ (out − def)
			in := NewBitSet(f.NumRegs)
			in.Copy(out)
			for w := range in {
				in[w] &^= def[b][w]
				in[w] |= use[b][w]
			}
			if l.LiveIn[b].UnionWith(in) {
				changed = true
			}
		}
	}
	return l
}

// LiveAt reports whether register r is live at the entry of block b.
func (l *Liveness) LiveAt(r, b int) bool { return l.LiveIn[b].Has(r) }
