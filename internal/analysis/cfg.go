// Package analysis is a reusable dataflow-analysis framework over the IR
// in package ir: per-function control-flow graphs, dominator trees (the
// Cooper-Harvey-Kennedy algorithm) with dominance frontiers, backward
// liveness, def-use chains, a generic forward worklist engine with a
// known-bits instantiation, an interprocedural demanded-bits analysis,
// and a dead-store pass.
//
// On top of those facts the package exposes a fault-site triage: every
// (instruction, bit) injection site of a module is classified as
// provably masked (a flip there can never change the program's outcome)
// or unknown. The fault-campaign engine consults the triage to skip
// provably masked sites, which is an attested optimization: the
// classification is backed by a machine-checkable proof tag and enforced
// by differential injection tests (see DESIGN.md §9 for the soundness
// argument).
package analysis

import "repro/internal/ir"

// CFG is the control-flow graph of one function: successor and
// predecessor block lists plus a reverse-postorder numbering of the
// reachable blocks.
type CFG struct {
	F     *ir.Function
	Succs [][]int
	Preds [][]int

	// RPO lists reachable block indices in reverse postorder (entry
	// first); RPONum maps a block index to its position in RPO, -1 for
	// unreachable blocks.
	RPO    []int
	RPONum []int
}

// BuildCFG derives the control-flow graph of f from its block
// terminators.
func BuildCFG(f *ir.Function) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:      f,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		RPONum: make([]int, n),
	}
	for i, b := range f.Blocks {
		if t := b.Terminator(); t != nil {
			c.Succs[i] = append([]int(nil), t.Succs...)
		}
	}
	for from, succs := range c.Succs {
		for _, to := range succs {
			c.Preds[to] = append(c.Preds[to], from)
		}
	}
	// Iterative postorder DFS from the entry block.
	post := make([]int, 0, n)
	visited := make([]bool, n)
	type frame struct{ block, next int }
	stack := []frame{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(c.Succs[fr.block]) {
			s := c.Succs[fr.block][fr.next]
			fr.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, fr.block)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.RPONum {
		c.RPONum[i] = -1
	}
	for i, b := range c.RPO {
		c.RPONum[b] = i
	}
	return c
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.RPONum[b] >= 0 }
