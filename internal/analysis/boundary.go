package analysis

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
)

// This file exports the boundary summaries the sectional campaign
// pipeline composes per-section SDC profiles through (DESIGN.md §13).
// For every section of the partition it records the dataflow facts at
// the section's seams: the registers live into each entry block and out
// along each exit edge, the demanded-bit mask of every boundary-crossing
// register, the known bits holding at section entries, and — for
// sections containing calls — the interprocedural parameter/return
// demand summaries of their callees. Two module snapshots whose
// untouched sections agree on content hash AND boundary-summary hash
// present identical seams to a fault injected inside those sections,
// which is the reuse-validity contract of the incremental store.

// BoundaryPoint is one seam of a section: an entry (a block with a
// predecessor outside the section, or the function entry) or an exit
// edge (a branch from a member block to a block outside the section).
type BoundaryPoint struct {
	Block int // the entry block, or the exit edge's source block
	To    int // exit successor block; -1 for entries and returns
	// Regs lists the registers crossing this seam (live-in of the entry
	// block, or live-in of the exit successor), ascending. Demand, Zero,
	// and One are parallel: the demanded-bit mask and known-bits facts of
	// each crossing register.
	Regs   []int
	Demand []uint64
	Zero   []uint64
	One    []uint64
}

// SectionSummary is the composable boundary description of one section.
type SectionSummary struct {
	Section int // index into the partition
	Func    int
	Name    string
	Entries []BoundaryPoint
	Exits   []BoundaryPoint
	// ParamDemand and RetDemand are the enclosing function's
	// interprocedural demand summaries: what a caller's fault can reach
	// through this section's function boundary.
	ParamDemand []uint64
	RetDemand   uint64
	// CalleeParams[i] holds the parameter-demand summary of the i-th
	// distinct callee invoked from inside the section (sorted by callee
	// index); CalleeRets the matching return demands. A callee whose
	// interface facts change therefore changes this section's summary
	// hash even when the section's own text is untouched.
	Callees      []int
	CalleeParams [][]uint64
	CalleeRets   []uint64
}

// Boundaries bundles the summaries of every section of one module
// snapshot, aligned with ir.PartitionSections(m).Sections.
type Boundaries struct {
	Mod  *ir.Module
	Set  *ir.SectionSet
	Secs []SectionSummary
}

type boundaryKey struct {
	mod     *ir.Module
	version uint64
}

var boundaryCache sync.Map // boundaryKey -> *Boundaries

// BuildBoundaries returns the memoized boundary summaries of m's current
// finalized snapshot.
func BuildBoundaries(m *ir.Module) *Boundaries {
	key := boundaryKey{mod: m, version: m.Version()}
	if v, ok := boundaryCache.Load(key); ok {
		return v.(*Boundaries)
	}
	b := buildBoundaries(m)
	actual, _ := boundaryCache.LoadOrStore(key, b)
	return actual.(*Boundaries)
}

func buildBoundaries(m *ir.Module) *Boundaries {
	set := ir.PartitionSections(m)
	out := &Boundaries{Mod: m, Set: set, Secs: make([]SectionSummary, len(set.Sections))}
	dem := BuildDemand(m, BuildDeadStores(m))

	// Per-function facts, computed once and shared by the function's
	// sections.
	type funcFacts struct {
		cfg  *CFG
		live *Liveness
		kbIn []kbState // known-bits in-state per block
	}
	facts := make([]funcFacts, len(m.Funcs))
	for fi, f := range m.Funcs {
		cfg := BuildCFG(f)
		ins, _ := Forward[kbState](cfg, kbProblem{f: f})
		facts[fi] = funcFacts{cfg: cfg, live: BuildLiveness(cfg), kbIn: ins}
	}

	for si, sec := range set.Sections {
		fi := sec.Func
		f := m.Funcs[fi]
		ff := facts[fi]
		member := make(map[int]bool, len(sec.Blocks))
		for _, b := range sec.Blocks {
			member[b] = true
		}
		sum := SectionSummary{Section: si, Func: fi, Name: sec.Name()}

		point := func(block, to, factBlock int) BoundaryPoint {
			p := BoundaryPoint{Block: block, To: to}
			live := ff.live.LiveIn[factBlock]
			for r := 0; r < f.NumRegs; r++ {
				if !live.Has(r) {
					continue
				}
				p.Regs = append(p.Regs, r)
				p.Demand = append(p.Demand, dem.Regs[fi][r])
				kb := ff.kbIn[factBlock][r]
				p.Zero = append(p.Zero, kb.Zero)
				p.One = append(p.One, kb.One)
			}
			return p
		}

		callees := map[int]bool{}
		for _, bi := range sec.Blocks {
			// Entry seam: function entry, or any predecessor outside.
			isEntry := bi == 0
			for _, p := range ff.cfg.Preds[bi] {
				if !member[p] {
					isEntry = true
				}
			}
			if isEntry {
				sum.Entries = append(sum.Entries, point(bi, -1, bi))
			}
			// Exit seams: edges leaving the section. The crossing facts
			// are those holding at the successor's entry.
			for _, s := range ff.cfg.Succs[bi] {
				if !member[s] {
					sum.Exits = append(sum.Exits, point(bi, s, s))
				}
			}
			for _, in := range f.Blocks[bi].Instrs {
				if in.Op == ir.OpCall || in.Op == ir.OpSpawn {
					callees[in.Callee] = true
				}
			}
		}
		sum.ParamDemand = append([]uint64(nil), dem.Param[fi]...)
		sum.RetDemand = dem.Ret[fi]
		for c := range callees {
			sum.Callees = append(sum.Callees, c)
		}
		sort.Ints(sum.Callees)
		for _, c := range sum.Callees {
			sum.CalleeParams = append(sum.CalleeParams, append([]uint64(nil), dem.Param[c]...))
			sum.CalleeRets = append(sum.CalleeRets, dem.Ret[c])
		}
		out.Secs[si] = sum
	}
	return out
}

// HashOf returns the canonical hash of section si's boundary summary.
// Like the section content hash it is free of module-wide instruction
// IDs, so it is stable under renumbering.
func (b *Boundaries) HashOf(si int) [sha256.Size]byte {
	h := sha256.New()
	s := &b.Secs[si]
	fmt.Fprintf(h, "boundary/v1 %s\n", s.Name)
	wp := func(tag string, p *BoundaryPoint) {
		fmt.Fprintf(h, "%s bb%d->%d:", tag, p.Block, p.To)
		for i, r := range p.Regs {
			fmt.Fprintf(h, " r%d d=%x z=%x o=%x", r, p.Demand[i], p.Zero[i], p.One[i])
		}
		fmt.Fprintln(h)
	}
	for i := range s.Entries {
		wp("in", &s.Entries[i])
	}
	for i := range s.Exits {
		wp("out", &s.Exits[i])
	}
	fmt.Fprintf(h, "param %x ret %x\n", s.ParamDemand, s.RetDemand)
	for i, c := range s.Callees {
		// Callee identity by name, not index: renumbering-stable.
		fmt.Fprintf(h, "callee %s param %x ret %x\n",
			b.Mod.Funcs[c].Name, s.CalleeParams[i], s.CalleeRets[i])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// CheckComposition validates the structural proof obligations that make
// per-section profiles composable: every inter-section CFG edge must
// appear exactly once as an exit of its source section and land on an
// entry of its target section, and the two sections must agree on the
// facts crossing that seam. A violation means the partition or the
// summaries are inconsistent and composition would be unsound.
func (b *Boundaries) CheckComposition() error {
	for fi := range b.Mod.Funcs {
		secs := b.Set.FuncSections(fi)
		if len(secs) == 1 {
			continue
		}
		// Index entries by block for each section of the function.
		entryOf := map[int]*BoundaryPoint{}
		secOfBlock := map[int]int{}
		for _, si := range secs {
			for _, blk := range b.Set.Sections[si].Blocks {
				secOfBlock[blk] = si
			}
			for i := range b.Secs[si].Entries {
				e := &b.Secs[si].Entries[i]
				entryOf[e.Block] = e
			}
		}
		for _, si := range secs {
			for i := range b.Secs[si].Exits {
				x := &b.Secs[si].Exits[i]
				tsec, ok := secOfBlock[x.To]
				if !ok || tsec == si {
					return fmt.Errorf("analysis: section %s exit bb%d->bb%d does not leave the section",
						b.Secs[si].Name, x.Block, x.To)
				}
				e, ok := entryOf[x.To]
				if !ok {
					return fmt.Errorf("analysis: section %s exit bb%d->bb%d lands on a non-entry of %s",
						b.Secs[si].Name, x.Block, x.To, b.Secs[tsec].Name)
				}
				if len(e.Regs) != len(x.Regs) {
					return fmt.Errorf("analysis: seam bb%d->bb%d: exit carries %d regs, entry %d",
						x.Block, x.To, len(x.Regs), len(e.Regs))
				}
				for j, r := range x.Regs {
					if e.Regs[j] != r || e.Demand[j] != x.Demand[j] {
						return fmt.Errorf("analysis: seam bb%d->bb%d disagrees on reg %d",
							x.Block, x.To, r)
					}
				}
			}
		}
	}
	return nil
}
