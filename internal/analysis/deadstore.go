package analysis

import "repro/internal/ir"

// DeadStores flags stores whose stored value can never be observed: the
// store's address provably points only into memory objects (globals or
// allocas) that are never loaded from and whose address never escapes
// the provenance analysis. The granularity is whole objects — "dead
// before any load" holds trivially because no load from the object
// exists anywhere in the module — which keeps the escape reasoning
// airtight in the presence of threads and calls.
type DeadStores struct {
	// Dead[id] is true when static store instruction id is dead.
	Dead map[int]bool
}

// object ids: globals get 0..G-1, each alloca instruction one id above.
type objSet struct {
	top  bool
	objs []int
}

func (s *objSet) add(o int) bool {
	for _, x := range s.objs {
		if x == o {
			return false
		}
	}
	s.objs = append(s.objs, o)
	return true
}

func (s *objSet) union(o objSet) bool {
	if s.top {
		return false
	}
	if o.top {
		s.top = true
		s.objs = nil
		return true
	}
	changed := false
	for _, x := range o.objs {
		if s.add(x) {
			changed = true
		}
	}
	return changed
}

// BuildDeadStores runs the module-wide provenance analysis.
func BuildDeadStores(m *ir.Module) *DeadStores {
	numGlobals := len(m.Globals)
	allocaObj := make(map[int]int) // alloca instr ID -> object id
	for _, in := range m.Instrs {
		if in.Op == ir.OpAlloca {
			allocaObj[in.ID] = numGlobals + len(allocaObj)
		}
	}
	numObjs := numGlobals + len(allocaObj)

	loaded := make([]bool, numObjs)
	escaped := make([]bool, numObjs)
	allLoaded := false
	markAll := func(flags []bool, s objSet) {
		for _, o := range s.objs {
			flags[o] = true
		}
	}

	funcPts := make([][]objSet, len(m.Funcs))
	for fi, f := range m.Funcs {
		pts := make([]objSet, f.NumRegs)
		// Pointer-typed parameters have unknown provenance.
		for r, t := range f.Params {
			if t == ir.Ptr {
				pts[r].top = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if !in.HasResult() {
						continue
					}
					var s objSet
					switch in.Op {
					case ir.OpAlloca:
						s.objs = []int{allocaObj[in.ID]}
					case ir.OpGlobalAddr:
						s.objs = []int{in.Global}
					case ir.OpGEP:
						s = operandPts(in.Args[0], pts)
					case ir.OpPhi:
						for _, a := range in.Args {
							o := operandPts(a, pts)
							s.union(o)
						}
					case ir.OpSelect:
						s = operandPts(in.Args[1], pts)
						o := operandPts(in.Args[2], pts)
						s.union(o)
					default:
						// Loads, calls, arithmetic: unknown provenance.
						s.top = true
					}
					if pts[in.Dst].union(s) {
						changed = true
					}
				}
			}
		}
		funcPts[fi] = pts
	}

	// Collect loads and escapes module-wide.
	for fi, f := range m.Funcs {
		pts := funcPts[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					s := operandPts(in.Args[0], pts)
					if s.top {
						allLoaded = true
					}
					markAll(loaded, s)
				case ir.OpStore:
					// The stored VALUE escaping as a pointer: if a
					// tracked object's address is written to memory, a
					// later load can resurrect it.
					s := operandPts(in.Args[0], pts)
					markAll(escaped, s)
				case ir.OpCall, ir.OpSpawn, ir.OpCallB, ir.OpRet:
					for _, a := range in.Args {
						s := operandPts(a, pts)
						markAll(escaped, s)
					}
				}
			}
		}
	}

	ds := &DeadStores{Dead: make(map[int]bool)}
	if allLoaded {
		return ds
	}
	for fi, f := range m.Funcs {
		pts := funcPts[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpStore {
					continue
				}
				s := operandPts(in.Args[1], pts)
				if s.top || len(s.objs) == 0 {
					continue
				}
				dead := true
				for _, o := range s.objs {
					if loaded[o] || escaped[o] {
						dead = false
						break
					}
				}
				if dead {
					ds.Dead[in.ID] = true
				}
			}
		}
	}
	return ds
}

func operandPts(o ir.Operand, pts []objSet) objSet {
	if o.Kind == ir.OperReg {
		p := pts[o.Reg]
		return objSet{top: p.top, objs: p.objs}
	}
	// Constant addresses (or anything else) have unknown provenance.
	return objSet{top: true}
}
