package analysis

import "repro/internal/ir"

// DeadStores flags stores whose stored value can never be observed.
// Two proofs feed it, both layered on the PointsTo provenance analysis
// (memssa.go):
//
//   - Dead: the store's address provably points only into memory
//     objects (globals or allocas) that are never loaded from and whose
//     address never escapes. The granularity is whole objects — "dead
//     before any load" holds trivially because no load from the object
//     exists anywhere in the module — which keeps the escape reasoning
//     airtight in the presence of threads and calls.
//   - Shadowed: the store is provably overwritten before any load can
//     observe it (MemSSA's same-block store→store chains over
//     non-escaping allocas).
type DeadStores struct {
	// Dead[id] is true when static store instruction id is dead.
	Dead map[int]bool
	// Shadowed[id] is true when static store instruction id is
	// overwritten before any possible load (may be nil when the caller
	// built only the object-liveness tier).
	Shadowed map[int]bool
}

// DeadAt reports whether store instruction id's value is unobservable,
// by either proof.
func (ds *DeadStores) DeadAt(id int) bool {
	return ds.Dead[id] || ds.Shadowed[id]
}

// BuildDeadStores runs the module-wide provenance analysis and flags
// stores into never-read objects. The Shadowed tier is left nil; use
// buildDeadStoresPts with a MemSSA (as FactsFor does) to include it.
func BuildDeadStores(m *ir.Module) *DeadStores {
	return buildDeadStoresPts(m, BuildPointsTo(m), nil)
}

// buildDeadStoresPts derives the store flags from an existing
// provenance solution, optionally folding in MemSSA's shadowed stores.
func buildDeadStoresPts(m *ir.Module, p *PointsTo, ms *MemSSA) *DeadStores {
	ds := &DeadStores{Dead: make(map[int]bool)}
	if ms != nil {
		ds.Shadowed = ms.Shadowed
	}
	if p.AllLoaded {
		return ds
	}
	for fi, f := range m.Funcs {
		pts := p.Regs[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpStore {
					continue
				}
				s := operandPts(in.Args[1], pts)
				if s.top || len(s.objs) == 0 {
					continue
				}
				dead := true
				for _, o := range s.objs {
					if p.Loaded[o] || p.Escaped[o] {
						dead = false
						break
					}
				}
				if dead {
					ds.Dead[in.ID] = true
				}
			}
		}
	}
	return ds
}
