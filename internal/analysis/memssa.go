package analysis

import "repro/internal/ir"

// This file is the memory-SSA/alias layer: a module-wide flow-
// insensitive points-to analysis over allocas, globals, and GEPs
// (PointsTo), plus per-object store→load def-use chains layered on top
// of it (MemSSA). The dead-store pass (deadstore.go) and the
// store-shadowing proof both consume it.
//
// The object model is provenance-based, matching the interpreter's
// memory model as documented in DESIGN.md §9: an address derived from
// an alloca or global-addr carries that object's provenance through
// GEP/phi/select, and the analysis only draws conclusions for accesses
// whose provenance is a known object set. Accesses through unknown
// pointers (loads, call results, constants) are top and conservatively
// may touch everything.

// PointsTo is the module-wide provenance solution.
type PointsTo struct {
	Mod *ir.Module

	// Object ids: globals get 0..NumGlobals-1, each alloca instruction
	// one id above (AllocaObj maps the alloca's instruction ID).
	NumGlobals int
	NumObjs    int
	AllocaObj  map[int]int

	// Regs[f][r] is the object set register r in function f may point
	// into.
	Regs [][]objSet

	// Loaded[o] / Escaped[o]: object o has a load through tracked
	// provenance / its address flows somewhere the analysis cannot
	// follow (stored to memory, passed to a call/spawn/builtin,
	// returned). AllLoaded is set when any load has top provenance.
	Loaded    []bool
	Escaped   []bool
	AllLoaded bool
}

// object ids: globals get 0..G-1, each alloca instruction one id above.
type objSet struct {
	top  bool
	objs []int
}

func (s *objSet) add(o int) bool {
	for _, x := range s.objs {
		if x == o {
			return false
		}
	}
	s.objs = append(s.objs, o)
	return true
}

func (s *objSet) union(o objSet) bool {
	if s.top {
		return false
	}
	if o.top {
		s.top = true
		s.objs = nil
		return true
	}
	changed := false
	for _, x := range o.objs {
		if s.add(x) {
			changed = true
		}
	}
	return changed
}

func (s objSet) intersects(o objSet) bool {
	if s.top || o.top {
		return true
	}
	for _, x := range s.objs {
		for _, y := range o.objs {
			if x == y {
				return true
			}
		}
	}
	return false
}

// BuildPointsTo runs the module-wide provenance analysis.
func BuildPointsTo(m *ir.Module) *PointsTo {
	p := &PointsTo{
		Mod:        m,
		NumGlobals: len(m.Globals),
		AllocaObj:  make(map[int]int),
	}
	for _, in := range m.Instrs {
		if in.Op == ir.OpAlloca {
			p.AllocaObj[in.ID] = p.NumGlobals + len(p.AllocaObj)
		}
	}
	p.NumObjs = p.NumGlobals + len(p.AllocaObj)
	p.Loaded = make([]bool, p.NumObjs)
	p.Escaped = make([]bool, p.NumObjs)

	p.Regs = make([][]objSet, len(m.Funcs))
	for fi, f := range m.Funcs {
		pts := make([]objSet, f.NumRegs)
		// Pointer-typed parameters have unknown provenance.
		for r, t := range f.Params {
			if t == ir.Ptr {
				pts[r].top = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if !in.HasResult() {
						continue
					}
					var s objSet
					switch in.Op {
					case ir.OpAlloca:
						s.objs = []int{p.AllocaObj[in.ID]}
					case ir.OpGlobalAddr:
						s.objs = []int{in.Global}
					case ir.OpGEP:
						s = operandPts(in.Args[0], pts)
					case ir.OpPhi:
						for _, a := range in.Args {
							o := operandPts(a, pts)
							s.union(o)
						}
					case ir.OpSelect:
						s = operandPts(in.Args[1], pts)
						o := operandPts(in.Args[2], pts)
						s.union(o)
					default:
						// Loads, calls, arithmetic: unknown provenance.
						s.top = true
					}
					if pts[in.Dst].union(s) {
						changed = true
					}
				}
			}
		}
		p.Regs[fi] = pts
	}

	// Collect loads and escapes module-wide.
	markAll := func(flags []bool, s objSet) {
		for _, o := range s.objs {
			flags[o] = true
		}
	}
	for fi, f := range m.Funcs {
		pts := p.Regs[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					s := operandPts(in.Args[0], pts)
					if s.top {
						p.AllLoaded = true
					}
					markAll(p.Loaded, s)
				case ir.OpStore:
					// The stored VALUE escaping as a pointer: if a
					// tracked object's address is written to memory, a
					// later load can resurrect it.
					s := operandPts(in.Args[0], pts)
					markAll(p.Escaped, s)
				case ir.OpCall, ir.OpSpawn, ir.OpCallB, ir.OpRet:
					for _, a := range in.Args {
						s := operandPts(a, pts)
						markAll(p.Escaped, s)
					}
				}
			}
		}
	}
	return p
}

// OperandObjects returns the object ids operand o may point into in
// function fi, and whether that set is exact (known=false means the
// provenance is top: o may point anywhere).
func (p *PointsTo) OperandObjects(fi int, o ir.Operand) (objs []int, known bool) {
	s := operandPts(o, p.Regs[fi])
	if s.top {
		return nil, false
	}
	return s.objs, true
}

func operandPts(o ir.Operand, pts []objSet) objSet {
	if o.Kind == ir.OperReg {
		p := pts[o.Reg]
		return objSet{top: p.top, objs: p.objs}
	}
	// Constant addresses (or anything else) have unknown provenance.
	return objSet{top: true}
}

// MemSSA layers per-object store→load def-use chains over PointsTo and
// derives the shadowed-store facts the StoreShadowed triage proof is
// built on.
type MemSSA struct {
	Pts *PointsTo

	// Stores[o] / Loads[o]: static instruction IDs that may write /
	// read object o through tracked provenance. TopStores / TopLoads
	// collect accesses whose provenance is unknown (they may touch any
	// object).
	Stores, Loads       [][]int
	TopStores, TopLoads []int

	// Shadowed[id]: store id is provably overwritten before any load
	// can observe it — a later store in the same block writes through
	// the same address register with no intervening may-alias load, no
	// call/spawn/join, and the object is a non-escaping alloca (so no
	// other thread or callee can read between them). KilledBy[id] names
	// the overwriting store.
	Shadowed map[int]bool
	KilledBy map[int]int
}

// BuildMemSSA builds the store/load chains and shadowed-store facts.
func BuildMemSSA(m *ir.Module, p *PointsTo) *MemSSA {
	ms := &MemSSA{
		Pts:      p,
		Stores:   make([][]int, p.NumObjs),
		Loads:    make([][]int, p.NumObjs),
		Shadowed: make(map[int]bool),
		KilledBy: make(map[int]int),
	}
	for fi, f := range m.Funcs {
		pts := p.Regs[fi]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStore:
					s := operandPts(in.Args[1], pts)
					if s.top {
						ms.TopStores = append(ms.TopStores, in.ID)
					}
					for _, o := range s.objs {
						ms.Stores[o] = append(ms.Stores[o], in.ID)
					}
				case ir.OpLoad:
					s := operandPts(in.Args[0], pts)
					if s.top {
						ms.TopLoads = append(ms.TopLoads, in.ID)
					}
					for _, o := range s.objs {
						ms.Loads[o] = append(ms.Loads[o], in.ID)
					}
				}
			}
		}
	}

	for fi, f := range m.Funcs {
		pts := p.Regs[fi]
		for _, b := range f.Blocks {
			ms.scanBlock(b, pts)
		}
		_ = fi
	}
	return ms
}

// scanBlock finds shadowed stores within one block.
//
// Soundness argument (DESIGN.md §14): the pair (s1, s2) writes through
// the SAME address register, so within one execution of the block both
// hit the same address. Between them there is no load that may alias
// the object, no call/spawn/join (nothing can read memory on this
// thread), and the object is a non-escaping alloca, so no OTHER thread
// can reach it either (threads reach only globals, spawn arguments,
// and their own allocas — all of which escape or differ). If execution
// halts between the two stores (trap, detect, hang budget), the stored
// value is simply never read. Therefore the value stored by s1 is
// observable by no execution, faulty or not.
func (ms *MemSSA) scanBlock(b *ir.Block, pts []objSet) {
	for i, s1 := range b.Instrs {
		if s1.Op != ir.OpStore {
			continue
		}
		addr := s1.Args[1]
		if addr.Kind != ir.OperReg {
			continue
		}
		objs := operandPts(addr, pts)
		if objs.top || len(objs.objs) == 0 {
			continue
		}
		safe := true
		for _, o := range objs.objs {
			if o < ms.Pts.NumGlobals || ms.Pts.Escaped[o] {
				safe = false // global or escaping alloca: other threads/callees may read
				break
			}
		}
		if !safe {
			continue
		}
	scan:
		for j := i + 1; j < len(b.Instrs); j++ {
			u := b.Instrs[j]
			if u.HasResult() && u.Dst == addr.Reg {
				break // address register redefined: later stores hit elsewhere
			}
			switch u.Op {
			case ir.OpStore:
				if u.Args[1].Kind == ir.OperReg && u.Args[1].Reg == addr.Reg {
					ms.Shadowed[s1.ID] = true
					ms.KilledBy[s1.ID] = u.ID
					break scan
				}
			case ir.OpLoad:
				lp := operandPts(u.Args[0], pts)
				if lp.top || lp.intersects(objs) {
					break scan
				}
			case ir.OpCall, ir.OpSpawn, ir.OpJoin:
				break scan // callees and joined threads may load
			}
		}
	}
}
