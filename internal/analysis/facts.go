package analysis

import (
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// Facts bundles every per-function and module-level analysis result
// for one finalized module snapshot: CFGs, dominator trees, def-use
// chains, known bits, value ranges, provenance/memory-SSA, demanded
// bits, detection facts, and the propagation graph. The bundle is
// immutable after construction and shared by every consumer — Triage,
// the sid heuristics, reports, and the -analyze CLI all hit the same
// memoized instance, so the underlying CFG and dominator builds run
// exactly once per module snapshot (factsBuilds counts them; the
// single-build test asserts it).
type Facts struct {
	Mod *ir.Module

	// SingleAssignment: every function is in single-assignment register
	// form. When false, only the structural fields (CFGs, Doms,
	// DefUses) are populated; the value analyses would be unsound and
	// Triage is inert.
	SingleAssignment bool

	// Per-function, indexed by function index.
	CFGs    []*CFG
	Doms    []*DomTree
	DefUses []*DefUse
	Known   []*KnownBits
	Ranges  []*ValueRanges

	// Module-level.
	Pts    *PointsTo
	Mem    *MemSSA
	DS     *DeadStores
	Dem    *Demand
	Detect detectFacts

	// RangeMasked[id]: demanded result bits of instruction id whose
	// single-bit flip every use provably absorbs (rangemask.go).
	RangeMasked []uint64

	// Prop is the static error-propagation graph (propagation.go).
	Prop *Propagation
}

// factsBuilds counts buildFacts invocations (observability for the
// single-build test; see export_test.go).
var factsBuilds atomic.Int64

// factsKey identifies one immutable module snapshot, mirroring the
// (pointer, version) identity the interpreter's image cache uses.
type factsKey struct {
	mod     *ir.Module
	version uint64
}

var factsCache sync.Map // factsKey -> *Facts

// FactsFor returns the memoized fact bundle of m's current finalized
// snapshot, computing it on first use. Modules are analyzed at most
// once per Finalize generation.
func FactsFor(m *ir.Module) *Facts {
	key := factsKey{mod: m, version: m.Version()}
	if v, ok := factsCache.Load(key); ok {
		return v.(*Facts)
	}
	fa := buildFacts(m)
	actual, _ := factsCache.LoadOrStore(key, fa)
	return actual.(*Facts)
}

// buildFacts runs every analysis over m in dependency order.
func buildFacts(m *ir.Module) *Facts {
	factsBuilds.Add(1)
	fa := &Facts{
		Mod:              m,
		SingleAssignment: true,
		CFGs:             make([]*CFG, len(m.Funcs)),
		Doms:             make([]*DomTree, len(m.Funcs)),
		DefUses:          make([]*DefUse, len(m.Funcs)),
	}
	for fi, f := range m.Funcs {
		fa.CFGs[fi] = BuildCFG(f)
		fa.Doms[fi] = BuildDom(fa.CFGs[fi])
		fa.DefUses[fi] = BuildDefUse(f)
		if !fa.DefUses[fi].SingleAssignment {
			fa.SingleAssignment = false
		}
	}
	if !fa.SingleAssignment {
		return fa
	}

	fa.Known = make([]*KnownBits, len(m.Funcs))
	fa.Ranges = make([]*ValueRanges, len(m.Funcs))
	for fi, f := range m.Funcs {
		fa.Known[fi] = BuildKnownBits(f, fa.CFGs[fi])
		fa.Ranges[fi] = BuildRanges(f, fa.CFGs[fi], fa.DefUses[fi])
	}
	fa.Pts = BuildPointsTo(m)
	fa.Mem = BuildMemSSA(m, fa.Pts)
	fa.DS = buildDeadStoresPts(m, fa.Pts, fa.Mem)
	fa.Dem = BuildDemand(m, fa.DS)
	fa.Detect = buildDetectFacts(m)
	fa.RangeMasked = buildRangeMask(m, fa.DefUses, fa.Ranges, fa.Dem, fa.DS)
	fa.Prop = buildPropagation(fa)
	return fa
}
