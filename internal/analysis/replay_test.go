package analysis_test

// Differential fact checker: every fact the static analyses emit is
// replayed against a concrete fault-free execution of every benchmark
// via the interpreter's trace hook. A single violated fact fails the
// test with the offending instruction — this is the runtime half of
// the soundness argument in DESIGN.md §14.
//
// Facts validated per executed instruction:
//
//   - value ranges: every integer result lies in its static interval;
//   - known bits: no result sets a provably-zero bit or clears a
//     provably-one bit;
//   - points-to: every load/store through a register with a non-top
//     points-to set dereferences an address inside one of that set's
//     concrete object extents (allocas observed at runtime, globals
//     from the module layout);
//   - shadowed stores: a store the memory-SSA layer proved shadowed is
//     never read — no load touches its address word before the killing
//     store overwrites it.

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/interp"
	"repro/internal/ir"
)

// extent is one concrete object instance: memory words [Base, End).
type extent struct{ Base, End uint64 }

// factChecker validates analysis facts against one traced execution.
type factChecker struct {
	t  *testing.T
	m  *ir.Module
	fa *analysis.Facts

	// extents[obj] lists every runtime instance of static object obj
	// (one per global, one per executed alloca).
	extents map[int][]extent
	// pending maps a memory word to the shadowed store that last wrote
	// it; any load of a pending word is a violation.
	pending map[uint64]int

	checked  int64
	failures int
}

// operandVal evaluates an operand against the live register file.
func operandVal(o ir.Operand, regs []uint64) uint64 {
	switch o.Kind {
	case ir.OperReg:
		return regs[o.Reg]
	case ir.OperConst:
		return uint64(o.Imm)
	default:
		return 0
	}
}

// globalExtents precomputes each global object's memory extent from the
// module layout: globals are laid out contiguously from the reserved
// null page in index order, dynamically sized ones taking their size
// from the binding. The first observed OpGlobalAddr cross-checks the
// assumed layout.
func (fc *factChecker) globalExtents(bind interp.Binding) {
	base := uint64(16) // interp's reservedLow null page
	for gi, g := range fc.m.Globals {
		size := g.Size
		if size < 0 {
			size = len(bind.Globals[g.Name])
		}
		fc.extents[gi] = []extent{{Base: base, End: base + uint64(size)}}
		base += uint64(size)
	}
}

func (fc *factChecker) fail(in *ir.Instr, format string, args ...any) {
	fc.failures++
	if fc.failures <= 10 {
		fc.t.Errorf("[%d] %s: %s", in.ID, in.Op, fmt.Sprintf(format, args...))
	}
}

// checkAddr asserts an executed memory access through operand o lands
// inside an instance of an object its points-to set names.
func (fc *factChecker) checkAddr(fi int, in *ir.Instr, o ir.Operand, addr uint64) {
	objs, known := fc.fa.Pts.OperandObjects(fi, o)
	if !known {
		return
	}
	for _, obj := range objs {
		for _, e := range fc.extents[obj] {
			if addr >= e.Base && addr < e.End {
				fc.checked++
				return
			}
		}
	}
	fc.fail(in, "address %d outside every extent of points-to set %v", addr, objs)
}

// hook is the Tracer.Hook callback: one executed instruction.
func (fc *factChecker) hook(fn *ir.Function, in *ir.Instr, regs []uint64, result uint64, hasResult bool) {
	fi := fn.Index
	switch in.Op {
	case ir.OpAlloca:
		if hasResult {
			n := operandVal(in.Args[0], regs)
			if obj, ok := fc.fa.Pts.AllocaObj[in.ID]; ok {
				fc.extents[obj] = append(fc.extents[obj], extent{Base: result, End: result + n})
			}
		}
	case ir.OpGlobalAddr:
		if hasResult {
			if e := fc.extents[in.Global][0]; result != e.Base {
				fc.fail(in, "global %d base %d, layout assumed %d", in.Global, result, e.Base)
			}
		}
	case ir.OpLoad:
		if hasResult {
			addr := operandVal(in.Args[0], regs)
			fc.checkAddr(fi, in, in.Args[0], addr)
			if sid, ok := fc.pending[addr]; ok {
				fc.fail(in, "reads word %d written by shadowed store [%d]", addr, sid)
			}
		}
	case ir.OpStore:
		addr := operandVal(in.Args[1], regs)
		fc.checkAddr(fi, in, in.Args[1], addr)
		delete(fc.pending, addr) // any store kills the previous value
		if fc.fa.Mem != nil && fc.fa.Mem.Shadowed[in.ID] {
			fc.pending[addr] = in.ID
			fc.checked++
		}
	}

	if !hasResult || in.Op == ir.OpCall {
		return
	}
	// Known bits hold for every result type (they describe the stored
	// representation); intervals only for integer results.
	if z := fc.fa.Known[fi].Zero[in.Dst]; result&z != 0 {
		fc.fail(in, "result %#x sets known-zero bits %#x", result, result&z)
	}
	if o := fc.fa.Known[fi].One[in.Dst]; ^result&o != 0 {
		fc.fail(in, "result %#x clears known-one bits %#x", result, ^result&o)
	}
	if in.Type != ir.F64 {
		if iv := fc.fa.Ranges[fi].At(in.Dst); !iv.Contains(int64(result)) {
			fc.fail(in, "result %d outside interval [%d, %d]", int64(result), iv.Lo, iv.Hi)
		}
	}
	fc.checked++
}

// TestFactsHoldOnConcreteTraces replays every benchmark's reference
// input under the legacy interpreter with the fact checker attached.
func TestFactsHoldOnConcreteTraces(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m := b.MustModule()
			fa := analysis.FactsFor(m)
			if !fa.SingleAssignment {
				t.Fatalf("%s is not in single-assignment form; value facts unavailable", b.Name)
			}
			bind := b.Bind(b.Reference)
			fc := &factChecker{
				t: t, m: m, fa: fa,
				extents: make(map[int][]extent),
				pending: make(map[uint64]int),
			}
			fc.globalExtents(bind)
			r := interp.NewRunner(m, b.ExecConfig())
			res := r.RunTraced(bind, nil, &interp.Tracer{Hook: fc.hook})
			if res.Status != interp.StatusOK {
				t.Fatalf("golden run halted %v: %s", res.Status, res.Trap)
			}
			if fc.failures > 10 {
				t.Errorf("... and %d more fact violations", fc.failures-10)
			}
			if fc.checked == 0 {
				t.Fatal("checker validated zero facts")
			}
			t.Logf("%s: %d facts checked over %d dynamic instructions", b.Name, fc.checked, res.DynInstrs)
		})
	}
}
