package analysis

import "repro/internal/ir"

// DefUse holds register def-use and use-def chains for one function. The
// IR is single-assignment register form, so each register has at most
// one defining instruction; parameters occupy registers 0..len(Params)-1
// and have no def.
type DefUse struct {
	F *ir.Function

	// Def[r] is the instruction defining register r, nil for parameters
	// and never-defined registers.
	Def []*ir.Instr

	// Uses[r] lists the instructions reading register r (phi edge uses
	// included), in program order.
	Uses [][]*ir.Instr

	// SingleAssignment is false when some register has more than one
	// defining instruction; chain facts are unreliable in that case and
	// clients must not draw dataflow conclusions from them.
	SingleAssignment bool
}

// BuildDefUse scans f and builds its def-use chains.
func BuildDefUse(f *ir.Function) *DefUse {
	du := &DefUse{
		F:                f,
		Def:              make([]*ir.Instr, f.NumRegs),
		Uses:             make([][]*ir.Instr, f.NumRegs),
		SingleAssignment: true,
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a.Kind == ir.OperReg {
					du.Uses[a.Reg] = append(du.Uses[a.Reg], in)
				}
			}
			if in.HasResult() {
				if du.Def[in.Dst] != nil {
					du.SingleAssignment = false
				}
				du.Def[in.Dst] = in
			}
		}
	}
	return du
}

// IsParam reports whether register r is a function parameter.
func (du *DefUse) IsParam(r int) bool { return r < len(du.F.Params) }
