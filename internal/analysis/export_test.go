package analysis

// WidthMask exposes widthMask to the external test package
// (analysis_test), which exists so benchmark-program tests can import
// benchprog without creating an import cycle through the interpreter's
// compiled tier (interp imports analysis for known-bits facts).
var WidthMask = widthMask

// FactsBuildCount exposes the buildFacts invocation counter so the
// single-build test can assert Triage/-analyze consumers share one
// memoized fact bundle per module snapshot.
func FactsBuildCount() int64 { return factsBuilds.Load() }
