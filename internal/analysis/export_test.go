package analysis

// WidthMask exposes widthMask to the external test package
// (analysis_test), which exists so benchmark-program tests can import
// benchprog without creating an import cycle through the interpreter's
// compiled tier (interp imports analysis for known-bits facts).
var WidthMask = widthMask
