package analysis

import (
	"math"
	"math/bits"

	"repro/internal/ir"
)

// This file implements the value-range (interval) analysis: for every
// integer register it computes a signed interval [Lo, Hi] guaranteed to
// contain the register's value at its definition on every fault-free
// execution. It is the second instantiation of the generic forward
// worklist engine (after known-bits) and the first to use the engine's
// EdgeRefiner hook: branch conditions of the form `icmp <pred> x, C`
// sharpen x's interval separately on the true and false edges.
//
// Termination over the infinite-height interval lattice is by widening:
// once a block has been transferred more than rangeWidenAfter times,
// any bound still growing relative to the previous visit jumps to the
// corresponding extreme. There is no classic narrowing pass; instead a
// final replay from the (stable, refined) block in-states recomputes
// each definition's interval, which recovers the precision a narrowing
// iteration would inside straight-line code while keeping the per-def
// facts trivially consistent with the fixpoint.
//
// Float registers and loads/calls are tracked as the full interval:
// their recorded fact is the trivially-true one. The triage consumers
// (rangemask.go) only ever combine an interval with CONSTANT operands
// of downstream uses, in keeping with demand rule 3 (DESIGN.md §9).

// Interval is a signed 64-bit interval [Lo, Hi]. Lo > Hi encodes the
// empty interval (unreached code, contradictory refinement).
type Interval struct {
	Lo, Hi int64
}

var (
	fullIvl  = Interval{math.MinInt64, math.MaxInt64}
	emptyIvl = Interval{math.MaxInt64, math.MinInt64}
)

func singleIvl(v int64) Interval { return Interval{v, v} }

// Empty reports whether the interval contains no value.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Full reports whether the interval is the trivially-true fact.
func (iv Interval) Full() bool { return iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64 }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Size returns the number of values in the interval and whether that
// count fits an int64 (the full interval does not).
func (iv Interval) Size() (int64, bool) {
	if iv.Empty() {
		return 0, true
	}
	n := iv.Hi - iv.Lo // may overflow for huge intervals
	if n < 0 || n == math.MaxInt64 {
		return 0, false
	}
	return n + 1, true
}

func (iv Interval) union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	if o.Lo < iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi > iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

func (iv Interval) intersect(o Interval) Interval {
	if o.Lo > iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi < iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

// clampType restricts an interval to a type's representable values.
func (iv Interval) clampType(t ir.Type) Interval {
	if t == ir.I1 {
		return iv.intersect(Interval{0, 1})
	}
	return iv
}

// Overflow-checked arithmetic. ok is false when the exact result does
// not fit int64 (callers then fall back to the full interval).

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	s := a - b
	if (a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func addIvl(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return emptyIvl
	}
	lo, ok1 := addOv(a.Lo, b.Lo)
	hi, ok2 := addOv(a.Hi, b.Hi)
	if !ok1 || !ok2 {
		return fullIvl
	}
	return Interval{lo, hi}
}

func subIvl(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return emptyIvl
	}
	lo, ok1 := subOv(a.Lo, b.Hi)
	hi, ok2 := subOv(a.Hi, b.Lo)
	if !ok1 || !ok2 {
		return fullIvl
	}
	return Interval{lo, hi}
}

func mulIvl(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return emptyIvl
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p, ok := mulOv(x, y)
			if !ok {
				return fullIvl
			}
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	return Interval{lo, hi}
}

// divIvlConst bounds a/c for constant c outside {0, -1} (the only
// divisors that can trap). Truncating division is monotone in the
// dividend, increasing for c > 0 and decreasing for c < 0.
func divIvlConst(a Interval, c int64) Interval {
	if a.Empty() {
		return emptyIvl
	}
	if c > 0 {
		return Interval{a.Lo / c, a.Hi / c}
	}
	return Interval{a.Hi / c, a.Lo / c}
}

// remIvlConst bounds a%c for constant c outside {0, -1}. Go's remainder
// takes the dividend's sign and |a%c| < |c|.
func remIvlConst(a Interval, c int64) Interval {
	if a.Empty() {
		return emptyIvl
	}
	if c == math.MinInt64 {
		return fullIvl // |c|-1 not representable; give up
	}
	m := c
	if m < 0 {
		m = -m
	}
	if a.Lo >= 0 {
		if a.Hi < m {
			return a // dividend already below the modulus
		}
		return Interval{0, m - 1}
	}
	if a.Hi <= 0 {
		return Interval{-(m - 1), 0}
	}
	return Interval{-(m - 1), m - 1}
}

// bitLenBound returns the smallest n with every value of [0, hi]
// representable in n bits (hi >= 0).
func bitLenBound(hi int64) int { return bits.Len64(uint64(hi)) }

// rState is the per-block engine state: one interval per register.
type rState []Interval

// rangeWidenAfter is the per-block transfer count after which still
// growing bounds are widened to the corresponding extreme.
const rangeWidenAfter = 8

// rangeProblem instantiates the forward engine as interval propagation,
// with per-edge branch refinement (EdgeRefiner) and widening folded
// into Transfer.
type rangeProblem struct {
	f  *ir.Function
	du *DefUse

	visits  []int    // per-block Transfer count, drives widening
	prevIn  []rState // per-block in-state of the previous visit
	widenAt []bool   // widening points: targets of retreating edges
}

func newRangeProblem(f *ir.Function, c *CFG, du *DefUse) *rangeProblem {
	// Widening points are the targets of retreating edges with respect
	// to the engine's reverse postorder. Every cycle contains at least
	// one retreating edge of the DFS behind that order, so widening at
	// their targets alone guarantees termination — and confining it
	// there keeps branch-refined in-states of loop BODIES exact (a
	// widened body state would wreck the refinement the header's exit
	// test just established, cascading to overflow and the full
	// interval).
	pos := make([]int, len(f.Blocks))
	for i := range pos {
		pos[i] = -1
	}
	for i, b := range c.RPO {
		pos[b] = i
	}
	widenAt := make([]bool, len(f.Blocks))
	for _, b := range c.RPO {
		for _, s := range c.Succs[b] {
			if pos[s] >= 0 && pos[s] <= pos[b] {
				widenAt[s] = true
			}
		}
	}
	return &rangeProblem{
		f:       f,
		du:      du,
		visits:  make([]int, len(f.Blocks)),
		prevIn:  make([]rState, len(f.Blocks)),
		widenAt: widenAt,
	}
}

func (p *rangeProblem) Entry() rState {
	// Parameters may hold any value of their type; every other register
	// starts at bottom (empty). SSA verification guarantees definitions
	// dominate uses, so no reachable use observes an undefined register
	// — and keeping them empty stops a phi from absorbing the full
	// interval a not-on-this-path incoming register would otherwise
	// contribute through the merged in-state.
	s := make(rState, p.f.NumRegs)
	for i := range s {
		s[i] = emptyIvl
	}
	for r, t := range p.f.Params {
		s[r] = fullIvl.clampType(t)
	}
	return s
}

func (p *rangeProblem) Top() rState {
	s := make(rState, p.f.NumRegs)
	for i := range s {
		s[i] = emptyIvl
	}
	return s
}

func (p *rangeProblem) Meet(dst, src rState) rState {
	for i := range dst {
		dst[i] = dst[i].union(src[i])
	}
	return dst
}

func (p *rangeProblem) Equal(a, b rState) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *rangeProblem) Clone(s rState) rState { return append(rState(nil), s...) }

func (p *rangeProblem) Transfer(b *ir.Block, in rState) rState {
	bi := b.Index
	p.visits[bi]++
	if p.widenAt[bi] && p.visits[bi] > rangeWidenAfter && p.prevIn[bi] != nil {
		// Widen: any bound still MOVING since the last visit jumps to
		// its extreme — in either direction. Growing bounds are the
		// classic ascending chain; bounds can also keep improving
		// inward indefinitely (an overflow-widened interval squeezed by
		// one each trip through a refined backedge), so direction is
		// irrelevant: after the threshold each bound may change at most
		// once more, to its extreme, bounding the chain height. The
		// engine records pre-widening in-states, so the final replay
		// loses none of the refined precision.
		prev := p.prevIn[bi]
		for i := range in {
			if in[i].Empty() || prev[i].Empty() {
				continue
			}
			if in[i].Lo != prev[i].Lo {
				in[i].Lo = math.MinInt64
			}
			if in[i].Hi != prev[i].Hi {
				in[i].Hi = math.MaxInt64
			}
		}
	}
	p.prevIn[bi] = append(rState(nil), in...)
	for _, instr := range b.Instrs {
		if instr.HasResult() {
			in[instr.Dst] = rangeTransfer(instr, in)
		}
	}
	return in
}

// RefineEdge sharpens the out-fact of pred on the edge pred→succ using
// pred's branch condition when it is `icmp <pred> x, C` (or the swapped
// form) with x a register and C a constant. Only the compared register
// is refined, and only from the condition's own constant — never from
// another register's fact.
func (p *rangeProblem) RefineEdge(pred, succ int, out rState) rState {
	term := p.f.Blocks[pred].Terminator()
	if term == nil || term.Op != ir.OpCondBr || term.Succs[0] == term.Succs[1] {
		return out
	}
	cond := term.Args[0]
	if cond.Kind != ir.OperReg || cond.Reg >= len(p.du.Def) {
		return out
	}
	def := p.du.Def[cond.Reg]
	if def == nil || def.Op != ir.OpICmp {
		return out
	}
	var reg int
	var c int64
	pr := def.Pred
	switch {
	case def.Args[0].Kind == ir.OperReg && def.Args[1].Kind == ir.OperConst:
		reg, c = def.Args[0].Reg, def.Args[1].Imm
	case def.Args[1].Kind == ir.OperReg && def.Args[0].Kind == ir.OperConst:
		reg, c = def.Args[1].Reg, def.Args[0].Imm
		pr = swapPred(pr)
	default:
		return out
	}
	if succ != term.Succs[0] { // false edge: the negated predicate holds
		pr = negatePred(pr)
	}
	out[reg] = out[reg].intersect(predInterval(pr, c))
	return out
}

// swapPred mirrors a predicate across swapped operands: C <pred> x
// becomes x <swapPred(pred)> C.
func swapPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredLT:
		return ir.PredGT
	case ir.PredLE:
		return ir.PredGE
	case ir.PredGT:
		return ir.PredLT
	case ir.PredGE:
		return ir.PredLE
	default:
		return p // EQ, NE are symmetric
	}
}

// negatePred returns the predicate holding when p does not.
func negatePred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredEQ:
		return ir.PredNE
	case ir.PredNE:
		return ir.PredEQ
	case ir.PredLT:
		return ir.PredGE
	case ir.PredLE:
		return ir.PredGT
	case ir.PredGT:
		return ir.PredLE
	default:
		return ir.PredLT // GE
	}
}

// predInterval returns the values x for which `x <pred> C` holds (the
// full interval when the predicate does not bound x, i.e. NE).
func predInterval(p ir.Pred, c int64) Interval {
	switch p {
	case ir.PredEQ:
		return singleIvl(c)
	case ir.PredLT:
		if c == math.MinInt64 {
			return emptyIvl
		}
		return Interval{math.MinInt64, c - 1}
	case ir.PredLE:
		return Interval{math.MinInt64, c}
	case ir.PredGT:
		if c == math.MaxInt64 {
			return emptyIvl
		}
		return Interval{c + 1, math.MaxInt64}
	case ir.PredGE:
		return Interval{c, math.MaxInt64}
	default:
		return fullIvl // NE excludes one point: not an interval
	}
}

// ivlOperand returns the interval of one operand under state s.
func ivlOperand(o ir.Operand, s rState) Interval {
	switch o.Kind {
	case ir.OperConst:
		return singleIvl(o.Imm)
	case ir.OperReg:
		return s[o.Reg]
	default:
		return fullIvl // float immediates: raw bit pattern untracked
	}
}

// rangeTransfer computes the interval of one instruction's result.
func rangeTransfer(in *ir.Instr, s rState) Interval {
	bin := func() (Interval, Interval) {
		return ivlOperand(in.Args[0], s), ivlOperand(in.Args[1], s)
	}
	var r Interval
	switch in.Op {
	case ir.OpAdd:
		a, b := bin()
		r = addIvl(a, b)
	case ir.OpSub:
		a, b := bin()
		r = subIvl(a, b)
	case ir.OpMul:
		a, b := bin()
		r = mulIvl(a, b)
	case ir.OpDiv, ir.OpRem:
		a, b := bin()
		rhs := in.Args[1]
		if a.Empty() || b.Empty() {
			r = emptyIvl
		} else if rhs.Kind == ir.OperConst && rhs.Imm != 0 && rhs.Imm != -1 {
			if in.Op == ir.OpDiv {
				r = divIvlConst(a, rhs.Imm)
			} else {
				r = remIvlConst(a, rhs.Imm)
			}
		} else {
			r = fullIvl
		}
	case ir.OpAnd:
		a, b := bin()
		switch {
		case a.Empty() || b.Empty():
			r = emptyIvl
		case a.Lo >= 0 && b.Lo >= 0:
			r = Interval{0, minI64(a.Hi, b.Hi)}
		case a.Lo >= 0: // x & y <= y and >= 0 when y >= 0
			r = Interval{0, a.Hi}
		case b.Lo >= 0:
			r = Interval{0, b.Hi}
		default:
			r = fullIvl
		}
	case ir.OpOr:
		a, b := bin()
		if a.Empty() || b.Empty() {
			r = emptyIvl
		} else if a.Lo >= 0 && b.Lo >= 0 {
			n := bitLenBound(maxI64(a.Hi, b.Hi))
			r = Interval{maxI64(a.Lo, b.Lo), int64(lowMask(n))}
		} else {
			r = fullIvl
		}
	case ir.OpXor:
		a, b := bin()
		if a.Empty() || b.Empty() {
			r = emptyIvl
		} else if a.Lo >= 0 && b.Lo >= 0 {
			n := bitLenBound(maxI64(a.Hi, b.Hi))
			r = Interval{0, int64(lowMask(n))}
		} else {
			r = fullIvl
		}
	case ir.OpShl:
		a := ivlOperand(in.Args[0], s)
		amt := in.Args[1]
		if a.Empty() {
			r = emptyIvl
		} else if amt.Kind == ir.OperConst {
			c := uint(uint64(amt.Imm) & 63)
			if c >= 63 {
				r = fullIvl
			} else {
				r = mulIvl(a, singleIvl(int64(1)<<c))
			}
		} else {
			r = fullIvl
		}
	case ir.OpShr: // arithmetic shift: monotone for constant amounts
		a := ivlOperand(in.Args[0], s)
		amt := in.Args[1]
		if a.Empty() {
			r = emptyIvl
		} else if amt.Kind == ir.OperConst {
			c := uint(uint64(amt.Imm) & 63)
			r = Interval{a.Lo >> c, a.Hi >> c}
		} else if a.Lo >= 0 { // any shift of a non-negative stays in [0, x]
			r = Interval{0, a.Hi}
		} else {
			r = fullIvl
		}
	case ir.OpICmp, ir.OpFCmp:
		r = Interval{0, 1}
	case ir.OpSelect:
		r = ivlOperand(in.Args[1], s).union(ivlOperand(in.Args[2], s))
	case ir.OpPhi:
		r = emptyIvl
		for _, a := range in.Args {
			r = r.union(ivlOperand(a, s))
		}
	case ir.OpArrayLen:
		// Array lengths are word counts: non-negative.
		r = Interval{0, math.MaxInt64}
	default:
		// Loads, calls, float arithmetic, conversions, address ops.
		r = fullIvl
	}
	return r.clampType(in.Type)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ValueRanges holds, per register, the interval provably containing the
// register's value at its definition on every fault-free execution.
// Registers defined only in unreachable code (and parameters) keep the
// full interval.
type ValueRanges struct {
	F *ir.Function
	R []Interval
}

// At returns the interval of register r.
func (v *ValueRanges) At(r int) Interval { return v.R[r] }

// BuildRanges runs the interval analysis over f and records each
// definition's interval by replaying reachable blocks from their
// stable, edge-refined in-states.
func BuildRanges(f *ir.Function, c *CFG, du *DefUse) *ValueRanges {
	prob := newRangeProblem(f, c, du)
	ins, _ := Forward[rState](c, prob)
	vr := &ValueRanges{F: f, R: make([]Interval, f.NumRegs)}
	for i := range vr.R {
		vr.R[i] = fullIvl
	}
	for r, t := range f.Params {
		vr.R[r] = vr.R[r].clampType(t)
	}
	for _, bi := range c.RPO {
		s := prob.Clone(ins[bi])
		for _, in := range f.Blocks[bi].Instrs {
			if in.HasResult() {
				iv := rangeTransfer(in, s)
				s[in.Dst] = iv
				vr.R[in.Dst] = iv
			}
		}
	}
	return vr
}
