package analysis

// DomTree is the dominator tree of one function's CFG, built with the
// Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm"), plus dominance frontiers and an O(1) Dominates query via
// pre/post DFS numbering of the tree.
type DomTree struct {
	CFG *CFG

	// Idom[b] is the immediate dominator of block b; the entry block is
	// its own idom, unreachable blocks have Idom -1.
	Idom []int

	// Children[b] lists the blocks immediately dominated by b.
	Children [][]int

	// Frontier[b] is the dominance frontier of b: blocks d such that b
	// dominates a predecessor of d but not d itself (strictly).
	Frontier [][]int

	pre, post []int // DFS interval numbering of the dominator tree
}

// BuildDom computes the dominator tree and dominance frontiers of c.
func BuildDom(c *CFG) *DomTree {
	n := len(c.F.Blocks)
	d := &DomTree{CFG: c, Idom: make([]int, n)}
	for i := range d.Idom {
		d.Idom[i] = -1
	}
	if n == 0 {
		return d
	}
	d.Idom[0] = 0

	// intersect walks two candidate dominators up the current tree until
	// they meet, comparing by postorder number (higher RPO index = lower
	// postorder number, so walk the one that is deeper in RPO).
	intersect := func(a, b int) int {
		for a != b {
			for c.RPONum[a] > c.RPONum[b] {
				a = d.Idom[a]
			}
			for c.RPONum[b] > c.RPONum[a] {
				b = d.Idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if !c.Reachable(p) || d.Idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}

	d.Children = make([][]int, n)
	for b, i := range d.Idom {
		if b != 0 && i >= 0 {
			d.Children[i] = append(d.Children[i], b)
		}
	}

	// Pre/post numbering of the dominator tree for O(1) Dominates.
	d.pre = make([]int, n)
	d.post = make([]int, n)
	clock := 0
	type frame struct{ block, next int }
	stack := []frame{{0, 0}}
	d.pre[0] = clock
	clock++
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(d.Children[fr.block]) {
			ch := d.Children[fr.block][fr.next]
			fr.next++
			d.pre[ch] = clock
			clock++
			stack = append(stack, frame{ch, 0})
			continue
		}
		d.post[fr.block] = clock
		clock++
		stack = stack[:len(stack)-1]
	}

	// Dominance frontiers (CHK): for each join point, walk each
	// predecessor's dominator chain up to the join's idom.
	d.Frontier = make([][]int, n)
	for _, b := range c.RPO {
		if len(c.Preds[b]) < 2 {
			continue
		}
		for _, p := range c.Preds[b] {
			if !c.Reachable(p) || d.Idom[p] < 0 {
				continue
			}
			for runner := p; runner != d.Idom[b]; runner = d.Idom[runner] {
				if fr := d.Frontier[runner]; len(fr) == 0 || fr[len(fr)-1] != b {
					d.Frontier[runner] = append(d.Frontier[runner], b)
				}
			}
		}
	}
	return d
}

// Dominates reports whether block a dominates block b (reflexively).
// Unreachable blocks dominate nothing and are dominated by nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if !d.CFG.Reachable(a) || !d.CFG.Reachable(b) {
		return false
	}
	return d.pre[a] <= d.pre[b] && d.post[b] <= d.post[a]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (d *DomTree) StrictlyDominates(a, b int) bool {
	return a != b && d.Dominates(a, b)
}
