package analysis

import "repro/internal/ir"

// This file derives the ProvablyDetected facts: sites where EVERY
// value-changing perturbation of the result is guaranteed to trip an
// armed detector before it can influence anything else, so a campaign
// may count the site Detected without executing it.
//
// Two shapes are recognized, both anchored on the golden run having
// completed (the campaign always takes a golden run first, and a
// passing OpDetect halts the program otherwise):
//
//  1. detectAll (the duplication triple): the first instruction reading
//     the corrupted register v within the scan window is
//     `cmp = icmp eq v, w` immediately followed by `detect cmp`, where
//     exactly one comparison operand is v (the other a different
//     register or a constant — either is fault-free under the
//     single-fault model). The golden run passed every instance of the
//     detect, so the golden comparison was true at every instance:
//     w's value equals v's golden value. A perturbation that CHANGES v
//     therefore makes the comparison false and the detect halts. The
//     instructions between v's definition and the comparison do not
//     read v, so they behave exactly as in the golden run (in
//     particular they cannot trap — the golden run did not); nothing
//     observable happens before the detect fires. Valid for any bits:
//     the proof needs only v-corrupt ≠ v-golden, which AlwaysFlips
//     fault classes guarantee for every mask.
//
//  2. detectNext: the instruction immediately after v's definition is
//     `detect v`. The golden run passed it, so golden bit 0 is 1 at
//     every instance; a perturbation flipping bit 0 clears it and the
//     detect halts with nothing in between. Valid only for effects
//     that touch bit 0 (checked by the caller) under AlwaysFlips.
//
// Both shapes are invalid for stuck-at models: a stuck-at perturbation
// may leave the value unchanged, in which case the detector stays
// quiet and the outcome is Benign, not Detected. FaultClass.AlwaysFlips
// gates them (triage.go).

// detectScanWindow bounds how far past a definition the detectAll scan
// looks for the comparison. The duplication transform places its
// triple immediately after the protected instruction, so a small
// window is sufficient and keeps the scan linear.
const detectScanWindow = 8

// detectFacts records, per instruction ID, the detection proofs.
type detectFacts struct {
	all  []bool // any value change is detected (shape 1)
	next []bool // a bit-0 change is detected (shape 2)
}

// buildDetectFacts scans every block for the two shapes.
func buildDetectFacts(m *ir.Module) detectFacts {
	d := detectFacts{
		all:  make([]bool, m.NumInstrs()),
		next: make([]bool, m.NumInstrs()),
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if !in.HasResult() {
					continue
				}
				if i+1 < len(b.Instrs) {
					n := b.Instrs[i+1]
					if n.Op == ir.OpDetect && readsOnly(n.Args[0], in.Dst) {
						d.next[in.ID] = true
					}
				}
				d.all[in.ID] = scanDetectAll(b.Instrs, i, in.Dst)
			}
		}
	}
	return d
}

// scanDetectAll checks shape 1 for the definition of register v at
// instrs[i]: within the window, the first reader of v must be an
// eq-comparison against a clean operand whose result feeds an
// immediately following detect.
func scanDetectAll(instrs []*ir.Instr, i, v int) bool {
	end := i + 1 + detectScanWindow
	if end > len(instrs) {
		end = len(instrs)
	}
	for j := i + 1; j < end; j++ {
		u := instrs[j]
		if u.HasResult() && u.Dst == v {
			return false // v redefined before any check (non-SSA safety)
		}
		if !readsReg(u, v) {
			continue
		}
		// First reader of v. It must be the duplication check.
		if u.Op != ir.OpICmp || u.Pred != ir.PredEQ || j+1 >= len(instrs) {
			return false
		}
		det := instrs[j+1]
		if det.Op != ir.OpDetect || !readsOnly(det.Args[0], u.Dst) {
			return false
		}
		// Exactly one comparison operand is v: `icmp eq v, v` is true
		// however v is corrupted and detects nothing.
		a0v := u.Args[0].Kind == ir.OperReg && u.Args[0].Reg == v
		a1v := u.Args[1].Kind == ir.OperReg && u.Args[1].Reg == v
		return a0v != a1v
	}
	return false
}

// readsReg reports whether in reads register r through any operand.
func readsReg(in *ir.Instr, r int) bool {
	for _, a := range in.Args {
		if a.Kind == ir.OperReg && a.Reg == r {
			return true
		}
	}
	return false
}

// readsOnly reports whether operand o is exactly register r.
func readsOnly(o ir.Operand, r int) bool {
	return o.Kind == ir.OperReg && o.Reg == r
}
