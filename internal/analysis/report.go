package analysis

import (
	"fmt"
	"io"
	"math/bits"
	"text/tabwriter"
)

// FuncReport summarizes the triage of one function.
type FuncReport struct {
	Name       string `json:"name"`
	Injectable int    `json:"injectable"` // injectable static instructions
	// Sites counted at bit granularity: an i64 result contributes 64,
	// an i1 result 1.
	TotalBits  int `json:"total_bits"`
	MaskedBits int `json:"masked_bits"`
	// Instructions fully masked (every result bit provable) and
	// partially masked (a proper subset).
	FullyMasked     int `json:"fully_masked"`
	PartiallyMasked int `json:"partially_masked"`
	// Proof tag histogram over masked instructions.
	DeadValue  int `json:"dead_value"`
	MaskedOnly int `json:"masked_bits_tag"`
	DeadStore  int `json:"dead_store"`
}

// ModuleReport is the per-module triage summary emitted by the
// -analyze flag and embedded in pipeline JSON reports.
type ModuleReport struct {
	Module     string       `json:"module"`
	Version    string       `json:"analysis_version"`
	Funcs      []FuncReport `json:"funcs"`
	Injectable int          `json:"injectable"`
	TotalBits  int          `json:"total_bits"`
	MaskedBits int          `json:"masked_bits"`
	// MaskedSiteFrac is MaskedBits / TotalBits: the fraction of static
	// single-bit fault sites the campaign engine may skip.
	MaskedSiteFrac float64 `json:"masked_site_frac"`
}

// Report summarizes t per function and module-wide.
func (t *Triage) Report() *ModuleReport {
	rep := &ModuleReport{Module: t.mod.Name, Version: Version}
	for _, f := range t.mod.Funcs {
		fr := FuncReport{Name: f.Name}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() {
					continue
				}
				fr.Injectable++
				width := int(in.Type.Bits())
				fr.TotalBits += width
				mb := bits.OnesCount64(t.masked[in.ID])
				fr.MaskedBits += mb
				if mb == width {
					fr.FullyMasked++
				} else if mb > 0 {
					fr.PartiallyMasked++
				}
				switch t.proof[in.ID] {
				case ProofDeadValue:
					fr.DeadValue++
				case ProofMaskedBits:
					fr.MaskedOnly++
				case ProofDeadStore:
					fr.DeadStore++
				}
			}
		}
		rep.Funcs = append(rep.Funcs, fr)
		rep.Injectable += fr.Injectable
		rep.TotalBits += fr.TotalBits
		rep.MaskedBits += fr.MaskedBits
	}
	if rep.TotalBits > 0 {
		rep.MaskedSiteFrac = float64(rep.MaskedBits) / float64(rep.TotalBits)
	}
	return rep
}

// Func returns the triage summary of one function by index.
func (t *Triage) Func(fn int) FuncReport {
	return t.Report().Funcs[fn]
}

// Render prints the human-readable triage table (the -analyze output).
func (r *ModuleReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "Static SDC-masking triage: %s (%s)\n", r.Module, r.Version)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tInjectable\tFullyMasked\tPartial\tMaskedBits\tTotalBits\tdead-value\tmasked-bits\tdead-store")
	for _, f := range r.Funcs {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			f.Name, f.Injectable, f.FullyMasked, f.PartiallyMasked,
			f.MaskedBits, f.TotalBits, f.DeadValue, f.MaskedOnly, f.DeadStore)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "module: %d/%d fault sites provably masked (%.2f%%)\n",
		r.MaskedBits, r.TotalBits, 100*r.MaskedSiteFrac)
	return err
}
