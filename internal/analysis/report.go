package analysis

import (
	"fmt"
	"io"
	"math/bits"
	"text/tabwriter"

	"repro/internal/ir"
)

// FuncReport summarizes the triage of one function.
type FuncReport struct {
	Name       string `json:"name"`
	Injectable int    `json:"injectable"` // injectable static instructions
	// Sites counted at bit granularity: an i64 result contributes 64,
	// an i1 result 1.
	TotalBits  int `json:"total_bits"`
	MaskedBits int `json:"masked_bits"`
	// RangeMaskedBits: demanded bits additionally absorbed under
	// single-bit flips (value-range proofs).
	RangeMaskedBits int `json:"range_masked_bits"`
	// DetectedBits: bits whose corruption is provably caught by an
	// armed detector (counted Detected unrun).
	DetectedBits int `json:"detected_bits"`
	// Instructions fully masked (every result bit provable) and
	// partially masked (a proper subset), including range proofs.
	FullyMasked     int `json:"fully_masked"`
	PartiallyMasked int `json:"partially_masked"`
	// Proof tag histogram over classified instructions.
	DeadValue     int `json:"dead_value"`
	MaskedOnly    int `json:"masked_bits_tag"`
	DeadStore     int `json:"dead_store"`
	StoreShadowed int `json:"store_shadowed"`
	RangeMasked   int `json:"range_masked"` // instrs with range-absorbed bits
	DupDetected   int `json:"dup_detected"` // instrs with a detectAll proof
	// BoundedRanges: injectable i64 definitions whose value-range fact
	// is a proper (non-full) interval.
	BoundedRanges int `json:"bounded_ranges"`
}

// AliasReport summarizes the provenance/memory-SSA layer.
type AliasReport struct {
	Objects        int `json:"objects"` // globals + allocas
	Globals        int `json:"globals"`
	Allocas        int `json:"allocas"`
	LoadedObjects  int `json:"loaded_objects"`
	EscapedObjects int `json:"escaped_objects"`
	DeadStores     int `json:"dead_stores"`
	ShadowedStores int `json:"shadowed_stores"`
}

// ModuleReport is the per-module triage summary emitted by the
// -analyze flag and embedded in pipeline JSON reports.
type ModuleReport struct {
	Module     string       `json:"module"`
	Version    string       `json:"analysis_version"`
	Funcs      []FuncReport `json:"funcs"`
	Injectable int          `json:"injectable"`
	TotalBits  int          `json:"total_bits"`
	MaskedBits int          `json:"masked_bits"`
	// RangeMaskedBits / DetectedBits aggregate the per-function counts.
	RangeMaskedBits int `json:"range_masked_bits"`
	DetectedBits    int `json:"detected_bits"`
	// MaskedSiteFrac is (MaskedBits+RangeMaskedBits) / TotalBits: the
	// fraction of static single-bit fault sites the campaign engine may
	// count benign unrun; DetectedSiteFrac the fraction it may count
	// detected unrun.
	MaskedSiteFrac   float64      `json:"masked_site_frac"`
	DetectedSiteFrac float64      `json:"detected_site_frac"`
	Alias            *AliasReport `json:"alias,omitempty"`
}

// Report summarizes t per function and module-wide.
func (t *Triage) Report() *ModuleReport {
	rep := &ModuleReport{Module: t.mod.Name, Version: Version}
	for _, f := range t.mod.Funcs {
		fr := FuncReport{Name: f.Name}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.IsInjectable() {
					continue
				}
				fr.Injectable++
				width := int(in.Type.Bits())
				fr.TotalBits += width
				rm := t.RangeMaskedBits(in.ID)
				mb := bits.OnesCount64(t.masked[in.ID])
				rb := bits.OnesCount64(rm)
				fr.MaskedBits += mb
				fr.RangeMaskedBits += rb
				if mb+rb == width {
					fr.FullyMasked++
				} else if mb+rb > 0 {
					fr.PartiallyMasked++
				}
				if rb > 0 {
					fr.RangeMasked++
				}
				if t.sound && t.detectAll[in.ID] {
					fr.DupDetected++
					fr.DetectedBits += width - mb - rb
				} else if t.sound && t.detectNext[in.ID] && mb+rb < width && t.masked[in.ID]&1 == 0 && rm&1 == 0 {
					fr.DetectedBits++
				}
				switch t.proof[in.ID] {
				case ProofDeadValue:
					fr.DeadValue++
				case ProofMaskedBits:
					fr.MaskedOnly++
				case ProofDeadStore:
					fr.DeadStore++
				case ProofStoreShadowed:
					fr.StoreShadowed++
				}
				if t.facts != nil && t.facts.SingleAssignment && in.Type == ir.I64 {
					if !t.facts.Ranges[f.Index].At(in.Dst).Full() {
						fr.BoundedRanges++
					}
				}
			}
		}
		rep.Funcs = append(rep.Funcs, fr)
		rep.Injectable += fr.Injectable
		rep.TotalBits += fr.TotalBits
		rep.MaskedBits += fr.MaskedBits
		rep.RangeMaskedBits += fr.RangeMaskedBits
		rep.DetectedBits += fr.DetectedBits
	}
	if rep.TotalBits > 0 {
		rep.MaskedSiteFrac = float64(rep.MaskedBits+rep.RangeMaskedBits) / float64(rep.TotalBits)
		rep.DetectedSiteFrac = float64(rep.DetectedBits) / float64(rep.TotalBits)
	}
	if fa := t.facts; fa != nil && fa.Pts != nil {
		ar := &AliasReport{
			Objects: fa.Pts.NumObjs,
			Globals: fa.Pts.NumGlobals,
			Allocas: fa.Pts.NumObjs - fa.Pts.NumGlobals,
		}
		for o := 0; o < fa.Pts.NumObjs; o++ {
			if fa.Pts.Loaded[o] {
				ar.LoadedObjects++
			}
			if fa.Pts.Escaped[o] {
				ar.EscapedObjects++
			}
		}
		ar.DeadStores = len(fa.DS.Dead)
		ar.ShadowedStores = len(fa.Mem.Shadowed)
		rep.Alias = ar
	}
	return rep
}

// Func returns the triage summary of one function by index.
func (t *Triage) Func(fn int) FuncReport {
	return t.Report().Funcs[fn]
}

// Render prints the human-readable triage table (the -analyze output).
func (r *ModuleReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "Static SDC-masking triage: %s (%s)\n", r.Module, r.Version)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tInjectable\tFullyMasked\tPartial\tMaskedBits\tRangeBits\tDetBits\tTotalBits\tdead-value\tmasked-bits\tdead-store\tstore-shadowed\trange-masked\tdup-detected")
	for _, f := range r.Funcs {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			f.Name, f.Injectable, f.FullyMasked, f.PartiallyMasked,
			f.MaskedBits, f.RangeMaskedBits, f.DetectedBits, f.TotalBits,
			f.DeadValue, f.MaskedOnly, f.DeadStore, f.StoreShadowed,
			f.RangeMasked, f.DupDetected)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.Alias != nil {
		a := r.Alias
		fmt.Fprintf(w, "alias: %d objects (%d globals, %d allocas), %d loaded, %d escaped; %d dead stores, %d shadowed stores\n",
			a.Objects, a.Globals, a.Allocas, a.LoadedObjects, a.EscapedObjects,
			a.DeadStores, a.ShadowedStores)
	}
	if r.DetectedBits > 0 {
		fmt.Fprintf(w, "module: %d/%d fault sites provably detected (%.2f%%)\n",
			r.DetectedBits, r.TotalBits, 100*r.DetectedSiteFrac)
	}
	_, err := fmt.Fprintf(w, "module: %d/%d fault sites provably masked (%.2f%%)\n",
		r.MaskedBits+r.RangeMaskedBits, r.TotalBits, 100*r.MaskedSiteFrac)
	return err
}
