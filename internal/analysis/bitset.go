package analysis

import "math/bits"

// BitSet is a fixed-capacity bitset over small integer keys (registers).
type BitSet []uint64

// NewBitSet returns a bitset able to hold keys 0..n-1.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds key i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes key i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether key i is present.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// UnionWith adds every key of o to s and reports whether s changed.
func (s BitSet) UnionWith(o BitSet) bool {
	changed := false
	for i, w := range o {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with o (equal capacity).
func (s BitSet) Copy(o BitSet) { copy(s, o) }

// Count returns the number of keys present.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of s.
func (s BitSet) Clone() BitSet { return append(BitSet(nil), s...) }
