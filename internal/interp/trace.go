package interp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/ir"
)

// Tracer receives a line per executed instruction when attached to a run
// via RunTraced. It is a debugging aid: traces are verbose, so Limit
// bounds the emitted instruction count.
//
// When Hook is set it is called for every executed instruction with the
// current frame's register file, bypassing W and Limit entirely. The
// differential fact checker uses it to validate static analysis facts
// against concrete execution. The regs slice is the live register file:
// callees must not retain or mutate it.
type Tracer struct {
	W     io.Writer
	Limit int64 // maximum instructions to trace (0 = DefaultTraceLimit)

	// Hook, when non-nil, observes every executed instruction. For
	// instructions with a result it runs after the result (and any
	// injected fault) has been written to regs[in.Dst].
	Hook func(fn *ir.Function, in *ir.Instr, regs []uint64, result uint64, hasResult bool)

	emitted int64
}

// DefaultTraceLimit bounds a trace when Tracer.Limit is zero.
const DefaultTraceLimit = 10_000

func (t *Tracer) limit() int64 {
	if t.Limit > 0 {
		return t.Limit
	}
	return DefaultTraceLimit
}

// note records one executed instruction with its result value.
func (t *Tracer) note(fn *ir.Function, in *ir.Instr, regs []uint64, result uint64, hasResult bool) {
	if t.Hook != nil {
		t.Hook(fn, in, regs, result, hasResult)
	}
	if t.W == nil {
		return
	}
	if t.emitted >= t.limit() {
		if t.emitted == t.limit() {
			fmt.Fprintf(t.W, "... trace limit (%d) reached\n", t.limit())
			t.emitted++
		}
		return
	}
	t.emitted++
	if !hasResult {
		fmt.Fprintf(t.W, "%8d  %-12s [%4d] %s\n", t.emitted, fn.Name, in.ID, in.String())
		return
	}
	switch in.Type {
	case ir.F64:
		fmt.Fprintf(t.W, "%8d  %-12s [%4d] %s  => %g\n",
			t.emitted, fn.Name, in.ID, in.String(), math.Float64frombits(result))
	default:
		fmt.Fprintf(t.W, "%8d  %-12s [%4d] %s  => %d\n",
			t.emitted, fn.Name, in.ID, in.String(), int64(result))
	}
}

// RunTraced is Run with an instruction trace streamed to tr.W. Tracing
// changes no semantics; it exists for debugging miscompiles and fault
// behaviors.
func (r *Runner) RunTraced(bind Binding, fault *Fault, tr *Tracer) Result {
	r.tracer = tr
	defer func() { r.tracer = nil }()
	return r.Run(bind, fault, nil)
}
