package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
)

// buildSum builds main(n) { s = sum 0..n-1; emiti(s) }.
func buildSum(t testing.TB) *ir.Module {
	t.Helper()
	m := ir.NewModule("sum")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)

	sVar := b.Alloca(ir.ConstI(1))
	iVar := b.Alloca(ir.ConstI(1))
	b.Store(ir.ConstI(0), sVar)
	b.Store(ir.ConstI(0), iVar)

	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(cond)

	b.SetBlock(cond)
	i := b.Load(ir.I64, iVar)
	c := b.ICmp(ir.PredLT, i, ir.Reg(0, ir.I64))
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	s := b.Load(ir.I64, sVar)
	i2 := b.Load(ir.I64, iVar)
	b.Store(b.Bin(ir.OpAdd, s, i2), sVar)
	b.Store(b.Bin(ir.OpAdd, i2, ir.ConstI(1)), iVar)
	b.Br(cond)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, sVar))
	b.RetVoid()

	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func run(t testing.TB, m *ir.Module, args []uint64) Result {
	t.Helper()
	r := NewRunner(m, Config{})
	return r.Run(Binding{Args: args}, nil, nil)
}

func TestSumLoop(t *testing.T) {
	m := buildSum(t)
	res := run(t, m, []uint64{10})
	if res.Status != StatusOK {
		t.Fatalf("status = %v (trap %q)", res.Status, res.Trap)
	}
	if len(res.Output) != 1 || int64(res.Output[0]) != 45 {
		t.Fatalf("output = %v, want [45]", res.Output)
	}
	if res.DynInstrs <= 0 || res.Cycles < res.DynInstrs {
		t.Fatalf("bogus accounting: dyn=%d cycles=%d", res.DynInstrs, res.Cycles)
	}
}

func TestRunnerIsReusableAndDeterministic(t *testing.T) {
	m := buildSum(t)
	r := NewRunner(m, Config{})
	a := r.Run(Binding{Args: []uint64{100}}, nil, nil)
	b := r.Run(Binding{Args: []uint64{100}}, nil, nil)
	if a.Status != b.Status || a.DynInstrs != b.DynInstrs || a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic reuse: %+v vs %+v", a, b)
	}
	if a.Output[0] != b.Output[0] {
		t.Fatalf("outputs differ: %v vs %v", a.Output, b.Output)
	}
	c := r.Run(Binding{Args: []uint64{5}}, nil, nil)
	if int64(c.Output[0]) != 10 {
		t.Fatalf("third run output = %v, want [10]", c.Output)
	}
}

func TestFloatArithmeticAndBuiltins(t *testing.T) {
	m := ir.NewModule("fl")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	x := b.Bin(ir.OpFAdd, ir.ConstF(1.5), ir.ConstF(2.25)) // 3.75
	y := b.CallB(ir.BuiltinSqrt, ir.ConstF(16))            // 4
	z := b.Bin(ir.OpFMul, x, y)                            // 15
	w := b.Bin(ir.OpFDiv, z, ir.ConstF(2))                 // 7.5
	b.CallB(ir.BuiltinEmitF, w)
	b.CallB(ir.BuiltinEmitF, b.CallB(ir.BuiltinPow, ir.ConstF(2), ir.ConstF(10)))
	b.CallB(ir.BuiltinEmitF, b.CallB(ir.BuiltinFabs, ir.ConstF(-3)))
	b.CallB(ir.BuiltinEmitF, b.CallB(ir.BuiltinFloor, ir.ConstF(2.9)))
	b.CallB(ir.BuiltinEmitI, b.CallB(ir.BuiltinIAbs, ir.ConstI(-42)))
	b.RetVoid()
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	res := run(t, m, nil)
	if res.Status != StatusOK {
		t.Fatalf("status = %v", res.Status)
	}
	want := []float64{7.5, 1024, 3, 2}
	for i, w := range want {
		if got := math.Float64frombits(res.Output[i]); got != w {
			t.Errorf("output[%d] = %g, want %g", i, got, w)
		}
	}
	if int64(res.Output[4]) != 42 {
		t.Errorf("iabs output = %d, want 42", int64(res.Output[4]))
	}
}

func TestConversionsAndSelect(t *testing.T) {
	m := ir.NewModule("conv")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	fv := b.IToF(ir.Reg(0, ir.I64))
	iv := b.FToI(b.Bin(ir.OpFMul, fv, ir.ConstF(2.5)))
	c := b.ICmp(ir.PredGT, iv, ir.ConstI(10))
	sel := b.Select(c, ir.ConstI(1), ir.ConstI(0))
	b.CallB(ir.BuiltinEmitI, iv)
	b.CallB(ir.BuiltinEmitI, sel)
	b.RetVoid()
	m.Finalize()

	res := run(t, m, []uint64{6})
	if int64(res.Output[0]) != 15 || int64(res.Output[1]) != 1 {
		t.Fatalf("output = %v, want [15 1]", res.Output)
	}
	res = run(t, m, []uint64{2})
	if int64(res.Output[0]) != 5 || int64(res.Output[1]) != 0 {
		t.Fatalf("output = %v, want [5 0]", res.Output)
	}
}

func TestCrashOutcomes(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *ir.Builder)
	}{
		{"div-zero", func(b *ir.Builder) {
			b.CallB(ir.BuiltinEmitI, b.Bin(ir.OpDiv, ir.ConstI(1), ir.Reg(0, ir.I64)))
		}},
		{"rem-zero", func(b *ir.Builder) {
			b.CallB(ir.BuiltinEmitI, b.Bin(ir.OpRem, ir.ConstI(1), ir.Reg(0, ir.I64)))
		}},
		{"load-oob", func(b *ir.Builder) {
			b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: 1 << 40}))
		}},
		{"store-null", func(b *ir.Builder) {
			b.Store(ir.ConstI(1), ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: 0})
		}},
		{"ftoi-nan", func(b *ir.Builder) {
			nan := b.Bin(ir.OpFDiv, ir.ConstF(0), ir.ConstF(0))
			b.CallB(ir.BuiltinEmitI, b.FToI(nan))
		}},
		{"alloca-overflow", func(b *ir.Builder) {
			b.Alloca(ir.ConstI(1 << 40))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ir.NewModule(tc.name)
			f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
			b := ir.NewBuilder(m, f)
			tc.build(b)
			b.RetVoid()
			m.Finalize()
			res := run(t, m, []uint64{0})
			if res.Status != StatusCrash {
				t.Fatalf("status = %v, want crash", res.Status)
			}
			if res.Trap == "" {
				t.Fatal("crash with empty trap reason")
			}
		})
	}
}

func TestHangBudget(t *testing.T) {
	m := ir.NewModule("spin")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	m.Finalize()

	r := NewRunner(m, Config{MaxDynInstrs: 1000})
	res := r.Run(Binding{}, nil, nil)
	if res.Status != StatusHang {
		t.Fatalf("status = %v, want hang", res.Status)
	}
	if res.DynInstrs > 1100 {
		t.Fatalf("ran %d instrs past the budget", res.DynInstrs)
	}
}

func TestCallAndRecursion(t *testing.T) {
	// fib(n) recursive.
	m := ir.NewModule("fib")
	mainF := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	fibF := m.AddFunction("fib", []ir.Type{ir.I64}, ir.I64)

	mb := ir.NewBuilder(m, mainF)
	r := mb.Call(fibF.Index, ir.I64, ir.Reg(0, ir.I64))
	mb.CallB(ir.BuiltinEmitI, r)
	mb.RetVoid()

	fb := ir.NewBuilder(m, fibF)
	base := fb.NewBlock("base")
	rec := fb.NewBlock("rec")
	c := fb.ICmp(ir.PredLT, ir.Reg(0, ir.I64), ir.ConstI(2))
	fb.CondBr(c, base, rec)
	fb.SetBlock(base)
	fb.Ret(ir.Reg(0, ir.I64))
	fb.SetBlock(rec)
	a := fb.Call(fibF.Index, ir.I64, fb.Bin(ir.OpSub, ir.Reg(0, ir.I64), ir.ConstI(1)))
	bb := fb.Call(fibF.Index, ir.I64, fb.Bin(ir.OpSub, ir.Reg(0, ir.I64), ir.ConstI(2)))
	fb.Ret(fb.Bin(ir.OpAdd, a, bb))
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	res := run(t, m, []uint64{10})
	if res.Status != StatusOK || int64(res.Output[0]) != 55 {
		t.Fatalf("fib(10): status=%v output=%v", res.Status, res.Output)
	}
}

func TestCallDepthLimit(t *testing.T) {
	m := ir.NewModule("deep")
	mainF := m.AddFunction("main", nil, ir.Void)
	recF := m.AddFunction("rec", []ir.Type{ir.I64}, ir.Void)
	mb := ir.NewBuilder(m, mainF)
	mb.Call(recF.Index, ir.Void, ir.ConstI(0))
	mb.RetVoid()
	rb := ir.NewBuilder(m, recF)
	rb.Call(recF.Index, ir.Void, ir.Reg(0, ir.I64))
	rb.RetVoid()
	m.Finalize()

	res := run(t, m, nil)
	if res.Status != StatusCrash {
		t.Fatalf("status = %v, want crash (call depth)", res.Status)
	}
}

func TestDetectHalts(t *testing.T) {
	m := ir.NewModule("det")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	ok := b.ICmp(ir.PredEQ, ir.Reg(0, ir.I64), ir.ConstI(7))
	b.Detect(ok)
	b.CallB(ir.BuiltinEmitI, ir.ConstI(1))
	b.RetVoid()
	m.Finalize()

	if res := run(t, m, []uint64{7}); res.Status != StatusOK || len(res.Output) != 1 {
		t.Fatalf("passing detect: %v %v", res.Status, res.Output)
	}
	res := run(t, m, []uint64{8})
	if res.Status != StatusDetected {
		t.Fatalf("status = %v, want detected", res.Status)
	}
	if len(res.Output) != 0 {
		t.Fatalf("detected run still emitted output %v", res.Output)
	}
}

func TestGlobalsBindingAndArrayLen(t *testing.T) {
	m := ir.NewModule("glob")
	m.AddGlobal("data", -1, nil)                  // input-bound
	m.AddGlobal("table", 4, []uint64{9, 8, 7, 6}) // static init
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	n := b.ArrayLen(0)
	b.CallB(ir.BuiltinEmitI, n)
	base := b.GlobalAddr(0)
	b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, b.GEP(base, ir.ConstI(2))))
	tbl := b.GlobalAddr(1)
	b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, b.GEP(tbl, ir.ConstI(1))))
	b.RetVoid()
	m.Finalize()

	r := NewRunner(m, Config{})
	res := r.Run(Binding{Globals: map[string][]uint64{"data": {10, 20, 30}}}, nil, nil)
	if res.Status != StatusOK {
		t.Fatalf("status = %v (%s)", res.Status, res.Trap)
	}
	if int64(res.Output[0]) != 3 || int64(res.Output[1]) != 30 || int64(res.Output[2]) != 8 {
		t.Fatalf("output = %v, want [3 30 8]", res.Output)
	}
}

func TestMissingDynamicGlobalPanics(t *testing.T) {
	m := ir.NewModule("glob2")
	m.AddGlobal("data", -1, nil)
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	b.RetVoid()
	m.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound dynamic global")
		}
	}()
	NewRunner(m, Config{}).Run(Binding{}, nil, nil)
}

func TestPhiExecution(t *testing.T) {
	// main(n): x = (n > 0) ? 100 : 200 via phi; emiti(x)
	m := ir.NewModule("phi")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	merge := b.NewBlock("merge")
	c := b.ICmp(ir.PredGT, ir.Reg(0, ir.I64), ir.ConstI(0))
	b.CondBr(c, thenB, elseB)
	b.SetBlock(thenB)
	b.Br(merge)
	b.SetBlock(elseB)
	b.Br(merge)
	b.SetBlock(merge)
	x := b.Phi(ir.I64, []ir.Operand{ir.ConstI(100), ir.ConstI(200)}, []*ir.Block{thenB, elseB})
	b.CallB(ir.BuiltinEmitI, x)
	b.RetVoid()
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	if res := run(t, m, []uint64{5}); int64(res.Output[0]) != 100 {
		t.Fatalf("phi(then) = %v", res.Output)
	}
	if res := run(t, m, []uint64{0}); int64(res.Output[0]) != 200 {
		t.Fatalf("phi(else) = %v", res.Output)
	}
}

func TestProfileCounts(t *testing.T) {
	m := buildSum(t)
	prof := NewProfile(m)
	r := NewRunner(m, Config{})
	res := r.Run(Binding{Args: []uint64{10}}, nil, prof)
	if res.Status != StatusOK {
		t.Fatalf("status = %v", res.Status)
	}

	var totalInstrs, totalCycles int64
	for id := range prof.InstrCount {
		totalInstrs += prof.InstrCount[id]
		totalCycles += prof.InstrCycles[id]
	}
	if totalInstrs != res.DynInstrs {
		t.Errorf("profile instr total %d != result %d", totalInstrs, res.DynInstrs)
	}
	if totalCycles != res.Cycles {
		t.Errorf("profile cycle total %d != result %d", totalCycles, res.Cycles)
	}

	// The loop body block must have executed 10 times, cond 11 times.
	f := m.Funcs[0]
	var condIdx, bodyIdx int
	for _, blk := range f.Blocks {
		switch blk.Name {
		case "cond":
			condIdx = blk.Index
		case "body":
			bodyIdx = blk.Index
		}
	}
	if got := prof.BlockCount[m.GlobalBlockIndex(0, condIdx)]; got != 11 {
		t.Errorf("cond block count = %d, want 11", got)
	}
	if got := prof.BlockCount[m.GlobalBlockIndex(0, bodyIdx)]; got != 10 {
		t.Errorf("body block count = %d, want 10", got)
	}
	// Edge body->cond executed 10 times.
	if got := prof.EdgeCount(m.GlobalBlockIndex(0, bodyIdx), m.GlobalBlockIndex(0, condIdx)); got != 10 {
		t.Errorf("body->cond edge count = %d, want 10", got)
	}
	// The map view agrees with the dense counters.
	e := [2]int{m.GlobalBlockIndex(0, bodyIdx), m.GlobalBlockIndex(0, condIdx)}
	if got := prof.EdgeCountMap()[e]; got != 10 {
		t.Errorf("EdgeCountMap body->cond = %d, want 10", got)
	}
}

func TestFaultInjectionFlipsBit(t *testing.T) {
	m := buildSum(t)
	// Find the add that accumulates s (first OpAdd in the body).
	var addID = -1
	for _, in := range m.Instrs {
		if in.Op == ir.OpAdd && addID == -1 {
			addID = in.ID
		}
	}
	if addID < 0 {
		t.Fatal("no add instruction found")
	}

	golden := run(t, m, []uint64{10})
	r := NewRunner(m, Config{})
	res := r.Run(Binding{Args: []uint64{10}}, &Fault{InstrID: addID, DynIndex: 9, Bit: 3}, nil)
	if res.Status != StatusOK {
		t.Fatalf("status = %v", res.Status)
	}
	// The last accumulation (s += 9 -> 45) had bit 3 flipped: 45 ^ 8 = 37.
	if res.Output[0] == golden.Output[0] {
		t.Fatal("fault did not change the output")
	}
	if int64(res.Output[0]) != 45^8 {
		t.Fatalf("output = %d, want %d", int64(res.Output[0]), 45^8)
	}

	// Same fault at an occurrence past the end: no effect.
	res2 := r.Run(Binding{Args: []uint64{10}}, &Fault{InstrID: addID, DynIndex: 1000, Bit: 3}, nil)
	if res2.Output[0] != golden.Output[0] {
		t.Fatal("out-of-range occurrence still mutated output")
	}
}

func TestFaultOnCompareInvertsBranch(t *testing.T) {
	m := buildSum(t)
	var cmpID = -1
	for _, in := range m.Instrs {
		if in.Op == ir.OpICmp {
			cmpID = in.ID
		}
	}
	if cmpID < 0 {
		t.Fatal("no compare found")
	}
	// Flip the compare the first time it executes: loop exits immediately
	// or continues wrongly; either way output differs from golden (45).
	r := NewRunner(m, Config{MaxDynInstrs: 100000})
	res := r.Run(Binding{Args: []uint64{10}}, &Fault{InstrID: cmpID, DynIndex: 0, Bit: 0}, nil)
	if res.Status == StatusOK && int64(res.Output[0]) == 45 {
		t.Fatal("flipping the loop compare had no effect")
	}
}

func TestFaultOnCallReturnValue(t *testing.T) {
	m := ir.NewModule("callret")
	mainF := m.AddFunction("main", nil, ir.Void)
	cF := m.AddFunction("c", nil, ir.I64)
	mb := ir.NewBuilder(m, mainF)
	v := mb.Call(cF.Index, ir.I64)
	mb.CallB(ir.BuiltinEmitI, v)
	mb.RetVoid()
	cb := ir.NewBuilder(m, cF)
	cb.Ret(ir.ConstI(100))
	m.Finalize()

	var callID = -1
	for _, in := range m.Instrs {
		if in.Op == ir.OpCall {
			callID = in.ID
		}
	}
	r := NewRunner(m, Config{})
	res := r.Run(Binding{}, &Fault{InstrID: callID, DynIndex: 0, Bit: 1}, nil)
	if int64(res.Output[0]) != 100^2 {
		t.Fatalf("call-return flip: output = %d, want %d", int64(res.Output[0]), 100^2)
	}
}

func TestThreadsSpawnJoin(t *testing.T) {
	// Each worker adds tid+1 to cell tid of a global; main sums after join.
	m := ir.NewModule("mt")
	m.AddGlobal("cells", 4, nil)
	mainF := m.AddFunction("main", nil, ir.Void)
	workF := m.AddFunction("work", []ir.Type{ir.I64}, ir.Void)

	wb := ir.NewBuilder(m, workF)
	base := wb.GlobalAddr(0)
	slot := wb.GEP(base, ir.Reg(0, ir.I64))
	wb.Store(wb.Bin(ir.OpAdd, ir.Reg(0, ir.I64), ir.ConstI(1)), slot)
	wb.RetVoid()

	mb := ir.NewBuilder(m, mainF)
	for i := 0; i < 4; i++ {
		mb.Spawn(workF.Index, ir.ConstI(int64(i)))
	}
	mb.Join()
	sum := ir.ConstI(0)
	gb := mb.GlobalAddr(0)
	acc := mb.Bin(ir.OpAdd, sum, ir.ConstI(0))
	for i := 0; i < 4; i++ {
		v := mb.Load(ir.I64, mb.GEP(gb, ir.ConstI(int64(i))))
		acc = mb.Bin(ir.OpAdd, acc, v)
	}
	mb.CallB(ir.BuiltinEmitI, acc)
	mb.RetVoid()
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	res := run(t, m, nil)
	if res.Status != StatusOK {
		t.Fatalf("status = %v (%s)", res.Status, res.Trap)
	}
	if int64(res.Output[0]) != 1+2+3+4 {
		t.Fatalf("threaded sum = %d, want 10", int64(res.Output[0]))
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{StatusOK: "ok", StatusCrash: "crash", StatusHang: "hang", StatusDetected: "detected"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}

func BenchmarkInterpSumLoop(b *testing.B) {
	m := buildSum(b)
	r := NewRunner(m, Config{})
	bind := Binding{Args: []uint64{1000}}
	b.ResetTimer()
	var dyn int64
	for i := 0; i < b.N; i++ {
		res := r.Run(bind, nil, nil)
		dyn = res.DynInstrs
	}
	b.ReportMetric(float64(dyn), "instrs/run")
}

func TestPhiGroupParallelSemantics(t *testing.T) {
	// Loop that swaps (a, b) each iteration via two interdependent phis:
	//   loop: a = phi [1, entry], [bPhi, loop]
	//         b = phi [2, entry], [aPhi, loop]
	// After 3 iterations: a=2, b=1 (swap applied 3 times). A sequential
	// phi evaluation would compute a=b then b=a(new) and lose a value.
	m := ir.NewModule("swap")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	entry := b.Block()
	iVar := b.Alloca(ir.ConstI(1))
	b.Store(ir.ConstI(0), iVar)
	b.Br(loop)

	b.SetBlock(loop)
	// Reserve registers for the phis up front so they can reference each
	// other.
	aReg := b.NewReg()
	bReg := b.NewReg()
	loop.Instrs = append(loop.Instrs,
		&ir.Instr{Op: ir.OpPhi, Type: ir.I64, Dst: aReg,
			Args:  []ir.Operand{ir.ConstI(1), ir.Reg(bReg, ir.I64)},
			Succs: []int{entry.Index, loop.Index}},
		&ir.Instr{Op: ir.OpPhi, Type: ir.I64, Dst: bReg,
			Args:  []ir.Operand{ir.ConstI(2), ir.Reg(aReg, ir.I64)},
			Succs: []int{entry.Index, loop.Index}},
	)
	i := b.Load(ir.I64, iVar)
	i2 := b.Bin(ir.OpAdd, i, ir.ConstI(1))
	b.Store(i2, iVar)
	c := b.ICmp(ir.PredLT, i2, ir.ConstI(3))
	b.CondBr(c, loop, exit)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, ir.Reg(aReg, ir.I64))
	b.CallB(ir.BuiltinEmitI, ir.Reg(bReg, ir.I64))
	b.RetVoid()
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	res := run(t, m, nil)
	if res.Status != StatusOK {
		t.Fatalf("status %v (%s)", res.Status, res.Trap)
	}
	// Iterations: start (1,2); after entering loop 2nd time (2,1), 3rd
	// time (1,2) -> exit after 3rd iteration check. The loop header runs
	// 3 times: values on exit are those of the 3rd entry: (1,2).
	a, bv := int64(res.Output[0]), int64(res.Output[1])
	if !(a == 1 && bv == 2) {
		t.Fatalf("phi swap result (%d,%d), want (1,2)", a, bv)
	}
}

func TestPhiGroupFaultInjection(t *testing.T) {
	// Faults must still hit phi instructions executed via the grouped
	// path in branch().
	m := ir.NewModule("phifi")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	entry := b.Block()
	b.Br(loop)

	b.SetBlock(loop)
	xReg := b.NewReg()
	yReg := b.NewReg()
	loop.Instrs = append(loop.Instrs,
		&ir.Instr{Op: ir.OpPhi, Type: ir.I64, Dst: xReg,
			Args:  []ir.Operand{ir.ConstI(5), ir.Reg(xReg, ir.I64)},
			Succs: []int{entry.Index, loop.Index}},
		&ir.Instr{Op: ir.OpPhi, Type: ir.I64, Dst: yReg,
			Args:  []ir.Operand{ir.ConstI(0), ir.Reg(yReg, ir.I64)},
			Succs: []int{entry.Index, loop.Index}},
	)
	y2 := b.Bin(ir.OpAdd, ir.Reg(yReg, ir.I64), ir.ConstI(1))
	// Rebind y phi's loop incoming to the increment.
	loop.Instrs[1].Args[1] = y2
	c := b.ICmp(ir.PredLT, y2, ir.ConstI(4))
	b.CondBr(c, loop, exit)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, ir.Reg(xReg, ir.I64))
	b.RetVoid()
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	golden := run(t, m, nil)
	if int64(golden.Output[0]) != 5 {
		t.Fatalf("golden = %v, want [5]", golden.Output)
	}
	var phiID = -1
	for _, in := range m.Instrs {
		if in.Op == ir.OpPhi && in.Dst == xReg {
			phiID = in.ID
		}
	}
	r := NewRunner(m, Config{})
	res := r.Run(Binding{}, &Fault{InstrID: phiID, DynIndex: 1, Bit: 1}, nil)
	if res.Status != StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if int64(res.Output[0]) != 5^2 {
		t.Fatalf("phi fault output = %d, want %d", int64(res.Output[0]), 5^2)
	}
}

func TestRunTraced(t *testing.T) {
	m := buildSum(t)
	var buf strings.Builder
	r := NewRunner(m, Config{})
	res := r.RunTraced(Binding{Args: []uint64{3}}, nil, &Tracer{W: &buf, Limit: 1000})
	if res.Status != StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	out := buf.String()
	if !strings.Contains(out, "main") || !strings.Contains(out, "icmp") {
		t.Fatalf("trace incomplete:\n%s", out)
	}
	// Result values appear.
	if !strings.Contains(out, "=>") {
		t.Fatalf("trace missing result values:\n%s", out)
	}
	// Limit enforcement.
	var small strings.Builder
	r.RunTraced(Binding{Args: []uint64{100}}, nil, &Tracer{W: &small, Limit: 10})
	if !strings.Contains(small.String(), "trace limit") {
		t.Fatalf("trace limit not enforced:\n%s", small.String())
	}
	// Tracing must not change semantics.
	plain := r.Run(Binding{Args: []uint64{3}}, nil, nil)
	if plain.Output[0] != res.Output[0] || plain.DynInstrs != res.DynInstrs {
		t.Fatal("tracing changed execution")
	}
}

func TestOutputOverflowTraps(t *testing.T) {
	// An unbounded emit loop must trap (output overflow), not OOM.
	m := ir.NewModule("spew")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.CallB(ir.BuiltinEmitI, ir.ConstI(1))
	b.Br(loop)
	m.Finalize()

	r := NewRunner(m, Config{MaxOutputWords: 100, MaxDynInstrs: 1_000_000})
	res := r.Run(Binding{}, nil, nil)
	if res.Status != StatusCrash {
		t.Fatalf("status %v, want crash (output overflow)", res.Status)
	}
}

func TestShiftSemantics(t *testing.T) {
	m := ir.NewModule("sh")
	f := m.AddFunction("main", []ir.Type{ir.I64, ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	b.CallB(ir.BuiltinEmitI, b.Bin(ir.OpShl, ir.Reg(0, ir.I64), ir.Reg(1, ir.I64)))
	b.CallB(ir.BuiltinEmitI, b.Bin(ir.OpShr, ir.Reg(0, ir.I64), ir.Reg(1, ir.I64)))
	b.RetVoid()
	m.Finalize()

	r := NewRunner(m, Config{})
	// Shift counts are masked to 6 bits (x86-style), and right shift is
	// arithmetic.
	neg8 := int64(-8)
	res := r.Run(Binding{Args: []uint64{uint64(neg8), 1}}, nil, nil)
	if int64(res.Output[0]) != -16 || int64(res.Output[1]) != -4 {
		t.Fatalf("shifts of -8 by 1: %d %d, want -16 -4", int64(res.Output[0]), int64(res.Output[1]))
	}
	res = r.Run(Binding{Args: []uint64{1, 65}}, nil, nil) // 65 & 63 = 1
	if int64(res.Output[0]) != 2 {
		t.Fatalf("1 << 65 = %d, want 2 (masked count)", int64(res.Output[0]))
	}
}

func TestGEPNegativeIndexTrapsOnAccess(t *testing.T) {
	// gep may compute any address; only dereferencing an out-of-range one
	// traps (null page below reservedLow).
	m := ir.NewModule("gep")
	m.AddGlobal("a", 4, nil)
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	base := b.GlobalAddr(0)
	p := b.GEP(base, ir.Reg(0, ir.I64))
	b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, p))
	b.RetVoid()
	m.Finalize()

	r := NewRunner(m, Config{})
	if res := r.Run(Binding{Args: []uint64{0}}, nil, nil); res.Status != StatusOK {
		t.Fatalf("valid access: %v", res.Status)
	}
	negIdx := int64(-1000)
	if res := r.Run(Binding{Args: []uint64{uint64(negIdx)}}, nil, nil); res.Status != StatusCrash {
		t.Fatalf("negative address access: %v, want crash", res.Status)
	}
}

func TestThreadLimitTraps(t *testing.T) {
	// A spawn loop beyond MaxThreads must trap instead of exhausting
	// memory (the fault-induced spawn-storm scenario).
	m := ir.NewModule("storm")
	mainF := m.AddFunction("main", nil, ir.Void)
	wF := m.AddFunction("w", nil, ir.Void)
	wb := ir.NewBuilder(m, wF)
	wb.RetVoid()
	b := ir.NewBuilder(m, mainF)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Spawn(wF.Index)
	b.Br(loop)
	m.Finalize()

	r := NewRunner(m, Config{MaxThreads: 8, MaxDynInstrs: 100_000})
	res := r.Run(Binding{}, nil, nil)
	if res.Status != StatusCrash || res.Trap != "thread limit exceeded" {
		t.Fatalf("status %v trap %q, want thread-limit crash", res.Status, res.Trap)
	}
}

func TestMultiBitFlipMask(t *testing.T) {
	m := buildSum(t)
	var addID = -1
	for _, in := range m.Instrs {
		if in.Op == ir.OpAdd && addID == -1 {
			addID = in.ID
		}
	}
	r := NewRunner(m, Config{})
	// Flip bits 0 and 2 (mask 5) of the last accumulation: 45 ^ 5 = 40.
	res := r.Run(Binding{Args: []uint64{10}}, &Fault{InstrID: addID, DynIndex: 9, Mask: 5}, nil)
	if int64(res.Output[0]) != 45^5 {
		t.Fatalf("mask flip output = %d, want %d", int64(res.Output[0]), 45^5)
	}
}
