package interp

import (
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/obs"
)

// chainModule is a straight line of value ops on an argument register:
// the compiler must fuse the whole chain into one xRun superinstruction.
func chainModule() *ir.Module {
	m := ir.NewModule("chain")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	x := ir.Reg(0, ir.I64)
	v := b.Bin(ir.OpAdd, x, ir.ConstI(3))
	v = b.Bin(ir.OpMul, v, ir.ConstI(5))
	v = b.Bin(ir.OpXor, v, ir.ConstI(0xff))
	v = b.Bin(ir.OpSub, v, x)
	b.CallB(ir.BuiltinEmitI, v)
	b.RetVoid()
	m.Finalize()
	return m
}

// loopModule sums 0..n-1 through global memory cells (cell 0 = i,
// cell 1 = acc), so the loop back-edge is an icmp immediately feeding a
// condbr — the cmp+br fusion target.
func loopModule(n int64) *ir.Module {
	m := ir.NewModule("loop")
	m.AddGlobal("cells", 2, nil)
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	g := b.GlobalAddr(0)
	b.Store(ir.ConstI(0), g)
	b.Store(ir.ConstI(0), b.GEP(g, ir.ConstI(1)))
	b.Br(loop)

	b.SetBlock(loop)
	g2 := b.GlobalAddr(0)
	acell := b.GEP(g2, ir.ConstI(1))
	i := b.Load(ir.I64, g2)
	a := b.Load(ir.I64, acell)
	b.Store(b.Bin(ir.OpAdd, a, i), acell)
	i2 := b.Bin(ir.OpAdd, i, ir.ConstI(1))
	b.Store(i2, g2)
	c := b.ICmp(ir.PredLT, i2, ir.ConstI(n))
	b.CondBr(c, loop, exit)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, b.GEP(b.GlobalAddr(0), ir.ConstI(1))))
	b.RetVoid()
	m.Finalize()
	return m
}

// detectLoopModule is a duplication-protected loop: each iteration
// computes a value twice, compares the copies with icmp-eq, and feeds the
// comparison to a detect — the xCmpEqDetect fusion shape — then counts
// down through a fused cmp+br back-edge.
func detectLoopModule(n int64) *ir.Module {
	m := ir.NewModule("dup")
	m.AddGlobal("cells", 1, nil)
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.Store(ir.ConstI(0), b.GlobalAddr(0))
	b.Br(loop)

	b.SetBlock(loop)
	g := b.GlobalAddr(0)
	i := b.Load(ir.I64, g)
	v := b.Bin(ir.OpMul, i, ir.ConstI(3))
	v2 := b.Bin(ir.OpMul, i, ir.ConstI(3))
	b.Detect(b.ICmp(ir.PredEQ, v, v2))
	i2 := b.Bin(ir.OpAdd, i, ir.ConstI(1))
	b.Store(i2, g)
	b.CondBr(b.ICmp(ir.PredLT, i2, ir.ConstI(n)), loop, exit)

	b.SetBlock(exit)
	b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, b.GlobalAddr(0)))
	b.RetVoid()
	m.Finalize()
	return m
}

// spawnDetectModule spawns `workers` threads, each running a
// duplication-protected computation into its own global cell; main joins
// and emits the sum. Fusion must be disabled (quantum slicing between the
// halves of a fused pair would be observable through the round-robin
// schedule), but all engines must still agree bit-for-bit.
func spawnDetectModule(workers int) *ir.Module {
	m := ir.NewModule("mtdup")
	m.AddGlobal("cells", workers, nil)
	mainF := m.AddFunction("main", nil, ir.Void)
	workF := m.AddFunction("work", []ir.Type{ir.I64}, ir.Void)

	wb := ir.NewBuilder(m, workF)
	tid := ir.Reg(0, ir.I64)
	v := wb.Bin(ir.OpMul, tid, ir.ConstI(7))
	v = wb.Bin(ir.OpAdd, v, ir.ConstI(1))
	v2 := wb.Bin(ir.OpMul, tid, ir.ConstI(7))
	v2 = wb.Bin(ir.OpAdd, v2, ir.ConstI(1))
	wb.Detect(wb.ICmp(ir.PredEQ, v, v2))
	wb.Store(v, wb.GEP(wb.GlobalAddr(0), tid))
	wb.RetVoid()

	mb := ir.NewBuilder(m, mainF)
	for i := 0; i < workers; i++ {
		mb.Spawn(workF.Index, ir.ConstI(int64(i)))
	}
	mb.Join()
	acc := ir.Operand(ir.ConstI(0))
	gb := mb.GlobalAddr(0)
	for i := 0; i < workers; i++ {
		acc = mb.Bin(ir.OpAdd, acc, mb.Load(ir.I64, mb.GEP(gb, ir.ConstI(int64(i)))))
	}
	mb.CallB(ir.BuiltinEmitI, acc)
	mb.RetVoid()
	m.Finalize()
	return m
}

func TestCompiledRunFusion(t *testing.T) {
	m := chainModule()
	c := Compile(Lower(m))
	st := c.Stats()
	if st.Runs < 1 || st.RunOps < 4 {
		t.Fatalf("straight-line chain not fused into a run: %+v", st)
	}
	res := runBothEngines(t, m, Config{}, []uint64{9})
	want := int64((9+3)*5^0xff) - 9
	if int64(res.Output[0]) != want {
		t.Fatalf("output = %d, want %d", int64(res.Output[0]), want)
	}
}

func TestCompiledCmpBrFusion(t *testing.T) {
	m := loopModule(25)
	c := Compile(Lower(m))
	st := c.Stats()
	if st.CmpBr < 1 {
		t.Fatalf("loop back-edge cmp+condbr not fused: %+v", st)
	}
	res := runBothEngines(t, m, Config{}, nil)
	if int64(res.Output[0]) != 25*24/2 {
		t.Fatalf("loop sum = %d, want %d", int64(res.Output[0]), 25*24/2)
	}
}

func TestCompiledSpawnDisablesFusion(t *testing.T) {
	m := spawnDetectModule(2)
	c := Compile(Lower(m))
	st := c.Stats()
	if st.Runs != 0 || st.CmpBr != 0 || st.CmpEqDetect != 0 || st.Folds != 0 {
		t.Fatalf("spawned module must not be fused (dispatch granularity is observable): %+v", st)
	}
	if st.Words != st.ImageWords {
		t.Fatalf("spawned module code must be verbatim image code: %d words vs %d", st.Words, st.ImageWords)
	}
	runBothEngines(t, m, Config{}, nil)
}

// TestCompiledKnownBitsFold pins the constant-specialization tier: values
// the known-bits analysis proves constant fold to xConst in the fault-free
// stream, while fault-armed runs take the exact stream so an upstream flip
// still propagates through every dependent op.
func TestCompiledKnownBitsFold(t *testing.T) {
	m := ir.NewModule("fold")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	v := b.Bin(ir.OpAdd, ir.ConstI(2), ir.ConstI(3))
	w := b.Bin(ir.OpMul, v, ir.ConstI(7))
	b.CallB(ir.BuiltinEmitI, w)
	b.RetVoid()
	m.Finalize()

	c := Compile(Lower(m))
	if st := c.Stats(); st.Folds < 1 {
		t.Fatalf("provably-constant adds not folded: %+v", st)
	}
	res := runBothEngines(t, m, Config{}, nil)
	if int64(res.Output[0]) != 35 {
		t.Fatalf("folded output = %d, want 35", int64(res.Output[0]))
	}

	// Armed at the add (2+3), bit 4: result 5^16=21 must propagate through
	// the multiply on every engine — the fold would mask it, so the
	// compiled engine must select the exact stream when a fault is armed.
	var addID int
	for _, in := range m.Instrs {
		if in.Op == ir.OpAdd {
			addID = in.ID
		}
	}
	want := int64(21 * 7)
	for _, eng := range []Engine{EngineLegacy, EngineImage, EngineCompiled} {
		r := NewRunner(m, Config{Engine: eng})
		fres := r.Run(Binding{}, &Fault{InstrID: addID, DynIndex: 0, Bit: 4}, nil)
		if fres.Status != StatusOK || int64(fres.Output[0]) != want {
			t.Fatalf("%v: armed output = %d (%v), want %d", eng, int64(fres.Output[0]), fres.Status, want)
		}
	}
}

// TestFusedCmpEqDetectQuantumAccounting pins the two-step cycle
// accounting of the fused cmp-eq+detect pair (and of fused runs and
// cmp+br pairs) against the unfused legacy path: for every scheduling
// quantum and for every dynamic-instruction budget — including budgets
// that land exactly between the two halves of a fused pair — all three
// engines must agree on status, accounting, and output.
func TestFusedCmpEqDetectQuantumAccounting(t *testing.T) {
	m := detectLoopModule(4)
	if st := Compile(Lower(m)).Stats(); st.CmpEqDetect < 1 {
		t.Fatalf("cmp-eq+detect pair not fused in single-threaded module: %+v", st)
	}
	base := runBothEngines(t, m, Config{}, nil)
	if base.Status != StatusOK {
		t.Fatalf("reference run: %v (%s)", base.Status, base.Trap)
	}
	for _, quantum := range []int{1, 2, 3, 64} {
		for budget := int64(1); budget <= base.DynInstrs+1; budget++ {
			res := runBothEngines(t, m, Config{Quantum: quantum, MaxDynInstrs: budget}, nil)
			wantStatus := StatusOK
			if budget < base.DynInstrs {
				wantStatus = StatusHang
			}
			if res.Status != wantStatus {
				t.Fatalf("q=%d budget=%d: status %v, want %v", quantum, budget, res.Status, wantStatus)
			}
		}
	}
}

// TestDetectAccountingThreadCounts runs duplication-protected workers
// across thread counts and scheduling quanta: the deterministic
// round-robin schedule must yield bit-identical results on every engine
// at every configuration (fusion is disabled under spawn, and this pins
// that the disable is airtight).
func TestDetectAccountingThreadCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		m := spawnDetectModule(workers)
		want := int64(0)
		for i := 0; i < workers; i++ {
			want += int64(i*7 + 1)
		}
		for _, quantum := range []int{1, 3, 64} {
			res := runBothEngines(t, m, Config{Quantum: quantum}, nil)
			if res.Status != StatusOK {
				t.Fatalf("workers=%d q=%d: %v (%s)", workers, quantum, res.Status, res.Trap)
			}
			if int64(res.Output[0]) != want {
				t.Fatalf("workers=%d q=%d: sum = %d, want %d", workers, quantum, int64(res.Output[0]), want)
			}
		}
	}
}

// TestSetObsConcurrentFlip exercises the process-global obs hook's
// concurrency contract (see obs.go): one goroutine flips SetObs between
// two registries and detached while workers run fault-armed campaigns on
// all three engines. Run under -race this catches torn publication; the
// assertions catch any run whose *result* is perturbed by the flip, and
// the settling phase proves each run lands in exactly one registry.
func TestSetObsConcurrentFlip(t *testing.T) {
	defer SetObs(nil)
	m := loopModule(32)
	var addID int
	for _, in := range m.Instrs {
		if in.Op == ir.OpAdd {
			addID = in.ID // last add: the i+1 increment
		}
	}
	site := &Fault{InstrID: addID, DynIndex: 5, Bit: 1}
	golden := NewRunner(m, Config{Engine: EngineLegacy}).Run(Binding{}, &Fault{InstrID: site.InstrID, DynIndex: site.DynIndex, Bit: site.Bit}, nil)

	regs := [2]*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	stop := make(chan struct{})
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				SetObs(regs[0])
			case 1:
				SetObs(nil)
			default:
				SetObs(regs[1])
			}
		}
	}()

	engines := []Engine{EngineLegacy, EngineImage, EngineCompiled}
	const workers, runsPer = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < runsPer; i++ {
				eng := engines[(w+i)%len(engines)]
				f := *site
				res := NewRunner(m, Config{Engine: eng}).Run(Binding{}, &f, nil)
				if res.Status != golden.Status || res.OutputHash != golden.OutputHash ||
					res.DynInstrs != golden.DynInstrs || res.Cycles != golden.Cycles {
					t.Errorf("%v: concurrent obs flip perturbed a run: %+v vs golden %+v", eng, res, golden)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flipper.Wait()

	// Every recorded run landed in exactly one registry (some ran detached).
	total := regs[0].Counter("interp.runs").Value() + regs[1].Counter("interp.runs").Value()
	if total > workers*runsPer {
		t.Fatalf("double-counted runs: %d recorded > %d executed", total, workers*runsPer)
	}

	// Settled: the compiled tier must consult the same hook, one increment
	// per run, on both the total and the per-engine counter.
	settled := obs.NewRegistry()
	SetObs(settled)
	for i := 0; i < 3; i++ {
		f := *site
		NewRunner(m, Config{Engine: EngineCompiled}).Run(Binding{}, &f, nil)
	}
	if n := settled.Counter("interp.runs").Value(); n != 3 {
		t.Fatalf("settled registry saw %d runs, want 3", n)
	}
	if n := settled.Counter("interp.runs.compiled").Value(); n != 3 {
		t.Fatalf("settled registry saw %d compiled runs, want 3", n)
	}
}
