package interp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/ir"
)

// This file implements the lowering layer of the execution engine: it
// decodes an ir.Module once into a flat, dense program image that the
// specialized run loops in engine.go execute without any per-step operand
// kind switches, map hashing, or feature checks.
//
// The lowering performs:
//   - operand specialization: every operand becomes an index into the
//     frame's register file; constants are folded into a per-function
//     constant pool that occupies the slots above NumRegs and is copied
//     in with one memcpy at frame entry;
//   - branch resolution: branch targets become code offsets, and every
//     static CFG edge gets a precompiled "edge program" that performs the
//     target block's phi moves (parallel-assignment semantics) with the
//     incoming values already resolved to slots;
//   - comparison specialization: icmp/fcmp predicates are folded into the
//     opcode, and a detector check that immediately follows its icmp-eq
//     (the shape emitted by the SID duplication transform) is fused into
//     a single image opcode;
//   - static precomputation: instruction IDs, modeled cycles, flip widths,
//     and the dense CSR edge numbering are all baked into the image.
//
// Decoding never changes semantics: the image engine is bit-identical to
// the reference stepper in interp.go (enforced by the differential tests),
// including trap messages, dynamic instruction accounting, hang-budget
// boundaries, fault-injection site numbering, and — because a lone leading
// phi occupies its own interpreter step in the reference engine — the
// round-robin thread schedule.

// xop is a specialized image opcode.
type xop uint8

const (
	xAdd xop = iota
	xSub
	xMul
	xDiv
	xRem
	xAnd
	xOr
	xXor
	xShl
	xShr
	xFAdd
	xFSub
	xFMul
	xFDiv

	// Comparisons with the predicate folded into the opcode. The xICmp
	// and xFCmp groups must each stay in ir.Pred order (EQ NE LT LE GT GE).
	xICmpEQ
	xICmpNE
	xICmpLT
	xICmpLE
	xICmpGT
	xICmpGE
	xFCmpEQ
	xFCmpNE
	xFCmpLT
	xFCmpLE
	xFCmpGT
	xFCmpGE

	xIToF
	xFToI

	xAlloca
	xLoad
	xStore
	xGEP
	xGlobalAddr
	xArrayLen

	xBr
	xCondBr
	xRet     // returns the value in slot a
	xRetVoid // returns no value

	// xEntryPhi is a member of an entry-block phi group (>= 2 leading
	// phis of block 0), pre-resolved against predecessor 0 and executed
	// sequentially on function entry, like the reference stepper.
	xEntryPhi
	// xLonePhi is a block's single leading phi. It executes as its own
	// step; the incoming slot was resolved by the edge program (or frame
	// entry) into frame.phiSrc.
	xLonePhi

	xCall
	xSelect
	xSpawn
	xJoin
	xDetect

	// Builtins, one opcode each (no BFunc dispatch at run time).
	xEmit
	xSqrt
	xFabs
	xExp
	xLog
	xSin
	xCos
	xPow
	xFloor
	xIAbs

	// xCmpEqDetect is the fused duplication check: icmp eq a, b into dst,
	// immediately followed by detect dst. It accounts as two dynamic
	// instructions (ids id/id2, cycles cyc/cyc2) exactly like the unfused
	// pair.
	xCmpEqDetect

	// xTrapOp halts with a decode-time-known trap message (traps[a]) after
	// performing the instruction's normal dynamic accounting, matching the
	// reference stepper's behavior for unimplemented opcodes.
	xTrapOp
)

// iword is one decoded instruction. All slot fields index the frame's
// register file (registers first, then the constant pool).
type iword struct {
	op    xop
	tbits uint8 // fault-flip width of the result (1 or 64)
	bfn   uint8 // builtin index (diagnostics only; dispatch is by op)
	cyc   int16 // modeled cycles
	cyc2  int16 // fused detect: cycles of the detect half
	dst   int32 // destination slot (-1: none)
	a     int32 // operand slot or payload (see opcode)
	b     int32 // operand slot or payload
	c     int32 // operand slot or payload / call-has-result flag
	id    int32 // static instruction ID
	id2   int32 // fused detect: detect's ID; call/spawn: callee index
	ex0   int32 // br/condbr: edge number of the (first) target, -1 = invalid
	ex1   int32 // condbr: edge number of the else target, -1 = invalid
}

// phiMove is one phi assignment of an edge program. src < 0 marks a phi
// with no incoming value for this edge.
type phiMove struct {
	dst, src int32
	id       int32
	cyc      int16
	tbits    uint8
}

// edgeProg is the precompiled transfer along one static CFG edge: where
// to resume, which global block was entered (for profiling), and the phi
// moves to perform with parallel-assignment semantics.
type edgeProg struct {
	target   int32 // code offset where execution resumes in the target block
	dstBlock int32 // global block index of the target
	moves    []phiMove
	lone     bool // target has exactly one leading phi: stash moves[0].src in frame.phiSrc
	trap     bool // a phi group (>=2) is missing an incoming value: trap before accounting
	// direct marks a move group whose destinations don't overlap its
	// sources: parallel-assignment semantics then coincide with sequential
	// writes, so executors may skip the snapshot buffer.
	direct bool
}

// ifunc is one decoded function.
type ifunc struct {
	fn          *ir.Function
	code        []iword
	consts      []uint64 // constant pool, loaded into slots [nRegs, nSlots)
	nRegs       int
	nSlots      int
	entryBlock  int32 // global block index of block 0
	entryPhiSrc int32 // lone entry phi: incoming slot for predecessor 0 (-1: none)

	// Block layout, recorded for the compile tier (compile.go): block bi's
	// words occupy code[blockOff[bi]:blockOff[bi+1]] (len nBlocks+1), and
	// edgeEntry[bi] is the offset where a branch edge resumes in bi (after
	// an entry-block phi group, at a lone leading phi otherwise).
	blockOff  []int32
	edgeEntry []int32
}

// Image is a fully decoded module.
type Image struct {
	mod     *ir.Module
	version uint64
	funcs   []*ifunc
	edges   *EdgeIndex
	// edgeProgs is indexed by the dense edge number of edges.
	edgeProgs []edgeProg
	argPool   []int32
	traps     []string
	maxArgs   int // widest callee parameter list
	maxPhi    int // largest leading phi group
	hasSpawn  bool
	// legacyOnly marks a module the decoder cannot faithfully lower
	// (malformed operands, mid-block phis, value ops without a result
	// register). The Runner silently falls back to the reference stepper,
	// which defines the semantics of such modules.
	legacyOnly bool
}

// Edges returns the image's static CFG edge table.
func (img *Image) Edges() *EdgeIndex { return img.edges }

// LegacyOnly reports whether the decoder bailed out and execution will use
// the reference stepper.
func (img *Image) LegacyOnly() bool { return img.legacyOnly }

// Lower decodes m (which must be finalized) into a program image.
func Lower(m *ir.Module) *Image {
	img := &Image{mod: m, version: m.Version(), edges: NewEdgeIndex(m)}
	img.edgeProgs = make([]edgeProg, img.edges.NumEdges())
	for _, f := range m.Funcs {
		if len(f.Params) > img.maxArgs {
			img.maxArgs = len(f.Params)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpSpawn {
					img.hasSpawn = true
				}
			}
		}
	}
	for _, f := range m.Funcs {
		img.funcs = append(img.funcs, img.decodeFunc(f))
		if img.legacyOnly {
			return img
		}
	}
	return img
}

// trapIndex interns a trap message and returns its table index.
func (img *Image) trapIndex(msg string) int32 {
	for i, t := range img.traps {
		if t == msg {
			return int32(i)
		}
	}
	img.traps = append(img.traps, msg)
	return int32(len(img.traps) - 1)
}

// decodeFunc lowers one function.
func (img *Image) decodeFunc(f *ir.Function) *ifunc {
	ifn := &ifunc{
		fn:          f,
		nRegs:       f.NumRegs,
		entryBlock:  int32(img.mod.GlobalBlockIndex(f.Index, 0)),
		entryPhiSrc: -1,
	}
	constSlot := make(map[uint64]int32)
	intern := func(w uint64) int32 {
		s, ok := constSlot[w]
		if !ok {
			s = int32(f.NumRegs + len(ifn.consts))
			constSlot[w] = s
			ifn.consts = append(ifn.consts, w)
		}
		return s
	}
	slotOf := func(o ir.Operand) int32 {
		switch o.Kind {
		case ir.OperReg:
			if o.Reg < 0 || o.Reg >= f.NumRegs {
				img.legacyOnly = true
				return 0
			}
			return int32(o.Reg)
		case ir.OperConst:
			return intern(uint64(o.Imm))
		case ir.OperConstF:
			return intern(math.Float64bits(o.FImm))
		default:
			img.legacyOnly = true
			return 0
		}
	}
	// phiSrcFor resolves the incoming slot of phi ph for predecessor pred,
	// or -1 when the phi lists no such predecessor.
	phiSrcFor := func(ph *ir.Instr, pred int) int32 {
		for i, pb := range ph.Succs {
			if pb == pred {
				return slotOf(ph.Args[i])
			}
		}
		return -1
	}

	// leadPhi[b] is the length of block b's leading phi run; a phi outside
	// the leading run cannot be lowered (it would need per-instruction
	// dynamic predecessor tracking) and forces the legacy fallback, as does
	// a phi without a destination register.
	leadPhi := make([]int, len(f.Blocks))
	for bi, blk := range f.Blocks {
		n := 0
		for n < len(blk.Instrs) && blk.Instrs[n].Op == ir.OpPhi {
			if blk.Instrs[n].Dst < 0 {
				img.legacyOnly = true
			}
			n++
		}
		leadPhi[bi] = n
		if n > img.maxPhi {
			img.maxPhi = n
		}
		for _, in := range blk.Instrs[n:] {
			if in.Op == ir.OpPhi {
				img.legacyOnly = true
			}
		}
	}
	if img.legacyOnly {
		return ifn
	}

	// Emit the code. A lone leading phi is emitted as an xLonePhi word at
	// the block's edge-entry offset: it runs as its own step (matching the
	// reference stepper's schedule), reading the slot the incoming edge
	// program stashed in the frame. An entry-block group of >= 2 phis is
	// emitted as sequential xEntryPhi words resolved against predecessor 0
	// (function entry only; branch edges land after them and perform the
	// group as a parallel edge program). Other leading phi groups are not
	// emitted at all — the edge programs do the work.
	edgeEntry := make([]int32, len(f.Blocks))
	emit := func(w iword) { ifn.code = append(ifn.code, w) }
	for bi, blk := range f.Blocks {
		ifn.blockOff = append(ifn.blockOff, int32(len(ifn.code)))
		n := leadPhi[bi]
		switch {
		case n == 1:
			ph := blk.Instrs[0]
			edgeEntry[bi] = int32(len(ifn.code))
			emit(iword{op: xLonePhi, tbits: uint8(ph.Type.Bits()), cyc: int16(ph.Op.Cycles()),
				dst: int32(ph.Dst), a: -1, id: int32(ph.ID), ex0: -1, ex1: -1})
			if bi == 0 {
				ifn.entryPhiSrc = phiSrcFor(ph, 0)
			}
		case n >= 2 && bi == 0:
			for _, ph := range blk.Instrs[:n] {
				emit(iword{op: xEntryPhi, tbits: uint8(ph.Type.Bits()), cyc: int16(ph.Op.Cycles()),
					dst: int32(ph.Dst), a: phiSrcFor(ph, 0), id: int32(ph.ID), ex0: -1, ex1: -1})
			}
			edgeEntry[bi] = int32(len(ifn.code))
		default:
			edgeEntry[bi] = int32(len(ifn.code))
		}
		for _, in := range blk.Instrs[n:] {
			img.emitInstr(ifn, f, bi, in, slotOf, emit)
			if img.legacyOnly {
				return ifn
			}
		}
	}
	ifn.blockOff = append(ifn.blockOff, int32(len(ifn.code)))
	ifn.edgeEntry = edgeEntry

	// Build the edge programs now that the offsets are known.
	for bi, blk := range f.Blocks {
		t := blk.Terminator()
		if t == nil || (t.Op != ir.OpBr && t.Op != ir.OpCondBr) {
			continue
		}
		from := img.mod.GlobalBlockIndex(f.Index, bi)
		for _, s := range t.Succs {
			if s < 0 || s >= len(f.Blocks) {
				continue
			}
			eid := img.edges.Lookup(from, img.mod.GlobalBlockIndex(f.Index, s))
			ep := &img.edgeProgs[eid]
			*ep = edgeProg{
				target:   edgeEntry[s],
				dstBlock: int32(img.mod.GlobalBlockIndex(f.Index, s)),
				lone:     leadPhi[s] == 1,
			}
			grouped := leadPhi[s] >= 2
			for _, ph := range f.Blocks[s].Instrs[:leadPhi[s]] {
				src := phiSrcFor(ph, bi)
				if src < 0 && grouped {
					// The reference stepper gathers a phi group before any
					// accounting and traps at the first missing value.
					ep.trap = true
					ep.moves = nil
					break
				}
				ep.moves = append(ep.moves, phiMove{
					dst: int32(ph.Dst), src: src, id: int32(ph.ID),
					cyc: int16(ph.Op.Cycles()), tbits: uint8(ph.Type.Bits()),
				})
			}
			if !ep.trap && !ep.lone {
				ep.direct = true
				for _, mv := range ep.moves {
					for _, other := range ep.moves {
						if mv.dst == other.src {
							ep.direct = false
						}
					}
				}
			}
		}
	}

	ifn.nSlots = f.NumRegs + len(ifn.consts)
	return ifn
}

// emitInstr lowers one non-phi instruction.
func (img *Image) emitInstr(ifn *ifunc, f *ir.Function, bi int, in *ir.Instr,
	slotOf func(ir.Operand) int32, emit func(iword)) {

	w := iword{
		tbits: uint8(in.Type.Bits()),
		cyc:   int16(in.Op.Cycles()),
		dst:   int32(in.Dst),
		id:    int32(in.ID),
		ex0:   -1, ex1: -1,
	}

	// Value-producing opcodes write regs[dst] unconditionally in the run
	// loops, so a missing destination register (malformed IR the reference
	// stepper tolerates by discarding the result) forces the fallback.
	bin := func(op xop) {
		if in.Dst < 0 {
			img.legacyOnly = true
			return
		}
		w.op, w.a, w.b = op, slotOf(in.Args[0]), slotOf(in.Args[1])
		emit(w)
	}
	un := func(op xop) {
		if in.Dst < 0 {
			img.legacyOnly = true
			return
		}
		w.op, w.a = op, slotOf(in.Args[0])
		emit(w)
	}

	// edgeRef resolves a branch successor to its dense edge number, or -1
	// for an invalid target (runtime trap, like the reference stepper).
	edgeRef := func(s int) int32 {
		if s < 0 || s >= len(f.Blocks) {
			return -1
		}
		return int32(img.edges.Lookup(img.mod.GlobalBlockIndex(f.Index, bi), img.mod.GlobalBlockIndex(f.Index, s)))
	}

	switch in.Op {
	case ir.OpAdd:
		bin(xAdd)
	case ir.OpSub:
		bin(xSub)
	case ir.OpMul:
		bin(xMul)
	case ir.OpDiv:
		bin(xDiv)
	case ir.OpRem:
		bin(xRem)
	case ir.OpAnd:
		bin(xAnd)
	case ir.OpOr:
		bin(xOr)
	case ir.OpXor:
		bin(xXor)
	case ir.OpShl:
		bin(xShl)
	case ir.OpShr:
		bin(xShr)
	case ir.OpFAdd:
		bin(xFAdd)
	case ir.OpFSub:
		bin(xFSub)
	case ir.OpFMul:
		bin(xFMul)
	case ir.OpFDiv:
		bin(xFDiv)
	case ir.OpICmp:
		if in.Pred > ir.PredGE {
			img.legacyOnly = true
			return
		}
		bin(xICmpEQ + xop(in.Pred))
	case ir.OpFCmp:
		if in.Pred > ir.PredGE {
			img.legacyOnly = true
			return
		}
		bin(xFCmpEQ + xop(in.Pred))
	case ir.OpIToF:
		un(xIToF)
	case ir.OpFToI:
		un(xFToI)
	case ir.OpAlloca:
		un(xAlloca)
	case ir.OpLoad:
		un(xLoad)
	case ir.OpStore:
		w.op, w.a, w.b = xStore, slotOf(in.Args[0]), slotOf(in.Args[1]) // a = value, b = pointer
		emit(w)
	case ir.OpGEP:
		bin(xGEP)
	case ir.OpGlobalAddr:
		if in.Dst < 0 {
			img.legacyOnly = true
			return
		}
		w.op, w.a = xGlobalAddr, int32(in.Global)
		emit(w)
	case ir.OpArrayLen:
		if in.Dst < 0 {
			img.legacyOnly = true
			return
		}
		w.op, w.a = xArrayLen, int32(in.Global)
		emit(w)
	case ir.OpBr:
		w.op, w.ex0 = xBr, edgeRef(in.Succs[0])
		emit(w)
	case ir.OpCondBr:
		w.op, w.a = xCondBr, slotOf(in.Args[0])
		w.ex0, w.ex1 = edgeRef(in.Succs[0]), edgeRef(in.Succs[1])
		emit(w)
	case ir.OpRet:
		if len(in.Args) == 1 {
			w.op, w.a = xRet, slotOf(in.Args[0])
		} else {
			w.op, w.a = xRetVoid, -1
		}
		emit(w)
	case ir.OpCall, ir.OpSpawn:
		w.op = xCall
		if in.Op == ir.OpSpawn {
			w.op = xSpawn
		}
		if n := len(in.Args); n > img.maxArgs {
			img.maxArgs = n // arg staging must fit even malformed arg lists
		}
		w.a = int32(len(img.argPool))
		w.b = int32(len(in.Args))
		for _, a := range in.Args {
			img.argPool = append(img.argPool, slotOf(a))
		}
		w.id2 = int32(in.Callee)
		if in.HasResult() {
			w.c = 1
		}
		emit(w)
	case ir.OpCallB:
		w.bfn = uint8(in.BFunc)
		switch in.BFunc {
		case ir.BuiltinEmitI, ir.BuiltinEmitF:
			w.op, w.a = xEmit, slotOf(in.Args[0])
			emit(w)
		case ir.BuiltinSqrt:
			un(xSqrt)
		case ir.BuiltinFabs:
			un(xFabs)
		case ir.BuiltinExp:
			un(xExp)
		case ir.BuiltinLog:
			un(xLog)
		case ir.BuiltinSin:
			un(xSin)
		case ir.BuiltinCos:
			un(xCos)
		case ir.BuiltinPow:
			bin(xPow)
		case ir.BuiltinFloor:
			un(xFloor)
		case ir.BuiltinIAbs:
			un(xIAbs)
		default:
			w.op, w.a = xTrapOp, img.trapIndex(fmt.Sprintf("unknown builtin %d", in.BFunc))
			emit(w)
		}
	case ir.OpSelect:
		if in.Dst < 0 {
			img.legacyOnly = true
			return
		}
		w.op = xSelect
		w.a, w.b, w.c = slotOf(in.Args[0]), slotOf(in.Args[1]), slotOf(in.Args[2])
		emit(w)
	case ir.OpJoin:
		w.op = xJoin
		emit(w)
	case ir.OpDetect:
		// Fuse with an immediately preceding icmp-eq into the checked value
		// (the duplication-transform shape). Fusion executes both halves in
		// one dispatch, so it is restricted to modules without spawn: with
		// simulated threads the two-step quantum accounting of the unfused
		// pair is observable through the round-robin schedule.
		if !img.hasSpawn && len(ifn.code) > 0 && in.Args[0].Kind == ir.OperReg {
			if prevIn := prevInBlock(f, bi, in); prevIn != nil &&
				prevIn.Op == ir.OpICmp && prevIn.Pred == ir.PredEQ {
				prev := &ifn.code[len(ifn.code)-1]
				if prev.op == xICmpEQ && prev.id == int32(prevIn.ID) && prev.dst == int32(in.Args[0].Reg) {
					prev.op = xCmpEqDetect
					prev.id2 = int32(in.ID)
					prev.cyc2 = int16(in.Op.Cycles())
					return
				}
			}
		}
		w.op, w.a = xDetect, slotOf(in.Args[0])
		emit(w)
	default:
		w.op, w.a = xTrapOp, img.trapIndex(fmt.Sprintf("unimplemented opcode %s", in.Op))
		emit(w)
	}
}

// prevInBlock returns the instruction immediately before in within its
// block, or nil if in is the block's first instruction.
func prevInBlock(f *ir.Function, bi int, in *ir.Instr) *ir.Instr {
	blk := f.Blocks[bi]
	for i, x := range blk.Instrs {
		if x == in {
			if i == 0 {
				return nil
			}
			return blk.Instrs[i-1]
		}
	}
	return nil
}

// imageCacheCap bounds the decoded-image cache. Images are shared by all
// Runners of a module (campaign workers, golden runs, harness phases), so
// a modest cap covers every live module of a process.
const imageCacheCap = 128

var imgCache = struct {
	sync.Mutex
	m     map[imageCacheKey]*Image
	order []imageCacheKey // FIFO eviction order
}{m: make(map[imageCacheKey]*Image)}

type imageCacheKey struct {
	mod     *ir.Module
	version uint64
}

// imageOf returns the (process-wide, cached) decoded image of m. Decoding
// is deterministic, so concurrent callers share the result; the cache is
// keyed by (module pointer, finalize version) so a re-finalized module is
// re-lowered instead of served stale code.
func imageOf(m *ir.Module) *Image {
	key := imageCacheKey{mod: m, version: m.Version()}
	imgCache.Lock()
	defer imgCache.Unlock()
	if img, ok := imgCache.m[key]; ok {
		return img
	}
	img := Lower(m)
	imgCache.m[key] = img
	imgCache.order = append(imgCache.order, key)
	if len(imgCache.order) > imageCacheCap {
		old := imgCache.order[0]
		imgCache.order = imgCache.order[1:]
		delete(imgCache.m, old)
	}
	return img
}
