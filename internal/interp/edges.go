package interp

import (
	"sort"

	"repro/internal/ir"
)

// EdgeIndex is the static control-flow edge table of a module in CSR
// (compressed sparse row) form: for every global basic-block index the
// sorted list of successor blocks reachable through a branch terminator.
// Edges are numbered densely in (from, to) order; the profiler counts
// edge executions in a plain slice indexed by that number instead of
// hashing [2]int keys into a map on every branch.
type EdgeIndex struct {
	rowStart []int32 // len NumBlocks+1; edges of block b are [rowStart[b], rowStart[b+1])
	to       []int32 // global block index of each edge's target
}

// NewEdgeIndex builds the edge table of m (which must be finalized). The
// construction is deterministic: two calls on the same module snapshot
// produce identical numbering, so an index built independently by a
// profile and by a decoded program image agree edge-for-edge.
func NewEdgeIndex(m *ir.Module) *EdgeIndex {
	n := m.NumBlocks()
	succs := make([][]int32, n)
	for fi, f := range m.Funcs {
		for bi, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || (t.Op != ir.OpBr && t.Op != ir.OpCondBr) {
				continue
			}
			from := m.GlobalBlockIndex(fi, bi)
			for _, s := range t.Succs {
				if s < 0 || s >= len(f.Blocks) {
					continue // undecodable target: traps before any edge is recorded
				}
				succs[from] = append(succs[from], int32(m.GlobalBlockIndex(fi, s)))
			}
		}
	}
	e := &EdgeIndex{rowStart: make([]int32, n+1)}
	for b := 0; b < n; b++ {
		row := succs[b]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		// Dedup (a condbr with both arms on one block contributes one edge).
		var w int
		for i, t := range row {
			if i == 0 || t != row[i-1] {
				row[w] = t
				w++
			}
		}
		e.rowStart[b] = int32(len(e.to))
		e.to = append(e.to, row[:w]...)
	}
	e.rowStart[n] = int32(len(e.to))
	return e
}

// NumEdges returns the number of static edges.
func (e *EdgeIndex) NumEdges() int { return len(e.to) }

// Lookup returns the dense edge number of (from, to) in global block
// indices, or -1 if the static CFG has no such edge.
func (e *EdgeIndex) Lookup(from, to int) int {
	if from < 0 || from >= len(e.rowStart)-1 {
		return -1
	}
	lo, hi := e.rowStart[from], e.rowStart[from+1]
	for i := lo; i < hi; i++ { // rows hold at most two entries; scan beats search
		if e.to[i] == int32(to) {
			return int(i)
		}
	}
	return -1
}

// Edge returns the (from, to) global block pair of edge i.
func (e *EdgeIndex) Edge(i int) (from, to int) {
	to = int(e.to[i])
	// Invert rowStart: find the row owning position i.
	lo, hi := 0, len(e.rowStart)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(e.rowStart[mid]) <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, to
}
