// Package interp executes ir.Module programs. It is the repository's
// stand-in for native execution in the original study: it runs the program,
// observes its output, accounts dynamic instructions and modeled cycles,
// profiles control-flow edges for the weighted CFG, and optionally injects
// a single-bit fault into the return value of one dynamic instruction —
// exactly the LLFI fault model.
//
// Execution is fully deterministic, including the round-robin scheduling of
// simulated threads, so fault-injection campaigns are reproducible.
package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Status classifies the outcome of one program execution.
type Status uint8

// Execution outcomes. These are the raw machine-level outcomes; package
// fault maps them (plus an output comparison) to Benign/SDC/etc.
const (
	StatusOK       Status = iota // ran to completion
	StatusCrash                  // trapped (memory fault, div-by-zero, ...)
	StatusHang                   // exceeded the dynamic-instruction budget
	StatusDetected               // a duplication check fired (OpDetect)
)

// String returns the outcome name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCrash:
		return "crash"
	case StatusHang:
		return "hang"
	case StatusDetected:
		return "detected"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// FaultOp selects how a fault perturbs the target value. The zero value
// is the XOR flip of the original single-bit model, so existing Fault
// literals keep their meaning.
type FaultOp uint8

const (
	// FaultXor flips bits: the single bit Bit, or the whole Mask when
	// Mask is nonzero (the classic transient-flip models).
	FaultXor FaultOp = iota
	// FaultStuckAt0 clears the Mask bits (a defective cell reading 0).
	FaultStuckAt0
	// FaultStuckAt1 sets the Mask bits (a defective cell reading 1).
	FaultStuckAt1
)

// String returns the operation name.
func (o FaultOp) String() string {
	switch o {
	case FaultStuckAt0:
		return "stuck-at-0"
	case FaultStuckAt1:
		return "stuck-at-1"
	default:
		return "xor"
	}
}

// Fault requests a perturbation of the return value of the DynIndex-th
// dynamic execution (0-based) of static instruction InstrID. The default
// model flips the single bit Bit; setting Mask to a nonzero value applies
// Op over the whole mask instead: FaultXor flips the mask bits (multi-bit
// faults, as studied by multi-bit resilience work the paper cites), and
// the stuck-at ops force them to 0 or 1 (hard-defect models). The mask is
// narrowed to the value width exactly as the single-bit path narrows Bit.
type Fault struct {
	InstrID  int
	DynIndex int64
	Bit      uint
	Mask     uint64  // nonzero: perturb these bits instead of Bit
	Op       FaultOp // how Mask perturbs the value (FaultXor flips)
}

// Binding supplies a program input: scalar arguments for main and the
// contents of input-bound global arrays.
type Binding struct {
	Args    []uint64            // raw words, one per main parameter
	Globals map[string][]uint64 // values for dynamically sized or overridden globals
}

// Engine selects the execution engine of a Runner.
type Engine uint8

const (
	// EngineAuto resolves to the package-level DefaultEngine.
	EngineAuto Engine = iota
	// EngineImage executes a pre-decoded program image with specialized
	// run loops (see image.go / engine.go). This is the production engine.
	EngineImage
	// EngineLegacy executes the reference tree-walking stepper below. It
	// defines the semantics; the image engine is differentially tested
	// against it.
	EngineLegacy
	// EngineCompiled executes a compiled rewrite of the program image:
	// superinstruction fusion plus direct-threaded handler-table dispatch
	// (see compile.go / dispatch.go). Bit-identical to the other engines;
	// pinned by the three-way differential suite.
	EngineCompiled
)

// DefaultEngine is the engine used when Config.Engine is EngineAuto.
// CLIs expose it via the -engine flag.
var DefaultEngine = EngineImage

// ParseEngine parses an -engine flag value ("auto", "image", "legacy",
// "compiled").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "image":
		return EngineImage, nil
	case "legacy":
		return EngineLegacy, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return EngineAuto, fmt.Errorf("unknown engine %q (want auto, image, legacy, or compiled)", s)
}

// String returns the flag spelling of e.
func (e Engine) String() string {
	switch e {
	case EngineImage:
		return "image"
	case EngineLegacy:
		return "legacy"
	case EngineCompiled:
		return "compiled"
	default:
		return "auto"
	}
}

// Config bounds an execution.
type Config struct {
	// MaxDynInstrs is the hang budget. Zero selects DefaultMaxDynInstrs.
	MaxDynInstrs int64
	// StackWords is the per-thread stack size in words. Zero selects a default.
	StackWords int
	// MaxOutputWords caps the output buffer (a fault can redirect a loop
	// into emitting unboundedly). Zero selects a default.
	MaxOutputWords int
	// MaxCallDepth bounds recursion. Zero selects a default.
	MaxCallDepth int
	// Quantum is the thread-scheduling quantum in instructions. Zero
	// selects a default.
	Quantum int
	// MaxThreads bounds simultaneously live simulated threads. A fault
	// that corrupts a spawn loop would otherwise allocate stacks without
	// bound. Zero selects a default.
	MaxThreads int
	// Engine selects the execution engine. The zero value (EngineAuto)
	// defers to the package-level DefaultEngine. Config stays comparable,
	// so caches keyed on it keep working.
	Engine Engine
}

// Defaults for Config fields.
const (
	DefaultMaxDynInstrs   = int64(200_000_000)
	DefaultStackWords     = 1 << 12
	DefaultMaxOutputWords = 1 << 16
	DefaultMaxCallDepth   = 256
	DefaultQuantum        = 64
	DefaultMaxThreads     = 64
)

func (c Config) withDefaults() Config {
	if c.MaxDynInstrs == 0 {
		c.MaxDynInstrs = DefaultMaxDynInstrs
	}
	if c.StackWords == 0 {
		c.StackWords = DefaultStackWords
	}
	if c.MaxOutputWords == 0 {
		c.MaxOutputWords = DefaultMaxOutputWords
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = DefaultMaxCallDepth
	}
	if c.Quantum == 0 {
		c.Quantum = DefaultQuantum
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = DefaultMaxThreads
	}
	return c
}

// Result reports one execution.
type Result struct {
	Status    Status
	Trap      string   // human-readable trap reason when Status == StatusCrash
	Output    []uint64 // the program's emitted words
	DynInstrs int64    // dynamic instructions executed
	Cycles    int64    // modeled cycles
	// OutputHash is an FNV-1a 64 hash over Output. Two runs of the same
	// module have equal outputs iff the hashes match is NOT guaranteed
	// (hashes can collide), but unequal hashes prove unequal outputs, so
	// campaigns use it as a fast reject before the exact word compare.
	OutputHash uint64
}

// hashWords computes the FNV-1a 64 hash of a word slice.
func hashWords(words []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range words {
		for i := 0; i < 64; i += 8 {
			h ^= (w >> i) & 0xff
			h *= prime64
		}
	}
	return h
}

// Profile accumulates dynamic execution statistics when attached to a run.
// Slices are indexed by module-wide instruction / basic-block IDs. Edge
// executions are counted in a dense slice indexed by the static CSR edge
// table (see EdgeIndex) instead of a map keyed by block pairs.
type Profile struct {
	InstrCount  []int64 // dynamic executions per static instruction
	InstrCycles []int64 // modeled cycles per static instruction
	BlockCount  []int64 // executions per global basic block

	// Edges is the static edge numbering; EdgeHits[i] counts executions of
	// Edges.Edge(i). The numbering is deterministic, so an index built here
	// and one built by the program image agree.
	Edges    *EdgeIndex
	EdgeHits []int64

	// extra catches edges outside the static table (only reachable if a
	// caller mutates the module between NewProfile and Run; stays nil in
	// normal operation).
	extra map[[2]int]int64
}

// NewProfile returns a Profile sized for m.
func NewProfile(m *ir.Module) *Profile {
	e := NewEdgeIndex(m)
	return &Profile{
		InstrCount:  make([]int64, m.NumInstrs()),
		InstrCycles: make([]int64, m.NumInstrs()),
		BlockCount:  make([]int64, m.NumBlocks()),
		Edges:       e,
		EdgeHits:    make([]int64, e.NumEdges()),
	}
}

// addEdge counts one execution of the edge (from, to) in global block
// indices. The legacy stepper calls this on every branch; the image engine
// increments EdgeHits directly by precomputed edge number.
func (p *Profile) addEdge(from, to int) {
	if i := p.Edges.Lookup(from, to); i >= 0 {
		p.EdgeHits[i]++
		return
	}
	if p.extra == nil {
		p.extra = make(map[[2]int]int64)
	}
	p.extra[[2]int{from, to}]++
}

// EdgeCount returns the execution count of edge (from, to) in global block
// indices.
func (p *Profile) EdgeCount(from, to int) int64 {
	if i := p.Edges.Lookup(from, to); i >= 0 {
		return p.EdgeHits[i]
	}
	return p.extra[[2]int{from, to}]
}

// EdgeCountMap materializes the edge counters as the map view the profile
// historically exposed. Hot paths should iterate EdgeHits instead.
func (p *Profile) EdgeCountMap() map[[2]int]int64 {
	m := make(map[[2]int]int64, len(p.EdgeHits))
	for i, c := range p.EdgeHits {
		if c == 0 {
			continue
		}
		from, to := p.Edges.Edge(i)
		m[[2]int{from, to}] = c
	}
	for e, c := range p.extra {
		m[e] += c
	}
	return m
}

// frame is one function activation. Both engines share the struct; the
// legacy stepper uses fn/block/prevBlock, the image engine uses ifn and a
// flat pc, plus precomputed return-flip metadata (callID/callTBits) so
// doReturn needs no *ir.Instr.
type frame struct {
	fn        *ir.Function
	ifn       *ifunc // image engine: decoded function (nil under legacy)
	regs      []uint64
	block     int       // legacy: current block index within fn
	prevBlock int       // legacy: predecessor block (for phi resolution)
	pc        int       // legacy: index into block; image: offset into ifn.code
	spSave    int       // thread stack pointer at entry, restored at return
	retDst    int       // caller register to receive the return value (-1: none)
	callInstr *ir.Instr // the OpCall that created this frame (nil for entry/spawn)
	callID    int32     // image: static ID of the creating call if it has a result, else -1
	callTBits uint8     // image: flip width of the call's result type
	phiSrc    int32     // image: incoming slot for a pending xLonePhi (-1: no match)

	// Compiled engine only: the compiled function, the run-mode code
	// stream (exact under a fault, specialized otherwise), and the xRun
	// constituent table matching that stream.
	cfn   *cfunc
	code  []iword
	cruns []iword
}

// thread is one simulated thread of execution.
type thread struct {
	frames    []frame
	sp        int // stack pointer (word index into machine memory)
	stackEnd  int // exclusive stack limit
	done      bool
	joining   bool // blocked in OpJoin
	callDepth int
}

// Runner executes one module repeatedly, reusing scratch memory between
// runs. A Runner is not safe for concurrent use; fault-injection campaigns
// give each worker its own Runner.
type Runner struct {
	mod *ir.Module
	cfg Config

	mem        []uint64
	globalBase []int
	globalLen  []int
	globalsEnd int

	out     []uint64
	threads []*thread

	nDyn   int64
	cycles int64

	fault     *Fault
	faultSeen int64
	faultID   int32 // fault.InstrID, pre-narrowed for the image loop

	prof   *Profile
	tracer *Tracer

	status Status
	trap   string
	halted bool

	// Image-engine state: the decoded program and per-run scratch buffers
	// (call-argument staging, phi-group staging), sized once per image.
	img        *Image
	argScratch []uint64
	phiVals    []uint64

	// Compiled-engine state: the compiled artifact (shares r.img).
	comp *Compiled

	// threadPool retains thread structs (and through them frame slices and
	// register files) across runs; threads[i] aliases threadPool[i].
	threadPool []*thread
}

// reservedLow is the unmapped "null page" at the bottom of memory; loads
// and stores there trap, mimicking a null-pointer dereference.
const reservedLow = 16

// NewRunner returns a Runner for m with configuration cfg.
func NewRunner(m *ir.Module, cfg Config) *Runner {
	return &Runner{mod: m, cfg: cfg.withDefaults()}
}

// Module returns the module this runner executes.
func (r *Runner) Module() *ir.Module { return r.mod }

// Run executes the module's main function under the given input binding.
// fault, if non-nil, injects a single-bit flip; prof, if non-nil, receives
// dynamic execution statistics.
func (r *Runner) Run(bind Binding, fault *Fault, prof *Profile) Result {
	return r.run(bind, fault, prof, true)
}

// RunScratch is Run without the defensive copy of the output buffer: the
// returned Result.Output aliases the Runner's internal buffer and is valid
// only until the next run. Campaign loops use it (they hash/compare the
// output and move on); everyone else should call Run.
func (r *Runner) RunScratch(bind Binding, fault *Fault, prof *Profile) Result {
	return r.run(bind, fault, prof, false)
}

// resolveEngine picks the engine for the next run, decoding (or re-fetching
// from the shared cache) the program image when needed. Tracing and
// modules the decoder cannot lower always use the legacy stepper, which
// defines the semantics.
func (r *Runner) resolveEngine() Engine {
	e := r.cfg.Engine
	if e == EngineAuto {
		e = DefaultEngine
	}
	if r.tracer != nil {
		return EngineLegacy
	}
	if e == EngineLegacy {
		return e
	}
	if e == EngineCompiled {
		if r.comp == nil || r.comp.img.version != r.mod.Version() {
			r.comp = compiledOf(r.mod)
			r.img = r.comp.img
			r.sizeScratch()
		}
		if r.comp.img.legacyOnly {
			return EngineLegacy
		}
		return EngineCompiled
	}
	if r.img == nil || r.img.version != r.mod.Version() {
		r.img = imageOf(r.mod)
		r.sizeScratch()
	}
	if r.img.legacyOnly {
		return EngineLegacy
	}
	return EngineImage
}

// sizeScratch sizes the per-run staging buffers for the current image.
func (r *Runner) sizeScratch() {
	if n := r.img.maxArgs; cap(r.argScratch) < n {
		r.argScratch = make([]uint64, n)
	}
	if n := r.img.maxPhi; cap(r.phiVals) < n {
		r.phiVals = make([]uint64, n)
	}
}

func (r *Runner) run(bind Binding, fault *Fault, prof *Profile, copyOut bool) Result {
	r.setup(bind)
	r.fault = fault
	r.faultSeen = 0
	r.prof = prof
	// Pin faultID to the no-match sentinel on unarmed runs: the compiled
	// engine's shared handlers compare instruction IDs against it
	// unconditionally, so a stale ID from a previous faulty run must
	// never survive into an unarmed one.
	r.faultID = -1
	if fault != nil {
		r.faultID = int32(fault.InstrID)
	}

	rc := obsCounters.Load()
	var edgeBase int64
	if rc != nil && prof != nil {
		edgeBase = edgeTotal(prof)
	}

	entry := r.mod.Entry()
	eng := r.resolveEngine()
	switch eng {
	case EngineLegacy:
		main := r.mod.Funcs[entry]
		t := r.newThread()
		r.pushFrame(t, main, bind.Args, -1)
		r.schedule(r.runQuantum)
	case EngineCompiled:
		main := r.comp.funcs[entry]
		t := r.newThread()
		r.pushCFrame(t, main, bind.Args, -1, -1, 0)
		if prof != nil {
			prof.BlockCount[main.ifn.entryBlock]++
		}
		r.schedule(r.quantumCompiled)
	default:
		main := r.img.funcs[entry]
		t := r.newThread()
		r.pushIFrame(t, main, bind.Args, -1, -1, 0)
		if prof != nil {
			prof.BlockCount[main.entryBlock]++
		}
		switch {
		case fault != nil:
			r.schedule(r.quantumFault)
		case prof != nil:
			r.schedule(r.quantumProfiled)
		default:
			r.schedule(r.quantumPlain)
		}
	}

	out := r.out
	if copyOut {
		out = append([]uint64(nil), r.out...)
	}
	res := Result{
		Status:     r.status,
		Trap:       r.trap,
		Output:     out,
		DynInstrs:  r.nDyn,
		Cycles:     r.cycles,
		OutputHash: hashWords(r.out),
	}
	if rc != nil {
		rc.recordRun(&res, eng, prof, edgeBase)
	}
	return res
}

func (r *Runner) setup(bind Binding) {
	m := r.mod
	if r.globalBase == nil {
		r.globalBase = make([]int, len(m.Globals))
		r.globalLen = make([]int, len(m.Globals))
	}
	base := reservedLow
	for i, g := range m.Globals {
		size := g.Size
		if size < 0 {
			v, ok := bind.Globals[g.Name]
			if !ok {
				panic(fmt.Sprintf("interp: no binding for dynamic global %q", g.Name))
			}
			size = len(v)
		}
		r.globalBase[i] = base
		r.globalLen[i] = size
		base += size
	}
	r.globalsEnd = base

	if cap(r.mem) < base {
		r.mem = make([]uint64, base)
	} else {
		r.mem = r.mem[:base]
		clear(r.mem)
	}
	for i, g := range m.Globals {
		dst := r.mem[r.globalBase[i] : r.globalBase[i]+r.globalLen[i]]
		if v, ok := bind.Globals[g.Name]; ok {
			copy(dst, v)
		} else if g.Init != nil {
			copy(dst, g.Init)
		}
	}

	r.out = r.out[:0]
	r.threads = r.threads[:0]
	r.nDyn = 0
	r.cycles = 0
	r.status = StatusOK
	r.trap = ""
	r.halted = false
}

func (r *Runner) newThread() *thread {
	start := len(r.mem)
	if n := start + r.cfg.StackWords; cap(r.mem) >= n {
		r.mem = r.mem[:n]
		clear(r.mem[start:])
	} else {
		r.mem = append(r.mem, make([]uint64, r.cfg.StackWords)...)
	}
	var t *thread
	if len(r.threads) < len(r.threadPool) {
		t = r.threadPool[len(r.threads)]
		t.frames = t.frames[:0]
		t.done = false
		t.joining = false
		t.callDepth = 0
	} else {
		t = &thread{}
		r.threadPool = append(r.threadPool, t)
	}
	t.sp = start
	t.stackEnd = start + r.cfg.StackWords
	r.threads = append(r.threads, t)
	return t
}

// pushSlot extends t's frame stack by one, reusing the slot (and its
// register backing array) from an earlier run when available. The caller
// must overwrite every field.
func (t *thread) pushSlot() *frame {
	if len(t.frames) < cap(t.frames) {
		t.frames = t.frames[:len(t.frames)+1]
	} else {
		t.frames = append(t.frames, frame{})
	}
	return &t.frames[len(t.frames)-1]
}

// frameRegs returns fr's register file resized to n words and zeroed,
// reusing the previous backing array when it is large enough (a cleared
// reused array is indistinguishable from a fresh allocation).
func frameRegs(fr *frame, n int) []uint64 {
	if cap(fr.regs) >= n {
		fr.regs = fr.regs[:n]
		clear(fr.regs)
	} else {
		fr.regs = make([]uint64, n)
	}
	return fr.regs
}

func (r *Runner) pushFrame(t *thread, fn *ir.Function, args []uint64, retDst int) {
	r.pushFrameFor(t, fn, args, retDst, nil)
}

func (r *Runner) pushFrameFor(t *thread, fn *ir.Function, args []uint64, retDst int, call *ir.Instr) {
	fr := t.pushSlot()
	regs := frameRegs(fr, fn.NumRegs)
	copy(regs, args)
	*fr = frame{
		fn:        fn,
		regs:      regs,
		spSave:    t.sp,
		retDst:    retDst,
		callInstr: call,
		callID:    -1,
	}
	t.callDepth++
	r.noteBlockEntry(fn.Index, 0, -1)
}

// pushIFrame is the image engine's frame push: registers are cleared, the
// arguments copied in, and the constant pool loaded above the registers.
func (r *Runner) pushIFrame(t *thread, ifn *ifunc, args []uint64, retDst int, callID int32, callTBits uint8) {
	fr := t.pushSlot()
	regs := frameRegs(fr, ifn.nSlots)
	copy(regs, args)
	copy(regs[ifn.nRegs:], ifn.consts)
	*fr = frame{
		ifn:       ifn,
		regs:      regs,
		spSave:    t.sp,
		retDst:    retDst,
		callID:    callID,
		callTBits: callTBits,
		phiSrc:    ifn.entryPhiSrc,
	}
	t.callDepth++
}

// schedule runs all threads round-robin, quantum instructions at a time,
// until every thread finishes or the machine halts (trap, hang, detect).
// runQ is the engine-specific quantum executor; the scheduling policy is
// shared so both engines interleave threads identically.
func (r *Runner) schedule(runQ func(*thread, int)) {
	q := r.cfg.Quantum
	for !r.halted {
		alive := 0
		progressed := false
		for _, t := range r.threads {
			if t.done {
				continue
			}
			alive++
			if t.joining && !r.othersDone(t) {
				continue
			}
			t.joining = false
			runQ(t, q)
			progressed = true
			if r.halted {
				return
			}
		}
		if alive == 0 {
			return
		}
		if !progressed {
			// Every live thread is blocked in join: deadlock. Treat as hang.
			r.haltHang()
			return
		}
	}
}

func (r *Runner) othersDone(self *thread) bool {
	for _, t := range r.threads {
		if t != self && !t.done {
			return false
		}
	}
	return true
}

func (r *Runner) haltHang() {
	r.status = StatusHang
	r.halted = true
}

func (r *Runner) haltTrap(reason string) {
	r.status = StatusCrash
	r.trap = reason
	r.halted = true
}

func (r *Runner) haltDetected() {
	r.status = StatusDetected
	r.halted = true
}

// Trap-message formatters shared by both engines (the differential tests
// compare Result.Trap byte-for-byte).
func loadOOB(p uint64) string  { return fmt.Sprintf("load out of bounds (addr %d)", int64(p)) }
func storeOOB(p uint64) string { return fmt.Sprintf("store out of bounds (addr %d)", int64(p)) }

// runQuantum executes up to q instructions on t.
func (r *Runner) runQuantum(t *thread, q int) {
	for i := 0; i < q; i++ {
		if t.done || t.joining || r.halted {
			return
		}
		r.step(t)
	}
}

// val resolves an operand against the current frame's registers.
func val(fr *frame, o ir.Operand) uint64 {
	switch o.Kind {
	case ir.OperReg:
		return fr.regs[o.Reg]
	case ir.OperConst:
		return uint64(o.Imm)
	case ir.OperConstF:
		return math.Float64bits(o.FImm)
	default:
		panic("interp: unresolved operand")
	}
}

func asF(x uint64) float64   { return math.Float64frombits(x) }
func fromF(x float64) uint64 { return math.Float64bits(x) }

// step executes one instruction of thread t.
func (r *Runner) step(t *thread) {
	fr := &t.frames[len(t.frames)-1]
	blk := fr.fn.Blocks[fr.block]
	in := blk.Instrs[fr.pc]

	r.nDyn++
	cyc := in.Op.Cycles()
	r.cycles += cyc
	if r.prof != nil {
		r.prof.InstrCount[in.ID]++
		r.prof.InstrCycles[in.ID] += cyc
	}
	if r.nDyn > r.cfg.MaxDynInstrs {
		r.haltHang()
		return
	}
	if r.tracer != nil && (!in.HasResult() || in.Op == ir.OpCall) {
		r.tracer.note(fr.fn, in, fr.regs, 0, false)
	}

	var res uint64
	hasRes := in.HasResult()

	switch in.Op {
	case ir.OpAdd:
		res = uint64(int64(val(fr, in.Args[0])) + int64(val(fr, in.Args[1])))
	case ir.OpSub:
		res = uint64(int64(val(fr, in.Args[0])) - int64(val(fr, in.Args[1])))
	case ir.OpMul:
		res = uint64(int64(val(fr, in.Args[0])) * int64(val(fr, in.Args[1])))
	case ir.OpDiv:
		a, b := int64(val(fr, in.Args[0])), int64(val(fr, in.Args[1]))
		if b == 0 {
			r.haltTrap("integer divide by zero")
			return
		}
		if a == math.MinInt64 && b == -1 {
			r.haltTrap("integer divide overflow")
			return
		}
		res = uint64(a / b)
	case ir.OpRem:
		a, b := int64(val(fr, in.Args[0])), int64(val(fr, in.Args[1]))
		if b == 0 {
			r.haltTrap("integer remainder by zero")
			return
		}
		if a == math.MinInt64 && b == -1 {
			r.haltTrap("integer remainder overflow")
			return
		}
		res = uint64(a % b)
	case ir.OpAnd:
		res = val(fr, in.Args[0]) & val(fr, in.Args[1])
	case ir.OpOr:
		res = val(fr, in.Args[0]) | val(fr, in.Args[1])
	case ir.OpXor:
		res = val(fr, in.Args[0]) ^ val(fr, in.Args[1])
	case ir.OpShl:
		res = uint64(int64(val(fr, in.Args[0])) << (val(fr, in.Args[1]) & 63))
	case ir.OpShr:
		res = uint64(int64(val(fr, in.Args[0])) >> (val(fr, in.Args[1]) & 63))

	case ir.OpFAdd:
		res = fromF(asF(val(fr, in.Args[0])) + asF(val(fr, in.Args[1])))
	case ir.OpFSub:
		res = fromF(asF(val(fr, in.Args[0])) - asF(val(fr, in.Args[1])))
	case ir.OpFMul:
		res = fromF(asF(val(fr, in.Args[0])) * asF(val(fr, in.Args[1])))
	case ir.OpFDiv:
		res = fromF(asF(val(fr, in.Args[0])) / asF(val(fr, in.Args[1])))

	case ir.OpICmp:
		a, b := int64(val(fr, in.Args[0])), int64(val(fr, in.Args[1]))
		res = boolWord(icmp(in.Pred, a, b))
	case ir.OpFCmp:
		a, b := asF(val(fr, in.Args[0])), asF(val(fr, in.Args[1]))
		res = boolWord(fcmp(in.Pred, a, b))

	case ir.OpIToF:
		res = fromF(float64(int64(val(fr, in.Args[0]))))
	case ir.OpFToI:
		f := asF(val(fr, in.Args[0]))
		if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
			r.haltTrap("float-to-int out of range")
			return
		}
		res = uint64(int64(f))

	case ir.OpAlloca:
		n := int64(val(fr, in.Args[0]))
		if n < 0 || t.sp+int(n) > t.stackEnd {
			r.haltTrap("stack overflow")
			return
		}
		res = uint64(t.sp)
		for i := t.sp; i < t.sp+int(n); i++ {
			r.mem[i] = 0
		}
		t.sp += int(n)
	case ir.OpLoad:
		p := val(fr, in.Args[0])
		if p < reservedLow || p >= uint64(len(r.mem)) {
			r.haltTrap(loadOOB(p))
			return
		}
		res = r.mem[p]
	case ir.OpStore:
		p := val(fr, in.Args[1])
		if p < reservedLow || p >= uint64(len(r.mem)) {
			r.haltTrap(storeOOB(p))
			return
		}
		r.mem[p] = val(fr, in.Args[0])
	case ir.OpGEP:
		res = uint64(int64(val(fr, in.Args[0])) + int64(val(fr, in.Args[1])))
	case ir.OpGlobalAddr:
		res = uint64(r.globalBase[in.Global])
	case ir.OpArrayLen:
		res = uint64(r.globalLen[in.Global])

	case ir.OpBr:
		r.branch(t, fr, in.Succs[0])
		return
	case ir.OpCondBr:
		c := val(fr, in.Args[0])&1 != 0
		target := in.Succs[1]
		if c {
			target = in.Succs[0]
		}
		r.branch(t, fr, target)
		return
	case ir.OpRet:
		var rv uint64
		if len(in.Args) == 1 {
			rv = val(fr, in.Args[0])
		}
		r.doReturn(t, rv, len(in.Args) == 1)
		return
	case ir.OpPhi:
		// Phi nodes have parallel-assignment semantics: all phis at a
		// block head read their incoming values simultaneously. branch()
		// executes whole phi groups; a lone leading phi also lands here
		// (group of one), where sequential execution is equivalent.
		found := false
		for i, b := range in.Succs {
			if b == fr.prevBlock {
				res = val(fr, in.Args[i])
				found = true
				break
			}
		}
		if !found {
			r.haltTrap("phi with no matching predecessor")
			return
		}

	case ir.OpCall:
		if t.callDepth >= r.cfg.MaxCallDepth {
			r.haltTrap("call depth exceeded")
			return
		}
		callee := r.mod.Funcs[in.Callee]
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = val(fr, a)
		}
		fr.pc++ // resume after the call
		r.pushFrameFor(t, callee, args, in.Dst, in)
		return
	case ir.OpCallB:
		ok := r.builtin(t, fr, in, &res)
		if !ok {
			return
		}
	case ir.OpSelect:
		if val(fr, in.Args[0])&1 != 0 {
			res = val(fr, in.Args[1])
		} else {
			res = val(fr, in.Args[2])
		}

	case ir.OpSpawn:
		if len(r.threads) >= r.cfg.MaxThreads {
			r.haltTrap("thread limit exceeded")
			return
		}
		callee := r.mod.Funcs[in.Callee]
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = val(fr, a)
		}
		nt := r.newThread()
		// newThread may grow r.mem; frame pointers remain valid because
		// frames index memory via r.mem directly.
		r.pushFrame(nt, callee, args, -1)
		fr.pc++
		return
	case ir.OpJoin:
		fr.pc++
		if !r.othersDone(t) {
			t.joining = true
		}
		return
	case ir.OpDetect:
		if val(fr, in.Args[0])&1 == 0 {
			r.haltDetected()
			return
		}

	default:
		r.haltTrap(fmt.Sprintf("unimplemented opcode %s", in.Op))
		return
	}

	if hasRes {
		fr.regs[in.Dst] = res
		r.flip(in, fr, hasRes, res)
		if r.tracer != nil {
			r.tracer.note(fr.fn, in, fr.regs, fr.regs[in.Dst], true)
		}
	}
	fr.pc++
}

// flip applies the pending fault if this dynamic execution of in is the
// injection target.
func (r *Runner) flip(in *ir.Instr, fr *frame, hasRes bool, _ uint64) {
	if r.fault == nil || in.ID != r.fault.InstrID || !hasRes {
		return
	}
	if r.faultSeen == r.fault.DynIndex {
		mask := r.fault.Mask
		if in.Type == ir.I1 {
			mask &= 1
		}
		switch {
		case r.fault.Op == FaultStuckAt0:
			fr.regs[in.Dst] &^= mask
		case r.fault.Op == FaultStuckAt1:
			fr.regs[in.Dst] |= mask
		case r.fault.Mask != 0:
			fr.regs[in.Dst] ^= mask
		default:
			bit := r.fault.Bit % in.Type.Bits()
			fr.regs[in.Dst] ^= 1 << bit
		}
	}
	r.faultSeen++
}

// branch transfers control within the current function and executes the
// target block's leading phi group with parallel-assignment semantics:
// every phi reads its incoming value against the *pre-branch* register
// state before any phi result is written. This matters when phis at one
// block head reference each other's results (e.g. a swap produced by
// mem2reg).
func (r *Runner) branch(t *thread, fr *frame, target int) {
	if target < 0 || target >= len(fr.fn.Blocks) {
		r.haltTrap("branch to invalid block")
		return
	}
	from := fr.block
	fr.prevBlock = from
	fr.block = target
	fr.pc = 0
	r.noteBlockEntry(fr.fn.Index, target, from)

	blk := fr.fn.Blocks[target]
	nPhi := 0
	for nPhi < len(blk.Instrs) && blk.Instrs[nPhi].Op == ir.OpPhi {
		nPhi++
	}
	if nPhi < 2 {
		// Zero or one phi: the regular step path is equivalent.
		return
	}
	// Gather all incoming values first, then write, accounting each phi
	// as one executed instruction (they remain fault-injection sites).
	vals := make([]uint64, nPhi)
	for i := 0; i < nPhi; i++ {
		in := blk.Instrs[i]
		found := false
		for j, b := range in.Succs {
			if b == from {
				vals[i] = val(fr, in.Args[j])
				found = true
				break
			}
		}
		if !found {
			r.haltTrap("phi with no matching predecessor")
			return
		}
	}
	for i := 0; i < nPhi; i++ {
		in := blk.Instrs[i]
		r.nDyn++
		cyc := in.Op.Cycles()
		r.cycles += cyc
		if r.prof != nil {
			r.prof.InstrCount[in.ID]++
			r.prof.InstrCycles[in.ID] += cyc
		}
		if r.nDyn > r.cfg.MaxDynInstrs {
			r.haltHang()
			return
		}
		fr.regs[in.Dst] = vals[i]
		r.flip(in, fr, true, vals[i])
	}
	fr.pc = nPhi
	_ = t
}

func (r *Runner) noteBlockEntry(fn, block, from int) {
	if r.prof == nil {
		return
	}
	g := r.mod.GlobalBlockIndex(fn, block)
	r.prof.BlockCount[g]++
	if from >= 0 {
		r.prof.addEdge(r.mod.GlobalBlockIndex(fn, from), g)
	}
}

// doReturn pops the current frame, writing the return value into the
// caller's destination register. The write is a fault-injection site: the
// call instruction's "return value" in the LLFI sense is the value the
// caller receives.
func (r *Runner) doReturn(t *thread, rv uint64, hasVal bool) {
	fr := &t.frames[len(t.frames)-1]
	t.sp = fr.spSave
	retDst := fr.retDst
	call := fr.callInstr
	t.frames = t.frames[:len(t.frames)-1]
	t.callDepth--
	if len(t.frames) == 0 {
		t.done = true
		return
	}
	caller := &t.frames[len(t.frames)-1]
	if hasVal && retDst >= 0 {
		caller.regs[retDst] = rv
		if call != nil && call.HasResult() {
			r.flip(call, caller, true, rv)
		}
	}
}

// builtin executes an OpCallB. It returns false if the machine halted.
func (r *Runner) builtin(t *thread, fr *frame, in *ir.Instr, res *uint64) bool {
	switch in.BFunc {
	case ir.BuiltinEmitI, ir.BuiltinEmitF:
		if len(r.out) >= r.cfg.MaxOutputWords {
			r.haltTrap("output overflow")
			return false
		}
		r.out = append(r.out, val(fr, in.Args[0]))
	case ir.BuiltinSqrt:
		*res = fromF(math.Sqrt(asF(val(fr, in.Args[0]))))
	case ir.BuiltinFabs:
		*res = fromF(math.Abs(asF(val(fr, in.Args[0]))))
	case ir.BuiltinExp:
		*res = fromF(math.Exp(asF(val(fr, in.Args[0]))))
	case ir.BuiltinLog:
		*res = fromF(math.Log(asF(val(fr, in.Args[0]))))
	case ir.BuiltinSin:
		*res = fromF(math.Sin(asF(val(fr, in.Args[0]))))
	case ir.BuiltinCos:
		*res = fromF(math.Cos(asF(val(fr, in.Args[0]))))
	case ir.BuiltinPow:
		*res = fromF(math.Pow(asF(val(fr, in.Args[0])), asF(val(fr, in.Args[1]))))
	case ir.BuiltinFloor:
		*res = fromF(math.Floor(asF(val(fr, in.Args[0]))))
	case ir.BuiltinIAbs:
		v := int64(val(fr, in.Args[0]))
		if v < 0 {
			v = -v
		}
		*res = uint64(v)
	default:
		r.haltTrap(fmt.Sprintf("unknown builtin %d", in.BFunc))
		return false
	}
	_ = t
	return true
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func icmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	default:
		return a >= b
	}
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	default:
		return a >= b
	}
}
