package interp

import "math"

// This file is the execution half of the compiled tier: a direct-threaded
// dispatch loop over per-opcode handler tables of func values, indexed by
// the iword's opcode, so fused superinstructions and plain image ops share
// one dispatch mechanism. One handler table serves all run modes: profile
// updates are guarded by a nil check and fault checks compare against
// faultID, which run() pins to -1 when no fault is armed, so an unarmed
// run never matches any static instruction ID.
//
// The observable step order of the reference stepper is preserved per
// instruction: account (nDyn, cycles, profile) → hang check → execute →
// result write → fault flip → pc advance. Fast-eligible runs (runBody)
// hoist the accounting into one bulk update and skip per-op flip checks,
// which is only taken when no profile is attached, the hang budget
// provably cannot strike inside the run, and the armed fault site lies
// outside the run's static-id range; otherwise the exact per-constituent
// path runs. A trap mid-fast-path (load/store bounds) recomputes the
// exact accounting prefix before halting (flushRunPrefix), so trap-state
// observables match the reference stepper bit for bit.

// chandler executes one compiled iword and reports whether this thread's
// quantum may continue: false after any halt (trap, hang, detection),
// thread completion, or a join wait. Returning the continue bit keeps the
// dispatch loop free of per-step flag loads. Handlers advance fr.pc (or
// transfer control) themselves.
type chandler func(r *Runner, t *thread, fr *frame, in *iword) bool

// cHandlers is sized to the opcode byte's full range (not xNumOps) so the
// dispatch index needs no bounds check; unused slots stay nil and would
// fault loudly on a corrupt opcode.
var cHandlers [256]chandler

// quantumCompiled executes up to q dispatch steps on t. Fused words count
// as one dispatch step (like the image engine's xCmpEqDetect); fusion is
// disabled for spawning modules, where step granularity is observable.
func (r *Runner) quantumCompiled(t *thread, q int) {
	if t.done || t.joining || r.halted {
		return
	}
	for i := 0; i < q; i++ {
		fr := &t.frames[len(t.frames)-1]
		in := &fr.code[fr.pc]
		if !cHandlers[in.op](r, t, fr, in) {
			return
		}
	}
}

// pushCFrame is the compiled engine's frame push. The code stream is
// chosen by run mode: the exact stream when a fault is armed (known-bits
// folds are unsound under injection — a flip upstream of a folded op must
// propagate through it), the specialized stream otherwise. The mode is
// fixed for a whole run, so every frame of a run uses one stream.
func (r *Runner) pushCFrame(t *thread, cfn *cfunc, args []uint64, retDst int, callID int32, callTBits uint8) {
	fr := t.pushSlot()
	regs := frameRegs(fr, cfn.nSlots)
	copy(regs, args)
	copy(regs[cfn.ifn.nRegs:], cfn.consts)
	code, cruns := cfn.code, cfn.runs
	if r.fault == nil {
		code, cruns = cfn.spec, cfn.runsSpec
	}
	*fr = frame{
		ifn:       cfn.ifn,
		cfn:       cfn,
		code:      code,
		cruns:     cruns,
		regs:      regs,
		spSave:    t.sp,
		retDst:    retDst,
		callID:    callID,
		callTBits: callTBits,
		phiSrc:    cfn.ifn.entryPhiSrc,
	}
	t.callDepth++
}

// acct performs one instruction's dynamic accounting and hang check,
// reporting false when the machine halted.
func (r *Runner) acct(in *iword) bool {
	r.nDyn++
	cyc := int64(in.cyc)
	r.cycles += cyc
	if p := r.prof; p != nil {
		p.InstrCount[in.id]++
		p.InstrCycles[in.id] += cyc
	}
	if r.nDyn > r.cfg.MaxDynInstrs {
		r.haltHang()
		return false
	}
	return true
}

// flushRunPrefix flushes exact accounting for a trap at constituent k of
// a fast-path run: words 0..k are accounted, the trapping op included.
// Paired words count both halves — a pair can only trap at its second
// half (the load), which accounts before executing, so both halves are
// always in the prefix. Only reached on the cold trap path, so the
// prefix sum is recomputed rather than carried through the hot loop.
func (r *Runner) flushRunPrefix(ws []iword, k int) {
	cyc, n := r.cycles, int64(0)
	for j := 0; j <= k; j++ {
		cyc += int64(ws[j].cyc)
		n++
		if pairOp(ws[j].op) {
			cyc += int64(ws[j].cyc2)
			n++
		}
	}
	r.nDyn += n
	r.cycles = cyc
}

// wr writes a value result, applies a matching fault flip, and advances.
func (r *Runner) wr(fr *frame, in *iword, res uint64) {
	fr.regs[in.dst] = res
	if in.id == r.faultID {
		r.flipSlot(fr.regs, in.dst, in.tbits)
	}
	fr.pc++
}

// takeEdgeC transfers control along edge e in the compiled engine,
// mirroring takeEdgeFault with profile and fault both guarded. Returns
// the continue bit for the dispatch loop.
func (r *Runner) takeEdgeC(fr *frame, e int32) bool {
	if e < 0 {
		r.haltTrap("branch to invalid block")
		return false
	}
	ep := &r.comp.edgeProgs[e]
	p := r.prof
	if p != nil {
		p.BlockCount[ep.dstBlock]++
		p.EdgeHits[e]++
	}
	if ep.trap {
		r.haltTrap("phi with no matching predecessor")
		return false
	}
	if ep.lone {
		fr.phiSrc = ep.moves[0].src
		fr.pc = int(ep.target)
		return true
	}
	moves := ep.moves
	if len(moves) == 0 {
		fr.pc = int(ep.target)
		return true
	}
	regs := fr.regs
	fid := r.faultID
	if ep.direct && p == nil && r.nDyn+int64(len(moves)) <= r.cfg.MaxDynInstrs {
		// Non-aliasing move group off the profiled path with headroom:
		// sequential writes match parallel-assignment semantics, so the
		// snapshot buffer is skipped and accounting is one bulk update.
		cyc := r.cycles
		for i := range moves {
			mv := &moves[i]
			cyc += int64(mv.cyc)
			regs[mv.dst] = regs[mv.src]
			if mv.id == fid {
				r.flipSlot(regs, mv.dst, mv.tbits)
			}
		}
		r.nDyn += int64(len(moves))
		r.cycles = cyc
		fr.pc = int(ep.target)
		return true
	}
	vals := r.phiVals[:len(moves)]
	for i := range moves {
		vals[i] = regs[moves[i].src]
	}
	if p == nil && r.nDyn+int64(len(moves)) <= r.cfg.MaxDynInstrs {
		// Unprofiled with hang headroom: phi moves can't trap, so the
		// accounting collapses to one bulk update (same argument as hRun).
		cyc := r.cycles
		for i := range moves {
			mv := &moves[i]
			cyc += int64(mv.cyc)
			regs[mv.dst] = vals[i]
			if mv.id == fid {
				r.flipSlot(regs, mv.dst, mv.tbits)
			}
		}
		r.nDyn += int64(len(moves))
		r.cycles = cyc
		fr.pc = int(ep.target)
		return true
	}
	maxDyn := r.cfg.MaxDynInstrs
	for i := range moves {
		mv := &moves[i]
		r.nDyn++
		cyc := int64(mv.cyc)
		r.cycles += cyc
		if p != nil {
			p.InstrCount[mv.id]++
			p.InstrCycles[mv.id] += cyc
		}
		if r.nDyn > maxDyn {
			r.haltHang()
			return false
		}
		regs[mv.dst] = vals[i]
		if mv.id == fid {
			r.flipSlot(regs, mv.dst, mv.tbits)
		}
	}
	fr.pc = int(ep.target)
	return true
}

// execPure executes one pure run constituent (no trap possible) and
// returns its result. Used on the bulk-accounted fast path.
func (r *Runner) execPure(regs []uint64, w *iword) uint64 {
	switch w.op {
	case xAdd:
		return regs[w.a] + regs[w.b]
	case xSub:
		return regs[w.a] - regs[w.b]
	case xMul:
		return regs[w.a] * regs[w.b]
	case xAnd:
		return regs[w.a] & regs[w.b]
	case xOr:
		return regs[w.a] | regs[w.b]
	case xXor:
		return regs[w.a] ^ regs[w.b]
	case xShl:
		return uint64(int64(regs[w.a]) << (regs[w.b] & 63))
	case xShr:
		return uint64(int64(regs[w.a]) >> (regs[w.b] & 63))
	case xFAdd:
		return fromF(asF(regs[w.a]) + asF(regs[w.b]))
	case xFSub:
		return fromF(asF(regs[w.a]) - asF(regs[w.b]))
	case xFMul:
		return fromF(asF(regs[w.a]) * asF(regs[w.b]))
	case xFDiv:
		return fromF(asF(regs[w.a]) / asF(regs[w.b]))
	case xIToF:
		return fromF(float64(int64(regs[w.a])))
	case xGEP:
		return uint64(int64(regs[w.a]) + int64(regs[w.b]))
	case xGlobalAddr:
		return uint64(r.globalBase[w.a])
	case xArrayLen:
		return uint64(r.globalLen[w.a])
	case xSelect:
		if regs[w.a]&1 != 0 {
			return regs[w.b]
		}
		return regs[w.c]
	case xSqrt:
		return fromF(math.Sqrt(asF(regs[w.a])))
	case xFabs:
		return fromF(math.Abs(asF(regs[w.a])))
	case xExp:
		return fromF(math.Exp(asF(regs[w.a])))
	case xLog:
		return fromF(math.Log(asF(regs[w.a])))
	case xSin:
		return fromF(math.Sin(asF(regs[w.a])))
	case xCos:
		return fromF(math.Cos(asF(regs[w.a])))
	case xPow:
		return fromF(math.Pow(asF(regs[w.a]), asF(regs[w.b])))
	case xFloor:
		return fromF(math.Floor(asF(regs[w.a])))
	case xIAbs:
		v := int64(regs[w.a])
		if v < 0 {
			v = -v
		}
		return uint64(v)
	case xConst:
		return regs[w.a]
	default: // evalCmp covers all twelve comparison opcodes
		return evalCmp(w.op, regs, w.a, w.b)
	}
}

// execSVO executes one run constituent on the exact path: result write
// and fault flip included, false on halt. Trap-capable ops live here.
func (r *Runner) execSVO(fr *frame, w *iword) bool {
	regs := fr.regs
	var res uint64
	switch w.op {
	case xDiv:
		a, b := int64(regs[w.a]), int64(regs[w.b])
		if b == 0 {
			r.haltTrap("integer divide by zero")
			return false
		}
		if a == math.MinInt64 && b == -1 {
			r.haltTrap("integer divide overflow")
			return false
		}
		res = uint64(a / b)
	case xRem:
		a, b := int64(regs[w.a]), int64(regs[w.b])
		if b == 0 {
			r.haltTrap("integer remainder by zero")
			return false
		}
		if a == math.MinInt64 && b == -1 {
			r.haltTrap("integer remainder overflow")
			return false
		}
		res = uint64(a % b)
	case xFToI:
		f := asF(regs[w.a])
		if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
			r.haltTrap("float-to-int out of range")
			return false
		}
		res = uint64(int64(f))
	case xLoad:
		p := regs[w.a]
		if p < reservedLow || p >= uint64(len(r.mem)) {
			r.haltTrap(loadOOB(p))
			return false
		}
		res = r.mem[p]
	case xStore:
		p := regs[w.b]
		if p < reservedLow || p >= uint64(len(r.mem)) {
			r.haltTrap(storeOOB(p))
			return false
		}
		r.mem[p] = regs[w.a]
		return true // no result, no flip site
	default:
		res = r.execPure(regs, w)
	}
	regs[w.dst] = res
	if w.id == r.faultID {
		r.flipSlot(regs, w.dst, w.tbits)
	}
	return true
}

// evalCmp evaluates one folded-predicate comparison opcode.
func evalCmp(op xop, regs []uint64, a, b int32) uint64 {
	switch op {
	case xICmpEQ:
		return boolWord(int64(regs[a]) == int64(regs[b]))
	case xICmpNE:
		return boolWord(int64(regs[a]) != int64(regs[b]))
	case xICmpLT:
		return boolWord(int64(regs[a]) < int64(regs[b]))
	case xICmpLE:
		return boolWord(int64(regs[a]) <= int64(regs[b]))
	case xICmpGT:
		return boolWord(int64(regs[a]) > int64(regs[b]))
	case xICmpGE:
		return boolWord(int64(regs[a]) >= int64(regs[b]))
	case xFCmpEQ:
		return boolWord(asF(regs[a]) == asF(regs[b]))
	case xFCmpNE:
		return boolWord(asF(regs[a]) != asF(regs[b]))
	case xFCmpLT:
		return boolWord(asF(regs[a]) < asF(regs[b]))
	case xFCmpLE:
		return boolWord(asF(regs[a]) <= asF(regs[b]))
	case xFCmpGT:
		return boolWord(asF(regs[a]) > asF(regs[b]))
	default: // xFCmpGE
		return boolWord(asF(regs[a]) >= asF(regs[b]))
	}
}

// runBody executes the run constituents of a run-family word (xRun,
// xRunBr, xRunCmpBr) without advancing pc — the caller appends its own
// control transfer or advance. This is the hot loop of the compiled
// tier: all paths cache accounting state in locals and inline the most
// frequent constituent ops, falling back to the shared evaluators for
// the rest. Locals are flushed to the Runner before any call that can
// observe them (halt, trap, fallback execution).
func runBody(r *Runner, fr *frame, in *iword) bool {
	n := int32(in.b)
	ws := fr.cruns[in.a : in.a+n]
	regs := fr.regs
	fid := r.faultID
	p := r.prof
	maxDyn := r.cfg.MaxDynInstrs
	mem := r.mem
	if in.c != 0 && p == nil && r.nDyn+int64(in.bfn) <= maxDyn &&
		(fid < in.id || fid > in.dst) {
		// Fast path: fast-eligible run (no div/rem/ftoi), no profile, hang
		// headroom for the whole run (bfn = original op count; paired
		// words carry two), and the armed fault site outside the run's id
		// range [id, dst] (ids are ascending; the compiler demotes
		// non-monotonic runs) — so per-op accounting and flip checks
		// vanish entirely. Loads can still trap; the exact dynamic count
		// and cycle prefix are then recomputed on that cold path by
		// flushRunPrefix.
		for k := range ws {
			w := &ws[k]
			var res uint64
			switch w.op {
			case xAdd:
				res = regs[w.a] + regs[w.b]
			case xFMul:
				res = fromF(asF(regs[w.a]) * asF(regs[w.b]))
			case xFAdd:
				res = fromF(asF(regs[w.a]) + asF(regs[w.b]))
			case xGEP:
				res = uint64(int64(regs[w.a]) + int64(regs[w.b]))
			case xMul:
				res = regs[w.a] * regs[w.b]
			case xSub:
				res = regs[w.a] - regs[w.b]
			case xFSub:
				res = fromF(asF(regs[w.a]) - asF(regs[w.b]))
			case xLoad:
				ptr := regs[w.a]
				if ptr < reservedLow || ptr >= uint64(len(mem)) {
					r.flushRunPrefix(ws, k)
					r.haltTrap(loadOOB(ptr))
					return false
				}
				res = mem[ptr]
			case xStore:
				ptr := regs[w.b]
				if ptr < reservedLow || ptr >= uint64(len(mem)) {
					r.flushRunPrefix(ws, k)
					r.haltTrap(storeOOB(ptr))
					return false
				}
				mem[ptr] = regs[w.a]
				continue // stores write no register
			case xGlobalAddr:
				res = uint64(r.globalBase[w.a])
			case xGAGep:
				// Paired globaladdr→gep: two ops, one iteration.
				t0 := uint64(r.globalBase[w.a])
				regs[w.dst] = t0
				regs[w.ex0] = uint64(int64(t0) + int64(regs[w.b]))
				continue
			case xGepLoad:
				// Paired gep→load: the address write lands before the
				// bounds check so a trap leaves the same state as the
				// unpaired sequence.
				t0 := uint64(int64(regs[w.a]) + int64(regs[w.b]))
				regs[w.dst] = t0
				if t0 < reservedLow || t0 >= uint64(len(mem)) {
					r.flushRunPrefix(ws, k)
					r.haltTrap(loadOOB(t0))
					return false
				}
				regs[w.ex0] = mem[t0]
				continue
			case xConst:
				res = regs[w.a]
			default:
				res = r.execPure(regs, w)
			}
			regs[w.dst] = res
		}
		r.nDyn += int64(in.bfn)
		r.cycles += int64(in.cyc)
		return true
	}
	nDyn, cyc := r.nDyn, r.cycles
	for k := range ws {
		w := &ws[k]
		nDyn++
		c := int64(w.cyc)
		cyc += c
		if p != nil {
			p.InstrCount[w.id]++
			p.InstrCycles[w.id] += c
		}
		if nDyn > maxDyn {
			r.nDyn, r.cycles = nDyn, cyc
			r.haltHang()
			return false
		}
		var res uint64
		switch w.op {
		case xAdd:
			res = regs[w.a] + regs[w.b]
		case xFMul:
			res = fromF(asF(regs[w.a]) * asF(regs[w.b]))
		case xFAdd:
			res = fromF(asF(regs[w.a]) + asF(regs[w.b]))
		case xGEP:
			res = uint64(int64(regs[w.a]) + int64(regs[w.b]))
		case xMul:
			res = regs[w.a] * regs[w.b]
		case xSub:
			res = regs[w.a] - regs[w.b]
		case xFSub:
			res = fromF(asF(regs[w.a]) - asF(regs[w.b]))
		case xLoad:
			ptr := regs[w.a]
			if ptr < reservedLow || ptr >= uint64(len(mem)) {
				r.nDyn, r.cycles = nDyn, cyc
				r.haltTrap(loadOOB(ptr))
				return false
			}
			res = mem[ptr]
		case xStore:
			ptr := regs[w.b]
			if ptr < reservedLow || ptr >= uint64(len(mem)) {
				r.nDyn, r.cycles = nDyn, cyc
				r.haltTrap(storeOOB(ptr))
				return false
			}
			mem[ptr] = regs[w.a]
			continue // stores write no register and are not flip sites
		case xGlobalAddr:
			res = uint64(r.globalBase[w.a])
		case xGAGep:
			// Paired globaladdr→gep, exact per-half semantics: the gep
			// half re-reads the (possibly flipped) globaladdr result.
			regs[w.dst] = uint64(r.globalBase[w.a])
			if w.id == fid {
				r.flipSlot(regs, w.dst, w.tbits)
			}
			nDyn++
			c2 := int64(w.cyc2)
			cyc += c2
			if p != nil {
				p.InstrCount[w.id2]++
				p.InstrCycles[w.id2] += c2
			}
			if nDyn > maxDyn {
				r.nDyn, r.cycles = nDyn, cyc
				r.haltHang()
				return false
			}
			regs[w.ex0] = uint64(int64(regs[w.dst]) + int64(regs[w.b]))
			if w.id2 == fid {
				r.flipSlot(regs, w.ex0, uint8(w.c))
			}
			continue
		case xGepLoad:
			// Paired gep→load, exact per-half semantics: the load half
			// accounts before its bounds check, and dereferences the
			// (possibly flipped) gep result.
			regs[w.dst] = uint64(int64(regs[w.a]) + int64(regs[w.b]))
			if w.id == fid {
				r.flipSlot(regs, w.dst, w.tbits)
			}
			nDyn++
			c2 := int64(w.cyc2)
			cyc += c2
			if p != nil {
				p.InstrCount[w.id2]++
				p.InstrCycles[w.id2] += c2
			}
			if nDyn > maxDyn {
				r.nDyn, r.cycles = nDyn, cyc
				r.haltHang()
				return false
			}
			ptr := regs[w.dst]
			if ptr < reservedLow || ptr >= uint64(len(mem)) {
				r.nDyn, r.cycles = nDyn, cyc
				r.haltTrap(loadOOB(ptr))
				return false
			}
			regs[w.ex0] = mem[ptr]
			if w.id2 == fid {
				r.flipSlot(regs, w.ex0, uint8(w.c))
			}
			continue
		case xDiv, xRem, xFToI:
			// The only trap-capable fallbacks: flush locals first.
			r.nDyn, r.cycles = nDyn, cyc
			if !r.execSVO(fr, w) {
				return false
			}
			continue
		default:
			res = r.execPure(regs, w)
		}
		regs[w.dst] = res
		if w.id == fid {
			r.flipSlot(regs, w.dst, w.tbits)
		}
	}
	r.nDyn, r.cycles = nDyn, cyc
	return true
}

// hRun executes one plain superinstruction run and falls through to the
// next word.
func hRun(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !runBody(r, fr, in) {
		return false
	}
	fr.pc++
	return true
}

// hRunBr executes a fused block tail [value-ops..., br]: the run, then
// the unconditional branch (accounting id2/cyc2, edge ex0) — one
// dispatch per straight-through loop-body block.
func hRunBr(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !runBody(r, fr, in) {
		return false
	}
	r.nDyn++
	c2 := int64(in.cyc2)
	r.cycles += c2
	if p := r.prof; p != nil {
		p.InstrCount[in.id2]++
		p.InstrCycles[in.id2] += c2
	}
	if r.nDyn > r.cfg.MaxDynInstrs {
		r.haltHang()
		return false
	}
	return r.takeEdgeC(fr, in.ex0)
}

// hRunCmpBr executes a fused block tail [value-ops..., cmp, condbr]:
// the run, the comparison (stored as an extra constituent at
// cruns[a+b], carrying its own accounting and flip site), then the
// conditional branch (id2/cyc2, edges ex0/ex1). The branch re-reads the
// written comparison result, so a flip of the cmp still redirects
// control.
func hRunCmpBr(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !runBody(r, fr, in) {
		return false
	}
	cw := &fr.cruns[in.a+in.b]
	regs := fr.regs
	maxDyn := r.cfg.MaxDynInstrs
	p := r.prof
	if p == nil && r.nDyn+2 <= maxDyn {
		// Unprofiled with headroom: neither half can trap or hang, so both
		// halves account in one bulk update (same argument as runBody).
		r.nDyn += 2
		r.cycles += int64(cw.cyc) + int64(in.cyc2)
		if cw.op == xICmpLT {
			// The dominant loop-bound compare, inlined past evalCmp.
			regs[cw.dst] = boolWord(int64(regs[cw.a]) < int64(regs[cw.b]))
		} else {
			regs[cw.dst] = evalCmp(cw.op, regs, cw.a, cw.b)
		}
		if cw.id == r.faultID {
			r.flipSlot(regs, cw.dst, cw.tbits)
		}
		e := in.ex1
		if regs[cw.dst]&1 != 0 {
			e = in.ex0
		}
		return r.takeEdgeC(fr, e)
	}
	r.nDyn++
	c1 := int64(cw.cyc)
	r.cycles += c1
	if p != nil {
		p.InstrCount[cw.id]++
		p.InstrCycles[cw.id] += c1
	}
	if r.nDyn > maxDyn {
		r.haltHang()
		return false
	}
	regs[cw.dst] = evalCmp(cw.op, regs, cw.a, cw.b)
	if cw.id == r.faultID {
		r.flipSlot(regs, cw.dst, cw.tbits)
	}
	r.nDyn++
	c2 := int64(in.cyc2)
	r.cycles += c2
	if p != nil {
		p.InstrCount[in.id2]++
		p.InstrCycles[in.id2] += c2
	}
	if r.nDyn > maxDyn {
		r.haltHang()
		return false
	}
	e := in.ex1
	if regs[cw.dst]&1 != 0 {
		e = in.ex0
	}
	return r.takeEdgeC(fr, e)
}

// hCmpBr executes a fused compare+branch: two accounted instructions in
// one dispatch, with the branch re-reading the (possibly flipped)
// comparison result.
func hCmpBr(r *Runner, t *thread, fr *frame, in *iword) bool {
	regs := fr.regs
	if p := r.prof; p == nil && r.nDyn+2 <= r.cfg.MaxDynInstrs {
		// Unprofiled with headroom: neither half can trap or hang, so both
		// halves account in one bulk update (same argument as runBody).
		r.nDyn += 2
		r.cycles += int64(in.cyc) + int64(in.cyc2)
		if xop(in.bfn) == xICmpLT {
			// The dominant loop-bound compare, inlined past evalCmp.
			regs[in.dst] = boolWord(int64(regs[in.a]) < int64(regs[in.b]))
		} else {
			regs[in.dst] = evalCmp(xop(in.bfn), regs, in.a, in.b)
		}
		if in.id == r.faultID {
			r.flipSlot(regs, in.dst, in.tbits)
		}
		e := in.ex1
		if regs[in.dst]&1 != 0 {
			e = in.ex0
		}
		return r.takeEdgeC(fr, e)
	}
	if !r.acct(in) {
		return false
	}
	regs[in.dst] = evalCmp(xop(in.bfn), regs, in.a, in.b)
	if in.id == r.faultID {
		r.flipSlot(regs, in.dst, in.tbits)
	}
	r.nDyn++
	cyc2 := int64(in.cyc2)
	r.cycles += cyc2
	if p := r.prof; p != nil {
		p.InstrCount[in.id2]++
		p.InstrCycles[in.id2] += cyc2
	}
	if r.nDyn > r.cfg.MaxDynInstrs {
		r.haltHang()
		return false
	}
	e := in.ex1
	if regs[in.dst]&1 != 0 {
		e = in.ex0
	}
	return r.takeEdgeC(fr, e)
}

// hCmpEqDetect executes the fused duplication check inherited from the
// image, with profile and fault guards for the shared handler table.
func hCmpEqDetect(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !r.acct(in) {
		return false
	}
	regs := fr.regs
	regs[in.dst] = boolWord(regs[in.a] == regs[in.b])
	if in.id == r.faultID {
		r.flipSlot(regs, in.dst, in.tbits)
	}
	r.nDyn++
	cyc2 := int64(in.cyc2)
	r.cycles += cyc2
	if p := r.prof; p != nil {
		p.InstrCount[in.id2]++
		p.InstrCycles[in.id2] += cyc2
	}
	if r.nDyn > r.cfg.MaxDynInstrs {
		r.haltHang()
		return false
	}
	if regs[in.dst]&1 == 0 {
		r.haltDetected()
		return false
	}
	fr.pc++
	return true
}

func hCall(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !r.acct(in) {
		return false
	}
	if t.callDepth >= r.cfg.MaxCallDepth {
		r.haltTrap("call depth exceeded")
		return false
	}
	callee := r.comp.funcs[in.id2]
	args := r.argScratch[:in.b]
	pool := r.comp.img.argPool[in.a:]
	regs := fr.regs
	for k := range args {
		args[k] = regs[pool[k]]
	}
	fr.pc++
	r.pushCFrame(t, callee, args, int(in.dst), callIDOf(in), in.tbits)
	if p := r.prof; p != nil {
		p.BlockCount[callee.ifn.entryBlock]++
	}
	return true
}

func hSpawn(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !r.acct(in) {
		return false
	}
	if len(r.threads) >= r.cfg.MaxThreads {
		r.haltTrap("thread limit exceeded")
		return false
	}
	callee := r.comp.funcs[in.id2]
	args := r.argScratch[:in.b]
	pool := r.comp.img.argPool[in.a:]
	regs := fr.regs
	for k := range args {
		args[k] = regs[pool[k]]
	}
	nt := r.newThread()
	r.pushCFrame(nt, callee, args, -1, -1, 0)
	if p := r.prof; p != nil {
		p.BlockCount[callee.ifn.entryBlock]++
	}
	fr.pc++
	return true
}

func hRet(r *Runner, t *thread, fr *frame, in *iword) bool {
	if !r.acct(in) {
		return false
	}
	hasVal := in.op == xRet
	var rv uint64
	if hasVal {
		rv = fr.regs[in.a]
	}
	t.sp = fr.spSave
	retDst, callID, ctb := fr.retDst, fr.callID, fr.callTBits
	t.frames = t.frames[:len(t.frames)-1]
	t.callDepth--
	if len(t.frames) == 0 {
		t.done = true
		return false
	}
	if hasVal && retDst >= 0 {
		caller := &t.frames[len(t.frames)-1]
		caller.regs[retDst] = rv
		if callID >= 0 && callID == r.faultID {
			r.flipSlot(caller.regs, int32(retDst), ctb)
		}
	}
	return true
}

func init() {
	// Binary/unary value ops route through the shared evaluators; wr
	// applies the result write, fault flip, and pc advance.
	val := func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		r.wr(fr, in, r.execPure(fr.regs, in))
		return true
	}
	for op := 0; op < xNumOps; op++ {
		if pureOp(xop(op)) {
			cHandlers[op] = val
		}
	}

	cHandlers[xDiv] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if r.acct(in) && r.execSVO(fr, in) {
			fr.pc++
			return true
		}
		return false
	}
	cHandlers[xRem] = cHandlers[xDiv]
	cHandlers[xFToI] = cHandlers[xDiv]
	cHandlers[xLoad] = cHandlers[xDiv]
	cHandlers[xStore] = cHandlers[xDiv]

	cHandlers[xAlloca] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		n := int64(fr.regs[in.a])
		if n < 0 || t.sp+int(n) > t.stackEnd {
			r.haltTrap("stack overflow")
			return false
		}
		res := uint64(t.sp)
		clear(r.mem[t.sp : t.sp+int(n)])
		t.sp += int(n)
		r.wr(fr, in, res)
		return true
	}

	cHandlers[xBr] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		return r.acct(in) && r.takeEdgeC(fr, in.ex0)
	}
	cHandlers[xCondBr] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		e := in.ex1
		if fr.regs[in.a]&1 != 0 {
			e = in.ex0
		}
		return r.takeEdgeC(fr, e)
	}
	cHandlers[xRet] = hRet
	cHandlers[xRetVoid] = hRet

	cHandlers[xEntryPhi] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		if in.a < 0 {
			r.haltTrap("phi with no matching predecessor")
			return false
		}
		r.wr(fr, in, fr.regs[in.a])
		return true
	}
	cHandlers[xLonePhi] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		if fr.phiSrc < 0 {
			r.haltTrap("phi with no matching predecessor")
			return false
		}
		r.wr(fr, in, fr.regs[fr.phiSrc])
		return true
	}

	cHandlers[xCall] = hCall
	cHandlers[xSpawn] = hSpawn
	cHandlers[xJoin] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		fr.pc++
		if !r.othersDone(t) {
			t.joining = true
			return false
		}
		return true
	}
	cHandlers[xDetect] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		if fr.regs[in.a]&1 == 0 {
			r.haltDetected()
			return false
		}
		fr.pc++
		return true
	}
	cHandlers[xEmit] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if !r.acct(in) {
			return false
		}
		if len(r.out) >= r.cfg.MaxOutputWords {
			r.haltTrap("output overflow")
			return false
		}
		r.out = append(r.out, fr.regs[in.a])
		fr.pc++
		return true
	}
	cHandlers[xCmpEqDetect] = hCmpEqDetect
	cHandlers[xTrapOp] = func(r *Runner, t *thread, fr *frame, in *iword) bool {
		if r.acct(in) {
			r.haltTrap(r.comp.img.traps[in.a])
		}
		return false
	}

	cHandlers[xRun] = hRun
	cHandlers[xCmpBr] = hCmpBr
	cHandlers[xRunBr] = hRunBr
	cHandlers[xRunCmpBr] = hRunCmpBr
}
