package interp

import "math"

// This file contains the image engine's run loops. There are three
// hand-specialized variants so the common campaign trial pays nothing for
// features it does not use:
//
//   quantumPlain    — no fault, no profile (golden re-runs, plain Exec)
//   quantumProfiled — profile attached, no fault (characterization runs)
//   quantumFault    — fault armed, profile optional (campaign trials)
//
// All three replicate the reference stepper's observable order exactly:
// account (nDyn, cycles, profile counters) → hang check → execute; branch:
// validity → block/edge counters → phi transfer; a lone leading phi runs
// as its own step; fault flips apply after the result write and count
// every dynamic execution of the target instruction. Generic or
// closure-parameterized loops were rejected because Go does not stencil
// zero-size mode parameters into separate code, which would reintroduce
// the per-step feature checks this split exists to remove.

// quantumPlain executes up to q image instructions on t with no fault and
// no profile attached.
func (r *Runner) quantumPlain(t *thread, q int) {
	maxDyn := r.cfg.MaxDynInstrs
	for i := 0; i < q; i++ {
		if t.done || t.joining || r.halted {
			return
		}
		fr := &t.frames[len(t.frames)-1]
		in := &fr.ifn.code[fr.pc]
		r.nDyn++
		r.cycles += int64(in.cyc)
		if r.nDyn > maxDyn {
			r.haltHang()
			return
		}
		regs := fr.regs
		var res uint64

		switch in.op {
		case xAdd:
			res = regs[in.a] + regs[in.b]
		case xSub:
			res = regs[in.a] - regs[in.b]
		case xMul:
			res = regs[in.a] * regs[in.b]
		case xDiv:
			a, b := int64(regs[in.a]), int64(regs[in.b])
			if b == 0 {
				r.haltTrap("integer divide by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				r.haltTrap("integer divide overflow")
				return
			}
			res = uint64(a / b)
		case xRem:
			a, b := int64(regs[in.a]), int64(regs[in.b])
			if b == 0 {
				r.haltTrap("integer remainder by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				r.haltTrap("integer remainder overflow")
				return
			}
			res = uint64(a % b)
		case xAnd:
			res = regs[in.a] & regs[in.b]
		case xOr:
			res = regs[in.a] | regs[in.b]
		case xXor:
			res = regs[in.a] ^ regs[in.b]
		case xShl:
			res = uint64(int64(regs[in.a]) << (regs[in.b] & 63))
		case xShr:
			res = uint64(int64(regs[in.a]) >> (regs[in.b] & 63))
		case xFAdd:
			res = fromF(asF(regs[in.a]) + asF(regs[in.b]))
		case xFSub:
			res = fromF(asF(regs[in.a]) - asF(regs[in.b]))
		case xFMul:
			res = fromF(asF(regs[in.a]) * asF(regs[in.b]))
		case xFDiv:
			res = fromF(asF(regs[in.a]) / asF(regs[in.b]))

		case xICmpEQ:
			res = boolWord(int64(regs[in.a]) == int64(regs[in.b]))
		case xICmpNE:
			res = boolWord(int64(regs[in.a]) != int64(regs[in.b]))
		case xICmpLT:
			res = boolWord(int64(regs[in.a]) < int64(regs[in.b]))
		case xICmpLE:
			res = boolWord(int64(regs[in.a]) <= int64(regs[in.b]))
		case xICmpGT:
			res = boolWord(int64(regs[in.a]) > int64(regs[in.b]))
		case xICmpGE:
			res = boolWord(int64(regs[in.a]) >= int64(regs[in.b]))
		case xFCmpEQ:
			res = boolWord(asF(regs[in.a]) == asF(regs[in.b]))
		case xFCmpNE:
			res = boolWord(asF(regs[in.a]) != asF(regs[in.b]))
		case xFCmpLT:
			res = boolWord(asF(regs[in.a]) < asF(regs[in.b]))
		case xFCmpLE:
			res = boolWord(asF(regs[in.a]) <= asF(regs[in.b]))
		case xFCmpGT:
			res = boolWord(asF(regs[in.a]) > asF(regs[in.b]))
		case xFCmpGE:
			res = boolWord(asF(regs[in.a]) >= asF(regs[in.b]))

		case xIToF:
			res = fromF(float64(int64(regs[in.a])))
		case xFToI:
			f := asF(regs[in.a])
			if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
				r.haltTrap("float-to-int out of range")
				return
			}
			res = uint64(int64(f))

		case xAlloca:
			n := int64(regs[in.a])
			if n < 0 || t.sp+int(n) > t.stackEnd {
				r.haltTrap("stack overflow")
				return
			}
			res = uint64(t.sp)
			clear(r.mem[t.sp : t.sp+int(n)])
			t.sp += int(n)
		case xLoad:
			p := regs[in.a]
			if p < reservedLow || p >= uint64(len(r.mem)) {
				r.haltTrap(loadOOB(p))
				return
			}
			res = r.mem[p]
		case xStore:
			p := regs[in.b]
			if p < reservedLow || p >= uint64(len(r.mem)) {
				r.haltTrap(storeOOB(p))
				return
			}
			r.mem[p] = regs[in.a]
			fr.pc++
			continue
		case xGEP:
			res = uint64(int64(regs[in.a]) + int64(regs[in.b]))
		case xGlobalAddr:
			res = uint64(r.globalBase[in.a])
		case xArrayLen:
			res = uint64(r.globalLen[in.a])

		case xBr:
			r.takeEdgePlain(fr, in.ex0)
			continue
		case xCondBr:
			e := in.ex1
			if regs[in.a]&1 != 0 {
				e = in.ex0
			}
			r.takeEdgePlain(fr, e)
			continue
		case xRet, xRetVoid:
			hasVal := in.op == xRet
			var rv uint64
			if hasVal {
				rv = regs[in.a]
			}
			t.sp = fr.spSave
			retDst := fr.retDst
			t.frames = t.frames[:len(t.frames)-1]
			t.callDepth--
			if len(t.frames) == 0 {
				t.done = true
				continue
			}
			if hasVal && retDst >= 0 {
				t.frames[len(t.frames)-1].regs[retDst] = rv
			}
			continue

		case xEntryPhi:
			if in.a < 0 {
				r.haltTrap("phi with no matching predecessor")
				return
			}
			res = regs[in.a]
		case xLonePhi:
			if fr.phiSrc < 0 {
				r.haltTrap("phi with no matching predecessor")
				return
			}
			res = regs[fr.phiSrc]

		case xCall:
			if t.callDepth >= r.cfg.MaxCallDepth {
				r.haltTrap("call depth exceeded")
				return
			}
			callee := r.img.funcs[in.id2]
			args := r.argScratch[:in.b]
			pool := r.img.argPool[in.a:]
			for k := range args {
				args[k] = regs[pool[k]]
			}
			fr.pc++
			r.pushIFrame(t, callee, args, int(in.dst), callIDOf(in), in.tbits)
			continue
		case xSelect:
			if regs[in.a]&1 != 0 {
				res = regs[in.b]
			} else {
				res = regs[in.c]
			}
		case xSpawn:
			if len(r.threads) >= r.cfg.MaxThreads {
				r.haltTrap("thread limit exceeded")
				return
			}
			callee := r.img.funcs[in.id2]
			args := r.argScratch[:in.b]
			pool := r.img.argPool[in.a:]
			for k := range args {
				args[k] = regs[pool[k]]
			}
			nt := r.newThread()
			r.pushIFrame(nt, callee, args, -1, -1, 0)
			fr.pc++
			continue
		case xJoin:
			fr.pc++
			if !r.othersDone(t) {
				t.joining = true
			}
			continue
		case xDetect:
			if regs[in.a]&1 == 0 {
				r.haltDetected()
				return
			}
			fr.pc++
			continue

		case xEmit:
			if len(r.out) >= r.cfg.MaxOutputWords {
				r.haltTrap("output overflow")
				return
			}
			r.out = append(r.out, regs[in.a])
			fr.pc++
			continue
		case xSqrt:
			res = fromF(math.Sqrt(asF(regs[in.a])))
		case xFabs:
			res = fromF(math.Abs(asF(regs[in.a])))
		case xExp:
			res = fromF(math.Exp(asF(regs[in.a])))
		case xLog:
			res = fromF(math.Log(asF(regs[in.a])))
		case xSin:
			res = fromF(math.Sin(asF(regs[in.a])))
		case xCos:
			res = fromF(math.Cos(asF(regs[in.a])))
		case xPow:
			res = fromF(math.Pow(asF(regs[in.a]), asF(regs[in.b])))
		case xFloor:
			res = fromF(math.Floor(asF(regs[in.a])))
		case xIAbs:
			v := int64(regs[in.a])
			if v < 0 {
				v = -v
			}
			res = uint64(v)

		case xCmpEqDetect:
			regs[in.dst] = boolWord(regs[in.a] == regs[in.b])
			r.nDyn++
			r.cycles += int64(in.cyc2)
			if r.nDyn > maxDyn {
				r.haltHang()
				return
			}
			if regs[in.dst]&1 == 0 {
				r.haltDetected()
				return
			}
			fr.pc++
			continue

		default: // xTrapOp
			r.haltTrap(r.img.traps[in.a])
			return
		}

		regs[in.dst] = res
		fr.pc++
	}
}

// takeEdgePlain transfers control along edge e with no profiling and no
// fault. e < 0 is a branch to an invalid block.
func (r *Runner) takeEdgePlain(fr *frame, e int32) {
	if e < 0 {
		r.haltTrap("branch to invalid block")
		return
	}
	ep := &r.img.edgeProgs[e]
	if ep.trap {
		r.haltTrap("phi with no matching predecessor")
		return
	}
	if ep.lone {
		fr.phiSrc = ep.moves[0].src
		fr.pc = int(ep.target)
		return
	}
	moves := ep.moves
	if len(moves) == 0 {
		fr.pc = int(ep.target)
		return
	}
	regs := fr.regs
	vals := r.phiVals[:len(moves)]
	for i := range moves {
		vals[i] = regs[moves[i].src]
	}
	maxDyn := r.cfg.MaxDynInstrs
	for i := range moves {
		mv := &moves[i]
		r.nDyn++
		r.cycles += int64(mv.cyc)
		if r.nDyn > maxDyn {
			r.haltHang()
			return
		}
		regs[mv.dst] = vals[i]
	}
	fr.pc = int(ep.target)
}

// quantumProfiled executes up to q image instructions on t with a profile
// attached and no fault armed.
func (r *Runner) quantumProfiled(t *thread, q int) {
	maxDyn := r.cfg.MaxDynInstrs
	p := r.prof
	for i := 0; i < q; i++ {
		if t.done || t.joining || r.halted {
			return
		}
		fr := &t.frames[len(t.frames)-1]
		in := &fr.ifn.code[fr.pc]
		r.nDyn++
		cyc := int64(in.cyc)
		r.cycles += cyc
		p.InstrCount[in.id]++
		p.InstrCycles[in.id] += cyc
		if r.nDyn > maxDyn {
			r.haltHang()
			return
		}
		regs := fr.regs
		var res uint64

		switch in.op {
		case xAdd:
			res = regs[in.a] + regs[in.b]
		case xSub:
			res = regs[in.a] - regs[in.b]
		case xMul:
			res = regs[in.a] * regs[in.b]
		case xDiv:
			a, b := int64(regs[in.a]), int64(regs[in.b])
			if b == 0 {
				r.haltTrap("integer divide by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				r.haltTrap("integer divide overflow")
				return
			}
			res = uint64(a / b)
		case xRem:
			a, b := int64(regs[in.a]), int64(regs[in.b])
			if b == 0 {
				r.haltTrap("integer remainder by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				r.haltTrap("integer remainder overflow")
				return
			}
			res = uint64(a % b)
		case xAnd:
			res = regs[in.a] & regs[in.b]
		case xOr:
			res = regs[in.a] | regs[in.b]
		case xXor:
			res = regs[in.a] ^ regs[in.b]
		case xShl:
			res = uint64(int64(regs[in.a]) << (regs[in.b] & 63))
		case xShr:
			res = uint64(int64(regs[in.a]) >> (regs[in.b] & 63))
		case xFAdd:
			res = fromF(asF(regs[in.a]) + asF(regs[in.b]))
		case xFSub:
			res = fromF(asF(regs[in.a]) - asF(regs[in.b]))
		case xFMul:
			res = fromF(asF(regs[in.a]) * asF(regs[in.b]))
		case xFDiv:
			res = fromF(asF(regs[in.a]) / asF(regs[in.b]))

		case xICmpEQ:
			res = boolWord(int64(regs[in.a]) == int64(regs[in.b]))
		case xICmpNE:
			res = boolWord(int64(regs[in.a]) != int64(regs[in.b]))
		case xICmpLT:
			res = boolWord(int64(regs[in.a]) < int64(regs[in.b]))
		case xICmpLE:
			res = boolWord(int64(regs[in.a]) <= int64(regs[in.b]))
		case xICmpGT:
			res = boolWord(int64(regs[in.a]) > int64(regs[in.b]))
		case xICmpGE:
			res = boolWord(int64(regs[in.a]) >= int64(regs[in.b]))
		case xFCmpEQ:
			res = boolWord(asF(regs[in.a]) == asF(regs[in.b]))
		case xFCmpNE:
			res = boolWord(asF(regs[in.a]) != asF(regs[in.b]))
		case xFCmpLT:
			res = boolWord(asF(regs[in.a]) < asF(regs[in.b]))
		case xFCmpLE:
			res = boolWord(asF(regs[in.a]) <= asF(regs[in.b]))
		case xFCmpGT:
			res = boolWord(asF(regs[in.a]) > asF(regs[in.b]))
		case xFCmpGE:
			res = boolWord(asF(regs[in.a]) >= asF(regs[in.b]))

		case xIToF:
			res = fromF(float64(int64(regs[in.a])))
		case xFToI:
			f := asF(regs[in.a])
			if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
				r.haltTrap("float-to-int out of range")
				return
			}
			res = uint64(int64(f))

		case xAlloca:
			n := int64(regs[in.a])
			if n < 0 || t.sp+int(n) > t.stackEnd {
				r.haltTrap("stack overflow")
				return
			}
			res = uint64(t.sp)
			clear(r.mem[t.sp : t.sp+int(n)])
			t.sp += int(n)
		case xLoad:
			p := regs[in.a]
			if p < reservedLow || p >= uint64(len(r.mem)) {
				r.haltTrap(loadOOB(p))
				return
			}
			res = r.mem[p]
		case xStore:
			p := regs[in.b]
			if p < reservedLow || p >= uint64(len(r.mem)) {
				r.haltTrap(storeOOB(p))
				return
			}
			r.mem[p] = regs[in.a]
			fr.pc++
			continue
		case xGEP:
			res = uint64(int64(regs[in.a]) + int64(regs[in.b]))
		case xGlobalAddr:
			res = uint64(r.globalBase[in.a])
		case xArrayLen:
			res = uint64(r.globalLen[in.a])

		case xBr:
			r.takeEdgeProfiled(fr, in.ex0)
			continue
		case xCondBr:
			e := in.ex1
			if regs[in.a]&1 != 0 {
				e = in.ex0
			}
			r.takeEdgeProfiled(fr, e)
			continue
		case xRet, xRetVoid:
			hasVal := in.op == xRet
			var rv uint64
			if hasVal {
				rv = regs[in.a]
			}
			t.sp = fr.spSave
			retDst := fr.retDst
			t.frames = t.frames[:len(t.frames)-1]
			t.callDepth--
			if len(t.frames) == 0 {
				t.done = true
				continue
			}
			if hasVal && retDst >= 0 {
				t.frames[len(t.frames)-1].regs[retDst] = rv
			}
			continue

		case xEntryPhi:
			if in.a < 0 {
				r.haltTrap("phi with no matching predecessor")
				return
			}
			res = regs[in.a]
		case xLonePhi:
			if fr.phiSrc < 0 {
				r.haltTrap("phi with no matching predecessor")
				return
			}
			res = regs[fr.phiSrc]

		case xCall:
			if t.callDepth >= r.cfg.MaxCallDepth {
				r.haltTrap("call depth exceeded")
				return
			}
			callee := r.img.funcs[in.id2]
			args := r.argScratch[:in.b]
			pool := r.img.argPool[in.a:]
			for k := range args {
				args[k] = regs[pool[k]]
			}
			fr.pc++
			r.pushIFrame(t, callee, args, int(in.dst), callIDOf(in), in.tbits)
			p.BlockCount[callee.entryBlock]++
			continue
		case xSelect:
			if regs[in.a]&1 != 0 {
				res = regs[in.b]
			} else {
				res = regs[in.c]
			}
		case xSpawn:
			if len(r.threads) >= r.cfg.MaxThreads {
				r.haltTrap("thread limit exceeded")
				return
			}
			callee := r.img.funcs[in.id2]
			args := r.argScratch[:in.b]
			pool := r.img.argPool[in.a:]
			for k := range args {
				args[k] = regs[pool[k]]
			}
			nt := r.newThread()
			r.pushIFrame(nt, callee, args, -1, -1, 0)
			p.BlockCount[callee.entryBlock]++
			fr.pc++
			continue
		case xJoin:
			fr.pc++
			if !r.othersDone(t) {
				t.joining = true
			}
			continue
		case xDetect:
			if regs[in.a]&1 == 0 {
				r.haltDetected()
				return
			}
			fr.pc++
			continue

		case xEmit:
			if len(r.out) >= r.cfg.MaxOutputWords {
				r.haltTrap("output overflow")
				return
			}
			r.out = append(r.out, regs[in.a])
			fr.pc++
			continue
		case xSqrt:
			res = fromF(math.Sqrt(asF(regs[in.a])))
		case xFabs:
			res = fromF(math.Abs(asF(regs[in.a])))
		case xExp:
			res = fromF(math.Exp(asF(regs[in.a])))
		case xLog:
			res = fromF(math.Log(asF(regs[in.a])))
		case xSin:
			res = fromF(math.Sin(asF(regs[in.a])))
		case xCos:
			res = fromF(math.Cos(asF(regs[in.a])))
		case xPow:
			res = fromF(math.Pow(asF(regs[in.a]), asF(regs[in.b])))
		case xFloor:
			res = fromF(math.Floor(asF(regs[in.a])))
		case xIAbs:
			v := int64(regs[in.a])
			if v < 0 {
				v = -v
			}
			res = uint64(v)

		case xCmpEqDetect:
			regs[in.dst] = boolWord(regs[in.a] == regs[in.b])
			r.nDyn++
			cyc2 := int64(in.cyc2)
			r.cycles += cyc2
			p.InstrCount[in.id2]++
			p.InstrCycles[in.id2] += cyc2
			if r.nDyn > maxDyn {
				r.haltHang()
				return
			}
			if regs[in.dst]&1 == 0 {
				r.haltDetected()
				return
			}
			fr.pc++
			continue

		default: // xTrapOp
			r.haltTrap(r.img.traps[in.a])
			return
		}

		regs[in.dst] = res
		fr.pc++
	}
}

// takeEdgeProfiled transfers control along edge e, counting the entered
// block and the edge (in the order of the reference stepper: before any
// phi work, including a missing-predecessor trap).
func (r *Runner) takeEdgeProfiled(fr *frame, e int32) {
	if e < 0 {
		r.haltTrap("branch to invalid block")
		return
	}
	ep := &r.img.edgeProgs[e]
	p := r.prof
	p.BlockCount[ep.dstBlock]++
	p.EdgeHits[e]++
	if ep.trap {
		r.haltTrap("phi with no matching predecessor")
		return
	}
	if ep.lone {
		fr.phiSrc = ep.moves[0].src
		fr.pc = int(ep.target)
		return
	}
	moves := ep.moves
	if len(moves) == 0 {
		fr.pc = int(ep.target)
		return
	}
	regs := fr.regs
	vals := r.phiVals[:len(moves)]
	for i := range moves {
		vals[i] = regs[moves[i].src]
	}
	maxDyn := r.cfg.MaxDynInstrs
	for i := range moves {
		mv := &moves[i]
		r.nDyn++
		cyc := int64(mv.cyc)
		r.cycles += cyc
		p.InstrCount[mv.id]++
		p.InstrCycles[mv.id] += cyc
		if r.nDyn > maxDyn {
			r.haltHang()
			return
		}
		regs[mv.dst] = vals[i]
	}
	fr.pc = int(ep.target)
}

// quantumFault executes up to q image instructions on t with a fault
// armed. A profile may also be attached (rare: incubative characterization
// of faulty runs), so profile updates are guarded here — this loop is off
// the no-fault fast paths.
func (r *Runner) quantumFault(t *thread, q int) {
	maxDyn := r.cfg.MaxDynInstrs
	p := r.prof
	fid := r.faultID
	for i := 0; i < q; i++ {
		if t.done || t.joining || r.halted {
			return
		}
		fr := &t.frames[len(t.frames)-1]
		in := &fr.ifn.code[fr.pc]
		r.nDyn++
		cyc := int64(in.cyc)
		r.cycles += cyc
		if p != nil {
			p.InstrCount[in.id]++
			p.InstrCycles[in.id] += cyc
		}
		if r.nDyn > maxDyn {
			r.haltHang()
			return
		}
		regs := fr.regs
		var res uint64

		switch in.op {
		case xAdd:
			res = regs[in.a] + regs[in.b]
		case xSub:
			res = regs[in.a] - regs[in.b]
		case xMul:
			res = regs[in.a] * regs[in.b]
		case xDiv:
			a, b := int64(regs[in.a]), int64(regs[in.b])
			if b == 0 {
				r.haltTrap("integer divide by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				r.haltTrap("integer divide overflow")
				return
			}
			res = uint64(a / b)
		case xRem:
			a, b := int64(regs[in.a]), int64(regs[in.b])
			if b == 0 {
				r.haltTrap("integer remainder by zero")
				return
			}
			if a == math.MinInt64 && b == -1 {
				r.haltTrap("integer remainder overflow")
				return
			}
			res = uint64(a % b)
		case xAnd:
			res = regs[in.a] & regs[in.b]
		case xOr:
			res = regs[in.a] | regs[in.b]
		case xXor:
			res = regs[in.a] ^ regs[in.b]
		case xShl:
			res = uint64(int64(regs[in.a]) << (regs[in.b] & 63))
		case xShr:
			res = uint64(int64(regs[in.a]) >> (regs[in.b] & 63))
		case xFAdd:
			res = fromF(asF(regs[in.a]) + asF(regs[in.b]))
		case xFSub:
			res = fromF(asF(regs[in.a]) - asF(regs[in.b]))
		case xFMul:
			res = fromF(asF(regs[in.a]) * asF(regs[in.b]))
		case xFDiv:
			res = fromF(asF(regs[in.a]) / asF(regs[in.b]))

		case xICmpEQ:
			res = boolWord(int64(regs[in.a]) == int64(regs[in.b]))
		case xICmpNE:
			res = boolWord(int64(regs[in.a]) != int64(regs[in.b]))
		case xICmpLT:
			res = boolWord(int64(regs[in.a]) < int64(regs[in.b]))
		case xICmpLE:
			res = boolWord(int64(regs[in.a]) <= int64(regs[in.b]))
		case xICmpGT:
			res = boolWord(int64(regs[in.a]) > int64(regs[in.b]))
		case xICmpGE:
			res = boolWord(int64(regs[in.a]) >= int64(regs[in.b]))
		case xFCmpEQ:
			res = boolWord(asF(regs[in.a]) == asF(regs[in.b]))
		case xFCmpNE:
			res = boolWord(asF(regs[in.a]) != asF(regs[in.b]))
		case xFCmpLT:
			res = boolWord(asF(regs[in.a]) < asF(regs[in.b]))
		case xFCmpLE:
			res = boolWord(asF(regs[in.a]) <= asF(regs[in.b]))
		case xFCmpGT:
			res = boolWord(asF(regs[in.a]) > asF(regs[in.b]))
		case xFCmpGE:
			res = boolWord(asF(regs[in.a]) >= asF(regs[in.b]))

		case xIToF:
			res = fromF(float64(int64(regs[in.a])))
		case xFToI:
			f := asF(regs[in.a])
			if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
				r.haltTrap("float-to-int out of range")
				return
			}
			res = uint64(int64(f))

		case xAlloca:
			n := int64(regs[in.a])
			if n < 0 || t.sp+int(n) > t.stackEnd {
				r.haltTrap("stack overflow")
				return
			}
			res = uint64(t.sp)
			clear(r.mem[t.sp : t.sp+int(n)])
			t.sp += int(n)
		case xLoad:
			p := regs[in.a]
			if p < reservedLow || p >= uint64(len(r.mem)) {
				r.haltTrap(loadOOB(p))
				return
			}
			res = r.mem[p]
		case xStore:
			p := regs[in.b]
			if p < reservedLow || p >= uint64(len(r.mem)) {
				r.haltTrap(storeOOB(p))
				return
			}
			r.mem[p] = regs[in.a]
			fr.pc++
			continue
		case xGEP:
			res = uint64(int64(regs[in.a]) + int64(regs[in.b]))
		case xGlobalAddr:
			res = uint64(r.globalBase[in.a])
		case xArrayLen:
			res = uint64(r.globalLen[in.a])

		case xBr:
			r.takeEdgeFault(fr, in.ex0)
			continue
		case xCondBr:
			e := in.ex1
			if regs[in.a]&1 != 0 {
				e = in.ex0
			}
			r.takeEdgeFault(fr, e)
			continue
		case xRet, xRetVoid:
			hasVal := in.op == xRet
			var rv uint64
			if hasVal {
				rv = regs[in.a]
			}
			t.sp = fr.spSave
			retDst, callID, ctb := fr.retDst, fr.callID, fr.callTBits
			t.frames = t.frames[:len(t.frames)-1]
			t.callDepth--
			if len(t.frames) == 0 {
				t.done = true
				continue
			}
			if hasVal && retDst >= 0 {
				caller := &t.frames[len(t.frames)-1]
				caller.regs[retDst] = rv
				if callID >= 0 && callID == fid {
					r.flipSlot(caller.regs, int32(retDst), ctb)
				}
			}
			continue

		case xEntryPhi:
			if in.a < 0 {
				r.haltTrap("phi with no matching predecessor")
				return
			}
			res = regs[in.a]
		case xLonePhi:
			if fr.phiSrc < 0 {
				r.haltTrap("phi with no matching predecessor")
				return
			}
			res = regs[fr.phiSrc]

		case xCall:
			if t.callDepth >= r.cfg.MaxCallDepth {
				r.haltTrap("call depth exceeded")
				return
			}
			callee := r.img.funcs[in.id2]
			args := r.argScratch[:in.b]
			pool := r.img.argPool[in.a:]
			for k := range args {
				args[k] = regs[pool[k]]
			}
			fr.pc++
			r.pushIFrame(t, callee, args, int(in.dst), callIDOf(in), in.tbits)
			if p != nil {
				p.BlockCount[callee.entryBlock]++
			}
			continue
		case xSelect:
			if regs[in.a]&1 != 0 {
				res = regs[in.b]
			} else {
				res = regs[in.c]
			}
		case xSpawn:
			if len(r.threads) >= r.cfg.MaxThreads {
				r.haltTrap("thread limit exceeded")
				return
			}
			callee := r.img.funcs[in.id2]
			args := r.argScratch[:in.b]
			pool := r.img.argPool[in.a:]
			for k := range args {
				args[k] = regs[pool[k]]
			}
			nt := r.newThread()
			r.pushIFrame(nt, callee, args, -1, -1, 0)
			if p != nil {
				p.BlockCount[callee.entryBlock]++
			}
			fr.pc++
			continue
		case xJoin:
			fr.pc++
			if !r.othersDone(t) {
				t.joining = true
			}
			continue
		case xDetect:
			if regs[in.a]&1 == 0 {
				r.haltDetected()
				return
			}
			fr.pc++
			continue

		case xEmit:
			if len(r.out) >= r.cfg.MaxOutputWords {
				r.haltTrap("output overflow")
				return
			}
			r.out = append(r.out, regs[in.a])
			fr.pc++
			continue
		case xSqrt:
			res = fromF(math.Sqrt(asF(regs[in.a])))
		case xFabs:
			res = fromF(math.Abs(asF(regs[in.a])))
		case xExp:
			res = fromF(math.Exp(asF(regs[in.a])))
		case xLog:
			res = fromF(math.Log(asF(regs[in.a])))
		case xSin:
			res = fromF(math.Sin(asF(regs[in.a])))
		case xCos:
			res = fromF(math.Cos(asF(regs[in.a])))
		case xPow:
			res = fromF(math.Pow(asF(regs[in.a]), asF(regs[in.b])))
		case xFloor:
			res = fromF(math.Floor(asF(regs[in.a])))
		case xIAbs:
			v := int64(regs[in.a])
			if v < 0 {
				v = -v
			}
			res = uint64(v)

		case xCmpEqDetect:
			regs[in.dst] = boolWord(regs[in.a] == regs[in.b])
			if in.id == fid {
				r.flipSlot(regs, in.dst, in.tbits)
			}
			r.nDyn++
			cyc2 := int64(in.cyc2)
			r.cycles += cyc2
			if p != nil {
				p.InstrCount[in.id2]++
				p.InstrCycles[in.id2] += cyc2
			}
			if r.nDyn > maxDyn {
				r.haltHang()
				return
			}
			if regs[in.dst]&1 == 0 {
				r.haltDetected()
				return
			}
			fr.pc++
			continue

		default: // xTrapOp
			r.haltTrap(r.img.traps[in.a])
			return
		}

		regs[in.dst] = res
		if in.id == fid {
			r.flipSlot(regs, in.dst, in.tbits)
		}
		fr.pc++
	}
}

// takeEdgeFault transfers control along edge e with a fault armed (and an
// optional profile).
func (r *Runner) takeEdgeFault(fr *frame, e int32) {
	if e < 0 {
		r.haltTrap("branch to invalid block")
		return
	}
	ep := &r.img.edgeProgs[e]
	p := r.prof
	if p != nil {
		p.BlockCount[ep.dstBlock]++
		p.EdgeHits[e]++
	}
	if ep.trap {
		r.haltTrap("phi with no matching predecessor")
		return
	}
	if ep.lone {
		fr.phiSrc = ep.moves[0].src
		fr.pc = int(ep.target)
		return
	}
	moves := ep.moves
	if len(moves) == 0 {
		fr.pc = int(ep.target)
		return
	}
	regs := fr.regs
	vals := r.phiVals[:len(moves)]
	for i := range moves {
		vals[i] = regs[moves[i].src]
	}
	maxDyn := r.cfg.MaxDynInstrs
	fid := r.faultID
	for i := range moves {
		mv := &moves[i]
		r.nDyn++
		cyc := int64(mv.cyc)
		r.cycles += cyc
		if p != nil {
			p.InstrCount[mv.id]++
			p.InstrCycles[mv.id] += cyc
		}
		if r.nDyn > maxDyn {
			r.haltHang()
			return
		}
		regs[mv.dst] = vals[i]
		if mv.id == fid {
			r.flipSlot(regs, mv.dst, mv.tbits)
		}
	}
	fr.pc = int(ep.target)
}

// flipSlot applies the armed fault to regs[dst] if this dynamic execution
// of the target instruction is the injection point, and advances the
// dynamic-occurrence counter either way (mirroring Runner.flip).
func (r *Runner) flipSlot(regs []uint64, dst int32, tbits uint8) {
	if r.faultSeen == r.fault.DynIndex {
		mask := r.fault.Mask
		if tbits == 1 {
			mask &= 1
		}
		switch {
		case r.fault.Op == FaultStuckAt0:
			regs[dst] &^= mask
		case r.fault.Op == FaultStuckAt1:
			regs[dst] |= mask
		case r.fault.Mask != 0:
			regs[dst] ^= mask
		default:
			bit := r.fault.Bit % uint(tbits)
			regs[dst] ^= 1 << bit
		}
	}
	r.faultSeen++
}

// callIDOf returns the static ID a frame must remember for return-value
// fault injection: the call's ID when it produces a result, else -1.
func callIDOf(in *iword) int32 {
	if in.c != 0 {
		return in.id
	}
	return -1
}
