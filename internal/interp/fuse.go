package interp

import (
	"fmt"
	"sort"
)

// This file holds the fusion vocabulary of the compiled tier: which image
// opcodes may join a superinstruction run, which are pure (cannot trap, so
// a run of them can be accounted in bulk), and the profile-weighted
// sequence miner that reports which opcode n-grams dominate the dynamic
// stream. The fusion templates in compile.go are parametric — any eligible
// sequence fuses, whatever its opcodes — so mining is an observability and
// validation tool (the tests assert the templates cover the hot stream)
// rather than a template selector.

// Compiled-tier opcodes, contiguous after the image opcodes so fused and
// plain words index one handler table (dispatch.go).
const (
	// xRun executes b consecutive straight-line value ops stored in the
	// side table cfunc.runs starting at a, in one dispatch. c != 0 marks a
	// pure run (no constituent can trap) whose total cycles are
	// precomputed in cyc.
	xRun xop = xTrapOp + 1 + iota
	// xCmpBr is a fused compare+cond-branch: the comparison (kind in bfn,
	// operands a/b, result slot dst, accounting id/cyc) immediately
	// followed by its conditional branch (accounting id2/cyc2, edges
	// ex0/ex1). The branch re-reads the written result, so a fault flip of
	// the comparison still redirects control.
	xCmpBr
	// xConst is a specialized value op: the known-bits lattice proved the
	// result constant on fault-free runs, so the op becomes a move from
	// const-pool slot a (accounting unchanged). Only emitted into the
	// no-fault code stream (cfunc.spec).
	xConst
	// xRunBr fuses a whole block tail [value-ops..., br]: b consecutive
	// run constituents at cfunc.runs[a:], then an unconditional branch
	// (accounting id2/cyc2, edge ex0) — one dispatch per loop-body block.
	// Run purity is marked like xRun (c/cyc).
	xRunBr
	// xRunCmpBr fuses [value-ops..., cmp, condbr]: b run constituents at
	// cfunc.runs[a:], the comparison word stored as an extra constituent
	// at cfunc.runs[a+b] (carrying its own dst/a/b/cyc/id/tbits), and the
	// conditional branch in the header (id2/cyc2, edges ex0/ex1). The
	// branch re-reads the written comparison result, so a fault flip of
	// the cmp still redirects control.
	xRunCmpBr
	// xGAGep and xGepLoad are paired run constituents (they appear only
	// inside run side tables, never at dispatch level): two adjacent
	// dependent ops — globaladdr feeding gep, gep feeding load, the two
	// hottest mined 2-grams — executed as one constituent. The first
	// half keeps the word's usual fields (dst/a/b/id/cyc/tbits); the
	// second half's destination, accounting, and flip width live in
	// ex0/id2/cyc2/c. Both halves remain distinct dynamic instructions
	// and fault sites.
	xGAGep
	xGepLoad

	xNumOps int = iota + int(xTrapOp) + 1
)

// maxRunLen caps one xRun's constituent count: it bounds the int16 cycle
// sum (worst case 50 cycles/op) and the bulk hang-budget pre-check window.
const maxRunLen = 32

// runOp reports whether op may be a constituent of an xRun: a
// straight-line value op whose execution touches only the frame's
// register file, machine memory, and the runner's global tables. Control
// transfer, frame and thread manipulation, output, and fused ops stay
// individual words.
func runOp(op xop) bool {
	switch op {
	case xAdd, xSub, xMul, xDiv, xRem, xAnd, xOr, xXor, xShl, xShr,
		xFAdd, xFSub, xFMul, xFDiv,
		xICmpEQ, xICmpNE, xICmpLT, xICmpLE, xICmpGT, xICmpGE,
		xFCmpEQ, xFCmpNE, xFCmpLT, xFCmpLE, xFCmpGT, xFCmpGE,
		xIToF, xFToI, xLoad, xStore, xGEP, xGlobalAddr, xArrayLen,
		xSelect, xSqrt, xFabs, xExp, xLog, xSin, xCos, xPow, xFloor, xIAbs,
		xConst:
		return true
	}
	return false
}

// pureOp reports whether op can never trap: a run of pure ops accounts
// its dynamic instructions and cycles in one bulk update (after a single
// hang-budget pre-check) instead of per constituent.
func pureOp(op xop) bool {
	switch op {
	case xDiv, xRem, xFToI, xLoad, xStore:
		return false
	}
	return runOp(op)
}

// cmpOp reports whether op is a comparison eligible for cmp+br fusion.
func cmpOp(op xop) bool { return op >= xICmpEQ && op <= xFCmpGE }

// pairOp reports whether op is a paired run constituent carrying two
// dynamic instructions (second half in ex0/id2/cyc2/c).
func pairOp(op xop) bool { return op == xGAGep || op == xGepLoad }

// xopNames spells image and compiled opcodes for mining reports and
// diagnostics.
var xopNames = map[xop]string{
	xAdd: "add", xSub: "sub", xMul: "mul", xDiv: "div", xRem: "rem",
	xAnd: "and", xOr: "or", xXor: "xor", xShl: "shl", xShr: "shr",
	xFAdd: "fadd", xFSub: "fsub", xFMul: "fmul", xFDiv: "fdiv",
	xICmpEQ: "icmp.eq", xICmpNE: "icmp.ne", xICmpLT: "icmp.lt",
	xICmpLE: "icmp.le", xICmpGT: "icmp.gt", xICmpGE: "icmp.ge",
	xFCmpEQ: "fcmp.eq", xFCmpNE: "fcmp.ne", xFCmpLT: "fcmp.lt",
	xFCmpLE: "fcmp.le", xFCmpGT: "fcmp.gt", xFCmpGE: "fcmp.ge",
	xIToF: "itof", xFToI: "ftoi",
	xAlloca: "alloca", xLoad: "load", xStore: "store", xGEP: "gep",
	xGlobalAddr: "globaladdr", xArrayLen: "arraylen",
	xBr: "br", xCondBr: "condbr", xRet: "ret", xRetVoid: "retvoid",
	xEntryPhi: "entryphi", xLonePhi: "lonephi",
	xCall: "call", xSelect: "select", xSpawn: "spawn", xJoin: "join",
	xDetect: "detect", xEmit: "emit",
	xSqrt: "sqrt", xFabs: "fabs", xExp: "exp", xLog: "log",
	xSin: "sin", xCos: "cos", xPow: "pow", xFloor: "floor", xIAbs: "iabs",
	xCmpEqDetect: "cmpeq.detect", xTrapOp: "trap",
	xRun: "run", xCmpBr: "cmp.br", xConst: "const",
	xRunBr: "run.br", xRunCmpBr: "run.cmp.br",
	xGAGep: "ga.gep", xGepLoad: "gep.load",
}

func xopName(op xop) string {
	if n, ok := xopNames[op]; ok {
		return n
	}
	return fmt.Sprintf("xop(%d)", uint8(op))
}

// MinedSeq is one opcode n-gram observed in the image's straight-line
// code, weighted by how often its enclosing block executed.
type MinedSeq struct {
	Ops     string // space-joined opcode names, e.g. "load fmul fadd"
	Len     int
	Static  int   // occurrences in the static code
	Dynamic int64 // occurrences weighted by block execution count
}

// MineSequences scans every block of img for consecutive fusable value
// ops and returns the n-grams of length 2..maxLen ordered by descending
// dynamic weight (ties by opcode string). prof supplies block execution
// counts from a profiled run; a nil prof weights every block once, so the
// ranking is purely static. The compiled tier's templates are parametric,
// so the miner validates coverage rather than selecting patterns; tests
// assert the fused templates dominate the mined hot stream.
func MineSequences(img *Image, prof *Profile, maxLen int) []MinedSeq {
	if maxLen < 2 {
		maxLen = 2
	}
	acc := make(map[string]*MinedSeq)
	for _, ifn := range img.funcs {
		if len(ifn.blockOff) == 0 {
			continue
		}
		for bi := 0; bi+1 < len(ifn.blockOff); bi++ {
			weight := int64(1)
			if prof != nil {
				weight = prof.BlockCount[img.mod.GlobalBlockIndex(ifn.fn.Index, bi)]
				if weight == 0 {
					continue
				}
			}
			code := ifn.code[ifn.blockOff[bi]:ifn.blockOff[bi+1]]
			// Maximal fusable segments, then every window of 2..maxLen.
			for lo := 0; lo < len(code); {
				if !runOp(code[lo].op) {
					lo++
					continue
				}
				hi := lo
				for hi < len(code) && runOp(code[hi].op) {
					hi++
				}
				for n := 2; n <= maxLen; n++ {
					for s := lo; s+n <= hi; s++ {
						key := ""
						for k := s; k < s+n; k++ {
							if k > s {
								key += " "
							}
							key += xopName(code[k].op)
						}
						m := acc[key]
						if m == nil {
							m = &MinedSeq{Ops: key, Len: n}
							acc[key] = m
						}
						m.Static++
						m.Dynamic += weight
					}
				}
				lo = hi
			}
		}
	}
	out := make([]MinedSeq, 0, len(acc))
	for _, m := range acc {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dynamic != out[j].Dynamic {
			return out[i].Dynamic > out[j].Dynamic
		}
		return out[i].Ops < out[j].Ops
	})
	return out
}

// FuseStats summarizes one module's compilation.
type FuseStats struct {
	ImageWords  int // iwords in the source image
	Words       int // iwords in the compiled stream (excluding run tables)
	Runs        int // xRun superinstructions emitted
	RunOps      int // constituent ops folded into runs
	CmpBr       int // fused compare+branch words
	CmpEqDetect int // fused duplication checks inherited from the image
	Folds       int // known-bits constant specializations (spec stream)
}

// Stats returns the compilation summary.
func (c *Compiled) Stats() FuseStats { return c.stats }

// FusedDynamicFraction returns the fraction of prof's dynamic instruction
// stream that executed inside fused words (runs, cmp+br, cmp-eq+detect):
// the coverage metric the mining tests gate.
func (c *Compiled) FusedDynamicFraction(prof *Profile) float64 {
	var total, fused int64
	for _, n := range prof.InstrCount {
		total += n
	}
	if total == 0 {
		return 0
	}
	for _, cf := range c.funcs {
		for i := range cf.code {
			w := &cf.code[i]
			switch w.op {
			case xRun:
				for _, cw := range cf.runs[w.a : w.a+w.b] {
					fused += prof.InstrCount[cw.id]
					if pairOp(cw.op) {
						fused += prof.InstrCount[cw.id2]
					}
				}
			case xRunBr:
				for _, cw := range cf.runs[w.a : w.a+w.b] {
					fused += prof.InstrCount[cw.id]
					if pairOp(cw.op) {
						fused += prof.InstrCount[cw.id2]
					}
				}
				fused += prof.InstrCount[w.id2]
			case xRunCmpBr:
				// b run constituents plus the cmp word at runs[a+b],
				// plus the branch half in the header.
				for _, cw := range cf.runs[w.a : w.a+w.b+1] {
					fused += prof.InstrCount[cw.id]
					if pairOp(cw.op) {
						fused += prof.InstrCount[cw.id2]
					}
				}
				fused += prof.InstrCount[w.id2]
			case xCmpBr, xCmpEqDetect:
				fused += prof.InstrCount[w.id] + prof.InstrCount[w.id2]
			}
		}
	}
	return float64(fused) / float64(total)
}
