package interp_test

import (
	"math/rand"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sid"
)

// The differential suite pins the pre-decoded image engine AND the
// compiled superinstruction engine to the legacy reference stepper: for
// every benchmark program (and fault-injected and SID-protected variants)
// all three engines must produce bit-identical results and dynamic
// profiles. Any divergence in instruction accounting, phi semantics, trap
// ordering, flip placement, fusion accounting, or known-bits
// specialization shows up here.

func runEngine(t *testing.T, m *ir.Module, bind interp.Binding, cfg interp.Config,
	f *interp.Fault, eng interp.Engine) (interp.Result, *interp.Profile) {
	t.Helper()
	cfg.Engine = eng
	prof := interp.NewProfile(m)
	r := interp.NewRunner(m, cfg)
	var ff *interp.Fault
	if f != nil {
		cp := *f
		ff = &cp
	}
	return r.Run(bind, ff, prof), prof
}

func eqInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffEngines lists the oracle engine (legacy, first) and every engine
// pinned against it.
var diffEngines = []interp.Engine{interp.EngineLegacy, interp.EngineImage, interp.EngineCompiled}

// diffRun executes (m, bind, f) under all three engines and fails the
// test on any observable difference. It returns the legacy result.
func diffRun(t *testing.T, name string, m *ir.Module, bind interp.Binding,
	cfg interp.Config, f *interp.Fault) interp.Result {
	t.Helper()
	lres, lprof := runEngine(t, m, bind, cfg, f, interp.EngineLegacy)
	for _, eng := range diffEngines[1:] {
		ires, iprof := runEngine(t, m, bind, cfg, f, eng)

		if lres.Status != ires.Status || lres.Trap != ires.Trap {
			t.Fatalf("%s: status/trap diverge: legacy %v %q, %v %v %q",
				name, lres.Status, lres.Trap, eng, ires.Status, ires.Trap)
		}
		if lres.DynInstrs != ires.DynInstrs || lres.Cycles != ires.Cycles {
			t.Fatalf("%s: accounting diverges: legacy dyn=%d cyc=%d, %v dyn=%d cyc=%d",
				name, lres.DynInstrs, lres.Cycles, eng, ires.DynInstrs, ires.Cycles)
		}
		if len(lres.Output) != len(ires.Output) {
			t.Fatalf("%s: output length diverges vs %v: %d vs %d", name, eng, len(lres.Output), len(ires.Output))
		}
		for i := range lres.Output {
			if lres.Output[i] != ires.Output[i] {
				t.Fatalf("%s: output word %d diverges vs %v: %#x vs %#x", name, i, eng, lres.Output[i], ires.Output[i])
			}
		}
		if lres.OutputHash != ires.OutputHash {
			t.Fatalf("%s: output hash diverges vs %v: %#x vs %#x", name, eng, lres.OutputHash, ires.OutputHash)
		}
		if !eqInt64s(lprof.InstrCount, iprof.InstrCount) {
			t.Fatalf("%s: InstrCount profiles diverge vs %v", name, eng)
		}
		if !eqInt64s(lprof.InstrCycles, iprof.InstrCycles) {
			t.Fatalf("%s: InstrCycles profiles diverge vs %v", name, eng)
		}
		if !eqInt64s(lprof.BlockCount, iprof.BlockCount) {
			t.Fatalf("%s: BlockCount profiles diverge vs %v", name, eng)
		}
		if !eqInt64s(lprof.EdgeHits, iprof.EdgeHits) {
			t.Fatalf("%s: EdgeHits profiles diverge vs %v", name, eng)
		}
	}
	return lres
}

func diffBenchmarks(t *testing.T) []*benchprog.Benchmark {
	all := benchprog.Eleven()
	if testing.Short() {
		return all[:3]
	}
	return all
}

func TestEngineDifferentialBenchprogs(t *testing.T) {
	for _, b := range diffBenchmarks(t) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			m := b.MustModule()
			if interp.Lower(m).LegacyOnly() {
				t.Fatalf("%s decodes legacy-only; image engine not exercised", b.Name)
			}
			res := diffRun(t, b.Name, m, b.Bind(b.Reference), b.ExecConfig(), nil)
			if res.Status != interp.StatusOK {
				t.Fatalf("reference run not OK: %v (%s)", res.Status, res.Trap)
			}
			if res.OutputHash == 0 {
				t.Fatal("real run produced zero OutputHash; fast-path guard would be bypassed")
			}
		})
	}
}

func TestEngineDifferentialFaults(t *testing.T) {
	nSites := 8
	if testing.Short() {
		nSites = 2
	}
	for _, b := range diffBenchmarks(t) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			m := b.MustModule()
			bind := b.Bind(b.Reference)
			cfg := b.ExecConfig()
			cfg.Engine = interp.EngineLegacy
			g, err := fault.RunGolden(m, bind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := fault.NewSampler(m, g, false)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < nSites; i++ {
				f, ok := s.RandomSite(rng)
				if !ok {
					t.Fatal("no injectable sites")
				}
				diffRun(t, b.Name, m, bind, b.ExecConfig(), &f)
			}
		})
	}
}

// Full duplication inserts the icmp-eq + detect pairs that the image engine
// fuses into a single opcode (in spawn-free modules); this pins the fused
// path, including detection halts under injected faults, to the reference.
func TestEngineDifferentialProtected(t *testing.T) {
	nSites := 6
	if testing.Short() {
		nSites = 2
	}
	for _, b := range diffBenchmarks(t) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prot := sid.FullDuplication(b.MustModule())
			bind := b.Bind(b.Reference)
			res := diffRun(t, b.Name+"/dup", prot, bind, b.ExecConfig(), nil)
			if res.Status != interp.StatusOK {
				t.Fatalf("protected reference run not OK: %v (%s)", res.Status, res.Trap)
			}
			cfg := b.ExecConfig()
			cfg.Engine = interp.EngineLegacy
			g, err := fault.RunGolden(prot, bind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := fault.NewSampler(prot, g, false)
			rng := rand.New(rand.NewSource(7))
			detected := false
			for i := 0; i < nSites; i++ {
				f, ok := s.RandomSite(rng)
				if !ok {
					t.Fatal("no injectable sites")
				}
				if diffRun(t, b.Name+"/dup", prot, bind, b.ExecConfig(), &f).Status == interp.StatusDetected {
					detected = true
				}
			}
			_ = detected // detection is input-dependent; identity is what's pinned
		})
	}
}

// TestCompiledFusionCoverage pins the mining/fusion loop on a real
// benchmark: sequence mining over an edge profile must surface hot
// straight-line opcode runs, the compiler must fuse them, and the fused
// words must cover a meaningful share of the dynamic instruction stream
// (the whole point of the tier — if coverage collapses, the speedup is
// gone even though bit-identity still holds).
func TestCompiledFusionCoverage(t *testing.T) {
	b, ok := benchprog.ByName("hpccg")
	if !ok {
		t.Fatal("benchmark lookup failed")
	}
	m := b.MustModule()
	_, prof := runEngine(t, m, b.Bind(b.Reference), b.ExecConfig(), nil, interp.EngineImage)

	img := interp.Lower(m)
	seqs := interp.MineSequences(img, prof, 8)
	if len(seqs) == 0 {
		t.Fatal("no fusable sequences mined from a numeric kernel")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i].Dynamic > seqs[i-1].Dynamic {
			t.Fatalf("mined sequences not sorted by dynamic weight: %+v after %+v", seqs[i], seqs[i-1])
		}
	}

	c := interp.Compile(img)
	st := c.Stats()
	if st.Runs == 0 || st.CmpBr == 0 {
		t.Fatalf("hpccg compiled without fusion: %+v", st)
	}
	if frac := c.FusedDynamicFraction(prof); frac < 0.25 {
		t.Fatalf("fused ops cover only %.1f%% of the dynamic stream, want >= 25%%", 100*frac)
	} else {
		t.Logf("fused dynamic coverage: %.1f%% (stats %+v)", 100*frac, st)
	}
}

// A whole campaign table (benign/SDC/crash/hang/detected counts at a fixed
// seed) must be identical under all three engines.
func TestEngineDifferentialCampaign(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	b, ok := benchprog.ByName(diffBenchmarks(t)[0].Name)
	if !ok {
		t.Fatal("benchmark lookup failed")
	}
	m := b.MustModule()
	bind := b.Bind(b.Reference)
	var tables [3]fault.CampaignResult
	for i, eng := range diffEngines {
		cfg := b.ExecConfig()
		cfg.Engine = eng
		g, err := fault.RunGolden(m, bind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := &fault.Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: g, Workers: 1}
		tables[i] = c.Run(trials, 1234)
	}
	for i := 1; i < len(tables); i++ {
		if tables[0] != tables[i] {
			t.Fatalf("campaign tables diverge:\nlegacy: %+v\n%v: %+v", tables[0], diffEngines[i], tables[i])
		}
	}
}
