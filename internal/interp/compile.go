package interp

import (
	"sync"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// This file implements the compile step of the third execution tier: it
// rewrites a decoded Image into superinstruction streams executed by the
// direct-threaded dispatch loop in dispatch.go.
//
// Three rewrites are performed, all pinned bit-identical to the image and
// legacy engines by the three-way differential suite (diff_test.go):
//
//   - run fusion: maximal straight-line sequences of value ops (runOp)
//     collapse into one xRun word whose constituents live in a side
//     table. One dispatch executes the whole run; a pure run (no
//     constituent can trap) additionally accounts its dynamic
//     instructions and cycles in bulk after a single hang-budget
//     pre-check, which is where the campaign-loop speedup comes from.
//   - cmp+br fusion: a comparison immediately feeding the block's
//     conditional branch fuses into one xCmpBr word (generalizing the
//     image's one-off xCmpEqDetect fusion, which is inherited verbatim).
//   - known-bits specialization: ops whose results internal/analysis
//     proves constant on fault-free runs become xConst pool moves — but
//     only in a second code stream (cfunc.spec) selected when no fault is
//     armed. Exact streams keep the original operand reads, because a
//     flip upstream of a folded op must still propagate through it.
//
// Fusion changes dispatch granularity (n instructions per quantum step),
// which is observable through the round-robin thread schedule, so — like
// xCmpEqDetect — it is disabled for modules that spawn threads. Cycle
// accounting, profile counters, hang-budget boundaries, trap points, and
// fault-site numbering are preserved exactly in all streams.

// CompilerVersion names the compile-step revision. It participates in the
// compiled-artifact cache key exactly like the pipeline store's task-kind
// versions, so a changed compiler never serves stale artifacts keyed by
// an unchanged module.
const CompilerVersion = "superinstr/v1"

// cfunc is one compiled function: two code streams of identical length
// and offsets (so edge programs retarget once), plus the run side tables
// and the (possibly extended) constant pool shared by both.
type cfunc struct {
	ifn      *ifunc
	code     []iword // exact stream: runs with a fault armed
	spec     []iword // specialized stream: fault-free runs (aliases code when no folds)
	runs     []iword // xRun constituents of code
	runsSpec []iword // xRun constituents of spec (aliases runs when no folds)
	consts   []uint64
	nSlots   int
	entry    []int32 // per-block edge-entry offsets into code/spec
}

// Compiled is a fully compiled module: the source image plus compiled
// functions and retargeted edge programs.
type Compiled struct {
	img       *Image
	funcs     []*cfunc
	edgeProgs []edgeProg
	stats     FuseStats
}

// Image returns the source image the module was compiled from.
func (c *Compiled) Image() *Image { return c.img }

// Compile rewrites img into superinstruction form. A legacy-only image
// compiles to an empty artifact; the Runner falls back to the reference
// stepper exactly as the image engine does.
func Compile(img *Image) *Compiled {
	c := &Compiled{img: img}
	if img.legacyOnly {
		return c
	}
	folds := foldableValues(img)
	for _, ifn := range img.funcs {
		c.funcs = append(c.funcs, c.compileFunc(ifn, folds))
	}

	// Retarget the edge programs into the compiled streams. Phi moves,
	// trap/lone classification, and destination blocks are semantic facts
	// of the IR and carry over unchanged; only the resume offset moves.
	c.edgeProgs = append([]edgeProg(nil), img.edgeProgs...)
	for fi, ifn := range img.funcs {
		f := ifn.fn
		for bi, blk := range f.Blocks {
			t := blk.Terminator()
			if t == nil || (t.Op != ir.OpBr && t.Op != ir.OpCondBr) {
				continue
			}
			from := img.mod.GlobalBlockIndex(f.Index, bi)
			for _, s := range t.Succs {
				if s < 0 || s >= len(f.Blocks) {
					continue
				}
				eid := img.edges.Lookup(from, img.mod.GlobalBlockIndex(f.Index, s))
				c.edgeProgs[eid].target = c.funcs[fi].entry[s]
			}
		}
	}
	return c
}

// foldableValues computes, per static instruction ID, the constant the
// known-bits lattice proves the instruction computes on every fault-free
// execution. Only side-effect-free, trap-free ops whose destination has a
// single static definition participate (see analysis.BuildConstFacts).
func foldableValues(img *Image) map[int32]uint64 {
	folds := make(map[int32]uint64)
	for _, f := range img.mod.Funcs {
		facts := analysis.BuildConstFacts(f, analysis.BuildCFG(f))
		if len(facts.Known) == 0 {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.HasResult() {
					continue
				}
				switch in.Op {
				case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
					ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSelect:
					if v, ok := facts.Known[in.Dst]; ok {
						folds[int32(in.ID)] = v
					}
				}
			}
		}
	}
	return folds
}

// compileFunc rewrites one function.
func (c *Compiled) compileFunc(ifn *ifunc, folds map[int32]uint64) *cfunc {
	cf := &cfunc{
		ifn:    ifn,
		consts: append([]uint64(nil), ifn.consts...),
	}
	nB := len(ifn.blockOff) - 1
	c.stats.CmpEqDetect += countOps(ifn.code, xCmpEqDetect)
	c.stats.ImageWords += len(ifn.code)

	if c.img.hasSpawn {
		// Fusion would change how many instructions one quantum dispatch
		// step executes, which the round-robin thread schedule observes;
		// share the image stream verbatim (dispatch handles every image
		// opcode) and keep only the specialization rewrite below.
		cf.code = ifn.code
		cf.entry = ifn.edgeEntry
	} else {
		cf.entry = make([]int32, nB)
		var buf []iword
		// pairSeg rewrites adjacent dependent constituents into paired
		// words (globaladdr→gep, gep→load), halving the dispatch loop's
		// iterations over the hottest mined 2-grams. Both halves keep
		// their own accounting and flip sites (second half in
		// ex0/id2/cyc2/c).
		pairSeg := func(seg []iword) []iword {
			out := make([]iword, 0, len(seg))
			for i := 0; i < len(seg); i++ {
				w := seg[i]
				if i+1 < len(seg) {
					nx := seg[i+1]
					if w.op == xGlobalAddr && nx.op == xGEP &&
						(nx.a == w.dst || nx.b == w.dst) {
						idx := nx.b
						if nx.a != w.dst {
							idx = nx.a // gep addition commutes
						}
						out = append(out, iword{
							op: xGAGep, a: w.a, dst: w.dst,
							id: w.id, cyc: w.cyc, tbits: w.tbits,
							b: idx, ex0: nx.dst, id2: nx.id, cyc2: nx.cyc,
							c: int32(nx.tbits), ex1: -1,
						})
						i++
						continue
					}
					if w.op == xGEP && nx.op == xLoad && nx.a == w.dst {
						out = append(out, iword{
							op: xGepLoad, a: w.a, b: w.b, dst: w.dst,
							id: w.id, cyc: w.cyc, tbits: w.tbits,
							ex0: nx.dst, id2: nx.id, cyc2: nx.cyc,
							c: int32(nx.tbits), ex1: -1,
						})
						i++
						continue
					}
				}
				out = append(out, w)
			}
			return out
		}
		// runHdr moves seg into the run side table (pairing adjacent
		// dependent constituents) and returns a header word for one of
		// the run-family opcodes: a = runs offset, b = constituent word
		// count, bfn = original op count, id/dst = first/last op id
		// (ascending, for the dispatcher's fault-range check), cyc = the
		// run's total cycle sum. c marks fast-eligible runs — every
		// constituent pure or a load/store, whose trap-time accounting is
		// a recomputable prefix — which the dispatcher may execute with
		// bulk accounting. Runs containing div/rem/ftoi, or with
		// non-monotonic ids, take the general per-op path.
		runHdr := func(op xop, seg []iword) iword {
			fast := true
			cyc := int16(0)
			for i := range seg {
				switch seg[i].op {
				case xDiv, xRem, xFToI:
					fast = false
				}
				if i > 0 && seg[i].id < seg[i-1].id {
					// The dispatcher's fault-range check assumes ascending
					// constituent ids; demote a non-monotonic run.
					fast = false
				}
				cyc += seg[i].cyc
			}
			paired := pairSeg(seg)
			hdr := iword{
				op: op, bfn: uint8(len(seg)), dst: seg[len(seg)-1].id,
				a: int32(len(cf.runs)), b: int32(len(paired)),
				id: seg[0].id, cyc: cyc, ex0: -1, ex1: -1,
			}
			if fast {
				hdr.c = 1
			}
			cf.runs = append(cf.runs, paired...)
			c.stats.Runs++
			c.stats.RunOps += len(seg)
			return hdr
		}
		flush := func() {
			for len(buf) >= 2 {
				seg := buf
				if len(seg) > maxRunLen {
					seg = seg[:maxRunLen]
				}
				cf.code = append(cf.code, runHdr(xRun, seg))
				buf = buf[len(seg):]
			}
			if len(buf) == 1 {
				cf.code = append(cf.code, buf[0])
			}
			buf = buf[:0]
		}
		// flushTo reduces buf to at most maxRunLen words by emitting
		// leading full-length xRun chunks, leaving the tail to fuse into
		// the block terminator.
		flushTo := func() {
			for len(buf) > maxRunLen {
				cf.code = append(cf.code, runHdr(xRun, buf[:maxRunLen]))
				buf = buf[maxRunLen:]
			}
		}
		for bi := 0; bi < nB; bi++ {
			lo, hi := ifn.blockOff[bi], ifn.blockOff[bi+1]
			// An entry-block phi group runs at function entry, before the
			// block's edge-entry offset; copy it verbatim so frame entry
			// at pc 0 still executes it step by step.
			for off := lo; off < ifn.edgeEntry[bi]; off++ {
				cf.code = append(cf.code, ifn.code[off])
			}
			cf.entry[bi] = int32(len(cf.code))
			for off := ifn.edgeEntry[bi]; off < hi; off++ {
				w := ifn.code[off]
				if runOp(w.op) {
					buf = append(buf, w)
					continue
				}
				if w.op == xCondBr && len(buf) > 0 {
					last := buf[len(buf)-1]
					if cmpOp(last.op) && last.dst == w.a {
						buf = buf[:len(buf)-1]
						if len(buf) == 0 {
							cf.code = append(cf.code, iword{
								op: xCmpBr, bfn: uint8(last.op), tbits: last.tbits,
								cyc: last.cyc, cyc2: w.cyc,
								dst: last.dst, a: last.a, b: last.b,
								id: last.id, id2: w.id,
								ex0: w.ex0, ex1: w.ex1,
							})
							c.stats.CmpBr++
							continue
						}
						// Whole block tail in one word: the run, then the
						// comparison (stored as an extra constituent at
						// runs[a+b]), then the branch in the header.
						flushTo()
						hdr := runHdr(xRunCmpBr, buf)
						cf.runs = append(cf.runs, last)
						hdr.cyc2, hdr.id2 = w.cyc, w.id
						hdr.ex0, hdr.ex1 = w.ex0, w.ex1
						cf.code = append(cf.code, hdr)
						c.stats.CmpBr++
						buf = buf[:0]
						continue
					}
				}
				if w.op == xBr && len(buf) > 0 {
					// Block tail [value-ops..., br] in one word.
					flushTo()
					hdr := runHdr(xRunBr, buf)
					hdr.cyc2, hdr.id2 = w.cyc, w.id
					hdr.ex0 = w.ex0
					cf.code = append(cf.code, hdr)
					buf = buf[:0]
					continue
				}
				flush()
				cf.code = append(cf.code, w)
			}
			flush()
		}
	}
	c.stats.Words += len(cf.code)

	// Specialized stream: clone and rewrite in place (never insert or
	// delete, so both streams share offsets and edge programs).
	cf.spec, cf.runsSpec = cf.code, cf.runs
	if len(folds) > 0 {
		constSlot := make(map[uint64]int32)
		for i, v := range cf.consts {
			constSlot[v] = int32(ifn.nRegs + i)
		}
		intern := func(v uint64) int32 {
			s, ok := constSlot[v]
			if !ok {
				s = int32(ifn.nRegs + len(cf.consts))
				constSlot[v] = s
				cf.consts = append(cf.consts, v)
			}
			return s
		}
		rewrite := func(ws []iword) []iword {
			var out []iword
			for i := range ws {
				w := &ws[i]
				v, ok := folds[w.id]
				if !ok || !foldableXop(w.op) {
					continue
				}
				if out == nil {
					out = append([]iword(nil), ws...)
				}
				nw := &out[i]
				nw.op, nw.a, nw.b, nw.c = xConst, intern(v), 0, 0
				c.stats.Folds++
			}
			if out == nil {
				return ws
			}
			return out
		}
		cf.spec = rewrite(cf.code)
		cf.runsSpec = rewrite(cf.runs)
	}
	cf.nSlots = ifn.nRegs + len(cf.consts)
	return cf
}

// foldableXop mirrors foldableValues' opcode set at the iword level, so a
// fused-detect comparison (whose id is an icmp) is never rewritten.
func foldableXop(op xop) bool {
	switch op {
	case xAdd, xSub, xMul, xAnd, xOr, xXor, xShl, xShr, xSelect:
		return true
	}
	return false
}

func countOps(ws []iword, op xop) int {
	n := 0
	for i := range ws {
		if ws[i].op == op {
			n++
		}
	}
	return n
}

// compiledCacheCap bounds the compiled-artifact cache, mirroring the
// decoded-image cache.
const compiledCacheCap = 128

type compiledCacheKey struct {
	mod      *ir.Module
	version  uint64
	compiler string
}

var compCache = struct {
	sync.Mutex
	m     map[compiledCacheKey]*Compiled
	order []compiledCacheKey // FIFO eviction order
}{m: make(map[compiledCacheKey]*Compiled)}

// compiledOf returns the (process-wide, cached) compiled artifact of m.
// The key is the module's content identity (pointer + finalize version,
// as for images) plus CompilerVersion — the same shape as the pipeline
// store's keys (content hash + task version), so a compiler revision
// invalidates artifacts without invalidating images.
func compiledOf(m *ir.Module) *Compiled {
	key := compiledCacheKey{mod: m, version: m.Version(), compiler: CompilerVersion}
	compCache.Lock()
	defer compCache.Unlock()
	if c, ok := compCache.m[key]; ok {
		return c
	}
	c := Compile(imageOf(m))
	compCache.m[key] = c
	compCache.order = append(compCache.order, key)
	if len(compCache.order) > compiledCacheCap {
		old := compCache.order[0]
		compCache.order = compCache.order[1:]
		delete(compCache.m, old)
	}
	return c
}
