package interp

import (
	"sync/atomic"

	"repro/internal/obs"
)

// runCounters caches registry handles so the per-run accounting is a few
// atomic adds, never a map lookup. One struct per SetObs call.
type runCounters struct {
	runs       *obs.Counter
	dynInstrs  *obs.Counter
	runsImage  *obs.Counter
	runsLegacy *obs.Counter
	profRuns   *obs.Counter
	profDyn    *obs.Counter
	profEdges  *obs.Counter
}

// obsCounters is the process-global observability hook, mirroring the
// DefaultEngine precedent: Runner configs are hashed into content-addressed
// cache keys, so an observational registry must not live on them.
var obsCounters atomic.Pointer[runCounters]

// SetObs points the interpreter's run accounting at reg (nil detaches).
// Purely observational: execution results are bit-identical either way.
// Safe for concurrent use with running interpreters.
func SetObs(reg *obs.Registry) {
	if reg == nil {
		obsCounters.Store(nil)
		return
	}
	obsCounters.Store(&runCounters{
		runs:       reg.Counter("interp.runs"),
		dynInstrs:  reg.Counter("interp.dyn_instrs"),
		runsImage:  reg.Counter("interp.runs.image"),
		runsLegacy: reg.Counter("interp.runs.legacy"),
		profRuns:   reg.Counter("interp.profiled.runs"),
		profDyn:    reg.Counter("interp.profiled.dyn_instrs"),
		profEdges:  reg.Counter("interp.profiled.edge_hits"),
	})
}

// recordRun folds one completed run into the registry. edgeBase is the
// profile's edge-hit total before the run, so reused profiles report only
// this run's traversals.
func (rc *runCounters) recordRun(res *Result, legacy bool, prof *Profile, edgeBase int64) {
	rc.runs.Inc()
	rc.dynInstrs.Add(res.DynInstrs)
	if legacy {
		rc.runsLegacy.Inc()
	} else {
		rc.runsImage.Inc()
	}
	if prof != nil {
		rc.profRuns.Inc()
		rc.profDyn.Add(res.DynInstrs)
		rc.profEdges.Add(edgeTotal(prof) - edgeBase)
	}
}

// edgeTotal sums a profile's edge traversal counts (static edge tables are
// small, so the scan is cheap relative to a profiled run).
func edgeTotal(prof *Profile) int64 {
	var n int64
	for _, h := range prof.EdgeHits {
		n += h
	}
	return n
}
