package interp

import (
	"sync/atomic"

	"repro/internal/obs"
)

// runCounters caches registry handles so the per-run accounting is a few
// atomic adds, never a map lookup. One struct per SetObs call. The struct
// is immutable after construction: every field is written before the
// single atomic publish in SetObs and only read afterwards, so readers
// can never observe a partially-initialized value.
type runCounters struct {
	runs         *obs.Counter
	dynInstrs    *obs.Counter
	runsImage    *obs.Counter
	runsLegacy   *obs.Counter
	runsCompiled *obs.Counter
	profRuns     *obs.Counter
	profDyn      *obs.Counter
	profEdges    *obs.Counter
}

// obsCounters is the process-global observability hook, mirroring the
// DefaultEngine precedent: Runner configs are hashed into content-addressed
// cache keys, so an observational registry must not live on them.
//
// Concurrency contract (exercised by TestSetObsConcurrentFlip under
// -race): the pointer is swapped with a single atomic store and loaded
// exactly once per run (run() in interp.go), so a run observes either the
// old registry or the new one in full — never a torn mix — and a counter
// update can never follow a detach into freed state. Campaign workers
// flipping SetObs mid-campaign therefore only affect which registry
// accumulates a given run, never the run's result.
var obsCounters atomic.Pointer[runCounters]

// SetObs points the interpreter's run accounting at reg (nil detaches).
// Purely observational: execution results are bit-identical either way.
// Safe for concurrent use with running interpreters; every engine tier
// (legacy, image, compiled) consults the same hook.
func SetObs(reg *obs.Registry) {
	if reg == nil {
		obsCounters.Store(nil)
		return
	}
	obsCounters.Store(&runCounters{
		runs:         reg.Counter("interp.runs"),
		dynInstrs:    reg.Counter("interp.dyn_instrs"),
		runsImage:    reg.Counter("interp.runs.image"),
		runsLegacy:   reg.Counter("interp.runs.legacy"),
		runsCompiled: reg.Counter("interp.runs.compiled"),
		profRuns:     reg.Counter("interp.profiled.runs"),
		profDyn:      reg.Counter("interp.profiled.dyn_instrs"),
		profEdges:    reg.Counter("interp.profiled.edge_hits"),
	})
}

// recordRun folds one completed run into the registry. edgeBase is the
// profile's edge-hit total before the run, so reused profiles report only
// this run's traversals.
func (rc *runCounters) recordRun(res *Result, eng Engine, prof *Profile, edgeBase int64) {
	rc.runs.Inc()
	rc.dynInstrs.Add(res.DynInstrs)
	switch eng {
	case EngineLegacy:
		rc.runsLegacy.Inc()
	case EngineCompiled:
		rc.runsCompiled.Inc()
	default:
		rc.runsImage.Inc()
	}
	if prof != nil {
		rc.profRuns.Inc()
		rc.profDyn.Add(res.DynInstrs)
		rc.profEdges.Add(edgeTotal(prof) - edgeBase)
	}
}

// edgeTotal sums a profile's edge traversal counts (static edge tables are
// small, so the scan is cheap relative to a profiled run).
func edgeTotal(prof *Profile) int64 {
	var n int64
	for _, h := range prof.EdgeHits {
		n += h
	}
	return n
}
