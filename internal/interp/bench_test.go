package interp_test

import (
	"testing"

	"repro/internal/benchprog"
	"repro/internal/interp"
)

// Microbenchmarks for the three specialized run loops, each under the
// legacy reference stepper, the pre-decoded image engine, and the
// compiled superinstruction engine. `make bench` runs these and appends
// the results to BENCH_interp.json (and the compiled subset to
// BENCH_compiled.json) so engine regressions are visible across commits.

func benchSetup(b *testing.B) (map[string]*interp.Runner, interp.Binding, *benchprog.Benchmark) {
	b.Helper()
	bm, ok := benchprog.ByName("hpccg")
	if !ok {
		b.Fatal("hpccg benchmark missing")
	}
	m := bm.MustModule()
	runners := make(map[string]*interp.Runner, 3)
	for _, eng := range []interp.Engine{interp.EngineLegacy, interp.EngineImage, interp.EngineCompiled} {
		cfg := bm.ExecConfig()
		cfg.Engine = eng
		runners[eng.String()] = interp.NewRunner(m, cfg)
	}
	return runners, bm.Bind(bm.Reference), bm
}

var benchEngines = []string{"legacy", "image", "compiled"}

func BenchmarkRunPlain(b *testing.B) {
	runners, bind, bm := benchSetup(b)
	for _, eng := range benchEngines {
		b.Run(eng, func(b *testing.B) { benchRunBound(b, runners[eng], bind, nil, false, bm) })
	}
}

func BenchmarkRunProfiled(b *testing.B) {
	runners, bind, bm := benchSetup(b)
	for _, eng := range benchEngines {
		b.Run(eng, func(b *testing.B) { benchRunBound(b, runners[eng], bind, nil, true, bm) })
	}
}

func BenchmarkRunFault(b *testing.B) {
	runners, bind, bm := benchSetup(b)
	// A late never-matching site: the fault loop pays its per-instruction
	// arming cost for the whole run without perturbing execution.
	f := &interp.Fault{InstrID: 0, DynIndex: 1 << 40, Bit: 3}
	for _, eng := range benchEngines {
		b.Run(eng, func(b *testing.B) { benchRunBound(b, runners[eng], bind, f, false, bm) })
	}
}

func benchRunBound(b *testing.B, r *interp.Runner, bind interp.Binding, f *interp.Fault, withProf bool, bm *benchprog.Benchmark) {
	b.Helper()
	var prof *interp.Profile
	if withProf {
		prof = interp.NewProfile(bm.MustModule())
	}
	var dyn int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ff *interp.Fault
		if f != nil {
			cp := *f
			ff = &cp
		}
		res := r.RunScratch(bind, ff, prof)
		dyn = res.DynInstrs
		if res.Status != interp.StatusOK {
			b.Fatalf("status %v (%s)", res.Status, res.Trap)
		}
	}
	b.StopTimer()
	if dyn > 0 && b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(dyn)/float64(b.N), "ns/instr")
	}
}

// BenchmarkLower measures the one-time decode cost of the image engine
// (amortized across runs by the package-level image cache in practice).
func BenchmarkLower(b *testing.B) {
	bm, ok := benchprog.ByName("hpccg")
	if !ok {
		b.Fatal("hpccg benchmark missing")
	}
	m := bm.MustModule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if interp.Lower(m).LegacyOnly() {
			b.Fatal("hpccg lowered legacy-only")
		}
	}
}
