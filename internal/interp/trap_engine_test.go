package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
)

// runBothEngines executes m under the legacy stepper, the image engine,
// and the compiled engine with identical configuration and fails on any
// observable divergence in status, trap message, accounting, or output.
func runBothEngines(t *testing.T, m *ir.Module, cfg Config, args []uint64) Result {
	t.Helper()
	engines := []Engine{EngineLegacy, EngineImage, EngineCompiled}
	l := Result{}
	for i, eng := range engines {
		c := cfg
		c.Engine = eng
		r := NewRunner(m, c).Run(Binding{Args: args}, nil, nil)
		if i == 0 {
			l = r
			continue
		}
		if l.Status != r.Status || l.Trap != r.Trap {
			t.Fatalf("engines diverge: legacy %v %q, %v %v %q", l.Status, l.Trap, eng, r.Status, r.Trap)
		}
		if l.DynInstrs != r.DynInstrs || l.Cycles != r.Cycles {
			t.Fatalf("accounting diverges vs %v: legacy dyn=%d cyc=%d, got dyn=%d cyc=%d",
				eng, l.DynInstrs, l.Cycles, r.DynInstrs, r.Cycles)
		}
		if l.OutputHash != r.OutputHash || len(l.Output) != len(r.Output) {
			t.Fatalf("output diverges vs %v: %v vs %v", eng, l.Output, r.Output)
		}
	}
	return l
}

// TestTrapParityBothEngines pins the trap paths — null-page accesses, stack
// overflow, call depth, hang — to identical behavior under both engines,
// including the exact trap string and the instruction count at the trap.
func TestTrapParityBothEngines(t *testing.T) {
	cases := []struct {
		name     string
		build    func(b *ir.Builder)
		status   Status
		wantTrap string
	}{
		{"load-null", func(b *ir.Builder) {
			b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: 0}))
		}, StatusCrash, "load out of bounds (addr 0)"},
		{"load-null-page", func(b *ir.Builder) {
			b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: reservedLow - 1}))
		}, StatusCrash, ""},
		{"store-null", func(b *ir.Builder) {
			b.Store(ir.ConstI(1), ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: 0})
		}, StatusCrash, "store out of bounds (addr 0)"},
		{"store-null-page", func(b *ir.Builder) {
			b.Store(ir.ConstI(1), ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: reservedLow - 1})
		}, StatusCrash, ""},
		{"load-high-oob", func(b *ir.Builder) {
			b.CallB(ir.BuiltinEmitI, b.Load(ir.I64, ir.Operand{Kind: ir.OperConst, Type: ir.Ptr, Imm: 1 << 40}))
		}, StatusCrash, ""},
		{"stack-overflow", func(b *ir.Builder) {
			b.Alloca(ir.ConstI(1 << 40))
		}, StatusCrash, "stack overflow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ir.NewModule(tc.name)
			f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
			b := ir.NewBuilder(m, f)
			tc.build(b)
			b.RetVoid()
			m.Finalize()
			res := runBothEngines(t, m, Config{}, []uint64{0})
			if res.Status != tc.status {
				t.Fatalf("status = %v (%s), want %v", res.Status, res.Trap, tc.status)
			}
			if tc.wantTrap != "" && res.Trap != tc.wantTrap {
				t.Fatalf("trap = %q, want %q", res.Trap, tc.wantTrap)
			}
			if res.Trap == "" {
				t.Fatal("crash with empty trap reason")
			}
		})
	}
}

func TestHangParityBothEngines(t *testing.T) {
	m := ir.NewModule("spin")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	m.Finalize()

	res := runBothEngines(t, m, Config{MaxDynInstrs: 1000}, nil)
	if res.Status != StatusHang {
		t.Fatalf("status = %v, want hang", res.Status)
	}
}

func TestCallDepthParityBothEngines(t *testing.T) {
	m := ir.NewModule("deep")
	mainF := m.AddFunction("main", nil, ir.Void)
	recF := m.AddFunction("rec", []ir.Type{ir.I64}, ir.Void)
	mb := ir.NewBuilder(m, mainF)
	mb.Call(recF.Index, ir.Void, ir.ConstI(0))
	mb.RetVoid()
	rb := ir.NewBuilder(m, recF)
	rb.Call(recF.Index, ir.Void, ir.Reg(0, ir.I64))
	rb.RetVoid()
	m.Finalize()

	res := runBothEngines(t, m, Config{}, nil)
	if res.Status != StatusCrash {
		t.Fatalf("status = %v, want crash (call depth)", res.Status)
	}
}

// TestRunTracedFormats exercises the tracer's per-line formatting: one line
// per executed instruction, integer and float result rendering, and no
// semantic drift (tracing forces the legacy engine internally).
func TestRunTracedFormats(t *testing.T) {
	m := ir.NewModule("traced")
	f := m.AddFunction("main", []ir.Type{ir.I64}, ir.Void)
	b := ir.NewBuilder(m, f)
	sum := b.Bin(ir.OpAdd, ir.Reg(0, ir.I64), ir.ConstI(5))
	fv := b.Bin(ir.OpFDiv, ir.ConstF(1), ir.ConstF(2))
	b.CallB(ir.BuiltinEmitI, sum)
	b.CallB(ir.BuiltinEmitF, fv)
	b.RetVoid()
	m.Finalize()

	ref := NewRunner(m, Config{}).Run(Binding{Args: []uint64{37}}, nil, nil)

	var buf bytes.Buffer
	res := NewRunner(m, Config{}).RunTraced(Binding{Args: []uint64{37}}, nil, &Tracer{W: &buf})
	if res.Status != StatusOK {
		t.Fatalf("status = %v (%s)", res.Status, res.Trap)
	}
	if res.DynInstrs != ref.DynInstrs || res.OutputHash != ref.OutputHash {
		t.Fatalf("tracing changed semantics: dyn %d vs %d", res.DynInstrs, ref.DynInstrs)
	}
	out := buf.String()
	if int64(strings.Count(out, "\n")) != res.DynInstrs {
		t.Fatalf("trace has %d lines, want %d:\n%s", strings.Count(out, "\n"), res.DynInstrs, out)
	}
	if !strings.Contains(out, "=> 42") {
		t.Errorf("integer result missing from trace:\n%s", out)
	}
	if !strings.Contains(out, "=> 0.5") {
		t.Errorf("float result missing from trace:\n%s", out)
	}
	if !strings.Contains(out, "main") {
		t.Errorf("function name missing from trace:\n%s", out)
	}
}

func TestTracerLimit(t *testing.T) {
	m := ir.NewModule("spin")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	m.Finalize()

	var buf bytes.Buffer
	res := NewRunner(m, Config{MaxDynInstrs: 500}).RunTraced(Binding{}, nil, &Tracer{W: &buf, Limit: 10})
	if res.Status != StatusHang {
		t.Fatalf("status = %v, want hang", res.Status)
	}
	out := buf.String()
	if got := strings.Count(out, "\n"); got != 11 { // 10 traced + 1 limit notice
		t.Fatalf("trace has %d lines, want 11:\n%s", got, out)
	}
	if !strings.Contains(out, "trace limit (10) reached") {
		t.Fatalf("limit notice missing:\n%s", out)
	}
}
