package interp_test

import (
	"math/rand"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/interp"
)

// The model differential suite extends the three-engine pinning to every
// registered fault model: sampled sites perturbed by each model, and each
// model's deterministic pattern set replayed at a fixed site, must behave
// bit-identically under the legacy, image, and compiled engines. This is
// what lets a new model trust all three engines the day it registers.

// modelDiffBenchmarks keeps the sweep affordable: the full model × engine
// product on a couple of structurally different programs.
func modelDiffBenchmarks(t *testing.T) []*benchprog.Benchmark {
	all := benchprog.Eleven()
	if testing.Short() {
		return all[:1]
	}
	return all[:3]
}

// TestEngineDifferentialModels draws random sites under every registered
// model and pins all three engines to the legacy stepper for each.
func TestEngineDifferentialModels(t *testing.T) {
	nSites := 4
	if testing.Short() {
		nSites = 1
	}
	for _, mn := range fault.ModelNames() {
		model, ok := fault.ModelByName(mn)
		if !ok {
			t.Fatalf("registered model %q not resolvable", mn)
		}
		mn, model := mn, model
		t.Run(mn, func(t *testing.T) {
			t.Parallel()
			for _, b := range modelDiffBenchmarks(t) {
				m := b.MustModule()
				bind := b.Bind(b.Reference)
				cfg := b.ExecConfig()
				cfg.Engine = interp.EngineLegacy
				g, err := fault.RunGolden(m, bind, cfg)
				if err != nil {
					t.Fatal(err)
				}
				s := fault.NewSampler(m, g, false)
				rng := rand.New(rand.NewSource(99))
				for i := 0; i < nSites; i++ {
					f, ok := s.RandomSiteModel(model, rng)
					if !ok {
						t.Fatal("no injectable sites")
					}
					diffRun(t, mn+"/"+b.Name, m, bind, b.ExecConfig(), &f)
				}
			}
		})
	}
}

// TestEngineDifferentialModelPatterns replays every enumerated effect of
// every model at a fixed early site, so each (op, mask shape) the model
// can emit crosses all three flip paths at least once — including shapes
// a handful of random draws could miss (high stuck-at masks, shifted
// defect lanes).
func TestEngineDifferentialModelPatterns(t *testing.T) {
	b := modelDiffBenchmarks(t)[0]
	m := b.MustModule()
	bind := b.Bind(b.Reference)
	cfg := b.ExecConfig()
	cfg.Engine = interp.EngineLegacy
	g, err := fault.RunGolden(m, bind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First executed injectable instruction: patterns land deterministically
	// at its dynamic instance 0.
	site := -1
	for id, in := range m.Instrs {
		if in.IsInjectable() && g.Profile.InstrCount[id] > 0 {
			site = id
			break
		}
	}
	if site < 0 {
		t.Fatal("no executed injectable instruction")
	}
	width := m.Instrs[site].Type.Bits()
	maxPat := 8
	if testing.Short() {
		maxPat = 2
	}
	for _, mn := range fault.ModelNames() {
		model, _ := fault.ModelByName(mn)
		pats := model.Patterns(width, maxPat)
		if len(pats) == 0 {
			t.Fatalf("model %s enumerates no patterns at width %d", mn, width)
		}
		for _, e := range pats {
			f := &interp.Fault{InstrID: site, DynIndex: 0,
				Bit: e.Bit, Mask: e.Mask, Op: e.Op}
			diffRun(t, mn+"/pattern", m, bind, b.ExecConfig(), f)
		}
	}
}
