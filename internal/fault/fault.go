// Package fault is the repository's LLFI equivalent: it injects single-bit
// flips into the return values of randomly chosen dynamic instructions and
// classifies the outcome of each faulty execution against a golden run.
//
// The fault model follows the paper (§II-A): transient faults in processor
// computing components, modeled as one single-bit flip per run in the
// destination value of one dynamic instruction. Memory, control logic, and
// instruction-encoding faults are out of scope (assumed ECC/other
// protection), as are jumps to illegal addresses — but legal-but-wrong
// branches arise naturally when a flipped comparison feeds a branch.
package fault

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Outcome classifies one fault-injection trial.
type Outcome uint8

// Trial outcomes. Benign means the program completed with output
// bit-identical to the golden run; SDC means it completed with different
// output; Detected means a duplication check caught the corruption.
const (
	OutcomeBenign Outcome = iota
	OutcomeSDC
	OutcomeCrash
	OutcomeHang
	OutcomeDetected
	NumOutcomes
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	case OutcomeDetected:
		return "detected"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// HangFactor scales the golden run's dynamic instruction count into the
// hang budget for faulty runs.
const HangFactor = 20

// Golden is a fault-free reference execution of a module under one input.
type Golden struct {
	Output     []uint64
	OutputHash uint64 // FNV-1a 64 over Output, for the Classify fast path
	DynInstrs  int64
	Cycles     int64
	Profile    *interp.Profile
}

// RunGolden executes the module fault-free with profiling and returns the
// reference execution. It fails if the fault-free program does not run to
// completion (such inputs are filtered out per §III-A2).
func RunGolden(m *ir.Module, bind interp.Binding, cfg interp.Config) (*Golden, error) {
	prof := interp.NewProfile(m)
	r := interp.NewRunner(m, cfg)
	res := r.Run(bind, nil, prof)
	if res.Status != interp.StatusOK {
		return nil, fmt.Errorf("fault: golden run ended with %s (%s)", res.Status, res.Trap)
	}
	return &Golden{
		Output:     res.Output,
		OutputHash: res.OutputHash,
		DynInstrs:  res.DynInstrs,
		Cycles:     res.Cycles,
		Profile:    prof,
	}, nil
}

// faultyConfig derives the execution bounds for faulty runs from the
// golden run (a fault can lengthen execution; the hang budget caps it).
func faultyConfig(cfg interp.Config, g *Golden) interp.Config {
	cfg.MaxDynInstrs = g.DynInstrs*HangFactor + 10_000
	return cfg
}

// Classify compares a faulty run against the golden execution. Unequal
// output hashes prove unequal outputs, so the word compare — the hot part
// of every SDC trial — is skipped for the common corrupted-output case;
// equal hashes still get the exact compare, so a collision can never
// misclassify an SDC as benign.
func Classify(g *Golden, res interp.Result) Outcome {
	switch res.Status {
	case interp.StatusDetected:
		return OutcomeDetected
	case interp.StatusCrash:
		return OutcomeCrash
	case interp.StatusHang:
		return OutcomeHang
	}
	if res.OutputHash != g.OutputHash && res.OutputHash != 0 && g.OutputHash != 0 {
		return OutcomeSDC // hashes present and unequal: outputs provably differ
	}
	if len(res.Output) != len(g.Output) {
		return OutcomeSDC
	}
	for i, w := range g.Output {
		if res.Output[i] != w {
			return OutcomeSDC
		}
	}
	return OutcomeBenign
}

// Sampler draws injection sites. Program-level sites are uniform over all
// dynamic instances of injectable instructions (weighted by each static
// instruction's dynamic count in the golden run), matching LLFI's "random
// dynamic instruction" selection.
type Sampler struct {
	mod   *ir.Module
	g     *Golden
	ids   []int   // injectable static instruction IDs with count > 0
	cum   []int64 // cumulative dynamic counts over ids
	total int64
}

// NewSampler builds a sampler for m under the golden execution g.
// excludeDup restricts sites to original program instructions (used when
// characterizing the unprotected program).
func NewSampler(m *ir.Module, g *Golden, excludeDup bool) *Sampler {
	s := &Sampler{mod: m, g: g}
	for _, id := range m.InjectableIDs(excludeDup) {
		c := g.Profile.InstrCount[id]
		if c == 0 {
			continue
		}
		s.total += c
		s.ids = append(s.ids, id)
		s.cum = append(s.cum, s.total)
	}
	return s
}

// Total returns the number of injectable dynamic instruction instances.
func (s *Sampler) Total() int64 { return s.total }

// RandomSite draws one program-level injection site under the default
// (single-bit flip) model. ok is false when the program has no injectable
// dynamic instructions.
func (s *Sampler) RandomSite(rng *rand.Rand) (interp.Fault, bool) {
	return s.RandomSiteModel(DefaultModel(), rng)
}

// RandomSiteModel draws one program-level injection site and perturbs it
// with fault model m. The dynamic-instance draw is model-independent, so
// every model samples the same site stream for a fixed seed; only the
// effect differs.
func (s *Sampler) RandomSiteModel(m Model, rng *rand.Rand) (interp.Fault, bool) {
	if s.total == 0 {
		return interp.Fault{}, false
	}
	k := rng.Int63n(s.total)
	// Binary search the cumulative counts.
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	id := s.ids[lo]
	base := int64(0)
	if lo > 0 {
		base = s.cum[lo-1]
	}
	f := interp.Fault{InstrID: id, DynIndex: k - base}
	m.Perturb(s.mod.Instrs[id].Type.Bits(), rng).apply(&f)
	return f, true
}

// SiteFor draws an injection site targeting one static instruction under
// the default model, uniform over its dynamic instances. ok is false if
// the instruction never executed under this input or has no result.
func (s *Sampler) SiteFor(instrID int, rng *rand.Rand) (interp.Fault, bool) {
	return s.SiteForModel(DefaultModel(), instrID, rng)
}

// SiteForModel is SiteFor perturbed by fault model m.
func (s *Sampler) SiteForModel(m Model, instrID int, rng *rand.Rand) (interp.Fault, bool) {
	in := s.mod.Instrs[instrID]
	if !in.IsInjectable() {
		return interp.Fault{}, false
	}
	c := s.g.Profile.InstrCount[instrID]
	if c == 0 {
		return interp.Fault{}, false
	}
	f := interp.Fault{InstrID: instrID, DynIndex: rng.Int63n(c)}
	m.Perturb(in.Type.Bits(), rng).apply(&f)
	return f, true
}

// CampaignResult aggregates trial outcomes. Requested records how many
// trials the campaign was asked for and Shortfall how many of those could
// not be drawn even after bounded redraws (a program with no injectable
// dynamic instructions): Trials == Requested - Shortfall, so a loss of
// statistical power is visible instead of silent.
type CampaignResult struct {
	Counts    [NumOutcomes]int64
	Trials    int64
	Requested int64
	Shortfall int64
}

// Add accumulates one outcome.
func (c *CampaignResult) Add(o Outcome) {
	c.Counts[o]++
	c.Trials++
}

// Merge accumulates another result set.
func (c *CampaignResult) Merge(o CampaignResult) {
	for i := range c.Counts {
		c.Counts[i] += o.Counts[i]
	}
	c.Trials += o.Trials
	c.Requested += o.Requested
	c.Shortfall += o.Shortfall
}

// Rate returns the fraction of trials with outcome o (0 if no trials).
func (c *CampaignResult) Rate(o Outcome) float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Counts[o]) / float64(c.Trials)
}

// SDCCoverage returns detected / (detected + SDC): the fraction of
// corruptions mitigated by the protection. The second result is false when
// no trial produced either outcome (coverage undefined).
func (c *CampaignResult) SDCCoverage() (float64, bool) {
	d := c.Counts[OutcomeDetected]
	s := c.Counts[OutcomeSDC]
	if d+s == 0 {
		return 0, false
	}
	return float64(d) / float64(d+s), true
}

// TriagePolicy selects whether a campaign consults the static
// SDC-masking triage (package analysis) before executing trials.
type TriagePolicy uint8

const (
	// TriageAuto (the zero value, so campaigns prune by default) skips
	// fault sites the triage proves masked, counting them Benign without
	// running them. Soundness of the triage guarantees the campaign
	// result is bit-identical to an unpruned run at the same seed; the
	// differential test in this package enforces that by injection.
	TriageAuto TriagePolicy = iota
	// TriageOff executes every drawn site. Used by the soundness test
	// itself and available for audits.
	TriageOff
)

// Campaign runs fault-injection trials over a module with one input.
// Metrics, if non-nil, receives trial outcomes, wall/busy time, and
// worker-count observations (it never influences results).
type Campaign struct {
	Mod     *ir.Module
	Bind    interp.Binding
	Cfg     interp.Config
	Golden  *Golden
	Workers int // 0 = GOMAXPROCS
	// Model selects the fault model; nil means the paper's single-bit
	// flip (DefaultModel).
	Model   Model
	Triage  TriagePolicy
	Metrics *PhaseMetrics
	// Obs, if non-nil, receives a span per injection batch plus trial and
	// batch-latency registry metrics. Observational like Metrics.
	Obs *obs.Obs
}

func (c *Campaign) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// model returns the campaign's fault model, defaulting to a single-bit
// flip when unset.
func (c *Campaign) model() Model {
	if c.Model != nil {
		return c.Model
	}
	return DefaultModel()
}

// runSites classifies the given fault sites under the campaign's model
// and returns one outcome per site (index-aligned), deterministic for
// fixed sites. Under TriageAuto it first consults the static triage:
// provably masked sites are counted Benign without execution (recorded
// in the per-model Pruned metric) and only the remainder is run. Pruning
// is gated on the model's fault class, so a proof is applied only where
// it is sound; the returned outcomes are identical to an unpruned run.
func (c *Campaign) runSites(sites []interp.Fault) []Outcome {
	return c.runSitesModel(c.model(), sites)
}

// RunSites classifies explicitly constructed fault sites (replay and
// differential tooling): one outcome per site, index-aligned,
// deterministic for fixed sites. Triage pruning follows the campaign's
// policy and model exactly as in Run.
func (c *Campaign) RunSites(sites []interp.Fault) []Outcome {
	return c.runSites(sites)
}

// runSitesModel is runSites with an explicit model (so helpers like
// RunMultiBit can run a non-default model without mutating the campaign).
func (c *Campaign) runSitesModel(m Model, sites []interp.Fault) []Outcome {
	if c.Triage == TriageAuto && len(sites) > 0 {
		t := analysis.TriageFor(c.Mod)
		cl := m.Class()
		outcomes := make([]Outcome, len(sites))
		kept := make([]interp.Fault, 0, len(sites))
		keptIdx := make([]int, 0, len(sites))
		var byProof map[analysis.Proof]int64
		for i, s := range sites {
			switch v, pf := t.ClassifyFor(cl, s.InstrID, s.Bit, s.Mask); v {
			case analysis.VerdictProvablyMasked:
				outcomes[i] = OutcomeBenign
				if byProof == nil {
					byProof = make(map[analysis.Proof]int64)
				}
				byProof[pf]++
			case analysis.VerdictProvablyDetected:
				// The proof guarantees the armed detector fires before
				// any other observable; an executed trial would report
				// exactly this outcome.
				outcomes[i] = OutcomeDetected
				if byProof == nil {
					byProof = make(map[analysis.Proof]int64)
				}
				byProof[pf]++
			default:
				kept = append(kept, s)
				keptIdx = append(keptIdx, i)
			}
		}
		if pruned := int64(len(sites) - len(kept)); pruned > 0 {
			c.Metrics.AddPruned(m.Name(), pruned)
			for pf, n := range byProof {
				c.Metrics.AddPrunedProof(pf.String(), n)
			}
		}
		if len(kept) == 0 {
			return outcomes
		}
		for j, o := range c.execSites(kept) {
			outcomes[keptIdx[j]] = o
		}
		return outcomes
	}
	return c.execSites(sites)
}

// execSites executes fault sites in parallel and returns one outcome per
// site (index-aligned), deterministic for fixed sites.
func (c *Campaign) execSites(sites []interp.Fault) []Outcome {
	t0 := time.Now()
	sp := c.Obs.Start("fi-batch")
	sp.SetAttrInt("sites", int64(len(sites)))
	defer sp.End()
	outcomes := make([]Outcome, len(sites))
	cfg := faultyConfig(c.Cfg, c.Golden)
	nw := c.workers()
	if nw > len(sites) {
		nw = len(sites)
	}
	if nw <= 1 {
		r := interp.NewRunner(c.Mod, cfg)
		busy := time.Now()
		for i := range sites {
			// RunScratch: Classify consumes Output before the runner's
			// next run reuses the buffer, so the per-trial copy is waste.
			outcomes[i] = Classify(c.Golden, r.RunScratch(c.Bind, &sites[i], nil))
		}
		c.Metrics.AddBusy(time.Since(busy))
		c.finishSites(outcomes, 1, t0)
		return outcomes
	}
	// The queue is buffered to the full site count and filled before any
	// worker starts: dispatch never blocks, so workers drain at full speed
	// instead of rendezvousing with a producer once per trial.
	next := make(chan int, len(sites))
	for i := range sites {
		next <- i
	}
	close(next)
	// Pre-size per-worker runner state before spawning so allocation cost
	// is not interleaved with execution.
	runners := make([]*interp.Runner, nw)
	for w := range runners {
		runners[w] = interp.NewRunner(c.Mod, cfg)
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(r *interp.Runner) {
			defer wg.Done()
			var busy time.Duration
			for i := range next {
				t := time.Now()
				res := r.RunScratch(c.Bind, &sites[i], nil)
				busy += time.Since(t)
				outcomes[i] = Classify(c.Golden, res)
			}
			c.Metrics.AddBusy(busy)
		}(runners[w])
	}
	wg.Wait()
	c.finishSites(outcomes, nw, t0)
	return outcomes
}

// finishSites folds one runSites batch into the campaign metrics.
func (c *Campaign) finishSites(outcomes []Outcome, nw int, t0 time.Time) {
	wall := time.Since(t0)
	c.Obs.Counter("fault.trials").Add(int64(len(outcomes)))
	c.Obs.Counter("fault.model." + c.model().Name() + ".trials").Add(int64(len(outcomes)))
	c.Obs.Histogram("fault.batch_wall_ns").Observe(wall.Nanoseconds())
	if c.Metrics == nil {
		return
	}
	c.Metrics.AddOutcomes(outcomes)
	c.Metrics.ObserveWorkers(nw)
	c.Metrics.AddWall(wall)
}

// siteRetries bounds redraws for a failed site draw before the trial is
// counted as shortfall.
const siteRetries = 8

// sampleSites draws n sites from a fresh RNG seeded with seed, redrawing
// each failed draw up to siteRetries times, and returns the sites plus the
// number of trials that could not be drawn.
func sampleSites(n int, seed int64, draw func(*rand.Rand) (interp.Fault, bool)) ([]interp.Fault, int64) {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]interp.Fault, 0, n)
	for i := 0; i < n; i++ {
		site, ok := draw(rng)
		for retry := 0; !ok && retry < siteRetries; retry++ {
			site, ok = draw(rng)
		}
		if ok {
			sites = append(sites, site)
		}
	}
	return sites, int64(n - len(sites))
}

// Run performs n program-level trials with sites drawn from seed and
// returns the aggregated outcome counts. Failed site draws are retried up
// to a bound; any remaining shortfall is recorded in the result rather
// than silently shrinking the sample. The result is deterministic for a
// fixed (module, input, n, seed) regardless of worker count.
func (c *Campaign) Run(n int, seed int64) CampaignResult {
	m := c.model()
	sampler := NewSampler(c.Mod, c.Golden, false)
	sites, shortfall := sampleSites(n, seed, func(rng *rand.Rand) (interp.Fault, bool) {
		return sampler.RandomSiteModel(m, rng)
	})
	res := CampaignResult{Requested: int64(n), Shortfall: shortfall}
	c.Metrics.AddShortfall(shortfall)
	for _, o := range c.runSites(sites) {
		res.Add(o)
	}
	return res
}

// InstrStats is the per-instruction fault-injection measurement the SID
// cost/benefit model consumes.
type InstrStats struct {
	InstrID  int
	Executed bool // the instruction ran at least once under this input
	Trials   int64
	SDC      int64
	Crash    int64
	Hang     int64
	Detected int64
	Benign   int64
}

// SDCProb returns the measured probability that a fault in this
// instruction leads to an SDC.
func (s InstrStats) SDCProb() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.SDC) / float64(s.Trials)
}

// PerInstruction runs k trials against every injectable original-program
// instruction (the per-instruction FI step of SID preparation) and returns
// stats indexed by static instruction ID. Instructions that never execute
// under this input get Executed=false and zero trials.
func (c *Campaign) PerInstruction(k int, seed int64) []InstrStats {
	m := c.model()
	rng := rand.New(rand.NewSource(seed))
	sampler := NewSampler(c.Mod, c.Golden, true)

	stats := make([]InstrStats, c.Mod.NumInstrs())
	var sites []interp.Fault
	var owner []int // instruction ID per site
	for _, in := range c.Mod.Instrs {
		stats[in.ID].InstrID = in.ID
		if !in.IsInjectable() || in.Dup {
			continue
		}
		if c.Golden.Profile.InstrCount[in.ID] == 0 {
			continue
		}
		stats[in.ID].Executed = true
		for t := 0; t < k; t++ {
			site, ok := sampler.SiteForModel(m, in.ID, rng)
			if !ok {
				break
			}
			sites = append(sites, site)
			owner = append(owner, in.ID)
		}
	}
	outcomes := c.runSites(sites)
	for i, o := range outcomes {
		st := &stats[owner[i]]
		st.Trials++
		switch o {
		case OutcomeSDC:
			st.SDC++
		case OutcomeCrash:
			st.Crash++
		case OutcomeHang:
			st.Hang++
		case OutcomeDetected:
			st.Detected++
		default:
			st.Benign++
		}
	}
	return stats
}

// RunMultiBit is Run under the k-distinct-bit-flip model KBit(k); it is
// the registry-backed replacement for the old bespoke multi-bit path.
func (c *Campaign) RunMultiBit(n int, seed int64, k int) CampaignResult {
	cc := *c
	cc.Model = KBit(k)
	return cc.Run(n, seed)
}
