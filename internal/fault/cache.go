package fault

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/ir"
)

// BindingKey returns a canonical content identity for an input binding:
// a SHA-256 over the argument words and the sorted global arrays. Two
// bindings with equal keys produce identical executions of the same
// module, so the key is a safe memoization handle.
func BindingKey(bind interp.Binding) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(bind.Args)))
	h.Write(buf[:])
	for _, a := range bind.Args {
		binary.LittleEndian.PutUint64(buf[:], a)
		h.Write(buf[:])
	}
	names := make([]string, 0, len(bind.Globals))
	for n := range bind.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
		vs := bind.Globals[n]
		binary.LittleEndian.PutUint64(buf[:], uint64(len(vs)))
		h.Write(buf[:])
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// goldenKey identifies one memoized golden run. Modules are immutable
// once built, so pointer identity is the module identity; the execution
// config participates because it bounds the run.
type goldenKey struct {
	mod  *ir.Module
	cfg  interp.Config
	bind [sha256.Size]byte
}

// campaignKey identifies one memoized unprotected-program campaign
// (site sample + index-aligned outcomes).
type campaignKey struct {
	mod        *ir.Module
	cfg        interp.Config
	bind       [sha256.Size]byte
	model      string // fault-model name: isolates per-model site samples
	n          int
	seed       int64
	excludeDup bool
}

// goldenEntry is a single-flight cache slot: the first requester computes
// while later requesters for the same key block on ready.
type goldenEntry struct {
	ready chan struct{}
	g     *Golden
	err   error
}

// campaignEntry memoizes one campaign's drawn sites and outcomes.
type campaignEntry struct {
	ready     chan struct{}
	sites     []interp.Fault
	outcomes  []Outcome
	shortfall int64
}

// lruTable is a mutex-external LRU map from comparable keys to entries.
type lruTable struct {
	cap int
	ll  *list.List // front = most recent; values are *lruNode
	m   map[any]*list.Element
}

type lruNode struct {
	key any
	val any
}

func newLRUTable(capacity int) *lruTable {
	return &lruTable{cap: capacity, ll: list.New(), m: make(map[any]*list.Element)}
}

// get returns the entry for key and marks it most-recently used.
func (t *lruTable) get(key any) (any, bool) {
	e, ok := t.m[key]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(e)
	return e.Value.(*lruNode).val, true
}

// add inserts key (assumed absent) and evicts the least-recently-used
// entries beyond capacity. Evicted in-flight entries stay valid for the
// goroutines already holding them; they simply stop being shared.
func (t *lruTable) add(key, val any) {
	t.m[key] = t.ll.PushFront(&lruNode{key: key, val: val})
	for t.ll.Len() > t.cap {
		back := t.ll.Back()
		t.ll.Remove(back)
		delete(t.m, back.Value.(*lruNode).key)
	}
}

// DefaultCacheEntries bounds the golden-run table of a Cache built with
// NewCache(0). Campaign memos are far smaller per entry, so their table
// holds four times as many.
const DefaultCacheEntries = 256

// Cache is the campaign engine's memoization layer: it remembers golden
// runs (output, cycle counts, and full dynamic profile) and
// unprotected-program campaign results, keyed by (module identity,
// canonicalized input binding, execution config). Both tables are
// LRU-bounded and safe for concurrent use; concurrent requests for the
// same key share one computation (single flight).
//
// Golden runs and campaigns are deterministic, so a memoized result is
// bit-identical to a recomputed one: the cache can never change a
// selection, coverage number, or search trace.
type Cache struct {
	mu        sync.Mutex
	goldens   *lruTable
	campaigns *lruTable

	goldenHits, goldenMisses     int64
	campaignHits, campaignMisses int64
}

// NewCache returns a Cache bounded to the given number of golden-run
// entries (<= 0 selects DefaultCacheEntries).
func NewCache(entries int) *Cache {
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	return &Cache{
		goldens:   newLRUTable(entries),
		campaigns: newLRUTable(4 * entries),
	}
}

// Golden returns the memoized golden run of m under bind/cfg, executing
// it on first use. Errors (inadmissible inputs) are memoized too. pm, if
// non-nil, receives hit/miss and golden-run accounting. A nil Cache
// always recomputes.
//
// The returned Golden (including its Profile) is shared across callers
// and must be treated as immutable.
func (c *Cache) Golden(m *ir.Module, bind interp.Binding, cfg interp.Config, pm *PhaseMetrics) (*Golden, error) {
	if c == nil {
		return runGoldenTimed(m, bind, cfg, pm)
	}
	key := goldenKey{mod: m, cfg: cfg, bind: BindingKey(bind)}
	c.mu.Lock()
	if v, ok := c.goldens.get(key); ok {
		c.goldenHits++
		c.mu.Unlock()
		pm.AddCacheHit()
		e := v.(*goldenEntry)
		<-e.ready
		return e.g, e.err
	}
	c.goldenMisses++
	e := &goldenEntry{ready: make(chan struct{})}
	c.goldens.add(key, e)
	c.mu.Unlock()

	pm.AddCacheMiss()
	e.g, e.err = runGoldenTimed(m, bind, cfg, pm)
	close(e.ready)
	return e.g, e.err
}

// runGoldenTimed is RunGolden with phase accounting: the run's wall time
// is attributed to pm (golden runs are single-threaded, so wall == busy).
func runGoldenTimed(m *ir.Module, bind interp.Binding, cfg interp.Config, pm *PhaseMetrics) (*Golden, error) {
	pm.AddGoldenRun()
	t0 := time.Now()
	g, err := RunGolden(m, bind, cfg)
	d := time.Since(t0)
	pm.AddWall(d)
	pm.AddBusy(d)
	pm.ObserveWorkers(1)
	return g, err
}

// unprotectedCampaign returns the memoized program-level campaign of camp
// (site sample from seed plus index-aligned outcomes), executing it on
// first use. The returned slices are shared and must not be mutated.
func (c *Cache) unprotectedCampaign(camp *Campaign, excludeDup bool, n int, seed int64) (sites []interp.Fault, outcomes []Outcome, shortfall int64) {
	m := camp.model()
	run := func() ([]interp.Fault, []Outcome, int64) {
		sampler := NewSampler(camp.Mod, camp.Golden, excludeDup)
		sites, shortfall := sampleSites(n, seed, func(rng *rand.Rand) (interp.Fault, bool) {
			return sampler.RandomSiteModel(m, rng)
		})
		return sites, camp.runSites(sites), shortfall
	}
	if c == nil {
		return run()
	}
	key := campaignKey{
		mod: camp.Mod, cfg: camp.Cfg, bind: BindingKey(camp.Bind),
		model: m.Name(), n: n, seed: seed, excludeDup: excludeDup,
	}
	c.mu.Lock()
	if v, ok := c.campaigns.get(key); ok {
		c.campaignHits++
		c.mu.Unlock()
		camp.Metrics.AddCacheHit()
		e := v.(*campaignEntry)
		<-e.ready
		return e.sites, e.outcomes, e.shortfall
	}
	c.campaignMisses++
	e := &campaignEntry{ready: make(chan struct{})}
	c.campaigns.add(key, e)
	c.mu.Unlock()

	camp.Metrics.AddCacheMiss()
	e.sites, e.outcomes, e.shortfall = run()
	close(e.ready)
	return e.sites, e.outcomes, e.shortfall
}

// CacheStats reports cumulative cache traffic and current sizes.
type CacheStats struct {
	GoldenHits     int64 `json:"golden_hits"`
	GoldenMisses   int64 `json:"golden_misses"`
	CampaignHits   int64 `json:"campaign_hits"`
	CampaignMisses int64 `json:"campaign_misses"`
	// Entries currently resident.
	Goldens   int `json:"goldens"`
	Campaigns int `json:"campaigns"`
}

// HitRate returns the overall hit fraction across both tables.
func (s CacheStats) HitRate() float64 {
	total := s.GoldenHits + s.GoldenMisses + s.CampaignHits + s.CampaignMisses
	if total == 0 {
		return 0
	}
	return float64(s.GoldenHits+s.CampaignHits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		GoldenHits: c.goldenHits, GoldenMisses: c.goldenMisses,
		CampaignHits: c.campaignHits, CampaignMisses: c.campaignMisses,
		Goldens: c.goldens.ll.Len(), Campaigns: c.campaigns.ll.Len(),
	}
}

// String renders the stats one-liner printed by the -metrics CLIs.
func (s CacheStats) String() string {
	return fmt.Sprintf("cache: golden %d hit / %d miss, campaign %d hit / %d miss, %.1f%% overall hit rate (%d+%d resident)",
		s.GoldenHits, s.GoldenMisses, s.CampaignHits, s.CampaignMisses,
		100*s.HitRate(), s.Goldens, s.Campaigns)
}
