package fault

import (
	"reflect"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/passes"
)

func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights []int64
		want    []int
	}{
		{10, []int64{1, 1}, []int{5, 5}},
		{10, []int64{0, 1}, []int{0, 10}},
		{0, []int64{3, 7}, []int{0, 0}},
		{10, nil, nil},
		{7, []int64{1, 1, 1}, []int{3, 2, 2}}, // remainder to lowest index
		{100, []int64{1, 999}, []int{0, 100}},
		{5, []int64{0, 0}, []int{0, 0}}, // no weight: nothing apportioned
	}
	for _, c := range cases {
		got := Apportion(c.total, c.weights)
		sum := 0
		for i, n := range got {
			sum += n
			if c.weights[i] == 0 && n != 0 {
				t.Errorf("Apportion(%d,%v): zero weight got %d trials", c.total, c.weights, n)
			}
		}
		var wsum int64
		for _, w := range c.weights {
			wsum += w
		}
		if wsum > 0 && c.total > 0 && sum != c.total {
			t.Errorf("Apportion(%d,%v) sums to %d", c.total, c.weights, sum)
		}
		if len(c.want) > 0 && !reflect.DeepEqual(got, c.want) {
			t.Errorf("Apportion(%d,%v) = %v, want %v", c.total, c.weights, got, c.want)
		}
	}
}

func TestSectionSeed(t *testing.T) {
	a := SectionSeed(7, "f", 0)
	if a != SectionSeed(7, "f", 0) {
		t.Fatal("SectionSeed not deterministic")
	}
	if a == SectionSeed(7, "f", 1) || a == SectionSeed(7, "g", 0) || a == SectionSeed(8, "f", 0) {
		t.Fatal("SectionSeed ignores part of its identity")
	}
}

func sectionalSetup(t testing.TB, name string) (*ir.Module, interp.Binding, interp.Config, *Golden) {
	t.Helper()
	bench, ok := benchprog.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	m, err := bench.Module()
	if err != nil {
		t.Fatal(err)
	}
	bind := bench.Bind(bench.Reference)
	cfg := bench.ExecConfig()
	g, err := RunGolden(m, bind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, bind, cfg, g
}

// TestSectionalCompositionOracle is the differential safety net of the
// sectional path: the exact per-section site lists produced by
// RunSectional, flattened back to module coordinates and classified by
// the ordinary whole-program batch runner, must yield bit-identical
// outcomes — so sectional grouping, triage pruning, and merging cannot
// change any classification. Checked per benchmark, and for one
// benchmark across all three engines and every registered fault model.
func TestSectionalCompositionOracle(t *testing.T) {
	names := []string{"pathfinder", "kmeans", "bfs", "needle", "fft", "hpccg"}
	if testing.Short() {
		names = names[:3]
	}
	const trials = 80
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			m, bind, cfg, g := sectionalSetup(t, name)
			c := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: g}
			res, profiles := c.RunSectional(trials, 11)
			if res.Requested != trials {
				t.Fatalf("requested %d of %d trials", res.Requested, trials)
			}
			set := ir.PartitionSections(m)
			byName := map[string]*ir.Section{}
			for _, s := range set.Sections {
				byName[s.Name()] = s
			}
			var flat []interp.Fault
			var want []Outcome
			for i := range profiles {
				sec := byName[profiles[i].Name]
				if sec == nil {
					t.Fatalf("profile for unknown section %q", profiles[i].Name)
				}
				flat = append(flat, profiles[i].Faults(sec)...)
				for _, s := range profiles[i].Sites {
					want = append(want, s.Outcome)
				}
			}
			got := c.RunSites(flat)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("site %d: sectional outcome %s, whole-program %s",
						i, want[i], got[i])
				}
			}
			// Composition is a pure fold of the profiles.
			sum := ComposeSections(profiles)
			sum.Requested, sum.Shortfall = res.Requested, res.Shortfall
			if sum != res {
				t.Fatalf("ComposeSections disagrees with RunSectional: %+v vs %+v", sum, res)
			}
		})
	}

	// Engine × model sweep on one benchmark: the sectional outcomes must
	// be invariant across engines and composable under every model.
	t.Run("engines-models", func(t *testing.T) {
		if testing.Short() {
			t.Skip("engine×model sweep skipped in -short")
		}
		m, bind, cfg, g := sectionalSetup(t, "kmeans")
		engines := []interp.Engine{interp.EngineLegacy, interp.EngineImage, interp.EngineCompiled}
		for _, model := range ModelNames() {
			mod, _ := ModelByName(model)
			var first []SectionProfile
			for _, eng := range engines {
				ecfg := cfg
				ecfg.Engine = eng
				c := &Campaign{Mod: m, Bind: bind, Cfg: ecfg, Golden: g, Model: mod}
				_, profiles := c.RunSectional(40, 5)
				set := ir.PartitionSections(m)
				byName := map[string]*ir.Section{}
				for _, s := range set.Sections {
					byName[s.Name()] = s
				}
				for i := range profiles {
					sec := byName[profiles[i].Name]
					var want []Outcome
					for _, s := range profiles[i].Sites {
						want = append(want, s.Outcome)
					}
					for j, o := range c.RunSites(profiles[i].Faults(sec)) {
						if o != want[j] {
							t.Fatalf("model %s engine %s: section %s site %d mismatch",
								model, eng, profiles[i].Name, j)
						}
					}
				}
				if first == nil {
					first = profiles
				} else if !reflect.DeepEqual(first, profiles) {
					t.Fatalf("model %s: sectional profiles differ between engines", model)
				}
			}
		}
	})
}

// swapCandidate finds two adjacent, independent, pure value-producing
// instructions inside one block of m. Swapping them preserves program
// semantics and dynamic counts but changes exactly one section's text.
func swapCandidate(m *ir.Module) (f *ir.Function, blk *ir.Block, idx int) {
	pure := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpShl, ir.OpShr, ir.OpICmp:
			return in.HasResult()
		}
		return false
	}
	uses := func(in *ir.Instr, reg int) bool {
		for _, a := range in.Args {
			if a.Kind == ir.OperReg && a.Reg == reg {
				return true
			}
		}
		return false
	}
	for _, fn := range m.Funcs {
		for _, b := range fn.Blocks {
			for i := 0; i+1 < len(b.Instrs); i++ {
				x, y := b.Instrs[i], b.Instrs[i+1]
				if pure(x) && pure(y) && x.Dst != y.Dst &&
					!uses(y, x.Dst) && !uses(x, y.Dst) {
					return fn, b, i
				}
			}
		}
	}
	return nil, nil, -1
}

// TestSectionalMutationIsolation is the incremental-reuse contract at
// the fault layer: a semantics-preserving one-section edit must leave
// every other section's hash, trial plan, and full site/outcome profile
// byte-identical, and the edited section must account for a minority of
// the campaign's trials.
// freshModule compiles a private copy of a benchmark's module:
// Benchmark.MustModule caches and shares one module per process, and the
// mutation test below must not edit the shared copy other tests use.
func freshModule(t *testing.T, bench *benchprog.Benchmark) *ir.Module {
	t.Helper()
	m, err := minicc.Compile(bench.Name+".mc", bench.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSectionalMutationIsolation(t *testing.T) {
	const trials = 200
	tried := 0
	for _, bench := range benchprog.All() {
		m := freshModule(t, bench)
		fn, blk, idx := swapCandidate(m)
		if fn == nil {
			continue
		}
		tried++
		bind := bench.Bind(bench.Reference)
		cfg := bench.ExecConfig()
		g, err := RunGolden(m, bind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: g}
		basePlans := c.PlanSectional(trials, 3, false)
		_, baseProfiles := c.RunSectional(trials, 3)
		baseSet := ir.PartitionSections(m)
		baseHash := map[string][32]byte{}
		for _, s := range baseSet.Sections {
			baseHash[s.Name()] = s.Hash
		}

		// Apply the edit on a fresh build of the same benchmark.
		m2 := freshModule(t, bench)
		fn2 := m2.Funcs[fn.Index]
		b2 := fn2.Blocks[blk.Index]
		b2.Instrs[idx], b2.Instrs[idx+1] = b2.Instrs[idx+1], b2.Instrs[idx]
		m2.Finalize()
		if err := ir.Verify(m2); err != nil {
			t.Fatalf("%s: swapped module does not verify: %v", bench.Name, err)
		}
		g2, err := RunGolden(m2, bind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g2.OutputHash != g.OutputHash || g2.DynInstrs != g.DynInstrs {
			t.Fatalf("%s: swap was not semantics-preserving", bench.Name)
		}

		set2 := ir.PartitionSections(m2)
		var editedName string
		changed := 0
		for _, s := range set2.Sections {
			if baseHash[s.Name()] != s.Hash {
				changed++
				editedName = s.Name()
			}
		}
		if changed != 1 {
			t.Fatalf("%s: edit changed %d section hashes, want 1", bench.Name, changed)
		}

		c2 := &Campaign{Mod: m2, Bind: bind, Cfg: cfg, Golden: g2}
		plans2 := c2.PlanSectional(trials, 3, false)
		if len(plans2) != len(basePlans) {
			t.Fatalf("%s: plan shape changed: %d vs %d", bench.Name, len(plans2), len(basePlans))
		}
		var editedTrials int
		for i, p := range plans2 {
			if p.Sec.Name() != basePlans[i].Sec.Name() || p.N != basePlans[i].N || p.Seed != basePlans[i].Seed {
				t.Fatalf("%s: plan for %s perturbed by edit elsewhere", bench.Name, p.Sec.Name())
			}
			if p.Sec.Name() == editedName {
				editedTrials = p.N
			}
		}
		if frac := float64(editedTrials) / float64(trials); frac >= 0.20 {
			// This benchmark concentrates its weight in the edited
			// section; the <20% target needs a multi-section benchmark,
			// so keep looking for one.
			continue
		}

		_, profiles2 := c2.RunSectional(trials, 3)
		for i := range profiles2 {
			if profiles2[i].Name == editedName {
				continue
			}
			if !reflect.DeepEqual(profiles2[i], baseProfiles[i]) {
				t.Fatalf("%s: untouched section %s re-derived a different profile",
					bench.Name, profiles2[i].Name)
			}
		}
		return // one benchmark satisfying the <20% bound proves the property
	}
	if tried == 0 {
		t.Fatal("no benchmark offered a swappable instruction pair")
	}
	t.Fatal("no benchmark kept the edited section under 20% of trials")
}

// TestPerInstructionSectionalShape checks that the sectional measure
// path composes into the module-indexed table shape PerInstruction
// produces, deterministically, with the same executed-instruction set.
func TestPerInstructionSectionalShape(t *testing.T) {
	m, bind, cfg, g := sectionalSetup(t, "pathfinder")
	c := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: g}
	stats1, perSec := c.PerInstructionSectional(2, 17)
	stats2, _ := c.PerInstructionSectional(2, 17)
	if !reflect.DeepEqual(stats1, stats2) {
		t.Fatal("PerInstructionSectional not deterministic")
	}
	whole := c.PerInstruction(2, 17)
	if len(stats1) != len(whole) {
		t.Fatalf("composed table has %d entries, whole-program %d", len(stats1), len(whole))
	}
	for id := range whole {
		if stats1[id].Executed != whole[id].Executed {
			t.Fatalf("instr %d: Executed=%v sectional vs %v whole", id, stats1[id].Executed, whole[id].Executed)
		}
		if stats1[id].InstrID != id {
			t.Fatalf("instr %d: composed InstrID %d", id, stats1[id].InstrID)
		}
	}
	// Round-trip through ComposeInstrStats must be exact.
	again, err := ComposeInstrStats(m, perSec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, stats1) {
		t.Fatal("ComposeInstrStats round-trip differs")
	}
}
