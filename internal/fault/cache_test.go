package fault

import (
	"sync"
	"testing"

	"repro/internal/interp"
)

func testBinding(n uint64) interp.Binding {
	return interp.Binding{
		Args:    []uint64{n},
		Globals: map[string][]uint64{"data": {3, 8, 1, 6, 2, 9, 4}},
	}
}

func TestBindingKeyCanonical(t *testing.T) {
	a := interp.Binding{
		Args:    []uint64{1, 2},
		Globals: map[string][]uint64{"x": {1}, "y": {2, 3}},
	}
	b := interp.Binding{
		Args:    []uint64{1, 2},
		Globals: map[string][]uint64{"y": {2, 3}, "x": {1}},
	}
	if BindingKey(a) != BindingKey(b) {
		t.Fatal("BindingKey depends on map iteration order")
	}
	c := interp.Binding{
		Args:    []uint64{1, 2},
		Globals: map[string][]uint64{"x": {1}, "y": {2, 4}},
	}
	if BindingKey(a) == BindingKey(c) {
		t.Fatal("BindingKey ignores global contents")
	}
	// Length framing: args {1,2} + global {3} must differ from args {1}
	// + global {2,3} even though the flattened words collide.
	d := interp.Binding{Args: []uint64{1, 2}, Globals: map[string][]uint64{"g": {3}}}
	e := interp.Binding{Args: []uint64{1}, Globals: map[string][]uint64{"g": {2, 3}}}
	if BindingKey(d) == BindingKey(e) {
		t.Fatal("BindingKey does not frame element counts")
	}
}

func TestCacheGoldenMemoizes(t *testing.T) {
	m, bind, _ := setup(t)
	c := NewCache(0)
	pm := NewMetrics().Phase("test")

	g1, err := c.Golden(m, bind, interp.Config{}, pm)
	if err != nil {
		t.Fatalf("Golden: %v", err)
	}
	g2, err := c.Golden(m, bind, interp.Config{}, pm)
	if err != nil {
		t.Fatalf("Golden (cached): %v", err)
	}
	if g1 != g2 {
		t.Fatal("second lookup did not return the memoized *Golden")
	}
	s := c.Stats()
	if s.GoldenMisses != 1 || s.GoldenHits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", s)
	}
	snap := pm.Snapshot()
	if snap.GoldenRuns != 1 {
		t.Fatalf("GoldenRuns = %d, want 1 (hit must not re-run)", snap.GoldenRuns)
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("phase cache counters = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}

	// A different binding is a different key.
	if _, err := c.Golden(m, testBinding(51), interp.Config{}, pm); err != nil {
		t.Fatalf("Golden (other bind): %v", err)
	}
	if s := c.Stats(); s.GoldenMisses != 2 {
		t.Fatalf("other binding hit the cache: %+v", s)
	}
}

func TestCacheGoldenMemoizesErrors(t *testing.T) {
	m, _, _ := setup(t)
	c := NewCache(0)
	// n = 0 makes the loop not run but is fine; use a hanging budget
	// instead: tiny MaxDynInstrs forces a golden failure.
	cfg := interp.Config{MaxDynInstrs: 1}
	if _, err := c.Golden(m, testBinding(50), cfg, nil); err == nil {
		t.Fatal("expected golden failure under 1-instruction budget")
	}
	if _, err := c.Golden(m, testBinding(50), cfg, nil); err == nil {
		t.Fatal("memoized error lookup succeeded")
	}
	s := c.Stats()
	if s.GoldenMisses != 1 || s.GoldenHits != 1 {
		t.Fatalf("errors are not memoized: %+v", s)
	}
}

func TestCacheNilIsTransparent(t *testing.T) {
	m, bind, _ := setup(t)
	var c *Cache
	g, err := c.Golden(m, bind, interp.Config{}, nil)
	if err != nil || g == nil {
		t.Fatalf("nil-cache Golden = %v, %v", g, err)
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil-cache stats = %+v", s)
	}
	camp := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
	sites, outcomes, shortfall := c.unprotectedCampaign(camp, false, 20, 1)
	if len(sites) != 20 || len(outcomes) != 20 || shortfall != 0 {
		t.Fatalf("nil-cache campaign: %d sites, %d outcomes, shortfall %d",
			len(sites), len(outcomes), shortfall)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	m, _, _ := setup(t)
	c := NewCache(2)
	for i := uint64(0); i < 3; i++ {
		if _, err := c.Golden(m, testBinding(10+i), interp.Config{}, nil); err != nil {
			t.Fatalf("Golden %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.Goldens != 2 {
		t.Fatalf("resident goldens = %d, want 2 (capacity)", s.Goldens)
	}
	// The oldest entry (n=10) was evicted: re-requesting it misses.
	if _, err := c.Golden(m, testBinding(10), interp.Config{}, nil); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.GoldenMisses != 4 || s.GoldenHits != 0 {
		t.Fatalf("evicted entry served a hit: %+v", s)
	}
	// The most recent entry (n=12) is still resident.
	if _, err := c.Golden(m, testBinding(12), interp.Config{}, nil); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.GoldenHits != 1 {
		t.Fatalf("recent entry was evicted: %+v", s)
	}
}

func TestCacheUnprotectedCampaignMemoizes(t *testing.T) {
	m, bind, g := setup(t)
	c := NewCache(0)
	camp := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}

	s1, o1, sf1 := c.unprotectedCampaign(camp, true, 40, 7)
	s2, o2, sf2 := c.unprotectedCampaign(camp, true, 40, 7)
	if &s1[0] != &s2[0] || &o1[0] != &o2[0] || sf1 != sf2 {
		t.Fatal("second campaign lookup did not return the memoized slices")
	}
	// Different seed, trial count, or excludeDup are distinct keys.
	c.unprotectedCampaign(camp, true, 40, 8)
	c.unprotectedCampaign(camp, true, 41, 7)
	c.unprotectedCampaign(camp, false, 40, 7)
	st := c.Stats()
	if st.CampaignHits != 1 || st.CampaignMisses != 4 {
		t.Fatalf("campaign stats = %+v, want 1 hit / 4 misses", st)
	}

	// Memoized outcomes equal a fresh computation.
	fresh := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
	sampler := NewSampler(m, g, true)
	wantSites, wantShortfall := sampleSites(40, 7, sampler.RandomSite)
	wantOutcomes := fresh.runSites(wantSites)
	if sf1 != wantShortfall || len(o1) != len(wantOutcomes) {
		t.Fatalf("memoized campaign shape differs: %d/%d vs %d/%d",
			len(o1), sf1, len(wantOutcomes), wantShortfall)
	}
	for i := range wantOutcomes {
		if o1[i] != wantOutcomes[i] || s1[i] != wantSites[i] {
			t.Fatalf("memoized campaign diverges at site %d", i)
		}
	}
}

// TestCacheConcurrentSingleFlight hammers one key from many goroutines:
// exactly one golden run must execute, every caller must observe the same
// pointer, and the run must be race-free (exercised under -race in CI).
func TestCacheConcurrentSingleFlight(t *testing.T) {
	m, bind, _ := setup(t)
	c := NewCache(0)
	pm := NewMetrics().Phase("test")

	const callers = 16
	goldens := make([]*Golden, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Golden(m, bind, interp.Config{}, pm)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			goldens[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if goldens[i] != goldens[0] {
			t.Fatalf("caller %d saw a different *Golden", i)
		}
	}
	if snap := pm.Snapshot(); snap.GoldenRuns != 1 {
		t.Fatalf("GoldenRuns = %d, want exactly 1 (single flight)", snap.GoldenRuns)
	}
}

// TestCacheConcurrentMixedKeys exercises concurrent lookups across
// different keys plus campaign memoization under contention.
func TestCacheConcurrentMixedKeys(t *testing.T) {
	m, _, _ := setup(t)
	c := NewCache(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				bind := testBinding(uint64(40 + (i+j)%3))
				g, err := c.Golden(m, bind, interp.Config{}, nil)
				if err != nil {
					t.Errorf("Golden: %v", err)
					return
				}
				camp := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
				_, outcomes, _ := c.unprotectedCampaign(camp, true, 10, int64(j%2))
				if len(outcomes) != 10 {
					t.Errorf("campaign returned %d outcomes", len(outcomes))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.GoldenHits+s.GoldenMisses == 0 || s.CampaignHits+s.CampaignMisses == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
}
