package fault

import (
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/interp"
)

// The registry must expose the portfolio the experiments advertise: the
// paper's default plus at least two alternative models, under stable
// names (they participate in cache keys).
func TestModelRegistry(t *testing.T) {
	if got := DefaultModel().Name(); got != "bitflip" {
		t.Fatalf("default model %q, want bitflip", got)
	}
	names := ModelNames()
	if len(names) < 3 {
		t.Fatalf("registry has %d models, want >= 3: %v", len(names), names)
	}
	for _, want := range []string{"bitflip", "bitflip2", "byteflip", "stuckat0", "stuckat1", "defect"} {
		m, ok := ModelByName(want)
		if !ok {
			t.Fatalf("model %q not registered (have %v)", want, names)
		}
		if m.Name() != want {
			t.Fatalf("model registered as %q reports Name %q", want, m.Name())
		}
	}
	if got := KBit(2).Name(); got != "bitflip2" {
		t.Fatalf("KBit(2).Name() = %q, want bitflip2 (RunMultiBit registry alias)", got)
	}
}

// Perturb must be a pure function of (width, RNG state): two RNGs with
// the same seed must yield identical effect streams so campaigns replay
// bit-identically from a seed.
func TestModelPerturbDeterminism(t *testing.T) {
	for _, m := range Models() {
		for _, width := range []uint{1, 8, 32, 64} {
			a := rand.New(rand.NewSource(42))
			b := rand.New(rand.NewSource(42))
			for i := 0; i < 200; i++ {
				ea := m.Perturb(width, a)
				eb := m.Perturb(width, b)
				if ea != eb {
					t.Fatalf("%s width %d draw %d: %+v vs %+v", m.Name(), width, i, ea, eb)
				}
				mask := ea.Mask
				if mask == 0 {
					mask = 1 << ea.Bit
				}
				if mask == 0 || mask&^widthMaskOf(width) != 0 {
					t.Fatalf("%s width %d draw %d: effect mask %#x outside width", m.Name(), width, i, mask)
				}
			}
		}
	}
}

// Patterns must be deterministic across calls, stay inside the value
// width, honor max, and be pairwise distinct — the differential suite
// replays them through all three engines and dedup matters there.
func TestModelPatternsDeterministic(t *testing.T) {
	for _, m := range Models() {
		for _, width := range []uint{1, 8, 64} {
			p1 := m.Patterns(width, 16)
			p2 := m.Patterns(width, 16)
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("%s width %d: Patterns not deterministic", m.Name(), width)
			}
			if len(p1) == 0 {
				t.Fatalf("%s width %d: no patterns", m.Name(), width)
			}
			if len(p1) > 16 {
				t.Fatalf("%s width %d: %d patterns exceed max 16", m.Name(), width, len(p1))
			}
			seen := map[Effect]bool{}
			for _, e := range p1 {
				if e.Mask == 0 || e.Mask&^widthMaskOf(width) != 0 {
					t.Fatalf("%s width %d: pattern mask %#x invalid", m.Name(), width, e.Mask)
				}
				if seen[e] {
					t.Fatalf("%s width %d: duplicate pattern %+v", m.Name(), width, e)
				}
				seen[e] = true
			}
		}
	}
}

// The k-bit model must flip exactly k distinct bits (clamped to the
// width) with a pure XOR op — the contract RunMultiBit's campaigns and
// the triage mask check rely on.
func TestKBitDistinctBits(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		m := KBit(k)
		for _, width := range []uint{1, 8, 64} {
			want := k
			if want > int(width) {
				want = int(width)
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 100; i++ {
				e := m.Perturb(width, rng)
				if e.Op != interp.FaultXor {
					t.Fatalf("bitflip%d: op %v, want XOR", k, e.Op)
				}
				if got := bits.OnesCount64(e.Mask); got != want {
					t.Fatalf("bitflip%d width %d: %d bits set (%#x), want %d", k, width, got, e.Mask, want)
				}
			}
		}
	}
}

// The default model's site stream must match the historical sampler:
// one rng.Intn(width) per draw yielding a Bit-form effect. This is the
// byte-identity anchor for the paper's fig2/fig8 defaults.
func TestBitflipLegacyStream(t *testing.T) {
	m := DefaultModel()
	a := rand.New(rand.NewSource(123))
	b := rand.New(rand.NewSource(123))
	for i := 0; i < 100; i++ {
		e := m.Perturb(64, a)
		want := Effect{Bit: uint(b.Intn(64))}
		if e != want {
			t.Fatalf("draw %d: %+v, want legacy %+v", i, e, want)
		}
	}
}

// Stuck-at effects must carry the matching engine op so replay applies
// AND-NOT / OR rather than XOR.
func TestStuckAtOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m0, _ := ModelByName("stuckat0")
	m1, _ := ModelByName("stuckat1")
	if e := m0.Perturb(64, rng); e.Op != interp.FaultStuckAt0 {
		t.Fatalf("stuckat0 op %v", e.Op)
	}
	if e := m1.Perturb(64, rng); e.Op != interp.FaultStuckAt1 {
		t.Fatalf("stuckat1 op %v", e.Op)
	}
	md, _ := ModelByName("defect")
	for _, e := range md.Patterns(64, 0) {
		if e.Op != interp.FaultStuckAt1 {
			t.Fatalf("defect pattern op %v", e.Op)
		}
		line := uint(bits.TrailingZeros64(e.Mask))
		if line >= 8 || e.Mask != (defectLanes<<line)&widthMaskOf(64) {
			t.Fatalf("defect pattern %#x is not a repeated bit line", e.Mask)
		}
	}
}
