package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/analysis"
	"repro/internal/interp"
)

// Effect is one perturbation of a value of a given bit width: either a
// single-bit XOR flip (Bit, Mask zero — the legacy encoding the default
// model keeps for replay compatibility) or a mask-wide perturbation
// applied with Op (XOR flip, stuck-at-0, stuck-at-1).
type Effect struct {
	Bit  uint
	Mask uint64
	Op   interp.FaultOp
}

// apply transfers the effect onto a drawn site.
func (e Effect) apply(f *interp.Fault) {
	f.Bit, f.Mask, f.Op = e.Bit, e.Mask, e.Op
}

// Model abstracts how a transient fault perturbs the result value of
// one dynamic instruction. Implementations must be stateless: Perturb's
// randomness comes only from the supplied RNG (so campaigns replay
// bit-identically from a seed) and Patterns is a pure function of its
// arguments (so detector coverage estimates and differential tests are
// deterministic).
type Model interface {
	// Name is the registry key and the -fault-model CLI spelling.
	Name() string
	// Class declares the triage-soundness properties of the model; the
	// campaign consults it before pruning sites by static proof.
	Class() analysis.FaultClass
	// Perturb draws one effect for a value width bits wide. It must
	// consume the RNG identically for equal widths so site streams are
	// reproducible.
	Perturb(width uint, rng *rand.Rand) Effect
	// Patterns enumerates up to max representative effects for a value
	// width bits wide, deterministically. Detectors use it to estimate
	// per-model coverage; differential tests use it to replay every
	// pattern through all engines. max <= 0 selects a model default.
	Patterns(width uint, max int) []Effect
}

// widthMaskOf returns the value mask for a width in bits (64 -> all ones).
func widthMaskOf(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// ---- registry ----

var (
	modelMu    sync.RWMutex
	modelByKey = map[string]Model{}
	modelOrder []string
)

// RegisterModel adds m to the registry under m.Name(). Registering a
// duplicate name panics: model names participate in cache keys and must
// be stable.
func RegisterModel(m Model) {
	modelMu.Lock()
	defer modelMu.Unlock()
	name := m.Name()
	if _, dup := modelByKey[name]; dup {
		panic(fmt.Sprintf("fault: duplicate model %q", name))
	}
	modelByKey[name] = m
	modelOrder = append(modelOrder, name)
}

// ModelByName returns the registered model named name.
func ModelByName(name string) (Model, bool) {
	modelMu.RLock()
	defer modelMu.RUnlock()
	m, ok := modelByKey[name]
	return m, ok
}

// Models returns every registered model in registration order.
func Models() []Model {
	modelMu.RLock()
	defer modelMu.RUnlock()
	out := make([]Model, len(modelOrder))
	for i, name := range modelOrder {
		out[i] = modelByKey[name]
	}
	return out
}

// ModelNames returns every registered model name in registration order.
func ModelNames() []string {
	modelMu.RLock()
	defer modelMu.RUnlock()
	return append([]string(nil), modelOrder...)
}

// DefaultModel returns the paper's model: a single-bit flip.
func DefaultModel() Model { return bitFlipModel{} }

func init() {
	RegisterModel(bitFlipModel{})
	RegisterModel(KBit(2))
	RegisterModel(byteFlipModel{})
	RegisterModel(stuckAtModel{one: false})
	RegisterModel(stuckAtModel{one: true})
	RegisterModel(defectModel{})
}

// valueClass is shared by every register-value model here: the fault
// touches exactly the bits its site mask declares on a single result.
// xorClass additionally guarantees every effect CHANGES the value (an
// XOR with a nonzero narrowed mask), which the detection proofs
// require; stuck-at models stay on valueClass because a stuck-at
// perturbation may be the identity, leaving the detector quiet.
var (
	valueClass = analysis.FaultClass{ValueLocal: true, BitsBounded: true}
	xorClass   = analysis.FaultClass{ValueLocal: true, BitsBounded: true, AlwaysFlips: true}
)

// ---- bitflip: the paper's single-bit flip (§II-A) ----

type bitFlipModel struct{}

func (bitFlipModel) Name() string               { return "bitflip" }
func (bitFlipModel) Class() analysis.FaultClass { return xorClass }

// Perturb draws exactly one rng.Intn(width), preserving the legacy site
// stream so default campaigns stay byte-identical across the refactor.
func (bitFlipModel) Perturb(width uint, rng *rand.Rand) Effect {
	return Effect{Bit: uint(rng.Intn(int(width)))}
}

func (bitFlipModel) Patterns(width uint, max int) []Effect {
	n := int(width)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Effect, n)
	for i := range out {
		out[i] = Effect{Mask: 1 << uint(i)}
	}
	return out
}

// ---- bitflip<k>: k distinct bits flipped per trial ----

type kBitModel struct{ k int }

// KBit returns the k-distinct-bit-flip model (the multi-bit extension
// formerly reachable only through Campaign.RunMultiBit).
func KBit(k int) Model {
	if k < 1 {
		k = 1
	}
	return kBitModel{k: k}
}

func (m kBitModel) Name() string               { return fmt.Sprintf("bitflip%d", m.k) }
func (m kBitModel) Class() analysis.FaultClass { return xorClass }

// Perturb keeps RandomMultiBitSite's draw discipline: rejection-sample
// single bits until k distinct ones accumulate, k clamped to the width.
func (m kBitModel) Perturb(width uint, rng *rand.Rand) Effect {
	bits := int(width)
	k := m.k
	if k > bits {
		k = bits
	}
	var mask uint64
	for picked := 0; picked < k; {
		b := uint(rng.Intn(bits))
		if mask&(1<<b) == 0 {
			mask |= 1 << b
			picked++
		}
	}
	return Effect{Mask: mask}
}

func (m kBitModel) Patterns(width uint, max int) []Effect {
	if max <= 0 {
		max = 32
	}
	return drawPatterns(m, width, max, int64(m.k))
}

// ---- byteflip: a whole byte lane corrupted at once ----

type byteFlipModel struct{}

func (byteFlipModel) Name() string               { return "byteflip" }
func (byteFlipModel) Class() analysis.FaultClass { return xorClass }

func (byteFlipModel) Perturb(width uint, rng *rand.Rand) Effect {
	if width < 8 {
		return Effect{Mask: widthMaskOf(width)}
	}
	lane := uint(rng.Intn(int(width) / 8))
	pat := uint64(1 + rng.Intn(255))
	return Effect{Mask: pat << (8 * lane)}
}

func (byteFlipModel) Patterns(width uint, max int) []Effect {
	if width < 8 {
		return []Effect{{Mask: widthMaskOf(width)}}
	}
	if max <= 0 {
		max = 32
	}
	return drawPatterns(byteFlipModel{}, width, max, 0)
}

// ---- stuckat0 / stuckat1: one bit forced to a level ----

type stuckAtModel struct{ one bool }

func (m stuckAtModel) Name() string {
	if m.one {
		return "stuckat1"
	}
	return "stuckat0"
}

func (m stuckAtModel) Class() analysis.FaultClass { return valueClass }

func (m stuckAtModel) op() interp.FaultOp {
	if m.one {
		return interp.FaultStuckAt1
	}
	return interp.FaultStuckAt0
}

func (m stuckAtModel) Perturb(width uint, rng *rand.Rand) Effect {
	bit := uint(rng.Intn(int(width)))
	return Effect{Mask: 1 << bit, Op: m.op()}
}

func (m stuckAtModel) Patterns(width uint, max int) []Effect {
	n := int(width)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Effect, n)
	for i := range out {
		out[i] = Effect{Mask: 1 << uint(i), Op: m.op()}
	}
	return out
}

// ---- defect: a repeating stuck-at-1 line across every byte lane ----

// defectModel models a defective datapath component corrupting the same
// bit line of every byte lane at once (the repeating error patterns of
// the GPU error study / ITHICA in PAPERS.md).
type defectModel struct{}

func (defectModel) Name() string               { return "defect" }
func (defectModel) Class() analysis.FaultClass { return valueClass }

const defectLanes = 0x0101010101010101

func (defectModel) Perturb(width uint, rng *rand.Rand) Effect {
	if width < 8 {
		return Effect{Mask: widthMaskOf(width), Op: interp.FaultStuckAt1}
	}
	line := uint(rng.Intn(8))
	return Effect{Mask: (defectLanes << line) & widthMaskOf(width), Op: interp.FaultStuckAt1}
}

func (defectModel) Patterns(width uint, max int) []Effect {
	if width < 8 {
		return []Effect{{Mask: widthMaskOf(width), Op: interp.FaultStuckAt1}}
	}
	n := 8
	if max > 0 && n > max {
		n = max
	}
	out := make([]Effect, n)
	for i := range out {
		out[i] = Effect{Mask: (defectLanes << uint(i)) & widthMaskOf(width), Op: interp.FaultStuckAt1}
	}
	return out
}

// drawPatterns enumerates up to max distinct effects of m by drawing
// from an RNG seeded purely by (model name, width, salt) — deterministic
// for a fixed model and width, independent of campaign seeds.
func drawPatterns(m Model, width uint, max int, salt int64) []Effect {
	var seed int64 = salt*1_000_003 + int64(width)
	for _, c := range m.Name() {
		seed = seed*31 + int64(c)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, max)
	out := make([]Effect, 0, max)
	for tries := 0; len(out) < max && tries < max*16; tries++ {
		e := m.Perturb(width, rng)
		key := e.Mask ^ uint64(e.Op)<<62
		if e.Mask == 0 {
			key = 1 << uint(e.Bit)
			e = Effect{Mask: key}
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	return out
}
