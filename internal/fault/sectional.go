package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/ir"
)

// This file implements sectional (FastFlip-style) campaigns: trials are
// planned per section of ir.PartitionSections, drawn from per-section
// deterministic RNG sub-streams, executed as ordinary site batches, and
// composed back into a whole-program SDC table. Because a section's plan
// depends only on its own content, golden weight, seed, and trial share,
// an edit re-runs exactly the sections it touches; everything else is
// replayed from the artifact store byte-identically (DESIGN.md §13).

// SectionSeed derives the deterministic RNG sub-stream seed of one
// section from the campaign seed and the section's stable identity
// (function name + ordinal — never module-wide instruction IDs, so the
// stream survives renumbering caused by edits elsewhere).
func SectionSeed(seed int64, funcName string, secIdx int) int64 {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(funcName))
	binary.LittleEndian.PutUint64(b[:], uint64(secIdx))
	h.Write(b[:])
	sum := h.Sum(nil)
	return int64(binary.LittleEndian.Uint64(sum[:8]))
}

// Apportion distributes total trials over the given non-negative weights
// by largest remainder: shares are proportional, sum exactly to total,
// and zero-weight entries get zero. Ties in remainder break toward the
// lower index, so the split is deterministic.
func Apportion(total int, weights []int64) []int {
	out := make([]int, len(weights))
	var wsum int64
	for _, w := range weights {
		wsum += w
	}
	if wsum == 0 || total == 0 {
		return out
	}
	type rem struct {
		idx  int
		frac int64 // remainder numerator (scaled by wsum)
	}
	rems := make([]rem, 0, len(weights))
	given := 0
	for i, w := range weights {
		q := int64(total) * w
		out[i] = int(q / wsum)
		given += out[i]
		rems = append(rems, rem{idx: i, frac: q % wsum})
	}
	// Hand the leftover trials to the largest remainders.
	for given < total {
		best := -1
		for j := range rems {
			if rems[j].frac < 0 {
				continue
			}
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		out[rems[best].idx]++
		rems[best].frac = -1
		given++
	}
	return out
}

// NewSamplerIDs builds a sampler restricted to the given static
// instruction IDs (ascending), keeping only injectable instructions that
// executed under g. It is the per-section analogue of NewSampler.
func NewSamplerIDs(m *ir.Module, g *Golden, ids []int, excludeDup bool) *Sampler {
	s := &Sampler{mod: m, g: g}
	for _, id := range ids {
		in := m.Instrs[id]
		if !in.IsInjectable() || (excludeDup && in.Dup) {
			continue
		}
		c := g.Profile.InstrCount[id]
		if c == 0 {
			continue
		}
		s.total += c
		s.ids = append(s.ids, id)
		s.cum = append(s.cum, s.total)
	}
	return s
}

// LocalSite is an injection site in section-local coordinates: Ordinal
// indexes the section's sorted Instrs list instead of carrying a
// module-wide static ID, so a stored profile stays valid when an edit
// elsewhere renumbers the module.
type LocalSite struct {
	Ordinal  int     `json:"ord"`
	DynIndex int64   `json:"dyn"`
	Bit      uint    `json:"bit,omitempty"`
	Mask     uint64  `json:"mask,omitempty"`
	Op       uint8   `json:"op,omitempty"`
	Outcome  Outcome `json:"out"`
}

// SectionProfile is the per-section campaign slice — the unit the
// incremental artifact store caches and the composition step merges.
type SectionProfile struct {
	Name      string      `json:"name"`
	Requested int64       `json:"requested"`
	Shortfall int64       `json:"shortfall"`
	Sites     []LocalSite `json:"sites,omitempty"`
}

// Result folds the profile's outcomes into a CampaignResult slice.
func (p *SectionProfile) Result() CampaignResult {
	res := CampaignResult{Requested: p.Requested, Shortfall: p.Shortfall}
	for _, s := range p.Sites {
		res.Add(s.Outcome)
	}
	return res
}

// Faults maps the profile's sites back to module coordinates of sec.
func (p *SectionProfile) Faults(sec *ir.Section) []interp.Fault {
	out := make([]interp.Fault, len(p.Sites))
	for i, s := range p.Sites {
		out[i] = interp.Fault{InstrID: sec.Instrs[s.Ordinal], DynIndex: s.DynIndex,
			Bit: s.Bit, Mask: s.Mask, Op: interp.FaultOp(s.Op)}
	}
	return out
}

// SectionGoldenHash canonically hashes the golden-run weight of one
// section: the dynamic execution count of each member instruction by
// section-local ordinal, plus the whole-program golden context (output
// hash and dynamic length) that classification and the hang budget
// depend on. Like the content hash it never mentions module-wide IDs.
func SectionGoldenHash(sec *ir.Section, g *Golden) [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "secgolden/v1 %s out=%x dyn=%d\n", sec.Name(), g.OutputHash, g.DynInstrs)
	for ord, id := range sec.Instrs {
		fmt.Fprintf(h, "%d=%d\n", ord, g.Profile.InstrCount[id])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// SectionTrialPlan is one section's share of a sectional campaign.
type SectionTrialPlan struct {
	Sec  *ir.Section
	N    int   // trials apportioned to this section
	Seed int64 // the section's RNG sub-stream seed
}

// PlanSectional apportions n program-level trials over the module's
// sections proportionally to each section's injectable dynamic weight
// under the golden run, and derives each section's sub-stream seed. The
// plan is deterministic and — by construction — independent of every
// other section's content.
func (c *Campaign) PlanSectional(n int, seed int64, excludeDup bool) []SectionTrialPlan {
	set := ir.PartitionSections(c.Mod)
	weights := make([]int64, len(set.Sections))
	for i, sec := range set.Sections {
		weights[i] = sectionWeight(c.Mod, c.Golden, sec, excludeDup)
	}
	counts := Apportion(n, weights)
	plans := make([]SectionTrialPlan, 0, len(set.Sections))
	for i, sec := range set.Sections {
		if counts[i] == 0 {
			continue
		}
		plans = append(plans, SectionTrialPlan{
			Sec:  sec,
			N:    counts[i],
			Seed: SectionSeed(seed, sec.FuncName, sec.SecIdx),
		})
	}
	return plans
}

// sectionWeight is the number of injectable dynamic instruction
// instances inside sec under the golden run.
func sectionWeight(m *ir.Module, g *Golden, sec *ir.Section, excludeDup bool) int64 {
	var w int64
	for _, id := range sec.Instrs {
		in := m.Instrs[id]
		if !in.IsInjectable() || (excludeDup && in.Dup) {
			continue
		}
		w += g.Profile.InstrCount[id]
	}
	return w
}

// RunSection executes one section's share of a sectional campaign: n
// sites drawn from the section's sub-stream, classified exactly as a
// whole-program batch would classify them (triage pruning included), and
// recorded in section-local coordinates.
func (c *Campaign) RunSection(sec *ir.Section, n int, seed int64, excludeDup bool) SectionProfile {
	sampler := NewSamplerIDs(c.Mod, c.Golden, sec.Instrs, excludeDup)
	m := c.model()
	sites, shortfall := sampleSites(n, seed, func(rng *rand.Rand) (interp.Fault, bool) {
		return sampler.RandomSiteModel(m, rng)
	})
	c.Metrics.AddShortfall(shortfall)
	outcomes := c.runSites(sites)
	prof := SectionProfile{Name: sec.Name(), Requested: int64(n), Shortfall: shortfall}
	ord := make(map[int]int, len(sec.Instrs))
	for o, id := range sec.Instrs {
		ord[id] = o
	}
	for i, s := range sites {
		prof.Sites = append(prof.Sites, LocalSite{
			Ordinal: ord[s.InstrID], DynIndex: s.DynIndex,
			Bit: s.Bit, Mask: s.Mask, Op: uint8(s.Op), Outcome: outcomes[i],
		})
	}
	return prof
}

// ComposeSections merges per-section profiles into the whole-program
// campaign table. Merge order follows the plan order (section index), so
// composition is deterministic.
func ComposeSections(profiles []SectionProfile) CampaignResult {
	var res CampaignResult
	for i := range profiles {
		res.Merge(profiles[i].Result())
	}
	return res
}

// PlannedShortfall returns the trials a plan could not place anywhere
// (a request larger than the module's total injectable weight can
// apportion): n minus the sum of planned per-section shares.
func PlannedShortfall(n int, plans []SectionTrialPlan) int64 {
	var planned int64
	for _, p := range plans {
		planned += int64(p.N)
	}
	if missing := int64(n) - planned; missing > 0 {
		return missing
	}
	return 0
}

// ComposePlanned merges per-section profiles produced under the given
// plan into the whole-program campaign table, accounting trials the plan
// could not apportion anywhere as shortfall so the composed result keeps
// Run's Requested/Shortfall contract. Profiles must be in plan order;
// composition is deterministic and independent of how (or where, or in
// which process) each profile was computed — the property the campaign
// server's resumable shards rely on.
func ComposePlanned(n int, plans []SectionTrialPlan, profiles []SectionProfile) CampaignResult {
	res := ComposeSections(profiles)
	if missing := PlannedShortfall(n, plans); missing > 0 {
		res.Requested += missing
		res.Shortfall += missing
	}
	return res
}

// RunSectional is the sectional counterpart of Run: n trials apportioned
// over sections, drawn from per-section sub-streams, composed into one
// table. It also returns the per-section profiles so callers (the
// incremental pipeline) can cache each slice independently.
func (c *Campaign) RunSectional(n int, seed int64) (CampaignResult, []SectionProfile) {
	plans := c.PlanSectional(n, seed, false)
	profiles := make([]SectionProfile, len(plans))
	for i, p := range plans {
		profiles[i] = c.RunSection(p.Sec, p.N, p.Seed, false)
	}
	// Trials that could not be apportioned anywhere (no injectable weight
	// at all) surface as shortfall, mirroring Run.
	c.Metrics.AddShortfall(PlannedShortfall(n, plans))
	return ComposePlanned(n, plans, profiles), profiles
}

// SectionInstrStats is the per-instruction measurement of one section in
// section-local coordinates (Ordinal aligns with Section.Instrs), the
// cacheable unit behind incremental SID measurement.
type SectionInstrStats struct {
	Name  string       `json:"name"`
	Stats []InstrStats `json:"stats"` // InstrID holds the LOCAL ordinal
}

// PerInstructionSection runs k trials against every injectable
// original-program instruction of one section, drawing from the
// section's RNG sub-stream. Stats are returned in section-local
// coordinates so the artifact survives module renumbering.
func (c *Campaign) PerInstructionSection(sec *ir.Section, k int, seed int64) SectionInstrStats {
	m := c.model()
	rng := rand.New(rand.NewSource(seed))
	sampler := NewSamplerIDs(c.Mod, c.Golden, sec.Instrs, true)

	out := SectionInstrStats{Name: sec.Name(), Stats: make([]InstrStats, len(sec.Instrs))}
	var sites []interp.Fault
	var owner []int // local ordinal per site
	for ord, id := range sec.Instrs {
		in := c.Mod.Instrs[id]
		out.Stats[ord].InstrID = ord
		if !in.IsInjectable() || in.Dup {
			continue
		}
		if c.Golden.Profile.InstrCount[id] == 0 {
			continue
		}
		out.Stats[ord].Executed = true
		for t := 0; t < k; t++ {
			site, ok := sampler.SiteForModel(m, id, rng)
			if !ok {
				break
			}
			sites = append(sites, site)
			owner = append(owner, ord)
		}
	}
	for i, o := range c.runSites(sites) {
		st := &out.Stats[owner[i]]
		st.Trials++
		switch o {
		case OutcomeSDC:
			st.SDC++
		case OutcomeCrash:
			st.Crash++
		case OutcomeHang:
			st.Hang++
		case OutcomeDetected:
			st.Detected++
		default:
			st.Benign++
		}
	}
	return out
}

// ComposeInstrStats translates per-section stats back into a
// module-indexed per-instruction table (the shape PerInstruction
// returns). Sections must align with the module's current partition.
func ComposeInstrStats(m *ir.Module, perSec []SectionInstrStats) ([]InstrStats, error) {
	set := ir.PartitionSections(m)
	byName := make(map[string]*ir.Section, len(set.Sections))
	for _, sec := range set.Sections {
		byName[sec.Name()] = sec
	}
	stats := make([]InstrStats, m.NumInstrs())
	for i := range stats {
		stats[i].InstrID = i
	}
	for si := range perSec {
		sec, ok := byName[perSec[si].Name]
		if !ok {
			return nil, fmt.Errorf("fault: section %q not in current partition", perSec[si].Name)
		}
		if len(perSec[si].Stats) != len(sec.Instrs) {
			return nil, fmt.Errorf("fault: section %q has %d stats for %d instrs",
				perSec[si].Name, len(perSec[si].Stats), len(sec.Instrs))
		}
		for ord, st := range perSec[si].Stats {
			id := sec.Instrs[ord]
			st.InstrID = id
			stats[id] = st
		}
	}
	return stats, nil
}

// PerInstructionSectional is the sectional counterpart of
// PerInstruction: every section measured under its own sub-stream, then
// composed into the module-indexed table.
func (c *Campaign) PerInstructionSectional(k int, seed int64) ([]InstrStats, []SectionInstrStats) {
	set := ir.PartitionSections(c.Mod)
	perSec := make([]SectionInstrStats, len(set.Sections))
	for i, sec := range set.Sections {
		perSec[i] = c.PerInstructionSection(sec, k, SectionSeed(seed, sec.FuncName, sec.SecIdx))
	}
	stats, err := ComposeInstrStats(c.Mod, perSec)
	if err != nil {
		// The sections came from the same partition we compose against;
		// a mismatch is a programming error, not a runtime condition.
		panic(err)
	}
	return stats, perSec
}
