package fault

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// Canonical campaign phases: the Fig. 8 cost categories of the MINPSID
// pipeline plus the coverage-evaluation campaigns the harness runs on top.
const (
	PhaseRefFI        = "ref-fi"        // ① per-instruction FI on the reference input
	PhaseSearchEngine = "search-engine" // ③-⑥ input search incl. fitness golden runs
	PhaseIncubativeFI = "incubative-fi" // ⑦ per-instruction FI on searched inputs
	PhaseEvaluation   = "evaluation"    // coverage campaigns on evaluation inputs
	PhaseProgramFI    = "program-fi"    // raw characterization campaigns (sdcfi, server jobs)
)

// Metrics aggregates campaign-engine measurements grouped by pipeline
// phase: trial counts, outcome histograms, golden-run and cache traffic,
// and wall/busy time. All methods are safe for concurrent use and are
// no-ops on a nil receiver, so instrumentation call sites need no guards.
//
// Metrics observe the engine; they never influence it. Enabling or
// disabling metrics cannot change any campaign result.
type Metrics struct {
	mu     sync.Mutex
	order  []string
	phases map[string]*PhaseMetrics
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{phases: make(map[string]*PhaseMetrics)}
}

// Phase returns the named phase accumulator, creating it on first use.
// A nil Metrics returns a nil *PhaseMetrics whose methods are no-ops.
func (m *Metrics) Phase(name string) *PhaseMetrics {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.phases[name]
	if !ok {
		p = &PhaseMetrics{name: name}
		m.phases[name] = p
		m.order = append(m.order, name)
	}
	return p
}

// PhaseMetrics accumulates measurements for one pipeline phase.
type PhaseMetrics struct {
	mu          sync.Mutex
	name        string
	trials      int64
	outcomes    [NumOutcomes]int64
	shortfall   int64
	pruned        int64
	prunedBy      map[string]int64 // pruned trials per fault-model name
	prunedByProof map[string]int64 // pruned trials per triage proof class
	goldenRuns  int64
	cacheHits   int64
	cacheMisses int64
	wall        time.Duration
	busy        time.Duration
	maxWorkers  int
}

// AddOutcomes folds one batch of executed trial outcomes into the phase.
func (p *PhaseMetrics) AddOutcomes(os []Outcome) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for _, o := range os {
		p.outcomes[o]++
	}
	p.trials += int64(len(os))
	p.mu.Unlock()
}

// AddShortfall records trials a campaign requested but could not draw.
func (p *PhaseMetrics) AddShortfall(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	p.shortfall += n
	p.mu.Unlock()
}

// AddPruned records trials the static triage proved benign and the
// campaign therefore skipped, attributed to the fault model the campaign
// ran under. Pruned trials still appear as Benign in campaign results;
// this counter is the audit trail distinguishing proved-benign-unrun
// from executed-and-observed-benign, and the per-model breakdown lets
// the differential re-injection suite assert triage soundness
// model-by-model instead of in aggregate.
func (p *PhaseMetrics) AddPruned(model string, n int64) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	p.pruned += n
	if p.prunedBy == nil {
		p.prunedBy = make(map[string]int64)
	}
	p.prunedBy[model] += n
	p.mu.Unlock()
}

// AddPrunedProof attributes already-counted pruned trials to the triage
// proof class that justified them ("dead-value", "range-masked",
// "dup-detected", ...). Complementary to AddPruned: AddPruned carries
// the per-model total, this carries the per-proof breakdown, so reports
// can show which analysis tier earned each skipped trial.
func (p *PhaseMetrics) AddPrunedProof(proof string, n int64) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	if p.prunedByProof == nil {
		p.prunedByProof = make(map[string]int64)
	}
	p.prunedByProof[proof] += n
	p.mu.Unlock()
}

// AddGoldenRun records one executed (non-memoized) golden run.
func (p *PhaseMetrics) AddGoldenRun() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.goldenRuns++
	p.mu.Unlock()
}

// AddCacheHit records one memoization hit (golden run or campaign).
func (p *PhaseMetrics) AddCacheHit() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cacheHits++
	p.mu.Unlock()
}

// AddCacheMiss records one memoization miss.
func (p *PhaseMetrics) AddCacheMiss() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cacheMisses++
	p.mu.Unlock()
}

// AddWall adds wall-clock time spent in the phase.
func (p *PhaseMetrics) AddWall(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.wall += d
	p.mu.Unlock()
}

// AddBusy adds worker execution time (summed across workers).
func (p *PhaseMetrics) AddBusy(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.busy += d
	p.mu.Unlock()
}

// ObserveWorkers records the worker count of one campaign; the phase keeps
// the maximum observed.
func (p *PhaseMetrics) ObserveWorkers(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if n > p.maxWorkers {
		p.maxWorkers = n
	}
	p.mu.Unlock()
}

// PhaseSnapshot is a consistent copy of one phase's counters.
type PhaseSnapshot struct {
	Name        string             `json:"name"`
	Trials      int64              `json:"trials"` // executed faulty-run trials
	Outcomes    [NumOutcomes]int64 `json:"outcomes"`
	Shortfall   int64              `json:"shortfall"` // requested-but-undrawable trials
	Pruned      int64              `json:"pruned"`    // trials proved benign by static triage, not executed
	// PrunedByModel breaks Pruned down by fault-model name, and
	// PrunedByProof by the triage proof class that justified the skip
	// (absent when nothing was pruned).
	PrunedByModel map[string]int64 `json:"pruned_by_model,omitempty"`
	PrunedByProof map[string]int64 `json:"pruned_by_proof,omitempty"`
	GoldenRuns    int64            `json:"golden_runs"` // golden executions actually run (cache misses run once)
	CacheHits   int64              `json:"cache_hits"`
	CacheMisses int64              `json:"cache_misses"`
	Wall        time.Duration      `json:"wall_ns"` // wall-clock time inside instrumented sections
	Busy        time.Duration      `json:"busy_ns"` // summed per-worker execution time
	MaxWorkers  int                `json:"max_workers"`
}

// HitRate returns the cache hit fraction (0 when the phase saw no lookups).
func (s PhaseSnapshot) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Utilization returns Busy / (Wall x MaxWorkers): the fraction of the
// phase's worker-seconds spent executing rather than stalled on dispatch.
func (s PhaseSnapshot) Utilization() float64 {
	if s.Wall <= 0 || s.MaxWorkers <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(s.Wall) * float64(s.MaxWorkers))
	if u > 1 {
		u = 1
	}
	return u
}

// Snapshot returns a copy of the phase counters.
func (p *PhaseMetrics) Snapshot() PhaseSnapshot {
	if p == nil {
		return PhaseSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var byModel, byProof map[string]int64
	if len(p.prunedBy) > 0 {
		byModel = make(map[string]int64, len(p.prunedBy))
		for k, v := range p.prunedBy {
			byModel[k] = v
		}
	}
	if len(p.prunedByProof) > 0 {
		byProof = make(map[string]int64, len(p.prunedByProof))
		for k, v := range p.prunedByProof {
			byProof[k] = v
		}
	}
	return PhaseSnapshot{
		Name:          p.name,
		Trials:        p.trials,
		Outcomes:      p.outcomes,
		Shortfall:     p.shortfall,
		Pruned:        p.pruned,
		PrunedByModel: byModel,
		PrunedByProof: byProof,
		GoldenRuns:  p.goldenRuns,
		CacheHits:   p.cacheHits,
		CacheMisses: p.cacheMisses,
		Wall:        p.wall,
		Busy:        p.busy,
		MaxWorkers:  p.maxWorkers,
	}
}

// Snapshots returns every phase in first-use order.
func (m *Metrics) Snapshots() []PhaseSnapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	phases := make([]*PhaseMetrics, len(names))
	for i, n := range names {
		phases[i] = m.phases[n]
	}
	m.mu.Unlock()
	out := make([]PhaseSnapshot, len(phases))
	for i, p := range phases {
		out[i] = p.Snapshot()
	}
	return out
}

// Publish copies every phase's counters into an obs registry under
// "fault.phase.<name>.*" keys, making Metrics a feeder of the unified
// registry: manifests carry the per-phase accounting without a second
// schema, and benchdiff can diff phases across runs. Call it once, when
// the run is complete (counters are absolute values, not deltas).
func (m *Metrics) Publish(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	for _, s := range m.Snapshots() {
		prefix := "fault.phase." + s.Name + "."
		reg.Counter(prefix + "trials").Add(s.Trials)
		for o := Outcome(0); o < NumOutcomes; o++ {
			reg.Counter(prefix + "outcome." + o.String()).Add(s.Outcomes[o])
		}
		reg.Counter(prefix + "shortfall").Add(s.Shortfall)
		reg.Counter(prefix + "pruned").Add(s.Pruned)
		for model, n := range s.PrunedByModel {
			reg.Counter(prefix + "pruned.model." + model).Add(n)
		}
		for proof, n := range s.PrunedByProof {
			reg.Counter(prefix + "pruned.proof." + proof).Add(n)
		}
		reg.Counter(prefix + "golden_runs").Add(s.GoldenRuns)
		reg.Counter(prefix + "cache_hits").Add(s.CacheHits)
		reg.Counter(prefix + "cache_misses").Add(s.CacheMisses)
		reg.Counter(prefix + "wall_ns").Add(s.Wall.Nanoseconds())
		reg.Counter(prefix + "busy_ns").Add(s.Busy.Nanoseconds())
		reg.Gauge(prefix + "max_workers").SetMax(int64(s.MaxWorkers))
	}
}

// Render prints the per-phase metrics table (the -metrics CLI output).
func (m *Metrics) Render(w io.Writer) error {
	snaps := m.Snapshots()
	fmt.Fprintln(w, "Campaign-engine metrics (per phase)")
	if len(snaps) == 0 {
		fmt.Fprintln(w, "  (no campaigns recorded)")
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Phase\tTrials\tSDC\tCrash\tHang\tDetected\tBenign\tPruned\tShortfall\tGoldenRuns\tCacheHit%\tWall\tWorkers\tUtil%")
	for _, s := range snaps {
		hit := "-"
		if s.CacheHits+s.CacheMisses > 0 {
			hit = fmt.Sprintf("%.1f%% (%d/%d)", 100*s.HitRate(), s.CacheHits, s.CacheHits+s.CacheMisses)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%.2fs\t%d\t%.0f%%\n",
			s.Name, s.Trials,
			s.Outcomes[OutcomeSDC], s.Outcomes[OutcomeCrash], s.Outcomes[OutcomeHang],
			s.Outcomes[OutcomeDetected], s.Outcomes[OutcomeBenign],
			s.Pruned, s.Shortfall, s.GoldenRuns, hit, s.Wall.Seconds(), s.MaxWorkers, 100*s.Utilization())
	}
	return tw.Flush()
}
