package fault

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
)

// TrueCoverageResult reports an SDC-coverage measurement in the paper's
// sense: of the faults that cause an SDC in the *unprotected* program, the
// fraction the protected program detects.
type TrueCoverageResult struct {
	Trials    int64 // faults sampled on the unprotected program
	SDCFaults int64 // of those, how many corrupted the unprotected output
	Mitigated int64 // of the SDC faults, how many the protection detected
	Unprotect CampaignResult
}

// Coverage returns Mitigated / SDCFaults; ok is false when no SDC fault
// was observed (coverage undefined for this input).
func (r TrueCoverageResult) Coverage() (float64, bool) {
	if r.SDCFaults == 0 {
		return 0, false
	}
	return float64(r.Mitigated) / float64(r.SDCFaults), true
}

// TrueCoverage measures the SDC coverage of a protected program exactly as
// the paper defines it (§II-A: "the percentage of SDCs that has been
// mitigated by a used protection technique"):
//
//  1. sample n fault sites uniformly over the dynamic instructions of the
//     ORIGINAL program and classify each outcome there;
//  2. replay every SDC-producing site against the PROTECTED program (the
//     duplication transform preserves the dynamic behavior of original
//     instructions, so (instruction, occurrence, bit) identifies the same
//     physical fault — idMap translates static instruction IDs);
//  3. coverage = detected replays / SDC sites.
//
// This avoids the inflation a protected-program-only campaign suffers,
// where detections of faults that would have been masked anyway count as
// coverage.
func TrueCoverage(orig, prot *ir.Module, idMap map[int]int, bind interp.Binding,
	exec interp.Config, n int, seed int64, workers int) (TrueCoverageResult, error) {
	return TrueCoverageOpts(orig, prot, idMap, bind, exec, CoverageOptions{
		Trials: n, Seed: seed, Workers: workers,
	})
}

// CoverageOptions bundles the knobs of a TrueCoverage measurement. Cache,
// if non-nil, memoizes the golden runs and the phase-1 unprotected-program
// campaign: evaluating several protections of the same program under the
// same input at the same (Trials, Seed) then shares one site sample and
// one set of unprotected outcomes instead of re-executing them. Metrics,
// if non-nil, receives the campaign accounting.
type CoverageOptions struct {
	Trials  int
	Seed    int64
	Workers int
	// Model selects the fault model for both campaign phases; nil means
	// the paper's single-bit flip.
	Model   Model
	Cache   *Cache
	Metrics *PhaseMetrics
	// Obs, if non-nil, is threaded into both campaigns (observational).
	Obs *obs.Obs
}

// TrueCoverageOpts is TrueCoverage with memoization and metrics.
func TrueCoverageOpts(orig, prot *ir.Module, idMap map[int]int, bind interp.Binding,
	exec interp.Config, opt CoverageOptions) (TrueCoverageResult, error) {

	goldenO, err := opt.Cache.Golden(orig, bind, exec, opt.Metrics)
	if err != nil {
		return TrueCoverageResult{}, fmt.Errorf("fault: original golden: %w", err)
	}

	// Phase 1: campaign on the original program (memoized: identical for
	// every protection of the same original under this input and seed).
	campO := &Campaign{Mod: orig, Bind: bind, Cfg: exec, Golden: goldenO,
		Workers: opt.Workers, Model: opt.Model, Metrics: opt.Metrics, Obs: opt.Obs}
	sites, outcomesO, shortfall := opt.Cache.unprotectedCampaign(campO, true, opt.Trials, opt.Seed)
	campO.Metrics.AddShortfall(shortfall)
	return ReplayCoverage(prot, idMap, bind, exec, opt, sites, outcomesO, int64(opt.Trials), shortfall)
}

// ReplayCoverage finishes a true-coverage measurement from an explicit
// phase-1 sample: the sites drawn on the ORIGINAL program and their
// outcomes there. SDC sites are replayed against the protected program.
// The sectional (incremental) pipeline composes its per-section campaign
// slices into exactly this shape, so composed and whole-program
// coverage measurements share one phase-2 implementation by
// construction.
func ReplayCoverage(prot *ir.Module, idMap map[int]int, bind interp.Binding,
	exec interp.Config, opt CoverageOptions, sites []interp.Fault, outcomesO []Outcome,
	requested, shortfall int64) (TrueCoverageResult, error) {

	goldenP, err := opt.Cache.Golden(prot, bind, exec, opt.Metrics)
	if err != nil {
		return TrueCoverageResult{}, fmt.Errorf("fault: protected golden: %w", err)
	}

	res := TrueCoverageResult{Trials: int64(len(sites))}
	res.Unprotect.Requested = requested
	res.Unprotect.Shortfall = shortfall
	var replay []interp.Fault
	for i, o := range outcomesO {
		res.Unprotect.Add(o)
		if o != OutcomeSDC {
			continue
		}
		res.SDCFaults++
		s := sites[i]
		newID, ok := idMap[s.InstrID]
		if !ok {
			return TrueCoverageResult{}, fmt.Errorf("fault: no protected mapping for instr %d", s.InstrID)
		}
		// Carry the full effect (Bit, Mask, Op): non-default models
		// perturb via masks and stuck-at ops, and the replay must be the
		// same physical fault at the translated static ID.
		replay = append(replay, interp.Fault{InstrID: newID, DynIndex: s.DynIndex,
			Bit: s.Bit, Mask: s.Mask, Op: s.Op})
	}

	// Phase 2: replay SDC sites against the protected program.
	campP := &Campaign{Mod: prot, Bind: bind, Cfg: exec, Golden: goldenP,
		Workers: opt.Workers, Model: opt.Model, Metrics: opt.Metrics, Obs: opt.Obs}
	outcomesP := campP.runSites(replay)
	for _, o := range outcomesP {
		if o == OutcomeDetected {
			res.Mitigated++
		}
	}
	return res, nil
}
