package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/ir"
)

// TrueCoverageResult reports an SDC-coverage measurement in the paper's
// sense: of the faults that cause an SDC in the *unprotected* program, the
// fraction the protected program detects.
type TrueCoverageResult struct {
	Trials    int64 // faults sampled on the unprotected program
	SDCFaults int64 // of those, how many corrupted the unprotected output
	Mitigated int64 // of the SDC faults, how many the protection detected
	Unprotect CampaignResult
}

// Coverage returns Mitigated / SDCFaults; ok is false when no SDC fault
// was observed (coverage undefined for this input).
func (r TrueCoverageResult) Coverage() (float64, bool) {
	if r.SDCFaults == 0 {
		return 0, false
	}
	return float64(r.Mitigated) / float64(r.SDCFaults), true
}

// TrueCoverage measures the SDC coverage of a protected program exactly as
// the paper defines it (§II-A: "the percentage of SDCs that has been
// mitigated by a used protection technique"):
//
//  1. sample n fault sites uniformly over the dynamic instructions of the
//     ORIGINAL program and classify each outcome there;
//  2. replay every SDC-producing site against the PROTECTED program (the
//     duplication transform preserves the dynamic behavior of original
//     instructions, so (instruction, occurrence, bit) identifies the same
//     physical fault — idMap translates static instruction IDs);
//  3. coverage = detected replays / SDC sites.
//
// This avoids the inflation a protected-program-only campaign suffers,
// where detections of faults that would have been masked anyway count as
// coverage.
func TrueCoverage(orig, prot *ir.Module, idMap map[int]int, bind interp.Binding,
	exec interp.Config, n int, seed int64, workers int) (TrueCoverageResult, error) {

	goldenO, err := RunGolden(orig, bind, exec)
	if err != nil {
		return TrueCoverageResult{}, fmt.Errorf("fault: original golden: %w", err)
	}
	goldenP, err := RunGolden(prot, bind, exec)
	if err != nil {
		return TrueCoverageResult{}, fmt.Errorf("fault: protected golden: %w", err)
	}

	// Phase 1: campaign on the original program.
	rng := rand.New(rand.NewSource(seed))
	sampler := NewSampler(orig, goldenO, true)
	sites := make([]interp.Fault, 0, n)
	for i := 0; i < n; i++ {
		if s, ok := sampler.RandomSite(rng); ok {
			sites = append(sites, s)
		}
	}
	campO := &Campaign{Mod: orig, Bind: bind, Cfg: exec, Golden: goldenO, Workers: workers}
	outcomesO := campO.runSites(sites)

	res := TrueCoverageResult{Trials: int64(len(sites))}
	var replay []interp.Fault
	for i, o := range outcomesO {
		res.Unprotect.Add(o)
		if o != OutcomeSDC {
			continue
		}
		res.SDCFaults++
		s := sites[i]
		newID, ok := idMap[s.InstrID]
		if !ok {
			return TrueCoverageResult{}, fmt.Errorf("fault: no protected mapping for instr %d", s.InstrID)
		}
		replay = append(replay, interp.Fault{InstrID: newID, DynIndex: s.DynIndex, Bit: s.Bit})
	}

	// Phase 2: replay SDC sites against the protected program.
	campP := &Campaign{Mod: prot, Bind: bind, Cfg: exec, Golden: goldenP, Workers: workers}
	outcomesP := campP.runSites(replay)
	for _, o := range outcomesP {
		if o == OutcomeDetected {
			res.Mitigated++
		}
	}
	return res, nil
}
