package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
)

// testProgram is a small kernel with arithmetic, branches, and memory, so
// faults can produce every outcome class.
const testProgram = `
var data[] int;
func main(n int) {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		var v int = data[i % len(data)];
		if (v % 2 == 0) {
			s = s + v * 3;
		} else {
			s = s - v;
		}
	}
	emiti(s);
}`

func setup(t testing.TB) (*ir.Module, interp.Binding, *Golden) {
	t.Helper()
	m, err := minicc.Compile("fi.mc", testProgram)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bind := interp.Binding{
		Args:    []uint64{50},
		Globals: map[string][]uint64{"data": {3, 8, 1, 6, 2, 9, 4}},
	}
	g, err := RunGolden(m, bind, interp.Config{})
	if err != nil {
		t.Fatalf("RunGolden: %v", err)
	}
	return m, bind, g
}

func TestRunGolden(t *testing.T) {
	m, bind, g := setup(t)
	if len(g.Output) != 1 {
		t.Fatalf("golden output = %v", g.Output)
	}
	if g.DynInstrs <= 0 || g.Cycles < g.DynInstrs {
		t.Fatalf("golden accounting bogus: %+v", g)
	}
	var sum int64
	for _, c := range g.Profile.InstrCount {
		sum += c
	}
	if sum != g.DynInstrs {
		t.Fatalf("profile total %d != dyn %d", sum, g.DynInstrs)
	}
	_ = m
	_ = bind
}

func TestRunGoldenRejectsCrashingInput(t *testing.T) {
	m, err := minicc.Compile("crash.mc", `func main(n int) { emiti(1 / n); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGolden(m, interp.Binding{Args: []uint64{0}}, interp.Config{}); err == nil {
		t.Fatal("RunGolden accepted a crashing input")
	}
}

func TestClassify(t *testing.T) {
	g := &Golden{Output: []uint64{1, 2}}
	cases := []struct {
		res  interp.Result
		want Outcome
	}{
		{interp.Result{Status: interp.StatusOK, Output: []uint64{1, 2}}, OutcomeBenign},
		{interp.Result{Status: interp.StatusOK, Output: []uint64{1, 3}}, OutcomeSDC},
		{interp.Result{Status: interp.StatusOK, Output: []uint64{1}}, OutcomeSDC},
		{interp.Result{Status: interp.StatusOK, Output: []uint64{1, 2, 3}}, OutcomeSDC},
		{interp.Result{Status: interp.StatusCrash}, OutcomeCrash},
		{interp.Result{Status: interp.StatusHang}, OutcomeHang},
		{interp.Result{Status: interp.StatusDetected}, OutcomeDetected},
	}
	for i, tc := range cases {
		if got := Classify(g, tc.res); got != tc.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSamplerSiteValidity(t *testing.T) {
	m, _, g := setup(t)
	s := NewSampler(m, g, false)
	if s.Total() <= 0 {
		t.Fatal("no injectable dynamic instances")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		site, ok := s.RandomSite(rng)
		if !ok {
			t.Fatal("RandomSite failed")
		}
		in := m.Instrs[site.InstrID]
		if !in.IsInjectable() {
			t.Fatalf("site at non-injectable instr %d (%s)", site.InstrID, in.Op)
		}
		if site.DynIndex < 0 || site.DynIndex >= g.Profile.InstrCount[site.InstrID] {
			t.Fatalf("site dyn index %d out of range [0,%d)", site.DynIndex, g.Profile.InstrCount[site.InstrID])
		}
		if site.Bit >= in.Type.Bits() {
			t.Fatalf("bit %d out of range for %s", site.Bit, in.Type)
		}
	}
}

// TestSamplerUniformOverDynInstances: the probability of selecting a static
// instruction must be proportional to its dynamic count.
func TestSamplerUniformOverDynInstances(t *testing.T) {
	m, _, g := setup(t)
	s := NewSampler(m, g, false)
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	hits := make(map[int]int)
	for i := 0; i < n; i++ {
		site, _ := s.RandomSite(rng)
		hits[site.InstrID]++
	}
	for id, c := range hits {
		want := float64(g.Profile.InstrCount[id]) / float64(s.Total())
		got := float64(c) / n
		if want > 0.02 { // only check instructions with measurable mass
			if got < want*0.7 || got > want*1.3 {
				t.Errorf("instr %d: frequency %.4f, want ~%.4f", id, got, want)
			}
		}
	}
}

func TestCampaignOutcomesAndDeterminism(t *testing.T) {
	m, bind, g := setup(t)
	c := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
	r1 := c.Run(400, 42)
	if r1.Trials != 400 {
		t.Fatalf("trials = %d, want 400", r1.Trials)
	}
	// A campaign on an unprotected program must see SDCs and benign runs.
	if r1.Counts[OutcomeSDC] == 0 {
		t.Error("no SDCs observed in 400 trials")
	}
	if r1.Counts[OutcomeBenign] == 0 {
		t.Error("no benign outcomes observed in 400 trials")
	}
	if r1.Counts[OutcomeDetected] != 0 {
		t.Error("detected outcomes on an unprotected program")
	}

	// Determinism across worker counts.
	c2 := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g, Workers: 1}
	r2 := c2.Run(400, 42)
	if r1 != r2 {
		t.Fatalf("campaign not deterministic across worker counts:\n%+v\n%+v", r1, r2)
	}
	// Different seed should (almost surely) differ.
	r3 := c.Run(400, 43)
	if r1 == r3 {
		t.Log("warning: different seeds produced identical outcome counts (possible but unlikely)")
	}
}

func TestPerInstructionFI(t *testing.T) {
	m, bind, g := setup(t)
	c := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
	stats := c.PerInstruction(20, 11)
	if len(stats) != m.NumInstrs() {
		t.Fatalf("stats len = %d, want %d", len(stats), m.NumInstrs())
	}
	anyExecuted, anySDC := false, false
	for _, st := range stats {
		if st.Executed {
			anyExecuted = true
			if st.Trials == 0 {
				t.Errorf("instr %d executed but has no trials", st.InstrID)
			}
			if got := st.SDC + st.Crash + st.Hang + st.Detected + st.Benign; got != st.Trials {
				t.Errorf("instr %d outcome sum %d != trials %d", st.InstrID, got, st.Trials)
			}
			if st.SDCProb() > 0 {
				anySDC = true
			}
		} else if st.Trials != 0 {
			t.Errorf("instr %d not executed but has %d trials", st.InstrID, st.Trials)
		}
		if p := st.SDCProb(); p < 0 || p > 1 {
			t.Errorf("instr %d SDC prob %f out of range", st.InstrID, p)
		}
	}
	if !anyExecuted {
		t.Fatal("no instruction executed")
	}
	if !anySDC {
		t.Fatal("no instruction shows nonzero SDC probability")
	}
}

func TestCampaignResultAccessors(t *testing.T) {
	var r CampaignResult
	if _, ok := r.SDCCoverage(); ok {
		t.Error("coverage defined with no trials")
	}
	r.Add(OutcomeSDC)
	r.Add(OutcomeDetected)
	r.Add(OutcomeDetected)
	r.Add(OutcomeBenign)
	if cov, ok := r.SDCCoverage(); !ok || cov != 2.0/3.0 {
		t.Errorf("coverage = %v, %v; want 2/3, true", cov, ok)
	}
	if r.Rate(OutcomeBenign) != 0.25 {
		t.Errorf("benign rate = %f", r.Rate(OutcomeBenign))
	}
	var o CampaignResult
	o.Add(OutcomeCrash)
	r.Merge(o)
	if r.Trials != 5 || r.Counts[OutcomeCrash] != 1 {
		t.Errorf("merge failed: %+v", r)
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{
		OutcomeBenign: "benign", OutcomeSDC: "sdc", OutcomeCrash: "crash",
		OutcomeHang: "hang", OutcomeDetected: "detected",
	}
	for o, w := range names {
		if o.String() != w {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), w)
		}
	}
}

// Property: a single-bit flip re-applied to the same site always yields
// the same outcome (full determinism of the injection machinery).
func TestInjectionDeterminismProperty(t *testing.T) {
	m, bind, g := setup(t)
	sampler := NewSampler(m, g, false)
	cfg := faultyConfig(interp.Config{}, g)
	r1 := interp.NewRunner(m, cfg)
	r2 := interp.NewRunner(m, cfg)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		site, ok := sampler.RandomSite(rng)
		if !ok {
			return false
		}
		a := Classify(g, r1.Run(bind, &site, nil))
		b := Classify(g, r2.Run(bind, &site, nil))
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCampaign1000Faults(b *testing.B) {
	m, err := minicc.Compile("fi.mc", testProgram)
	if err != nil {
		b.Fatal(err)
	}
	bind := interp.Binding{
		Args:    []uint64{200},
		Globals: map[string][]uint64{"data": {3, 8, 1, 6, 2, 9, 4}},
	}
	g, err := RunGolden(m, bind, interp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	c := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(1000, int64(i))
	}
}

func TestTrueCoverageBounds(t *testing.T) {
	m, bind, _ := setup(t)

	// No protection: identity mapping, zero coverage by definition.
	identity := make(map[int]int, m.NumInstrs())
	for i := 0; i < m.NumInstrs(); i++ {
		identity[i] = i
	}
	res, err := TrueCoverage(m, m, identity, bind, interp.Config{}, 300, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SDCFaults == 0 {
		t.Fatal("no SDC faults observed on the unprotected program")
	}
	if cov, ok := res.Coverage(); !ok || cov != 0 {
		t.Fatalf("unprotected coverage = %f, want 0", cov)
	}
	if res.Unprotect.Trials != res.Trials {
		t.Fatalf("unprotected campaign trials %d != %d", res.Unprotect.Trials, res.Trials)
	}
}

func TestTrueCoverageDeterminism(t *testing.T) {
	m, bind, _ := setup(t)
	identity := make(map[int]int, m.NumInstrs())
	for i := 0; i < m.NumInstrs(); i++ {
		identity[i] = i
	}
	a, err := TrueCoverage(m, m, identity, bind, interp.Config{}, 200, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrueCoverage(m, m, identity, bind, interp.Config{}, 200, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.SDCFaults != b.SDCFaults || a.Mitigated != b.Mitigated || a.Unprotect != b.Unprotect {
		t.Fatalf("true coverage not deterministic across worker counts:\n%+v\n%+v", a, b)
	}
}

func TestTrueCoverageRejectsBadInput(t *testing.T) {
	m, _, _ := setup(t)
	bad := interp.Binding{Args: []uint64{50}} // missing data global
	defer func() { recover() }()
	if _, err := TrueCoverage(m, m, map[int]int{}, bad, interp.Config{}, 10, 1, 0); err == nil {
		t.Fatal("inadmissible binding accepted")
	}
}

func TestMultiBitCampaign(t *testing.T) {
	m, bind, g := setup(t)
	c := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g}
	single := c.Run(400, 77)
	double := c.RunMultiBit(400, 77, 2)
	if double.Trials != 400 {
		t.Fatalf("trials = %d", double.Trials)
	}
	// Multi-bit faults must manifest at least as often as single-bit:
	// strictly fewer benign outcomes is the expected shape (allow slack
	// for sampling noise).
	if double.Counts[OutcomeBenign] > single.Counts[OutcomeBenign]+40 {
		t.Errorf("2-bit faults more benign than 1-bit: %d vs %d",
			double.Counts[OutcomeBenign], single.Counts[OutcomeBenign])
	}
	// Determinism.
	double2 := c.RunMultiBit(400, 77, 2)
	if double != double2 {
		t.Fatal("multi-bit campaign not deterministic")
	}
}

func TestMultiBitSiteMask(t *testing.T) {
	m, _, g := setup(t)
	s := NewSampler(m, g, false)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		site, ok := s.RandomSiteModel(KBit(3), rng)
		if !ok {
			t.Fatal("no site")
		}
		bits := 0
		for mask := site.Mask; mask != 0; mask &= mask - 1 {
			bits++
		}
		width := int(m.Instrs[site.InstrID].Type.Bits())
		want := 3
		if want > width {
			want = width
		}
		if bits != want {
			t.Fatalf("mask %x has %d bits, want %d (width %d)", site.Mask, bits, want, width)
		}
	}
}

// A campaign on a program with no injectable dynamic instructions must
// report the undrawable trials as shortfall rather than silently
// returning fewer trials than requested.
func TestCampaignShortfallReported(t *testing.T) {
	m, err := minicc.Compile("empty.mc", `func main(n int) { }`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := RunGolden(m, interp.Binding{Args: []uint64{1}}, interp.Config{})
	if err != nil {
		t.Fatalf("RunGolden: %v", err)
	}
	c := &Campaign{Mod: m, Bind: interp.Binding{Args: []uint64{1}}, Cfg: interp.Config{}, Golden: g}
	res := c.Run(10, 3)
	if res.Requested != 10 {
		t.Errorf("Requested = %d, want 10", res.Requested)
	}
	if res.Trials+res.Shortfall != res.Requested {
		t.Errorf("Trials %d + Shortfall %d != Requested %d", res.Trials, res.Shortfall, res.Requested)
	}
	if NewSampler(m, g, false).Total() == 0 && res.Shortfall != 10 {
		t.Errorf("no injectable sites but Shortfall = %d, want 10", res.Shortfall)
	}
}

// Campaign results must be bit-identical across worker counts, including
// the new Requested/Shortfall accounting (CampaignResult is comparable).
func TestCampaignWorkerCountInvariance(t *testing.T) {
	m, bind, g := setup(t)
	base := (&Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g, Workers: 1}).Run(300, 9)
	for _, nw := range []int{2, 8} {
		c := &Campaign{Mod: m, Bind: bind, Cfg: interp.Config{}, Golden: g, Workers: nw}
		if got := c.Run(300, 9); got != base {
			t.Fatalf("Workers=%d result differs:\n%+v\n%+v", nw, got, base)
		}
	}
}

// TrueCoverage through a warm cache must be bit-identical to an uncached
// run: memoization of goldens and the phase-1 campaign may change cost,
// never results.
func TestTrueCoverageCacheInvariance(t *testing.T) {
	m, bind, _ := setup(t)
	identity := make(map[int]int, m.NumInstrs())
	for i := 0; i < m.NumInstrs(); i++ {
		identity[i] = i
	}
	want, err := TrueCoverage(m, m, identity, bind, interp.Config{}, 200, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0)
	pm := NewMetrics().Phase(PhaseEvaluation)
	opts := CoverageOptions{Trials: 200, Seed: 42, Workers: 1, Cache: cache, Metrics: pm}
	cold, err := TrueCoverageOpts(m, m, identity, bind, interp.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := TrueCoverageOpts(m, m, identity, bind, interp.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold != want || warm != want {
		t.Fatalf("cached TrueCoverage differs:\nuncached %+v\ncold     %+v\nwarm     %+v", want, cold, warm)
	}
	s := cache.Stats()
	if s.CampaignHits == 0 || s.GoldenHits == 0 {
		t.Fatalf("warm run did not hit the cache: %+v", s)
	}
	if snap := pm.Snapshot(); snap.Trials == 0 {
		t.Error("evaluation phase recorded no trials")
	}
}

// TestFaultSiteMappingThroughFusedOps arms a fault at every injectable
// static instruction of the test kernel and classifies the outcome under
// all three engines. The compiled tier fuses this kernel's loop bodies
// into superinstructions, so sites that land inside a fused run (or on
// the cmp half of a fused cmp+br) must still map to the same dynamic
// instance, flip the same bit, and yield the same outcome as the unfused
// legacy stepper — the fault-site coordinate system (InstrID, DynIndex,
// Bit) is engine-invariant.
func TestFaultSiteMappingThroughFusedOps(t *testing.T) {
	m, bind, g := setup(t)
	if c := interp.Compile(interp.Lower(m)); c.Stats().Runs == 0 {
		t.Fatalf("test kernel compiled without any fused runs: %+v", c.Stats())
	}
	s := NewSampler(m, g, false)
	engines := []interp.Engine{interp.EngineLegacy, interp.EngineImage, interp.EngineCompiled}
	rng := rand.New(rand.NewSource(99))
	sites := 0
	for _, in := range m.Instrs {
		if !in.IsInjectable() {
			continue
		}
		f, ok := s.SiteFor(in.ID, rng)
		if !ok {
			continue // never executed on this input
		}
		sites++
		var out [3]Outcome
		var res [3]interp.Result
		for i, eng := range engines {
			cfg := faultyConfig(interp.Config{}, g)
			cfg.Engine = eng
			ff := f
			res[i] = interp.NewRunner(m, cfg).Run(bind, &ff, nil)
			out[i] = Classify(g, res[i])
		}
		for i := 1; i < len(engines); i++ {
			if out[i] != out[0] {
				t.Fatalf("site %+v: outcome diverges: legacy %v, %v %v", f, out[0], engines[i], out[i])
			}
			if res[i].DynInstrs != res[0].DynInstrs || res[i].OutputHash != res[0].OutputHash {
				t.Fatalf("site %+v: result diverges vs %v:\nlegacy %+v\ngot    %+v", f, engines[i], res[0], res[i])
			}
		}
	}
	if sites < 10 {
		t.Fatalf("only %d injectable sites exercised; kernel too small to pin fused-site mapping", sites)
	}
}
