package fault

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/interp"
)

// TestTriageSoundnessDifferential is the soundness enforcement for the
// static SDC-masking triage: for every benchmark it samples fault sites
// the triage classifies ProvablyMasked and executes them for real with
// the reference (legacy) interpreter. Every single one must come back
// Benign — one SDC, crash, hang, or detection here is a soundness bug
// in the analysis, not flakiness.
func TestTriageSoundnessDifferential(t *testing.T) {
	maxSites := 160
	if testing.Short() {
		maxSites = 32
	}
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			m, err := b.Module()
			if err != nil {
				t.Fatal(err)
			}
			bind := b.Bind(b.Reference)
			cfg := b.ExecConfig()
			cfg.Engine = interp.EngineLegacy
			golden, err := RunGolden(m, bind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tri := analysis.TriageFor(m)

			rng := rand.New(rand.NewSource(7))
			var sites []interp.Fault
			for _, in := range m.Instrs {
				if !in.IsInjectable() {
					continue
				}
				masked := tri.MaskedBits(in.ID)
				cnt := golden.Profile.InstrCount[in.ID]
				if masked == 0 || cnt == 0 {
					continue
				}
				// Every masked bit position, a few dynamic instances each.
				for bit := 0; bit < 64; bit++ {
					if masked&(1<<uint(bit)) == 0 {
						continue
					}
					for k := 0; k < 2; k++ {
						site := interp.Fault{
							InstrID:  in.ID,
							DynIndex: rng.Int63n(cnt),
							Bit:      uint(bit),
						}
						if v, proof := tri.Site(site.InstrID, site.Bit); v != analysis.VerdictProvablyMasked || proof == analysis.ProofNone {
							t.Fatalf("[%d] bit %d: masked mask disagrees with Site()", in.ID, bit)
						}
						sites = append(sites, site)
					}
				}
			}
			if len(sites) == 0 {
				t.Skipf("%s: no provably masked executed sites", b.Name)
			}
			if len(sites) > maxSites {
				rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
				sites = sites[:maxSites]
			}

			camp := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden, Triage: TriageOff}
			for i, o := range camp.runSites(sites) {
				if o != OutcomeBenign {
					in := m.Instrs[sites[i].InstrID]
					_, proof := tri.Site(sites[i].InstrID, sites[i].Bit)
					t.Fatalf("UNSOUND: [%d] %s bit %d dyn %d (proof %s) -> %s",
						sites[i].InstrID, in.Op, sites[i].Bit, sites[i].DynIndex, proof, o)
				}
			}
		})
	}
}

// TestCampaignTriageEquivalence checks result purity: a campaign with
// triage pruning enabled returns a bit-identical CampaignResult to an
// unpruned campaign at the same seed, while actually pruning trials.
func TestCampaignTriageEquivalence(t *testing.T) {
	for _, name := range []string{"kmeans", "fft", "pathfinder"} {
		var bench *benchprog.Benchmark
		for _, b := range benchprog.All() {
			if b.Name == name {
				bench = b
			}
		}
		m := bench.MustModule()
		bind := bench.Bind(bench.Reference)
		cfg := bench.ExecConfig()
		golden, err := RunGolden(m, bind, cfg)
		if err != nil {
			t.Fatal(err)
		}

		pm := &PhaseMetrics{name: "test"}
		on := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden, Triage: TriageAuto, Metrics: pm}
		off := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden, Triage: TriageOff}

		const trials, seed = 300, 42
		ron := on.Run(trials, seed)
		roff := off.Run(trials, seed)
		if ron != roff {
			t.Fatalf("%s: triage changed the campaign result:\n  on:  %+v\n  off: %+v", name, ron, roff)
		}
		snap := pm.Snapshot()
		if snap.Pruned == 0 {
			t.Fatalf("%s: expected pruned trials on a benchmark with masked sites", name)
		}
		if snap.Trials+snap.Pruned != ron.Trials {
			t.Fatalf("%s: executed (%d) + pruned (%d) != total trials (%d)",
				name, snap.Trials, snap.Pruned, ron.Trials)
		}
	}
}

// TestTriagePruningFraction documents the campaign-pruning win: on at
// least 3 benchmarks the triage must prove >= 5% of static fault sites
// masked (the acceptance bar of the analysis framework).
func TestTriagePruningFraction(t *testing.T) {
	hits := 0
	for _, b := range benchprog.All() {
		m, err := b.Module()
		if err != nil {
			t.Fatal(err)
		}
		rep := analysis.TriageFor(m).Report()
		var masked, total int
		for _, in := range m.Instrs {
			if !in.IsInjectable() {
				continue
			}
			masked += bits.OnesCount64(analysis.TriageFor(m).MaskedBits(in.ID))
			total += int(in.Type.Bits())
		}
		if masked != rep.MaskedBits || total != rep.TotalBits {
			t.Fatalf("%s: report disagrees with direct count", b.Name)
		}
		if rep.MaskedSiteFrac >= 0.05 {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("only %d benchmarks reach 5%% provably masked sites, want >= 3", hits)
	}
}
