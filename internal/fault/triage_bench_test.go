package fault

import (
	"testing"

	"repro/internal/benchprog"
)

// BenchmarkCampaignTriage measures campaign wall-clock with triage
// pruning on versus off, on benchmarks with a meaningful masked-site
// fraction. The on/off delta is the campaign-pruning win recorded in
// BENCH_analysis.json; single-worker runs keep the timing stable.
func BenchmarkCampaignTriage(b *testing.B) {
	for _, name := range []string{"kmeans", "fft", "needle"} {
		var bench *benchprog.Benchmark
		for _, cand := range benchprog.All() {
			if cand.Name == name {
				bench = cand
			}
		}
		m, err := bench.Module()
		if err != nil {
			b.Fatal(err)
		}
		bind := bench.Bind(bench.Reference)
		cfg := bench.ExecConfig()
		golden, err := RunGolden(m, bind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			label  string
			policy TriagePolicy
		}{{"on", TriageAuto}, {"off", TriageOff}} {
			mode := mode
			b.Run(name+"/triage-"+mode.label, func(b *testing.B) {
				c := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden,
					Workers: 1, Triage: mode.policy, Metrics: &PhaseMetrics{name: "bench"}}
				var res CampaignResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = c.Run(400, 1)
				}
				b.StopTimer()
				snap := c.Metrics.Snapshot()
				if snap.Trials+snap.Pruned > 0 {
					b.ReportMetric(float64(snap.Pruned)/float64(snap.Trials+snap.Pruned), "pruned_frac")
				}
				if res.Trials == 0 {
					b.Fatal("campaign ran no trials")
				}
			})
		}
	}
}
