package fault

import "testing"

// TestApportionFewerTrialsThanShards covers the shard-edge the
// campaign server hits on tiny budgets: fewer trials than sections.
// Every trial must land somewhere, the total must be exact, and ties
// must break toward the lower index so the plan is deterministic.
func TestApportionFewerTrialsThanShards(t *testing.T) {
	got := Apportion(2, []int64{5, 5, 5, 5, 5})
	want := []int{1, 1, 0, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	sum := 0
	for i := range got {
		sum += got[i]
		if got[i] != want[i] {
			t.Errorf("Apportion(2, equal×5)[%d] = %d, want %d (lower-index tie break)",
				i, got[i], want[i])
		}
	}
	if sum != 2 {
		t.Errorf("total apportioned %d, want 2", sum)
	}
}

// TestApportionZeroWeightSections: sections with no injectable
// dynamic weight (never-executed code) must get exactly zero trials
// regardless of budget, and must not disturb the others' shares.
func TestApportionZeroWeightSections(t *testing.T) {
	got := Apportion(9, []int64{0, 3, 0, 6, 0})
	want := []int{0, 3, 0, 6, 0}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Apportion(9, {0,3,0,6,0})[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestApportionSingleSiteRanges: weight-1 sections (a single dynamic
// instance) still receive proportional shares with an exact total —
// the largest-remainder pass must not over- or under-fill them.
func TestApportionSingleSiteRanges(t *testing.T) {
	weights := []int64{1, 1, 1, 1, 1, 1, 1}
	for _, total := range []int{1, 3, 7, 10, 700} {
		got := Apportion(total, weights)
		sum := 0
		for _, n := range got {
			sum += n
		}
		if sum != total {
			t.Errorf("Apportion(%d, 1×7): total %d, want %d", total, sum, total)
		}
		for i := 1; i < len(got); i++ {
			if got[i] > got[i-1] {
				t.Errorf("Apportion(%d, 1×7): share[%d]=%d > share[%d]=%d (remainders must fill low indexes first)",
					total, i, got[i], i-1, got[i-1])
			}
		}
	}
}

// TestPlannedShortfall pins the budget-overflow accounting the
// scheduler and RunSectional share: trials that cannot be apportioned
// anywhere count as shortfall, and a fully-placed plan has none.
func TestPlannedShortfall(t *testing.T) {
	plans := []SectionTrialPlan{{N: 3}, {N: 4}}
	if got := PlannedShortfall(7, plans); got != 0 {
		t.Errorf("PlannedShortfall(7, 3+4) = %d, want 0", got)
	}
	if got := PlannedShortfall(10, plans); got != 3 {
		t.Errorf("PlannedShortfall(10, 3+4) = %d, want 3", got)
	}
	if got := PlannedShortfall(5, plans); got != 0 {
		t.Errorf("PlannedShortfall(5, 3+4) = %d, want 0 (overplacement is not negative shortfall)", got)
	}
	if got := PlannedShortfall(4, nil); got != 4 {
		t.Errorf("PlannedShortfall(4, empty plan) = %d, want 4", got)
	}
}

// TestComposePlannedAccounting: composition must preserve the
// Requested/Shortfall contract of Campaign.Run — per-profile numbers
// plus whatever the plan could not place.
func TestComposePlannedAccounting(t *testing.T) {
	plans := []SectionTrialPlan{{N: 2}, {N: 1}}
	profiles := []SectionProfile{
		{Name: "a", Requested: 2, Sites: []LocalSite{{Outcome: OutcomeSDC}, {Outcome: OutcomeBenign}}},
		{Name: "b", Requested: 1, Sites: []LocalSite{{Outcome: OutcomeDetected}}},
	}
	res := ComposePlanned(5, plans, profiles)
	if res.Requested != 5 {
		t.Errorf("Requested = %d, want 5", res.Requested)
	}
	if res.Shortfall != 2 {
		t.Errorf("Shortfall = %d, want 2 (unplaceable budget)", res.Shortfall)
	}
	if res.Trials != 3 {
		t.Errorf("Trials = %d, want 3", res.Trials)
	}
	if res.Counts[OutcomeSDC] != 1 || res.Counts[OutcomeDetected] != 1 || res.Counts[OutcomeBenign] != 1 {
		t.Errorf("outcome counts %v, want one SDC, one detected, one benign", res.Counts)
	}
}
