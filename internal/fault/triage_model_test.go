package fault

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/interp"
)

// TestTriageModelSoundness extends the triage soundness enforcement to
// every registered fault model: sites the triage prunes under a model's
// FaultClass are re-injected for real (TriageOff) with that model's own
// effect patterns, and every one must come back Benign. One SDC, crash,
// hang, or detection is a soundness bug in MaskedFor/ValidFor for that
// class — exactly the regression a new model is most likely to introduce.
func TestTriageModelSoundness(t *testing.T) {
	maxSites := 64
	if testing.Short() {
		maxSites = 16
	}
	var bench *benchprog.Benchmark
	for _, b := range benchprog.All() {
		if b.Name == "pathfinder" {
			bench = b
		}
	}
	m := bench.MustModule()
	bind := bench.Bind(bench.Reference)
	cfg := bench.ExecConfig()
	cfg.Engine = interp.EngineLegacy
	golden, err := RunGolden(m, bind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tri := analysis.TriageFor(m)

	for _, mn := range ModelNames() {
		model, _ := ModelByName(mn)
		cl := model.Class()
		t.Run(mn, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var sites []interp.Fault
			for _, in := range m.Instrs {
				if !in.IsInjectable() || golden.Profile.InstrCount[in.ID] == 0 {
					continue
				}
				for _, e := range model.Patterns(in.Type.Bits(), 4) {
					if !tri.MaskedFor(cl, in.ID, e.Bit, e.Mask) {
						continue
					}
					sites = append(sites, interp.Fault{
						InstrID:  in.ID,
						DynIndex: rng.Int63n(golden.Profile.InstrCount[in.ID]),
						Bit:      e.Bit, Mask: e.Mask, Op: e.Op,
					})
				}
			}
			if len(sites) == 0 {
				t.Skipf("%s: no prunable executed sites under model %s", bench.Name, mn)
			}
			if len(sites) > maxSites {
				rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
				sites = sites[:maxSites]
			}
			camp := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden, Triage: TriageOff}
			for i, o := range camp.RunSites(sites) {
				if o != OutcomeBenign {
					s := sites[i]
					t.Fatalf("UNSOUND under %s: [%d] %s bit %d mask %#x op %v dyn %d -> %s",
						mn, s.InstrID, m.Instrs[s.InstrID].Op, s.Bit, s.Mask, s.Op, s.DynIndex, o)
				}
			}
		})
	}
}

// TestCampaignModelTriageEquivalence checks result purity per model: a
// pruning campaign returns a bit-identical CampaignResult to an unpruned
// one at the same seed for every registered model, and the pruned-trial
// accounting is keyed by the model's name in PrunedByModel.
func TestCampaignModelTriageEquivalence(t *testing.T) {
	var bench *benchprog.Benchmark
	for _, b := range benchprog.All() {
		if b.Name == "kmeans" {
			bench = b
		}
	}
	m := bench.MustModule()
	bind := bench.Bind(bench.Reference)
	cfg := bench.ExecConfig()
	golden, err := RunGolden(m, bind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trials := 200
	if testing.Short() {
		trials = 60
	}
	for _, mn := range ModelNames() {
		model, _ := ModelByName(mn)
		t.Run(mn, func(t *testing.T) {
			pm := &PhaseMetrics{name: "test"}
			on := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden,
				Model: model, Triage: TriageAuto, Metrics: pm}
			off := &Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: golden,
				Model: model, Triage: TriageOff}
			ron := on.Run(trials, 42)
			roff := off.Run(trials, 42)
			if ron != roff {
				t.Fatalf("triage changed the %s campaign result:\n  on:  %+v\n  off: %+v", mn, ron, roff)
			}
			snap := pm.Snapshot()
			if snap.Pruned != 0 {
				if got := snap.PrunedByModel[mn]; got != snap.Pruned {
					t.Fatalf("PrunedByModel[%s] = %d, want %d (all pruning under one model)",
						mn, got, snap.Pruned)
				}
			}
			if snap.Trials+snap.Pruned != ron.Trials {
				t.Fatalf("executed (%d) + pruned (%d) != total trials (%d)",
					snap.Trials, snap.Pruned, ron.Trials)
			}
		})
	}
}
