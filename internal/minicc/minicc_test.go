package minicc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// compileRun compiles src and runs it with the given args and globals.
func compileRun(t *testing.T, src string, args []uint64, globals map[string][]uint64) interp.Result {
	t.Helper()
	m, err := Compile("test.mc", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	r := interp.NewRunner(m, interp.Config{MaxDynInstrs: 10_000_000})
	return r.Run(interp.Binding{Args: args, Globals: globals}, nil, nil)
}

func wantInts(t *testing.T, res interp.Result, want ...int64) {
	t.Helper()
	if res.Status != interp.StatusOK {
		t.Fatalf("status = %v (trap %q)", res.Status, res.Trap)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output len = %d (%v), want %d", len(res.Output), res.Output, len(want))
	}
	for i, w := range want {
		if int64(res.Output[i]) != w {
			t.Errorf("output[%d] = %d, want %d", i, int64(res.Output[i]), w)
		}
	}
}

func wantFloats(t *testing.T, res interp.Result, tol float64, want ...float64) {
	t.Helper()
	if res.Status != interp.StatusOK {
		t.Fatalf("status = %v (trap %q)", res.Status, res.Trap)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output len = %d, want %d", len(res.Output), len(want))
	}
	for i, w := range want {
		got := math.Float64frombits(res.Output[i])
		if math.Abs(got-w) > tol {
			t.Errorf("output[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	res := compileRun(t, `
func main() {
	emiti(2 + 3 * 4);       // 14
	emiti((2 + 3) * 4);     // 20
	emiti(10 - 7 % 3);      // 9
	emiti(1 << 4 | 3);      // 19
	emiti(255 & 15 ^ 1);    // 14
	emiti(-7 / 2);          // -3 (truncating)
	emiti(100 >> 2);        // 25
}`, nil, nil)
	wantInts(t, res, 14, 20, 9, 19, 14, -3, 25)
}

func TestFloatsCastsAndMath(t *testing.T) {
	res := compileRun(t, `
func main() {
	var x float = 2.5;
	var y float = x * 4.0;            // 10
	emitf(y);
	emitf(sqrt(y * y));               // 10
	emitf(float(7) / 2.0);            // 3.5
	emiti(int(3.99));                 // 3
	emitf(pow(2.0, 8.0));             // 256
	emitf(fabs(-1.5));                // 1.5
	emitf(floor(2.9));                // 2
	emitf(exp(0.0));                  // 1
	emitf(log(1.0));                  // 0
	emitf(sin(0.0) + cos(0.0));       // 1
}`, nil, nil)
	if res.Status != interp.StatusOK {
		t.Fatalf("status = %v (trap %q)", res.Status, res.Trap)
	}
	for i, w := range []float64{10, 10, 3.5} {
		if got := math.Float64frombits(res.Output[i]); got != w {
			t.Errorf("output[%d] = %g, want %g", i, got, w)
		}
	}
	if int64(res.Output[3]) != 3 {
		t.Errorf("int cast = %d, want 3", int64(res.Output[3]))
	}
	got := func(i int) float64 { return math.Float64frombits(res.Output[i]) }
	for i, w := range map[int]float64{4: 256, 5: 1.5, 6: 2, 7: 1, 8: 0, 9: 1} {
		if math.Abs(got(i)-w) > 1e-12 {
			t.Errorf("output[%d] = %g, want %g", i, got(i), w)
		}
	}
}

func TestControlFlow(t *testing.T) {
	res := compileRun(t, `
func main(n int) {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0) {
			s = s + i;
		} else {
			s = s - 1;
		}
	}
	emiti(s);

	var k int = 0;
	while (true) {
		k = k + 1;
		if (k >= 10) { break; }
	}
	emiti(k);

	var c int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		if (i % 3 != 0) { continue; }
		c = c + 1;
	}
	emiti(c);
}`, []uint64{10}, nil)
	// evens 0+2+4+6+8=20, minus 5 odds => 15
	wantInts(t, res, 15, 10, 4)
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// otherwise 1/zero would trap.
	res := compileRun(t, `
func main(zero int) {
	var ok bool = zero != 0 && 1 / zero > 0;
	if (ok) { emiti(1); } else { emiti(0); }
	var or bool = zero == 0 || 1 / zero > 0;
	if (or) { emiti(1); } else { emiti(0); }
	// Nested short-circuits.
	if ((zero == 0 && true) || 1 / zero == 9) { emiti(2); }
	if (!(zero == 0)) { emiti(1); } else { emiti(0); }
}`, []uint64{0}, nil)
	wantInts(t, res, 0, 1, 2, 0)
}

func TestCastBoolViaIf(t *testing.T) {
	// int(!(...)) isn't legal (casts are numeric); ensure sema rejects it.
	_, err := Compile("t.mc", `func main() { emiti(int(!true)); }`)
	if err == nil {
		t.Fatal("expected cast-of-bool to be rejected")
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := compileRun(t, `
func gcd(a int, b int) int {
	if (b == 0) { return a; }
	return gcd(b, a % b);
}
func square(x float) float { return x * x; }
func main() {
	emiti(gcd(48, 36));
	emitf(square(1.5));
}`, nil, nil)
	if int64(res.Output[0]) != 12 {
		t.Errorf("gcd = %d, want 12", int64(res.Output[0]))
	}
	if got := math.Float64frombits(res.Output[1]); got != 2.25 {
		t.Errorf("square = %g, want 2.25", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	res := compileRun(t, `
var data[] int;
var acc[4] int;
var total int;

func main() {
	var n int = len(data);
	emiti(n);
	for (var i int = 0; i < n; i = i + 1) {
		acc[i % 4] = acc[i % 4] + data[i];
	}
	total = acc[0] + acc[1] + acc[2] + acc[3];
	emiti(total);
	var local[3] int;
	local[0] = 7; local[1] = 8; local[2] = 9;
	emiti(local[0] + local[1] + local[2]);
	emiti(len(local));
	emiti(len(acc));
}`, nil, map[string][]uint64{"data": {1, 2, 3, 4, 5}})
	wantInts(t, res, 5, 15, 24, 3, 4)
}

func TestFloatGlobalArrays(t *testing.T) {
	res := compileRun(t, `
var xs[] float;
func main() {
	var s float = 0.0;
	for (var i int = 0; i < len(xs); i = i + 1) {
		s = s + xs[i];
	}
	emitf(s);
}`, nil, map[string][]uint64{"xs": {
		math.Float64bits(1.5), math.Float64bits(2.5), math.Float64bits(-1.0),
	}})
	wantFloats(t, res, 1e-12, 3.0)
}

func TestScopingAndShadowing(t *testing.T) {
	res := compileRun(t, `
func main() {
	var x int = 1;
	{
		var x int = 2;
		emiti(x);
	}
	emiti(x);
	for (var x int = 9; x < 10; x = x + 1) {
		emiti(x);
	}
	emiti(x);
}`, nil, nil)
	wantInts(t, res, 2, 1, 9, 1)
}

func TestSpawnSync(t *testing.T) {
	res := compileRun(t, `
var cells[4] int;
func work(tid int) {
	cells[tid] = tid * 10 + 1;
}
func main() {
	for (var i int = 0; i < 4; i = i + 1) {
		spawn work(i);
	}
	sync;
	emiti(cells[0] + cells[1] + cells[2] + cells[3]);
}`, nil, nil)
	wantInts(t, res, 1+11+21+31)
}

func TestElseIfChain(t *testing.T) {
	src := `
func classify(x int) int {
	if (x < 0) { return 0 - 1; }
	else if (x == 0) { return 0; }
	else if (x < 10) { return 1; }
	else { return 2; }
}
func main(x int) { emiti(classify(x)); }`
	for arg, want := range map[uint64]int64{0: 0, 5: 1, 50: 2} {
		res := compileRun(t, src, []uint64{arg}, nil)
		wantInts(t, res, want)
	}
	res := compileRun(t, src, []uint64{uint64(^uint64(0))}, nil) // -1
	wantInts(t, res, -1)
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("t.mc", "func x1 // comment\n 12 3.5 1e3 <= >= << >> && || != ! = ==")
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	kinds := make([]TokKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{TokFunc, TokIdent, TokIntLit, TokFloatLit, TokFloatLit,
		TokLe, TokGe, TokShl, TokShr, TokAndAnd, TokOrOr, TokNe, TokNot,
		TokAssign, TokEq, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Flt != 3.5 || toks[4].Flt != 1000 {
		t.Errorf("float payloads: %v %v", toks[3].Flt, toks[4].Flt)
	}
}

func TestLexerRejectsBadChar(t *testing.T) {
	if _, err := lexAll("t.mc", "func @"); err == nil {
		t.Fatal("expected error for '@'")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing-semi", `func main() { emiti(1) }`},
		{"bad-top-level", `emiti(1);`},
		{"unterminated-block", `func main() {`},
		{"spawn-non-call", `func main() { spawn 1 + 2; }`},
		{"array-init", `func main() { var a[3] int = 5; }`},
		{"len-non-ident", `var a[] int; func main() { emiti(len(a[0])); }`},
		{"negative-array", `var a[0] int; func main() {}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile("t.mc", tc.src); err == nil {
				t.Errorf("compiled invalid program")
			}
		})
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no-main", `func f() {}`},
		{"main-returns", `func main() int { return 1; }`},
		{"undefined-var", `func main() { emiti(x); }`},
		{"undefined-func", `func main() { nope(); }`},
		{"type-mismatch", `func main() { var x int = 1.5; }`},
		{"assign-mismatch", `func main() { var x int; x = 2.5; }`},
		{"cond-not-bool", `func main() { if (1) { } }`},
		{"int-float-mix", `func main() { emiti(1 + 2.0); }`},
		{"mod-float", `func main() { emitf(1.5 % 2.0); }`},
		{"array-no-index", `var a[4] int; func main() { emiti(a); }`},
		{"index-non-array", `func main() { var x int; emiti(x[0]); }`},
		{"float-index", `var a[4] int; func main() { emiti(a[1.5]); }`},
		{"break-outside", `func main() { break; }`},
		{"continue-outside", `func main() { continue; }`},
		{"dup-var", `func main() { var x int; var x int; }`},
		{"dup-func", `func f() {} func f() {} func main() {}`},
		{"dup-global", `var g int; var g int; func main() {}`},
		{"shadow-builtin", `func sqrt(x float) float { return x; } func main() {}`},
		{"arity", `func f(a int) {} func main() { f(1, 2); }`},
		{"arg-type", `func f(a int) {} func main() { f(1.5); }`},
		{"void-in-expr", `func f() {} func main() { var x int = f() + 1; }`},
		{"spawn-nonvoid", `func f() int { return 1; } func main() { spawn f(); }`},
		{"spawn-unknown", `func main() { spawn nope(); }`},
		{"missing-return-type", `func f() int { return 1.0; } func main() {}`},
		{"void-returns-value", `func f() { return 1; } func main() {}`},
		{"builtin-arity", `func main() { emiti(1, 2); }`},
		{"builtin-arg-type", `func main() { emitf(1); }`},
		{"logic-non-bool", `func main() { if (1 && 2 == 3) {} }`},
		{"neg-bool", `func main() { emiti(-true + 1); }`},
		{"not-int", `func main() { if (!1) {} }`},
		{"bool-global", `var b bool; func main() {}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile("t.mc", tc.src); err == nil {
				t.Errorf("compiled invalid program")
			}
		})
	}
}

func TestGeneratedIRVerifies(t *testing.T) {
	// A program that exercises every statement and expression form; the
	// compiled module must verify and all blocks must be terminated.
	src := `
var g int;
var arr[] float;
var buf[8] int;
func helper(a int, b float) float {
	if (a < 0) { return b; }
	return float(a) + b;
}
func worker(tid int) { buf[tid] = tid; }
func main(n int, scale float) {
	var s float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0 && i < 100 || i == 3) {
			s = s + helper(i, scale);
		} else if (i % 5 == 0) {
			continue;
		}
		if (s > 1e6) { break; }
	}
	g = int(s);
	spawn worker(1);
	spawn worker(2);
	sync;
	while (g > 0) { g = g >> 1; }
	emitf(s);
	emiti(buf[1] + buf[2]);
}`
	m, err := Compile("full.mc", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	r := interp.NewRunner(m, interp.Config{})
	res := r.Run(interp.Binding{
		Args:    []uint64{20, math.Float64bits(0.5)},
		Globals: map[string][]uint64{"arr": {}},
	}, nil, nil)
	if res.Status != interp.StatusOK {
		t.Fatalf("status = %v (%s)", res.Status, res.Trap)
	}
	if int64(res.Output[1]) != 3 {
		t.Errorf("worker sum = %d, want 3", int64(res.Output[1]))
	}
}

func TestMustCompilePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("bad.mc", "this is not minic")
}

func TestCompileErrorMessagesCarryPosition(t *testing.T) {
	_, err := Compile("pos.mc", "func main() {\n  emiti(x);\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.mc:2:") {
		t.Errorf("error lacks position: %v", err)
	}
}
