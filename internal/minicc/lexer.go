package minicc

import (
	"strconv"
	"strings"
)

// lexer turns MiniC source into tokens. It supports //-comments and
// decimal integer / floating literals (with optional exponent).
type lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// next lexes one token.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil

	case isDigit(c):
		start := l.off
		isFloat := false
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && isDigit(l.peek2()) {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.off
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if isDigit(l.peek()) {
				isFloat = true
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			} else {
				// Not an exponent after all (e.g. "3e" then identifier).
				l.off = save
			}
		}
		text := l.src[start:l.off]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, errf(l.file, pos, "bad float literal %q", text)
			}
			return Token{Kind: TokFloatLit, Pos: pos, Flt: f, Text: text}, nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(l.file, pos, "bad int literal %q", text)
		}
		return Token{Kind: TokIntLit, Pos: pos, Int: v, Text: text}, nil
	}

	l.advance()
	two := func(second byte, both, single TokKind) (Token, error) {
		if l.peek() == second {
			l.advance()
			return Token{Kind: both, Pos: pos}, nil
		}
		return Token{Kind: single, Pos: pos}, nil
	}

	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokNot)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt)
	case '&':
		return two('&', TokAndAnd, TokAmp)
	case '|':
		return two('|', TokOrOr, TokPipe)
	}
	return Token{}, errf(l.file, pos, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole source (including the trailing EOF token).
func lexAll(file, src string) ([]Token, error) {
	l := newLexer(file, src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// stripBOM removes a UTF-8 byte-order mark if present.
func stripBOM(s string) string {
	return strings.TrimPrefix(s, "\uFEFF")
}
