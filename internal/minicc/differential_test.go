package minicc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/passes"
)

// The differential tester generates random straight-line-plus-loops MiniC
// programs over int variables together with a Go reference evaluation,
// then checks that compile -> optimize -> interpret produces exactly the
// reference outputs. This cross-checks the lexer, parser, code generator,
// every optimization pass, and the interpreter's integer semantics in one
// sweep.

// progGen builds a random program and computes its expected outputs.
type progGen struct {
	rng  *rand.Rand
	sb   strings.Builder
	vars []string
	vals map[string]int64
	out  []int64
}

// expr returns a random expression string and its value, with depth-bound
// recursion. Division and shifts are guarded to avoid traps and UB.
func (g *progGen) expr(depth int) (string, int64) {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			v := g.vars[g.rng.Intn(len(g.vars))]
			return v, g.vals[v]
		}
		c := int64(g.rng.Intn(201) - 100)
		if c < 0 {
			// Parenthesize negative literals (the grammar has no negative
			// literal token; unary minus binds fine but keep it explicit).
			return fmt.Sprintf("(0 - %d)", -c), c
		}
		return fmt.Sprintf("%d", c), c
	}
	xs, xv := g.expr(depth - 1)
	ys, yv := g.expr(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", xs, ys), xv + yv
	case 1:
		return fmt.Sprintf("(%s - %s)", xs, ys), xv - yv
	case 2:
		return fmt.Sprintf("(%s * %s)", xs, ys), xv * yv
	case 3:
		// Guarded division: the divisor ((y|1)&1023) is always odd and
		// positive, so no trap and no INT64_MIN/-1 overflow.
		return fmt.Sprintf("(%s / ((%s | 1) & 1023))", xs, ys), xv / ((yv | 1) & 1023)
	case 4:
		return fmt.Sprintf("(%s & %s)", xs, ys), xv & yv
	case 5:
		return fmt.Sprintf("(%s | %s)", xs, ys), xv | yv
	case 6:
		return fmt.Sprintf("(%s ^ %s)", xs, ys), xv ^ yv
	default:
		// Bounded left shift.
		return fmt.Sprintf("(%s << (%s & 7))", xs, ys), xv << (uint64(yv) & 7)
	}
}

// emitStmt appends one random statement.
func (g *progGen) emitStmt(indent string) {
	switch g.rng.Intn(4) {
	case 0: // new variable
		name := fmt.Sprintf("v%d", len(g.vars))
		s, v := g.expr(2)
		fmt.Fprintf(&g.sb, "%svar %s int = %s;\n", indent, name, s)
		g.vars = append(g.vars, name)
		g.vals[name] = v
	case 1: // assignment
		if len(g.vars) == 0 {
			g.emitOut(indent)
			return
		}
		name := g.vars[g.rng.Intn(len(g.vars))]
		s, v := g.expr(2)
		fmt.Fprintf(&g.sb, "%s%s = %s;\n", indent, name, s)
		g.vals[name] = v
	case 2: // if with compile-time-known condition (both sides emitted)
		if len(g.vars) == 0 {
			g.emitOut(indent)
			return
		}
		name := g.vars[g.rng.Intn(len(g.vars))]
		threshold := int64(g.rng.Intn(100) - 50)
		s, v := g.expr(1)
		s2, v2 := g.expr(1)
		fmt.Fprintf(&g.sb, "%sif (%s < %d) { %s = %s; } else { %s = %s; }\n",
			indent, name, threshold, name, s, name, s2)
		if g.vals[name] < threshold {
			g.vals[name] = v
		} else {
			g.vals[name] = v2
		}
	default:
		g.emitOut(indent)
	}
}

func (g *progGen) emitOut(indent string) {
	s, v := g.expr(2)
	fmt.Fprintf(&g.sb, "%semiti(%s);\n", indent, s)
	g.out = append(g.out, v)
}

// loop emits a counted accumulation loop with reference semantics.
func (g *progGen) loop() {
	n := g.rng.Intn(8) + 1
	step := int64(g.rng.Intn(5) + 1)
	acc := fmt.Sprintf("v%d", len(g.vars))
	fmt.Fprintf(&g.sb, "\tvar %s int = 0;\n", acc)
	fmt.Fprintf(&g.sb, "\tfor (var i int = 0; i < %d; i = i + 1) { %s = %s + i * %d; }\n", n, acc, acc, step)
	g.vars = append(g.vars, acc)
	var v int64
	for i := int64(0); i < int64(n); i++ {
		v += i * step
	}
	g.vals[acc] = v
}

// generate builds a full program and its expected output.
func generate(seed int64) (string, []int64) {
	g := &progGen{rng: rand.New(rand.NewSource(seed)), vals: map[string]int64{}}
	g.sb.WriteString("func main() {\n")
	nStmts := g.rng.Intn(10) + 4
	for i := 0; i < nStmts; i++ {
		if g.rng.Intn(5) == 0 {
			g.loop()
		} else {
			g.emitStmt("\t")
		}
	}
	g.emitOut("\t")
	g.sb.WriteString("}\n")
	return g.sb.String(), g.out
}

func TestDifferentialRandomPrograms(t *testing.T) {
	const iterations = 300
	for seed := int64(0); seed < iterations; seed++ {
		src, want := generate(seed)
		m, err := Compile(fmt.Sprintf("diff%d.mc", seed), src)
		if err != nil {
			t.Fatalf("seed %d: compile error: %v\nprogram:\n%s", seed, err, src)
		}
		if err := passes.Optimize(m); err != nil {
			t.Fatalf("seed %d: optimize error: %v\nprogram:\n%s", seed, err, src)
		}
		r := interp.NewRunner(m, interp.Config{MaxDynInstrs: 1_000_000})
		res := r.Run(interp.Binding{}, nil, nil)
		if res.Status != interp.StatusOK {
			t.Fatalf("seed %d: status %v (%s)\nprogram:\n%s", seed, res.Status, res.Trap, src)
		}
		if len(res.Output) != len(want) {
			t.Fatalf("seed %d: %d outputs, want %d\nprogram:\n%s", seed, len(res.Output), len(want), src)
		}
		for i, w := range want {
			if int64(res.Output[i]) != w {
				t.Fatalf("seed %d: output[%d] = %d, want %d\nprogram:\n%s",
					seed, i, int64(res.Output[i]), w, src)
			}
		}
	}
}
