// Package minicc compiles MiniC — a small C-like language — to the IR in
// package ir. MiniC plays the role Clang/LLVM play in the original study:
// the 11 HPC benchmark kernels are written in MiniC and compiled to typed
// IR on which profiling, fault injection, and selective duplication run.
//
// The language has three scalar types (int = i64, float = f64, bool = i1),
// one-dimensional arrays (global arrays may be input-bound), functions,
// C-style control flow with short-circuit booleans, and two thread
// statements (spawn / sync) mapped to the interpreter's deterministic
// scheduler.
package minicc

import "fmt"

// TokKind enumerates MiniC token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit

	// Keywords.
	TokVar
	TokFunc
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue
	TokTrue
	TokFalse
	TokSpawn
	TokSync
	TokIntType
	TokFloatType
	TokBoolType

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi

	// Operators.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp    // &
	TokPipe   // |
	TokCaret  // ^
	TokShl    // <<
	TokShr    // >>
	TokAndAnd // &&
	TokOrOr   // ||
	TokNot    // !
	TokEq     // ==
	TokNe     // !=
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "int literal",
	TokFloatLit: "float literal",
	TokVar:      "var", TokFunc: "func", TokIf: "if", TokElse: "else",
	TokWhile: "while", TokFor: "for", TokReturn: "return", TokBreak: "break",
	TokContinue: "continue", TokTrue: "true", TokFalse: "false",
	TokSpawn: "spawn", TokSync: "sync",
	TokIntType: "int", TokFloatType: "float", TokBoolType: "bool",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAmp: "&", TokPipe: "|",
	TokCaret: "^", TokShl: "<<", TokShr: ">>", TokAndAnd: "&&",
	TokOrOr: "||", TokNot: "!", TokEq: "==", TokNe: "!=", TokLt: "<",
	TokLe: "<=", TokGt: ">", TokGe: ">=",
}

// String returns a human-readable token-kind name.
func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"var": TokVar, "func": TokFunc, "if": TokIf, "else": TokElse,
	"while": TokWhile, "for": TokFor, "return": TokReturn,
	"break": TokBreak, "continue": TokContinue,
	"true": TokTrue, "false": TokFalse,
	"spawn": TokSpawn, "sync": TokSync,
	"int": TokIntType, "float": TokFloatType, "bool": TokBoolType,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexed token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string  // identifier spelling
	Int  int64   // TokIntLit payload
	Flt  float64 // TokFloatLit payload
}

// Error is a compile error with a source position.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

func errf(file string, pos Pos, format string, args ...any) *Error {
	return &Error{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
