package minicc

import "fmt"

// parser is a recursive-descent parser for MiniC.
type parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses MiniC source into a File AST.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, stripBOM(src))
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	return p.parseFile()
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) la(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(p.file, t.Pos, "expected %s, found %s", k, describe(t))
	}
	return p.advance(), nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokIntLit, TokFloatLit:
		return fmt.Sprintf("literal %s", t.Text)
	default:
		return t.Kind.String()
	}
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokVar:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		case TokFunc:
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, errf(p.file, p.cur().Pos, "expected top-level var or func, found %s", describe(p.cur()))
		}
	}
	return f, nil
}

// parseGlobal parses "var name type;", "var name[N] type;", or
// "var name[] type;" (input-bound dynamic array).
func (p *parser) parseGlobal() (*GlobalDecl, error) {
	start, _ := p.expect(TokVar)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: start.Pos, Name: name.Text}
	if p.cur().Kind == TokLBracket {
		p.advance()
		g.IsArray = true
		if p.cur().Kind == TokRBracket {
			g.Dynamic = true
		} else {
			n, err := p.expect(TokIntLit)
			if err != nil {
				return nil, err
			}
			if n.Int <= 0 {
				return nil, errf(p.file, n.Pos, "array size must be positive, got %d", n.Int)
			}
			g.Size = n.Int
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	elem, err := p.parseType()
	if err != nil {
		return nil, err
	}
	g.Elem = elem
	_, err = p.expect(TokSemi)
	return g, err
}

func (p *parser) parseType() (TypeName, error) {
	switch p.cur().Kind {
	case TokIntType:
		p.advance()
		return TInt, nil
	case TokFloatType:
		p.advance()
		return TFloat, nil
	case TokBoolType:
		p.advance()
		return TBool, nil
	default:
		return TVoid, errf(p.file, p.cur().Pos, "expected type, found %s", describe(p.cur()))
	}
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	start, _ := p.expect(TokFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: start.Pos, Name: name.Text, Ret: TVoid}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRParen {
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
		if p.cur().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	// Optional return type before the body.
	if k := p.cur().Kind; k == TokIntType || k == TokFloatType || k == TokBoolType {
		rt, _ := p.parseType()
		fn.Ret = rt
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: open.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errf(p.file, p.cur().Pos, "unterminated block (opened at %s)", open.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // consume '}'
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokVar:
		s, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokReturn:
		start := p.advance()
		s := &ReturnStmt{Pos: start.Pos}
		if p.cur().Kind != TokSemi {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		_, err := p.expect(TokSemi)
		return s, err
	case TokBreak:
		start := p.advance()
		_, err := p.expect(TokSemi)
		return &BreakStmt{Pos: start.Pos}, err
	case TokContinue:
		start := p.advance()
		_, err := p.expect(TokSemi)
		return &ContinueStmt{Pos: start.Pos}, err
	case TokSpawn:
		start := p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call, ok := x.(*CallExpr)
		if !ok {
			return nil, errf(p.file, start.Pos, "spawn requires a function call")
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &SpawnStmt{Pos: start.Pos, Call: call}, nil
	case TokSync:
		start := p.advance()
		_, err := p.expect(TokSemi)
		return &SyncStmt{Pos: start.Pos}, err
	case TokLBrace:
		return p.parseBlock()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseVarDecl parses "var name type [= expr]" or "var name[N] type"
// (without the trailing semicolon).
func (p *parser) parseVarDecl() (Stmt, error) {
	start, _ := p.expect(TokVar)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	s := &VarDeclStmt{Pos: start.Pos, Name: name.Text}
	if p.cur().Kind == TokLBracket {
		p.advance()
		n, err := p.expect(TokIntLit)
		if err != nil {
			return nil, errf(p.file, p.cur().Pos, "local arrays need a constant size")
		}
		if n.Int <= 0 {
			return nil, errf(p.file, n.Pos, "array size must be positive, got %d", n.Int)
		}
		s.IsArray = true
		s.Size = n.Int
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	elem, err := p.parseType()
	if err != nil {
		return nil, err
	}
	s.Elem = elem
	if p.cur().Kind == TokAssign {
		if s.IsArray {
			return nil, errf(p.file, p.cur().Pos, "cannot initialize an array declaration")
		}
		p.advance()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	return s, nil
}

// parseSimpleStmt parses an assignment or an expression statement
// (without the trailing semicolon). Used directly and in for-headers.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur()
	// Lookahead for "ident =" and "ident [ ... ] =".
	if start.Kind == TokIdent {
		if p.la(1).Kind == TokAssign {
			p.advance()
			p.advance()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: start.Pos, Name: start.Text, Value: v}, nil
		}
		if p.la(1).Kind == TokLBracket {
			// Could be an indexed assignment; try it with backtracking.
			save := p.pos
			p.advance() // ident
			p.advance() // [
			idx, err := p.parseExpr()
			if err == nil && p.cur().Kind == TokRBracket && p.la(1).Kind == TokAssign {
				p.advance() // ]
				p.advance() // =
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Pos: start.Pos, Name: start.Text, Index: idx, Value: v}, nil
			}
			p.pos = save
		}
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: start.Pos, X: x}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	start, _ := p.expect(TokIf)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: start.Pos, Cond: cond, Then: then}
	if p.cur().Kind == TokElse {
		p.advance()
		if p.cur().Kind == TokIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	start, _ := p.expect(TokWhile)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: start.Pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	start, _ := p.expect(TokFor)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: start.Pos}
	if p.cur().Kind != TokSemi {
		var init Stmt
		var err error
		if p.cur().Kind == TokVar {
			init, err = p.parseVarDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Binary operator precedence, lowest first.
var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokEq:     3, TokNe: 3,
	TokLt: 4, TokLe: 4, TokGt: 4, TokGe: 4,
	TokPipe:  5,
	TokCaret: 6,
	TokAmp:   7,
	TokShl:   8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binOpOf = map[TokKind]BinOp{
	TokOrOr: BinLOr, TokAndAnd: BinLAnd,
	TokEq: BinEq, TokNe: BinNe,
	TokLt: BinLt, TokLe: BinLe, TokGt: BinGt, TokGe: BinGe,
	TokPipe: BinOr, TokCaret: BinXor, TokAmp: BinAnd,
	TokShl: BinShl, TokShr: BinShr,
	TokPlus: BinAdd, TokMinus: BinSub,
	TokStar: BinMul, TokSlash: BinDiv, TokPercent: BinRem,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: opTok.Pos, Op: binOpOf[opTok.Kind], X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		t := p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Neg: true, X: x}, nil
	case TokNot:
		t := p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Neg: false, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.advance()
		return &IntLit{Pos: t.Pos, V: t.Int}, nil
	case TokFloatLit:
		p.advance()
		return &FloatLit{Pos: t.Pos, V: t.Flt}, nil
	case TokTrue:
		p.advance()
		return &BoolLit{Pos: t.Pos, V: true}, nil
	case TokFalse:
		p.advance()
		return &BoolLit{Pos: t.Pos, V: false}, nil
	case TokLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(TokRParen)
		return x, err
	case TokIntType, TokFloatType: // cast: int(e) / float(e)
		to := TInt
		if t.Kind == TokFloatType {
			to = TFloat
		}
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &CastExpr{Pos: t.Pos, To: to, X: x}, nil
	case TokIdent:
		p.advance()
		switch p.cur().Kind {
		case TokLParen:
			p.advance()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			for p.cur().Kind != TokRParen {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.cur().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if call.Name == "len" {
				if len(call.Args) != 1 {
					return nil, errf(p.file, t.Pos, "len takes exactly one array argument")
				}
				id, ok := call.Args[0].(*Ident)
				if !ok {
					return nil, errf(p.file, t.Pos, "len argument must be an array name")
				}
				return &LenExpr{Pos: t.Pos, Name: id.Name}, nil
			}
			return call, nil
		case TokLBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Name: t.Text, Index: idx}, nil
		default:
			return &Ident{Pos: t.Pos, Name: t.Text}, nil
		}
	}
	return nil, errf(p.file, t.Pos, "unexpected %s in expression", describe(t))
}
